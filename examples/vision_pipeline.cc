/**
 * @file
 * The vision application of Section 7: a Warp machine does low-level
 * image analysis, Sun workstations query a distributed spatial
 * feature database — high bandwidth for frames, low latency for
 * queries, on the same network at the same time.
 *
 *   $ ./vision_pipeline
 */

#include <cstdio>

#include "nectarine/nectarine.hh"
#include "workload/vision.hh"

using namespace nectar;
using namespace nectar::workload;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using sim::ticks::ms;
using sim::ticks::us;

int
main()
{
    sim::EventQueue eq;
    // 8 CABs on one HUB: camera, Warp, 3 database shards, 3 clients.
    auto sys = NectarSystem::singleHub(eq, 8);
    Nectarine api(*sys);

    VisionConfig cfg;
    cfg.frames = 16;
    cfg.frameBytes = 128 * 1024; // "megabyte images at video rates"
    cfg.frameInterval = 4 * ms;  // scaled-down frame period
    cfg.queriesPerClient = 40;

    VisionWorkload vision(api, /*camera=*/0, /*warp=*/1,
                          /*db=*/{2, 3, 4}, /*clients=*/{5, 6, 7},
                          cfg);
    eq.run();

    std::printf("vision pipeline on a single-HUB Nectar system\n");
    std::printf("  frames processed:  %d (of %d)\n",
                vision.framesProcessed(), cfg.frames);
    std::printf("  frame latency:     mean %.2f ms  p95 %.2f ms\n",
                vision.frameLatency().mean() / ms,
                vision.frameLatency().percentile(95) / ms);
    std::printf("  queries answered:  %d\n", vision.queriesAnswered());
    std::printf("  query latency:     mean %.1f us  p95 %.1f us  "
                "max %.1f us\n",
                vision.queryLatency().mean() / us,
                vision.queryLatency().percentile(95) / us,
                vision.queryLatency().percentile(100) / us);

    // The claim behind the design: bulk frame traffic does not ruin
    // query latency, because the crossbar gives disjoint pairs
    // independent paths (Section 3.1).
    auto &hub = sys->topo().hubAt(0);
    std::printf("  hub data switched: %.2f MB\n",
                static_cast<double>(hub.stats().dataBytes.value()) /
                    (1024.0 * 1024.0));
    std::printf("  simulated time:    %.1f ms\n",
                static_cast<double>(eq.now()) / ms);
    return vision.finished() ? 0 : 1;
}
