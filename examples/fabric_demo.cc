/**
 * @file
 * fabric_demo: a whole multicomputer from one declarative .topo file.
 *
 * Loads the checked-in 16-HUB / 208-CAB fabric (Section 2: HUB
 * clusters connect "in any topology appropriate to the application
 * environment"), prints what the route-table compiler made of it,
 * pings across the diameter, and runs a 32-member allreduce spanning
 * every cluster.
 *
 *   $ ./fabric_demo [fabric.topo]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "nectarine/nectarine.hh"
#include "topo/topofile.hh"
#include "workload/allreduce.hh"
#include "workload/probes.hh"

using namespace nectar;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using sim::ticks::us;

#ifndef NECTAR_FABRIC_DIR
#define NECTAR_FABRIC_DIR "examples/fabrics"
#endif

int
main(int argc, char **argv)
{
    std::string path = argc > 1
                           ? argv[1]
                           : std::string(NECTAR_FABRIC_DIR) +
                                 "/fabric16.topo";

    topo::TopologyDescription desc = topo::loadTopologyFile(path);
    std::printf("fabric '%s': %d HUBs (%d ports each), %zu trunks, "
                "%zu CABs\n",
                desc.name.c_str(), desc.numHubs(),
                desc.effectivePorts(), desc.trunks.size(),
                desc.cabs.size());

    sim::EventQueue eq;
    auto sys = NectarSystem::fromDescription(eq, desc);

    // The compiled route table: per-source trees, deadlock-free by
    // the up*-down* turn restriction.
    const topo::RouteTable &table = sys->topo().routeTable();
    int diameter = 0;
    for (int a = 0; a < desc.numHubs(); ++a)
        for (int b = 0; b < desc.numHubs(); ++b)
            diameter = std::max(diameter, table.dist(a, b));
    std::printf("route table: %d sources compiled, diameter %d "
                "trunk hops, %d restricted sources\n",
                table.numHubs(), diameter,
                table.restrictedSources());

    // Ping corner to corner (the longest route in the fabric).
    Nectarine api(*sys);
    workload::PingPongConfig pcfg;
    pcfg.iterations = 50;
    pcfg.label = "diameter";
    workload::PingPong ping(api, 0, sys->siteCount() - 1, pcfg);
    eq.run();
    std::printf("corner-to-corner ping: mean RTT %.1f us over %zu "
                "trunk hops\n",
                ping.meanRttUs(),
                sys->topo()
                    .route(sys->site(0).at,
                           sys->site(sys->siteCount() - 1).at)
                    .size() -
                    1);

    // A 32-member allreduce, two CABs from each of the 16 clusters.
    collective::GroupDirectory groups;
    workload::AllreduceConfig acfg;
    acfg.members = 32;
    acfg.bytes = 1024;
    acfg.rounds = 2;
    std::vector<std::size_t> sites;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(acfg.members); ++i)
        sites.push_back(i * sys->siteCount() /
                        static_cast<std::size_t>(acfg.members));
    workload::AllreduceWorkload allreduce(api, groups, sites, acfg);
    eq.run();

    const auto &rep = allreduce.report();
    std::printf("32-member allreduce: %d/%d members ok, finished at "
                "%.1f us, fingerprint %016llx\n",
                rep.okMembers, acfg.members,
                static_cast<double>(rep.lastFinish) / us,
                static_cast<unsigned long long>(rep.fingerprint));
    return rep.okMembers == acfg.members ? 0 : 1;
}
