/**
 * @file
 * Multi-HUB systems (Figures 3 and 4): build a 3x3 mesh of HUB
 * clusters, show how command routes grow with distance, and run a
 * scientific halo-exchange across the whole machine.
 *
 *   $ ./multihub_mesh
 */

#include <cstdio>

#include "nectarine/nectarine.hh"
#include "workload/halo.hh"
#include "workload/probes.hh"

using namespace nectar;
using namespace nectar::workload;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using sim::ticks::us;

int
main()
{
    sim::EventQueue eq;
    // A 3x3 mesh, one CAB per cluster for this demo.
    auto sys = NectarSystem::mesh2D(eq, 3, 3, 1);

    // --- Part 1: routes are sequences of HUB commands.
    std::printf("command routes from the corner CAB (hub r0c0):\n");
    for (std::size_t dst = 1; dst < sys->siteCount(); ++dst) {
        auto route = sys->topo().route(sys->site(0).at,
                                       sys->site(dst).at);
        std::printf("  to cab%zu: %zu hops [", dst + 1, route.size());
        for (std::size_t h = 0; h < route.size(); ++h) {
            std::printf("%s%s hub%d port%d", h ? ", " : "",
                        route[h].reply ? "openRR" : "open",
                        route[h].hubId, route[h].outPort);
        }
        std::printf("]\n");
    }

    // --- Part 2: latency grows only mildly with hop count
    //     (Section 4, goal 3).
    Nectarine api(*sys);
    std::printf("\nping-pong mean RTT by destination:\n");
    std::vector<std::unique_ptr<PingPong>> probes;
    for (std::size_t dst : {std::size_t(1), std::size_t(4),
                            std::size_t(8)}) {
        PingPongConfig cfg;
        cfg.iterations = 50;
        cfg.label = "mesh" + std::to_string(dst);
        probes.push_back(
            std::make_unique<PingPong>(api, 0, dst, cfg));
    }
    eq.run();
    const char *names[] = {"1 hub away ", "2 hubs away", "4 hubs away"};
    for (std::size_t i = 0; i < probes.size(); ++i) {
        std::printf("  %s: %.1f us\n", names[i],
                    probes[i]->meanRttUs());
    }

    // --- Part 3: a whole-machine halo exchange.
    HaloConfig hcfg;
    hcfg.rows = 3;
    hcfg.cols = 3;
    hcfg.iterations = 8;
    std::vector<std::size_t> sites;
    for (std::size_t i = 0; i < 9; ++i)
        sites.push_back(i);
    HaloExchange halo(api, sites, hcfg);
    eq.run();

    std::printf("\n3x3 halo exchange, %d iterations:\n",
                hcfg.iterations);
    std::printf("  cells completed: %d/9\n", halo.completedCells());
    std::printf("  iteration time:  mean %.1f us  p95 %.1f us\n",
                halo.iterationTime().mean() / us,
                halo.iterationTime().percentile(95) / us);
    return halo.finished() ? 0 : 1;
}
