/**
 * @file
 * Chaos campaign demo: a scripted adversary — burst loss on the
 * sender's uplink, a mid-stream inter-HUB link flap, and a receiver
 * CAB crash with restart — against a stream of reliable messages on
 * a two-HUB system with redundant links.
 *
 * The run is fully deterministic: rerunning with the same seed prints
 * a byte-identical campaign report.
 *
 *   $ ./chaos_campaign [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "fault/chaos.hh"
#include "nectarine/system.hh"
#include "sim/coro.hh"

using namespace nectar;
using namespace nectar::fault;
using nectarine::NectarSystem;
using sim::Task;
using namespace sim::ticks;

int
main(int argc, char **argv)
{
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                  : 1234;

    // Two HUBs joined by parallel links on ports 10 and 11 — the
    // redundancy gives the router somewhere to go when a link dies.
    sim::EventQueue eq;
    auto topo = std::make_unique<topo::Topology>(eq);
    topo->addHub();
    topo->addHub();
    topo->linkHubs(0, 10, 1, 10);
    topo->linkHubs(0, 11, 1, 11);
    auto sys = std::make_unique<NectarSystem>(eq, std::move(topo));
    sys->addCab(0, 0);
    sys->addCab(1, 0);
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 20);

    // The adversary's script.
    FaultPlan plan;
    plan.name = "demo";
    plan.seed = seed;
    plan.burstWindow(200 * us, 1200 * us, 0, Direction::toHub,
                     phys::GilbertElliott::forLossRate(0.05, 8.0));
    plan.hubLinkDown(2 * ms, 0, 10);
    plan.hubLinkUp(2 * ms + 600 * us, 0, 10);
    plan.cabCrash(5 * ms, 1);
    plan.cabRestart(7 * ms, 1);
    ChaosController chaos(*sys, plan);

    // The victim workload: 30 reliable 4 KB messages on one flow.
    const int n = 30;
    int okCount = 0;
    sim::spawn([](transport::Transport &tp, int n,
                  int &okCount) -> Task<void> {
        for (int i = 0; i < n; ++i) {
            std::vector<std::uint8_t> msg(4096,
                                          static_cast<std::uint8_t>(i));
            if (co_await tp.sendReliable(2, 20, std::move(msg)))
                ++okCount;
        }
    }(*sys->site(0).transport, n, okCount));
    eq.run();

    std::printf("%s", chaos.report().format().c_str());
    std::printf("sender outcome     %d/%d reported delivered\n",
                okCount, n);
    std::printf("receiver mailbox   %zu messages\n", mb.count());
    return 0;
}
