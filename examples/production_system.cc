/**
 * @file
 * The parallel production system of Section 7: a distributed RETE
 * match network whose tokens flow through a distributed task queue —
 * fine-grained parallelism that depends on Nectar's low latency.
 *
 *   $ ./production_system
 */

#include <cstdio>

#include "nectarine/nectarine.hh"
#include "workload/production.hh"

using namespace nectar;
using namespace nectar::workload;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using sim::ticks::ms;
using sim::ticks::us;

int
main()
{
    std::printf("distributed production system (RETE match)\n");
    std::printf("%8s %12s %14s %14s\n", "workers", "tokens",
                "tokens/ms", "hop latency us");

    // Scaling sweep: more workers means more parallel match capacity,
    // as long as token latency stays low.
    for (int workers : {1, 2, 4, 8}) {
        sim::EventQueue eq;
        auto sys = NectarSystem::singleHub(eq, workers);
        Nectarine api(*sys);

        std::vector<std::size_t> sites;
        for (int w = 0; w < workers; ++w)
            sites.push_back(w);

        ProductionConfig cfg;
        cfg.seedTokens = 32;
        cfg.maxTokens = 1000;
        ProductionWorkload pw(api, sites, cfg);
        eq.run();

        std::printf("%8d %12d %14.1f %14.1f\n", workers,
                    pw.tokensProcessed(), pw.tokensPerMs(),
                    pw.tokenLatency().mean() / us);
    }
    return 0;
}
