/**
 * @file
 * Internet protocols over Nectar (the Section 6.2.2 follow-on): a TCP
 * echo service and a small "file server" running on CABs, with
 * clients connecting over IP/TCP through the Nectar-net.
 *
 *   $ ./inet_services
 */

#include <cstdio>
#include <numeric>

#include "inet/ip.hh"
#include "inet/tcp.hh"
#include "nectarine/system.hh"

using namespace nectar;
using namespace nectar::inet;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

int
main()
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 3);

    // One IP + TCP stack per CAB (replacing the Nectar-native
    // transport on these sites).
    std::vector<std::unique_ptr<IpLayer>> ip;
    std::vector<std::unique_ptr<Tcp>> tcp;
    for (int i = 0; i < 3; ++i) {
        ip.push_back(std::make_unique<IpLayer>(
            *sys->site(i).kernel, *sys->site(i).datalink,
            sys->directory(), sys->site(i).address));
        tcp.push_back(std::make_unique<Tcp>(*ip[i]));
    }

    // --- A "file server" on CAB 3: sends 100 KB on request.
    sim::spawn([](Tcp &tcp) -> Task<void> {
        auto *s = co_await tcp.accept(21);
        auto req = co_await s->receive(100);
        std::printf("[server] request of %zu bytes in state %s\n",
                    req.size(), tcpStateName(s->state()));
        std::vector<std::uint8_t> file(100 * 1024);
        std::iota(file.begin(), file.end(), std::uint8_t(0));
        co_await s->send(std::move(file));
        co_await s->close();
    }(*tcp[2]));

    // --- An echo service on CAB 2.
    sim::spawn([](Tcp &tcp) -> Task<void> {
        auto *s = co_await tcp.accept(7);
        for (int i = 0; i < 3; ++i) {
            auto msg = co_await s->receive(1024);
            co_await s->send(std::move(msg));
        }
    }(*tcp[1]));

    // --- Client on CAB 1 exercises both.
    double echo_rtt_us = 0;
    std::size_t file_bytes = 0;
    Tick t_start = 0, t_end = 0;
    sim::spawn([](sim::EventQueue &eq, Tcp &tcp, double &echo_rtt_us,
                  std::size_t &file_bytes, Tick &t0,
                  Tick &t1) -> Task<void> {
        // Echo round trips.
        auto *e = co_await tcp.connect(ipOfCab(2), 7);
        sim::Histogram rtt;
        for (int i = 0; i < 3; ++i) {
            Tick a = eq.now();
            std::vector<std::uint8_t> ping(64, std::uint8_t(i));
            co_await e->send(std::move(ping));
            co_await e->receive(1024);
            rtt.record(static_cast<double>(eq.now() - a));
        }
        echo_rtt_us = rtt.mean() / 1000.0;

        // File fetch.
        auto *f = co_await tcp.connect(ipOfCab(3), 21);
        std::vector<std::uint8_t> req(4, 0x66);
        t0 = eq.now();
        co_await f->send(std::move(req));
        for (;;) {
            auto chunk = co_await f->receive(65536);
            if (chunk.empty())
                break;
            file_bytes += chunk.size();
        }
        t1 = eq.now();
    }(eq, *tcp[0], echo_rtt_us, file_bytes, t_start, t_end));

    eq.run();

    std::printf("TCP/IP over the Nectar-net\n");
    std::printf("  echo RTT:        %.1f us\n", echo_rtt_us);
    std::printf("  file transfer:   %zu bytes in %.2f ms "
                "(%.2f MB/s)\n",
                file_bytes,
                static_cast<double>(t_end - t_start) / 1e6,
                static_cast<double>(file_bytes) * 1000.0 /
                    static_cast<double>(t_end - t_start));
    std::printf("  segments:        %llu sent / %llu received "
                "(client stack)\n",
                static_cast<unsigned long long>(
                    tcp[0]->stats().segmentsSent.value()),
                static_cast<unsigned long long>(
                    tcp[0]->stats().segmentsReceived.value()));
    return file_bytes == 100 * 1024 ? 0 : 1;
}
