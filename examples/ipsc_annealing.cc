/**
 * @file
 * Parallel simulated annealing through the iPSC library — one of the
 * hypercube applications the paper says was "being ported to Nectar
 * using this approach" (Section 7).
 *
 * Each cube node anneals its own replica of a rough 1-D energy
 * landscape; every few sweeps, neighbours along a ring exchange their
 * best solutions and adopt improvements (replica exchange).
 *
 *   $ ./ipsc_annealing
 */

#include <cmath>
#include <cstring>
#include <cstdio>

#include "nectarine/ipsc.hh"
#include "nectarine/nectarine.hh"
#include "sim/random.hh"

using namespace nectar;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using nectarine::ipsc::IpscNode;
using nectarine::ipsc::IpscSystem;
using sim::Task;
using sim::ticks::us;

namespace {

/** A rugged test landscape with global minimum ~-1.4 near x=0.21. */
double
energy(double x)
{
    return std::sin(5.0 * x) + 0.5 * std::sin(17.0 * x) +
           0.1 * x * x;
}

void
packDouble(std::vector<std::uint8_t> &v, std::size_t off, double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, 8);
    for (int i = 0; i < 8; ++i)
        v[off + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
}

double
unpackDouble(const std::vector<std::uint8_t> &v, std::size_t off)
{
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits = (bits << 8) | v[off + i];
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

} // namespace

int
main()
{
    constexpr int nodes = 8;
    constexpr int rounds = 12;
    constexpr int sweeps_per_round = 40;

    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, nodes);
    Nectarine api(*sys);
    IpscSystem cube(api, nodes);

    std::vector<double> best(nodes, 1e9);
    cube.load([&best](IpscNode &self) -> Task<void> {
        sim::Random rng(1234 + self.mynode());
        double x = rng.uniform() * 8.0 - 4.0;
        double e = energy(x);
        double bx = x, be = e;
        double temp = 2.0;

        for (int round = 0; round < rounds; ++round) {
            // Local annealing sweeps (costed compute).
            for (int s = 0; s < sweeps_per_round; ++s) {
                double nx = x + (rng.uniform() - 0.5) * temp;
                double ne = energy(nx);
                if (ne < e ||
                    rng.uniform() < std::exp((e - ne) / temp)) {
                    x = nx;
                    e = ne;
                    if (e < be) {
                        be = e;
                        bx = x;
                    }
                }
            }
            co_await self.work(50 * us); // the sweeps' CPU time

            // Replica exchange around the ring.
            std::vector<std::uint8_t> msg(16);
            packDouble(msg, 0, bx);
            packDouble(msg, 8, be);
            int right = (self.mynode() + 1) % self.numnodes();
            co_await self.csend(200 + round, std::move(msg), right);
            auto in = co_await self.crecv(200 + round);
            double ox = unpackDouble(in, 0);
            double oe = unpackDouble(in, 8);
            if (oe < be) {
                be = oe;
                bx = ox;
                x = ox;
                e = oe;
            }
            temp *= 0.7;
        }
        best[self.mynode()] = be;
    });

    eq.run();

    double global = 1e9;
    for (double b : best)
        global = std::min(global, b);
    std::printf("parallel simulated annealing on a %d-node cube\n",
                nodes);
    std::printf("  per-node best energies:");
    for (double b : best)
        std::printf(" %.3f", b);
    std::printf("\n  global best: %.3f (landscape minimum ~ -1.43)\n",
                global);
    std::printf("  completed nodes: %d, simulated time %.2f ms\n",
                cube.completedNodes(),
                static_cast<double>(eq.now()) / 1e6);
    // Replica exchange should have spread the best solution widely.
    int close = 0;
    for (double b : best)
        close += (b < global + 0.2);
    std::printf("  nodes within 0.2 of the best: %d/%d\n", close,
                nodes);
    return (global < -1.2 && cube.completedNodes() == nodes) ? 0 : 1;
}
