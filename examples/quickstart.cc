/**
 * @file
 * Quickstart: build a single-HUB Nectar system (Figure 2), run two
 * tasks that exchange messages through the CAB transport, and print
 * what happened.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "nectarine/nectarine.hh"

using namespace nectar;
using nectarine::Delivery;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using nectarine::TaskContext;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

int
main()
{
    // 1. One event queue drives the whole simulated system.
    sim::EventQueue eq;

    // 2. A single-HUB star with four CABs: the initial prototype
    //    configuration (Section 3.2).
    auto sys = NectarSystem::singleHub(eq, 4);

    // 3. The Nectarine programming interface (Section 6.3): tasks
    //    that communicate by transferring messages.
    Nectarine api(*sys);

    // A consumer task on CAB 2's site.
    auto consumer = api.createTask(
        1, "consumer", [](TaskContext &ctx) -> Task<void> {
            for (int i = 0; i < 3; ++i) {
                auto m = co_await ctx.receive();
                std::printf("[%8lld ns] consumer: got %zu bytes "
                            "(first byte %d)\n",
                            static_cast<long long>(ctx.now()),
                            m.size(), m.view()[0]);
            }
        });

    // A producer on CAB 1's site: one reliable message, one datagram,
    // and one buffer send (gathered by DMA from CAB memory).
    api.createTask(0, "producer",
                   [consumer](TaskContext &ctx) -> Task<void> {
        std::vector<std::uint8_t> hello(256, 1);
        co_await ctx.send(consumer, std::move(hello),
                          Delivery::reliable);

        std::vector<std::uint8_t> quick(64, 2);
        co_await ctx.send(consumer, std::move(quick),
                          Delivery::datagram);

        auto buf = ctx.allocBuffer(4096);
        std::fill(buf->data().begin(), buf->data().end(), 3);
        co_await ctx.sendBuffer(consumer, *buf);
        std::printf("[%8lld ns] producer: all sent\n",
                    static_cast<long long>(ctx.now()));
    });

    // 4. Run the simulation to completion.
    eq.run();

    // 5. Every layer keeps statistics.
    auto &tp0 = *sys->site(0).transport;
    auto &hub = sys->topo().hubAt(0);
    std::printf("\n--- statistics ---\n");
    std::printf("transport packets sent:   %llu\n",
                static_cast<unsigned long long>(
                    tp0.stats().packetsSent.value()));
    std::printf("transport acks received:  %llu\n",
                static_cast<unsigned long long>(
                    tp0.stats().acksReceived.value()));
    std::printf("hub connections opened:   %llu\n",
                static_cast<unsigned long long>(
                    hub.stats().opensOk.value()));
    std::printf("hub data bytes switched:  %llu\n",
                static_cast<unsigned long long>(
                    hub.stats().dataBytes.value()));
    std::printf("simulated time:           %.1f us\n",
                static_cast<double>(eq.now()) / us);
    return 0;
}
