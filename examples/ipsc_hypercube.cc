/**
 * @file
 * Running a hypercube application on Nectar through the iPSC
 * compatibility library (Section 7): a global sum by recursive
 * doubling, the classic iPSC/2 collective.
 *
 *   $ ./ipsc_hypercube
 */

#include <cstdio>

#include "nectarine/ipsc.hh"
#include "nectarine/nectarine.hh"

using namespace nectar;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using nectarine::ipsc::IpscNode;
using nectarine::ipsc::IpscSystem;
using sim::Task;
using sim::ticks::us;

int
main()
{
    constexpr int dim = 4; // a 16-node cube
    constexpr int nodes = 1 << dim;

    sim::EventQueue eq;
    // The cube maps onto a 2x2 mesh of HUB clusters with 4 CABs each
    // (Figure 4): 16 "hypercube nodes" on 16 CABs.
    auto sys = NectarSystem::mesh2D(eq, 2, 2, 4);
    Nectarine api(*sys);
    IpscSystem cube(api, nodes);

    std::vector<long> result(nodes, 0);
    cube.load([&result](IpscNode &self) -> Task<void> {
        // Each node contributes its node number; recursive doubling
        // leaves every node with the global sum.
        long value = self.mynode();
        for (int d = 0; d < dim; ++d) {
            std::vector<std::uint8_t> out(8);
            for (int i = 0; i < 8; ++i)
                out[i] = static_cast<std::uint8_t>(
                    static_cast<std::uint64_t>(value) >> (56 - 8 * i));
            co_await self.csend(100 + d, std::move(out),
                                self.neighbor(d));
            auto in = co_await self.crecv(100 + d);
            long other = 0;
            for (int i = 0; i < 8; ++i)
                other = (other << 8) | in[i];
            value += other;
            // A little local work between exchanges.
            co_await self.work(20 * us);
        }
        result[self.mynode()] = value;
    });

    eq.run();

    long expect = nodes * (nodes - 1) / 2;
    bool ok = true;
    for (int n = 0; n < nodes; ++n)
        ok = ok && (result[n] == expect);

    std::printf("iPSC recursive-doubling sum on a %d-node cube over "
                "a 2x2 Nectar mesh\n", nodes);
    std::printf("  expected global sum: %ld\n", expect);
    std::printf("  all nodes agree:     %s\n", ok ? "yes" : "NO");
    std::printf("  completed nodes:     %d\n", cube.completedNodes());
    std::printf("  simulated time:      %.1f us\n",
                static_cast<double>(eq.now()) / us);
    return ok ? 0 : 1;
}
