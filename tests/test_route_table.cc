/**
 * @file
 * Route-table compiler tests (DESIGN.md "Fabrics and routing").
 *
 * The heart of the tentpole guarantee: for meshes, tori, fat trees,
 * and a batch of seeded random regular graphs, the compiled tables
 * must (a) reach exactly what a plain BFS reaches, (b) emit only
 * up*-down* legal paths, and (c) induce an acyclic channel-dependency
 * graph — built explicitly here, directed fiber by directed fiber —
 * so cut-through worm routing cannot deadlock on any fabric a .topo
 * file can describe.  Plus the route-cache audit: linkVersion bumps
 * must invalidate NetworkDirectory's cached routes, and a
 * fail-then-recover cycle must restore the original path bit for bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "topo/description.hh"
#include "topo/route_table.hh"
#include "topo/topology.hh"
#include "transport/directory.hh"

using namespace nectar;
using namespace nectar::topo;

namespace {

/** Directed channel id: link i traversed toward its b (0) / a (1) end. */
int
channelOf(const FabricGraph &g, int linkIndex, int fromHub)
{
    return linkIndex * 2 + (g.linkAt(linkIndex).a == fromHub ? 0 : 1);
}

/**
 * Walk the compiled path from @p from to @p to, checking contiguity
 * (every hop's port really leads to the next hub) and up*-down*
 * legality (no down move followed by an up move), and append its
 * channel-dependency edges to @p cdg.
 */
void
checkPath(const FabricGraph &g, const RouteTable &t, int from, int to,
          std::vector<std::vector<int>> &cdg)
{
    std::vector<RouteTable::PathHop> hops;
    ASSERT_TRUE(t.path(from, to, hops)) << from << "->" << to;
    int at = from;
    bool wentDown = false;
    int prevChan = -1;
    for (const auto &h : hops) {
        ASSERT_EQ(h.hub, at) << from << "->" << to;
        int li = g.linkAtPort(h.hub, h.outPort);
        ASSERT_GE(li, 0) << "hop port is not a trunk";
        ASSERT_TRUE(g.linkUp(li));
        const auto &l = g.linkAt(li);
        int next = l.a == at ? l.b : l.a;
        bool up = t.upEndOf(li) == next;
        if (up)
            ASSERT_FALSE(wentDown)
                << from << "->" << to << ": down->up turn at hub "
                << at;
        else
            wentDown = true;
        int chan = channelOf(g, li, at);
        if (prevChan >= 0)
            cdg[static_cast<std::size_t>(prevChan)].push_back(chan);
        prevChan = chan;
        at = next;
    }
    ASSERT_EQ(at, to) << from << "->" << to;
}

/** DFS cycle check over the channel-dependency graph. */
bool
acyclic(const std::vector<std::vector<int>> &cdg)
{
    enum { white, grey, black };
    std::vector<int> color(cdg.size(), white);
    std::vector<std::pair<int, std::size_t>> stack;
    for (int r = 0; r < static_cast<int>(cdg.size()); ++r) {
        if (color[static_cast<std::size_t>(r)] != white)
            continue;
        stack.emplace_back(r, 0);
        color[static_cast<std::size_t>(r)] = grey;
        while (!stack.empty()) {
            auto &[n, i] = stack.back();
            const auto &out = cdg[static_cast<std::size_t>(n)];
            if (i == out.size()) {
                color[static_cast<std::size_t>(n)] = black;
                stack.pop_back();
                continue;
            }
            int next = out[i++];
            if (color[static_cast<std::size_t>(next)] == grey)
                return false;
            if (color[static_cast<std::size_t>(next)] == white) {
                color[static_cast<std::size_t>(next)] = grey;
                stack.emplace_back(next, 0);
            }
        }
    }
    return true;
}

/** Plain undirected BFS distances over up links (the reference). */
std::vector<int>
bfsDist(const FabricGraph &g, int from)
{
    std::vector<int> dist(static_cast<std::size_t>(g.numHubs()), -1);
    std::vector<int> queue{from};
    dist[static_cast<std::size_t>(from)] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        int h = queue[head];
        for (const auto &a : g.adjacencyOf(h)) {
            if (!g.linkUp(a.linkIndex) ||
                dist[static_cast<std::size_t>(a.neighbor)] >= 0)
                continue;
            dist[static_cast<std::size_t>(a.neighbor)] =
                dist[static_cast<std::size_t>(h)] + 1;
            queue.push_back(a.neighbor);
        }
    }
    return dist;
}

/** The full battery: paths valid + legal, CDG acyclic, reachability
 *  and distances consistent with plain BFS. */
void
checkFabric(const TopologyDescription &d)
{
    SCOPED_TRACE(d.name);
    FabricGraph g = FabricGraph::ofDescription(d);
    RouteTable t = RouteTable::compile(g);
    ASSERT_EQ(t.numHubs(), g.numHubs());

    std::vector<std::vector<int>> cdg(
        static_cast<std::size_t>(g.numLinks()) * 2);
    for (int s = 0; s < g.numHubs(); ++s) {
        std::vector<int> ref = bfsDist(g, s);
        for (int e = 0; e < g.numHubs(); ++e) {
            bool reach = ref[static_cast<std::size_t>(e)] >= 0;
            EXPECT_EQ(t.reachable(s, e), reach) << s << "->" << e;
            if (!reach || s == e)
                continue;
            // Restricted sources may detour (legality over hop
            // count); legacy-compatible ones keep BFS distances.
            EXPECT_GE(t.dist(s, e), ref[static_cast<std::size_t>(e)]);
            if (!t.restrictedSource(s)) {
                EXPECT_EQ(t.dist(s, e),
                          ref[static_cast<std::size_t>(e)]);
            }
            checkPath(g, t, s, e, cdg);
        }
    }
    EXPECT_TRUE(acyclic(cdg)) << "channel-dependency cycle";
}

} // namespace

// ----- deadlock freedom on every fabric family ----------------------

TEST(RouteTableTest, MeshPathsLegalAndCdgAcyclic)
{
    checkFabric(describeMesh2D(4, 4, 0));
}

TEST(RouteTableTest, TorusPathsLegalAndCdgAcyclic)
{
    checkFabric(describeTorus2D(4, 4, 0));
    checkFabric(describeTorus2D(3, 5, 0));
}

TEST(RouteTableTest, FatTreePathsLegalAndCdgAcyclic)
{
    checkFabric(describeFatTree(4, 8, 0, 0, 20));
}

TEST(RouteTableTest, RandomRegularGraphsLegalAndCdgAcyclic)
{
    bool sawRestricted = false;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        TopologyDescription d = describeRandomRegular(seed, 12, 3, 0);
        checkFabric(d);
        RouteTable t =
            RouteTable::compile(FabricGraph::ofDescription(d));
        sawRestricted |= t.restrictedSources() > 0;
    }
    // At least one random fabric must exercise the restricted
    // (phase-BFS) compiler; if none does, the fallback is dead code.
    EXPECT_TRUE(sawRestricted);
}

TEST(RouteTableTest, LegacyMeshSourcesAreNeverRestricted)
{
    // The compatibility guarantee: on the fabrics the historical BFS
    // served (single HUB, 2-D meshes), every legacy tree is already
    // legal, so routes stay byte-identical to the old router.
    for (auto [r, c] : {std::pair{1, 1}, {2, 2}, {2, 3}, {4, 4}}) {
        RouteTable t = RouteTable::compile(FabricGraph::ofDescription(
            describeMesh2D(r, c, 0)));
        EXPECT_EQ(t.restrictedSources(), 0)
            << r << "x" << c << " mesh";
    }
}

TEST(RouteTableTest, SurvivesLinkFailuresStillAcyclic)
{
    // Drop each torus link in turn: recompiled tables must stay
    // legal, acyclic, and fully connected (a 2-D torus is 2-edge-
    // connected, so one dead trunk never partitions it).
    TopologyDescription d = describeTorus2D(3, 3, 0);
    FabricGraph g = FabricGraph::ofDescription(d);
    for (int li = 0; li < g.numLinks(); ++li) {
        g.setLinkUp(li, false);
        RouteTable t = RouteTable::compile(g);
        std::vector<std::vector<int>> cdg(
            static_cast<std::size_t>(g.numLinks()) * 2);
        for (int s = 0; s < g.numHubs(); ++s)
            for (int e = 0; e < g.numHubs(); ++e) {
                ASSERT_TRUE(t.reachable(s, e));
                if (s != e)
                    checkPath(g, t, s, e, cdg);
            }
        EXPECT_TRUE(acyclic(cdg)) << "dead link " << li;
        g.setLinkUp(li, true);
    }
}

TEST(RouteTableTest, MulticastTreeCoversMembersOnce)
{
    FabricGraph g =
        FabricGraph::ofDescription(describeTorus2D(4, 4, 0));
    RouteTable t = RouteTable::compile(g);
    std::vector<int> dests{3, 12, 15, 6};
    RouteTable::McTree tree = t.multicastTree(0, dests);
    ASSERT_TRUE(tree.ok);

    // Walk the tree from the root; every hub joins at most once.
    std::vector<int> seen{0};
    for (std::size_t head = 0; head < seen.size(); ++head) {
        auto it = tree.children.find(seen[head]);
        if (it == tree.children.end())
            continue;
        for (const auto &[port, child] : it->second) {
            EXPECT_EQ(std::count(seen.begin(), seen.end(), child), 0)
                << "hub " << child << " grafted twice";
            seen.push_back(child);
        }
    }
    for (int dst : dests)
        EXPECT_NE(std::count(seen.begin(), seen.end(), dst), 0)
            << "member " << dst << " not covered";
}

// ----- the live topology: lazy compile + cache audit ----------------

TEST(RouteTableTest, TopologyCompilesLazilyAndOnLinkEvents)
{
    sim::EventQueue eq;
    auto topo = buildTopology(eq, describeMesh2D(3, 3, 1));
    EXPECT_EQ(topo->tableCompiles(), 0u);

    Endpoint a{0, 0}, b{8, 0};
    Route r1 = topo->route(a, b);
    EXPECT_FALSE(r1.empty());
    EXPECT_EQ(topo->tableCompiles(), 1u);

    // More queries, same link state: no recompiles.
    for (int h = 0; h < 9; ++h)
        (void)topo->route(a, Endpoint{h, 0});
    (void)topo->reachable(0, 8);
    EXPECT_EQ(topo->tableCompiles(), 1u);

    topo->markLinkDownBetween(0, 1);
    EXPECT_EQ(topo->tableCompiles(), 1u); // lazy: not yet
    Route r2 = topo->route(a, b);
    EXPECT_EQ(topo->tableCompiles(), 2u);
    EXPECT_FALSE(r2.empty());

    topo->markLinkUpBetween(0, 1);
    EXPECT_EQ(topo->route(a, b), r1); // healed: original path back
    EXPECT_EQ(topo->tableCompiles(), 3u);
}

TEST(RouteTableTest, DirectoryCacheAuditOnIrregularGraph)
{
    // The route-cache audit of the issue: on an irregular fabric, a
    // linkVersion bump while routes are cached must invalidate them
    // (stale routes would steer worms into the dead trunk), and the
    // fail -> recover cycle must restore the original shortest path
    // deterministically.
    TopologyDescription d = describeRandomRegular(3, 10, 3, 2);
    sim::EventQueue eq;
    auto topo = buildTopology(eq, d);
    transport::NetworkDirectory dir(*topo);

    // Two CABs whose hubs are as far apart as the fabric allows.
    const RouteTable &table = topo->routeTable();
    std::size_t fromCab = 0, toCab = 0;
    int best = -1;
    for (std::size_t i = 0; i < d.cabs.size(); ++i) {
        int dist = table.dist(d.cabs[0].hub, d.cabs[i].hub);
        if (dist > best) {
            best = dist;
            toCab = i;
        }
    }
    ASSERT_GE(best, 2) << "degree-3 graph of 10 hubs has diameter 2+";
    dir.registerCab(1, Endpoint{d.cabs[fromCab].hub,
                                d.cabs[fromCab].port});
    dir.registerCab(2, Endpoint{d.cabs[toCab].hub,
                                d.cabs[toCab].port});

    Route orig = dir.route(1, 2);
    ASSERT_GE(orig.size(), 2u);
    std::uint64_t v0 = topo->linkVersion();

    // Kill the first trunk the cached route rides.
    topo->markLinkDown(orig[0].hubId, orig[0].outPort);
    EXPECT_GT(topo->linkVersion(), v0);
    Route around = dir.route(1, 2);
    EXPECT_NE(around, orig) << "stale route served from cache";
    EXPECT_FALSE(around.empty()) << "graph stays connected";
    EXPECT_EQ(dir.reroutes(), 1u);

    // Heal: the original shortest path comes back bit for bit.
    topo->markLinkUp(orig[0].hubId, orig[0].outPort);
    EXPECT_EQ(dir.route(1, 2), orig);
    EXPECT_EQ(dir.reroutes(), 2u);

    // And the whole sequence is deterministic: a fresh build of the
    // same description yields the identical original route.
    sim::EventQueue eq2;
    auto topo2 = buildTopology(eq2, d);
    transport::NetworkDirectory dir2(*topo2);
    dir2.registerCab(1, Endpoint{d.cabs[fromCab].hub,
                                 d.cabs[fromCab].port});
    dir2.registerCab(2, Endpoint{d.cabs[toCab].hub,
                                 d.cabs[toCab].port});
    EXPECT_EQ(dir2.route(1, 2), orig);
}

TEST(RouteTableTest, GraphApiRejectsNonsense)
{
    FabricGraph g(2);
    g.addLink(0, 15, 1, 15);
    EXPECT_THROW(g.addLink(0, 14, 0, 13), sim::FatalError);
    EXPECT_THROW(g.addLink(0, 14, 2, 13), sim::FatalError);
    EXPECT_EQ(g.linkAtPort(0, 15), 0);
    EXPECT_EQ(g.linkAtPort(0, 3), -1);
}
