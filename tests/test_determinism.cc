/**
 * @file
 * Determinism harness: same seed, same event trace.
 *
 * Each scenario (tests/helpers/determinism_scenarios.hh) is a compact
 * replica of a tier-1 benchmark workload.  A scenario is run twice
 * from scratch and must produce an identical event-trace fingerprint —
 * the rolling FNV-1a hash the EventQueue folds over (when, priority,
 * sequence) of every executed event.  Any wall-clock leak, unseeded
 * randomness, or hash-order-dependent iteration shows up here as a
 * fingerprint mismatch long before it would surface as a flaky
 * benchmark number.
 *
 * The companion golden test (test_golden_fingerprint.cc) pins the
 * *absolute* fingerprints of the same scenarios, so a change that is
 * self-consistent but reorders events relative to the seed engine is
 * also caught.
 */

#include <gtest/gtest.h>

#include "helpers/determinism_scenarios.hh"

using namespace nectar;
using nectar::testutil::Trace;

TEST(Determinism, FingerprintAdvancesAndIsOrderSensitive)
{
    sim::EventQueue eq;
    std::uint64_t empty = eq.fingerprint();
    eq.schedule(1 * sim::ticks::ns, [] {});
    eq.schedule(2 * sim::ticks::ns, [] {});
    eq.run();
    EXPECT_NE(eq.fingerprint(), empty);

    // Same events, different order: the trace hash must differ.
    sim::EventQueue other;
    other.schedule(2 * sim::ticks::ns, [] {});
    other.schedule(1 * sim::ticks::ns, [] {});
    other.run();
    EXPECT_EQ(other.executedCount(), eq.executedCount());
    EXPECT_NE(other.fingerprint(), eq.fingerprint());
}

TEST(Determinism, PacketPipelineTraceIsReproducible)
{
    Trace a = testutil::packetPipelineOnce(32 * 1024);
    Trace b = testutil::packetPipelineOnce(32 * 1024);
    EXPECT_GT(a.executed, 0u);
    EXPECT_GT(a.end, 0);
    EXPECT_EQ(a, b);
}

TEST(Determinism, BroadcastTraceIsReproducible)
{
    Trace a = testutil::broadcastOnce(4, 512);
    Trace b = testutil::broadcastOnce(4, 512);
    EXPECT_GT(a.executed, 0u);
    EXPECT_EQ(a, b);
}

TEST(Determinism, AllreduceTraceIsReproducible)
{
    Trace a = testutil::allreduceOnce(4, 256, 2);
    Trace b = testutil::allreduceOnce(4, 256, 2);
    EXPECT_GT(a.executed, 0u);
    EXPECT_EQ(a, b);
}

// The parallel engine on a single-HUB system is one shard running the
// same epoch protocol; at every thread count its trace must be
// byte-identical to the classic engine's (the --threads 1 contract of
// DESIGN.md "Parallel engine", and the no-surprises default for
// single-cluster fabrics at any thread count).

TEST(Determinism, PacketPipelineThreadCountInvariant)
{
    const Trace seq = testutil::packetPipelineOnce(32 * 1024);
    for (int threads : {1, 2, 4, 8})
        EXPECT_EQ(testutil::packetPipelineThreads(32 * 1024, threads),
                  seq)
            << threads << " threads";
}

TEST(Determinism, BroadcastThreadCountInvariant)
{
    const Trace seq = testutil::broadcastOnce(4, 512);
    for (int threads : {1, 2, 4, 8})
        EXPECT_EQ(testutil::broadcastThreads(4, 512, threads), seq)
            << threads << " threads";
}

TEST(Determinism, AllreduceThreadCountInvariant)
{
    const Trace seq = testutil::allreduceOnce(4, 256, 2);
    for (int threads : {1, 2, 4, 8})
        EXPECT_EQ(testutil::allreduceThreads(4, 256, 2, threads), seq)
            << threads << " threads";
}
