/**
 * @file
 * Determinism harness: same seed, same event trace.
 *
 * Each scenario below is a compact replica of a tier-1 benchmark
 * workload (the E9 packet pipeline and the C1/C2 collectives from
 * bench/).  A scenario is run twice from scratch and must produce an
 * identical event-trace fingerprint — the rolling FNV-1a hash the
 * EventQueue folds over (when, priority, id) of every executed event.
 * Any wall-clock leak, unseeded randomness, or hash-order-dependent
 * iteration shows up here as a fingerprint mismatch long before it
 * would surface as a flaky benchmark number.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "collectives/communicator.hh"
#include "collectives/group.hh"
#include "nectarine/nectarine.hh"
#include "node/node.hh"
#include "sim/coro.hh"
#include "workload/allreduce.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using nectarine::NectarSystem;
using nectarine::TaskContext;
using sim::Task;
using sim::Tick;

namespace {

/** What one scenario run looked like, trace-wise. */
struct Trace
{
    std::uint64_t fingerprint = 0;
    std::uint64_t executed = 0;
    Tick end = 0;

    bool
    operator==(const Trace &o) const
    {
        return fingerprint == o.fingerprint && executed == o.executed &&
               end == o.end;
    }
};

/** E9 replica: pipelined node-to-node transfer over one HUB. */
Trace
packetPipelineOnce(std::uint32_t totalBytes)
{
    sim::copyStats().reset();
    sim::BufferArena::instance().resetStats();
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 2);
    node::Node src(eq, "src"), dst(eq, "dst");
    auto &mb = sys->site(1).kernel->createMailbox("in", 2 << 20, 10);

    const std::uint32_t chunk = 896;
    sim::spawn([](cabos::Mailbox &mb, node::Node &dst,
                  std::uint32_t total) -> Task<void> {
        std::uint32_t got = 0;
        while (got < total) {
            auto m = co_await mb.get();
            got += static_cast<std::uint32_t>(m.size());
            co_await dst.vme().transferAwait(
                static_cast<std::uint32_t>(m.size()));
        }
    }(mb, dst, totalBytes));

    sim::spawn([](sim::EventQueue &eq, node::Node &src,
                  transport::Transport &tp, std::uint32_t total,
                  std::uint32_t chunk) -> Task<void> {
        std::uint32_t sent = 0;
        sim::Channel<bool> window(eq);
        int inflight = 0;
        while (sent < total) {
            std::uint32_t n = std::min(chunk, total - sent);
            sent += n;
            co_await src.vme().transferAwait(n);
            ++inflight;
            sim::spawn([](transport::Transport &tp, std::uint32_t n,
                          sim::Channel<bool> &window,
                          int &inflight) -> Task<void> {
                co_await tp.sendReliable(
                    2, 10, std::vector<std::uint8_t>(n, 1));
                --inflight;
                window.push(true);
            }(tp, n, window, inflight));
            while (inflight >= 4)
                co_await window.pop();
        }
        while (inflight > 0)
            co_await window.pop();
    }(eq, src, *sys->site(0).transport, totalBytes, chunk));

    eq.run();
    return Trace{eq.fingerprint(), eq.executedCount(), eq.now()};
}

/** C1 replica: broadcast to a group over hardware multicast. */
Trace
broadcastOnce(int members, std::uint32_t bytes)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, members);
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    auto gid = std::make_shared<collective::GroupId>(0);
    auto *groupsp = &groups;
    std::vector<nectarine::TaskId> ids;
    for (int r = 0; r < members; ++r) {
        ids.push_back(api.createTask(
            static_cast<std::size_t>(r), "bc" + std::to_string(r),
            [gid, groupsp, bytes](TaskContext &ctx) -> Task<void> {
                collective::Communicator comm(ctx, *groupsp, *gid,
                                              {});
                std::vector<std::uint8_t> data;
                if (comm.rank() == 0)
                    data.assign(bytes, 0xAB);
                co_await comm.broadcast(0, data);
            }));
    }
    *gid = groups.create("bcast", ids);
    eq.run();
    return Trace{eq.fingerprint(), eq.executedCount(), eq.now()};
}

/** C2 replica: a short allreduce over the collectives subsystem. */
Trace
allreduceOnce(int members, std::uint32_t bytes, int rounds)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, members);
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    workload::AllreduceConfig cfg;
    cfg.members = members;
    cfg.bytes = bytes;
    cfg.rounds = rounds;
    std::vector<std::size_t> sites(static_cast<std::size_t>(members));
    for (int i = 0; i < members; ++i)
        sites[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(i);
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    eq.run();
    EXPECT_EQ(w.report().okMembers, members);
    return Trace{eq.fingerprint(), eq.executedCount(), eq.now()};
}

} // namespace

TEST(Determinism, FingerprintAdvancesAndIsOrderSensitive)
{
    sim::EventQueue eq;
    std::uint64_t empty = eq.fingerprint();
    eq.schedule(1 * sim::ticks::ns, [] {});
    eq.schedule(2 * sim::ticks::ns, [] {});
    eq.run();
    EXPECT_NE(eq.fingerprint(), empty);

    // Same events, different order: the trace hash must differ.
    sim::EventQueue other;
    other.schedule(2 * sim::ticks::ns, [] {});
    other.schedule(1 * sim::ticks::ns, [] {});
    other.run();
    EXPECT_EQ(other.executedCount(), eq.executedCount());
    EXPECT_NE(other.fingerprint(), eq.fingerprint());
}

TEST(Determinism, PacketPipelineTraceIsReproducible)
{
    Trace a = packetPipelineOnce(32 * 1024);
    Trace b = packetPipelineOnce(32 * 1024);
    EXPECT_GT(a.executed, 0u);
    EXPECT_GT(a.end, 0);
    EXPECT_EQ(a, b);
}

TEST(Determinism, BroadcastTraceIsReproducible)
{
    Trace a = broadcastOnce(4, 512);
    Trace b = broadcastOnce(4, 512);
    EXPECT_GT(a.executed, 0u);
    EXPECT_EQ(a, b);
}

TEST(Determinism, AllreduceTraceIsReproducible)
{
    Trace a = allreduceOnce(4, 256, 2);
    Trace b = allreduceOnce(4, 256, 2);
    EXPECT_GT(a.executed, 0u);
    EXPECT_EQ(a, b);
}
