/**
 * @file
 * Tests for the nectar-lint static-analysis pass.
 *
 * Two layers: the corpus tests lint the one-rule-per-file fixtures in
 * tests/lint_corpus/ and assert the exact (rule, line) findings — if
 * any of D1–D8 or A1 stops firing, the corresponding test fails.  The
 * inline tests feed lintSource() small snippets to pin down the edge
 * cases (literals in comments/strings, annotation coverage, the
 * packet-path filter).
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph.hh"
#include "lint.hh"

using nectar::lint::Finding;
using nectar::lint::lintFile;
using nectar::lint::lintSource;
using nectar::lint::Options;

namespace {

std::vector<std::pair<std::string, int>>
ruleLines(const std::vector<Finding> &findings)
{
    std::vector<std::pair<std::string, int>> out;
    for (const auto &f : findings)
        out.emplace_back(f.rule, f.line);
    return out;
}

std::vector<std::pair<std::string, int>>
lintCorpus(const std::string &relative)
{
    std::string path =
        std::string(NECTAR_LINT_CORPUS_DIR) + "/" + relative;
    return ruleLines(lintFile(path));
}

using Expected = std::vector<std::pair<std::string, int>>;

} // namespace

// --------------------------------------------------------------------
// Corpus: each fixture violates exactly one rule, and the findings
// must match rule ids and line numbers exactly.
// --------------------------------------------------------------------

TEST(LintCorpus, D1WallClockSourcesAllFire)
{
    EXPECT_EQ(lintCorpus("d1_wallclock.cc"),
              (Expected{{"D1", 10}, {"D1", 11}, {"D1", 12}, {"D1", 13}}));
}

TEST(LintCorpus, D2UnorderedIterationFires)
{
    EXPECT_EQ(lintCorpus("d2_unordered_iter.cc"),
              (Expected{{"D2", 11}, {"D2", 13}}));
}

TEST(LintCorpus, D3PacketPathCopiesFire)
{
    // The fixture lives under lint_corpus/hub/, so the packet-path
    // directory filter matches and all three copy forms fire.
    EXPECT_EQ(lintCorpus("hub/d3_copies.cc"),
              (Expected{{"D3", 11}, {"D3", 12}, {"D3", 13}}));
}

TEST(LintCorpus, D4ReferenceCapturesFire)
{
    // Findings anchor at the schedule-call line, not the lambda line.
    EXPECT_EQ(lintCorpus("d4_ref_capture.cc"),
              (Expected{{"D4", 9}, {"D4", 11}}));
}

TEST(LintCorpus, D4SpawnReferenceCapturesFire)
{
    // spawn() sites obey the same capture rule as schedule(); the
    // bare-int task argument on the last line must not trip D5.
    EXPECT_EQ(lintCorpus("d4_spawn_capture.cc"),
              (Expected{{"D4", 13}, {"D4", 14}}));
}

TEST(LintCorpus, D5BareTickLiteralsFire)
{
    // Digit separators, hex and suffixed literals all count as bare.
    EXPECT_EQ(lintCorpus("d5_bare_ticks.cc"),
              (Expected{{"D5", 8}, {"D5", 9}, {"D5", 10}}));
}

TEST(LintCorpus, A1BadAnnotationsFire)
{
    EXPECT_EQ(lintCorpus("a1_bad_annotation.cc"),
              (Expected{{"A1", 2}, {"A1", 3}}));
}

TEST(LintCorpus, CleanCounterExamplesStaySilent)
{
    EXPECT_EQ(lintCorpus("clean.cc"), Expected{});
}

TEST(LintCorpus, JustifiedAnnotationsSuppress)
{
    EXPECT_EQ(lintCorpus("annotated.cc"), Expected{});
}

// --------------------------------------------------------------------
// Inline edge cases.
// --------------------------------------------------------------------

TEST(LintSource, LiteralsInCommentsAndStringsAreIgnored)
{
    std::string src = "// rand() memcpy schedule(5, x)\n"
                      "const char *s = \"std::random_device\";\n"
                      "const char *r = R\"(system_clock)\";\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, VariableDelayAndUnitExpressionsPassD5)
{
    std::string src = "void f(EQ &eq, Tick d) {\n"
                      "    eq.scheduleIn(d, [] {});\n"
                      "    eq.scheduleIn(3 * ticks::us, [] {});\n"
                      "    eq.schedule(ticks::immediate, [] {});\n"
                      "}\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, IndexingIsNotALambdaIntro)
{
    // arr[&x - p] after an identifier is indexing, not a capture.
    std::string src = "void f(EQ &eq, Tick d, int *arr, int *p) {\n"
                      "    int x = 0;\n"
                      "    eq.scheduleIn(d, cb[&x - p]);\n"
                      "}\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, MultiLineScheduleAnchorsAtCallLine)
{
    std::string src = "void f(EQ &eq, Tick d) {\n"
                      "    int n = 0;\n"
                      "    eq.scheduleIn(\n"
                      "        d,\n"
                      "        [&n] { ++n; });\n"
                      "}\n";
    auto found = ruleLines(lintSource("x.cc", src));
    EXPECT_EQ(found, (Expected{{"D4", 3}}));
}

TEST(LintSource, AnnotationCoversNextCodeLine)
{
    std::string src = "void f(EQ &eq, Tick d) {\n"
                      "    int n = 0;\n"
                      "    // nectar-lint: capture-ok queue drained\n"
                      "    // before n goes out of scope\n"
                      "    eq.scheduleIn(\n"
                      "        d, [&n] { ++n; });\n"
                      "}\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, PacketPathFilterGatesD3)
{
    std::string src = "std::vector<std::uint8_t> held(64, 0);\n";
    EXPECT_TRUE(lintSource("src/workload/w.cc", src).empty());
    auto found = ruleLines(lintSource("src/transport/t.cc", src));
    EXPECT_EQ(found, (Expected{{"D3", 1}}));
}

TEST(LintSource, NonOwningVectorUsesPassD3)
{
    std::string src =
        "void g(const std::vector<std::uint8_t> &in,\n"
        "       std::vector<std::uint8_t> *out);\n"
        "std::map<int, std::vector<std::uint8_t>> table;\n";
    EXPECT_TRUE(lintSource("src/transport/t.cc", src).empty());
}

TEST(LintSource, CustomPacketPathOption)
{
    Options opts;
    opts.packetPathDirs = {"/fastpath/"};
    std::string src = "std::memcpy(a, b, n);\n";
    EXPECT_TRUE(lintSource("src/hub/h.cc", src, opts).empty());
    EXPECT_EQ(ruleLines(lintSource("src/fastpath/h.cc", src, opts)),
              (Expected{{"D3", 1}}));
}

TEST(LintSource, FileWideAnnotationDoesNotCrossRules)
{
    std::string src = "// nectar-lint-file: raw-ticks-ok demo ticks\n"
                      "void f(EQ &eq) {\n"
                      "    int n = 0;\n"
                      "    eq.schedule(5, [&n] { ++n; });\n"
                      "}\n";
    // D5 is waived file-wide; the D4 capture still fires.
    EXPECT_EQ(ruleLines(lintSource("x.cc", src)),
              (Expected{{"D4", 4}}));
}

TEST(LintSource, A1IsNeverSuppressed)
{
    std::string src = "// nectar-lint-file: wallclock-ok everything\n"
                      "// nectar-lint: bogus-tag whatever\n"
                      "int x = 0;\n";
    EXPECT_EQ(ruleLines(lintSource("x.cc", src)),
              (Expected{{"A1", 2}}));
}

TEST(LintSource, RuleDescriptionsExist)
{
    for (const char *rule : {"D1", "D2", "D3", "D4", "D5", "D6",
                             "D7", "D8", "A1"}) {
        ASSERT_NE(nectar::lint::ruleDescription(rule), nullptr);
        EXPECT_NE(std::string(nectar::lint::ruleDescription(rule)), "");
    }
}

// --------------------------------------------------------------------
// D1 extension: the time()/localtime() family and kernel entropy.
// --------------------------------------------------------------------

TEST(LintCorpus, D1TimeFamilyFires)
{
    EXPECT_EQ(lintCorpus("d1_time_family.cc"),
              (Expected{{"D1", 10},
                        {"D1", 11},
                        {"D1", 12},
                        {"D1", 13},
                        {"D1", 15},
                        {"D1", 16},
                        {"D1", 17}}));
}

TEST(LintSource, TimeOfAVariableIsNotWallClock)
{
    // time(&t) is wall clock; runtime(x) and a member named time are
    // not calls into the libc time family.
    std::string src = "void f(T &sim, long x) {\n"
                      "    long a = sim.runtime(x);\n"
                      "    long b = sim.time;\n"
                      "    (void)a; (void)b;\n"
                      "}\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
    EXPECT_EQ(ruleLines(lintSource(
                  "x.cc", "long g() { long t; return time(&t); }\n")),
              (Expected{{"D1", 1}}));
}

// --------------------------------------------------------------------
// D7 — mutable global / static state.
// --------------------------------------------------------------------

TEST(LintCorpus, D7GlobalStateFires)
{
    // Namespace-scope inline/static/extern variables (including the
    // function-pointer hook), a static data member, and the two
    // mutable function-local statics; const/constexpr/thread_local
    // and the annotated declaration stay silent.
    EXPECT_EQ(lintCorpus("src/d7_global_state.cc"),
              (Expected{{"D7", 8},
                        {"D7", 9},
                        {"D7", 10},
                        {"D7", 11},
                        {"D7", 22},
                        {"D7", 29},
                        {"D7", 38}}));
}

TEST(LintSource, D7AppliesOnlyUnderSimulationDirs)
{
    std::string src = "namespace x {\nstatic int hits = 0;\n}\n";
    EXPECT_EQ(ruleLines(lintSource("src/hub/h.cc", src)),
              (Expected{{"D7", 2}}));
    EXPECT_TRUE(lintSource("tools/t.cc", src).empty());
    EXPECT_TRUE(lintSource("tests/helpers/h.hh", src).empty());
}

TEST(LintSource, D7ConstAndThreadLocalPass)
{
    std::string src = "static const int a = 1;\n"
                      "static constexpr int b = 2;\n"
                      "static thread_local int c = 3;\n"
                      "inline void f() { static int d = 4; ++d; }\n";
    EXPECT_EQ(ruleLines(lintSource("src/sim/s.hh", src)),
              (Expected{{"D7", 4}}));
}

TEST(LintSource, D7StaticFunctionsAndClassesPass)
{
    std::string src = "static int helper(int x) { return x + 1; }\n"
                      "static inline int twice(int x)\n"
                      "{\n"
                      "    return helper(helper(x));\n"
                      "}\n";
    EXPECT_TRUE(lintSource("src/sim/s.cc", src).empty());
}

// --------------------------------------------------------------------
// The access-graph pass: D6/D8 corpus and edge classification.
// --------------------------------------------------------------------

namespace {

nectar::lint::GraphResult
analyzeGraphCorpus()
{
    std::vector<nectar::lint::SourceFile> files;
    for (const char *rel : {
             "graph/src/sim/component.hh",
             "graph/src/hub/widget.hh",
             "graph/src/phys/wire.hh",
             "graph/src/datalink/pump.hh",
             "graph/src/cab/board.cc",
         }) {
        std::string path =
            std::string(NECTAR_LINT_CORPUS_DIR) + "/" + rel;
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream ss;
        ss << in.rdbuf();
        files.push_back({path, ss.str()});
    }
    return nectar::lint::analyzeGraph(files);
}

/** The corpus edges from Board, as "to/kind/member" strings. */
std::vector<std::string>
boardEdges(const nectar::lint::GraphResult &g)
{
    std::vector<std::string> out;
    for (const auto &e : g.edges)
        if (e.from == "Board")
            out.push_back(e.to + "/" + e.kind + "/" + e.member +
                          (e.annotated ? "/annotated" : ""));
    return out;
}

} // namespace

TEST(LintGraph, CorpusComponentsRolesAndInterfaces)
{
    auto g = analyzeGraphCorpus();
    ASSERT_EQ(g.components.size(), 5u);
    EXPECT_EQ(g.components.at("Component").role, "engine");
    EXPECT_EQ(g.components.at("Widget").role, "hub");
    EXPECT_EQ(g.components.at("FiberLink").role, "wire");
    EXPECT_EQ(g.components.at("Pump").role, "site");
    EXPECT_EQ(g.components.at("Board").role, "site");
    // The aggregate behind the accessor is internals, not a node.
    EXPECT_EQ(g.components.count("Gauge"), 0u);
}

TEST(LintGraph, CorpusFindingsExact)
{
    auto g = analyzeGraphCorpus();
    std::vector<std::pair<std::string, int>> got;
    for (const auto &f : g.findings)
        got.emplace_back(f.rule, f.line);
    EXPECT_EQ(got, (Expected{
                       {"D6", 34}, {"D6", 37}, {"D6", 38}, {"D8", 48}}));
}

TEST(LintGraph, CorpusEdgeClassification)
{
    auto g = analyzeGraphCorpus();
    auto edges = boardEdges(g);
    auto has = [&](const std::string &s) {
        return std::count(edges.begin(), edges.end(), s);
    };
    // One of each sanctioned kind...
    EXPECT_EQ(has("Widget/read/level"), 1);
    EXPECT_EQ(has("FiberLink/mediated/send"), 1);
    EXPECT_EQ(has("Pump/co-located/run"), 1);
    EXPECT_EQ(has("Widget/mediated/poke/annotated"), 1);
    EXPECT_EQ(has("Widget/foreign-ref/gauge/annotated"), 1);
    // ... and the violations, kept in the edge list as well.
    EXPECT_EQ(has("Widget/direct-mutation/poke"), 1);
    EXPECT_EQ(has("Widget/direct-mutation/gauge"), 1);
    EXPECT_EQ(has("FiberLink/direct-mutation/jiggle"), 1);
    EXPECT_EQ(has("Widget/foreign-ref/gauge"), 1);
}

TEST(LintGraph, MediatedAllowlistIsConfigurable)
{
    std::vector<nectar::lint::SourceFile> files = {
        {"src/sim/component.hh",
         "namespace s { class Component { public: int x = 0; }; }\n"},
        {"src/hub/a.hh",
         "class A : public s::Component {\n"
         "  public:\n"
         "    void hit() { ++n; }\n"
         "  private:\n"
         "    int n = 0;\n"
         "};\n"},
        {"src/cab/b.cc",
         "class B : public s::Component {\n"
         "  public:\n"
         "    void go() { other.hit(); }\n"
         "  private:\n"
         "    A &other;\n"
         "};\n"},
    };
    nectar::lint::GraphOptions opts;
    auto g1 = nectar::lint::analyzeGraph(files, opts);
    ASSERT_EQ(g1.findings.size(), 1u);
    EXPECT_EQ(g1.findings[0].rule, "D6");

    opts.mediatedAllowlist.push_back({"A", "hit"});
    auto g2 = nectar::lint::analyzeGraph(files, opts);
    EXPECT_TRUE(g2.findings.empty());
}

TEST(LintGraph, JsonIsDeterministic)
{
    auto g1 = analyzeGraphCorpus();
    auto g2 = analyzeGraphCorpus();
    nectar::lint::GraphOptions opts;
    EXPECT_EQ(nectar::lint::graphJson(g1, opts),
              nectar::lint::graphJson(g2, opts));
    EXPECT_NE(nectar::lint::graphJson(g1, opts).find("\"edges\""),
              std::string::npos);
}
