/**
 * @file
 * Tests for the nectar-lint static-analysis pass.
 *
 * Two layers: the corpus tests lint the one-rule-per-file fixtures in
 * tests/lint_corpus/ and assert the exact (rule, line) findings — if
 * any of D1–D5 or A1 stops firing, the corresponding test fails.  The
 * inline tests feed lintSource() small snippets to pin down the edge
 * cases (literals in comments/strings, annotation coverage, the
 * packet-path filter).
 */

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"

using nectar::lint::Finding;
using nectar::lint::lintFile;
using nectar::lint::lintSource;
using nectar::lint::Options;

namespace {

std::vector<std::pair<std::string, int>>
ruleLines(const std::vector<Finding> &findings)
{
    std::vector<std::pair<std::string, int>> out;
    for (const auto &f : findings)
        out.emplace_back(f.rule, f.line);
    return out;
}

std::vector<std::pair<std::string, int>>
lintCorpus(const std::string &relative)
{
    std::string path =
        std::string(NECTAR_LINT_CORPUS_DIR) + "/" + relative;
    return ruleLines(lintFile(path));
}

using Expected = std::vector<std::pair<std::string, int>>;

} // namespace

// --------------------------------------------------------------------
// Corpus: each fixture violates exactly one rule, and the findings
// must match rule ids and line numbers exactly.
// --------------------------------------------------------------------

TEST(LintCorpus, D1WallClockSourcesAllFire)
{
    EXPECT_EQ(lintCorpus("d1_wallclock.cc"),
              (Expected{{"D1", 10}, {"D1", 11}, {"D1", 12}, {"D1", 13}}));
}

TEST(LintCorpus, D2UnorderedIterationFires)
{
    EXPECT_EQ(lintCorpus("d2_unordered_iter.cc"),
              (Expected{{"D2", 11}, {"D2", 13}}));
}

TEST(LintCorpus, D3PacketPathCopiesFire)
{
    // The fixture lives under lint_corpus/hub/, so the packet-path
    // directory filter matches and all three copy forms fire.
    EXPECT_EQ(lintCorpus("hub/d3_copies.cc"),
              (Expected{{"D3", 11}, {"D3", 12}, {"D3", 13}}));
}

TEST(LintCorpus, D4ReferenceCapturesFire)
{
    // Findings anchor at the schedule-call line, not the lambda line.
    EXPECT_EQ(lintCorpus("d4_ref_capture.cc"),
              (Expected{{"D4", 9}, {"D4", 11}}));
}

TEST(LintCorpus, D4SpawnReferenceCapturesFire)
{
    // spawn() sites obey the same capture rule as schedule(); the
    // bare-int task argument on the last line must not trip D5.
    EXPECT_EQ(lintCorpus("d4_spawn_capture.cc"),
              (Expected{{"D4", 13}, {"D4", 14}}));
}

TEST(LintCorpus, D5BareTickLiteralsFire)
{
    // Digit separators, hex and suffixed literals all count as bare.
    EXPECT_EQ(lintCorpus("d5_bare_ticks.cc"),
              (Expected{{"D5", 8}, {"D5", 9}, {"D5", 10}}));
}

TEST(LintCorpus, A1BadAnnotationsFire)
{
    EXPECT_EQ(lintCorpus("a1_bad_annotation.cc"),
              (Expected{{"A1", 2}, {"A1", 3}}));
}

TEST(LintCorpus, CleanCounterExamplesStaySilent)
{
    EXPECT_EQ(lintCorpus("clean.cc"), Expected{});
}

TEST(LintCorpus, JustifiedAnnotationsSuppress)
{
    EXPECT_EQ(lintCorpus("annotated.cc"), Expected{});
}

// --------------------------------------------------------------------
// Inline edge cases.
// --------------------------------------------------------------------

TEST(LintSource, LiteralsInCommentsAndStringsAreIgnored)
{
    std::string src = "// rand() memcpy schedule(5, x)\n"
                      "const char *s = \"std::random_device\";\n"
                      "const char *r = R\"(system_clock)\";\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, VariableDelayAndUnitExpressionsPassD5)
{
    std::string src = "void f(EQ &eq, Tick d) {\n"
                      "    eq.scheduleIn(d, [] {});\n"
                      "    eq.scheduleIn(3 * ticks::us, [] {});\n"
                      "    eq.schedule(ticks::immediate, [] {});\n"
                      "}\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, IndexingIsNotALambdaIntro)
{
    // arr[&x - p] after an identifier is indexing, not a capture.
    std::string src = "void f(EQ &eq, Tick d, int *arr, int *p) {\n"
                      "    int x = 0;\n"
                      "    eq.scheduleIn(d, cb[&x - p]);\n"
                      "}\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, MultiLineScheduleAnchorsAtCallLine)
{
    std::string src = "void f(EQ &eq, Tick d) {\n"
                      "    int n = 0;\n"
                      "    eq.scheduleIn(\n"
                      "        d,\n"
                      "        [&n] { ++n; });\n"
                      "}\n";
    auto found = ruleLines(lintSource("x.cc", src));
    EXPECT_EQ(found, (Expected{{"D4", 3}}));
}

TEST(LintSource, AnnotationCoversNextCodeLine)
{
    std::string src = "void f(EQ &eq, Tick d) {\n"
                      "    int n = 0;\n"
                      "    // nectar-lint: capture-ok queue drained\n"
                      "    // before n goes out of scope\n"
                      "    eq.scheduleIn(\n"
                      "        d, [&n] { ++n; });\n"
                      "}\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(LintSource, PacketPathFilterGatesD3)
{
    std::string src = "std::vector<std::uint8_t> held(64, 0);\n";
    EXPECT_TRUE(lintSource("src/workload/w.cc", src).empty());
    auto found = ruleLines(lintSource("src/transport/t.cc", src));
    EXPECT_EQ(found, (Expected{{"D3", 1}}));
}

TEST(LintSource, NonOwningVectorUsesPassD3)
{
    std::string src =
        "void g(const std::vector<std::uint8_t> &in,\n"
        "       std::vector<std::uint8_t> *out);\n"
        "std::map<int, std::vector<std::uint8_t>> table;\n";
    EXPECT_TRUE(lintSource("src/transport/t.cc", src).empty());
}

TEST(LintSource, CustomPacketPathOption)
{
    Options opts;
    opts.packetPathDirs = {"/fastpath/"};
    std::string src = "std::memcpy(a, b, n);\n";
    EXPECT_TRUE(lintSource("src/hub/h.cc", src, opts).empty());
    EXPECT_EQ(ruleLines(lintSource("src/fastpath/h.cc", src, opts)),
              (Expected{{"D3", 1}}));
}

TEST(LintSource, FileWideAnnotationDoesNotCrossRules)
{
    std::string src = "// nectar-lint-file: raw-ticks-ok demo ticks\n"
                      "void f(EQ &eq) {\n"
                      "    int n = 0;\n"
                      "    eq.schedule(5, [&n] { ++n; });\n"
                      "}\n";
    // D5 is waived file-wide; the D4 capture still fires.
    EXPECT_EQ(ruleLines(lintSource("x.cc", src)),
              (Expected{{"D4", 4}}));
}

TEST(LintSource, A1IsNeverSuppressed)
{
    std::string src = "// nectar-lint-file: wallclock-ok everything\n"
                      "// nectar-lint: bogus-tag whatever\n"
                      "int x = 0;\n";
    EXPECT_EQ(ruleLines(lintSource("x.cc", src)),
              (Expected{{"A1", 2}}));
}

TEST(LintSource, RuleDescriptionsExist)
{
    for (const char *rule : {"D1", "D2", "D3", "D4", "D5", "A1"}) {
        ASSERT_NE(nectar::lint::ruleDescription(rule), nullptr);
        EXPECT_NE(std::string(nectar::lint::ruleDescription(rule)), "");
    }
}
