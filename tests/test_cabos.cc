/**
 * @file
 * Unit tests for the CAB kernel: buffer allocator, threads with
 * costed context switches, mailboxes (FIFO, out-of-order, blocking),
 * and protection-domain management.
 */

#include <gtest/gtest.h>

#include "cab/cab.hh"
#include "cabos/kernel.hh"
#include "sim/coro.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using namespace nectar::cabos;
using sim::Task;
using sim::Tick;
using sim::ticks::us;

// ----- BufferAllocator ----------------------------------------------

TEST(BufferAllocator, AllocatesAndReleases)
{
    BufferAllocator a(0x1000, 4096);
    auto p = a.allocate(100);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 0x1000u);
    EXPECT_EQ(a.bytesInUse(), 100u);
    EXPECT_TRUE(a.release(*p));
    EXPECT_EQ(a.bytesInUse(), 0u);
}

TEST(BufferAllocator, FirstFitPacksSequentially)
{
    BufferAllocator a(0, 1024);
    auto p1 = a.allocate(100);
    auto p2 = a.allocate(100);
    ASSERT_TRUE(p1 && p2);
    EXPECT_EQ(*p2, 100u);
}

TEST(BufferAllocator, ExhaustionFails)
{
    BufferAllocator a(0, 256);
    EXPECT_TRUE(a.allocate(200).has_value());
    EXPECT_FALSE(a.allocate(100).has_value());
    EXPECT_EQ(a.failedAllocs(), 1u);
}

TEST(BufferAllocator, CoalescesFreedNeighbours)
{
    BufferAllocator a(0, 300);
    auto p1 = a.allocate(100);
    auto p2 = a.allocate(100);
    auto p3 = a.allocate(100);
    ASSERT_TRUE(p1 && p2 && p3);
    a.release(*p1);
    a.release(*p3);
    EXPECT_EQ(a.largestFreeBlock(), 100u);
    a.release(*p2); // merges all three
    EXPECT_EQ(a.largestFreeBlock(), 300u);
    EXPECT_TRUE(a.allocate(300).has_value());
}

TEST(BufferAllocator, DoubleReleaseReturnsFalse)
{
    BufferAllocator a(0, 256);
    auto p = a.allocate(10);
    EXPECT_TRUE(a.release(*p));
    EXPECT_FALSE(a.release(*p));
    EXPECT_FALSE(a.release(0xDEAD));
}

TEST(BufferAllocator, ZeroLengthAllocFails)
{
    BufferAllocator a(0, 256);
    EXPECT_FALSE(a.allocate(0).has_value());
}

// ----- Kernel fixture -------------------------------------------------

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest() : board(eq, "cab0"), kernel(board) {}

    sim::EventQueue eq;
    cab::Cab board;
    Kernel kernel;
};

// ----- Threads --------------------------------------------------------

TEST_F(KernelTest, SpawnedThreadRunsAndCompletes)
{
    bool ran = false;
    kernel.spawnThread("t", [](bool &ran) -> Task<void> {
        ran = true;
        co_return;
    }(ran));
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(kernel.threadsSpawned(), 1u);
    EXPECT_EQ(kernel.aliveThreads(), 0);
}

TEST_F(KernelTest, SleepChargesSwitchOnWakeup)
{
    // Section 6.1: "Thread switching takes between 10 and 15
    // microseconds."  A sleeping thread pays a switch when resumed.
    Tick woke = -1;
    kernel.spawnThread("sleeper",
                       [](Kernel &k, sim::EventQueue &eq,
                          Tick &woke) -> Task<void> {
        co_await k.sleepFor(100 * us);
        woke = eq.now();
    }(kernel, eq, woke));
    eq.run();
    Tick switch_cost = woke - 100 * us;
    EXPECT_GE(switch_cost, 10 * us);
    EXPECT_LE(switch_cost, 15 * us);
    EXPECT_EQ(kernel.threadSwitches(), 1u);
}

TEST_F(KernelTest, NonPreemptiveInterleaving)
{
    // Two threads sleeping different intervals interleave by time.
    std::vector<int> order;
    auto worker = [](Kernel &k, std::vector<int> &order, int id,
                     Tick t) -> Task<void> {
        co_await k.sleepFor(t);
        order.push_back(id);
    };
    kernel.spawnThread("a", worker(kernel, order, 1, 300 * us));
    kernel.spawnThread("b", worker(kernel, order, 2, 100 * us));
    kernel.spawnThread("c", worker(kernel, order, 3, 200 * us));
    EXPECT_EQ(kernel.aliveThreads(), 3);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
    EXPECT_EQ(kernel.aliveThreads(), 0);
}

// ----- Mailboxes -------------------------------------------------------

TEST_F(KernelTest, MailboxFifoOrder)
{
    auto &mb = kernel.createMailbox("mb", 4096);
    EXPECT_TRUE(mb.tryPut(Message{{1}, 0, 0, 0}));
    EXPECT_TRUE(mb.tryPut(Message{{2}, 0, 0, 0}));
    auto m1 = mb.tryGet();
    auto m2 = mb.tryGet();
    ASSERT_TRUE(m1 && m2);
    EXPECT_EQ(m1->view()[0], 1);
    EXPECT_EQ(m2->view()[0], 2);
    EXPECT_FALSE(mb.tryGet().has_value());
}

TEST_F(KernelTest, MailboxCapacityEnforced)
{
    auto &mb = kernel.createMailbox("mb", 100);
    EXPECT_TRUE(mb.tryPut(Message{std::vector<std::uint8_t>(80), 0, 0,
                                  0}));
    EXPECT_FALSE(mb.tryPut(Message{std::vector<std::uint8_t>(40), 0, 0,
                                   0}));
    EXPECT_EQ(mb.putFailures(), 1u);
}

TEST_F(KernelTest, MailboxBackedByDataRam)
{
    auto &mb = kernel.createMailbox("mb", 4096);
    auto before = kernel.allocator().bytesInUse();
    mb.tryPut(Message{std::vector<std::uint8_t>(256), 0, 0, 0});
    EXPECT_EQ(kernel.allocator().bytesInUse(), before + 256);
    mb.tryGet();
    EXPECT_EQ(kernel.allocator().bytesInUse(), before);
}

TEST_F(KernelTest, BlockingGetWokenByPut)
{
    auto &mb = kernel.createMailbox("mb", 4096);
    std::uint8_t got = 0;
    Tick when = -1;
    kernel.spawnThread("reader",
                       [](Kernel &k, Mailbox &mb, std::uint8_t &got,
                          Tick &when) -> Task<void> {
        Message m = co_await mb.get();
        got = m.view()[0];
        when = k.now();
    }(kernel, mb, got, when));
    eq.schedule(1000 * sim::ticks::ns, [&] { mb.tryPut(Message{{42}, 0, 0, 0}); });
    eq.run();
    EXPECT_EQ(got, 42);
    // The reader paid a context switch after the 1 us wakeup.
    EXPECT_GE(when, 1000 + 10 * us);
    EXPECT_EQ(kernel.threadSwitches(), 1u);
}

TEST_F(KernelTest, ImmediateGetSkipsContextSwitch)
{
    auto &mb = kernel.createMailbox("mb", 4096);
    mb.tryPut(Message{{9}, 0, 0, 0});
    std::uint8_t got = 0;
    kernel.spawnThread("reader",
                       [](Mailbox &mb, std::uint8_t &got) -> Task<void> {
        Message m = co_await mb.get();
        got = m.view()[0];
    }(mb, got));
    eq.run();
    EXPECT_EQ(got, 9);
    EXPECT_EQ(kernel.threadSwitches(), 0u);
}

TEST_F(KernelTest, OutOfOrderTagReads)
{
    // "Mailboxes also support ... out-of-order reads" (Section 6.1).
    auto &mb = kernel.createMailbox("mb", 4096);
    mb.tryPut(Message{{1}, /*tag=*/10, 0, 0});
    mb.tryPut(Message{{2}, /*tag=*/20, 0, 0});
    mb.tryPut(Message{{3}, /*tag=*/30, 0, 0});
    auto m = mb.tryGetTag(20);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->view()[0], 2);
    // FIFO order preserved among the rest.
    EXPECT_EQ(mb.tryGet()->view()[0], 1);
    EXPECT_EQ(mb.tryGet()->view()[0], 3);
}

TEST_F(KernelTest, BlockingTagReadersAreServedSelectively)
{
    auto &mb = kernel.createMailbox("mb", 4096);
    std::vector<std::pair<int, std::uint64_t>> served;
    auto server = [](Mailbox &mb, int id, std::uint64_t tag,
                     std::vector<std::pair<int, std::uint64_t>> &served)
        -> Task<void> {
        Message m = co_await mb.getTag(tag);
        served.emplace_back(id, m.tag);
    };
    // "multiple servers operate on different messages in the same
    // mailbox" (Section 6.1).
    kernel.spawnThread("s1", server(mb, 1, 100, served));
    kernel.spawnThread("s2", server(mb, 2, 200, served));
    eq.schedule(10 * sim::ticks::ns, [&] { mb.tryPut(Message{{1}, 200, 0, 0}); });
    eq.schedule(20 * sim::ticks::ns, [&] { mb.tryPut(Message{{2}, 100, 0, 0}); });
    eq.run();
    ASSERT_EQ(served.size(), 2u);
    EXPECT_EQ(served[0], std::make_pair(2, std::uint64_t(200)));
    EXPECT_EQ(served[1], std::make_pair(1, std::uint64_t(100)));
}

TEST_F(KernelTest, BlockingPutWaitsForSpace)
{
    auto &mb = kernel.createMailbox("mb", 100);
    mb.tryPut(Message{std::vector<std::uint8_t>(100), 0, 0, 0});
    bool put_done = false;
    kernel.spawnThread("writer",
                       [](Mailbox &mb, bool &done) -> Task<void> {
        co_await mb.put(Message{std::vector<std::uint8_t>(50), 0, 0,
                                0});
        done = true;
    }(mb, put_done));
    eq.runUntil(50 * us);
    EXPECT_FALSE(put_done);
    mb.tryGet(); // free space; wakes the writer
    eq.run();
    EXPECT_TRUE(put_done);
    EXPECT_EQ(mb.count(), 1u);
}

TEST_F(KernelTest, MailboxRegistryLookup)
{
    auto &a = kernel.createMailbox("a", 128);
    auto &b = kernel.createMailbox("b", 128, 77);
    EXPECT_EQ(kernel.mailbox(a.id()), &a);
    EXPECT_EQ(kernel.mailbox(77), &b);
    EXPECT_EQ(kernel.mailbox(999), nullptr);
    EXPECT_TRUE(kernel.destroyMailbox(77));
    EXPECT_EQ(kernel.mailbox(77), nullptr);
}

TEST_F(KernelTest, DuplicateMailboxIdIsFatal)
{
    kernel.createMailbox("a", 128, 5);
    EXPECT_THROW(kernel.createMailbox("b", 128, 5), sim::FatalError);
}

// ----- Protection domains ----------------------------------------------

TEST_F(KernelTest, DomainAllocationAndExhaustion)
{
    std::vector<cab::Domain> got;
    for (int i = 0; i < 30; ++i) {
        cab::Domain d = kernel.allocateDomain();
        ASSERT_GE(d, 1);
        ASSERT_LT(d, cab::vmeDomain);
        got.push_back(d);
    }
    // 30 user domains (32 minus kernel minus VME) exhaust the pool.
    EXPECT_EQ(kernel.allocateDomain(), -1);
    kernel.freeDomain(got[7]);
    EXPECT_EQ(kernel.allocateDomain(), got[7]);
}

TEST_F(KernelTest, FreeDomainRevokesPermissions)
{
    cab::Domain d = kernel.allocateDomain();
    auto &prot = board.memory().protection();
    prot.setPerms(d, cab::addrmap::dataRamBase, 1024, cab::permRW);
    EXPECT_TRUE(prot.check(d, cab::addrmap::dataRamBase, 4,
                           cab::permWrite));
    kernel.freeDomain(d);
    EXPECT_FALSE(prot.check(d, cab::addrmap::dataRamBase, 4,
                            cab::permWrite));
}
