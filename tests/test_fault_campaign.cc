/**
 * @file
 * Chaos campaign tests: scripted link flaps, burst-loss windows, HUB
 * port failures, and CAB crash/restart against live reliable traffic.
 *
 * The central invariant: under any campaign, every reliable message
 * is either delivered exactly once or reported failed to its sender —
 * never silently lost, never duplicated.  Campaigns are seeded and
 * must reproduce byte-identical reports.
 */

#include <gtest/gtest.h>

#include <map>

#include "fault/chaos.hh"
#include "nectarine/system.hh"
#include "sim/coro.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using namespace nectar::fault;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using sim::ticks::ms;
using sim::ticks::us;

namespace {

/** Two HUBs joined by parallel links on ports 10 and 11, one CAB on
 *  each HUB (port 0).  The redundancy lets a flap reroute. */
std::unique_ptr<NectarSystem>
twoHubRedundant(sim::EventQueue &eq,
                const nectarine::SiteConfig &site = {})
{
    auto t = std::make_unique<topo::Topology>(eq);
    t->addHub();
    t->addHub();
    t->linkHubs(0, 10, 1, 10);
    t->linkHubs(0, 11, 1, 11);
    auto sys = std::make_unique<NectarSystem>(eq, std::move(t));
    sys->addCab(0, 0, "", site);
    sys->addCab(1, 0, "", site);
    return sys;
}

/** Sends @p n tagged messages of @p size bytes on one flow; records
 *  per-message outcomes. */
struct TaggedSender
{
    std::vector<bool> ok;

    Task<void>
    run(transport::Transport &tp, transport::CabAddress dst, int n,
        std::size_t size)
    {
        ok.assign(n, false);
        for (int i = 0; i < n; ++i) {
            std::vector<std::uint8_t> msg(size,
                                          static_cast<std::uint8_t>(i));
            msg[0] = static_cast<std::uint8_t>(i); // tag
            ok[i] = co_await tp.sendReliable(dst, 20, std::move(msg));
        }
    }
};

/** Drain a mailbox; returns delivery count per message tag. */
std::map<int, int>
drainTags(cabos::Mailbox &mb)
{
    std::map<int, int> count;
    while (auto m = mb.tryGet())
        ++count[m->view().empty() ? -1 : m->view()[0]];
    return count;
}

/** The acceptance demo: burst window on the sender's uplink, a
 *  mid-stream link flap, and a receiver CAB crash+restart, against a
 *  stream of reliable messages.  Returns the formatted report plus
 *  outcome bookkeeping for the invariant checks. */
struct CampaignOutcome
{
    std::string report;
    std::uint64_t reroutes = 0;
    std::uint64_t sendFailures = 0;
    std::vector<bool> ok;
    std::map<int, int> delivered;
};

CampaignOutcome
runDemoCampaign(std::uint64_t seed)
{
    sim::EventQueue eq;
    auto sys = twoHubRedundant(eq);
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 20);

    FaultPlan plan;
    plan.name = "demo";
    plan.seed = seed;
    plan.burstWindow(200 * us, 1200 * us, 0, Direction::toHub,
                     phys::GilbertElliott::forLossRate(0.05, 8.0));
    plan.hubLinkDown(2 * ms, 0, 10);
    plan.hubLinkUp(2 * ms + 600 * us, 0, 10);
    plan.cabCrash(5 * ms, 1);
    plan.cabRestart(7 * ms, 1);

    ChaosController chaos(*sys, plan);

    const int n = 30;
    TaggedSender sender;
    sim::spawn(sender.run(*sys->site(0).transport, 2, n, 4096));
    eq.run();

    CampaignOutcome out;
    auto report = chaos.report();
    out.report = report.format();
    out.reroutes = report.reroutes;
    out.sendFailures = report.sendFailures;
    out.ok = sender.ok;
    out.delivered = drainTags(mb);
    EXPECT_EQ(chaos.eventsExecuted(), plan.events.size());
    return out;
}

} // namespace

TEST(FaultCampaign, DemoDeliversExactlyOnceOrFails)
{
    auto out = runDemoCampaign(1234);

    // No silent loss, no duplicates: each message was delivered
    // exactly once, or its sender was told it failed.
    for (int i = 0; i < static_cast<int>(out.ok.size()); ++i) {
        int copies = out.delivered.count(i) ? out.delivered.at(i) : 0;
        EXPECT_LE(copies, 1) << "message " << i << " duplicated";
        if (out.ok[i])
            EXPECT_EQ(copies, 1) << "message " << i
                                 << " reported ok but lost";
        else
            EXPECT_EQ(copies, 0) << "message " << i
                                 << " failed yet delivered";
    }
    // The flap forced traffic over the surviving parallel link.
    EXPECT_GE(out.reroutes, 1u);
}

TEST(FaultCampaign, SameSeedGivesByteIdenticalReports)
{
    auto a = runDemoCampaign(77);
    auto b = runDemoCampaign(77);
    EXPECT_EQ(a.report, b.report);
    auto c = runDemoCampaign(78);
    EXPECT_NE(c.report, a.report);
}

TEST(FaultCampaign, MidStreamFlapReroutesAndRecovers)
{
    sim::EventQueue eq;
    auto sys = twoHubRedundant(eq);
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 20);

    FaultPlan plan;
    plan.name = "flap";
    plan.hubLinkDown(1 * ms, 0, 10);
    plan.hubLinkUp(1 * ms + 500 * us, 0, 10);
    ChaosController chaos(*sys, plan);

    TaggedSender sender;
    sim::spawn(sender.run(*sys->site(0).transport, 2, 1, 100 * 1024));
    eq.run();

    ASSERT_EQ(sender.ok.size(), 1u);
    EXPECT_TRUE(sender.ok[0]);
    EXPECT_EQ(drainTags(mb)[0], 1);
    auto report = chaos.report();
    EXPECT_GE(report.reroutes, 1u);
    EXPECT_GT(report.retransmissions, 0u);
    EXPECT_GE(report.messagesRecovered, 1u);
    EXPECT_GT(report.downDrops, 0u);
}

TEST(FaultCampaign, SenderEpochResetResynchronizesReceiver)
{
    // Fail a flow by darkening the receiver's attachment (its
    // protocol state survives, unlike a crash), then heal and send
    // again: the new epoch's first packet must resynchronize the
    // receiver's go-back-N state.
    sim::EventQueue eq;
    nectarine::SiteConfig site;
    site.transport.retransmitTimeout = 200 * us;
    site.transport.maxRetransmits = 3;
    site.transport.maxRto = 1 * ms;
    auto sys = NectarSystem::singleHub(eq, 2, site);
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 20);

    FaultPlan plan;
    plan.name = "resync";
    plan.cabLinkDown(150 * us, 1);
    plan.cabLinkUp(4 * ms, 1);
    ChaosController chaos(*sys, plan);

    bool okA = false, okB = false, okC = false;
    auto send = [](transport::Transport &tp, int tag,
                   bool &ok) -> Task<void> {
        std::vector<std::uint8_t> msg(600, 0);
        msg[0] = static_cast<std::uint8_t>(tag);
        ok = co_await tp.sendReliable(2, 20, std::move(msg));
    };
    auto &tp0 = *sys->site(0).transport;
    sim::spawn(send(tp0, 0, okA));
    eq.scheduleIn(300 * us,
                  [&] { sim::spawn(send(tp0, 1, okB)); });
    eq.scheduleIn(6 * ms,
                  [&] { sim::spawn(send(tp0, 2, okC)); });
    eq.run();

    EXPECT_TRUE(okA);
    EXPECT_FALSE(okB); // died against the dark link
    EXPECT_TRUE(okC);  // new epoch resynchronized
    auto tags = drainTags(mb);
    EXPECT_EQ(tags[0], 1);
    EXPECT_EQ(tags[1], 0);
    EXPECT_EQ(tags[2], 1);
    EXPECT_GE(chaos.report().flowResyncs, 1u);
    EXPECT_EQ(chaos.report().sendFailures, 1u);
}

TEST(FaultCampaign, StuckHubPortStallsThenHeals)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 2);
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 20);

    FaultPlan plan;
    plan.name = "stuck-port";
    // Site 1 sits on port 1 of the single HUB.
    plan.hubPortStuck(300 * us, 0, sys->site(1).at.port);
    plan.hubPortRestore(2 * ms, 0, sys->site(1).at.port);
    ChaosController chaos(*sys, plan);

    TaggedSender sender;
    sim::spawn(sender.run(*sys->site(0).transport, 2, 5, 2048));
    eq.run();

    for (bool ok : sender.ok)
        EXPECT_TRUE(ok);
    auto tags = drainTags(mb);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(tags[i], 1);
    EXPECT_GE(chaos.report().messagesRecovered, 1u);
}

TEST(FaultCampaign, CrashedCabDropsTrafficUntilRestart)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 2);
    sys->site(1).kernel->createMailbox("in", 1 << 20, 20);

    FaultPlan plan;
    plan.name = "crash";
    plan.cabCrash(0, 1);
    ChaosController chaos(*sys, plan);

    TaggedSender sender;
    sim::spawn(sender.run(*sys->site(0).transport, 2, 1, 512));
    eq.run();

    ASSERT_EQ(sender.ok.size(), 1u);
    EXPECT_FALSE(sender.ok[0]);
    auto report = chaos.report();
    EXPECT_GT(report.crashDrops, 0u);
    EXPECT_FALSE(sys->site(1).transport->alive());
}

TEST(FaultCampaign, PlanValidationCatchesBadTargets)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 2);

    {
        FaultPlan plan;
        plan.cabCrash(0, 9); // no such site
        EXPECT_THROW(ChaosController c(*sys, plan), sim::FatalError);
    }
    {
        FaultPlan plan;
        plan.hubLinkDown(0, 0, 3); // no inter-HUB link on a star
        EXPECT_THROW(ChaosController c(*sys, plan), sim::FatalError);
    }
}
