/**
 * @file
 * Chaos-fuzzing layer tests: plan generation, (de)serialization,
 * the delivery oracle, delta-debugging shrinking, and the repro
 * replay path (DESIGN.md "Chaos fuzzing").
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fault/chaos.hh"
#include "fault/fuzz.hh"
#include "fault/generate.hh"
#include "fault/planio.hh"
#include "fault/shrink.hh"
#include "nectarine/system.hh"
#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace nectar;
using namespace nectar::fault;
using sim::ticks::ms;
using sim::ticks::us;

namespace {

SystemShape
shape()
{
    static SystemShape s = harnessShape(FuzzConfig{});
    return s;
}

} // namespace

// ----- generator ----------------------------------------------------

TEST(PlanGenerator, IsDeterministic)
{
    PlanGenerator gen(shape());
    FaultPlan a = gen.generate(42);
    FaultPlan b = gen.generate(42);
    EXPECT_EQ(serializePlan(a), serializePlan(b));

    FaultPlan c = gen.generate(43);
    EXPECT_NE(serializePlan(a), serializePlan(c));
}

TEST(PlanGenerator, CoversEveryActionKindAcrossSeeds)
{
    GeneratorConfig gcfg;
    gcfg.intensity = 2.0; // more episodes per plan
    PlanGenerator gen(shape(), gcfg);

    std::set<int> seen;
    for (std::uint64_t seed = 1; seed <= 40; ++seed)
        for (const auto &e : gen.generate(seed).events)
            seen.insert(static_cast<int>(e.action));

    // All ten Action kinds (hub-link faults exist because the 2x2
    // harness mesh has inter-HUB links).
    EXPECT_EQ(seen.size(), 10u);
}

TEST(PlanGenerator, GeneratedPlansPassStrictValidation)
{
    PlanGenerator gen(shape());
    FuzzConfig fcfg;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        sim::EventQueue eq;
        auto sys = nectarine::NectarSystem::mesh2D(
            eq, fcfg.rows, fcfg.cols, fcfg.cabsPerHub);
        FaultPlan plan = gen.generate(seed);
        EXPECT_NO_THROW(
            ChaosController(*sys, plan, PlanPolicy::strict))
            << "seed " << seed;
    }
}

// ----- (de)serialization --------------------------------------------

TEST(PlanIo, RoundTripsBitExactly)
{
    PlanGenerator gen(shape());
    for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
        FaultPlan plan = gen.generate(seed);
        std::string text = serializePlan(plan);
        FaultPlan back = parsePlan(text);
        EXPECT_EQ(text, serializePlan(back)) << "seed " << seed;
        EXPECT_EQ(plan.name, back.name);
        EXPECT_EQ(plan.seed, back.seed);
        EXPECT_EQ(plan.events.size(), back.events.size());
    }
}

TEST(PlanIo, SaveLoadThroughFile)
{
    PlanGenerator gen(shape());
    FaultPlan plan = gen.generate(5);
    std::string path = testing::TempDir() + "chaos_fuzz_roundtrip.plan";
    savePlan(plan, path);
    FaultPlan back = loadPlan(path);
    EXPECT_EQ(serializePlan(plan), serializePlan(back));
}

TEST(PlanIo, MalformedInputIsFatal)
{
    EXPECT_THROW(parsePlan(""), sim::FatalError);
    EXPECT_THROW(parsePlan("nectar-fault-plan v2\nend\n"),
                 sim::FatalError);
    EXPECT_THROW(parsePlan("nectar-fault-plan v1\n"
                           "seed 1\n"
                           "event at=banana action=cabCrash\n"
                           "end\n"),
                 sim::FatalError);
    EXPECT_THROW(parsePlan("nectar-fault-plan v1\n"
                           "event at=0 action=notAnAction hub=-1 "
                           "port=-1 site=0 dir=both burst=0,0,0,0\n"
                           "end\n"),
                 sim::FatalError);
    EXPECT_THROW(loadPlan(testing::TempDir() +
                          "chaos_fuzz_does_not_exist.plan"),
                 sim::FatalError);
}

// ----- plan validation policy ---------------------------------------

TEST(PlanPolicyCheck, StrictRejectsConflictingPlans)
{
    FuzzConfig fcfg;
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::mesh2D(eq, fcfg.rows, fcfg.cols,
                                               fcfg.cabsPerHub);

    FaultPlan downTwice;
    downTwice.cabLinkDown(1 * ms, 0)
        .cabLinkDown(2 * ms, 0)
        .cabLinkUp(3 * ms, 0);
    EXPECT_THROW(ChaosController(*sys, downTwice, PlanPolicy::strict),
                 sim::FatalError);

    FaultPlan healOnly;
    healOnly.cabRestart(1 * ms, 0);
    EXPECT_THROW(ChaosController(*sys, healOnly, PlanPolicy::strict),
                 sim::FatalError);
}

TEST(PlanPolicyCheck, NormalizeDropsConflictsAndCountsThem)
{
    FuzzConfig fcfg;
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::mesh2D(eq, fcfg.rows, fcfg.cols,
                                               fcfg.cabsPerHub);

    FaultPlan plan;
    plan.cabLinkDown(1 * ms, 0)
        .cabLinkDown(2 * ms, 0) // duplicate: dropped
        .cabLinkUp(3 * ms, 0)
        .cabRestart(4 * ms, 1); // restore-without-fault: dropped
    ChaosController chaos(*sys, plan, PlanPolicy::normalize);
    EXPECT_EQ(chaos.planEventsDropped(), 2u);
    eq.run();
    EXPECT_EQ(chaos.eventsExecuted(), 2u);
    EXPECT_EQ(chaos.report().planEventsDropped, 2u);
}

// ----- the fuzz harness ---------------------------------------------

TEST(ChaosFuzz, GeneratedSeedsRunOracleClean)
{
    PlanGenerator gen(shape());
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        FuzzResult res = runCase(gen.generate(seed));
        EXPECT_TRUE(res.passed)
            << "seed " << seed << ": " << res.oracleSummary
            << (res.violations.empty() ? ""
                                       : "\n  " + res.violations[0]);
        EXPECT_GT(res.reliableSends, 0u) << "seed " << seed;
    }
}

TEST(ChaosFuzz, RunCaseIsDeterministic)
{
    PlanGenerator gen(shape());
    FaultPlan plan = gen.generate(11);
    FuzzResult a = runCase(plan);
    FuzzResult b = runCase(plan);
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.quiescedAt, b.quiescedAt);
    EXPECT_EQ(a.oracleSummary, b.oracleSummary);
    EXPECT_EQ(a.report.format(), b.report.format());
}

TEST(ChaosFuzz, GeneratedPlansExerciseRecoveryMachinery)
{
    // Campaigns with episodes that outlast the harness transport's
    // retransmit give-up horizon (~8 ms at runCase's tightened RTO
    // schedule) must drive the interesting recovery paths: reliable
    // sends abandoned after give-up, collective failures, and group
    // epoch bumps — all while staying oracle-clean.  Default-length
    // episodes (up to 2 ms) no longer suffice: since the HUB holds
    // an input stream until its open settles, a brief outage leaves
    // no wedged circuits behind and recovers by retransmission
    // without failing anything.  (Transport-level multicast member
    // fail-out is covered deterministically by
    // Collectives.MemberCrashMidAllreduceBumpsEpochNoHang.)
    GeneratorConfig harsh;
    harsh.minEpisode = 20 * ms;
    harsh.maxEpisode = 80 * ms;
    PlanGenerator gen(shape(), harsh);
    std::uint64_t sends = 0, deliveries = 0, epochBumps = 0,
                  collectiveFailures = 0;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        FuzzResult res = runCase(gen.generate(seed));
        ASSERT_TRUE(res.passed) << "seed " << seed;
        sends += res.reliableSends;
        deliveries += res.reliableDeliveries;
        epochBumps += res.groupEpochBumps;
        collectiveFailures += res.collectiveFailures;
    }
    EXPECT_LT(deliveries, sends); // some sends were given up on
    EXPECT_GT(epochBumps, 0u);
    EXPECT_GT(collectiveFailures, 0u);
}

TEST(ChaosFuzz, DetachedFramesAreReapedAfterRuns)
{
    PlanGenerator gen(shape());
    (void)runCase(gen.generate(1));
    // runCase's EventQueue was the last one alive; its destructor
    // reaps every detached coroutine frame still parked on channels.
    EXPECT_EQ(sim::liveDetachedFrames(), 0u);
}

// ----- serving-load scenario ----------------------------------------

TEST(ChaosFuzzServing, OracleCleanWithRequestsInFlight)
{
    // The serving RPCs are at-least-once and deliberately outside
    // the delivery ledger; the point is that the no-phantom /
    // no-silent-loss verdict on the ledgered traffic — and the drain
    // check — hold while open-loop request load shares the fabric
    // with the fault plan.
    FuzzConfig fcfg;
    fcfg.servingArrivalsPerSite = 8;
    PlanGenerator gen(shape());
    std::uint64_t issued = 0, completed = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        FuzzResult res = runCase(gen.generate(seed), fcfg);
        EXPECT_TRUE(res.passed)
            << "seed " << seed << ": " << res.oracleSummary
            << (res.violations.empty() ? ""
                                       : "\n  " + res.violations[0]);
        EXPECT_GT(res.reliableSends, 0u) << "seed " << seed;
        issued += res.servingIssued;
        completed += res.servingCompleted;
    }
    EXPECT_GT(issued, 0u);
    EXPECT_GT(completed, 0u);
}

TEST(ChaosFuzzServing, RunCaseStaysDeterministic)
{
    FuzzConfig fcfg;
    fcfg.servingArrivalsPerSite = 8;
    PlanGenerator gen(shape());
    FaultPlan plan = gen.generate(11);
    FuzzResult a = runCase(plan, fcfg);
    FuzzResult b = runCase(plan, fcfg);
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.quiescedAt, b.quiescedAt);
    EXPECT_EQ(a.servingIssued, b.servingIssued);
    EXPECT_EQ(a.servingCompleted, b.servingCompleted);
    EXPECT_EQ(a.servingFailed, b.servingFailed);
    EXPECT_EQ(a.report.format(), b.report.format());
}

// ----- multi-HUB fabrics through the same harness -------------------

TEST(ChaosFuzzFabric, ShapeMatchesTheLiveSystem)
{
    // harnessShape derives the shape from the description without
    // building anything; it must agree exactly with the shape
    // extracted from the system runCase actually builds.
    for (FuzzFabric fabric :
         {FuzzFabric::mesh, FuzzFabric::torus, FuzzFabric::fattree}) {
        FuzzConfig cfg;
        cfg.fabric = fabric;
        sim::EventQueue eq;
        auto sys = nectarine::NectarSystem::fromDescription(
            eq, harnessDescription(cfg));
        SystemShape fromDesc = harnessShape(cfg);
        SystemShape fromSys = SystemShape::of(*sys);
        EXPECT_EQ(fromDesc.numHubs, fromSys.numHubs);
        EXPECT_EQ(fromDesc.hubLinks, fromSys.hubLinks);
        EXPECT_EQ(fromDesc.cabPorts, fromSys.cabPorts);
    }
}

TEST(ChaosFuzzFabric, TorusAndFatTreeSeedsRunOracleClean)
{
    // The fabric lane: the unchanged harness on non-mesh fabrics.
    // Wrap links (torus) and multi-path spines (fat tree) exercise
    // the restricted up*-down* routes under faults.
    for (FuzzFabric fabric : {FuzzFabric::torus, FuzzFabric::fattree}) {
        FuzzConfig cfg;
        cfg.fabric = fabric;
        PlanGenerator gen(harnessShape(cfg));
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            FuzzResult res = runCase(gen.generate(seed), cfg);
            EXPECT_TRUE(res.passed)
                << "fabric " << static_cast<int>(fabric) << " seed "
                << seed << ": " << res.oracleSummary
                << (res.violations.empty()
                        ? ""
                        : "\n  " + res.violations[0]);
        }
    }
}

TEST(ChaosFuzzFabric, FileFabricIsDeterministic)
{
    FuzzConfig cfg;
    cfg.fabric = FuzzFabric::file;
    cfg.topoFile =
        std::string(NECTAR_FABRIC_DIR) + "/mesh4x4.topo";
    cfg.reliablePerSite = 2;
    cfg.datagramsPerSite = 1;

    PlanGenerator gen(harnessShape(cfg));
    FaultPlan plan = gen.generate(11);
    FuzzResult a = runCase(plan, cfg);
    FuzzResult b = runCase(plan, cfg);
    EXPECT_TRUE(a.passed) << a.oracleSummary;
    EXPECT_EQ(a.quiescedAt, b.quiescedAt);
    EXPECT_EQ(a.oracleSummary, b.oracleSummary);
}

// ----- oracle + shrinker end to end ---------------------------------

TEST(ChaosFuzz, InjectedDuplicateIsCaughtShrunkAndReplayable)
{
    PlanGenerator gen(shape());
    FuzzConfig bugged;
    bugged.injectDeliveryBug = true;

    // Find a failing seed (needs a burst window overlapping reliable
    // traffic; seed 3 is known-failing but don't depend on it).
    FaultPlan failing;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
        failing = gen.generate(seed);
        found = !runCase(failing, bugged).passed;
    }
    ASSERT_TRUE(found) << "no seed in 1..10 tripped the injected bug";

    auto predicate = [&](const FaultPlan &p) {
        return !runCase(p, bugged).passed;
    };
    ShrinkResult shrunk = shrinkPlan(failing, predicate);
    EXPECT_LE(shrunk.plan.events.size(), failing.events.size());
    EXPECT_LE(shrunk.plan.events.size(), 2u); // one burst window
    EXPECT_GT(shrunk.runs, 0);

    // The minimized plan still fails, and survives a disk round trip:
    // the saved repro replays the identical verdict.
    std::string path = testing::TempDir() + "chaos_fuzz_min.plan";
    savePlan(shrunk.plan, path);
    FuzzResult direct = runCase(shrunk.plan, bugged);
    FuzzResult replay = runCase(loadPlan(path), bugged);
    EXPECT_FALSE(direct.passed);
    EXPECT_FALSE(replay.passed);
    EXPECT_EQ(direct.violations, replay.violations);
    EXPECT_EQ(direct.oracleSummary, replay.oracleSummary);
}

TEST(ChaosFuzz, CheckedInMinimizedReproStillFails)
{
    // Regression: the minimized repro produced by the shrinker from
    // the injected-duplicate demo is checked in; the oracle must keep
    // catching it.  The same plan without the injected bug runs
    // clean, pinning the blame on the injection, not the plan.
    FaultPlan repro = loadPlan(std::string(NECTAR_FAULT_DATA_DIR) +
                               "/repro-burst-duplicate.plan");
    EXPECT_EQ(repro.events.size(), 1u);

    FuzzConfig bugged;
    bugged.injectDeliveryBug = true;
    FuzzResult res = runCase(repro, bugged);
    ASSERT_FALSE(res.passed);
    bool sawDuplicate = false;
    for (const auto &v : res.violations)
        sawDuplicate |= v.find("duplicate delivery") != std::string::npos;
    EXPECT_TRUE(sawDuplicate);

    EXPECT_TRUE(runCase(repro).passed);
}
