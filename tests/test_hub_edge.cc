/**
 * @file
 * Additional HUB edge cases: inter-HUB ready-bit flow control,
 * closeInput, supervisor ready overrides, instrumentation board
 * capacity, and hub-size configuration sweeps.
 */

#include <gtest/gtest.h>

#include "helpers/test_endpoint.hh"
#include "hub/hub.hh"
#include "topo/topology.hh"

using namespace nectar;
using namespace nectar::hub;
using nectar::test::TestEndpoint;
using phys::ItemKind;
using sim::ticks::us;

class HubEdge : public ::testing::Test
{
  protected:
    HubEdge() : wiring(eq) {}

    void
    makeHub(std::uint8_t id = 0, HubConfig cfg = {})
    {
        h = std::make_unique<Hub>(eq, "hub", id, cfg, &mon);
    }

    TestEndpoint &
    addEp(PortId port)
    {
        eps.push_back(std::make_unique<TestEndpoint>(eq));
        auto &ep = *eps.back();
        ep.attachTx(wiring.connectEndpoint(
            ep, *h, port, "ep" + std::to_string(port)));
        return ep;
    }

    sim::EventQueue eq;
    RecordingMonitor mon;
    topo::Wiring wiring;
    std::unique_ptr<Hub> h;
    std::vector<std::unique_ptr<TestEndpoint>> eps;
};

TEST_F(HubEdge, InterHubReadyBitRoundTrip)
{
    // Two hubs: the upstream port's ready bit clears when a packet
    // passes and returns when the downstream queue forwards its SOP.
    topo::Topology topo(eq);
    topo.addHub("H0");
    topo.addHub("H1");
    topo.linkHubs(0, 8, 1, 3);
    TestEndpoint src(eq), dst(eq);
    src.attachTx(topo.attachEndpoint(src, 0, 0, "src"));
    dst.attachTx(topo.attachEndpoint(dst, 1, 9, "dst"));

    auto route = topo.route({0, 0}, {1, 9});
    for (const auto &hop : route) {
        src.sendCommand(Op::openRetry, hop.hubId, hop.outPort);
    }
    src.sendPacket(std::vector<std::uint8_t>(100, 1));
    eq.run();
    EXPECT_EQ(dst.dataBytes(), 100u);
    // After the packet flowed, the inter-hub ready bit is back to 1
    // (H1's queue forwarded the SOP and signalled readiness).
    EXPECT_TRUE(topo.hubAt(0).port(8).ready());
}

TEST_F(HubEdge, CloseInputReleasesAllOutputsOfThatInput)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    addEp(2);
    a.sendCommand(Op::open, 0, 1);
    a.sendCommand(Op::open, 0, 2);
    eq.run();
    EXPECT_EQ(h->crossbar().connectionCount(), 2);
    a.sendCommand(Op::closeInput, 0, 0);
    eq.run();
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
}

TEST_F(HubEdge, SupervisorClearReadyBlocksTestOpen)
{
    makeHub();
    auto &a = addEp(0);
    auto &c = addEp(2);
    addEp(1);
    c.sendCommand(Op::svClearReady, 0, 1);
    eq.run();
    EXPECT_FALSE(h->port(1).ready());

    // test open fail-fast against the forced-down ready bit.
    a.sendCommand(Op::testOpen, 0, 1);
    eq.runUntil(100 * us);
    EXPECT_EQ(h->crossbar().connectionCount(), 0);

    c.sendCommand(Op::svSetReady, 0, 1);
    a.sendCommand(Op::testOpen, 0, 1);
    eq.run();
    EXPECT_EQ(h->crossbar().ownerOf(1), 0);
}

TEST_F(HubEdge, NoopIsHarmless)
{
    makeHub();
    auto &a = addEp(0);
    a.sendCommand(Op::noop, 0, 0);
    eq.run();
    EXPECT_EQ(h->errorCount(), 0);
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
}

TEST_F(HubEdge, UnknownOpcodeCountsBadCommand)
{
    makeHub();
    auto &a = addEp(0);
    a.sendCommand(static_cast<Op>(0x3F), 0, 0);
    eq.run();
    EXPECT_GE(h->stats().badCommands.value(), 1u);
    EXPECT_GE(h->errorCount(), 1);
}

TEST_F(HubEdge, OpenToInvalidPortIsBadCommand)
{
    makeHub();
    auto &a = addEp(0);
    a.sendCommand(Op::open, 0, 200); // beyond numPorts
    a.sendCommand(Op::open, 0, 0);   // to the arrival port itself
    eq.run();
    EXPECT_EQ(h->stats().badCommands.value(), 2u);
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
}

TEST_F(HubEdge, RecordingMonitorEvictsOldest)
{
    RecordingMonitor small(4);
    for (int i = 0; i < 10; ++i)
        small.record(i, HubEvent::commandExecuted, i, noPort);
    EXPECT_EQ(small.events().size(), 4u);
    EXPECT_EQ(small.events().front().when, 6);
    EXPECT_EQ(small.count(HubEvent::commandExecuted), 4u);
    small.clear();
    EXPECT_TRUE(small.events().empty());
}

TEST_F(HubEdge, LockedPortSurvivesOwnersCloseAll)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    auto &c = addEp(2);
    a.sendCommand(Op::lock, 0, 1);
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    // closeAll releases the connection but not the lock.
    a.sendCommand(Op::closeAll, 0, 0);
    eq.run();
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
    EXPECT_EQ(h->crossbar().lockHolder(1), 0);
    c.sendCommand(Op::openReply, 0, 1);
    eq.run();
    EXPECT_EQ(c.replies().back().status, status::failure);
}

// ---- Parameterized: the HUB works at any crossbar size -------------

class HubSize : public ::testing::TestWithParam<int>
{};

TEST_P(HubSize, FullPortPermutationDelivers)
{
    int ports = GetParam();
    sim::EventQueue eq;
    hub::HubConfig cfg;
    cfg.numPorts = ports;
    Hub h(eq, "hub", 0, cfg);
    topo::Wiring wiring(eq);
    std::vector<std::unique_ptr<TestEndpoint>> eps;
    for (int i = 0; i < ports; ++i) {
        eps.push_back(std::make_unique<TestEndpoint>(eq));
        eps[i]->attachTx(wiring.connectEndpoint(
            *eps[i], h, i, "ep" + std::to_string(i)));
    }
    // Every port opens to its neighbour and sends one packet.
    for (int i = 0; i < ports; ++i) {
        eps[i]->sendCommand(Op::openRetry, 0,
                            static_cast<std::uint8_t>((i + 1) % ports));
        eps[i]->sendPacket(
            std::vector<std::uint8_t>(64, std::uint8_t(i)), true);
    }
    eq.run();
    for (int i = 0; i < ports; ++i) {
        EXPECT_EQ(eps[(i + 1) % ports]->dataBytes(), 64u)
            << "port " << i;
    }
    EXPECT_EQ(h.crossbar().connectionCount(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HubSize,
                         ::testing::Values(2, 4, 8, 16, 32, 128));
