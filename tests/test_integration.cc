/**
 * @file
 * Whole-system integration tests: the full stack (applications over
 * Nectarine over transport over datalink over HUBs and fibers) under
 * stress and fault injection, checking end-to-end invariants.
 */

#include <gtest/gtest.h>

#include "nectarine/ipsc.hh"
#include "nectarine/nectarine.hh"
#include "workload/halo.hh"
#include "workload/probes.hh"
#include "workload/production.hh"
#include "workload/traffic.hh"
#include "workload/vision.hh"

using namespace nectar;
using namespace nectar::workload;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using sim::Task;
using sim::ticks::us;

namespace {

void
injectFaults(NectarSystem &sys, const phys::FaultModel &model,
             std::uint64_t seed)
{
    for (auto &link : sys.topo().wiring().allLinks())
        link->setFaults(model, seed++);
}

} // namespace

TEST(Integration, MixedWorkloadsShareOneSystem)
{
    // Vision, production, and a latency probe all run concurrently
    // on one 12-CAB HUB: the crossbar keeps them out of each other's
    // way.
    sim::EventQueue eq;
    hub::HubConfig hc;
    hc.numPorts = 16;
    auto sys = NectarSystem::singleHub(eq, 12, {}, hc);
    Nectarine api(*sys);

    VisionConfig vc;
    vc.frames = 4;
    vc.frameBytes = 32 * 1024;
    vc.queriesPerClient = 10;
    VisionWorkload vision(api, 0, 1, {2, 3}, {4}, vc);

    ProductionConfig pc;
    pc.seedTokens = 8;
    pc.maxTokens = 100;
    ProductionWorkload prod(api, {5, 6, 7}, pc);

    PingPongConfig ppc;
    ppc.iterations = 40;
    PingPong probe(api, 8, 9, ppc);

    eq.run();

    EXPECT_TRUE(vision.finished());
    EXPECT_EQ(vision.framesProcessed(), 4);
    EXPECT_GE(prod.tokensProcessed(), pc.seedTokens);
    EXPECT_TRUE(probe.finished());
    // The probe pair's ports are untouched by the other workloads:
    // latency stays in the unloaded range.
    EXPECT_LT(probe.meanRttUs(), 100.0);
}

TEST(Integration, ReliableTrafficSurvivesLossyMesh)
{
    // 2x2 mesh with per-chunk faults on every link.  Faults apply
    // per 256-byte wire chunk and compound across the up-to-3 links
    // of a mesh route, so even these rates cost ~10-15% of packets;
    // the byte-stream protocol must still deliver everything.
    sim::EventQueue eq;
    nectarine::SiteConfig site_cfg;
    site_cfg.transport.maxRetransmits = 25;
    auto sys = NectarSystem::mesh2D(eq, 2, 2, 2, site_cfg);
    phys::FaultModel faults;
    faults.dropData = 0.01;
    faults.corruptData = 0.005;
    injectFaults(*sys, faults, 17);

    Nectarine api(*sys);
    std::vector<std::unique_ptr<StreamMeter>> streams;
    for (int p = 0; p < 4; ++p) {
        StreamMeterConfig cfg;
        cfg.totalBytes = 64 * 1024;
        cfg.label = "s" + std::to_string(p);
        // Pair sites across the mesh: 0->5, 1->6, 2->7, 3->4.
        streams.push_back(std::make_unique<StreamMeter>(
            api, p, 4 + (p + 1) % 4, cfg));
    }
    eq.run();

    for (auto &s : streams) {
        EXPECT_TRUE(s->finished());
        EXPECT_EQ(s->bytesDelivered(), 64u * 1024u);
    }
    // Retransmissions actually happened (the faults were real).
    std::uint64_t retx = 0;
    for (std::size_t i = 0; i < sys->siteCount(); ++i)
        retx += sys->site(i).transport->stats()
                    .retransmissions.value();
    EXPECT_GT(retx, 0u);
}

TEST(Integration, IpscCollectiveUnderFaults)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 4);
    phys::FaultModel faults;
    faults.dropData = 0.02;
    injectFaults(*sys, faults, 23);

    Nectarine api(*sys);
    nectarine::ipsc::IpscSystem cube(api, 8);
    std::vector<int> sums(8, 0);
    cube.load([&sums](nectarine::ipsc::IpscNode &self) -> Task<void> {
        int value = 1 << self.mynode();
        for (int dim = 0; dim < 3; ++dim) {
            std::vector<std::uint8_t> out(4);
            for (int i = 0; i < 4; ++i)
                out[i] = static_cast<std::uint8_t>(value >> (24 - 8 * i));
            co_await self.csend(dim, std::move(out),
                                self.neighbor(dim));
            auto in = co_await self.crecv(dim);
            int other = 0;
            for (int i = 0; i < 4; ++i)
                other = (other << 8) | in[i];
            value |= other;
        }
        sums[self.mynode()] = value;
    });
    eq.run();
    // OR-reduction of one-hot values: everyone ends with 0xFF.
    for (int n = 0; n < 8; ++n)
        EXPECT_EQ(sums[n], 0xFF);
}

TEST(Integration, ProtocolStatsAreConsistent)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 4);
    Nectarine api(*sys);
    RandomTrafficConfig cfg;
    cfg.messagesPerSite = 30;
    RandomTraffic rt(api, cfg);
    eq.run();

    // Conservation: nothing was lost on a fault-free system...
    EXPECT_EQ(rt.deliveryRate(), 1.0);

    std::uint64_t sent = 0, received = 0, drops = 0;
    for (std::size_t i = 0; i < sys->siteCount(); ++i) {
        auto &st = sys->site(i).transport->stats();
        sent += st.packetsSent.value();
        received += st.packetsReceived.value();
        drops += st.checksumDrops.value();
        EXPECT_EQ(st.sendFailures.value(), 0u);
    }
    EXPECT_EQ(drops, 0u);
    // Every packet handed to a fiber arrived somewhere (loopback
    // packets never touch the wire but count on both sides).
    EXPECT_EQ(sent, received);

    // The HUB's own accounting agrees there were no drops.
    auto &hub = sys->topo().hubAt(0);
    EXPECT_EQ(hub.stats().queueOverflows.value(), 0u);
    EXPECT_EQ(hub.errorCount(), 0);
}

TEST(Integration, HaloExchangeOnLossyLinksStaysLockstep)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 4);
    phys::FaultModel faults;
    faults.dropData = 0.05;
    injectFaults(*sys, faults, 29);

    Nectarine api(*sys);
    HaloConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.iterations = 6;
    HaloExchange he(api, {0, 1, 2, 3}, cfg);
    eq.run();
    EXPECT_TRUE(he.finished());
    EXPECT_EQ(he.iterationTime().count(), 24u);
}

TEST(Integration, DeterministicReplay)
{
    // The same seeds produce byte-identical outcomes: event counts,
    // latencies, and statistics.
    auto run = [] {
        sim::EventQueue eq;
        auto sys = NectarSystem::mesh2D(eq, 2, 2, 1);
        phys::FaultModel faults;
        faults.dropData = 0.04;
        injectFaults(*sys, faults, 31);
        Nectarine api(*sys);
        RandomTrafficConfig cfg;
        cfg.messagesPerSite = 15;
        RandomTraffic rt(api, cfg);
        eq.run();
        return std::make_tuple(eq.executedCount(), rt.delivered(),
                               rt.latency().mean(), eq.now());
    };
    EXPECT_EQ(run(), run());
}
