/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation, and time semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar::sim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30 * ticks::ns, [&] { order.push_back(3); });
    eq.schedule(10 * ticks::ns, [&] { order.push_back(1); });
    eq.schedule(20 * ticks::ns, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5 * ticks::ns, [&] { order.push_back(2); }, EventPriority::software);
    eq.schedule(5 * ticks::ns, [&] { order.push_back(1); }, EventPriority::hardware);
    eq.schedule(5 * ticks::ns, [&] { order.push_back(3); }, EventPriority::software);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesOnlyWhenEventsFire)
{
    EventQueue eq;
    Tick seen = -1;
    eq.schedule(100 * ticks::ns, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 100);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(50 * ticks::ns, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(10 * ticks::ns, [] {}), PanicError);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1 * ticks::ns, std::function<void()>()), PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(10 * ticks::ns, [&] { fired = true; });
    EXPECT_TRUE(eq.pending(id));
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.pending(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10 * ticks::ns, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10 * ticks::ns, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_FALSE(eq.pending(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(invalidEventId));
    EXPECT_FALSE(eq.cancel(9999));
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(10 * ticks::ns, chain);
    };
    eq.schedule(ticks::immediate, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10, 20, 30, 40})
        eq.schedule(t, [&fired, t] { fired.push_back(t); });
    eq.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.now(), 20);
    eq.runUntil(100);
    EXPECT_EQ(fired.size(), 4u);
    EXPECT_EQ(eq.now(), 100);
}

TEST(EventQueue, RunUntilAdvancesNowWhenQueueEmpty)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500);
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    EventId a = eq.schedule(10 * ticks::ns, [] {});
    eq.schedule(20 * ticks::ns, [] {});
    EXPECT_EQ(eq.pendingCount(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, RunRespectsEventLimit)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> forever = [&] {
        ++count;
        eq.scheduleIn(1 * ticks::ns, forever);
    };
    eq.schedule(ticks::immediate, forever);
    std::uint64_t n = eq.run(1000);
    EXPECT_EQ(n, 1000u);
    EXPECT_EQ(count, 1000);
}

TEST(EventQueue, ExecutedCountAccumulates)
{
    EventQueue eq;
    eq.schedule(1 * ticks::ns, [] {});
    eq.schedule(2 * ticks::ns, [] {});
    eq.run();
    EXPECT_EQ(eq.executedCount(), 2u);
}

TEST(EventQueue, DeterministicInterleavingAcrossRuns)
{
    auto trace = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 7) % 50, [&order, i] { order.push_back(i); });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(trace(), trace());
}
