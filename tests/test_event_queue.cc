/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation, and time semantics.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar::sim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30 * ticks::ns, [&] { order.push_back(3); });
    eq.schedule(10 * ticks::ns, [&] { order.push_back(1); });
    eq.schedule(20 * ticks::ns, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5 * ticks::ns, [&] { order.push_back(2); }, EventPriority::software);
    eq.schedule(5 * ticks::ns, [&] { order.push_back(1); }, EventPriority::hardware);
    eq.schedule(5 * ticks::ns, [&] { order.push_back(3); }, EventPriority::software);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesOnlyWhenEventsFire)
{
    EventQueue eq;
    Tick seen = -1;
    eq.schedule(100 * ticks::ns, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 100);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(50 * ticks::ns, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(10 * ticks::ns, [] {}), PanicError);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1 * ticks::ns, std::function<void()>()), PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(10 * ticks::ns, [&] { fired = true; });
    EXPECT_TRUE(eq.pending(id));
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.pending(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10 * ticks::ns, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10 * ticks::ns, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_FALSE(eq.pending(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(invalidEventId));
    EXPECT_FALSE(eq.cancel(9999));
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(10 * ticks::ns, chain);
    };
    eq.schedule(ticks::immediate, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10, 20, 30, 40})
        eq.schedule(t, [&fired, t] { fired.push_back(t); });
    eq.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.now(), 20);
    eq.runUntil(100);
    EXPECT_EQ(fired.size(), 4u);
    EXPECT_EQ(eq.now(), 100);
}

TEST(EventQueue, RunUntilAdvancesNowWhenQueueEmpty)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500);
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    EventId a = eq.schedule(10 * ticks::ns, [] {});
    eq.schedule(20 * ticks::ns, [] {});
    EXPECT_EQ(eq.pendingCount(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, RunRespectsEventLimit)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> forever = [&] {
        ++count;
        eq.scheduleIn(1 * ticks::ns, forever);
    };
    eq.schedule(ticks::immediate, forever);
    std::uint64_t n = eq.run(1000);
    EXPECT_EQ(n, 1000u);
    EXPECT_EQ(count, 1000);
}

TEST(EventQueue, ExecutedCountAccumulates)
{
    EventQueue eq;
    eq.schedule(1 * ticks::ns, [] {});
    eq.schedule(2 * ticks::ns, [] {});
    eq.run();
    EXPECT_EQ(eq.executedCount(), 2u);
}

TEST(EventQueue, DeterministicInterleavingAcrossRuns)
{
    auto trace = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 7) % 50, [&order, i] { order.push_back(i); });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(trace(), trace());
}

// ---- re-arm (the retransmission-timer fast path) -------------------

TEST(EventQueue, RearmToLaterFiresAtNewDeadlineOnly)
{
    EventQueue eq;
    std::vector<Tick> fired;
    EventId id = eq.schedule(100 * ticks::ns,
                             [&] { fired.push_back(eq.now()); });
    EventId fresh = eq.rearm(id, 250 * ticks::ns);
    ASSERT_NE(fresh, invalidEventId);
    EXPECT_FALSE(eq.pending(id)); // old handle is dead
    EXPECT_TRUE(eq.pending(fresh));
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{250}));
}

TEST(EventQueue, RearmToLaterTakesLazyFastPath)
{
    EventQueue eq;
    int count = 0;
    EventId id = eq.schedule(2000 * ticks::ns, [&] { ++count; });
    // Each re-arm pushes the deadline out without re-filing the node:
    // this is the path a timer re-armed on every ack exercises.
    for (int i = 1; i <= 10; ++i)
        id = eq.rearm(id, (2000 + i) * ticks::ns);
    EXPECT_EQ(eq.lazyRearmCount(), 10u);
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 2010);
}

TEST(EventQueue, RearmToEarlierFiresEarlier)
{
    EventQueue eq;
    std::vector<Tick> fired;
    EventId id = eq.schedule(1000 * ticks::ns,
                             [&] { fired.push_back(eq.now()); });
    eq.rearm(id, 50 * ticks::ns);
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{50}));
}

TEST(EventQueue, RearmDeadHandleReturnsInvalid)
{
    EventQueue eq;
    EventId fired_id = eq.schedule(10 * ticks::ns, [] {});
    eq.run();
    EXPECT_EQ(eq.rearm(fired_id, 20 * ticks::ns), invalidEventId);

    EventId cancelled = eq.schedule(30 * ticks::ns, [] {});
    eq.cancel(cancelled);
    EXPECT_EQ(eq.rearmIn(cancelled, 10 * ticks::ns), invalidEventId);
    EXPECT_EQ(eq.rearm(invalidEventId, 40 * ticks::ns),
              invalidEventId);
}

TEST(EventQueue, RearmTraceMatchesCancelPlusSchedule)
{
    // rearm() must consume a sequence number exactly like the seed
    // idiom it replaces, so the event-trace fingerprint is unchanged
    // whichever idiom a component uses.
    auto viaRearm = [] {
        EventQueue eq;
        eq.schedule(5 * ticks::ns, [] {});
        EventId t = eq.schedule(100 * ticks::ns, [] {},
                                EventPriority::software);
        t = eq.rearm(t, 200 * ticks::ns);
        eq.schedule(7 * ticks::ns, [] {});
        eq.run();
        return eq.fingerprint();
    };
    auto viaCancel = [] {
        EventQueue eq;
        eq.schedule(5 * ticks::ns, [] {});
        EventId t = eq.schedule(100 * ticks::ns, [] {},
                                EventPriority::software);
        eq.cancel(t);
        eq.schedule(200 * ticks::ns, [] {}, EventPriority::software);
        eq.schedule(7 * ticks::ns, [] {});
        eq.run();
        return eq.fingerprint();
    };
    EXPECT_EQ(viaRearm(), viaCancel());
}

// ---- wheel geometry: level boundaries, cascades, far heap ----------

TEST(EventQueue, FiresAcrossWheelLevelBoundaries)
{
    EventQueue eq;
    std::vector<Tick> fired;
    // Straddle every level boundary plus the wheel horizon: level 0
    // covers [0, 256), level 1 [256, 65536), level 2 [65536, 2^24),
    // level 3 [2^24, 2^32), and beyond 2^32 lives in the far heap.
    const std::vector<Tick> when = {
        255,
        256,
        257,
        65535,
        65536,
        65537,
        (Tick{1} << 24) - 1,
        (Tick{1} << 24),
        (Tick{1} << 32) - 1,
        (Tick{1} << 32),
        (Tick{1} << 32) + 1,
    };
    // Schedule shuffled so insertion order can't mask ordering bugs.
    for (std::size_t i = when.size(); i-- > 0;)
        eq.schedule(when[i], [&fired, t = when[i]] {
            fired.push_back(t);
        });
    eq.run();
    EXPECT_EQ(fired, when);
    EXPECT_GT(eq.cascadeCount(), 0u);
}

TEST(EventQueue, CancelSurvivesCascade)
{
    EventQueue eq;
    bool fired = false;
    // Park two events in the same level-1 slot, fire one, cancel the
    // other after the cascade has re-filed it to level 0.
    eq.schedule(300 * ticks::ns, [] {});
    EventId id = eq.schedule(310 * ticks::ns, [&] { fired = true; });
    eq.runUntil(300);
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, ScheduleIntoGapBehindCursorStillFires)
{
    EventQueue eq;
    std::vector<Tick> fired;
    // Locating the tick-300 event cascades the wheel cursor to 256.
    eq.schedule(300 * ticks::ns, [&] { fired.push_back(eq.now()); });
    eq.runUntil(5);
    EXPECT_EQ(eq.now(), 5);
    // Tick 100 is now behind the cursor but ahead of now(): the
    // early heap must catch it and fire it first.
    eq.schedule(100 * ticks::ns, [&] { fired.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{100, 300}));
}

// ---- node pool and generation-tagged handles -----------------------

TEST(EventQueue, PoolRecyclesNodes)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
        eq.scheduleIn(1 * ticks::ns, [&] { ++count; });
        eq.run();
    }
    EXPECT_EQ(count, 1000);
    // One live event at a time -> the pool never grows past one node.
    EXPECT_EQ(eq.poolSize(), 1u);
}

TEST(EventQueue, StaleHandleCannotTouchRecycledNode)
{
    EventQueue eq;
    EventId stale = eq.schedule(10 * ticks::ns, [] {});
    eq.cancel(stale);
    // The next schedule reuses the same pool node under a new
    // generation; the stale handle must not reach it.
    bool fired = false;
    EventId live = eq.schedule(20 * ticks::ns, [&] { fired = true; });
    EXPECT_FALSE(eq.pending(stale));
    EXPECT_FALSE(eq.cancel(stale));
    EXPECT_TRUE(eq.pending(live));
    eq.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelSelfDuringFireReturnsFalse)
{
    EventQueue eq;
    bool sawCancel = true;
    EventId id = invalidEventId;
    id = eq.schedule(10 * ticks::ns,
                     [&] { sawCancel = eq.cancel(id); });
    eq.run();
    EXPECT_FALSE(sawCancel); // already firing == no longer pending
}

// ---- EventFn small-buffer contract ---------------------------------

TEST(EventFnTest, SmallCapturesDoNotAllocate)
{
    const std::uint64_t before = EventFn::heapAllocCount();
    EventQueue eq;
    int sum = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    // this-pointer-sized and four-word captures both fit in sboBytes.
    eq.schedule(1 * ticks::ns, [&sum] { ++sum; });
    eq.schedule(2 * ticks::ns, [&sum, a, b, c, d] {
        sum += static_cast<int>(a + b + c + d);
    });
    eq.run();
    EXPECT_EQ(sum, 11);
    EXPECT_EQ(EventFn::heapAllocCount(), before);
}

TEST(EventFnTest, OversizeCapturesFallBackToCountedHeap)
{
    const std::uint64_t before = EventFn::heapAllocCount();
    EventQueue eq;
    std::array<std::uint64_t, 8> big{}; // 64 bytes > sboBytes
    big[7] = 42;
    std::uint64_t seen = 0;
    eq.schedule(1 * ticks::ns, [big, &seen] { seen = big[7]; });
    EXPECT_EQ(EventFn::heapAllocCount(), before + 1);
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventFnTest, EmptyStdFunctionBecomesNull)
{
    EventFn fn{std::function<void()>{}};
    EXPECT_FALSE(static_cast<bool>(fn));
    EventFn fnp{static_cast<void (*)()>(nullptr)};
    EXPECT_FALSE(static_cast<bool>(fnp));
}

TEST(EventFnTest, MoveTransfersCallable)
{
    int count = 0;
    EventFn a{[&count] { ++count; }};
    EventFn b{std::move(a)};
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(count, 1);
}
