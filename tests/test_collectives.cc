/**
 * @file
 * Collectives subsystem tests: groups and epochs, reliable multicast
 * over the HUB hardware tree and its unicast fallback, tree
 * collectives (broadcast/reduce/allreduce/gather/barrier) across
 * group sizes, determinism, zero-copy, and failure semantics under a
 * chaos plan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collectives/communicator.hh"
#include "collectives/group.hh"
#include "fault/chaos.hh"
#include "fault/plan.hh"
#include "nectarine/nectarine.hh"
#include "sim/logging.hh"
#include "workload/allreduce.hh"

using namespace nectar;
using collective::CollectiveError;
using collective::Communicator;
using collective::CommunicatorConfig;
using collective::GroupDirectory;
using collective::GroupId;
using collective::McastPath;
using collective::ReduceOp;
using nectarine::NectarSystem;
using nectarine::TaskContext;
using nectarine::TaskId;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

namespace {

/**
 * One-group harness: a single-HUB system with @p n member tasks, each
 * running @p body with a fresh Communicator on the shared group.
 */
struct Harness
{
    using Body = std::function<Task<void>(Communicator &,
                                          TaskContext &)>;

    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;
    std::unique_ptr<nectarine::Nectarine> api;
    GroupDirectory groups;
    std::shared_ptr<GroupId> gid = std::make_shared<GroupId>(0);

    explicit Harness(int n, const nectarine::SiteConfig &site = {})
    {
        sys = NectarSystem::singleHub(eq, n, site);
        api = std::make_unique<nectarine::Nectarine>(*sys);
    }

    void
    start(int n, CommunicatorConfig ccfg, Body body)
    {
        auto *groupsp = &groups;
        auto g = gid;
        std::vector<TaskId> ids;
        for (int r = 0; r < n; ++r)
            ids.push_back(api->createTask(
                static_cast<std::size_t>(r),
                "m" + std::to_string(r),
                [groupsp, g, ccfg, body](TaskContext &ctx)
                    -> Task<void> {
                    Communicator comm(ctx, *groupsp, *g, ccfg);
                    co_await body(comm, ctx);
                }));
        *gid = groups.create("g", ids);
    }

    void run() { eq.run(); }
};

std::vector<std::uint8_t>
pattern(std::uint32_t bytes, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(bytes);
    for (std::size_t j = 0; j < v.size(); ++j)
        v[j] = static_cast<std::uint8_t>(seed + j * 7);
    return v;
}

workload::AllreduceConfig
allreduceCfg(int members, std::uint32_t bytes, ReduceOp op,
             McastPath path)
{
    workload::AllreduceConfig cfg;
    cfg.members = members;
    cfg.bytes = bytes;
    cfg.op = op;
    cfg.comm.path = path;
    return cfg;
}

workload::AllreduceReport
runAllreduce(const workload::AllreduceConfig &cfg)
{
    sim::EventQueue eq;
    auto sys =
        NectarSystem::singleHub(eq, cfg.members);
    nectarine::Nectarine api(*sys);
    GroupDirectory groups;
    std::vector<std::size_t> sites(
        static_cast<std::size_t>(cfg.members));
    for (int i = 0; i < cfg.members; ++i)
        sites[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(i);
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    eq.run();
    return w.report();
}

} // namespace

// ----- Group directory ----------------------------------------------

TEST(GroupDirectory, DeterministicIdsAndSortedRanks)
{
    GroupDirectory d;
    EXPECT_EQ(d.create("a"), 1u);
    TaskId t5{5, 0}, t2{2, 0}, t9{9, 1};
    GroupId g = d.create("b", {t9, t2, t5});
    EXPECT_EQ(g, 2u);
    // Ranks follow sorted TaskId order, not join order.
    EXPECT_EQ(d.rankOf(g, t2), 0);
    EXPECT_EQ(d.rankOf(g, t5), 1);
    EXPECT_EQ(d.rankOf(g, t9), 2);
    EXPECT_EQ(d.rankOf(g, TaskId{7, 7}), -1);
    EXPECT_EQ(d.lookup("b"), g);
    EXPECT_FALSE(d.lookup("zzz").has_value());
    EXPECT_EQ(GroupDirectory::groupMailboxId(g), 0x8000 + 2);
}

TEST(GroupDirectory, RejectsDuplicateAndSameCabMembers)
{
    GroupDirectory d;
    GroupId g = d.create("a", {TaskId{1, 0}});
    EXPECT_THROW(d.join(g, TaskId{1, 0}), sim::FatalError);
    // A second member on CAB 1 would share the group mailbox.
    EXPECT_THROW(d.join(g, TaskId{1, 1}), sim::FatalError);
}

TEST(GroupDirectory, EpochBumpsOncePerGeneration)
{
    GroupDirectory d;
    TaskId a{1, 0}, b{2, 0};
    GroupId g = d.create("a", {a, b});
    EXPECT_EQ(d.epoch(g), 1u);
    EXPECT_TRUE(d.reportFailure(g, 1, b));
    EXPECT_EQ(d.epoch(g), 2u);
    // A concurrent survivor reporting against the old epoch is a
    // no-op: the bump already happened.
    EXPECT_FALSE(d.reportFailure(g, 1, a));
    EXPECT_EQ(d.epoch(g), 2u);
    EXPECT_EQ(d.info(g).suspects, std::vector<TaskId>{b});
    EXPECT_EQ(d.epochBumps(), 1u);
}

// ----- Broadcast ----------------------------------------------------

TEST(Collectives, BroadcastDeliversToAllGroupSizes)
{
    for (int n : {2, 3, 8, 16}) {
        Harness h(n);
        auto want = pattern(600, 17);
        auto oks = std::make_shared<int>(0);
        h.start(n, {},
                [want, oks](Communicator &comm,
                            TaskContext &) -> Task<void> {
                    std::vector<std::uint8_t> data;
                    if (comm.rank() == 0)
                        data = want;
                    auto res = co_await comm.broadcast(0, data);
                    if (res.ok && data == want)
                        ++*oks;
                });
        h.run();
        EXPECT_EQ(*oks, n) << "group size " << n;
        if (n >= 3) {
            // On one HUB the tree always fits: the hardware path
            // must have carried the payload.
            EXPECT_GT(h.sys->site(0)
                          .transport->stats()
                          .mcastHwPackets.value(),
                      0u)
                << "group size " << n;
        }
    }
}

TEST(Collectives, BroadcastUnicastPathMatches)
{
    const int n = 8;
    Harness h(n);
    auto want = pattern(600, 23);
    auto oks = std::make_shared<int>(0);
    CommunicatorConfig ccfg;
    ccfg.path = McastPath::unicast;
    h.start(n, ccfg,
            [want, oks](Communicator &comm,
                        TaskContext &) -> Task<void> {
                std::vector<std::uint8_t> data;
                if (comm.rank() == 0)
                    data = want;
                auto res = co_await comm.broadcast(0, data);
                if (res.ok && data == want)
                    ++*oks;
            });
    h.run();
    EXPECT_EQ(*oks, n);
    EXPECT_EQ(
        h.sys->site(0).transport->stats().mcastHwPackets.value(),
        0u);
    EXPECT_GT(h.sys->site(0)
                  .transport->stats()
                  .mcastUnicastPackets.value(),
              0u);
}

// ----- Reduce -------------------------------------------------------

TEST(Collectives, ReduceSumMinMaxToNonZeroRoot)
{
    const int n = 8;
    const int root = 3;
    for (ReduceOp op :
         {ReduceOp::sum, ReduceOp::min, ReduceOp::max}) {
        Harness h(n);
        auto cfg = allreduceCfg(n, 64, op, McastPath::automatic);
        auto want = workload::AllreduceWorkload::expectedData(cfg, 0);
        auto oks = std::make_shared<int>(0);
        auto rootOk = std::make_shared<bool>(false);
        h.start(n, {},
                [cfg, want, oks, rootOk, root](
                    Communicator &comm, TaskContext &) -> Task<void> {
                    auto data = workload::AllreduceWorkload::
                        memberData(cfg, comm.rank(), 0);
                    auto mine = data;
                    auto res =
                        co_await comm.reduce(root, cfg.op, data);
                    if (res.ok)
                        ++*oks;
                    if (comm.rank() == root)
                        *rootOk = (data == want);
                    else if (data != mine)
                        *rootOk = false; // non-roots stay untouched
                });
        h.run();
        EXPECT_EQ(*oks, n);
        EXPECT_TRUE(*rootOk);
    }
}

// ----- Allreduce ----------------------------------------------------

TEST(Collectives, AllreduceAllGroupSizesBothPaths)
{
    // 256 B exercises recursive doubling; 8 KiB the bandwidth plans
    // (reduce-scatter + allgather on power-of-two groups, reduce +
    // broadcast elsewhere).  Every member must match the host-side
    // reduction on both fabric paths, which also proves the hardware
    // and unicast paths produce identical values.
    for (int n : {2, 3, 8, 16}) {
        for (auto path : {McastPath::automatic, McastPath::unicast}) {
            for (std::uint32_t bytes : {256u, 8192u}) {
                auto rep = runAllreduce(
                    allreduceCfg(n, bytes, ReduceOp::sum, path));
                EXPECT_EQ(rep.okMembers, n)
                    << "n=" << n << " bytes=" << bytes << " path="
                    << (path == McastPath::unicast ? "uni" : "hw");
                EXPECT_EQ(rep.wrongMembers, 0);
                EXPECT_EQ(rep.errorMembers, 0);
                EXPECT_EQ(rep.finalEpoch, 1u);
            }
        }
    }
}

TEST(Collectives, AllreduceDeterministicAcrossReruns)
{
    auto cfg = allreduceCfg(8, 4096, ReduceOp::sum,
                            McastPath::automatic);
    cfg.rounds = 2;
    auto a = runAllreduce(cfg);
    auto b = runAllreduce(cfg);
    ASSERT_EQ(a.okMembers, 8);
    ASSERT_EQ(b.okMembers, 8);
    EXPECT_NE(a.fingerprint, 0u);
    // Bit-identical across fresh runs: same results, same simulated
    // finish times.
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.lastFinish, b.lastFinish);
}

// ----- Gather -------------------------------------------------------

TEST(Collectives, GatherCollectsEveryContribution)
{
    const int n = 8;
    Harness h(n);
    auto out = std::make_shared<
        std::vector<std::vector<std::uint8_t>>>();
    auto oks = std::make_shared<int>(0);
    h.start(n, {},
            [out, oks](Communicator &comm,
                       TaskContext &) -> Task<void> {
                auto mine = pattern(
                    32, static_cast<std::uint8_t>(comm.rank() + 1));
                auto res = co_await comm.gather(
                    0, mine, comm.rank() == 0 ? out.get() : nullptr);
                if (res.ok)
                    ++*oks;
            });
    h.run();
    EXPECT_EQ(*oks, n);
    ASSERT_EQ(out->size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
        EXPECT_EQ((*out)[static_cast<std::size_t>(r)],
                  pattern(32, static_cast<std::uint8_t>(r + 1)))
            << "rank " << r;
}

// ----- Barrier ------------------------------------------------------

TEST(Collectives, BarrierHoldsUntilAllArrive)
{
    const int n = 8;
    Harness h(n);
    auto lastArrive = std::make_shared<Tick>(0);
    auto firstRelease = std::make_shared<Tick>(-1);
    auto oks = std::make_shared<int>(0);
    h.start(n, {},
            [lastArrive, firstRelease, oks](
                Communicator &comm, TaskContext &ctx) -> Task<void> {
                // Stagger arrivals so the barrier has something to
                // hold back.
                co_await ctx.sleepFor(comm.rank() * 500 * us);
                *lastArrive = std::max(*lastArrive, ctx.now());
                auto res = co_await comm.barrier();
                if (res.ok)
                    ++*oks;
                if (*firstRelease < 0)
                    *firstRelease = ctx.now();
                else
                    *firstRelease =
                        std::min(*firstRelease, ctx.now());
            });
    h.run();
    EXPECT_EQ(*oks, n);
    EXPECT_GE(*firstRelease, *lastArrive);
    EXPECT_GE(*lastArrive, (n - 1) * 500 * us);
}

// ----- Zero-copy ----------------------------------------------------

TEST(Collectives, BroadcastViewMaterializesNothing)
{
    const int n = 4;
    Harness h(n);
    const std::uint32_t bytes = 800; // single fragment
    auto oks = std::make_shared<int>(0);
    h.start(n, {},
            [oks, bytes](Communicator &comm,
                         TaskContext &) -> Task<void> {
                sim::PacketView io;
                if (comm.rank() == 0)
                    io = sim::PacketView(pattern(bytes, 3));
                auto res = co_await comm.broadcastView(0, io);
                // Register-style reads only: no materialization.
                if (res.ok && io.size() == bytes && io[1] == 10)
                    ++*oks;
            });
    sim::copyStats().reset();
    h.run();
    EXPECT_EQ(*oks, n);
    // The whole path — collective header, transport encode, wire,
    // reassembly, mailbox, receive — moved the payload by reference.
    EXPECT_EQ(sim::copyStats().bytesCopied, 0u);
}

// ----- Transport-level multicast machinery --------------------------

TEST(Collectives, MulticastSpilloverStraysAtTerminalCab)
{
    // Two-HUB tree with a terminal CAB on the sender's own HUB: the
    // open commands addressed to the far HUB travel through the
    // already-open terminal port (the Section 4.2.2 spillover path),
    // so the terminal CAB must count stray commands yet deliver the
    // payload exactly once.
    sim::EventQueue eq;
    auto sys = NectarSystem::mesh2D(eq, 1, 2, 2);
    ASSERT_EQ(sys->siteCount(), 4u);
    int sameHub = -1;
    std::vector<int> others;
    for (int i = 1; i < 4; ++i) {
        if (sys->site(static_cast<std::size_t>(i)).at.hubIndex ==
            sys->site(0).at.hubIndex)
            sameHub = i;
        others.push_back(i);
    }
    ASSERT_GE(sameHub, 1);
    std::vector<transport::CabAddress> dsts;
    for (int i : others) {
        auto &site = sys->site(static_cast<std::size_t>(i));
        site.kernel->createMailbox("in", 1 << 16, 77);
        dsts.push_back(site.address);
    }
    auto payload = pattern(256, 9);
    auto result =
        std::make_shared<transport::Transport::MulticastResult>();
    sim::spawn([](transport::Transport &tp,
                  std::vector<transport::CabAddress> dsts,
                  std::vector<std::uint8_t> payload,
                  std::shared_ptr<transport::Transport::MulticastResult>
                      result) -> Task<void> {
        *result = co_await tp.sendReliableMulticast(
            std::move(dsts), 77, sim::PacketView(std::move(payload)),
            true);
    }(*sys->site(0).transport, dsts, payload, result));
    eq.run();
    EXPECT_TRUE(result->ok);
    EXPECT_TRUE(result->usedHardware);
    EXPECT_TRUE(result->failed.empty());
    for (int i : others) {
        auto *box =
            sys->site(static_cast<std::size_t>(i)).kernel->mailbox(77);
        ASSERT_NE(box, nullptr);
        ASSERT_EQ(box->count(), 1u) << "site " << i;
        auto m = box->tryGet();
        EXPECT_TRUE(m->view().equals(payload)) << "site " << i;
    }
    EXPECT_GT(sys->site(static_cast<std::size_t>(sameHub))
                  .board->stats()
                  .strayItems.value(),
              0u);
    EXPECT_GT(
        sys->site(0).transport->stats().mcastHwPackets.value(), 0u);
}

TEST(Collectives, MulticastFallsBackPerMemberWhenLinkDown)
{
    // With the inter-HUB link dark the tree cannot be built: the
    // same-HUB member must still be served by unicast fan-out while
    // the unreachable member fails after its retransmission budget.
    sim::EventQueue eq;
    nectarine::SiteConfig site;
    site.transport.maxRetransmits = 3;
    site.transport.maxRto = 2 * ms;
    auto sys = NectarSystem::mesh2D(eq, 1, 2, 2, site);
    int sameHub = -1, farHub = -1;
    for (int i = 1; i < 4; ++i) {
        if (sys->site(static_cast<std::size_t>(i)).at.hubIndex ==
            sys->site(0).at.hubIndex)
            sameHub = i;
        else if (farHub < 0)
            farHub = i;
    }
    ASSERT_GE(sameHub, 1);
    ASSERT_GE(farHub, 1);
    auto &near = sys->site(static_cast<std::size_t>(sameHub));
    auto &far = sys->site(static_cast<std::size_t>(farHub));
    near.kernel->createMailbox("in", 1 << 16, 77);
    far.kernel->createMailbox("in", 1 << 16, 77);
    sys->topo().markLinkDownBetween(0, 1);
    auto payload = pattern(128, 5);
    std::vector<transport::CabAddress> dsts{near.address,
                                            far.address};
    auto result =
        std::make_shared<transport::Transport::MulticastResult>();
    sim::spawn([](transport::Transport &tp,
                  std::vector<transport::CabAddress> dsts,
                  std::vector<std::uint8_t> payload,
                  std::shared_ptr<transport::Transport::MulticastResult>
                      result) -> Task<void> {
        *result = co_await tp.sendReliableMulticast(
            std::move(dsts), 77, sim::PacketView(std::move(payload)),
            true);
    }(*sys->site(0).transport, dsts, payload, result));
    eq.run();
    EXPECT_FALSE(result->ok);
    EXPECT_FALSE(result->usedHardware);
    ASSERT_EQ(result->failed.size(), 1u);
    EXPECT_EQ(result->failed[0], far.address);
    auto *box = near.kernel->mailbox(77);
    ASSERT_EQ(box->count(), 1u);
    EXPECT_TRUE(box->tryGet()->view().equals(payload));
    EXPECT_GT(
        sys->site(0).transport->stats().mcastFallbacks.value(), 0u);
}

// ----- Failure semantics --------------------------------------------

TEST(Collectives, MemberCrashMidAllreduceBumpsEpochNoHang)
{
    // A member dies mid-operation; every survivor must terminate
    // with an epoch-bump error (timeout or observed failure), never
    // hang, and the epoch must advance exactly once.
    sim::EventQueue eq;
    nectarine::SiteConfig site;
    site.transport.maxRetransmits = 4;
    site.transport.maxRto = 4 * ms;
    const int n = 8;
    auto sys = NectarSystem::singleHub(eq, n, site);
    nectarine::Nectarine api(*sys);
    GroupDirectory groups;
    auto cfg = allreduceCfg(n, 16384, ReduceOp::sum,
                            McastPath::automatic);
    cfg.rounds = 3;
    cfg.comm.opTimeout = 20 * ms;
    std::vector<std::size_t> sites(n);
    for (int i = 0; i < n; ++i)
        sites[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(i);
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    fault::FaultPlan plan;
    plan.cabCrash(1 * ms, n / 2);
    fault::ChaosController chaos(*sys, plan);
    eq.run();
    // eq.run() returning at all is the no-hang proof (a blocked
    // receive without a deadline would leave the timer-free event
    // queue idle but the test hanging on lost work instead of an
    // explicit resolution).
    const auto &rep = w.report();
    EXPECT_EQ(rep.okMembers, 0);
    EXPECT_GE(rep.errorMembers, n - 1);
    EXPECT_EQ(rep.wrongMembers, 0);
    EXPECT_GE(rep.finalEpoch, 2u);
    EXPECT_EQ(groups.epochBumps(), 1u);
    EXPECT_LT(eq.now(), 1000 * ms) << "resolution took too long";
}
