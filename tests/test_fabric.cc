/**
 * @file
 * Fabric-scale acceptance tests (DESIGN.md "Fabrics and routing"):
 * the 16-HUB / 208-CAB fabric loaded from the checked-in
 * examples/fabrics/fabric16.topo must run the existing transport
 * workloads, a 32-member allreduce, and a seeded chaos campaign
 * completely unmodified — the point of the declarative-topology
 * refactor is that nothing above the topology layer can tell a big
 * fabric from the single HUB it was developed on.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fuzz.hh"
#include "fault/generate.hh"
#include "nectarine/system.hh"
#include "topo/topofile.hh"
#include "workload/allreduce.hh"
#include "workload/probes.hh"

using namespace nectar;
using nectarine::NectarSystem;

namespace {

std::string
fabricPath()
{
    return std::string(NECTAR_FABRIC_DIR) + "/fabric16.topo";
}

} // namespace

TEST(FabricTest, LoadsAtAcceptanceScale)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::fromTopoFile(eq, fabricPath());
    EXPECT_EQ(sys->topo().numHubs(), 16);
    EXPECT_GE(sys->siteCount(), 200u);

    // Every site pair is routable before any traffic flows.
    const topo::RouteTable &table = sys->topo().routeTable();
    for (int a = 0; a < 16; ++a)
        for (int b = 0; b < 16; ++b)
            EXPECT_TRUE(table.reachable(a, b));
    EXPECT_EQ(table.restrictedSources(), 0) << "meshes stay legacy";
}

TEST(FabricTest, TransportWorkloadsRunUnmodified)
{
    // The standard latency and throughput probes, pointed across the
    // fabric diameter instead of across one HUB.
    sim::EventQueue eq;
    auto sys = NectarSystem::fromTopoFile(eq, fabricPath());
    nectarine::Nectarine api(*sys);

    workload::PingPongConfig pcfg;
    pcfg.iterations = 20;
    pcfg.delivery = nectarine::Delivery::reliable;
    workload::PingPong corner(api, 0, sys->siteCount() - 1, pcfg);

    workload::StreamMeterConfig scfg;
    scfg.totalBytes = 256 * 1024;
    workload::StreamMeter stream(api, 1, sys->siteCount() - 2, scfg);

    eq.run();
    EXPECT_TRUE(corner.finished());
    EXPECT_GT(corner.meanRttUs(), 0.0);
    EXPECT_TRUE(stream.finished());
    EXPECT_EQ(stream.bytesDelivered(), scfg.totalBytes);
}

TEST(FabricTest, ThirtyTwoMemberAllreduceSpansTheFabric)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::fromTopoFile(eq, fabricPath());
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;

    workload::AllreduceConfig cfg;
    cfg.members = 32;
    cfg.bytes = 1024;
    cfg.rounds = 2;
    std::vector<std::size_t> sites;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(cfg.members); ++i)
        sites.push_back(i * sys->siteCount() /
                        static_cast<std::size_t>(cfg.members));
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    eq.run();

    const workload::AllreduceReport &rep = w.report();
    EXPECT_EQ(rep.okMembers, cfg.members);
    EXPECT_EQ(rep.errorMembers, 0);
    EXPECT_EQ(rep.wrongMembers, 0);

    // Same fabric, same seed: the digest is reproducible.
    sim::EventQueue eq2;
    auto sys2 = NectarSystem::fromTopoFile(eq2, fabricPath());
    nectarine::Nectarine api2(*sys2);
    collective::GroupDirectory groups2;
    workload::AllreduceWorkload w2(api2, groups2, sites, cfg);
    eq2.run();
    EXPECT_EQ(w2.report().fingerprint, rep.fingerprint);
}

TEST(FabricTest, SeededChaosCampaignRunsOracleClean)
{
    // The chaos-fuzz harness, untouched, on the 208-site fabric: the
    // generator targets the fabric's real links and sites (via the
    // description-derived shape), and the delivery oracle must stay
    // clean under the generated fault schedules.
    fault::FuzzConfig cfg;
    cfg.fabric = fault::FuzzFabric::file;
    cfg.topoFile = fabricPath();
    cfg.reliablePerSite = 1;
    cfg.datagramsPerSite = 1;
    cfg.collectiveMembers = 8;

    fault::SystemShape shape = fault::harnessShape(cfg);
    EXPECT_EQ(shape.numHubs, 16);
    EXPECT_EQ(shape.hubLinks.size(), 24u);
    EXPECT_GE(shape.cabPorts.size(), 200u);

    fault::PlanGenerator gen(shape);
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        fault::FuzzResult res = fault::runCase(gen.generate(seed), cfg);
        EXPECT_TRUE(res.passed)
            << "seed " << seed << ": " << res.oracleSummary
            << (res.violations.empty() ? ""
                                       : "\n  " + res.violations[0]);
        EXPECT_GT(res.reliableSends, 0u);
    }
}
