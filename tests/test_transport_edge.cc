/**
 * @file
 * Transport edge cases: MTU boundaries, zero-length messages, window
 * discipline, self-sends, oversized RPC payloads, and parameterized
 * sweeps over window size and message size.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "nectarine/system.hh"
#include "sim/coro.hh"

using namespace nectar;
using namespace nectar::transport;
using nectarine::NectarSystem;
using sim::Task;
using sim::ticks::us;

namespace {

std::vector<std::uint8_t>
iotaBytes(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), std::uint8_t(0));
    return v;
}

} // namespace

class TransportEdge : public ::testing::Test
{
  protected:
    void
    build(int cabs = 2, nectarine::SiteConfig cfg = {})
    {
        sys = NectarSystem::singleHub(eq, cabs, cfg);
    }

    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;
};

TEST_F(TransportEdge, ZeroLengthMessageDelivered)
{
    build();
    auto &mb = sys->site(1).kernel->createMailbox("in", 4096, 10);
    bool ok = false;
    sim::spawn([](Transport &tp, bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(2, 10, {});
    }(*sys->site(0).transport, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_TRUE(mb.tryGet()->view().empty());
}

TEST_F(TransportEdge, ExactMtuMultiples)
{
    build();
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 10);
    const std::uint32_t mtu =
        sys->site(0).transport->config().mtu;
    std::vector<std::size_t> sizes{mtu, 2 * mtu, 3 * mtu,
                                   mtu - 1, mtu + 1};
    int done = 0;
    sim::spawn([](Transport &tp, std::vector<std::size_t> sizes,
                  int &done) -> Task<void> {
        for (std::size_t n : sizes) {
            std::vector<std::uint8_t> msg(n);
            std::iota(msg.begin(), msg.end(), std::uint8_t(0));
            if (co_await tp.sendReliable(2, 10, std::move(msg)))
                ++done;
        }
    }(*sys->site(0).transport, sizes, done));
    eq.run();
    EXPECT_EQ(done, 5);
    ASSERT_EQ(mb.count(), 5u);
    for (std::size_t n : sizes) {
        auto m = mb.tryGet();
        ASSERT_TRUE(m.has_value());
        EXPECT_EQ(m->size(), n);
        EXPECT_EQ(m->bytes(), iotaBytes(n));
    }
}

TEST_F(TransportEdge, SelfSendLoopsBackLocally)
{
    build();
    auto &mb = sys->site(0).kernel->createMailbox("self", 4096, 10);
    bool ok = false;
    sim::spawn([](Transport &tp, bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(1, 10, iotaBytes(100));
    }(*sys->site(0).transport, ok));
    eq.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(mb.count(), 1u);
    // Nothing crossed the HUB.
    EXPECT_EQ(sys->topo().hubAt(0).stats().dataBytes.value(), 0u);
}

TEST_F(TransportEdge, WindowDisciplineNeverExceeded)
{
    nectarine::SiteConfig cfg;
    cfg.transport.windowPackets = 3;
    build(2, cfg);
    sys->site(1).kernel->createMailbox("in", 1 << 20, 10);

    // Sample the sender flow's outstanding count while a large
    // message streams.
    std::uint32_t max_outstanding = 0;
    bool ok = false;
    sim::spawn([](Transport &tp, bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(
            2, 10, std::vector<std::uint8_t>(30000, 1));
    }(*sys->site(0).transport, ok));
    // Poll the stats every few microseconds: packetsSent should
    // never exceed acked + window.
    std::function<void()> sampler = [&] {
        auto &st = sys->site(0).transport->stats();
        std::uint64_t sent = st.packetsSent.value();
        std::uint64_t acked = st.acksReceived.value();
        // acked is an upper bound on acked packets; the invariant is
        // sent - retransmissions <= acked_packets + window, checked
        // loosely here via the configured window.
        if (sent > acked) {
            max_outstanding = std::max<std::uint32_t>(
                max_outstanding,
                static_cast<std::uint32_t>(sent - acked));
        }
        if (!ok)
            eq.scheduleIn(10 * us, sampler);
    };
    eq.scheduleIn(10 * us, sampler);
    eq.run();
    EXPECT_TRUE(ok);
    // 3-packet window, plus acks in flight: outstanding stays small.
    EXPECT_LE(max_outstanding, 8u);
}

TEST_F(TransportEdge, OversizedRequestIsFatal)
{
    build();
    EXPECT_THROW(
        sim::spawn([](Transport &tp) -> Task<void> {
            co_await tp.request(
                2, 10, std::vector<std::uint8_t>(10000, 1));
        }(*sys->site(0).transport)),
        sim::PanicError);
}

TEST_F(TransportEdge, UnknownDestinationCabIsFatal)
{
    build();
    // The route lookup happens after the send-path CPU charge, i.e.
    // during event processing.
    sim::spawn([](Transport &tp) -> Task<void> {
        co_await tp.sendDatagram(99, 10, iotaBytes(8));
    }(*sys->site(0).transport));
    EXPECT_THROW(eq.run(), sim::PanicError);
}

TEST_F(TransportEdge, ManySmallMessagesKeepOrderPerFlow)
{
    build();
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 10);
    sim::spawn([](Transport &tp) -> Task<void> {
        for (int i = 0; i < 64; ++i) {
            std::vector<std::uint8_t> msg(4, std::uint8_t(i));
            co_await tp.sendReliable(2, 10, std::move(msg));
        }
    }(*sys->site(0).transport));
    eq.run();
    ASSERT_EQ(mb.count(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(mb.tryGet()->view()[0], std::uint8_t(i));
}

// ---- Parameterized sweeps -------------------------------------------

class WindowSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(WindowSweep, LargeMessageCompletesAtAnyWindow)
{
    sim::EventQueue eq;
    nectarine::SiteConfig cfg;
    cfg.transport.windowPackets = GetParam();
    auto sys = NectarSystem::singleHub(eq, 2, cfg);
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 10);
    bool ok = false;
    sim::spawn([](Transport &tp, bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(
            2, 10, std::vector<std::uint8_t>(20000, 0xCD));
    }(*sys->site(0).transport, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->size(), 20000u);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 32u));

class MtuSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(MtuSweep, StreamsAreMtuAgnostic)
{
    sim::EventQueue eq;
    nectarine::SiteConfig cfg;
    cfg.transport.mtu = GetParam();
    auto sys = NectarSystem::singleHub(eq, 2, cfg);
    auto &mb = sys->site(1).kernel->createMailbox("in", 1 << 20, 10);
    auto data = iotaBytes(5000);
    bool ok = false;
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(2, 10, std::move(data));
    }(*sys->site(0).transport, data, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuSweep,
                         ::testing::Values(64u, 128u, 512u, 896u));
