/**
 * @file
 * Unit tests for coroutine support: Task, spawn, Delay, Channel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/coro.hh"
#include "sim/event_queue.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar::sim;

namespace {

Task<int>
addLater(int a, int b)
{
    co_return a + b;
}

Task<int>
nested()
{
    int x = co_await addLater(1, 2);
    int y = co_await addLater(x, 10);
    co_return y;
}

} // namespace

TEST(Coro, TaskReturnsValue)
{
    EventQueue eq;
    int result = 0;
    spawn([](int &out) -> Task<void> {
        out = co_await addLater(2, 3);
    }(result));
    eq.run();
    EXPECT_EQ(result, 5);
}

TEST(Coro, NestedTasksCompose)
{
    EventQueue eq;
    int result = 0;
    spawn([](int &out) -> Task<void> {
        out = co_await nested();
    }(result));
    eq.run();
    EXPECT_EQ(result, 13);
}

TEST(Coro, DelaySuspendsForSimulatedTime)
{
    EventQueue eq;
    std::vector<Tick> stamps;
    spawn([](EventQueue &eq, std::vector<Tick> &stamps) -> Task<void> {
        stamps.push_back(eq.now());
        co_await Delay{eq, 100};
        stamps.push_back(eq.now());
        co_await Delay{eq, 50};
        stamps.push_back(eq.now());
    }(eq, stamps));
    eq.run();
    EXPECT_EQ(stamps, (std::vector<Tick>{0, 100, 150}));
}

TEST(Coro, SpawnRunsEagerlyToFirstSuspension)
{
    EventQueue eq;
    bool started = false;
    spawn([](EventQueue &eq, bool &started) -> Task<void> {
        started = true;
        co_await Delay{eq, 10};
    }(eq, started));
    EXPECT_TRUE(started);
    eq.run();
}

TEST(Coro, ParallelCoroutinesInterleaveByTime)
{
    EventQueue eq;
    std::vector<int> order;
    auto worker = [](EventQueue &eq, std::vector<int> &order, int id,
                     Tick delay) -> Task<void> {
        co_await Delay{eq, delay};
        order.push_back(id);
    };
    spawn(worker(eq, order, 1, 30));
    spawn(worker(eq, order, 2, 10));
    spawn(worker(eq, order, 3, 20));
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(Coro, ChannelDeliversInFifoOrder)
{
    EventQueue eq;
    Channel<int> ch(eq);
    std::vector<int> got;
    spawn([](Channel<int> &ch, std::vector<int> &got) -> Task<void> {
        for (int i = 0; i < 3; ++i)
            got.push_back(co_await ch.pop());
    }(ch, got));
    ch.push(1);
    ch.push(2);
    ch.push(3);
    eq.run();
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Coro, ChannelBlocksUntilPush)
{
    EventQueue eq;
    Channel<int> ch(eq);
    Tick when = -1;
    spawn([](EventQueue &eq, Channel<int> &ch, Tick &when) -> Task<void> {
        co_await ch.pop();
        when = eq.now();
    }(eq, ch, when));
    eq.schedule(500 * ticks::ns, [&] { ch.push(7); });
    eq.run();
    EXPECT_EQ(when, 500);
}

TEST(Coro, ChannelTryPop)
{
    EventQueue eq;
    Channel<int> ch(eq);
    EXPECT_FALSE(ch.tryPop().has_value());
    ch.push(9);
    auto v = ch.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
    EXPECT_FALSE(ch.tryPop().has_value());
}

TEST(Coro, ChannelMultipleWaitersServedInOrder)
{
    EventQueue eq;
    Channel<int> ch(eq);
    std::vector<std::pair<int, int>> got; // (waiter, value)
    auto waiter = [](Channel<int> &ch,
                     std::vector<std::pair<int, int>> &got,
                     int id) -> Task<void> {
        int v = co_await ch.pop();
        got.emplace_back(id, v);
    };
    spawn(waiter(ch, got, 1));
    spawn(waiter(ch, got, 2));
    eq.schedule(10 * ticks::ns, [&] { ch.push(100); });
    eq.schedule(20 * ticks::ns, [&] { ch.push(200); });
    eq.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], std::make_pair(1, 100));
    EXPECT_EQ(got[1], std::make_pair(2, 200));
}

TEST(Coro, ChannelSizeAndWaiters)
{
    EventQueue eq;
    Channel<int> ch(eq);
    EXPECT_EQ(ch.size(), 0u);
    EXPECT_EQ(ch.waiters(), 0u);
    spawn([](Channel<int> &ch) -> Task<void> {
        co_await ch.pop();
    }(ch));
    EXPECT_EQ(ch.waiters(), 1u);
    ch.push(1);
    eq.run();
    EXPECT_EQ(ch.waiters(), 0u);
}

TEST(Coro, DetachedExceptionPanics)
{
    EventQueue eq;
    auto thrower = [](EventQueue &eq) -> Task<void> {
        co_await Delay{eq, 1};
        throw std::runtime_error("boom");
    };
    spawn(thrower(eq));
    EXPECT_THROW(eq.run(), PanicError);
}
