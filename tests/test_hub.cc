/**
 * @file
 * HUB behaviour tests: connection setup, cut-through forwarding,
 * circuit and packet switching, multicast, flow control, locks,
 * status interrogation, and supervisor commands.  The multi-HUB
 * scenarios replicate Figure 7 and Sections 4.2.1-4.2.4 of the paper.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "helpers/test_endpoint.hh"
#include "hub/hub.hh"
#include "topo/topology.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using namespace nectar::hub;
using nectar::test::TestEndpoint;
using phys::ItemKind;
using phys::WireItem;
using sim::Tick;
using sim::ticks::ns;
using sim::ticks::us;

namespace {

std::vector<std::uint8_t>
iotaBytes(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), std::uint8_t(0));
    return v;
}

} // namespace

class HubTest : public ::testing::Test
{
  protected:
    HubTest() : wiring(eq) {}

    void
    makeHub(std::uint8_t id = 0, HubConfig cfg = {})
    {
        h = std::make_unique<Hub>(eq, "hub", id, cfg, &mon);
    }

    TestEndpoint &
    addEp(PortId port)
    {
        eps.push_back(std::make_unique<TestEndpoint>(eq));
        auto &ep = *eps.back();
        auto &tx = wiring.connectEndpoint(
            ep, *h, port, "ep" + std::to_string(port));
        ep.attachTx(tx);
        return ep;
    }

    sim::EventQueue eq;
    RecordingMonitor mon;
    topo::Wiring wiring;
    std::unique_ptr<Hub> h;
    std::vector<std::unique_ptr<TestEndpoint>> eps;
};

TEST_F(HubTest, OpenEstablishesConnection)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    EXPECT_EQ(h->crossbar().ownerOf(1), 0);
    EXPECT_EQ(h->stats().opensOk.value(), 1u);
}

TEST_F(HubTest, ConnectionSetupUnderOneMicrosecond)
{
    // Section 2.3 goal: "the latency to establish a connection
    // through a single HUB should be under 1 microsecond."
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    ASSERT_EQ(mon.count(HubEvent::connectionOpen), 1u);
    Tick opened = mon.events().back().when;
    EXPECT_LT(opened, 1 * us);
    // Expected decomposition: 240 ns command serialization + 2-cycle
    // decode + 1 controller cycle = 450 ns.
    EXPECT_EQ(opened, 450 * ns);
}

TEST_F(HubTest, DataFlowsThroughOpenConnection)
{
    makeHub();
    auto &a = addEp(0);
    auto &b = addEp(1);
    a.sendCommand(Op::open, 0, 1);
    eq.run();

    auto payload = iotaBytes(64);
    eq.schedule(1000 * sim::ticks::ns, [&] { a.sendPacket(payload); });
    eq.run();

    EXPECT_EQ(b.countKind(ItemKind::startOfPacket), 1u);
    EXPECT_EQ(b.countKind(ItemKind::endOfPacket), 1u);
    EXPECT_EQ(b.collectData(), payload);
}

TEST_F(HubTest, CutThroughTimingMatchesPrototype)
{
    // Section 4, goal 1: transfer latency through an open connection
    // is five cycles (350 ns), pipelined at the fiber rate.
    makeHub();
    auto &a = addEp(0);
    auto &b = addEp(1);
    a.sendCommand(Op::open, 0, 1);
    eq.run();

    eq.schedule(1000 * sim::ticks::ns, [&] { a.sendPacket(iotaBytes(16)); });
    eq.run();

    // SOP: serialized to the HUB (80 ns), forwarded 350 ns after its
    // first byte arrives, serialized to B (80 ns): 1000+510 = 1510.
    EXPECT_EQ(b.arrivalOf(ItemKind::startOfPacket), 1510 * ns);
    // Data chunk first byte: one byte time behind the SOP.
    EXPECT_EQ(b.arrivalOf(ItemKind::data), 1590 * ns);
}

TEST_F(HubTest, SetupPlusFirstByteNearTenCycles)
{
    // Section 4, goal 1: "the latency to set up a connection and
    // transfer the first byte of a packet through a single HUB is ten
    // cycles (700 nanoseconds)."  Measured here from the arrival of
    // the command's last byte at the HUB to the first byte of data
    // emerging from the output register.
    makeHub();
    auto &a = addEp(0);
    auto &b = addEp(1);
    // Command followed immediately by the packet, as a CAB datalink
    // would send for an uncontended circuit.
    a.sendCommand(Op::openRetry, 0, 1);
    a.sendPacket(iotaBytes(16));
    eq.run();

    const Tick cmd_last_byte = 240 * ns;
    Tick sop_out = b.arrivalOf(ItemKind::startOfPacket) - 80 * ns;
    Tick setup_to_first_byte = sop_out - cmd_last_byte;
    EXPECT_GT(setup_to_first_byte, 350 * ns);
    EXPECT_LE(setup_to_first_byte, 700 * ns);
    EXPECT_EQ(b.collectData(), iotaBytes(16));
}

TEST_F(HubTest, OpenFailsWhenOutputBusy)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    auto &c = addEp(2);
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    c.sendCommand(Op::openReply, 0, 1);
    eq.run();
    auto replies = c.replies();
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].status, status::failure);
    EXPECT_EQ(h->crossbar().ownerOf(1), 0);
    EXPECT_GE(h->stats().opensFailed.value(), 1u);
}

TEST_F(HubTest, OpenRetrySucceedsAfterClose)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    auto &c = addEp(2);
    a.sendCommand(Op::open, 0, 1);
    eq.runUntil(1 * us);
    // c keeps retrying while the output is owned by a.
    c.sendCommand(Op::openRetry, 0, 1);
    eq.runUntil(5 * us);
    EXPECT_EQ(h->crossbar().ownerOf(1), 0);
    EXPECT_GT(h->controller().retries(), 0u);
    // a releases; c's retry wins the output.
    a.sendCommand(Op::close, 0, 1);
    eq.runUntil(10 * us);
    EXPECT_EQ(h->crossbar().ownerOf(1), 2);
}

TEST_F(HubTest, CloseAllTravelsWithDataAndClosesBehind)
{
    makeHub();
    auto &a = addEp(0);
    auto &b = addEp(1);
    a.sendCommand(Op::openRetry, 0, 1);
    a.sendPacket(iotaBytes(32), /*closeAllAfter=*/true);
    eq.run();
    EXPECT_EQ(b.collectData(), iotaBytes(32));
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
    // The connection can be re-established afterwards.
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    EXPECT_EQ(h->crossbar().ownerOf(1), 0);
}

TEST_F(HubTest, CloseAllWithNoConnectionIsIdempotent)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    a.sendCommand(Op::closeAll, 0, 0);
    eq.run();
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
    EXPECT_EQ(h->errorCount(), 0);
}

TEST_F(HubTest, MulticastSingleHub)
{
    makeHub();
    auto &a = addEp(0);
    auto &b = addEp(1);
    auto &c = addEp(2);
    a.sendCommand(Op::openRetryReply, 0, 1);
    a.sendCommand(Op::openRetryReply, 0, 2);
    eq.run();
    EXPECT_EQ(a.replies().size(), 2u);

    auto payload = iotaBytes(100);
    eq.schedule(5000 * sim::ticks::ns, [&] { a.sendPacket(payload, true); });
    eq.run();
    EXPECT_EQ(b.collectData(), payload);
    EXPECT_EQ(c.collectData(), payload);
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
}

TEST_F(HubTest, ReplyCarriesOpcodeHubAndParam)
{
    makeHub(7);
    auto &a = addEp(0);
    addEp(3);
    a.sendCommand(Op::openRetryReply, 7, 3);
    eq.run();
    auto replies = a.replies();
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].op,
              static_cast<std::uint8_t>(Op::openRetryReply));
    EXPECT_EQ(replies[0].hubId, 7);
    EXPECT_EQ(replies[0].param, 3);
    EXPECT_EQ(replies[0].status, status::success);
}

TEST_F(HubTest, CommandForOtherHubWaitsForConnection)
{
    makeHub(0);
    auto &a = addEp(0);
    addEp(1);
    // A command addressed to HUB 9 is not consumed here; with no
    // connection open it waits at the head of the input queue (the
    // byte stream is strictly FIFO, so a CAB must open its local
    // connection before sending commands for downstream HUBs).
    a.sendCommand(Op::openRetry, 9, 5);
    eq.runUntil(10 * us);
    EXPECT_EQ(h->port(0).queueLength(), 1u);
}

TEST_F(HubTest, CommandForOtherHubForwardedThroughConnection)
{
    makeHub(0);
    auto &a = addEp(0);
    auto &b = addEp(1);
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    // With the connection open, a command addressed to HUB 9 travels
    // through the crossbar like data.
    a.sendCommand(Op::noop, 9, 5);
    eq.run();
    ASSERT_EQ(b.countKind(ItemKind::command), 1u);
    EXPECT_EQ(b.received.back().item.cmd.hubId, 9);
}

TEST_F(HubTest, ReadySignalSentWhenSopEmergesFromInputQueue)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    a.sendCommand(Op::openRetry, 0, 1);
    a.sendPacket(iotaBytes(8));
    eq.run();
    // Section 4.2.3: upstream learns the queue drained.
    EXPECT_GE(a.countKind(ItemKind::readySignal), 1u);
}

TEST_F(HubTest, TestOpenBlocksUntilDownstreamReady)
{
    makeHub();
    auto &a = addEp(0);
    auto &b = addEp(1);
    b.autoReady = false; // B never acknowledges packets

    a.sendCommand(Op::testOpenRetry, 0, 1);
    a.sendPacket(iotaBytes(16), true);
    eq.runUntil(20 * us);
    // First packet goes through (ready bit starts at 1)...
    EXPECT_EQ(b.countKind(ItemKind::startOfPacket), 1u);

    // ...but the second blocks: B has not signalled readiness.
    a.sendCommand(Op::testOpenRetry, 0, 1);
    a.sendPacket(iotaBytes(16), true);
    eq.runUntil(100 * us);
    EXPECT_EQ(b.countKind(ItemKind::startOfPacket), 1u);
    EXPECT_FALSE(h->port(1).ready());
    EXPECT_GT(h->controller().retries(), 0u);

    // B drains its queue and signals ready: the packet flows.
    b.txLink()->sendStolen(WireItem::ready());
    eq.run();
    EXPECT_EQ(b.countKind(ItemKind::startOfPacket), 2u);
    EXPECT_EQ(b.dataBytes(), 32u);
}

TEST_F(HubTest, QueueOverflowDropsAndCountsErrors)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    // 2 KB into a 1 KB queue with no connection open.
    a.sendPacket(iotaBytes(2048));
    eq.runUntil(1 * sim::ticks::ms);
    EXPECT_GT(h->stats().queueOverflows.value(), 0u);
    EXPECT_GT(h->errorCount(), 0);
}

TEST_F(HubTest, LockBlocksOtherOpens)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    auto &c = addEp(2);
    a.sendCommand(Op::lock, 0, 1);
    eq.run();
    c.sendCommand(Op::openReply, 0, 1);
    eq.run();
    ASSERT_EQ(c.replies().size(), 1u);
    EXPECT_EQ(c.replies()[0].status, status::failure);
    // The holder itself can open.
    a.sendCommand(Op::openReply, 0, 1);
    eq.run();
    ASSERT_EQ(a.replies().size(), 1u);
    EXPECT_EQ(a.replies()[0].status, status::success);
}

TEST_F(HubTest, TestLockRepliesAndUnlockReleases)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    auto &c = addEp(2);
    a.sendCommand(Op::testLock, 0, 1);
    eq.run();
    ASSERT_EQ(a.replies().size(), 1u);
    EXPECT_EQ(a.replies()[0].status, status::success);

    c.sendCommand(Op::testLock, 0, 1);
    eq.run();
    ASSERT_EQ(c.replies().size(), 1u);
    EXPECT_EQ(c.replies()[0].status, status::failure);

    a.sendCommand(Op::unlock, 0, 1);
    eq.run();
    c.sendCommand(Op::testLock, 0, 1);
    eq.run();
    EXPECT_EQ(c.replies().back().status, status::success);
}

TEST_F(HubTest, StatusQueries)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    a.sendCommand(Op::open, 0, 1);
    eq.run();

    a.sendCommand(Op::queryConn, 0, 1);
    a.sendCommand(Op::queryReady, 0, 1);
    a.sendCommand(Op::queryLock, 0, 1);
    eq.run();
    auto replies = a.replies();
    ASSERT_EQ(replies.size(), 3u);
    EXPECT_EQ(replies[0].status, 0); // owner of output 1 is port 0
    EXPECT_EQ(replies[1].status, 1); // ready
    EXPECT_EQ(replies[2].status, status::none); // unlocked

    a.sendCommand(Op::queryConn, 0, 5);
    eq.run();
    EXPECT_EQ(a.replies().back().status, status::none);
}

TEST_F(HubTest, EchoRepliesWithParam)
{
    makeHub();
    auto &a = addEp(0);
    a.sendCommand(Op::echo, 0, 0x5A);
    eq.run();
    ASSERT_EQ(a.replies().size(), 1u);
    EXPECT_EQ(a.replies()[0].status, 0x5A);
}

TEST_F(HubTest, DisabledPortDropsTraffic)
{
    makeHub();
    auto &a = addEp(0);
    auto &c = addEp(2);
    c.sendCommand(Op::svDisablePort, 0, 0);
    eq.run();
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
    EXPECT_GT(h->stats().disabledDrops.value(), 0u);

    c.sendCommand(Op::svEnablePort, 0, 0);
    eq.run();
    a.sendCommand(Op::open, 0, 1);
    eq.run();
    EXPECT_EQ(h->crossbar().ownerOf(1), 0);
}

TEST_F(HubTest, SupervisorResetClearsState)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    auto &c = addEp(2);
    a.sendCommand(Op::open, 0, 1);
    a.sendCommand(Op::lock, 0, 3);
    eq.run();
    EXPECT_EQ(h->crossbar().connectionCount(), 1);
    c.sendCommand(Op::svReset, 0, 0);
    eq.run();
    EXPECT_EQ(h->crossbar().connectionCount(), 0);
    EXPECT_EQ(h->crossbar().lockHolder(3), noPort);
}

TEST_F(HubTest, SupervisorQueryErrorsReply)
{
    makeHub();
    auto &a = addEp(0);
    addEp(1);
    a.sendPacket(iotaBytes(2048)); // forces queue overflow errors
    eq.runUntil(1 * sim::ticks::ms);
    auto &c = addEp(2);
    c.sendCommand(Op::svQueryErrors, 0, 0);
    eq.run();
    ASSERT_EQ(c.replies().size(), 1u);
    EXPECT_GT(c.replies()[0].status, 0);
}

TEST_F(HubTest, SupervisorPing)
{
    makeHub();
    auto &a = addEp(0);
    a.sendCommand(Op::svPing, 0, 0);
    eq.run();
    ASSERT_EQ(a.replies().size(), 1u);
    EXPECT_EQ(a.replies()[0].status, status::success);
}

// ---------------------------------------------------------------
// Multi-HUB scenarios (Figure 7, Sections 4.2.1-4.2.4).
// ---------------------------------------------------------------

class MultiHubTest : public ::testing::Test
{
  protected:
    sim::EventQueue eq;
    std::unique_ptr<topo::Topology> topo;
    std::vector<std::unique_ptr<TestEndpoint>> eps;

    TestEndpoint &
    addEp(int hubIndex, PortId port)
    {
        eps.push_back(std::make_unique<TestEndpoint>(eq));
        auto &ep = *eps.back();
        auto &tx = topo->attachEndpoint(
            ep, hubIndex, port,
            "cab_h" + std::to_string(hubIndex) + "p" +
                std::to_string(port));
        ep.attachTx(tx);
        return ep;
    }

    void
    sendRoute(TestEndpoint &src, const topo::Route &route,
              bool packetSwitched = false)
    {
        for (const auto &hop : route) {
            Op op;
            if (packetSwitched) {
                op = hop.reply ? Op::testOpenRetryReply
                               : Op::testOpenRetry;
            } else {
                op = hop.reply ? Op::openRetryReply : Op::openRetry;
            }
            src.sendCommand(op, hop.hubId, hop.outPort);
        }
    }
};

TEST_F(MultiHubTest, CircuitSwitchingTwoHubs)
{
    // Section 4.2.1: CAB3 -> HUB2(P4->P8) -> HUB1(P3->P8) -> CAB1.
    topo = std::make_unique<topo::Topology>(eq);
    int hub1 = topo->addHub("HUB1");
    int hub2 = topo->addHub("HUB2");
    topo->linkHubs(hub2, 8, hub1, 3);
    auto &cab3 = addEp(hub2, 4);
    auto &cab1 = addEp(hub1, 8);

    auto route = topo->route({hub2, 4}, {hub1, 8});
    ASSERT_EQ(route.size(), 2u);
    EXPECT_EQ(route[0],
              (topo::Hop{topo->hubAt(hub2).hubId(), 8, false}));
    EXPECT_EQ(route[1],
              (topo::Hop{topo->hubAt(hub1).hubId(), 8, true}));

    sendRoute(cab3, route);
    eq.run();
    // The reply travelled backward over the established route.
    ASSERT_EQ(cab3.replies().size(), 1u);
    EXPECT_EQ(cab3.replies()[0].hubId, topo->hubAt(hub1).hubId());
    EXPECT_EQ(cab3.replies()[0].status, status::success);

    auto payload = iotaBytes(200);
    eq.schedule(eq.now() + 100, [&] { cab3.sendPacket(payload, true); });
    eq.run();
    EXPECT_EQ(cab1.collectData(), payload);
    // closeAll closed both hops behind the data.
    EXPECT_EQ(topo->hubAt(hub1).crossbar().connectionCount(), 0);
    EXPECT_EQ(topo->hubAt(hub2).crossbar().connectionCount(), 0);
}

TEST_F(MultiHubTest, MulticastFourHubs)
{
    // Section 4.2.2 / Figure 7: CAB2 multicasts to CAB4 and CAB5.
    topo = std::make_unique<topo::Topology>(eq);
    int hub1 = topo->addHub("HUB1");
    topo->addHub("HUB2"); // present in the figure, unused by route
    int hub3 = topo->addHub("HUB3");
    int hub4 = topo->addHub("HUB4");
    topo->linkHubs(hub1, 6, hub4, 0);
    topo->linkHubs(hub4, 3, hub3, 1);

    auto &cab2 = addEp(hub1, 2);
    auto &cab4 = addEp(hub4, 5);
    auto &cab5 = addEp(hub3, 4);

    auto route = topo->multicastRoute({hub1, 2},
                                      {{hub4, 5}, {hub3, 4}});
    // Expected command order (paper): open HUB1 P6; openRR HUB4 P5;
    // open HUB4 P3; openRR HUB3 P4.
    ASSERT_EQ(route.size(), 4u);
    EXPECT_EQ(route[0],
              (topo::Hop{topo->hubAt(hub1).hubId(), 6, false}));
    EXPECT_EQ(route[1],
              (topo::Hop{topo->hubAt(hub4).hubId(), 5, true}));
    EXPECT_EQ(route[2],
              (topo::Hop{topo->hubAt(hub4).hubId(), 3, false}));
    EXPECT_EQ(route[3],
              (topo::Hop{topo->hubAt(hub3).hubId(), 4, true}));

    sendRoute(cab2, route);
    eq.run();
    // One reply per terminal open.
    EXPECT_EQ(cab2.replies().size(), 2u);

    auto payload = iotaBytes(150);
    eq.schedule(eq.now() + 100, [&] { cab2.sendPacket(payload, true); });
    eq.run();
    EXPECT_EQ(cab4.collectData(), payload);
    EXPECT_EQ(cab5.collectData(), payload);
    EXPECT_EQ(topo->hubAt(hub1).crossbar().connectionCount(), 0);
    EXPECT_EQ(topo->hubAt(hub4).crossbar().connectionCount(), 0);
    EXPECT_EQ(topo->hubAt(hub3).crossbar().connectionCount(), 0);
}

TEST_F(MultiHubTest, PacketSwitchingStoreAndForward)
{
    // Section 4.2.3: with test open, the packet is forwarded to the
    // next HUB as soon as that HUB's input queue is available.
    topo = std::make_unique<topo::Topology>(eq);
    int hub1 = topo->addHub("HUB1");
    int hub2 = topo->addHub("HUB2");
    topo->linkHubs(hub2, 8, hub1, 3);
    auto &cab3 = addEp(hub2, 4);
    auto &cab1 = addEp(hub1, 8);

    auto route = topo->route({hub2, 4}, {hub1, 8});
    sendRoute(cab3, route, /*packetSwitched=*/true);
    auto payload = iotaBytes(128);
    cab3.sendPacket(payload, true);
    eq.run();
    EXPECT_EQ(cab1.collectData(), payload);
    EXPECT_EQ(cab3.replies().size(), 1u);
    EXPECT_EQ(topo->hubAt(hub1).crossbar().connectionCount(), 0);
    EXPECT_EQ(topo->hubAt(hub2).crossbar().connectionCount(), 0);
}

TEST_F(MultiHubTest, MeshRouteHopCountsMatchManhattanDistance)
{
    auto mesh = topo::makeMesh2D(eq, 3, 3);
    // Corner to corner: 4 inter-hub hops + the destination hop.
    topo::Endpoint a{topo::meshHubIndex(0, 0, 3), 0};
    topo::Endpoint b{topo::meshHubIndex(2, 2, 3), 0};
    EXPECT_EQ(mesh->hopCount(a, b), 5);
    // Same hub: just the destination open.
    topo::Endpoint c{topo::meshHubIndex(0, 0, 3), 1};
    EXPECT_EQ(mesh->hopCount(a, c), 1);
}

TEST_F(MultiHubTest, MeshEndToEndDelivery)
{
    topo = topo::makeMesh2D(eq, 2, 2);
    auto &src = addEp(topo::meshHubIndex(0, 0, 2), 0);
    auto &dst = addEp(topo::meshHubIndex(1, 1, 2), 3);

    auto route = topo->route({topo::meshHubIndex(0, 0, 2), 0},
                             {topo::meshHubIndex(1, 1, 2), 3});
    EXPECT_EQ(route.size(), 3u);
    sendRoute(src, route);
    eq.run();
    ASSERT_EQ(src.replies().size(), 1u);

    auto payload = iotaBytes(99);
    eq.schedule(eq.now() + 100, [&] { src.sendPacket(payload, true); });
    eq.run();
    EXPECT_EQ(dst.collectData(), payload);
}
