/**
 * @file
 * Physical-layer tests: wire item encoding, fiber serialization
 * timing, cycle-stealing sends, propagation delay, fault injection.
 */

#include <gtest/gtest.h>

#include "phys/fiber.hh"
#include "phys/wire.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace nectar;
using namespace nectar::phys;
using sim::Tick;

namespace {

/** Minimal sink recording (item, firstByte, lastByte). */
struct Sink : FiberSink
{
    struct Rx
    {
        WireItem item;
        Tick firstByte;
        Tick lastByte;
    };
    std::vector<Rx> got;

    void
    fiberDeliver(WireItem item, Tick fb, Tick lb) override
    {
        got.push_back(Rx{std::move(item), fb, lb});
    }
};

} // namespace

TEST(WireItem, ByteLengths)
{
    EXPECT_EQ(WireItem::command(1, 2, 3).byteLength(), 3u);
    EXPECT_EQ(WireItem::makeReply(1, 2, 3, 4).byteLength(), 3u);
    EXPECT_EQ(WireItem::startPacket().byteLength(), 1u);
    EXPECT_EQ(WireItem::endPacket().byteLength(), 1u);
    EXPECT_EQ(WireItem::ready().byteLength(), 1u);
    auto p = makePayload(std::vector<std::uint8_t>(100));
    EXPECT_EQ(WireItem::dataChunk(p, 10, 80).byteLength(), 80u);
}

TEST(WireItem, DescribeNamesKindAndFields)
{
    auto c = WireItem::command(2, 7, 9);
    EXPECT_NE(c.describe().find("command"), std::string::npos);
    EXPECT_NE(c.describe().find("hub=7"), std::string::npos);
    auto p = makePayload(std::vector<std::uint8_t>(5));
    auto d = WireItem::dataChunk(p, 0, 5);
    d.corrupted = true;
    EXPECT_NE(d.describe().find("corrupt"), std::string::npos);
}

TEST(FiberLink, SerializesAtByteRate)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);

    // A 3-byte command at 80 ns/byte: first byte at 80, last at 240.
    link.send(WireItem::command(1, 0, 0));
    eq.run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_EQ(sink.got[0].firstByte, 80);
    EXPECT_EQ(sink.got[0].lastByte, 240);
    EXPECT_EQ(link.bytesSent(), 3u);
}

TEST(FiberLink, BackToBackItemsQueueOnTransmitter)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    link.send(WireItem::startPacket()); // 1 byte: [0, 80]
    auto p = makePayload(std::vector<std::uint8_t>(10));
    link.send(WireItem::dataChunk(p, 0, 10)); // [80, 880]
    eq.run();
    ASSERT_EQ(sink.got.size(), 2u);
    EXPECT_EQ(sink.got[0].firstByte, 80);
    EXPECT_EQ(sink.got[1].firstByte, 160);
    EXPECT_EQ(sink.got[1].lastByte, 880);
    EXPECT_EQ(link.busyUntil(), 880);
}

TEST(FiberLink, PropagationDelayAddsToArrival)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f", /*propDelay=*/500);
    link.connectTo(sink);
    link.send(WireItem::startPacket());
    eq.run();
    EXPECT_EQ(sink.got[0].firstByte, 580);
}

TEST(FiberLink, StolenSendsBypassTheQueue)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    auto p = makePayload(std::vector<std::uint8_t>(100));
    link.send(WireItem::dataChunk(p, 0, 100)); // busy until 8000
    link.sendStolen(WireItem::ready());        // arrives at 80
    eq.run();
    ASSERT_EQ(sink.got.size(), 2u);
    // The stolen item arrives at its own serialization time (80 ns),
    // not after the 8 us data transmission completes.
    const Sink::Rx *ready = nullptr, *data = nullptr;
    for (const auto &rx : sink.got) {
        if (rx.item.kind == ItemKind::readySignal)
            ready = &rx;
        else
            data = &rx;
    }
    ASSERT_NE(ready, nullptr);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(ready->firstByte, 80);
    // The data transmission was not delayed by the stolen item.
    EXPECT_EQ(data->lastByte, 8000);
}

TEST(FiberLink, SendWithoutSinkPanics)
{
    sim::EventQueue eq;
    FiberLink link(eq, "f");
    EXPECT_THROW(link.send(WireItem::startPacket()), sim::PanicError);
}

TEST(FiberLink, BadConfigIsFatal)
{
    sim::EventQueue eq;
    EXPECT_THROW(FiberLink(eq, "f", 0, 0), sim::FatalError);
    EXPECT_THROW(FiberLink(eq, "f", -5), sim::FatalError);
}

TEST(FiberLink, FaultInjectionDropsCommands)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    FaultModel faults;
    faults.dropCommand = 1.0;
    link.setFaults(faults, 1);
    link.send(WireItem::command(1, 0, 0));
    link.send(WireItem::startPacket()); // markers unaffected
    eq.run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_EQ(sink.got[0].item.kind, ItemKind::startOfPacket);
    EXPECT_EQ(link.itemsDropped(), 1u);
    // The dropped command still consumed wire time.
    EXPECT_EQ(link.bytesSent(), 4u);
}

TEST(FiberLink, FaultInjectionCorruptsData)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    FaultModel faults;
    faults.corruptData = 1.0;
    link.setFaults(faults, 2);
    auto p = makePayload(std::vector<std::uint8_t>(8));
    link.send(WireItem::dataChunk(p, 0, 8));
    eq.run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_TRUE(sink.got[0].item.corrupted);
    EXPECT_EQ(link.itemsCorrupted(), 1u);
}

TEST(FiberLink, FaultRatesAreApproximatelyHonoured)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    FaultModel faults;
    faults.dropData = 0.25;
    link.setFaults(faults, 3);
    auto p = makePayload(std::vector<std::uint8_t>(1));
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        link.send(WireItem::dataChunk(p, 0, 1));
    eq.run();
    double rate = static_cast<double>(link.itemsDropped()) / n;
    EXPECT_NEAR(rate, 0.25, 0.04);
}

TEST(FiberLink, UtilizationAccounting)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    auto p = makePayload(std::vector<std::uint8_t>(125));
    link.send(WireItem::dataChunk(p, 0, 125)); // 10 us of wire time
    eq.run();
    EXPECT_EQ(link.busyTicks(), 10000);
}
