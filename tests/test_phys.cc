/**
 * @file
 * Physical-layer tests: wire item encoding, fiber serialization
 * timing, cycle-stealing sends, propagation delay, fault injection.
 */

#include <gtest/gtest.h>

#include "phys/fiber.hh"
#include "phys/wire.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace nectar;
using namespace nectar::phys;
using sim::Tick;

namespace {

/** Minimal sink recording (item, firstByte, lastByte). */
struct Sink : FiberSink
{
    struct Rx
    {
        WireItem item;
        Tick firstByte;
        Tick lastByte;
    };
    std::vector<Rx> got;

    void
    fiberDeliver(WireItem item, Tick fb, Tick lb) override
    {
        got.push_back(Rx{std::move(item), fb, lb});
    }
};

} // namespace

TEST(WireItem, ByteLengths)
{
    EXPECT_EQ(WireItem::command(1, 2, 3).byteLength(), 3u);
    EXPECT_EQ(WireItem::makeReply(1, 2, 3, 4).byteLength(), 3u);
    EXPECT_EQ(WireItem::startPacket().byteLength(), 1u);
    EXPECT_EQ(WireItem::endPacket().byteLength(), 1u);
    EXPECT_EQ(WireItem::ready().byteLength(), 1u);
    auto p = makePayload(std::vector<std::uint8_t>(100));
    EXPECT_EQ(WireItem::dataChunk(p, 10, 80).byteLength(), 80u);
}

TEST(WireItem, DescribeNamesKindAndFields)
{
    auto c = WireItem::command(2, 7, 9);
    EXPECT_NE(c.describe().find("command"), std::string::npos);
    EXPECT_NE(c.describe().find("hub=7"), std::string::npos);
    auto p = makePayload(std::vector<std::uint8_t>(5));
    auto d = WireItem::dataChunk(p, 0, 5);
    d.corrupted = true;
    EXPECT_NE(d.describe().find("corrupt"), std::string::npos);
}

TEST(FiberLink, SerializesAtByteRate)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);

    // A 3-byte command at 80 ns/byte: first byte at 80, last at 240.
    link.send(WireItem::command(1, 0, 0));
    eq.run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_EQ(sink.got[0].firstByte, 80);
    EXPECT_EQ(sink.got[0].lastByte, 240);
    EXPECT_EQ(link.bytesSent(), 3u);
}

TEST(FiberLink, BackToBackItemsQueueOnTransmitter)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    link.send(WireItem::startPacket()); // 1 byte: [0, 80]
    auto p = makePayload(std::vector<std::uint8_t>(10));
    link.send(WireItem::dataChunk(p, 0, 10)); // [80, 880]
    eq.run();
    ASSERT_EQ(sink.got.size(), 2u);
    EXPECT_EQ(sink.got[0].firstByte, 80);
    EXPECT_EQ(sink.got[1].firstByte, 160);
    EXPECT_EQ(sink.got[1].lastByte, 880);
    EXPECT_EQ(link.busyUntil(), 880);
}

TEST(FiberLink, PropagationDelayAddsToArrival)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f", /*propDelay=*/500);
    link.connectTo(sink);
    link.send(WireItem::startPacket());
    eq.run();
    EXPECT_EQ(sink.got[0].firstByte, 580);
}

TEST(FiberLink, StolenSendsBypassTheQueue)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    auto p = makePayload(std::vector<std::uint8_t>(100));
    link.send(WireItem::dataChunk(p, 0, 100)); // busy until 8000
    link.sendStolen(WireItem::ready());        // arrives at 80
    eq.run();
    ASSERT_EQ(sink.got.size(), 2u);
    // The stolen item arrives at its own serialization time (80 ns),
    // not after the 8 us data transmission completes.
    const Sink::Rx *ready = nullptr, *data = nullptr;
    for (const auto &rx : sink.got) {
        if (rx.item.kind == ItemKind::readySignal)
            ready = &rx;
        else
            data = &rx;
    }
    ASSERT_NE(ready, nullptr);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(ready->firstByte, 80);
    // The data transmission was not delayed by the stolen item.
    EXPECT_EQ(data->lastByte, 8000);
}

TEST(FiberLink, SendWithoutSinkPanics)
{
    sim::EventQueue eq;
    FiberLink link(eq, "f");
    EXPECT_THROW(link.send(WireItem::startPacket()), sim::PanicError);
}

TEST(FiberLink, BadConfigIsFatal)
{
    sim::EventQueue eq;
    EXPECT_THROW(FiberLink(eq, "f", 0, 0), sim::FatalError);
    EXPECT_THROW(FiberLink(eq, "f", -5), sim::FatalError);
}

TEST(FiberLink, FaultInjectionDropsCommands)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    FaultModel faults;
    faults.dropCommand = 1.0;
    link.setFaults(faults, 1);
    link.send(WireItem::command(1, 0, 0));
    link.send(WireItem::startPacket()); // markers unaffected
    eq.run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_EQ(sink.got[0].item.kind, ItemKind::startOfPacket);
    EXPECT_EQ(link.itemsDropped(), 1u);
    // The dropped command still consumed wire time.
    EXPECT_EQ(link.bytesSent(), 4u);
}

TEST(FiberLink, FaultInjectionCorruptsData)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    FaultModel faults;
    faults.corruptData = 1.0;
    link.setFaults(faults, 2);
    auto p = makePayload(std::vector<std::uint8_t>(8));
    link.send(WireItem::dataChunk(p, 0, 8));
    eq.run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_TRUE(sink.got[0].item.corrupted);
    EXPECT_EQ(link.itemsCorrupted(), 1u);
}

TEST(FiberLink, FaultRatesAreApproximatelyHonoured)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    FaultModel faults;
    faults.dropData = 0.25;
    link.setFaults(faults, 3);
    auto p = makePayload(std::vector<std::uint8_t>(1));
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        link.send(WireItem::dataChunk(p, 0, 1));
    eq.run();
    double rate = static_cast<double>(link.itemsDropped()) / n;
    EXPECT_NEAR(rate, 0.25, 0.04);
}

TEST(FiberLink, SetFaultsReseedingReproducesDecisions)
{
    // Regression: re-arming the fault model with the same seed must
    // reproduce the identical drop sequence and restart the counters
    // from zero, so seeded campaigns are repeatable on a live link.
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);

    FaultModel faults;
    faults.dropData = 0.5;
    link.setFaults(faults, 42);
    auto p = makePayload(std::vector<std::uint8_t>(1));
    for (int i = 0; i < 500; ++i)
        link.send(WireItem::dataChunk(p, 0, 1));
    eq.run();
    auto firstDrops = link.itemsDropped();
    auto firstDelivered = sink.got.size();
    EXPECT_GT(firstDrops, 0u);

    link.setFaults(faults, 42); // same seed: counters restart
    EXPECT_EQ(link.itemsDropped(), 0u);
    EXPECT_EQ(link.itemsCorrupted(), 0u);
    for (int i = 0; i < 500; ++i)
        link.send(WireItem::dataChunk(p, 0, 1));
    eq.run();
    EXPECT_EQ(link.itemsDropped(), firstDrops);
    EXPECT_EQ(sink.got.size() - firstDelivered, firstDelivered);
}

TEST(FiberLink, BurstModelHitsStationaryLossRate)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    link.setBurstModel(GilbertElliott::forLossRate(0.05, 8.0), 7);
    auto p = makePayload(std::vector<std::uint8_t>(1));
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        link.send(WireItem::dataChunk(p, 0, 1));
    eq.run();
    double rate = static_cast<double>(link.itemsDroppedBurst()) / n;
    EXPECT_NEAR(rate, 0.05, 0.015);
}

TEST(FiberLink, BurstModelLossesAreBursty)
{
    // With lossBad = 1 and mean bursts of 16 items, consecutive
    // drops must cluster: the number of distinct loss runs is far
    // smaller than the number of losses.
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    link.setBurstModel(GilbertElliott::forLossRate(0.10, 16.0), 9);
    auto p = makePayload(std::vector<std::uint8_t>(1));
    const int n = 20000;
    std::vector<bool> lost;
    std::uint64_t dropped = 0;
    for (int i = 0; i < n; ++i) {
        link.send(WireItem::dataChunk(p, 0, 1));
        lost.push_back(link.itemsDroppedBurst() > dropped);
        dropped = link.itemsDroppedBurst();
    }
    eq.run();
    int runs = 0;
    for (int i = 0; i < n; ++i)
        if (lost[i] && (i == 0 || !lost[i - 1]))
            ++runs;
    ASSERT_GT(dropped, 0u);
    double meanBurst = static_cast<double>(dropped) / runs;
    EXPECT_GT(meanBurst, 4.0); // i.i.d. loss at 10% would give ~1.1
}

TEST(FiberLink, BurstModelSparesMarkers)
{
    // Packet framing markers are exempt from burst loss.
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    GilbertElliott ge;
    ge.pGoodBad = 1.0;
    ge.pBadGood = 0.0;
    ge.lossBad = 1.0;
    link.setBurstModel(ge, 1);
    link.send(WireItem::startPacket());
    link.send(WireItem::endPacket());
    auto p = makePayload(std::vector<std::uint8_t>(1));
    link.send(WireItem::dataChunk(p, 0, 1)); // eaten by the burst
    eq.run();
    ASSERT_EQ(sink.got.size(), 2u);
    EXPECT_EQ(link.itemsDroppedBurst(), 1u);
}

TEST(FiberLink, BurstModelReseedIsDeterministic)
{
    auto countDrops = [](std::uint64_t seed) {
        sim::EventQueue eq;
        Sink sink;
        FiberLink link(eq, "f");
        link.connectTo(sink);
        link.setBurstModel(GilbertElliott::forLossRate(0.2, 4.0), seed);
        auto p = makePayload(std::vector<std::uint8_t>(1));
        for (int i = 0; i < 1000; ++i)
            link.send(WireItem::dataChunk(p, 0, 1));
        eq.run();
        return std::make_pair(link.itemsDroppedBurst(),
                              sink.got.size());
    };
    EXPECT_EQ(countDrops(5), countDrops(5));
    EXPECT_NE(countDrops(5), countDrops(6));

    // Re-seeding a live link restarts both sequence and counter.
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    auto p = makePayload(std::vector<std::uint8_t>(1));
    link.setBurstModel(GilbertElliott::forLossRate(0.2, 4.0), 5);
    for (int i = 0; i < 1000; ++i)
        link.send(WireItem::dataChunk(p, 0, 1));
    eq.run();
    auto first = link.itemsDroppedBurst();
    link.setBurstModel(GilbertElliott::forLossRate(0.2, 4.0), 5);
    EXPECT_EQ(link.itemsDroppedBurst(), 0u);
    for (int i = 0; i < 1000; ++i)
        link.send(WireItem::dataChunk(p, 0, 1));
    eq.run();
    EXPECT_EQ(link.itemsDroppedBurst(), first);

    link.clearBurstModel();
    EXPECT_FALSE(link.burstModelActive());
}

TEST(FiberLink, DownLinkDiscardsEverything)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    link.setLinkUp(false);
    EXPECT_FALSE(link.linkUp());
    auto p = makePayload(std::vector<std::uint8_t>(4));
    link.send(WireItem::dataChunk(p, 0, 4));
    link.send(WireItem::command(1, 0, 0));
    link.sendStolen(WireItem::ready());
    eq.run();
    EXPECT_TRUE(sink.got.empty());
    EXPECT_EQ(link.itemsDroppedDown(), 3u);
    // A downed link consumes no wire time.
    EXPECT_EQ(link.bytesSent(), 0u);
    EXPECT_EQ(link.busyUntil(), 0);

    link.setLinkUp(true);
    link.send(WireItem::command(1, 0, 0));
    eq.run();
    EXPECT_EQ(sink.got.size(), 1u);
}

TEST(FiberLink, UtilizationAccounting)
{
    sim::EventQueue eq;
    Sink sink;
    FiberLink link(eq, "f");
    link.connectTo(sink);
    auto p = makePayload(std::vector<std::uint8_t>(125));
    link.send(WireItem::dataChunk(p, 0, 125)); // 10 us of wire time
    eq.run();
    EXPECT_EQ(link.busyTicks(), 10000);
}
