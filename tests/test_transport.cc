/**
 * @file
 * Transport-layer tests: header wire format, the datagram /
 * byte-stream / request-response protocols end-to-end over the
 * simulated Nectar-net, loss and corruption recovery, flow control,
 * and mailbox backpressure.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "nectarine/system.hh"
#include "sim/coro.hh"
#include "transport/header.hh"

using namespace nectar;
using namespace nectar::transport;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using sim::ticks::ms;
using sim::ticks::us;

namespace {

std::vector<std::uint8_t>
iotaBytes(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), std::uint8_t(0));
    return v;
}

} // namespace

// ----- Header wire format ---------------------------------------------

TEST(TransportHeader, RoundTrip)
{
    Header h;
    h.protocol = Proto::stream;
    h.flags = flags::lastFragment;
    h.srcCab = 3;
    h.dstCab = 9;
    h.srcMailbox = 11;
    h.dstMailbox = 22;
    h.seq = 0xDEADBEEF;
    h.ack = 0x12345678;
    h.window = 8;
    h.msgId = 77;
    h.fragIndex = 2;
    h.fragCount = 5;

    auto payload = iotaBytes(100);
    auto bytes = encodePacket(h, payload);
    EXPECT_EQ(bytes.size(), Header::wireSize + 100);

    std::vector<std::uint8_t> out;
    auto got = decodePacket(bytes, out);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->protocol, Proto::stream);
    EXPECT_EQ(got->flags, flags::lastFragment);
    EXPECT_EQ(got->srcCab, 3);
    EXPECT_EQ(got->dstCab, 9);
    EXPECT_EQ(got->srcMailbox, 11);
    EXPECT_EQ(got->dstMailbox, 22);
    EXPECT_EQ(got->seq, 0xDEADBEEFu);
    EXPECT_EQ(got->ack, 0x12345678u);
    EXPECT_EQ(got->window, 8);
    EXPECT_EQ(got->msgId, 77u);
    EXPECT_EQ(got->fragIndex, 2);
    EXPECT_EQ(got->fragCount, 5);
    EXPECT_EQ(got->length, 100);
    EXPECT_EQ(out, payload);
}

TEST(TransportHeader, ChecksumDetectsCorruption)
{
    Header h;
    h.protocol = Proto::datagram;
    auto bytes = encodePacket(h, iotaBytes(64));
    bytes[Header::wireSize + 10] ^= 0x01;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(decodePacket(bytes, out).has_value());
}

TEST(TransportHeader, HeaderCorruptionDetected)
{
    Header h;
    h.protocol = Proto::stream;
    h.seq = 42;
    auto bytes = encodePacket(h, std::vector<std::uint8_t>{});
    bytes[10] ^= 0x80; // flip a bit in seq
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(decodePacket(bytes, out).has_value());
}

TEST(TransportHeader, TruncatedPacketRejected)
{
    Header h;
    auto bytes = encodePacket(h, iotaBytes(10));
    bytes.resize(bytes.size() - 3);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(decodePacket(bytes, out).has_value());
    std::vector<std::uint8_t> tiny{1, 2, 3};
    EXPECT_FALSE(decodePacket(tiny, out).has_value());
}

// ----- End-to-end fixture ----------------------------------------------

class TransportTest : public ::testing::Test
{
  protected:
    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;

    Transport &tp(std::size_t i) { return *sys->site(i).transport; }
    cabos::Kernel &kern(std::size_t i) { return *sys->site(i).kernel; }

    /** Inject faults on every fiber link in the system. */
    void
    injectFaults(const phys::FaultModel &model, std::uint64_t seed = 1)
    {
        std::uint64_t s = seed;
        for (auto &link : sys->topo().wiring().allLinks())
            link->setFaults(model, s++);
    }
};

// ----- Datagram protocol -------------------------------------------------

TEST_F(TransportTest, DatagramDelivery)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 64 * 1024, 10);
    bool sent = false;
    auto data = iotaBytes(100);
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &sent) -> Task<void> {
        sent = co_await tp.sendDatagram(2, 10, std::move(data));
    }(tp(0), data, sent));
    eq.run();
    EXPECT_TRUE(sent);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
}

TEST_F(TransportTest, DatagramFragmentationAndReassembly)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 64 * 1024, 10);
    auto data = iotaBytes(5000); // ~6 fragments at MTU 896
    bool sent = false;
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &sent) -> Task<void> {
        sent = co_await tp.sendDatagram(2, 10, std::move(data));
    }(tp(0), data, sent));
    eq.run();
    EXPECT_TRUE(sent);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
    EXPECT_GT(tp(0).stats().packetsSent.value(), 4u);
}

TEST_F(TransportTest, DatagramToUnknownMailboxDropped)
{
    sys = NectarSystem::singleHub(eq, 2);
    bool sent = false;
    sim::spawn([](Transport &tp, bool &sent) -> Task<void> {
        std::vector<std::uint8_t> msg(3, 7);
        sent = co_await tp.sendDatagram(2, 99, std::move(msg));
    }(tp(0), sent));
    eq.run();
    EXPECT_TRUE(sent); // transmitted...
    EXPECT_EQ(tp(1).stats().datagramsDropped.value(), 1u); // ...not delivered
}

TEST_F(TransportTest, DatagramLostFragmentLosesMessage)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 1 << 20, 10);
    phys::FaultModel faults;
    faults.dropData = 0.15;
    injectFaults(faults, 42);

    int sent_count = 0;
    sim::spawn([](Transport &tp, int &sent_count) -> Task<void> {
        for (int i = 0; i < 20; ++i) {
            co_await tp.sendDatagram(
                2, 10, std::vector<std::uint8_t>(3000, std::uint8_t(i)));
            ++sent_count;
        }
    }(tp(0), sent_count));
    eq.run();
    EXPECT_EQ(sent_count, 20);
    // Some messages must have been lost, and none delivered partially.
    EXPECT_LT(mb.count(), 20u);
    while (auto m = mb.tryGet())
        EXPECT_EQ(m->size(), 3000u);
}

// ----- Byte-stream protocol ------------------------------------------------

TEST_F(TransportTest, ReliableDeliverySmall)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 64 * 1024, 20);
    bool ok = false;
    auto data = iotaBytes(200);
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(2, 20, std::move(data));
    }(tp(0), data, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
}

TEST_F(TransportTest, ReliableLargeMessageWindowed)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 1 << 20, 20);
    auto data = iotaBytes(50 * 1024); // ~57 fragments, window 8
    bool ok = false;
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(2, 20, std::move(data));
    }(tp(0), data, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
    EXPECT_EQ(tp(0).stats().sendFailures.value(), 0u);
}

TEST_F(TransportTest, ReliableRecoversFromPacketLoss)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 1 << 20, 20);
    phys::FaultModel faults;
    faults.dropData = 0.10;
    injectFaults(faults, 7);

    auto data = iotaBytes(20 * 1024);
    bool ok = false;
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(2, 20, std::move(data));
    }(tp(0), data, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
    EXPECT_GT(tp(0).stats().retransmissions.value(), 0u);
}

TEST_F(TransportTest, ReliableRecoversFromCorruption)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 1 << 20, 20);
    phys::FaultModel faults;
    faults.corruptData = 0.10;
    injectFaults(faults, 13);

    auto data = iotaBytes(20 * 1024);
    bool ok = false;
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(2, 20, std::move(data));
    }(tp(0), data, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
    // Corruption was detected either by the phys flag or checksum.
    EXPECT_GT(tp(1).stats().checksumDrops.value() +
                  tp(1).stats().duplicates.value(),
              0u);
}

TEST_F(TransportTest, ReliableAcrossMesh)
{
    sys = NectarSystem::mesh2D(eq, 2, 2, 1);
    auto &mb = kern(3).createMailbox("in", 1 << 20, 20);
    auto data = iotaBytes(10 * 1024);
    bool ok = false;
    sim::spawn([](Transport &tp, std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        ok = co_await tp.sendReliable(4, 20, std::move(data));
    }(tp(0), data, ok));
    eq.run();
    EXPECT_TRUE(ok);
    ASSERT_EQ(mb.count(), 1u);
    EXPECT_EQ(mb.tryGet()->bytes(), data);
}

TEST_F(TransportTest, ReliableInterleavedMessagesInOrder)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 1 << 20, 20);
    int done = 0;
    sim::spawn([](Transport &tp, int &done) -> Task<void> {
        for (int i = 0; i < 8; ++i) {
            bool ok = co_await tp.sendReliable(
                2, 20, std::vector<std::uint8_t>(2000, std::uint8_t(i)));
            if (ok)
                ++done;
        }
    }(tp(0), done));
    eq.run();
    EXPECT_EQ(done, 8);
    ASSERT_EQ(mb.count(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(mb.tryGet()->view()[0], std::uint8_t(i));
}

TEST_F(TransportTest, ReliableBackpressureOnFullMailbox)
{
    sys = NectarSystem::singleHub(eq, 2);
    // Mailbox holds only one 500-byte message at a time.
    auto &mb = kern(1).createMailbox("in", 600, 20);
    int delivered = 0;

    // A slow consumer drains one message per 5 ms.
    kern(1).spawnThread("consumer",
                        [](cabos::Kernel &k, cabos::Mailbox &mb,
                           int &delivered) -> Task<void> {
        for (int i = 0; i < 3; ++i) {
            co_await mb.get();
            ++delivered;
            co_await k.sleepFor(5 * ms);
        }
    }(kern(1), mb, delivered));

    int sent = 0;
    sim::spawn([](Transport &tp, int &sent) -> Task<void> {
        for (int i = 0; i < 3; ++i) {
            if (co_await tp.sendReliable(
                    2, 20, std::vector<std::uint8_t>(500,
                                                     std::uint8_t(i))))
                ++sent;
        }
    }(tp(0), sent));

    eq.run();
    EXPECT_EQ(sent, 3);
    EXPECT_EQ(delivered, 3);
    // The stalls show the flow control engaged rather than dropping.
    EXPECT_GT(tp(1).stats().deliveryStalls.value(), 0u);
}

TEST_F(TransportTest, ReliableFailsWhenReceiverUnreachable)
{
    nectarine::SiteConfig cfg;
    cfg.transport.retransmitTimeout = 200 * us;
    cfg.transport.maxRetransmits = 3;
    cfg.datalink.maxAttempts = 1;
    cfg.datalink.replyTimeout = 100 * us;
    sys = NectarSystem::singleHub(eq, 2, cfg);
    kern(1).createMailbox("in", 1 << 20, 20);
    // Sever the receiver: drop every data item on every link.
    phys::FaultModel faults;
    faults.dropData = 1.0;
    injectFaults(faults);

    bool ok = true;
    sim::spawn([](Transport &tp, bool &ok) -> Task<void> {
        std::vector<std::uint8_t> msg(3, 7);
        ok = co_await tp.sendReliable(2, 20, std::move(msg));
    }(tp(0), ok));
    eq.run();
    EXPECT_FALSE(ok);
    EXPECT_GE(tp(0).stats().sendFailures.value(), 1u);
}

// ----- Request-response protocol -------------------------------------------

namespace {

/** Spawn an echo server thread on @p site: replies with req + 1. */
void
startEchoServer(cabos::Kernel &kernel, Transport &tp,
                cabos::MailboxId service, int count)
{
    auto &mb = kernel.createMailbox("service", 64 * 1024, service);
    kernel.spawnThread("server",
                       [](cabos::Mailbox &mb, Transport &tp,
                          int count) -> Task<void> {
        for (int i = 0; i < count; ++i) {
            cabos::Message m = co_await mb.get();
            std::vector<std::uint8_t> reply = m.bytes();
            for (auto &b : reply)
                b += 1;
            tp.respond(m.tag, std::move(reply));
        }
    }(mb, tp, count));
}

} // namespace

TEST_F(TransportTest, RequestResponseRoundTrip)
{
    sys = NectarSystem::singleHub(eq, 2);
    startEchoServer(kern(1), tp(1), 30, 1);

    std::optional<std::vector<std::uint8_t>> resp;
    sim::spawn([](Transport &tp,
                  std::optional<std::vector<std::uint8_t>> &resp)
                   -> Task<void> {
        std::vector<std::uint8_t> req{10, 20, 30};
        resp = co_await tp.request(2, 30, std::move(req));
    }(tp(0), resp));
    eq.run();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(*resp, (std::vector<std::uint8_t>{11, 21, 31}));
    EXPECT_EQ(tp(1).stats().responsesServed.value(), 1u);
}

TEST_F(TransportTest, ConcurrentRequestsMatchedById)
{
    sys = NectarSystem::singleHub(eq, 2);
    startEchoServer(kern(1), tp(1), 64, 10);

    std::vector<int> results(10, -1);
    auto client = [](Transport &tp, int i,
                     std::vector<int> &results) -> Task<void> {
        std::vector<std::uint8_t> req(1, std::uint8_t(i));
        auto r = co_await tp.request(2, 64, std::move(req));
        if (r && r->size() == 1)
            results[i] = (*r)[0];
    };
    for (int i = 0; i < 10; ++i)
        sim::spawn(client(tp(0), i, results));
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(results[i], i + 1);
}

TEST_F(TransportTest, RequestRetriesOnLoss)
{
    nectarine::SiteConfig cfg;
    cfg.transport.requestTimeout = 500 * us;
    cfg.transport.maxRequestAttempts = 8;
    sys = NectarSystem::singleHub(eq, 2, cfg);
    startEchoServer(kern(1), tp(1), 30, 5);
    phys::FaultModel faults;
    faults.dropData = 0.25;
    injectFaults(faults, 99);

    int got = 0;
    sim::spawn([](Transport &tp, int &got) -> Task<void> {
        for (int i = 0; i < 5; ++i) {
            std::vector<std::uint8_t> req(1, std::uint8_t(i));
            auto r = co_await tp.request(2, 30, std::move(req));
            if (r)
                ++got;
        }
    }(tp(0), got));
    eq.run();
    EXPECT_EQ(got, 5);
    EXPECT_GT(tp(0).stats().requestRetries.value() +
                  tp(1).stats().cachedResponseHits.value(),
              0u);
}

TEST_F(TransportTest, RequestFailsWithoutServer)
{
    nectarine::SiteConfig cfg;
    cfg.transport.requestTimeout = 200 * us;
    cfg.transport.maxRequestAttempts = 2;
    sys = NectarSystem::singleHub(eq, 2, cfg);

    std::optional<std::vector<std::uint8_t>> resp;
    bool finished = false;
    sim::spawn([](Transport &tp,
                  std::optional<std::vector<std::uint8_t>> &resp,
                  bool &finished) -> Task<void> {
        std::vector<std::uint8_t> req(1, 1);
        resp = co_await tp.request(2, 77, std::move(req));
        finished = true;
    }(tp(0), resp, finished));
    eq.run();
    EXPECT_TRUE(finished);
    EXPECT_FALSE(resp.has_value());
    EXPECT_EQ(tp(0).stats().requestsFailed.value(), 1u);
}

TEST_F(TransportTest, DuplicateRequestAnsweredFromCache)
{
    nectarine::SiteConfig cfg;
    cfg.transport.requestTimeout = 300 * us;
    sys = NectarSystem::singleHub(eq, 2, cfg);
    startEchoServer(kern(1), tp(1), 30, 1);
    // Drop most replies so the client retries after the server
    // already executed: the cache must answer.
    phys::FaultModel faults;
    faults.dropData = 0.5;
    injectFaults(faults, 5);

    std::optional<std::vector<std::uint8_t>> resp;
    sim::spawn([](Transport &tp,
                  std::optional<std::vector<std::uint8_t>> &resp)
                   -> Task<void> {
        std::vector<std::uint8_t> req(1, 42);
        resp = co_await tp.request(2, 30, std::move(req));
    }(tp(0), resp));
    eq.run();
    if (resp.has_value()) {
        EXPECT_EQ((*resp)[0], 43);
        // The server thread ran exactly once even if the request
        // arrived multiple times.
        EXPECT_EQ(tp(1).stats().responsesServed.value(), 1u);
    }
}

// ----- Latency goal (Section 2.3) -------------------------------------------

TEST_F(TransportTest, CabToCabLatencyUnderThirtyMicroseconds)
{
    // "the latency for a message sent between processes on two CABs
    // should be under 30 microseconds" (excluding fiber transmission
    // delays, which are 0 here).
    sys = NectarSystem::singleHub(eq, 2);
    auto &mb = kern(1).createMailbox("in", 4096, 20);

    Tick received = -1;
    kern(1).spawnThread("rx",
                        [](cabos::Kernel &k, cabos::Mailbox &mb,
                           Tick &received) -> Task<void> {
        co_await mb.get();
        received = k.now();
    }(kern(1), mb, received));

    Tick sent_at = 1 * ms; // let the system settle
    sim::spawn([](sim::EventQueue &eq, Transport &tp,
                  Tick when) -> Task<void> {
        co_await sim::Delay{eq, when};
        co_await tp.sendDatagram(2, 20, std::vector<std::uint8_t>(64));
    }(eq, tp(0), sent_at));
    eq.run();

    ASSERT_GT(received, 0);
    Tick latency = received - sent_at;
    EXPECT_LT(latency, 30 * us);
}
