/**
 * @file
 * The partition map over the real tree: the machine-readable
 * artifact the parallel core will consume.
 *
 * Three properties are load-bearing and tested here rather than in
 * the lint corpus: the whole-tree access graph is clean (no
 * unannotated D6/D7/D8 anywhere under src/), the fabric16 partition
 * map has zero cross-cluster direct-mutation edges (the `ctest -L
 * analysis` gate asserts the same through the CLI), and generating
 * the map twice yields byte-identical JSON — a build artifact that
 * changes without a source change is useless for diffing.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph.hh"
#include "lint.hh"
#include "topo/topofile.hh"

namespace fs = std::filesystem;

namespace {

std::vector<nectar::lint::SourceFile>
readTree()
{
    std::vector<nectar::lint::SourceFile> files;
    for (const auto &e :
         fs::recursive_directory_iterator(NECTAR_SRC_DIR)) {
        if (!e.is_regular_file())
            continue;
        std::string ext = e.path().extension().string();
        if (ext != ".cc" && ext != ".hh")
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        files.push_back({e.path().string(), ss.str()});
    }
    EXPECT_GT(files.size(), 50u);
    return files;
}

nectar::lint::TopoSummary
loadFabric16()
{
    auto d = nectar::topo::loadTopologyFile(
        std::string(NECTAR_FABRIC_DIR) + "/fabric16.topo");
    nectar::lint::TopoSummary s;
    s.name = d.name;
    for (int h = 0; h < d.numHubs(); ++h)
        s.hubs.push_back(d.hubNameAt(h));
    int n = 0;
    for (const auto &c : d.cabs) {
        s.cabs.emplace_back(c.name.empty()
                                ? "cab" + std::to_string(n)
                                : c.name,
                            c.hub);
        ++n;
    }
    for (const auto &t : d.trunks)
        s.trunks.emplace_back(t.a, t.b);
    return s;
}

} // namespace

TEST(PartitionMap, TreeHasNoUnannotatedGraphFindings)
{
    auto g = nectar::lint::analyzeGraph(readTree());
    for (const auto &f : g.findings)
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule
                      << "] " << f.message;
    // The per-file rules (including D7 global state) must be clean
    // too: the partition map is only trustworthy if nothing under
    // src/ escapes the component graph.
    for (const auto &src : readTree())
        for (const auto &f :
             nectar::lint::lintSource(src.path, src.text))
            ADD_FAILURE() << f.file << ":" << f.line << " ["
                          << f.rule << "] " << f.message;
}

TEST(PartitionMap, TreeGraphShapeIsSane)
{
    auto g = nectar::lint::analyzeGraph(readTree());
    // The Component closure covers the core of the simulator.
    for (const char *c : {"Cab", "Kernel", "Datalink", "Transport",
                          "Hub", "IoPort", "FiberLink", "FiberSink"})
        EXPECT_EQ(g.components.count(c), 1u) << c;
    EXPECT_TRUE(g.components.at("FiberSink").interface);
    EXPECT_EQ(g.components.at("Hub").role, "hub");
    EXPECT_EQ(g.components.at("FiberLink").role, "wire");
    EXPECT_EQ(g.components.at("Transport").role, "site");

    // Every edge is classified, and every wire-crossing mutation is
    // mediated: the property the parallel core banks on.
    ASSERT_GT(g.edges.size(), 50u);
    for (const auto &e : g.edges) {
        EXPECT_NE(e.kind, "direct-mutation")
            << e.from << " -> " << e.to << "::" << e.member << " at "
            << e.file << ":" << e.line;
        if (e.mutation && g.components.at(e.to).role == "wire") {
            EXPECT_EQ(e.kind, "mediated")
                << e.from << " -> " << e.to << "::" << e.member;
        }
    }
}

TEST(PartitionMap, Fabric16MapIsByteDeterministic)
{
    nectar::lint::GraphOptions opts;
    auto topo = loadFabric16();
    auto j1 = nectar::lint::graphJson(
        nectar::lint::analyzeGraph(readTree(), opts), opts, &topo);
    auto j2 = nectar::lint::graphJson(
        nectar::lint::analyzeGraph(readTree(), opts), opts, &topo);
    EXPECT_EQ(j1, j2);
}

TEST(PartitionMap, Fabric16ClustersAndGate)
{
    auto topo = loadFabric16();
    ASSERT_EQ(topo.hubs.size(), 16u);
    ASSERT_EQ(topo.cabs.size(), 208u);
    ASSERT_EQ(topo.trunks.size(), 24u);

    nectar::lint::GraphOptions opts;
    auto json = nectar::lint::graphJson(
        nectar::lint::analyzeGraph(readTree(), opts), opts, &topo);
    // 16 clusters of 13 CABs each, and the gate list is empty.
    EXPECT_NE(json.find("\"name\": \"fabric16\""), std::string::npos);
    std::size_t clusters = 0;
    for (std::size_t p = json.find("{\"id\": ");
         p != std::string::npos; p = json.find("{\"id\": ", p + 1))
        ++clusters;
    EXPECT_EQ(clusters, 16u);
    EXPECT_NE(json.find("\"crossClusterDirectEdges\": []"),
              std::string::npos)
        << "cross-cluster direct-mutation edges present";
}
