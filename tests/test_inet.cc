/**
 * @file
 * Internet-protocols-over-Nectar tests (the Section 6.2.2 follow-on
 * experiment): IPv4 encapsulation and TCP — handshake, data transfer,
 * windowing, retransmission under loss, teardown.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "inet/ip.hh"
#include "inet/tcp.hh"
#include "nectarine/system.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using namespace nectar::inet;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using sim::ticks::ms;

namespace {

std::vector<std::uint8_t>
iotaBytes(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), std::uint8_t(0));
    return v;
}

} // namespace

// ----- IPv4 codec -----------------------------------------------------

TEST(Ipv4, HeaderRoundTrip)
{
    Ipv4Header h;
    h.protocol = proto::tcp;
    h.src = ipOfCab(1);
    h.dst = ipOfCab(2);
    h.id = 77;
    auto bytes = encodeIp(h, iotaBytes(40));
    sim::PacketView payload;
    auto got = decodeIp(bytes, payload);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->protocol, proto::tcp);
    EXPECT_EQ(got->src, ipOfCab(1));
    EXPECT_EQ(got->dst, ipOfCab(2));
    EXPECT_EQ(got->id, 77);
    EXPECT_EQ(payload.toVector(), iotaBytes(40));
}

TEST(Ipv4, HeaderChecksumCatchesCorruption)
{
    Ipv4Header h;
    h.src = ipOfCab(1);
    auto bytes = encodeIp(h, sim::PacketView{}).toVector();
    bytes[15] ^= 0x01; // flip a bit in src
    sim::PacketView payload;
    EXPECT_FALSE(decodeIp(bytes, payload).has_value());
}

TEST(Ipv4, AddressMapping)
{
    EXPECT_EQ(ipOfCab(0x0102), 0x0A000102u);
    EXPECT_EQ(cabOfIp(0x0A000102u), 0x0102);
    EXPECT_FALSE(cabOfIp(0xC0A80001u).has_value()); // 192.168.0.1
}

TEST(Tcp, HeaderRoundTrip)
{
    TcpHeader h;
    h.srcPort = 1234;
    h.dstPort = 80;
    h.seq = 0xAABBCCDD;
    h.ack = 0x11223344;
    h.flags = tcpflags::syn | tcpflags::ack;
    h.window = 8192;
    auto bytes = encodeTcp(h, iotaBytes(13));
    sim::PacketView payload;
    auto got = decodeTcp(bytes, payload);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->srcPort, 1234);
    EXPECT_EQ(got->dstPort, 80);
    EXPECT_EQ(got->seq, 0xAABBCCDDu);
    EXPECT_EQ(got->ack, 0x11223344u);
    EXPECT_EQ(got->flags, tcpflags::syn | tcpflags::ack);
    EXPECT_EQ(payload.toVector(), iotaBytes(13));
}

// ----- End-to-end fixture ----------------------------------------------

class InetTest : public ::testing::Test
{
  protected:
    void
    build(int cabs = 2, TcpConfig tcfg = {})
    {
        sys = NectarSystem::singleHub(eq, cabs);
        for (int i = 0; i < cabs; ++i) {
            ips.push_back(std::make_unique<IpLayer>(
                *sys->site(i).kernel, *sys->site(i).datalink,
                sys->directory(), sys->site(i).address));
            tcps.push_back(std::make_unique<Tcp>(*ips[i], tcfg));
        }
    }

    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;
    std::vector<std::unique_ptr<IpLayer>> ips;
    std::vector<std::unique_ptr<Tcp>> tcps;
};

TEST_F(InetTest, IpDatagramDelivery)
{
    build();
    std::vector<std::uint8_t> got;
    ips[1]->registerProtocol(99, [&](const Ipv4Header &,
                                     sim::PacketView &&pl) {
        got = pl.toVector();
    });
    sim::spawn([](IpLayer &ip, IpAddress dst) -> Task<void> {
        co_await ip.send(dst, 99, iotaBytes(100));
    }(*ips[0], ipOfCab(2)));
    eq.run();
    EXPECT_EQ(got, iotaBytes(100));
    EXPECT_EQ(ips[1]->stats().received.value(), 1u);
}

TEST_F(InetTest, IpUnknownProtocolCounted)
{
    build();
    sim::spawn([](IpLayer &ip, IpAddress dst) -> Task<void> {
        std::vector<std::uint8_t> pl(8, 1);
        co_await ip.send(dst, 50, std::move(pl));
    }(*ips[0], ipOfCab(2)));
    eq.run();
    EXPECT_EQ(ips[1]->stats().unknownProto.value(), 1u);
}

TEST_F(InetTest, TcpHandshakeEstablishes)
{
    build();
    TcpSocket *server = nullptr, *client = nullptr;
    sim::spawn([](Tcp &tcp, TcpSocket *&out) -> Task<void> {
        out = co_await tcp.accept(80);
    }(*tcps[1], server));
    sim::spawn([](Tcp &tcp, IpAddress dst,
                  TcpSocket *&out) -> Task<void> {
        out = co_await tcp.connect(dst, 80);
    }(*tcps[0], ipOfCab(2), client));
    eq.run();
    ASSERT_NE(client, nullptr);
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(client->state(), TcpState::established);
    EXPECT_EQ(server->state(), TcpState::established);
}

TEST_F(InetTest, TcpConnectTimesOutWithoutListener)
{
    build();
    TcpSocket *client = reinterpret_cast<TcpSocket *>(1);
    sim::spawn([](Tcp &tcp, IpAddress dst,
                  TcpSocket *&out) -> Task<void> {
        out = co_await tcp.connect(dst, 81); // nobody listening
    }(*tcps[0], ipOfCab(2), client));
    eq.run();
    EXPECT_EQ(client, nullptr);
    // The peer answered the stray SYN with a reset.
    EXPECT_GE(tcps[1]->stats().resetsSent.value(), 1u);
}

TEST_F(InetTest, TcpStreamTransfer)
{
    build();
    auto data = iotaBytes(20000); // ~40 segments at MSS 512
    std::vector<std::uint8_t> got;
    bool sent_ok = false;

    sim::spawn([](Tcp &tcp, std::vector<std::uint8_t> &got,
                  std::size_t want) -> Task<void> {
        TcpSocket *s = co_await tcp.accept(80);
        while (got.size() < want) {
            auto chunk = co_await s->receive(4096);
            if (chunk.empty())
                break;
            got.insert(got.end(), chunk.begin(), chunk.end());
        }
    }(*tcps[1], got, data.size()));

    sim::spawn([](Tcp &tcp, IpAddress dst,
                  std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        TcpSocket *s = co_await tcp.connect(dst, 80);
        if (!s)
            co_return;
        ok = co_await s->send(std::move(data));
    }(*tcps[0], ipOfCab(2), data, sent_ok));

    eq.run();
    EXPECT_TRUE(sent_ok);
    EXPECT_EQ(got, data);
}

TEST_F(InetTest, TcpBidirectionalEcho)
{
    build();
    std::vector<std::uint8_t> reply;
    sim::spawn([](Tcp &tcp) -> Task<void> {
        TcpSocket *s = co_await tcp.accept(7);
        auto req = co_await s->receive(4096);
        for (auto &b : req)
            b += 1;
        co_await s->send(std::move(req));
    }(*tcps[1]));
    sim::spawn([](Tcp &tcp, IpAddress dst,
                  std::vector<std::uint8_t> &reply) -> Task<void> {
        TcpSocket *s = co_await tcp.connect(dst, 7);
        if (!s)
            co_return;
        std::vector<std::uint8_t> req{10, 20, 30};
        co_await s->send(std::move(req));
        reply = co_await s->receive(100);
    }(*tcps[0], ipOfCab(2), reply));
    eq.run();
    EXPECT_EQ(reply, (std::vector<std::uint8_t>{11, 21, 31}));
}

TEST_F(InetTest, TcpRecoversFromSegmentLoss)
{
    TcpConfig tcfg;
    tcfg.rto = 1 * ms;
    build(2, tcfg);
    std::uint64_t seed = 41;
    for (auto &link : sys->topo().wiring().allLinks()) {
        phys::FaultModel f;
        f.dropData = 0.08;
        link->setFaults(f, seed++);
    }

    auto data = iotaBytes(8000);
    std::vector<std::uint8_t> got;
    bool sent_ok = false;
    sim::spawn([](Tcp &tcp, std::vector<std::uint8_t> &got,
                  std::size_t want) -> Task<void> {
        TcpSocket *s = co_await tcp.accept(80);
        while (got.size() < want) {
            auto chunk = co_await s->receive(4096);
            if (chunk.empty())
                break;
            got.insert(got.end(), chunk.begin(), chunk.end());
        }
    }(*tcps[1], got, data.size()));
    sim::spawn([](Tcp &tcp, IpAddress dst,
                  std::vector<std::uint8_t> data,
                  bool &ok) -> Task<void> {
        TcpSocket *s = co_await tcp.connect(dst, 80);
        if (!s)
            co_return;
        ok = co_await s->send(std::move(data));
    }(*tcps[0], ipOfCab(2), data, sent_ok));
    eq.run();
    EXPECT_TRUE(sent_ok);
    EXPECT_EQ(got, data);
    EXPECT_GT(tcps[0]->stats().retransmissions.value() +
                  tcps[1]->stats().retransmissions.value(),
              0u);
}

TEST_F(InetTest, TcpGracefulClose)
{
    build();
    bool server_saw_eof = false;
    TcpState client_final = TcpState::established;
    sim::spawn([](Tcp &tcp, bool &eof) -> Task<void> {
        TcpSocket *s = co_await tcp.accept(80);
        auto chunk = co_await s->receive(100);
        EXPECT_FALSE(chunk.empty());
        chunk = co_await s->receive(100);
        eof = chunk.empty();
        co_await s->close();
    }(*tcps[1], server_saw_eof));
    sim::spawn([](Tcp &tcp, IpAddress dst,
                  TcpState &final_state) -> Task<void> {
        TcpSocket *s = co_await tcp.connect(dst, 80);
        if (!s)
            co_return;
        std::vector<std::uint8_t> msg(10, 1);
        co_await s->send(std::move(msg));
        co_await s->close();
        final_state = s->state();
    }(*tcps[0], ipOfCab(2), client_final));
    eq.run();
    EXPECT_TRUE(server_saw_eof);
    EXPECT_TRUE(client_final == TcpState::finWait2 ||
                client_final == TcpState::closed);
}

TEST_F(InetTest, TcpMultipleConnectionsDemuxed)
{
    build(3);
    std::vector<int> served;
    // Site 2 serves two sequential connections on port 80.
    sim::spawn([](Tcp &tcp, std::vector<int> &served) -> Task<void> {
        for (int i = 0; i < 2; ++i) {
            TcpSocket *s = co_await tcp.accept(80);
            auto req = co_await s->receive(100);
            served.push_back(req[0]);
        }
    }(*tcps[2], served));
    auto client = [](Tcp &tcp, IpAddress dst, int id) -> Task<void> {
        TcpSocket *s = co_await tcp.connect(dst, 80);
        if (!s)
            co_return;
        std::vector<std::uint8_t> msg(1, std::uint8_t(id));
        co_await s->send(std::move(msg));
    };
    sim::spawn(client(*tcps[0], ipOfCab(3), 1));
    eq.schedule(5 * ms, [&] {
        sim::spawn(client(*tcps[1], ipOfCab(3), 2));
    });
    eq.run();
    ASSERT_EQ(served.size(), 2u);
    EXPECT_EQ(served[0] + served[1], 3);
}
