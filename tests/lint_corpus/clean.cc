// Clean corpus: the accepted form of every rule; must lint clean.
// Not compiled; linted by test_nectar_lint only.
#include <cstdint>
#include <map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace ns = nectar::sim;

// Not on the packet path: an owning byte vector is fine here (D3
// only applies under phys/hub/datalink/transport/cab directories).
std::vector<std::uint8_t> scratch(16, 0);

int
total(const std::map<int, int> &m)
{
    int sum = 0;
    // An ordered map iterates in key order: deterministic, no D2.
    for (const auto &kv : m)
        sum += kv.second;
    return sum;
}

void
arm(ns::EventQueue &eq, ns::Random &rng, ns::Tick delay)
{
    int hits = static_cast<int>(rng.uniform(0, 9));
    // Unit expressions, named constants and variables satisfy D5;
    // by-value captures satisfy D4.
    eq.scheduleIn(10 * ns::ticks::us, [hits] { (void)hits; });
    eq.schedule(ns::ticks::immediate, [] {});
    eq.scheduleIn(delay, [] {});
    int row[4] = {0, 1, 2, 3};
    eq.scheduleIn(2 * ns::ticks::ns, [v = row[1]] { (void)v; });
}
