// D2 corpus: iterating an unordered container diverges across runs.
// Not compiled; linted by test_nectar_lint only.
#include <string>
#include <unordered_map>

int
sumAll()
{
    std::unordered_map<std::string, int> weights;
    int total = 0;
    for (const auto &kv : weights)
        total += kv.second;
    auto first = weights.begin();
    (void)first;
    return total;
}
