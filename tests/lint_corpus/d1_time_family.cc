// D1 corpus: the time()/localtime() family and kernel entropy
// sources fire like the chrono clocks do.  Not compiled; linted by
// test_nectar_lint only.
#include <cstdlib>
#include <ctime>

long
moreEntropy()
{
    std::time_t t = std::time(nullptr);
    std::tm *lt = std::localtime(&t);
    std::clock_t c = std::clock();
    long m = std::mktime(lt);
    char buf[64];
    (void)arc4random_buf(buf, sizeof buf);
    srandom(7);
    long r = random();
    return static_cast<long>(t) + static_cast<long>(c) + m + r;
}
