// Annotated corpus: properly waived violations must be silent.
// Not compiled; linted by test_nectar_lint only.
#include <chrono>

#include "sim/event_queue.hh"

// nectar-lint-file: raw-ticks-ok abstract demo ticks in this file

// nectar-lint: wallclock-ok logging timestamp only, never feeds
// the simulation clock
static auto bootWall = std::chrono::system_clock::now();

void
arm(nectar::sim::EventQueue &eq)
{
    eq.schedule(5, [] {});
    int hits = 0;
    // nectar-lint: capture-ok hits outlives the queue in this demo
    eq.scheduleIn(7, [&hits] { ++hits; });
}
