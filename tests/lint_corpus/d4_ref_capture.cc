// D4 corpus: by-reference capture handed to schedule().
// Not compiled; linted by test_nectar_lint only.
#include "sim/event_queue.hh"

void
arm(nectar::sim::EventQueue &eq)
{
    int hits = 0;
    eq.scheduleIn(10 * nectar::sim::ticks::ns,
                  [&hits] { ++hits; });
    eq.schedule(20 * nectar::sim::ticks::ns, [&] { ++hits; });
}
