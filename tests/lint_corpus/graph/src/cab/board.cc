// Graph corpus: a site-role component committing every cross-role
// sin (D6 direct mutation, D8 retained foreign internals) alongside
// the sanctioned forms (read, mediated, co-located, annotated).
// Not compiled; analyzed by test_nectar_lint.
#include "datalink/pump.hh"
#include "hub/widget.hh"
#include "phys/wire.hh"

namespace fake::cab {

class Board : public fake::sim::Component
{
  public:
    Board(fake::hub::Widget &w, fake::phys::FiberLink &l,
          fake::datalink::Pump &p)
        : _w(w), _link(l), _pump(p)
    {}

    void step();
    void sample();

  private:
    fake::hub::Widget &_w;
    fake::phys::FiberLink &_link;
    fake::datalink::Pump &_pump;
    int *hot = nullptr;
    int *cold = nullptr;
    int _ticks = 0;
};

void
Board::step()
{
    _w.poke();                 // D6: site -> hub direct mutation
    int x = _w.level();        // read: const access, no finding
    _link.send(x);             // mediated: allowlisted chokepoint
    _w.gauge().bump();         // D6: mutation through the accessor
    _link.jiggle();            // D6: wire call off the allowlist
    _pump.run();               // co-located: same site role
    ++_ticks;                  // self state: not an edge
}

void
Board::sample()
{
    // nectar-lint: mediated-ok corpus fixture sanctioned path
    _w.poke();
    hot = &_w.gauge().v;       // D8: foreign internals kept in a field
    // nectar-lint: foreign-ref-ok corpus fixture retained gauge
    cold = &_w.gauge().v;
    int *tmp = &_w.gauge().v;  // transient local: not retained
    (void)tmp;
}

} // namespace fake::cab
