// Graph corpus: a second site-role component for the co-located
// classification.  Not compiled; analyzed by test_nectar_lint.
#pragma once

#include "sim/component.hh"

namespace fake::datalink {

class Pump : public fake::sim::Component
{
  public:
    void run() { ++_cycles; }
    int cycles() const { return _cycles; }

  private:
    int _cycles = 0;
};

} // namespace fake::datalink
