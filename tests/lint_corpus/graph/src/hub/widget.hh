// Graph corpus: a hub-role component with mutable internals behind
// an accessor.  Not compiled; analyzed by test_nectar_lint.
#pragma once

#include "sim/component.hh"

namespace fake::hub {

struct Gauge
{
    int v = 0;
    void bump() { ++v; }
    int peek() const { return v; }
};

class Widget : public fake::sim::Component
{
  public:
    void poke() { ++_lvl; }
    int level() const { return _lvl; }
    Gauge &gauge() { return _g; }

  private:
    Gauge _g;
    int _lvl = 0;
};

} // namespace fake::hub
