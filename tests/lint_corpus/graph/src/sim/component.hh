// Graph corpus: a miniature component tree exercising the access
// graph pass (D6/D8).  Not compiled; analyzed by test_nectar_lint.
#pragma once

namespace fake::sim {

class Component
{
  public:
    Component() = default;
    const char *name() const { return _name; }

  private:
    const char *_name = "";
};

} // namespace fake::sim
