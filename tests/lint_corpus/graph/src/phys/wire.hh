// Graph corpus: the wire chokepoint.  FiberLink::send is on the
// default mediated allowlist; jiggle() is not.  Not compiled;
// analyzed by test_nectar_lint.
#pragma once

#include "sim/component.hh"

namespace fake::phys {

class FiberLink : public fake::sim::Component
{
  public:
    void send(int word) { _last = word; }
    void jiggle() { ++_last; }
    int last() const { return _last; }

  private:
    int _last = 0;
};

} // namespace fake::phys
