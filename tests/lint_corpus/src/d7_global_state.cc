// D7 corpus: mutable global / static state in simulation code (the
// src/ path segment puts this file inside the simulation filter).
// Not compiled; linted by test_nectar_lint only.
#include <cstdint>

namespace fake {

inline int packetsInFlight = 0;
static std::uint64_t totalBytes = 0;
extern int sharedConfig;
inline void (*hookFn)(int) = nullptr;

inline constexpr int maxRetries = 5;      // constexpr: immutable
static const char *const tag = "v1";      // const: immutable
static thread_local int scratch = 0;      // per-thread by definition

// nectar-lint: global-ok corpus fixture justifying a waiver
static int sanctioned = 0;

struct Counters
{
    static inline std::uint64_t grand = 0;
    static constexpr int width = 8;       // constexpr member: fine
};

inline int
nextId()
{
    static int id = 0;                    // function-local static
    static const int base = 100;          // const: fine
    return base + id++;
}

int
consume()
{
    if (packetsInFlight > 0) {
        static bool warned = false;       // static in a block scope
        (void)warned;
    }
    return Counters::grand > totalBytes ? 1 : 0;
}

} // namespace fake
