// D4 corpus: by-reference capture handed to sim::spawn().  The
// coroutine frame suspends across ticks exactly like a scheduled
// event, so the same capture rule applies.  A task argument built
// from a bare integer must NOT trip D5: spawn's first argument is a
// Task, not a tick.
// Not compiled; linted by test_nectar_lint only.
#include "sim/task.hh"

void
launch(nectar::sim::EventQueue &eq)
{
    int hits = 0;
    nectar::sim::spawn(wrap([&hits] { ++hits; }));
    nectar::sim::spawn(
        count(7, [&] { ++hits; }));
    nectar::sim::spawn(plainTask(42)); // bare int arg: no D5
}
