// A1 corpus: malformed annotations are themselves findings.
// nectar-lint: no-such-tag this tag does not exist
// nectar-lint: copy-ok
int marker = 0;
