// D3 corpus: raw payload copies inside a packet-path directory
// (the parent directory is named hub/ so the path filter matches).
// Not compiled; linted by test_nectar_lint only.
#include <cstdint>
#include <cstring>
#include <vector>

void
copyBytes(const std::uint8_t *src, std::size_t n)
{
    std::vector<std::uint8_t> owned(n, 0);
    std::memcpy(owned.data(), src, n);
    auto *raw = new std::uint8_t[n];
    delete[] raw;
}
