// D5 corpus: bare integer tick literals at schedule sites.
// Not compiled; linted by test_nectar_lint only.
#include "sim/event_queue.hh"

void
arm(nectar::sim::EventQueue &eq)
{
    eq.schedule(1'000'000, [] {});
    eq.scheduleIn(0x40, [] {});
    eq.scheduleIn(250u, [] {});
}
