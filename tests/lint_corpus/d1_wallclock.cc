// D1 corpus: every wall-clock / unseeded-randomness source fires.
// Not compiled; linted by test_nectar_lint only.
#include <chrono>
#include <cstdlib>
#include <random>

int
entropy()
{
    std::random_device rd;
    std::srand(42);
    int r = std::rand();
    auto wall = std::chrono::system_clock::now();
    (void)wall;
    return static_cast<int>(rd()) + r;
}
