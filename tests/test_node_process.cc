/**
 * @file
 * Node-resident Nectarine tasks: processes on nodes exchanging
 * messages with CAB tasks and with each other through the
 * shared-memory interface ("Tasks are processes on any CAB or node",
 * Section 6.3).  Also covers the trace sink.
 */

#include <gtest/gtest.h>

#include "nectarine/nectarine.hh"
#include "node/node_process.hh"
#include "sim/trace.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using namespace nectar::node;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using nectarine::TaskContext;
using sim::Task;
using sim::ticks::us;

// ----- Trace sink ------------------------------------------------------

TEST(Trace, MemorySinkRecordsAndCounts)
{
    sim::EventQueue eq;
    sim::MemoryTraceSink sink(3);
    sim::Tracer trace(eq, "unit");
    EXPECT_FALSE(trace.enabled());
    trace("ignored"); // unattached: no-op
    trace.attach(sink);
    EXPECT_TRUE(trace.enabled());
    for (int i = 0; i < 5; ++i)
        trace("tick", std::to_string(i));
    EXPECT_EQ(sink.all().size(), 3u); // capacity eviction
    EXPECT_EQ(sink.count("tick"), 3u);
    EXPECT_EQ(sink.all().back().detail, "4");
    EXPECT_EQ(sink.all().back().source, "unit");
    sink.clear();
    EXPECT_TRUE(sink.all().empty());
}

TEST(Trace, StreamSinkFormatsLines)
{
    sim::EventQueue eq;
    std::ostringstream os;
    sim::StreamTraceSink sink(os);
    sim::Tracer trace(eq, "hub0");
    trace.attach(sink);
    eq.schedule(42 * sim::ticks::ns, [&] { trace("open", "p3"); });
    eq.run();
    EXPECT_EQ(os.str(), "[42] hub0 open: p3\n");
}

// ----- Node processes ----------------------------------------------------

class NodeProcessTest : public ::testing::Test
{
  protected:
    void
    build(int cabs)
    {
        sys = NectarSystem::singleHub(eq, cabs);
        api = std::make_unique<Nectarine>(*sys);
        runner = std::make_unique<NodeProcessRunner>(*api);
    }

    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;
    std::unique_ptr<Nectarine> api;
    std::unique_ptr<NodeProcessRunner> runner;
};

TEST_F(NodeProcessTest, RoundTripBetweenNodeAndCabTask)
{
    build(2);
    Node host(eq, "sun1");

    std::vector<std::uint8_t> cab_got, node_got;

    // CAB-side echo task.
    nectarine::TaskId echo = api->createTask(
        1, "echo", [&cab_got](TaskContext &ctx) -> Task<void> {
            auto m = co_await ctx.receive();
            cab_got = m.bytes();
            // First two bytes carry the reply address.
            nectarine::TaskId back{
                static_cast<transport::CabAddress>(
                    (m.view()[0] << 8) | m.view()[1]),
                static_cast<std::uint16_t>((m.view()[2] << 8) |
                                           m.view()[3])};
            std::vector<std::uint8_t> reply(m.bytes().rbegin(),
                                            m.bytes().rend());
            co_await ctx.send(back, std::move(reply));
        });

    // Node-side process.
    runner->spawn(0, host, "nodeproc",
                  [echo, &node_got](NodeProcess &self) -> Task<void> {
        std::vector<std::uint8_t> msg(8, 0);
        msg[0] = static_cast<std::uint8_t>(self.id().cab >> 8);
        msg[1] = static_cast<std::uint8_t>(self.id().cab);
        msg[2] = static_cast<std::uint8_t>(self.id().index >> 8);
        msg[3] = static_cast<std::uint8_t>(self.id().index);
        msg[7] = 0x77;
        co_await self.send(echo, msg);
        auto m = co_await self.receive();
        node_got = m.bytes();
    });

    eq.run();
    ASSERT_EQ(cab_got.size(), 8u);
    EXPECT_EQ(cab_got[7], 0x77);
    ASSERT_EQ(node_got.size(), 8u);
    EXPECT_EQ(node_got[0], 0x77); // reversed echo
    EXPECT_EQ(runner->completed(), 1);
    // The node paid for its I/O: VME transfers happened, and no
    // interrupts (shared-memory interface polls).
    EXPECT_GT(host.vme().bytesTransferred(), 0u);
    EXPECT_EQ(host.interruptsTaken(), 0u);
}

TEST_F(NodeProcessTest, TwoNodeProcessesCommunicate)
{
    build(2);
    Node sun1(eq, "sun1"), sun2(eq, "sun2");

    std::vector<std::uint8_t> got;
    nectarine::TaskId receiver = api->registerExternalTask(1, "rx");
    // Manually run the receiver against its own interface (the
    // runner would do the same).
    auto shm_rx = std::make_unique<SharedMemoryInterface>(
        sun2, sys->site(1));
    sim::spawn([](SharedMemoryInterface &shm, nectarine::TaskId id,
                  std::vector<std::uint8_t> &got) -> Task<void> {
        auto m = co_await shm.receive(
            nectarine::Nectarine::inboxId(id.index));
        got = m.bytes();
    }(*shm_rx, receiver, got));

    runner->spawn(0, sun1, "tx",
                  [receiver](NodeProcess &self) -> Task<void> {
        std::vector<std::uint8_t> msg(64, 0xAB);
        co_await self.send(receiver, std::move(msg));
    });

    eq.run();
    ASSERT_EQ(got.size(), 64u);
    EXPECT_EQ(got[0], 0xAB);
}

TEST_F(NodeProcessTest, ExternalTasksAppearInDirectory)
{
    build(2);
    Node host(eq, "sun1");
    auto id = runner->spawn(0, host, "proc",
                            [](NodeProcess &) -> Task<void> {
                                co_return;
                            });
    EXPECT_EQ(api->lookup("proc"), id);
    eq.run();
    EXPECT_EQ(api->completedTasks(), 1);
}
