/**
 * @file
 * Topology tests: construction rules, route properties (parameterized
 * sweeps over mesh sizes), and multicast tree invariants.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/logging.hh"
#include "topo/topology.hh"

using namespace nectar;
using namespace nectar::topo;

TEST(Topology, HubIdsMatchIndices)
{
    sim::EventQueue eq;
    Topology t(eq);
    EXPECT_EQ(t.addHub(), 0);
    EXPECT_EQ(t.addHub(), 1);
    EXPECT_EQ(t.hubAt(0).hubId(), 0);
    EXPECT_EQ(t.hubAt(1).hubId(), 1);
}

TEST(Topology, PortBookkeeping)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    EXPECT_TRUE(t.portFree(0, 3));
    t.linkHubs(0, 3, 1, 5);
    EXPECT_FALSE(t.portFree(0, 3));
    EXPECT_FALSE(t.portFree(1, 5));
    EXPECT_EQ(t.firstFreePort(0), 0);
    EXPECT_THROW(t.linkHubs(0, 3, 1, 7), sim::FatalError);
    EXPECT_THROW(t.linkHubs(0, 0, 0, 1), sim::FatalError); // self
}

TEST(Topology, SameHubRouteIsSingleHop)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    auto r = t.route({0, 2}, {0, 9});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], (Hop{0, 9, true}));
}

TEST(Topology, DisconnectedHubsHaveEmptyRoute)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    EXPECT_TRUE(t.route({0, 0}, {1, 0}).empty());
    EXPECT_FALSE(t.reachable(0, 1));
}

// ---- Link health -----------------------------------------------------

TEST(LinkHealth, DownLinkForcesReroute)
{
    // Two hubs joined by two parallel links: taking one down must
    // steer the route over the other; taking both down leaves no
    // route; healing restores it.
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    t.linkHubs(0, 10, 1, 10);
    t.linkHubs(0, 11, 1, 11);

    auto r = t.route({0, 0}, {1, 0});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].outPort, 10); // first adjacency wins

    auto v0 = t.linkVersion();
    t.markLinkDown(0, hub::PortId(10));
    EXPECT_GT(t.linkVersion(), v0);
    EXPECT_FALSE(t.linkIsUp(0, 10));

    r = t.route({0, 0}, {1, 0});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].outPort, 11); // rerouted over the survivor

    t.markLinkDown(0, hub::PortId(11));
    EXPECT_TRUE(t.route({0, 0}, {1, 0}).empty());
    EXPECT_FALSE(t.reachable(0, 1));

    t.markLinkUp(0, hub::PortId(10));
    r = t.route({0, 0}, {1, 0});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].outPort, 10);
    EXPECT_TRUE(t.reachable(0, 1));
}

TEST(LinkHealth, MeshRoutesAroundFailure)
{
    // 2x2 mesh: hub0-hub1 down forces 0 -> 2 -> 3 -> 1.
    sim::EventQueue eq;
    auto t = makeMesh2D(eq, 2, 2);
    auto direct = t->route({0, 0}, {1, 0});
    ASSERT_EQ(direct.size(), 2u);

    t->markLinkDownBetween(0, 1); // hub-pair convenience form
    auto around = t->route({0, 0}, {1, 0});
    ASSERT_EQ(around.size(), 4u);
    EXPECT_EQ(around.back().outPort, 0);
    EXPECT_TRUE(around.back().reply);

    t->markLinkUpBetween(0, 1);
    EXPECT_EQ(t->route({0, 0}, {1, 0}).size(), 2u);
}

TEST(LinkHealth, DownLinkFibersStopDelivering)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    int li = t.linkHubs(0, 10, 1, 10);
    const auto &link = t.hubLinks()[li];
    t.markLinkDown(0, hub::PortId(10));
    EXPECT_FALSE(link.ab->linkUp());
    EXPECT_FALSE(link.ba->linkUp());
    t.markLinkUp(0, hub::PortId(10));
    EXPECT_TRUE(link.ab->linkUp());
    EXPECT_TRUE(link.ba->linkUp());
}

TEST(LinkHealth, UnknownLinkIsFatal)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    EXPECT_THROW(t.markLinkDown(0, 3), sim::FatalError);
    EXPECT_THROW(t.markLinkUpBetween(0, 1), sim::FatalError);
}

TEST(Topology, MulticastSingleHubOpensTerminalsWithReply)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    auto r = t.multicastRoute({0, 0}, {{0, 3}, {0, 7}});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_TRUE(r[0].reply);
    EXPECT_TRUE(r[1].reply);
}

TEST(Topology, MulticastToSharedPathSplitsOnce)
{
    // Line: hub0 - hub1 - hub2; destinations on hub1 and hub2 share
    // the hub0->hub1 link, which must be opened exactly once.
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    t.addHub();
    t.linkHubs(0, 10, 1, 11);
    t.linkHubs(1, 12, 2, 13);
    auto r = t.multicastRoute({0, 0}, {{1, 2}, {2, 3}});
    // open hub0->hub1; openRR hub1 terminal; open hub1->hub2;
    // openRR hub2 terminal.
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0], (Hop{0, 10, false}));
    EXPECT_EQ(r[1], (Hop{1, 2, true}));
    EXPECT_EQ(r[2], (Hop{1, 12, false}));
    EXPECT_EQ(r[3], (Hop{2, 3, true}));
}

TEST(Topology, MulticastSingleDestinationMatchesUnicastRoute)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    t.linkHubs(0, 10, 1, 11);
    auto uni = t.route({0, 0}, {1, 3});
    auto mc = t.multicastRoute({0, 0}, {{1, 3}});
    EXPECT_EQ(mc, uni);
}

TEST(Topology, MulticastDuplicateDestinationsDeduped)
{
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    auto r = t.multicastRoute({0, 0}, {{0, 3}, {0, 3}, {0, 7}});
    // Each terminal port opened exactly once: a duplicate open would
    // stall the frame on a reply that never comes back twice.
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], (Hop{0, 3, true}));
    EXPECT_EQ(r[1], (Hop{0, 7, true}));
}

TEST(Topology, MulticastUnreachableMemberYieldsEmptyRoute)
{
    // Line: hub0 - hub1.  Once the link dies, a tree covering a
    // member on hub1 cannot be built: empty route, like route().
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    t.linkHubs(0, 10, 1, 11);
    EXPECT_EQ(t.multicastRoute({0, 0}, {{0, 3}, {1, 2}}).size(), 3u);
    t.markLinkDown(0, 10);
    EXPECT_TRUE(t.multicastRoute({0, 0}, {{0, 3}, {1, 2}}).empty());
    // Members on surviving hubs still form a tree.
    EXPECT_EQ(t.multicastRoute({0, 0}, {{0, 3}, {0, 7}}).size(), 2u);
    t.markLinkUp(0, 10);
    EXPECT_EQ(t.multicastRoute({0, 0}, {{0, 3}, {1, 2}}).size(), 3u);
}

TEST(Topology, MulticastTreeOverlapsExistingCircuitRoute)
{
    // A multicast tree sharing links with a concurrently computed
    // unicast circuit is structurally independent: both traverse the
    // hub0->hub1 link by the same output port, and the tree still
    // covers every member exactly once.
    sim::EventQueue eq;
    Topology t(eq);
    t.addHub();
    t.addHub();
    t.linkHubs(0, 10, 1, 11);
    auto circuit = t.route({0, 0}, {1, 5});
    auto tree = t.multicastRoute({0, 0}, {{1, 2}, {1, 3}});
    ASSERT_EQ(circuit.size(), 2u);
    ASSERT_EQ(tree.size(), 3u);
    // Shared trunk: same hub0 output port toward hub1.
    EXPECT_EQ(tree[0], (Hop{0, 10, false}));
    EXPECT_EQ(circuit[0], (Hop{0, 10, false}));
    // The tree's terminal opens are disjoint from the circuit's.
    EXPECT_EQ(tree[1], (Hop{1, 2, true}));
    EXPECT_EQ(tree[2], (Hop{1, 3, true}));
    EXPECT_EQ(circuit[1], (Hop{1, 5, true}));
}

TEST(Topology, MeshBuilderValidation)
{
    sim::EventQueue eq;
    EXPECT_THROW(makeMesh2D(eq, 0, 3), sim::FatalError);
    hub::HubConfig tiny;
    tiny.numPorts = 4;
    EXPECT_THROW(makeMesh2D(eq, 2, 2, tiny), sim::FatalError);
}

// ---- Property sweep: route invariants on meshes of many sizes ------

class MeshRouting : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(MeshRouting, RoutesAreValidAndShortest)
{
    auto [rows, cols] = GetParam();
    sim::EventQueue eq;
    auto t = makeMesh2D(eq, rows, cols);

    for (int a = 0; a < rows * cols; ++a) {
        for (int b = 0; b < rows * cols; ++b) {
            Endpoint from{a, 0}, to{b, 1};
            auto r = t->route(from, to);

            // Invariant 1: length = Manhattan distance + 1.
            int ra = a / cols, ca = a % cols;
            int rb = b / cols, cb = b % cols;
            int manhattan = std::abs(ra - rb) + std::abs(ca - cb);
            EXPECT_EQ(static_cast<int>(r.size()), manhattan + 1);

            // Invariant 2: the last hop opens the destination port
            // on the destination hub, with a reply.
            EXPECT_EQ(r.back().hubId, t->hubAt(b).hubId());
            EXPECT_EQ(r.back().outPort, to.port);
            EXPECT_TRUE(r.back().reply);

            // Invariant 3: intermediate hops carry no reply and name
            // distinct hubs (no revisits on a shortest path).
            std::set<std::uint8_t> hubs_seen;
            for (std::size_t h = 0; h + 1 < r.size(); ++h) {
                EXPECT_FALSE(r[h].reply);
                EXPECT_TRUE(hubs_seen.insert(r[h].hubId).second);
            }

            // Invariant 4: the first hop is on the source hub.
            EXPECT_EQ(r.front().hubId, t->hubAt(a).hubId());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshRouting,
    ::testing::Values(std::make_pair(1, 2), std::make_pair(2, 2),
                      std::make_pair(2, 3), std::make_pair(3, 3),
                      std::make_pair(4, 4), std::make_pair(2, 6)));

class MeshMulticast
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(MeshMulticast, TreeCoversAllDestinationsWithoutDuplicates)
{
    auto [rows, cols] = GetParam();
    sim::EventQueue eq;
    auto t = makeMesh2D(eq, rows, cols);
    int n = rows * cols;

    // Multicast from hub 0 to a CAB on every hub.
    std::vector<Endpoint> dsts;
    for (int h = 1; h < n; ++h)
        dsts.push_back(Endpoint{h, 2});

    auto r = t->multicastRoute({0, 0}, dsts);

    // Property 1: no (hub, port) pair is opened twice — the tree
    // shares common prefixes.
    std::set<std::pair<int, int>> opens;
    int replies = 0;
    for (const auto &hop : r) {
        EXPECT_TRUE(opens.emplace(hop.hubId, hop.outPort).second);
        if (hop.reply)
            ++replies;
    }

    // Property 2: exactly one terminal (reply) open per destination.
    EXPECT_EQ(replies, n - 1);

    // Property 3: every destination hub opens port 2 (its CAB) with
    // a reply, and the first command addresses the source hub.
    for (const auto &dst : dsts) {
        bool found = false;
        for (const auto &hop : r)
            found |= (hop.hubId == t->hubAt(dst.hubIndex).hubId() &&
                      hop.outPort == dst.port && hop.reply);
        EXPECT_TRUE(found);
    }
    EXPECT_EQ(r.front().hubId, t->hubAt(0).hubId());

    // Property 4: depth-first emission — every hub named by a
    // command was reached by an earlier inter-hub open, except the
    // source hub.  Reconstruct reachability using the mesh adjacency
    // implied by the builder's port convention.
    const auto &cfg = t->hubAt(0).configuration();
    const int east = cfg.numPorts - 4, west = cfg.numPorts - 3;
    const int south = cfg.numPorts - 2, north = cfg.numPorts - 1;
    std::set<int> reachable{0};
    for (const auto &hop : r) {
        EXPECT_TRUE(reachable.count(hop.hubId))
            << "command addressed to not-yet-reached hub "
            << int(hop.hubId);
        if (hop.reply)
            continue;
        int h = hop.hubId;
        int row = h / cols, col = h % cols;
        if (hop.outPort == east)
            reachable.insert(meshHubIndex(row, col + 1, cols));
        else if (hop.outPort == west)
            reachable.insert(meshHubIndex(row, col - 1, cols));
        else if (hop.outPort == south)
            reachable.insert(meshHubIndex(row + 1, col, cols));
        else if (hop.outPort == north)
            reachable.insert(meshHubIndex(row - 1, col, cols));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshMulticast,
    ::testing::Values(std::make_pair(2, 2), std::make_pair(2, 3),
                      std::make_pair(3, 3)));
