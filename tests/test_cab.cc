/**
 * @file
 * Unit tests for the CAB hardware model: checksum unit, memory
 * protection, on-board memory, and the fiber RX/TX datapath.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "cab/cab.hh"
#include "cab/checksum.hh"
#include "helpers/test_endpoint.hh"
#include "phys/fiber.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using namespace nectar::cab;
using nectar::test::TestEndpoint;
using phys::ItemKind;
using phys::WireItem;
using sim::Tick;
using sim::ticks::us;

// ----- Checksum ----------------------------------------------------

TEST(Checksum, KnownVector)
{
    // Classic IP-header example folded to our byte-wise interface.
    std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5,
                                   0xf6, 0xf7};
    EXPECT_EQ(checksum16(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero)
{
    std::vector<std::uint8_t> even{0xAB, 0x00};
    std::vector<std::uint8_t> odd{0xAB};
    EXPECT_EQ(checksum16(even), checksum16(odd));
}

TEST(Checksum, DetectsSingleByteCorruption)
{
    std::vector<std::uint8_t> data(64);
    std::iota(data.begin(), data.end(), std::uint8_t(1));
    auto base = checksum16(data);
    data[13] ^= 0x40;
    EXPECT_NE(checksum16(data), base);
}

TEST(Checksum, NeverReturnsZero)
{
    // The all-0xFF buffer sums to 0xFFFF whose complement is 0.
    std::vector<std::uint8_t> data(10, 0xFF);
    EXPECT_EQ(checksum16(data), 0xFFFF);
}

TEST(Checksum, EmptyBuffer)
{
    EXPECT_EQ(checksum16(nullptr, 0), 0xFFFF);
}

// ----- Memory protection --------------------------------------------

TEST(Protection, KernelDomainStartsWithFullAccess)
{
    MemoryProtection p(64 * 1024);
    EXPECT_TRUE(p.check(kernelDomain, 0, 64 * 1024, permAll));
}

TEST(Protection, UserDomainStartsWithNoAccess)
{
    MemoryProtection p(64 * 1024);
    EXPECT_FALSE(p.check(1, 0, 4, permRead));
    EXPECT_EQ(p.violations(), 1u);
}

TEST(Protection, GrantAndRevokePageRange)
{
    MemoryProtection p(64 * 1024);
    p.setPerms(2, 4096, 2048, permRW);
    EXPECT_TRUE(p.check(2, 4096, 2048, permRead));
    EXPECT_TRUE(p.check(2, 5000, 100, permWrite));
    EXPECT_FALSE(p.check(2, 4096, 100, permExec));
    // Pages outside the grant remain protected.
    EXPECT_FALSE(p.check(2, 0, 4, permRead));
    EXPECT_FALSE(p.check(2, 8192, 4, permRead));
    p.setPerms(2, 4096, 2048, permNone);
    EXPECT_FALSE(p.check(2, 4096, 4, permRead));
}

TEST(Protection, PageGranularityIsOneKilobyte)
{
    MemoryProtection p(64 * 1024);
    p.setPerms(3, 1024, 1, permRead); // one byte grants its page
    EXPECT_TRUE(p.check(3, 2047, 1, permRead));
    EXPECT_FALSE(p.check(3, 2048, 1, permRead));
    EXPECT_FALSE(p.check(3, 1023, 1, permRead));
}

TEST(Protection, CrossPageAccessNeedsAllPages)
{
    MemoryProtection p(64 * 1024);
    p.setPerms(4, 0, 1024, permRW);
    // Access straddling into an unprotected page fails.
    EXPECT_FALSE(p.check(4, 1000, 100, permWrite));
}

TEST(Protection, DomainsAreIsolated)
{
    MemoryProtection p(64 * 1024);
    p.setPerms(5, 0, 1024, permAll);
    EXPECT_TRUE(p.check(5, 0, 8, permExec));
    EXPECT_FALSE(p.check(6, 0, 8, permRead));
}

TEST(Protection, ClearDomainRevokesEverything)
{
    MemoryProtection p(64 * 1024);
    p.setPerms(7, 0, 32 * 1024, permAll);
    p.clearDomain(7);
    EXPECT_FALSE(p.check(7, 0, 4, permRead));
}

TEST(Protection, OutOfSpaceAccessFails)
{
    MemoryProtection p(64 * 1024);
    EXPECT_FALSE(p.check(kernelDomain, 63 * 1024, 2048, permRead));
}

TEST(Protection, ThirtyTwoDomainsSupported)
{
    MemoryProtection p(1024 * 1024);
    EXPECT_EQ(p.numDomains(), 32);
    p.setPerms(31, 0, 1024, permRW); // the VME domain
    EXPECT_TRUE(p.check(vmeDomain, 0, 8, permWrite));
}

// ----- CAB memory ----------------------------------------------------

TEST(CabMemory, DataRamRoundTrip)
{
    CabMemory mem;
    std::vector<std::uint8_t> out(4);
    std::vector<std::uint8_t> in{1, 2, 3, 4};
    EXPECT_TRUE(mem.write(kernelDomain, addrmap::dataRamBase, in.data(),
                          4));
    EXPECT_TRUE(mem.read(kernelDomain, addrmap::dataRamBase, out.data(),
                         4));
    EXPECT_EQ(out, in);
}

TEST(CabMemory, PromRejectsWrites)
{
    CabMemory mem;
    std::uint8_t b = 1;
    EXPECT_FALSE(mem.write(kernelDomain, addrmap::promBase, &b, 1));
    EXPECT_EQ(mem.busErrors(), 1u);
}

TEST(CabMemory, LoadPromThenRead)
{
    CabMemory mem;
    mem.loadProm(16, {0xDE, 0xAD});
    std::uint8_t out[2];
    EXPECT_TRUE(mem.read(kernelDomain, 16, out, 2));
    EXPECT_EQ(out[0], 0xDE);
    EXPECT_EQ(out[1], 0xAD);
}

TEST(CabMemory, UnmappedHoleIsBusError)
{
    CabMemory mem;
    std::uint8_t b;
    // Between program RAM (ends 0xA0000) and data RAM (0x100000).
    EXPECT_FALSE(mem.read(kernelDomain, 0xC0000, &b, 1));
    EXPECT_GT(mem.busErrors(), 0u);
}

TEST(CabMemory, UserDomainNeedsGrant)
{
    CabMemory mem;
    std::uint8_t b = 7;
    EXPECT_FALSE(mem.write(3, addrmap::dataRamBase, &b, 1));
    mem.protection().setPerms(3, addrmap::dataRamBase, 1024, permRW);
    EXPECT_TRUE(mem.write(3, addrmap::dataRamBase, &b, 1));
}

TEST(CabMemory, AccountingTracksAccessors)
{
    CabMemory mem;
    std::uint8_t buf[64] = {};
    mem.write(kernelDomain, addrmap::dataRamBase, buf, 64,
              Accessor::cpu);
    mem.account(Accessor::fiberInDma, 128);
    mem.account(Accessor::vmeDma, 256);
    EXPECT_EQ(mem.bytesBy(Accessor::cpu), 64u);
    EXPECT_EQ(mem.bytesBy(Accessor::fiberInDma), 128u);
    EXPECT_EQ(mem.bytesBy(Accessor::vmeDma), 256u);
    EXPECT_EQ(mem.totalBytes(), 448u);
}

// ----- CAB datapath --------------------------------------------------

class CabDatapath : public ::testing::Test
{
  protected:
    CabDatapath()
        : board(eq, "cab0"), peer(eq),
          toCab(eq, "peer->cab"), toPeer(eq, "cab->peer")
    {
        toCab.connectTo(board);
        toPeer.connectTo(peer);
        board.attachTx(toPeer);
        peer.attachTx(toCab);
    }

    sim::EventQueue eq;
    Cab board;
    TestEndpoint peer;   // stands in for the HUB side
    phys::FiberLink toCab;
    phys::FiberLink toPeer;
};

TEST_F(CabDatapath, ReceivesAcceptedPacket)
{
    std::vector<std::uint8_t> got;
    board.onPacketStart = [&] { board.acceptPacket(); };
    board.onPacketComplete = [&](sim::PacketView &&bytes,
                                 bool corrupted) {
        EXPECT_FALSE(corrupted);
        got = bytes.toVector();
    };

    std::vector<std::uint8_t> payload(300);
    std::iota(payload.begin(), payload.end(), std::uint8_t(0));
    peer.sendPacket(payload);
    eq.run();
    EXPECT_EQ(got, payload);
    EXPECT_EQ(board.stats().rxPackets.value(), 1u);
    EXPECT_EQ(board.stats().rxBytes.value(), 300u);
    // Accepting drained the queue: a ready signal went upstream.
    EXPECT_EQ(peer.countKind(ItemKind::readySignal), 1u);
}

TEST_F(CabDatapath, UnacceptedOversizePacketOverflows)
{
    bool dropped = false;
    board.onPacketDropped = [&] { dropped = true; };
    // No acceptPacket: software is "too slow" (Section 6.2.1).
    peer.sendPacket(std::vector<std::uint8_t>(2048, 7));
    eq.run();
    EXPECT_TRUE(dropped);
    EXPECT_EQ(board.stats().rxDropped.value(), 1u);
    EXPECT_EQ(board.stats().rxPackets.value(), 0u);
}

TEST_F(CabDatapath, LateAcceptStillCompletesSmallPacket)
{
    std::vector<std::uint8_t> got;
    board.onPacketComplete = [&](sim::PacketView &&bytes,
                                 bool) { got = bytes.toVector(); };
    // Accept 50 us after the packet started: it fits in the queue.
    board.onPacketStart = [&] {
        eq.scheduleIn(50 * us, [&] { board.acceptPacket(); });
    };
    std::vector<std::uint8_t> payload(512, 0x42);
    peer.sendPacket(payload);
    eq.run();
    EXPECT_EQ(got, payload);
}

TEST_F(CabDatapath, RepliesAndReadySignalsAreDelivered)
{
    int replies = 0, readies = 0;
    board.onReply = [&](const phys::ReplyWord &) { ++replies; };
    board.onReadySignal = [&] { ++readies; };
    toCab.send(WireItem::makeReply(1, 0, 2, 1));
    toCab.sendStolen(WireItem::ready());
    eq.run();
    EXPECT_EQ(replies, 1);
    EXPECT_EQ(readies, 1);
}

TEST_F(CabDatapath, StrayCommandsCounted)
{
    // Multicast route spillover (Section 4.2.2): commands for other
    // HUBs can reach a terminal CAB; it discards them.
    toCab.send(WireItem::command(0x02, 3, 4));
    eq.run();
    EXPECT_EQ(board.stats().strayItems.value(), 1u);
}

TEST_F(CabDatapath, DmaSendSerializesAtFiberRate)
{
    auto payload = phys::makePayload(
        std::vector<std::uint8_t>(1000, 0xAA));
    auto items = board.framePacket(payload);
    Tick done_at = -1;
    board.dmaSend(std::move(items), [&] { done_at = eq.now(); });
    eq.run();
    // SOP(1) + 1000 data + EOP(1) = 1002 bytes at 80 ns/byte.
    EXPECT_EQ(done_at, 1002 * 80);
    EXPECT_EQ(board.stats().txPackets.value(), 1u);
    EXPECT_EQ(board.stats().txBytes.value(), 1000u);
    EXPECT_EQ(peer.dataBytes(), 1000u);
    // The outgoing DMA was accounted against data memory.
    EXPECT_EQ(board.memory().bytesBy(Accessor::fiberOutDma), 1000u);
}

TEST_F(CabDatapath, CorruptedChunkFlagsPacket)
{
    bool corrupted = false;
    board.onPacketStart = [&] { board.acceptPacket(); };
    board.onPacketComplete = [&](sim::PacketView &&,
                                 bool c) { corrupted = c; };
    toCab.send(WireItem::startPacket());
    auto p = phys::makePayload(std::vector<std::uint8_t>(64, 1));
    auto chunk = WireItem::dataChunk(p, 0, 64);
    chunk.corrupted = true;
    toCab.send(chunk);
    toCab.send(WireItem::endPacket());
    eq.run();
    EXPECT_TRUE(corrupted);
    EXPECT_EQ(board.stats().rxCorrupted.value(), 1u);
}
