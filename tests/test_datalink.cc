/**
 * @file
 * Datalink-layer tests: packet/circuit switched transfer between full
 * CAB stacks across single- and multi-HUB systems, multicast, flow
 * control, and recovery from lost commands.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "nectarine/system.hh"
#include "sim/coro.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

using namespace nectar;
using namespace nectar::datalink;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using sim::ticks::ms;
using sim::ticks::us;

namespace {

std::vector<std::uint8_t>
iotaBytes(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), std::uint8_t(0));
    return v;
}

/** Run a datalink send and capture the result. */
void
runSend(sim::EventQueue &eq, Datalink &dl, topo::Route route,
        phys::Payload payload, SwitchMode mode, bool &result)
{
    sim::spawn([](Datalink &dl, topo::Route route, phys::Payload p,
                  SwitchMode mode, bool &result) -> Task<void> {
        result = co_await dl.sendPacket(std::move(route), std::move(p),
                                        mode);
    }(dl, std::move(route), std::move(payload), mode, result));
    eq.run();
}

} // namespace

class DatalinkTest : public ::testing::Test
{
  protected:
    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;

    struct RxCapture
    {
        std::vector<std::vector<std::uint8_t>> packets;
        int corrupted = 0;
    };

    RxCapture &
    capture(std::size_t site)
    {
        auto cap = std::make_unique<RxCapture>();
        RxCapture &ref = *cap;
        captures.push_back(std::move(cap));
        sys->site(site).datalink->rxHandler =
            [&ref](sim::PacketView &&bytes, bool corrupted) {
                ref.packets.push_back(bytes.toVector());
                if (corrupted)
                    ++ref.corrupted;
            };
        return ref;
    }

    topo::Route
    routeBetween(std::size_t from, std::size_t to)
    {
        return sys->topo().route(sys->site(from).at, sys->site(to).at);
    }

    std::vector<std::unique_ptr<RxCapture>> captures;
};

TEST_F(DatalinkTest, PacketSwitchedDelivery)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &rx = capture(1);
    bool sent = false;
    auto payload = iotaBytes(500);
    runSend(eq, *sys->site(0).datalink, routeBetween(0, 1),
            phys::makePayload(payload), SwitchMode::packet, sent);
    EXPECT_TRUE(sent);
    ASSERT_EQ(rx.packets.size(), 1u);
    EXPECT_EQ(rx.packets[0], payload);
    EXPECT_EQ(sys->site(1).datalink->stats().packetsReceived.value(),
              1u);
}

TEST_F(DatalinkTest, CircuitSwitchedDelivery)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &rx = capture(1);
    bool sent = false;
    auto payload = iotaBytes(500);
    runSend(eq, *sys->site(0).datalink, routeBetween(0, 1),
            phys::makePayload(payload), SwitchMode::circuit, sent);
    EXPECT_TRUE(sent);
    ASSERT_EQ(rx.packets.size(), 1u);
    EXPECT_EQ(rx.packets[0], payload);
    // The route closed behind the data.
    EXPECT_EQ(sys->topo().hubAt(0).crossbar().connectionCount(), 0);
}

TEST_F(DatalinkTest, CircuitStreamsLargePacket)
{
    // Circuit switching carries packets larger than the HUB input
    // queue ("Circuit switching must be used for larger packets",
    // Section 4.2.3).
    sys = NectarSystem::singleHub(eq, 2);
    auto &rx = capture(1);
    bool sent = false;
    auto payload = iotaBytes(64 * 1024);
    runSend(eq, *sys->site(0).datalink, routeBetween(0, 1),
            phys::makePayload(payload), SwitchMode::circuit, sent);
    EXPECT_TRUE(sent);
    ASSERT_EQ(rx.packets.size(), 1u);
    EXPECT_EQ(rx.packets[0].size(), payload.size());
    EXPECT_EQ(rx.packets[0], payload);
}

TEST_F(DatalinkTest, PacketModeRejectsOversizedFrame)
{
    sys = NectarSystem::singleHub(eq, 2);
    bool sent = false;
    EXPECT_THROW(
        runSend(eq, *sys->site(0).datalink, routeBetween(0, 1),
                phys::makePayload(iotaBytes(2000)), SwitchMode::packet,
                sent),
        sim::PanicError);
}

TEST_F(DatalinkTest, MultiHubMeshDelivery)
{
    sys = NectarSystem::mesh2D(eq, 2, 2, 1);
    auto &rx = capture(3); // CAB on the diagonally opposite hub
    bool sent = false;
    auto payload = iotaBytes(256);
    runSend(eq, *sys->site(0).datalink, routeBetween(0, 3),
            phys::makePayload(payload), SwitchMode::packet, sent);
    EXPECT_TRUE(sent);
    ASSERT_EQ(rx.packets.size(), 1u);
    EXPECT_EQ(rx.packets[0], payload);
}

TEST_F(DatalinkTest, MultiHubCircuitDelivery)
{
    sys = NectarSystem::mesh2D(eq, 2, 2, 1);
    auto &rx = capture(3);
    bool sent = false;
    auto payload = iotaBytes(4096);
    runSend(eq, *sys->site(0).datalink, routeBetween(0, 3),
            phys::makePayload(payload), SwitchMode::circuit, sent);
    EXPECT_TRUE(sent);
    ASSERT_EQ(rx.packets.size(), 1u);
    EXPECT_EQ(rx.packets[0], payload);
    for (int h = 0; h < 4; ++h)
        EXPECT_EQ(sys->topo().hubAt(h).crossbar().connectionCount(), 0);
}

TEST_F(DatalinkTest, MulticastCircuitDelivery)
{
    sys = NectarSystem::singleHub(eq, 3);
    auto &rx1 = capture(1);
    auto &rx2 = capture(2);
    auto route = sys->topo().multicastRoute(
        sys->site(0).at, {sys->site(1).at, sys->site(2).at});
    bool sent = false;
    auto payload = iotaBytes(300);
    runSend(eq, *sys->site(0).datalink, route,
            phys::makePayload(payload), SwitchMode::circuit, sent);
    EXPECT_TRUE(sent);
    ASSERT_EQ(rx1.packets.size(), 1u);
    ASSERT_EQ(rx2.packets.size(), 1u);
    EXPECT_EQ(rx1.packets[0], payload);
    EXPECT_EQ(rx2.packets[0], payload);
}

TEST_F(DatalinkTest, BackToBackPacketsRespectFlowControl)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &rx = capture(1);
    int done = 0;
    auto sender = [](Datalink &dl, topo::Route route,
                     int count, int &done) -> Task<void> {
        for (int i = 0; i < count; ++i) {
            bool ok = co_await dl.sendPacket(
                route, phys::makePayload(
                    std::vector<std::uint8_t>(400, std::uint8_t(i))),
                SwitchMode::packet);
            if (ok)
                ++done;
        }
    };
    sim::spawn(sender(*sys->site(0).datalink, routeBetween(0, 1), 10,
                      done));
    eq.run();
    EXPECT_EQ(done, 10);
    EXPECT_EQ(rx.packets.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rx.packets[i][0], std::uint8_t(i));
}

TEST_F(DatalinkTest, CircuitRecoversFromBusyOutput)
{
    // A competing connection occupies the destination port; the
    // openRetry keeps retrying in hardware until it frees up.
    sys = NectarSystem::singleHub(eq, 3);
    auto &rx = capture(1);

    // Site 2 manually opens a connection to site 1's port and holds
    // it for a while.
    auto &hub0 = sys->topo().hubAt(0);
    auto dst_port = sys->site(1).at.port;
    auto blocker_port = sys->site(2).at.port;
    ASSERT_TRUE(hub0.crossbar().open(blocker_port, dst_port));

    bool sent = false;
    sim::spawn([](Datalink &dl, topo::Route route,
                  phys::Payload p, bool &sent) -> Task<void> {
        sent = co_await dl.sendPacket(std::move(route), std::move(p),
                                      SwitchMode::circuit);
    }(*sys->site(0).datalink, routeBetween(0, 1),
      phys::makePayload(iotaBytes(100)), sent));

    // Release the blocker after 100 us (within the reply timeout, so
    // the hardware retry wins without software recovery).
    eq.schedule(100 * us, [&] { hub0.crossbar().close(dst_port); });
    eq.run();
    EXPECT_TRUE(sent);
    ASSERT_EQ(rx.packets.size(), 1u);
}

TEST_F(DatalinkTest, CircuitTimesOutAndRecovers)
{
    // The blocker holds the port past the reply timeout: the sender
    // tears down with closeAll, backs off, and succeeds on a retry.
    sys = NectarSystem::singleHub(eq, 3);
    auto &rx = capture(1);
    auto &hub0 = sys->topo().hubAt(0);
    auto dst_port = sys->site(1).at.port;
    ASSERT_TRUE(hub0.crossbar().open(sys->site(2).at.port, dst_port));

    bool sent = false;
    sim::spawn([](Datalink &dl, topo::Route route,
                  phys::Payload p, bool &sent) -> Task<void> {
        sent = co_await dl.sendPacket(std::move(route), std::move(p),
                                      SwitchMode::circuit);
    }(*sys->site(0).datalink, routeBetween(0, 1),
      phys::makePayload(iotaBytes(100)), sent));

    eq.schedule(1 * ms, [&] { hub0.crossbar().close(dst_port); });
    eq.run();
    EXPECT_TRUE(sent);
    EXPECT_GE(sys->site(0).datalink->stats().routeTimeouts.value(), 1u);
    EXPECT_GE(sys->site(0).datalink->stats().recoveries.value(), 1u);
    ASSERT_EQ(rx.packets.size(), 1u);
}

TEST_F(DatalinkTest, GivesUpAfterMaxAttempts)
{
    nectarine::SiteConfig cfg;
    cfg.datalink.maxAttempts = 2;
    cfg.datalink.replyTimeout = 100 * us;
    cfg.datalink.retryBackoff = 50 * us;
    sys = NectarSystem::singleHub(eq, 3, cfg);
    auto &hub0 = sys->topo().hubAt(0);
    // Permanently blocked destination.
    ASSERT_TRUE(hub0.crossbar().open(sys->site(2).at.port,
                                     sys->site(1).at.port));
    // Avoid infinite hardware retries filling the run.
    hub0.controller().setRetryLimit(100000);

    bool sent = true;
    runSend(eq, *sys->site(0).datalink, routeBetween(0, 1),
            phys::makePayload(iotaBytes(10)), SwitchMode::circuit,
            sent);
    EXPECT_FALSE(sent);
    EXPECT_EQ(sys->site(0).datalink->stats().sendFailures.value(), 1u);
}

TEST_F(DatalinkTest, QueryConnectionStatus)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &hub0 = sys->topo().hubAt(0);
    std::optional<int> free_status, owned_status;

    sim::spawn([](Datalink &dl, hub::Hub &hub, int dst_port,
                  int src_port, std::optional<int> &free_status,
                  std::optional<int> &owned_status) -> Task<void> {
        free_status = co_await dl.queryConnection(hub.hubId(),
                                                  dst_port);
        hub.crossbar().open(src_port, dst_port);
        owned_status = co_await dl.queryConnection(hub.hubId(),
                                                   dst_port);
    }(*sys->site(0).datalink, hub0, sys->site(1).at.port,
      sys->site(0).at.port, free_status, owned_status));
    eq.run();
    ASSERT_TRUE(free_status.has_value());
    EXPECT_EQ(*free_status, hub::noPort);
    ASSERT_TRUE(owned_status.has_value());
    EXPECT_EQ(*owned_status, sys->site(0).at.port);
}

TEST_F(DatalinkTest, ConcurrentSendersSerializeOnTxFiber)
{
    sys = NectarSystem::singleHub(eq, 2);
    auto &rx = capture(1);
    int completed = 0;
    auto one = [](Datalink &dl, topo::Route route, int id,
                  int &completed) -> Task<void> {
        bool ok = co_await dl.sendPacket(
            route,
            phys::makePayload(
                std::vector<std::uint8_t>(200, std::uint8_t(id))),
            SwitchMode::packet);
        if (ok)
            ++completed;
    };
    for (int i = 0; i < 5; ++i)
        sim::spawn(one(*sys->site(0).datalink, routeBetween(0, 1), i,
                       completed));
    eq.run();
    EXPECT_EQ(completed, 5);
    EXPECT_EQ(rx.packets.size(), 5u);
}
