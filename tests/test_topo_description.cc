/**
 * @file
 * Declarative-fabric tests: TopologyDescription validation, the
 * generators, and the `.topo` text format (DESIGN.md "Fabrics and
 * routing").  The malformed-input corpus mirrors the fault-plan
 * parser's: every broken file must die loudly with a line number,
 * never half-build.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/logging.hh"
#include "topo/description.hh"
#include "topo/topofile.hh"

using namespace nectar;
using namespace nectar::topo;

// ----- description validation ---------------------------------------

TEST(TopologyDescriptionTest, ValidDescriptionPasses)
{
    TopologyDescription d;
    d.hubs = {HubDecl{"a"}, HubDecl{"b"}};
    d.trunks = {TrunkDecl{0, 15, 1, 14, 500, 2}};
    d.cabs = {CabDecl{"c0", 0, 0, 80}, CabDecl{"", 1, 0, 0}};
    EXPECT_NO_THROW(d.validate());
    EXPECT_TRUE(d.connected());
    EXPECT_EQ(d.hubNameAt(0), "a");
    EXPECT_EQ(d.hubIndexByName("b"), 1);
    EXPECT_EQ(d.hubIndexByName("nope"), -1);
}

TEST(TopologyDescriptionTest, StructuralErrorsAreFatal)
{
    TopologyDescription base;
    base.hubs = {HubDecl{"a"}, HubDecl{"b"}};
    base.trunks = {TrunkDecl{0, 15, 1, 15}};

    { // trunk to a HUB that does not exist
        auto d = base;
        d.trunks.push_back(TrunkDecl{0, 14, 2, 14});
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // self-trunk
        auto d = base;
        d.trunks.push_back(TrunkDecl{0, 13, 0, 12});
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // trunk-trunk port collision
        auto d = base;
        d.trunks.push_back(TrunkDecl{0, 15, 1, 14});
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // cab-trunk port collision
        auto d = base;
        d.cabs.push_back(CabDecl{"", 1, 15, 0});
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // cab-cab port collision
        auto d = base;
        d.cabs.push_back(CabDecl{"x", 0, 3, 0});
        d.cabs.push_back(CabDecl{"y", 0, 3, 0});
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // port out of range
        auto d = base;
        d.cabs.push_back(CabDecl{"", 0, 16, 0});
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // bad width
        auto d = base;
        d.trunks[0].width = 0;
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // negative latency
        auto d = base;
        d.trunks[0].latency = -1;
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
    { // duplicate non-empty HUB names
        auto d = base;
        d.hubs[1].name = "a";
        EXPECT_THROW(d.validate(), sim::FatalError);
    }
}

// ----- generators ---------------------------------------------------

TEST(TopologyDescriptionTest, MeshGeneratorMatchesLegacyConventions)
{
    TopologyDescription d = describeMesh2D(4, 4, 2);
    EXPECT_EQ(d.name, "mesh4x4");
    EXPECT_EQ(d.numHubs(), 16);
    // 2*r*c - r - c internal links for an r x c mesh.
    EXPECT_EQ(d.trunks.size(), 24u);
    EXPECT_EQ(d.cabs.size(), 32u);
    EXPECT_EQ(d.hubNameAt(0), "hub_r0c0");
    EXPECT_EQ(d.hubNameAt(5), "hub_r1c1");
    EXPECT_TRUE(d.connected());
    EXPECT_NO_THROW(d.validate());
}

TEST(TopologyDescriptionTest, TorusAddsWraps)
{
    TopologyDescription mesh = describeTorus2D(1, 3, 1);
    // A 1 x 3 torus wraps the row but not the length-1 column.
    EXPECT_EQ(mesh.trunks.size(), 3u);

    TopologyDescription t = describeTorus2D(4, 4, 2);
    EXPECT_EQ(t.trunks.size(), 32u); // 2*r*c with both wraps
    EXPECT_TRUE(t.connected());
    EXPECT_NO_THROW(t.validate());
}

TEST(TopologyDescriptionTest, FatTreeConnectsEveryLeafToEverySpine)
{
    TopologyDescription d = describeFatTree(4, 8, 2);
    EXPECT_EQ(d.numHubs(), 12);
    EXPECT_EQ(d.trunks.size(), 32u);
    EXPECT_EQ(d.cabs.size(), 16u); // spines carry no CABs
    EXPECT_TRUE(d.connected());
    for (const CabDecl &c : d.cabs)
        EXPECT_GE(c.hub, 4) << "CAB on a spine";
}

TEST(TopologyDescriptionTest, RandomRegularIsSeededAndRegular)
{
    TopologyDescription a = describeRandomRegular(7, 12, 3, 1);
    TopologyDescription b = describeRandomRegular(7, 12, 3, 1);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, describeRandomRegular(8, 12, 3, 1));
    EXPECT_TRUE(a.connected());
    EXPECT_NO_THROW(a.validate());

    std::vector<int> degree(12, 0);
    for (const TrunkDecl &t : a.trunks) {
        ++degree[static_cast<std::size_t>(t.a)];
        ++degree[static_cast<std::size_t>(t.b)];
    }
    for (int deg : degree)
        EXPECT_EQ(deg, 3);
}

// ----- parser: the good path ----------------------------------------

TEST(TopoFileTest, ParsesExplicitFabric)
{
    TopologyDescription d = parseTopology("# demo\n"
                                          "nectar-topo v1\n"
                                          "fabric demo\n"
                                          "ports 20\n"
                                          "hub left\n"
                                          "hub right   # comment\n"
                                          "\n"
                                          "trunk left.19 right.18 "
                                          "latency=500 width=2\n"
                                          "cab c0 left.0\n"
                                          "cab - right.0 latency=80\n"
                                          "end\n");
    EXPECT_EQ(d.name, "demo");
    EXPECT_EQ(d.hubPorts, 20);
    ASSERT_EQ(d.numHubs(), 2);
    ASSERT_EQ(d.trunks.size(), 1u);
    EXPECT_EQ(d.trunks[0], (TrunkDecl{0, 19, 1, 18, 500, 2}));
    ASSERT_EQ(d.cabs.size(), 2u);
    EXPECT_EQ(d.cabs[0], (CabDecl{"c0", 0, 0, 0}));
    EXPECT_EQ(d.cabs[1], (CabDecl{"", 1, 0, 80}));
}

TEST(TopoFileTest, GenerateDirectiveEqualsGeneratorCall)
{
    TopologyDescription parsed =
        parseTopology("nectar-topo v1\n"
                      "fabric big\n"
                      "ports 20\n"
                      "generate mesh2d rows=4 cols=4 cabs=13\n"
                      "end\n");
    TopologyDescription direct = describeMesh2D(4, 4, 13, 0, 20);
    direct.name = "big"; // fabric line overrides the generated name
    EXPECT_EQ(parsed, direct);

    EXPECT_EQ(parseTopology("nectar-topo v1\n"
                            "generate fattree spines=2 leaves=4 "
                            "cabs=3\n"
                            "end\n"),
              describeFatTree(2, 4, 3));
    EXPECT_EQ(parseTopology("nectar-topo v1\n"
                            "generate random seed=5 hubs=10 degree=3 "
                            "cabs=1\n"
                            "end\n"),
              describeRandomRegular(5, 10, 3, 1));
}

TEST(TopoFileTest, FormatRoundTripsEveryGenerator)
{
    const TopologyDescription cases[] = {
        describeMesh2D(3, 4, 2, 500),
        describeTorus2D(3, 3, 1),
        describeFatTree(2, 4, 3, 0, 20),
        describeRandomRegular(11, 10, 4, 2),
    };
    for (const TopologyDescription &d : cases)
        EXPECT_EQ(parseTopology(formatTopology(d)), d) << d.name;

    // describeSingleHub leaves its HUB anonymous; the writer renders
    // the derived name, so the text (not the struct) is the fixpoint.
    std::string text = formatTopology(describeSingleHub(8));
    EXPECT_EQ(formatTopology(parseTopology(text)), text);
}

TEST(TopoFileTest, RoundTripKeepsOptionsAndAnonymousCabs)
{
    TopologyDescription d;
    d.name = "opts";
    d.hubPorts = 24;
    d.hubs = {HubDecl{"a"}, HubDecl{"b"}};
    d.trunks = {TrunkDecl{0, 23, 1, 22, 1250, 4}};
    d.cabs = {CabDecl{"", 0, 0, 80}, CabDecl{"named", 1, 0, 0}};
    EXPECT_EQ(parseTopology(formatTopology(d)), d);
}

TEST(TopoFileTest, SaveLoadThroughFile)
{
    TopologyDescription d = describeTorus2D(4, 4, 2);
    std::string path = testing::TempDir() + "topo_roundtrip.topo";
    saveTopologyFile(d, path);
    EXPECT_EQ(loadTopologyFile(path), d);
}

TEST(TopoFileTest, CheckedInMeshFileEqualsGenerator)
{
    // examples/fabrics/mesh4x4.topo spells the 4x4 mesh out by hand;
    // it must stay exactly the fabric the generator emits.
    EXPECT_EQ(loadTopologyFile(std::string(NECTAR_FABRIC_DIR) +
                               "/mesh4x4.topo"),
              describeMesh2D(4, 4, 2));
}

TEST(TopoFileTest, CheckedInFabric16IsTheAcceptanceFabric)
{
    TopologyDescription d = loadTopologyFile(
        std::string(NECTAR_FABRIC_DIR) + "/fabric16.topo");
    EXPECT_EQ(d.numHubs(), 16);
    EXPECT_GE(d.cabs.size(), 200u);
    EXPECT_TRUE(d.connected());

    TopologyDescription gen = describeMesh2D(4, 4, 13, 0, 20);
    gen.name = "fabric16";
    EXPECT_EQ(d, gen);
}

// ----- parser: the malformed corpus ---------------------------------

TEST(TopoFileTest, MalformedInputIsFatal)
{
    const char *corpus[] = {
        // structure
        "",
        "hub a\n",                           // no header
        "nectar-topo v2\nend\n",             // unsupported version
        "nectar-topo\nend\n",                // malformed header
        "nectar-topo v1\n",                  // missing end (truncated)
        "nectar-topo v1\nhub a\n",           // ditto, with a body
        "nectar-topo v1\nend\nhub a\n",      // content after end
        "nectar-topo v1\nend now\n",         // end takes no args
        "nectar-topo v1\nbogus x\nend\n",    // unknown keyword
        // fabric / ports
        "nectar-topo v1\nfabric a\nfabric b\nend\n",
        "nectar-topo v1\nfabric\nend\n",
        "nectar-topo v1\nports 8\nports 8\nend\n",
        "nectar-topo v1\nports 0\nend\n",
        "nectar-topo v1\nports 257\nend\n",
        "nectar-topo v1\nports many\nend\n",
        // hubs
        "nectar-topo v1\nhub a\nhub a\nend\n",  // duplicate
        "nectar-topo v1\nhub\nend\n",           // missing name
        // trunks
        "nectar-topo v1\nhub a\ntrunk a.15\nend\n",
        "nectar-topo v1\nhub a\nhub b\ntrunk a.15 c.14\nend\n",
        "nectar-topo v1\nhub a\nhub b\ntrunk a15 b.14\nend\n",
        "nectar-topo v1\nhub a\nhub b\ntrunk a.x b.14\nend\n",
        "nectar-topo v1\nhub a\nhub b\ntrunk a.15 b.14 speed=2\nend\n",
        "nectar-topo v1\nhub a\nhub b\n"
        "trunk a.15 b.14 latency=1 latency=2\nend\n",
        "nectar-topo v1\nhub a\nhub b\ntrunk a.15 b.14 width=0\nend\n",
        // validate() failures surfacing through the parser
        "nectar-topo v1\nhub a\ntrunk a.15 a.14\nend\n", // self-trunk
        "nectar-topo v1\nhub a\nhub b\n"
        "trunk a.15 b.15\ncab c a.15\nend\n",            // collision
        "nectar-topo v1\nhub a\ncab c a.16\nend\n",      // port range
        // cabs
        "nectar-topo v1\nhub a\ncab c\nend\n",
        "nectar-topo v1\nhub a\ncab c b.0\nend\n",
        "nectar-topo v1\nhub a\ncab c a.0 width=2\nend\n",
        // generate
        "nectar-topo v1\ngenerate\nend\n",
        "nectar-topo v1\ngenerate donut rows=2 cols=2\nend\n",
        "nectar-topo v1\ngenerate mesh2d cols=2\nend\n",
        "nectar-topo v1\ngenerate mesh2d rows=2 cols=2 hubs=4\nend\n",
        "nectar-topo v1\ngenerate random hubs=10 degree=1\nend\n",
        "nectar-topo v1\nhub a\ngenerate mesh2d rows=2 cols=2\nend\n",
        "nectar-topo v1\ngenerate mesh2d rows=2 cols=2\nhub a\nend\n",
    };
    for (const char *text : corpus)
        EXPECT_THROW(parseTopology(text), sim::FatalError)
            << "accepted: <<<" << text << ">>>";

    EXPECT_THROW(loadTopologyFile(testing::TempDir() +
                                  "topo_does_not_exist.topo"),
                 sim::FatalError);
}

TEST(TopoFileTest, ParseErrorsCarryTheLineNumber)
{
    try {
        parseTopology("nectar-topo v1\nhub a\nbogus\nend\n");
        FAIL() << "parse succeeded";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}
