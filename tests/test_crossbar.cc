/**
 * @file
 * Unit tests for the crossbar status table: exclusivity, multicast
 * fan-out, locks.
 */

#include <gtest/gtest.h>

#include "hub/crossbar.hh"
#include "sim/logging.hh"

using namespace nectar::hub;
using nectar::sim::PanicError;

TEST(Crossbar, OpensAndTracksOwner)
{
    Crossbar x(16);
    EXPECT_EQ(x.ownerOf(5), noPort);
    EXPECT_TRUE(x.open(2, 5));
    EXPECT_EQ(x.ownerOf(5), 2);
    EXPECT_EQ(x.connectionCount(), 1);
}

TEST(Crossbar, OutputExclusivity)
{
    Crossbar x(16);
    EXPECT_TRUE(x.open(2, 5));
    // "only one input queue can be connected to an output register at
    // a time" (Section 4.1).
    EXPECT_FALSE(x.open(3, 5));
    EXPECT_EQ(x.ownerOf(5), 2);
}

TEST(Crossbar, ReopenByOwnerIsIdempotent)
{
    Crossbar x(16);
    EXPECT_TRUE(x.open(2, 5));
    // A duplicate open from the owning input succeeds without
    // creating extra state (datalink recovery resends depend on it).
    EXPECT_TRUE(x.open(2, 5));
    EXPECT_EQ(x.connectionCount(), 1);
    EXPECT_EQ(x.outputsOf(2).size(), 1u);
}

TEST(Crossbar, MulticastFanOutFromOneInput)
{
    Crossbar x(16);
    // "An input queue can be connected to multiple output registers
    // (for multicast)" (Section 4.1).
    EXPECT_TRUE(x.open(1, 4));
    EXPECT_TRUE(x.open(1, 7));
    EXPECT_TRUE(x.open(1, 9));
    EXPECT_EQ(x.outputsOf(1).size(), 3u);
    EXPECT_TRUE(x.connected(1));
    EXPECT_EQ(x.connectionCount(), 3);
}

TEST(Crossbar, CloseReturnsFormerOwner)
{
    Crossbar x(16);
    x.open(2, 5);
    EXPECT_EQ(x.close(5), 2);
    EXPECT_EQ(x.ownerOf(5), noPort);
    EXPECT_EQ(x.close(5), noPort); // idempotent
    EXPECT_EQ(x.connectionCount(), 0);
}

TEST(Crossbar, CloseAllFromReleasesEverything)
{
    Crossbar x(16);
    x.open(1, 4);
    x.open(1, 7);
    x.open(2, 9);
    x.closeAllFrom(1);
    EXPECT_FALSE(x.connected(1));
    EXPECT_EQ(x.ownerOf(4), noPort);
    EXPECT_EQ(x.ownerOf(7), noPort);
    EXPECT_EQ(x.ownerOf(9), 2); // untouched
    EXPECT_EQ(x.connectionCount(), 1);
}

TEST(Crossbar, ReopenAfterClose)
{
    Crossbar x(16);
    x.open(2, 5);
    x.close(5);
    EXPECT_TRUE(x.open(3, 5));
    EXPECT_EQ(x.ownerOf(5), 3);
}

TEST(Crossbar, LockBlocksOtherInputs)
{
    Crossbar x(16);
    EXPECT_TRUE(x.acquireLock(5, 1));
    EXPECT_EQ(x.lockHolder(5), 1);
    // Another input cannot open a locked output...
    EXPECT_FALSE(x.open(2, 5));
    // ...but the lock holder can.
    EXPECT_TRUE(x.open(1, 5));
}

TEST(Crossbar, LockReacquisitionByHolderSucceeds)
{
    Crossbar x(16);
    EXPECT_TRUE(x.acquireLock(5, 1));
    EXPECT_TRUE(x.acquireLock(5, 1));
    EXPECT_FALSE(x.acquireLock(5, 2));
}

TEST(Crossbar, UnlockOnlyByHolder)
{
    Crossbar x(16);
    x.acquireLock(5, 1);
    EXPECT_FALSE(x.releaseLock(5, 2));
    EXPECT_EQ(x.lockHolder(5), 1);
    EXPECT_TRUE(x.releaseLock(5, 1));
    EXPECT_EQ(x.lockHolder(5), noPort);
}

TEST(Crossbar, ReleaseLocksOfHolder)
{
    Crossbar x(16);
    x.acquireLock(3, 1);
    x.acquireLock(4, 1);
    x.acquireLock(5, 2);
    x.releaseLocksOf(1);
    EXPECT_EQ(x.lockHolder(3), noPort);
    EXPECT_EQ(x.lockHolder(4), noPort);
    EXPECT_EQ(x.lockHolder(5), 2);
}

TEST(Crossbar, ResetClearsEverything)
{
    Crossbar x(16);
    x.open(1, 4);
    x.acquireLock(5, 2);
    x.reset();
    EXPECT_EQ(x.ownerOf(4), noPort);
    EXPECT_EQ(x.lockHolder(5), noPort);
    EXPECT_EQ(x.connectionCount(), 0);
}

TEST(Crossbar, BadPortIdsPanic)
{
    Crossbar x(16);
    EXPECT_THROW(x.open(-1, 5), PanicError);
    EXPECT_THROW(x.open(0, 16), PanicError);
    EXPECT_THROW(x.ownerOf(99), PanicError);
    EXPECT_THROW(x.close(-2), PanicError);
}

TEST(Crossbar, TooFewPortsIsFatal)
{
    EXPECT_THROW(Crossbar x(1), nectar::sim::FatalError);
}

// Property sweep: on an N-port crossbar, opening out-port i from
// input (i+1) mod N always succeeds and preserves exclusivity.
class CrossbarSize : public ::testing::TestWithParam<int>
{};

TEST_P(CrossbarSize, FullPermutationConnects)
{
    int n = GetParam();
    Crossbar x(n);
    for (int out = 0; out < n; ++out)
        EXPECT_TRUE(x.open((out + 1) % n, out));
    EXPECT_EQ(x.connectionCount(), n);
    for (int out = 0; out < n; ++out) {
        EXPECT_EQ(x.ownerOf(out), (out + 1) % n);
        EXPECT_FALSE(x.open((out + 2) % n, out));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossbarSize,
                         ::testing::Values(2, 4, 8, 16, 32, 128));
