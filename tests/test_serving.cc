/**
 * @file
 * Serving-subsystem tests: open-loop load generation over the RPC
 * transport, bounded-memory flow multiplexing, arrival processes,
 * knee detection, and bit-determinism of the whole measurement
 * (DESIGN.md "Serving").
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "nectarine/system.hh"
#include "serving/serving.hh"
#include "serving/sweep.hh"
#include "sim/event_queue.hh"

using namespace nectar;
using namespace nectar::serving;
using sim::ticks::ms;
using sim::ticks::us;

namespace {

/** One full serving run; everything a determinism diff needs. */
struct RunResult
{
    std::uint64_t fingerprint = 0;
    std::uint64_t executed = 0;
    sim::Tick end = 0;
    ServingReport report;
};

RunResult
runServing(const ServingConfig &cfg, int cabs = 4)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, cabs);
    ServingWorkload w(*sys, cfg);
    eq.run();
    return RunResult{eq.fingerprint(), eq.executedCount(), eq.now(),
               w.report()};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

// ----- open-loop basics ---------------------------------------------

TEST(Serving, OpenLoopDeliversOfferedLoad)
{
    ServingConfig cfg;
    cfg.flows = 100'000;
    cfg.offeredRps = 40'000;
    cfg.duration = 5 * ms;
    cfg.serverCompute = 8 * us;
    cfg.seed = 5;
    RunResult r = runServing(cfg);

    // ~200 expected arrivals; at this load nothing sheds or fails
    // and nearly all complete.
    EXPECT_GT(r.report.arrivals, 100u);
    EXPECT_EQ(r.report.shed, 0u);
    EXPECT_EQ(r.report.failed, 0u);
    EXPECT_EQ(r.report.completed, r.report.issued);
    EXPECT_GT(r.report.p50Ns, 0.0);
    EXPECT_GE(r.report.p999Ns, r.report.p99Ns);
    EXPECT_GE(r.report.p99Ns, r.report.p50Ns);
    EXPECT_GT(r.report.goodputMBs, 0.0);
}

TEST(Serving, ReportsLatencyPercentilesFromHistogram)
{
    ServingConfig cfg;
    cfg.offeredRps = 40'000;
    cfg.duration = 5 * ms;
    cfg.seed = 6;
    RunResult r = runServing(cfg);
    EXPECT_EQ(static_cast<std::uint64_t>(r.report.completed),
              r.report.completed);
    // The report's percentiles are the histogram's.
    EXPECT_GT(r.report.completed, 0u);
    EXPECT_DOUBLE_EQ(r.report.meanNs,
                     r.report.meanNs); // not NaN
}

// ----- determinism ---------------------------------------------------

TEST(Serving, SameSeedIsBitDeterministicTwicePerSeed)
{
    for (std::uint64_t seed : {1ull, 9ull}) {
        ServingConfig cfg;
        cfg.flows = 1'000'000;
        cfg.offeredRps = 60'000;
        cfg.duration = 4 * ms;
        cfg.seed = seed;
        RunResult a = runServing(cfg);
        RunResult b = runServing(cfg);
        EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
        EXPECT_EQ(a.executed, b.executed) << "seed " << seed;
        EXPECT_EQ(a.end, b.end) << "seed " << seed;
        EXPECT_TRUE(a.report == b.report) << "seed " << seed;
    }
}

TEST(Serving, DifferentSeedsDiverge)
{
    ServingConfig cfg;
    cfg.offeredRps = 60'000;
    cfg.duration = 4 * ms;
    cfg.seed = 1;
    RunResult a = runServing(cfg);
    cfg.seed = 2;
    RunResult b = runServing(cfg);
    EXPECT_NE(a.fingerprint, b.fingerprint);
}

// ----- bounded memory ------------------------------------------------

TEST(Serving, MillionFlowsBoundedFlowTable)
{
    ServingConfig cfg;
    cfg.flows = 1'500'000;
    cfg.offeredRps = 120'000;
    cfg.duration = 4 * ms;
    cfg.seed = 3;
    RunResult r = runServing(cfg);

    EXPECT_GT(r.report.completed, 100u);
    // Memory tracks outstanding requests, never population: the
    // peak per-host flow table stays within the outstanding cap and
    // nowhere near the 1.5M logical flows.
    EXPECT_LE(r.report.peakFlowTable, cfg.maxOutstandingPerHost);
    EXPECT_LT(r.report.peakFlowTable, cfg.flows / 100);
}

TEST(Serving, OverloadShedsAtTheOutstandingCap)
{
    ServingConfig cfg;
    cfg.offeredRps = 2'000'000; // far past 4 servers' capacity
    cfg.serverCompute = 50 * us;
    cfg.maxOutstandingPerHost = 64;
    cfg.duration = 4 * ms;
    cfg.seed = 4;
    RunResult r = runServing(cfg);
    EXPECT_GT(r.report.shed, 0u);
    EXPECT_LE(r.report.peakFlowTable, 64u);
}

// ----- arrival processes ---------------------------------------------

TEST(Serving, HotspotSkewsLoadTowardLowSites)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, 8);
    ServingConfig cfg;
    cfg.arrival = Arrival::hotspot;
    cfg.zipfSkew = 1.4;
    cfg.offeredRps = 100'000;
    cfg.duration = 5 * ms;
    cfg.seed = 8;
    ServingWorkload w(*sys, cfg);
    eq.run();

    std::uint64_t low = w.requestsServedAt(0) + w.requestsServedAt(1);
    std::uint64_t high =
        w.requestsServedAt(6) + w.requestsServedAt(7);
    EXPECT_GT(w.report().completed, 100u);
    EXPECT_GT(low, 2 * high);
}

TEST(Serving, BurstyMatchesMeanLoad)
{
    ServingConfig cfg;
    cfg.arrival = Arrival::bursty;
    cfg.offeredRps = 80'000;
    cfg.burstOnMean = 1 * ms;
    cfg.burstOffMean = 1 * ms;
    cfg.duration = 6 * ms;
    cfg.seed = 9;
    RunResult r = runServing(cfg);
    // The MMPP's ON-rate scaling keeps the long-run mean near the
    // offered load: ~480 expected arrivals, allow wide CI.
    EXPECT_GT(r.report.arrivals, 200u);
    EXPECT_LT(r.report.arrivals, 1000u);
    EXPECT_GT(r.report.completed, 0u);
}

TEST(Serving, ClosedLoopRunsAtFixedConcurrency)
{
    ServingConfig cfg;
    cfg.arrival = Arrival::closed;
    cfg.closedConcurrency = 2;
    cfg.closedThink = 20 * us;
    cfg.duration = 3 * ms;
    cfg.seed = 10;
    RunResult r = runServing(cfg);
    // Every worker completes at least one request, nothing sheds.
    EXPECT_GE(r.report.completed, 8u); // 4 hosts x 2 workers
    EXPECT_EQ(r.report.shed, 0u);
    EXPECT_EQ(r.report.completed + r.report.failed, r.report.issued);
}

// ----- knee detection ------------------------------------------------

namespace {

SweepStep
step(double offered, double achieved, double p99Us)
{
    SweepStep s;
    s.offeredRps = offered;
    s.report.achievedRps = achieved;
    s.report.p99Ns = p99Us * 1e3;
    s.report.completed = 1;
    return s;
}

} // namespace

TEST(DetectKnee, FlatCurveHasNoKnee)
{
    std::vector<SweepStep> steps{step(100, 100, 50),
                                 step(200, 200, 52),
                                 step(400, 400, 55)};
    EXPECT_EQ(detectKnee(steps, 3.0, 0.9), -1);
}

TEST(DetectKnee, LatencySlopeTriggersAtTheJump)
{
    // Load doubles each rung (+100% growth); the last rung's p99
    // inflates 8x (+700%), well past kneeSlope=3 x 100%.
    std::vector<SweepStep> steps{step(100, 100, 50),
                                 step(200, 200, 60),
                                 step(400, 400, 480)};
    EXPECT_EQ(detectKnee(steps, 3.0, 0.9), 2);
}

TEST(DetectKnee, CompletionCollapseTriggersEvenWithoutSlope)
{
    std::vector<SweepStep> steps{step(100, 99, 50),
                                 step(200, 120, 55)};
    EXPECT_EQ(detectKnee(steps, 3.0, 0.9), 1);
}

// ----- sweep harness -------------------------------------------------

TEST(Sweep, LocatesKneeAndWritesStableJson)
{
    SweepConfig cfg;
    cfg.fabric = "single_hub";
    cfg.serving.flows = 200'000;
    cfg.serving.duration = 2 * ms;
    cfg.serving.serverCompute = 30 * us;
    cfg.serving.seed = 12;
    cfg.startRps = 60'000;
    cfg.growth = 6.0;
    cfg.steps = 2; // 60k (under 133k capacity), 360k (far past it)
    auto build = [](sim::EventQueue &eq) {
        return nectarine::NectarSystem::singleHub(eq, 4);
    };

    SweepResult a = runSweep(build, cfg);
    ASSERT_EQ(a.steps.size(), 2u);
    EXPECT_GE(a.kneeIndex, 0) << "ladder failed to saturate";
    EXPECT_GT(a.steps[0].report.completed, 0u);

    // Same seed => byte-identical BENCH_serving.json, twice over.
    SweepResult b = runSweep(build, cfg);
    std::string fa = "test_serving_sweep_a.json";
    std::string fb = "test_serving_sweep_b.json";
    writeServingJson(fa, {a});
    writeServingJson(fb, {b});
    std::string ja = slurp(fa), jb = slurp(fb);
    EXPECT_FALSE(ja.empty());
    EXPECT_EQ(ja, jb);
    std::remove(fa.c_str());
    std::remove(fb.c_str());

    // Schema spot checks.
    EXPECT_NE(ja.find("\"bench\": \"serving\""), std::string::npos);
    EXPECT_NE(ja.find("\"knee_found_all\": true"),
              std::string::npos);
    EXPECT_NE(ja.find("\"offered_rps\""), std::string::npos);
    EXPECT_NE(ja.find("\"p999_us\""), std::string::npos);
    EXPECT_NE(ja.find("\"goodput_MBs\""), std::string::npos);
}
