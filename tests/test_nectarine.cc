/**
 * @file
 * Nectarine API tests: tasks, messaging, RPC, buffers, and the iPSC
 * compatibility library (ring and hypercube exchanges, typed
 * receives).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "nectarine/ipsc.hh"
#include "nectarine/nectarine.hh"
#include "sim/owner.hh"

using namespace nectar;
using namespace nectar::nectarine;
using sim::Task;
using sim::Tick;
using sim::ticks::us;

class NectarineTest : public ::testing::Test
{
  protected:
    void
    build(int cabs)
    {
        sys = NectarSystem::singleHub(eq, cabs);
        api = std::make_unique<Nectarine>(*sys);
    }

    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;
    std::unique_ptr<Nectarine> api;
};

TEST_F(NectarineTest, TaskCreationAndLookup)
{
    build(2);
    TaskId a = api->createTask(0, "alpha",
                               [](TaskContext &) -> Task<void> {
                                   co_return;
                               });
    EXPECT_EQ(api->lookup("alpha"), a);
    EXPECT_FALSE(api->lookup("nosuch").has_value());
    EXPECT_THROW(api->createTask(1, "alpha",
                                 [](TaskContext &) -> Task<void> {
                                     co_return;
                                 }),
                 sim::FatalError);
    eq.run();
    EXPECT_EQ(api->completedTasks(), 1);
}

TEST_F(NectarineTest, SendReceiveBetweenTasks)
{
    build(2);
    std::vector<std::uint8_t> got;
    TaskId rx = api->createTask(
        1, "rx", [&got](TaskContext &ctx) -> Task<void> {
            auto m = co_await ctx.receive();
            got = m.bytes();
        });
    api->createTask(0, "tx", [rx](TaskContext &ctx) -> Task<void> {
        std::vector<std::uint8_t> msg(100);
        std::iota(msg.begin(), msg.end(), std::uint8_t(0));
        co_await ctx.send(rx, std::move(msg));
    });
    eq.run();
    ASSERT_EQ(got.size(), 100u);
    EXPECT_EQ(got[99], 99);
    EXPECT_EQ(api->completedTasks(), 2);
}

TEST_F(NectarineTest, DatagramDelivery)
{
    build(2);
    std::size_t got = 0;
    TaskId rx = api->createTask(
        1, "rx", [&got](TaskContext &ctx) -> Task<void> {
            auto m = co_await ctx.receive();
            got = m.size();
        });
    api->createTask(0, "tx", [rx](TaskContext &ctx) -> Task<void> {
        std::vector<std::uint8_t> msg(64, 1);
        co_await ctx.send(rx, std::move(msg), Delivery::datagram);
    });
    eq.run();
    EXPECT_EQ(got, 64u);
}

TEST_F(NectarineTest, RpcCallAndReply)
{
    build(2);
    TaskId server = api->createTask(
        1, "server", [](TaskContext &ctx) -> Task<void> {
            for (int i = 0; i < 3; ++i) {
                auto req = co_await ctx.receive();
                std::vector<std::uint8_t> resp = req.bytes();
                for (auto &b : resp)
                    b *= 2;
                ctx.reply(req, std::move(resp));
            }
        });
    std::vector<int> results;
    api->createTask(0, "client",
                    [server, &results](TaskContext &ctx) -> Task<void> {
        for (int i = 1; i <= 3; ++i) {
            std::vector<std::uint8_t> req(1, std::uint8_t(i));
            auto resp = co_await ctx.call(server, std::move(req));
            if (resp && resp->size() == 1)
                results.push_back((*resp)[0]);
        }
    });
    eq.run();
    EXPECT_EQ(results, (std::vector<int>{2, 4, 6}));
}

TEST_F(NectarineTest, BuffersAllocateAndReleaseCabMemory)
{
    build(2);
    auto &kernel = *sys->site(0).kernel;
    auto before = kernel.allocator().bytesInUse();
    {
        Buffer buf(kernel, 4096);
        EXPECT_TRUE(buf.valid());
        EXPECT_TRUE(kernel.board().memory().inDataRam(buf.address(),
                                                      buf.size()));
        EXPECT_EQ(kernel.allocator().bytesInUse(), before + 4096);
    }
    EXPECT_EQ(kernel.allocator().bytesInUse(), before);
}

TEST_F(NectarineTest, SendBufferTransfersContents)
{
    build(2);
    std::vector<std::uint8_t> got;
    TaskId rx = api->createTask(
        1, "rx", [&got](TaskContext &ctx) -> Task<void> {
            auto m = co_await ctx.receive();
            got = m.bytes();
        });
    api->createTask(0, "tx", [rx](TaskContext &ctx) -> Task<void> {
        auto buf = ctx.allocBuffer(512);
        std::iota(buf->data().begin(), buf->data().end(),
                  std::uint8_t(7));
        co_await ctx.sendBuffer(rx, *buf);
    });
    eq.run();
    ASSERT_EQ(got.size(), 512u);
    EXPECT_EQ(got[0], 7);
}

// ----- iPSC compatibility ------------------------------------------------

TEST_F(NectarineTest, IpscRingPass)
{
    build(4);
    ipsc::IpscSystem cube(*api, 4);
    std::vector<int> received(4, -1);
    cube.load([&received](ipsc::IpscNode &self) -> Task<void> {
        int n = self.mynode();
        int right = (n + 1) % self.numnodes();
        std::vector<std::uint8_t> token(1, std::uint8_t(n));
        co_await self.csend(/*type=*/1, std::move(token), right);
        auto msg = co_await self.crecv(1);
        received[n] = msg[0];
    });
    eq.run();
    for (int n = 0; n < 4; ++n)
        EXPECT_EQ(received[n], (n + 3) % 4);
    EXPECT_EQ(cube.completedNodes(), 4);
}

TEST_F(NectarineTest, IpscHypercubeAllDimensionsExchange)
{
    build(4);
    ipsc::IpscSystem cube(*api, 8); // 3-cube on 4 CABs
    std::vector<int> sums(8, 0);
    cube.load([&sums](ipsc::IpscNode &self) -> Task<void> {
        int value = self.mynode();
        for (int dim = 0; dim < 3; ++dim) {
            std::vector<std::uint8_t> out(1, std::uint8_t(value));
            co_await self.csend(10 + dim, std::move(out),
                                self.neighbor(dim));
            auto in = co_await self.crecv(10 + dim);
            value += in[0];
        }
        sums[self.mynode()] = value;
    });
    eq.run();
    // Recursive doubling: every node ends with the sum 0+1+...+7.
    for (int n = 0; n < 8; ++n)
        EXPECT_EQ(sums[n], 28);
}

TEST_F(NectarineTest, IpscTypedReceiveOutOfOrder)
{
    build(2);
    ipsc::IpscSystem cube(*api, 2);
    std::vector<int> order;
    cube.load([&order](ipsc::IpscNode &self) -> Task<void> {
        if (self.mynode() == 0) {
            // Send type 5 first, then type 6.
            std::vector<std::uint8_t> a(1, 50);
            co_await self.csend(5, std::move(a), 1);
            std::vector<std::uint8_t> b(1, 60);
            co_await self.csend(6, std::move(b), 1);
        } else {
            // Receive type 6 FIRST: crecv must match by type, parking
            // the type-5 message.
            auto six = co_await self.crecv(6);
            order.push_back(six[0]);
            auto five = co_await self.crecv(5);
            order.push_back(five[0]);
        }
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{60, 50}));
}

// ----- Owner-cluster tagging (sim/owner.hh) -------------------------

TEST_F(NectarineTest, BuildersTagEveryComponentWithItsHubCluster)
{
    auto mesh = NectarSystem::mesh2D(eq, 2, 2, /*cabsPerHub=*/2);
    for (int h = 0; h < mesh->topo().numHubs(); ++h) {
        hub::Hub &hub = mesh->topo().hubAt(h);
        EXPECT_EQ(hub.ownerCluster(), h);
        EXPECT_EQ(hub.controller().ownerCluster(), h);
        for (int p = 0; p < hub.numPorts(); ++p)
            EXPECT_EQ(hub.port(p).ownerCluster(), h);
    }
    for (std::size_t i = 0; i < mesh->siteCount(); ++i) {
        CabSite &s = mesh->site(i);
        EXPECT_EQ(s.board->ownerCluster(), s.at.hubIndex);
        EXPECT_EQ(s.kernel->ownerCluster(), s.at.hubIndex);
        EXPECT_EQ(s.datalink->ownerCluster(), s.at.hubIndex);
        EXPECT_EQ(s.transport->ownerCluster(), s.at.hubIndex);
        // The board's owned hardware joins its cluster too.
        EXPECT_EQ(s.board->cpu().ownerCluster(), s.at.hubIndex);
        EXPECT_EQ(s.board->timers().ownerCluster(), s.at.hubIndex);
    }
}

TEST_F(NectarineTest, UntaggedComponentsPassOwnerChecks)
{
    auto mesh = NectarSystem::mesh2D(eq, 1, 2, /*cabsPerHub=*/1);
    cab::Cab &a = *mesh->site(0).board;
    cab::Cab &b = *mesh->site(1).board;
    ASSERT_NE(a.ownerCluster(), b.ownerCluster());
    EXPECT_FALSE(sim::sameOwnerCluster(a, b));
    EXPECT_TRUE(sim::sameOwnerCluster(a, a));
    // Fiber links are deliberately unowned: they are the sanctioned
    // crossings, so they co-locate with everything.
    ASSERT_NE(a.txLink(), nullptr);
    EXPECT_EQ(a.txLink()->ownerCluster(), sim::unownedCluster);
    EXPECT_TRUE(sim::sameOwnerCluster(*a.txLink(), b));
    // Components built outside a system stay unowned and unchecked.
    cab::Cab lone(eq, "lone");
    EXPECT_EQ(lone.ownerCluster(), sim::unownedCluster);
    EXPECT_TRUE(sim::sameOwnerCluster(lone, a));
}
