/**
 * @file
 * Node-layer tests: VME bus, the three CAB-node interfaces, and the
 * node-to-node latency goal of Section 2.3.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "nectarine/system.hh"
#include "node/interfaces.hh"
#include "node/netstack.hh"
#include "node/rawnet.hh"

using namespace nectar;
using namespace nectar::node;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using sim::ticks::ms;
using sim::ticks::us;

namespace {

std::vector<std::uint8_t>
iotaBytes(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), std::uint8_t(0));
    return v;
}

} // namespace

TEST(VmeBus, TenMegabytesPerSecond)
{
    sim::EventQueue eq;
    VmeBus vme(eq, "vme");
    Tick done = vme.transfer(1000);
    EXPECT_EQ(done, 100 * us); // 1000 B at 100 ns/B
    // A second transfer queues behind the first.
    Tick done2 = vme.transfer(1000);
    EXPECT_EQ(done2, 200 * us);
    EXPECT_EQ(vme.bytesTransferred(), 2000u);
}

TEST(NodeModel, InterruptChargesHostCpu)
{
    sim::EventQueue eq;
    Node n(eq, "node");
    Tick fired = -1;
    n.raiseInterrupt([&] { fired = eq.now(); });
    eq.run();
    EXPECT_EQ(fired, n.costs().interrupt);
    EXPECT_EQ(n.interruptsTaken(), 1u);
}

class NodeIfTest : public ::testing::Test
{
  protected:
    void
    build()
    {
        sys = NectarSystem::singleHub(eq, 2);
        nodeA = std::make_unique<Node>(eq, "nodeA");
        nodeB = std::make_unique<Node>(eq, "nodeB");
    }

    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;
    std::unique_ptr<Node> nodeA, nodeB;
};

TEST_F(NodeIfTest, SharedMemorySendAndPollReceive)
{
    build();
    SharedMemoryInterface shmA(*nodeA, sys->site(0));
    SharedMemoryInterface shmB(*nodeB, sys->site(1));
    sys->site(1).kernel->createMailbox("in", 64 * 1024, 10);

    auto data = iotaBytes(256);
    bool sent = false;
    std::vector<std::uint8_t> got;

    sim::spawn([](SharedMemoryInterface &shm,
                  std::vector<std::uint8_t> data,
                  bool &sent) -> Task<void> {
        sent = co_await shm.send(2, 10, std::move(data));
    }(shmA, data, sent));
    sim::spawn([](SharedMemoryInterface &shm,
                  std::vector<std::uint8_t> &got) -> Task<void> {
        auto m = co_await shm.receive(10);
        got = m.bytes();
    }(shmB, got));
    eq.run();

    EXPECT_TRUE(sent);
    EXPECT_EQ(got, data);
    EXPECT_GT(shmB.pollCycles(), 0u);
    // No syscalls or interrupts on either node.
    EXPECT_EQ(nodeA->interruptsTaken(), 0u);
    EXPECT_EQ(nodeB->interruptsTaken(), 0u);
}

TEST_F(NodeIfTest, NodeToNodeLatencyUnderHundredMicroseconds)
{
    // Section 2.3: "the corresponding latency for processes residing
    // in nodes should be under 100 microseconds."
    build();
    SharedMemoryInterface shmA(*nodeA, sys->site(0));
    SharedMemoryInterface shmB(*nodeB, sys->site(1));
    sys->site(1).kernel->createMailbox("in", 4096, 10);

    const Tick start = 1 * ms;
    Tick received = -1;
    sim::spawn([](sim::EventQueue &eq, SharedMemoryInterface &shm,
                  Tick start) -> Task<void> {
        co_await sim::Delay{eq, start};
        std::vector<std::uint8_t> msg(64, 1);
        co_await shm.send(2, 10, std::move(msg), /*reliable=*/false);
    }(eq, shmA, start));
    sim::spawn([](sim::EventQueue &eq, SharedMemoryInterface &shm,
                  Tick &received) -> Task<void> {
        co_await shm.receive(10);
        received = eq.now();
    }(eq, shmB, received));
    eq.run();

    ASSERT_GT(received, 0);
    EXPECT_LT(received - start, 100 * us);
}

TEST_F(NodeIfTest, SocketSendAndBlockingReceive)
{
    build();
    SocketInterface sockA(*nodeA, sys->site(0));
    SocketInterface sockB(*nodeB, sys->site(1));
    sys->site(1).kernel->createMailbox("in", 64 * 1024, 10);

    auto data = iotaBytes(1000);
    bool sent = false;
    std::vector<std::uint8_t> got;
    sim::spawn([](SocketInterface &sock, std::vector<std::uint8_t> data,
                  bool &sent) -> Task<void> {
        sent = co_await sock.send(2, 10, std::move(data));
    }(sockA, data, sent));
    sim::spawn([](SocketInterface &sock,
                  std::vector<std::uint8_t> &got) -> Task<void> {
        auto m = co_await sock.receive(10);
        got = m.bytes();
    }(sockB, got));
    eq.run();

    EXPECT_TRUE(sent);
    EXPECT_EQ(got, data);
    // The blocking receive was woken by a VME interrupt.
    EXPECT_GE(nodeB->interruptsTaken(), 1u);
}

TEST_F(NodeIfTest, NetworkDriverStackRoundTrip)
{
    build();
    NectarRawNet nicA(*nodeA, sys->site(0), sys->directory());
    NectarRawNet nicB(*nodeB, sys->site(1), sys->directory());
    NodeNetStack stackA(*nodeA, nicA);
    NodeNetStack stackB(*nodeB, nicB);

    auto data = iotaBytes(5000);
    bool sent = false;
    std::vector<std::uint8_t> got;
    sim::spawn([](NodeNetStack &s, std::vector<std::uint8_t> data,
                  bool &sent) -> Task<void> {
        sent = co_await s.sendMessage(2, 7, std::move(data));
    }(stackA, data, sent));
    sim::spawn([](NodeNetStack &s,
                  std::vector<std::uint8_t> &got) -> Task<void> {
        got = co_await s.receive(7);
    }(stackB, got));
    eq.run();

    EXPECT_TRUE(sent);
    EXPECT_EQ(got, data);
    // Every data and ack packet interrupted the receiving host.
    EXPECT_GT(nodeB->interruptsTaken(), 5u);
    EXPECT_GT(nodeA->interruptsTaken(), 5u);
}

TEST_F(NodeIfTest, InterfaceLatencyOrdering)
{
    // Section 6.2.3's tradeoff: shared memory < socket < network
    // driver in end-to-end latency.
    auto measure = [&](int which) -> Tick {
        sim::EventQueue local_eq;
        auto local_sys = NectarSystem::singleHub(local_eq, 2);
        Node a(local_eq, "a"), b(local_eq, "b");
        local_sys->site(1).kernel->createMailbox("in", 64 * 1024, 10);
        const Tick start = 1 * ms;
        Tick received = -1;
        auto data = iotaBytes(256);

        if (which == 0) {
            auto shmA = std::make_shared<SharedMemoryInterface>(
                a, local_sys->site(0));
            auto shmB = std::make_shared<SharedMemoryInterface>(
                b, local_sys->site(1));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SharedMemoryInterface> shm,
                          std::vector<std::uint8_t> data,
                          Tick start) -> Task<void> {
                co_await sim::Delay{eq, start};
                co_await shm->send(2, 10, std::move(data), false);
            }(local_eq, shmA, data, start));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SharedMemoryInterface> shm,
                          Tick &received) -> Task<void> {
                co_await shm->receive(10);
                received = eq.now();
            }(local_eq, shmB, received));
            local_eq.run();
        } else if (which == 1) {
            auto sockA = std::make_shared<SocketInterface>(
                a, local_sys->site(0));
            auto sockB = std::make_shared<SocketInterface>(
                b, local_sys->site(1));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SocketInterface> sock,
                          std::vector<std::uint8_t> data,
                          Tick start) -> Task<void> {
                co_await sim::Delay{eq, start};
                co_await sock->send(2, 10, std::move(data), false);
            }(local_eq, sockA, data, start));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SocketInterface> sock,
                          Tick &received) -> Task<void> {
                co_await sock->receive(10);
                received = eq.now();
            }(local_eq, sockB, received));
            local_eq.run();
        } else {
            auto nicA = std::make_shared<NectarRawNet>(
                a, local_sys->site(0), local_sys->directory());
            auto nicB = std::make_shared<NectarRawNet>(
                b, local_sys->site(1), local_sys->directory());
            auto stackA = std::make_shared<NodeNetStack>(a, *nicA);
            auto stackB = std::make_shared<NodeNetStack>(b, *nicB);
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<NodeNetStack> s,
                          [[maybe_unused]] std::shared_ptr<NectarRawNet> nic,
                          std::vector<std::uint8_t> data,
                          Tick start) -> Task<void> {
                co_await sim::Delay{eq, start};
                co_await s->sendMessage(2, 10, std::move(data));
            }(local_eq, stackA, nicA, data, start));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<NodeNetStack> s,
                          [[maybe_unused]] std::shared_ptr<NectarRawNet> nic,
                          Tick &received) -> Task<void> {
                co_await s->receive(10);
                received = eq.now();
            }(local_eq, stackB, nicB, received));
            local_eq.run();
        }
        return received - start;
    };

    Tick shm = measure(0);
    Tick sock = measure(1);
    Tick drv = measure(2);
    EXPECT_LT(shm, sock);
    EXPECT_LT(sock, drv);
}
