/**
 * @file
 * A minimal fiber endpoint for HUB-level tests: records everything it
 * receives and can inject raw command/packet streams, standing in for
 * a CAB's fiber interface.
 */

#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "hub/commands.hh"
#include "phys/fiber.hh"
#include "phys/wire.hh"
#include "sim/event_queue.hh"

namespace nectar::test {

using phys::ItemKind;
using phys::WireItem;

/** Records deliveries; sends raw streams. */
class TestEndpoint : public phys::FiberSink
{
  public:
    struct Rx
    {
        WireItem item;
        sim::Tick firstByte;
        sim::Tick lastByte;
    };

    explicit TestEndpoint(sim::EventQueue &eq) : eq(eq) {}

    /** Attach the link this endpoint transmits on (toward its HUB). */
    void attachTx(phys::FiberLink &link) { tx = &link; }

    phys::FiberLink *txLink() { return tx; }

    /**
     * If true (default), acknowledge each received start-of-packet
     * with a ready signal, as a CAB whose input queue drains promptly
     * would.
     */
    bool autoReady = true;

    void
    fiberDeliver(WireItem item, sim::Tick firstByte,
                 sim::Tick lastByte) override
    {
        received.push_back(Rx{item, firstByte, lastByte});
        if (item.kind == ItemKind::startOfPacket && autoReady && tx)
            tx->sendStolen(WireItem::ready());
    }

    // --- Senders ---------------------------------------------------

    void
    sendCommand(hub::Op op, std::uint8_t hubId, std::uint8_t param)
    {
        tx->send(WireItem::command(static_cast<std::uint8_t>(op),
                                   hubId, param));
    }

    /** Send SOP + payload + EOP, optionally followed by closeAll. */
    void
    sendPacket(std::vector<std::uint8_t> payload,
               bool closeAllAfter = false, std::uint8_t hubId = 0,
               std::uint32_t chunkBytes = 256)
    {
        tx->send(WireItem::startPacket());
        auto p = phys::makePayload(std::move(payload));
        std::uint32_t size = static_cast<std::uint32_t>(p.size());
        for (std::uint32_t off = 0; off < size; off += chunkBytes) {
            std::uint32_t len = std::min(chunkBytes, size - off);
            tx->send(WireItem::dataChunk(p, off, len));
        }
        tx->send(WireItem::endPacket());
        if (closeAllAfter) {
            tx->send(WireItem::command(
                static_cast<std::uint8_t>(hub::Op::closeAll), hubId,
                0));
        }
    }

    // --- Inspection ------------------------------------------------

    std::size_t
    countKind(ItemKind kind) const
    {
        std::size_t n = 0;
        for (const auto &r : received)
            if (r.item.kind == kind)
                ++n;
        return n;
    }

    /** Total data bytes received. */
    std::uint64_t
    dataBytes() const
    {
        std::uint64_t n = 0;
        for (const auto &r : received)
            if (r.item.kind == ItemKind::data)
                n += r.item.dataLen;
        return n;
    }

    /** Reassemble all received data bytes in order. */
    std::vector<std::uint8_t>
    collectData() const
    {
        std::vector<std::uint8_t> out;
        for (const auto &r : received) {
            if (r.item.kind != ItemKind::data)
                continue;
            // Each chunk's view is already the slice it carries.
            r.item.data.forEachSegment(
                [&](const std::uint8_t *p, std::size_t n) {
                    out.insert(out.end(), p, p + n);
                });
        }
        return out;
    }

    /** All replies received, in order. */
    std::vector<phys::ReplyWord>
    replies() const
    {
        std::vector<phys::ReplyWord> out;
        for (const auto &r : received)
            if (r.item.kind == ItemKind::reply)
                out.push_back(r.item.reply);
        return out;
    }

    /** First-byte arrival tick of the i-th item of the given kind. */
    sim::Tick
    arrivalOf(ItemKind kind, std::size_t index = 0) const
    {
        std::size_t seen = 0;
        for (const auto &r : received) {
            if (r.item.kind == kind) {
                if (seen == index)
                    return r.firstByte;
                ++seen;
            }
        }
        return -1;
    }

    std::vector<Rx> received;

  private:
    sim::EventQueue &eq;
    phys::FiberLink *tx = nullptr;
};

} // namespace nectar::test
