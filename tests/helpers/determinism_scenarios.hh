/**
 * @file
 * The three canonical determinism scenarios, shared between the
 * same-seed reproducibility harness (test_determinism.cc) and the
 * golden-fingerprint test (test_golden_fingerprint.cc).
 *
 * Each scenario is a compact replica of a tier-1 benchmark workload
 * (the E9 packet pipeline and the C1/C2 collectives from bench/) and
 * returns the event-trace Trace of one run — the rolling FNV-1a hash
 * the EventQueue folds over (when, priority, sequence) of every
 * executed event, plus the executed count and end-of-sim tick.
 * Keeping the scenarios in one header means the reproducibility and
 * golden tests can never drift apart.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collectives/communicator.hh"
#include "collectives/group.hh"
#include "nectarine/nectarine.hh"
#include "node/node.hh"
#include "sim/coro.hh"
#include "sim/parallel.hh"
#include "topo/description.hh"
#include "workload/allreduce.hh"

// nectar-lint-file: capture-ok test frames drive eq.run() to
// completion before any captured locals leave scope

namespace nectar::testutil {

/** What one scenario run looked like, trace-wise. */
struct Trace
{
    std::uint64_t fingerprint = 0;
    std::uint64_t executed = 0;
    sim::Tick end = 0;

    bool
    operator==(const Trace &o) const
    {
        return fingerprint == o.fingerprint && executed == o.executed &&
               end == o.end;
    }
};

/**
 * Scenario body shared by the classic single-queue run and the
 * parallel-engine run: @p eq is the queue the workload endpoints live
 * on (cluster 0's shard under the parallel engine) and @p run drains
 * the whole assembly.
 */
inline Trace
packetPipelineOn(sim::EventQueue &eq, nectarine::NectarSystem &sysRef,
                 std::uint32_t totalBytes,
                 const std::function<void()> &run)
{
    using sim::Task;

    auto *sys = &sysRef;
    node::Node src(eq, "src"), dst(eq, "dst");
    auto &mb = sys->site(1).kernel->createMailbox("in", 2 << 20, 10);

    const std::uint32_t chunk = 896;
    sim::spawn([](cabos::Mailbox &mb, node::Node &dst,
                  std::uint32_t total) -> Task<void> {
        std::uint32_t got = 0;
        while (got < total) {
            auto m = co_await mb.get();
            got += static_cast<std::uint32_t>(m.size());
            co_await dst.vme().transferAwait(
                static_cast<std::uint32_t>(m.size()));
        }
    }(mb, dst, totalBytes));

    sim::spawn([](sim::EventQueue &eq, node::Node &src,
                  transport::Transport &tp, std::uint32_t total,
                  std::uint32_t chunk) -> Task<void> {
        std::uint32_t sent = 0;
        sim::Channel<bool> window(eq);
        int inflight = 0;
        while (sent < total) {
            std::uint32_t n = std::min(chunk, total - sent);
            sent += n;
            co_await src.vme().transferAwait(n);
            ++inflight;
            sim::spawn([](transport::Transport &tp, std::uint32_t n,
                          sim::Channel<bool> &window,
                          int &inflight) -> Task<void> {
                co_await tp.sendReliable(
                    2, 10, std::vector<std::uint8_t>(n, 1));
                --inflight;
                window.push(true);
            }(tp, n, window, inflight));
            while (inflight >= 4)
                co_await window.pop();
        }
        while (inflight > 0)
            co_await window.pop();
    }(eq, src, *sys->site(0).transport, totalBytes, chunk));

    run();
    return Trace{eq.fingerprint(), eq.executedCount(), eq.now()};
}

/** E9 replica: pipelined node-to-node transfer over one HUB. */
inline Trace
packetPipelineOnce(std::uint32_t totalBytes)
{
    sim::copyStats().reset();
    sim::BufferArena::instance().resetStats();
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, 2);
    return packetPipelineOn(eq, *sys, totalBytes, [&] { eq.run(); });
}

/** packetPipelineOnce() on the parallel engine (one cluster: the
 *  epoch protocol must reproduce the legacy trace byte-for-byte). */
inline Trace
packetPipelineThreads(std::uint32_t totalBytes, int threads)
{
    sim::copyStats().reset();
    sim::BufferArena::instance().resetStats();
    sim::ParallelEngine engine(1, threads);
    auto sys = nectarine::NectarSystem::fromDescription(
        engine, topo::describeSingleHub(
                    2, nectarine::NectarSystem::defaultHubConfig()
                           .numPorts));
    return packetPipelineOn(engine.queueFor(0), *sys, totalBytes,
                            [&] { engine.run(); });
}

/** Broadcast scenario body (see packetPipelineOn for the contract). */
inline Trace
broadcastOn(sim::EventQueue &eq, nectarine::NectarSystem &sysRef,
            int members, std::uint32_t bytes,
            const std::function<void()> &run)
{
    using nectarine::TaskContext;
    using sim::Task;

    auto *sys = &sysRef;
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    auto gid = std::make_shared<collective::GroupId>(0);
    auto *groupsp = &groups;
    std::vector<nectarine::TaskId> ids;
    for (int r = 0; r < members; ++r) {
        ids.push_back(api.createTask(
            static_cast<std::size_t>(r), "bc" + std::to_string(r),
            [gid, groupsp, bytes](TaskContext &ctx) -> Task<void> {
                collective::Communicator comm(ctx, *groupsp, *gid,
                                              {});
                std::vector<std::uint8_t> data;
                if (comm.rank() == 0)
                    data.assign(bytes, 0xAB);
                co_await comm.broadcast(0, data);
            }));
    }
    *gid = groups.create("bcast", ids);
    run();
    return Trace{eq.fingerprint(), eq.executedCount(), eq.now()};
}

/** C1 replica: broadcast to a group over hardware multicast. */
inline Trace
broadcastOnce(int members, std::uint32_t bytes)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, members);
    return broadcastOn(eq, *sys, members, bytes, [&] { eq.run(); });
}

/** broadcastOnce() on the parallel engine. */
inline Trace
broadcastThreads(int members, std::uint32_t bytes, int threads)
{
    sim::ParallelEngine engine(1, threads);
    auto sys = nectarine::NectarSystem::fromDescription(
        engine,
        topo::describeSingleHub(
            members,
            nectarine::NectarSystem::defaultHubConfig().numPorts));
    return broadcastOn(engine.queueFor(0), *sys, members, bytes,
                       [&] { engine.run(); });
}

/** Allreduce scenario body (see packetPipelineOn for the contract). */
inline Trace
allreduceOn(sim::EventQueue &eq, nectarine::NectarSystem &sys,
            int members, std::uint32_t bytes, int rounds,
            const std::function<void()> &run)
{
    nectarine::Nectarine api(sys);
    collective::GroupDirectory groups;
    workload::AllreduceConfig cfg;
    cfg.members = members;
    cfg.bytes = bytes;
    cfg.rounds = rounds;
    std::vector<std::size_t> sites(static_cast<std::size_t>(members));
    for (int i = 0; i < members; ++i)
        sites[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(i);
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    run();
    sim::simAssert(w.report().okMembers == members,
                   "allreduce scenario must complete on all members");
    return Trace{eq.fingerprint(), eq.executedCount(), eq.now()};
}

/** C2 replica: a short allreduce over the collectives subsystem. */
inline Trace
allreduceOnce(int members, std::uint32_t bytes, int rounds)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, members);
    return allreduceOn(eq, *sys, members, bytes, rounds,
                       [&] { eq.run(); });
}

/** allreduceOnce() on the parallel engine. */
inline Trace
allreduceThreads(int members, std::uint32_t bytes, int rounds,
                 int threads)
{
    sim::ParallelEngine engine(1, threads);
    auto sys = nectarine::NectarSystem::fromDescription(
        engine,
        topo::describeSingleHub(
            members,
            nectarine::NectarSystem::defaultHubConfig().numPorts));
    return allreduceOn(engine.queueFor(0), *sys, members, bytes,
                       rounds, [&] { engine.run(); });
}

} // namespace nectar::testutil
