/**
 * @file
 * The seed discrete-event queue, frozen as a reference model.
 *
 * This is the pre-overhaul `sim::EventQueue` representation —
 * `std::priority_queue<Entry>` of owning `std::function` entries plus
 * an `unordered_set` of live ids — kept verbatim (modulo the name) so
 * that:
 *
 *  - `test_golden_fingerprint.cc` can drive the production engine and
 *    this model with an identical schedule/cancel workload and assert
 *    the two event-trace fingerprints match bit-for-bit, and
 *  - `bench_engine` can report the production engine's throughput as
 *    a ratio over the seed representation on the same machine.
 *
 * Do not "improve" this file: its value is that it stays the seed.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh" // sim::EventPriority
#include "sim/logging.hh"
#include "sim/types.hh"

namespace nectar::testutil {

/** The seed engine's (tick, priority, sequence) scheduler. */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;

    LegacyEventQueue() = default;

    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    sim::Tick now() const { return _now; }

    EventId
    schedule(sim::Tick when, std::function<void()> fn,
             sim::EventPriority prio = sim::EventPriority::normal)
    {
        if (when < _now)
            sim::panic("LegacyEventQueue::schedule: scheduling in "
                       "the past");
        if (!fn)
            sim::panic("LegacyEventQueue::schedule: empty callback");

        EventId id = nextId++;
        heap.push(Entry{when, static_cast<int>(prio), id,
                        std::move(fn)});
        live.insert(id);
        return id;
    }

    EventId
    scheduleIn(sim::Tick delay, std::function<void()> fn,
               sim::EventPriority prio = sim::EventPriority::normal)
    {
        return schedule(_now + delay, std::move(fn), prio);
    }

    bool cancel(EventId id) { return live.erase(id) > 0; }

    bool pending(EventId id) const { return live.count(id) > 0; }

    std::size_t pendingCount() const { return live.size(); }

    bool empty() const { return pendingCount() == 0; }

    std::uint64_t
    run(std::uint64_t limit = 500'000'000)
    {
        std::uint64_t n = 0;
        while (n < limit && step())
            ++n;
        return n;
    }

    std::uint64_t executedCount() const { return _executed; }

    std::uint64_t fingerprint() const { return _fingerprint; }

  private:
    struct Entry {
        sim::Tick when;
        int prio;
        EventId id;
        std::function<void()> fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    bool
    step()
    {
        while (!heap.empty()) {
            Entry e = heap.top();
            heap.pop();
            if (!live.erase(e.id))
                continue; // cancelled
            _now = e.when;
            ++_executed;
            mixFingerprint(static_cast<std::uint64_t>(e.when));
            mixFingerprint(static_cast<std::uint64_t>(e.prio));
            mixFingerprint(e.id);
            e.fn();
            return true;
        }
        return false;
    }

    void
    mixFingerprint(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _fingerprint ^= (v >> (8 * i)) & 0xffU;
            _fingerprint *= 0x100000001b3ULL;
        }
    }

    sim::Tick _now = 0;
    EventId nextId = 1;
    std::uint64_t _executed = 0;
    std::uint64_t _fingerprint = 0xcbf29ce484222325ULL; // FNV offset
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::unordered_set<EventId> live;
};

} // namespace nectar::testutil
