/**
 * @file
 * Buffer / PacketView edge cases, plus an end-to-end determinism
 * fingerprint: the zero-copy packet path must produce the exact
 * trace the copying implementation did for a no-fault run.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cab/checksum.hh"
#include "nectarine/system.hh"
#include "sim/buffer.hh"
#include "sim/coro.hh"
#include "sim/stats.hh"

using namespace nectar;
using sim::Buffer;
using sim::PacketView;

namespace {

std::vector<std::uint8_t>
iotaBytes(std::size_t n, std::uint8_t start = 0)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), start);
    return v;
}

} // namespace

// ----- Construction and slicing ---------------------------------------

TEST(PacketView, EmptyViewIsEmpty)
{
    PacketView v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.segmentCount(), 0u);
    EXPECT_TRUE(v.toVector().empty());
}

TEST(PacketView, EmptyVectorMakesEmptyView)
{
    PacketView v{std::vector<std::uint8_t>{}};
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.segmentCount(), 0u);
}

TEST(PacketView, ZeroLengthSliceIsEmpty)
{
    PacketView v{iotaBytes(16)};
    auto s = v.slice(4, 0);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.segmentCount(), 0u);
    // Zero-length slice at the very end and past the end both clamp.
    EXPECT_TRUE(v.slice(16).empty());
    EXPECT_TRUE(v.slice(99).empty());
    EXPECT_TRUE(v.slice(99, 5).empty());
}

TEST(PacketView, SliceClampsToEnd)
{
    PacketView v{iotaBytes(10)};
    auto s = v.slice(6, 100);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_TRUE(s.equals({6, 7, 8, 9}));
}

TEST(PacketView, SliceOfSliceComposes)
{
    PacketView v{iotaBytes(100)};
    auto s = v.slice(10, 50).slice(5, 10);
    EXPECT_TRUE(s.equals(iotaBytes(10, 15)));
}

TEST(PacketView, SliceSharesBufferNoCopy)
{
    auto before = sim::copyStats().bytesCopied;
    PacketView v{iotaBytes(1000)};
    auto a = v.slice(0, 500);
    auto b = v.slice(500);
    auto c = PacketView::concat(a, b);
    EXPECT_EQ(c.size(), 1000u);
    // Slicing and chaining moved no payload bytes.
    EXPECT_EQ(sim::copyStats().bytesCopied, before);
}

// ----- Chaining: header prepend and fragment reassembly ----------------

TEST(PacketView, PrependAndReassemblyRoundTrip)
{
    // Fragment a message, prepend a header to each fragment, then
    // strip headers and reassemble — the classic transport path.
    auto msg = iotaBytes(200, 1);
    PacketView whole{msg};

    std::vector<PacketView> wire;
    const std::size_t frag = 64;
    for (std::size_t off = 0; off < whole.size(); off += frag) {
        auto payload = whole.slice(off, frag);
        PacketView hdr{std::vector<std::uint8_t>{0xAA, 0xBB}};
        wire.push_back(PacketView::concat(hdr, payload));
    }

    PacketView assembled;
    for (const auto &pkt : wire) {
        EXPECT_EQ(pkt[0], 0xAA);
        EXPECT_EQ(pkt[1], 0xBB);
        assembled.append(pkt.slice(2));
    }
    EXPECT_TRUE(assembled.equals(msg));
}

TEST(PacketView, AdjacentSlicesCoalesce)
{
    PacketView v{iotaBytes(100)};
    PacketView out;
    // Appending contiguous slices of one buffer collapses into a
    // single segment (re-chaining fragments of the same message).
    out.append(v.slice(0, 40));
    out.append(v.slice(40, 60));
    EXPECT_EQ(out.segmentCount(), 1u);
    EXPECT_TRUE(out.equals(iotaBytes(100)));
    // Non-adjacent slices stay separate segments.
    PacketView gap;
    gap.append(v.slice(0, 10));
    gap.append(v.slice(20, 10));
    EXPECT_EQ(gap.segmentCount(), 2u);
}

TEST(PacketView, ReadStraddlesSegments)
{
    PacketView v = PacketView::concat(PacketView{iotaBytes(5)},
                                      PacketView{iotaBytes(5, 5)});
    std::uint8_t buf[10] = {};
    v.read(2, buf, 6); // crosses the segment boundary at offset 5
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(buf[i], i + 2);
}

TEST(PacketView, WholeBufferEscapeHatch)
{
    PacketView v{iotaBytes(32)};
    ASSERT_NE(v.wholeBuffer(), nullptr);
    EXPECT_EQ(v.wholeBuffer()->size(), 32u);
    // A strict sub-slice is not a whole buffer.
    EXPECT_EQ(v.slice(1).wholeBuffer(), nullptr);
    // A chained view is not a whole buffer.
    auto chained = PacketView::concat(v, PacketView{iotaBytes(4)});
    EXPECT_EQ(chained.wholeBuffer(), nullptr);
}

// ----- Corruption propagation ------------------------------------------

TEST(PacketView, CorruptionPropagatesThroughSlicing)
{
    PacketView v{iotaBytes(64)};
    EXPECT_FALSE(v.corrupted());
    v.markCorrupted();
    EXPECT_TRUE(v.corrupted());
    EXPECT_TRUE(v.slice(0, 8).corrupted());
    EXPECT_TRUE(v.slice(8).slice(2).corrupted());
}

TEST(PacketView, CorruptionPropagatesThroughChaining)
{
    PacketView clean{iotaBytes(8)};
    PacketView bad{iotaBytes(8)};
    bad.markCorrupted();
    // Taint spreads whichever side carries it.
    EXPECT_TRUE(PacketView::concat(clean, bad).corrupted());
    EXPECT_TRUE(PacketView::concat(bad, clean).corrupted());
    EXPECT_FALSE(PacketView::concat(clean, clean).corrupted());
    // markCorrupted(false) never clears an existing taint.
    bad.markCorrupted(false);
    EXPECT_TRUE(bad.corrupted());
}

// ----- Copy accounting --------------------------------------------------

TEST(PacketView, MaterializationIsCountedReadsAreNot)
{
    PacketView v{iotaBytes(100)};
    auto base = sim::copyStats();

    std::uint8_t hdr[8];
    v.read(0, hdr, 8);    // header-register read: uncounted
    (void)v[50];          // byte peek: uncounted
    EXPECT_EQ(sim::copyStats().bytesCopied, base.bytesCopied);

    auto out = v.toVector(); // materialization: counted
    EXPECT_EQ(out.size(), 100u);
    EXPECT_EQ(sim::copyStats().bytesCopied, base.bytesCopied + 100);
    EXPECT_EQ(sim::copyStats().copyOps, base.copyOps + 1);
}

// ----- Streaming checksum equivalence ----------------------------------

TEST(ChecksumAccumulator, StreamingMatchesContiguous)
{
    auto bytes = iotaBytes(255, 3); // odd length: trailing byte pads
    auto expect = cab::checksum16(bytes.data(), bytes.size());

    // Feed in ragged pieces so byte pairs straddle feed() calls.
    cab::ChecksumAccumulator acc;
    std::size_t cuts[] = {1, 2, 7, 64, 100, 81};
    std::size_t off = 0;
    for (auto n : cuts) {
        acc.feed(bytes.data() + off, n);
        off += n;
    }
    ASSERT_EQ(off, bytes.size());
    EXPECT_EQ(acc.finish(), expect);

    // And via a multi-segment view.
    PacketView v;
    v.append(PacketView{iotaBytes(100, 3)});
    v.append(PacketView{iotaBytes(155, 103)});
    EXPECT_EQ(cab::checksum16(v), expect);
}

// ----- End-to-end determinism fingerprint ------------------------------

/**
 * A fixed no-fault scenario over a 3-CAB hub: reliable and datagram
 * sends of assorted sizes from two sites, received into mailboxes.
 * The constants below were captured from the pre-refactor (deep-copy)
 * packet path; the zero-copy path must reproduce them bit for bit.
 */
TEST(Determinism, GoldenFingerprintMatchesCopyingPath)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, 3);
    auto &mb1 = sys->site(1).kernel->createMailbox("in", 1 << 20, 10);
    auto &mb2 = sys->site(2).kernel->createMailbox("in", 1 << 20, 10);
    std::uint64_t sum = 0, got = 0;

    auto receiver = [](cabos::Mailbox &mb, int count, std::uint64_t &sum,
                       std::uint64_t &got) -> sim::Task<void> {
        for (int i = 0; i < count; ++i) {
            auto m = co_await mb.get();
            got += m.size();
            for (std::size_t b = 0; b < m.size(); ++b)
                sum += m.view()[b];
        }
    };
    sim::spawn(receiver(mb1, 4, sum, got));
    sim::spawn(receiver(mb2, 2, sum, got));

    sim::spawn([](transport::Transport &tp) -> sim::Task<void> {
        std::vector<std::uint8_t> big(10000);
        for (std::size_t i = 0; i < big.size(); ++i)
            big[i] = static_cast<std::uint8_t>(i * 7 + 3);
        co_await tp.sendReliable(2, 10, big);
        co_await tp.sendDatagram(2, 10,
                                 std::vector<std::uint8_t>(2500, 0x5a));
        co_await tp.sendReliable(3, 10,
                                 std::vector<std::uint8_t>(123, 0x11));
        co_await tp.sendReliable(2, 10,
                                 std::vector<std::uint8_t>(1, 0xff));
    }(*sys->site(0).transport));
    sim::spawn([](transport::Transport &tp) -> sim::Task<void> {
        co_await tp.sendReliable(2, 10,
                                 std::vector<std::uint8_t>(4000, 0x22));
        co_await tp.sendReliable(3, 10,
                                 std::vector<std::uint8_t>(900, 0x33));
    }(*sys->site(1).transport));

    eq.run();

    std::uint64_t pkts = 0, acks = 0, deliv = 0, rexmit = 0, crc = 0;
    for (int s = 0; s < 3; ++s) {
        auto &st = sys->site(s).transport->stats();
        pkts += st.packetsSent.value();
        acks += st.acksSent.value();
        deliv += st.messagesDelivered.value();
        rexmit += st.retransmissions.value();
        crc += st.checksumDrops.value();
    }

    // Golden values from the pre-refactor implementation.
    EXPECT_EQ(got, 17524u);
    EXPECT_EQ(sum, 1683094u);
    EXPECT_EQ(pkts, 45u);
    EXPECT_EQ(acks, 21u);
    EXPECT_EQ(deliv, 6u);
    EXPECT_EQ(rexmit, 0u);
    EXPECT_EQ(crc, 0u);
    EXPECT_EQ(eq.now(), 1206270);
}
