/**
 * @file
 * Unit tests for the PCG32 generator: determinism, distribution
 * sanity, and stream independence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

using namespace nectar::sim;

TEST(Random, DeterministicFromSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Random, DifferentStreamsDiverge)
{
    Random a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Random, BelowStaysInBound)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, BelowZeroPanics)
{
    Random r(7);
    EXPECT_THROW(r.below(0), PanicError);
}

TEST(Random, RangeInclusiveBounds)
{
    Random r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, RangeBackwardsPanics)
{
    Random r(7);
    EXPECT_THROW(r.range(3, -3), PanicError);
}

TEST(Random, UniformMeanNearHalf)
{
    Random r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, ChanceExtremes)
{
    Random r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, ChanceFrequencyMatchesP)
{
    Random r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Random, ExponentialMeanMatches)
{
    Random r(17);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double x = r.exponential(80.0);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 80.0, 2.0);
}

TEST(Random, ExponentialNonPositiveMeanPanics)
{
    Random r(17);
    EXPECT_THROW(r.exponential(0.0), PanicError);
    EXPECT_THROW(r.exponential(-1.0), PanicError);
}
