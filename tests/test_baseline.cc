/**
 * @file
 * Baseline LAN tests: CSMA/CD Ethernet behaviour and the node stack
 * over it, plus the Nectar-vs-LAN sanity check behind experiment E6.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/ethernet.hh"
#include "nectarine/system.hh"
#include "node/interfaces.hh"
#include "node/netstack.hh"

using namespace nectar;
using namespace nectar::baseline;
using namespace nectar::node;
using sim::Task;
using sim::Tick;
using sim::ticks::ms;
using sim::ticks::us;

TEST(Ethernet, DeliversFrameAtTenMegabits)
{
    sim::EventQueue eq;
    EthernetSegment seg(eq, "eth");
    Node a(eq, "a"), b(eq, "b");
    EthernetNic nicA(a, seg, 1), nicB(b, seg, 2);

    std::vector<std::uint8_t> got;
    nicB.rxRaw = [&](sim::PacketView &&f) {
        got = f.toVector();
    };

    std::vector<std::uint8_t> frame(100, 0x5A);
    bool sent = false;
    sim::spawn([](EthernetNic &nic, std::vector<std::uint8_t> frame,
                  bool &sent) -> Task<void> {
        sent = co_await nic.rawSend(2, std::move(frame));
    }(nicA, frame, sent));
    eq.run();

    EXPECT_TRUE(sent);
    EXPECT_EQ(got, frame);
    // (100 payload + 26 overhead) * 800 ns on the wire, then the
    // receive interrupt (50 us) before the host sees it.
    EXPECT_EQ(seg.framesCarried(), 1u);
    EXPECT_GT(b.interruptsTaken(), 0u);
}

TEST(Ethernet, MinimumFramePadding)
{
    sim::EventQueue eq;
    EthernetSegment seg(eq, "eth");
    Node a(eq, "a"), b(eq, "b");
    EthernetNic nicA(a, seg, 1), nicB(b, seg, 2);

    bool sent = false;
    sim::spawn([](EthernetNic &nic, bool &sent) -> Task<void> {
        std::vector<std::uint8_t> tiny(1, 9);
        sent = co_await nic.rawSend(2, std::move(tiny));
    }(nicA, sent));
    eq.run();
    EXPECT_TRUE(sent);
    // Wire time reflects the 46-byte minimum + 26 overhead.
    EXPECT_EQ(seg.busyTicks(), (46 + 26) * 800 * sim::ticks::ns);
}

TEST(Ethernet, OversizedFrameIsFatal)
{
    sim::EventQueue eq;
    EthernetSegment seg(eq, "eth");
    Node a(eq, "a");
    EthernetNic nicA(a, seg, 1);
    EXPECT_THROW(
        sim::spawn([](EthernetNic &nic) -> Task<void> {
            std::vector<std::uint8_t> big(2000, 1);
            co_await nic.rawSend(2, std::move(big));
        }(nicA)),
        sim::PanicError);
}

TEST(Ethernet, UnknownDestinationDiesOnWire)
{
    sim::EventQueue eq;
    EthernetSegment seg(eq, "eth");
    Node a(eq, "a");
    EthernetNic nicA(a, seg, 1);
    bool sent = false;
    sim::spawn([](EthernetNic &nic, bool &sent) -> Task<void> {
        std::vector<std::uint8_t> frame(64, 2);
        sent = co_await nic.rawSend(99, std::move(frame));
    }(nicA, sent));
    eq.run();
    EXPECT_TRUE(sent); // carrier was seized; nobody answered
}

TEST(Ethernet, ContentionCausesDeferrals)
{
    sim::EventQueue eq;
    EthernetSegment seg(eq, "eth");
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<std::unique_ptr<EthernetNic>> nics;
    for (int i = 0; i < 4; ++i) {
        nodes.push_back(std::make_unique<Node>(
            eq, "n" + std::to_string(i)));
        nics.push_back(std::make_unique<EthernetNic>(
            *nodes[i], seg, static_cast<std::uint16_t>(i + 1)));
        nics[i]->rxRaw = [](sim::PacketView &&) {};
    }

    int done = 0;
    auto blaster = [](EthernetNic &nic, std::uint16_t dst,
                      int &done) -> Task<void> {
        for (int k = 0; k < 20; ++k) {
            std::vector<std::uint8_t> frame(1000, 3);
            co_await nic.rawSend(dst, std::move(frame));
        }
        ++done;
    };
    for (int i = 0; i < 4; ++i)
        sim::spawn(blaster(*nics[i],
                           static_cast<std::uint16_t>((i + 1) % 4 + 1),
                           done));
    eq.run();
    EXPECT_EQ(done, 4);
    std::uint64_t total_deferrals = 0;
    for (auto &nic : nics)
        total_deferrals += nic->deferrals();
    EXPECT_GT(total_deferrals, 0u);
    EXPECT_EQ(seg.framesCarried(), 80u);
}

TEST(Ethernet, NodeStackOverLanRoundTrip)
{
    sim::EventQueue eq;
    EthernetSegment seg(eq, "eth");
    Node a(eq, "a"), b(eq, "b");
    EthernetNic nicA(a, seg, 1), nicB(b, seg, 2);
    NodeNetStack stackA(a, nicA), stackB(b, nicB);

    std::vector<std::uint8_t> data(4000);
    std::iota(data.begin(), data.end(), std::uint8_t(0));
    bool sent = false;
    std::vector<std::uint8_t> got;
    sim::spawn([](NodeNetStack &s, std::vector<std::uint8_t> data,
                  bool &sent) -> Task<void> {
        sent = co_await s.sendMessage(2, 5, std::move(data));
    }(stackA, data, sent));
    sim::spawn([](NodeNetStack &s,
                  std::vector<std::uint8_t> &got) -> Task<void> {
        got = co_await s.receive(5);
    }(stackB, got));
    eq.run();
    EXPECT_TRUE(sent);
    EXPECT_EQ(got, data);
}

TEST(Ethernet, NectarBeatsLanByAnOrderOfMagnitude)
{
    // Section 3.1: "The Nectar-net offers at least an order of
    // magnitude improvement in bandwidth and latency over current
    // LANs."  Compare one-way small-message latency: Nectar
    // shared-memory interface vs the LAN with its node-resident
    // stack.
    const Tick start = 1 * ms;

    // --- Nectar side.
    Tick nectar_latency = 0;
    {
        sim::EventQueue eq;
        auto sys = nectarine::NectarSystem::singleHub(eq, 2);
        Node a(eq, "a"), b(eq, "b");
        SharedMemoryInterface shmA(a, sys->site(0));
        SharedMemoryInterface shmB(b, sys->site(1));
        sys->site(1).kernel->createMailbox("in", 4096, 10);
        Tick received = -1;
        sim::spawn([](sim::EventQueue &eq, SharedMemoryInterface &shm,
                      Tick start) -> Task<void> {
            co_await sim::Delay{eq, start};
            std::vector<std::uint8_t> msg(64, 1);
            co_await shm.send(2, 10, std::move(msg), false);
        }(eq, shmA, start));
        sim::spawn([](sim::EventQueue &eq, SharedMemoryInterface &shm,
                      Tick &received) -> Task<void> {
            co_await shm.receive(10);
            received = eq.now();
        }(eq, shmB, received));
        eq.run();
        nectar_latency = received - start;
    }

    // --- LAN side.
    Tick lan_latency = 0;
    {
        sim::EventQueue eq;
        EthernetSegment seg(eq, "eth");
        Node a(eq, "a"), b(eq, "b");
        EthernetNic nicA(a, seg, 1), nicB(b, seg, 2);
        NodeNetStack stackA(a, nicA), stackB(b, nicB);
        Tick received = -1;
        sim::spawn([](sim::EventQueue &eq, NodeNetStack &s,
                      Tick start) -> Task<void> {
            co_await sim::Delay{eq, start};
            std::vector<std::uint8_t> msg(64, 1);
            co_await s.sendMessage(2, 5, std::move(msg));
        }(eq, stackA, start));
        sim::spawn([](sim::EventQueue &eq, NodeNetStack &s,
                      Tick &received) -> Task<void> {
            co_await s.receive(5);
            received = eq.now();
        }(eq, stackB, received));
        eq.run();
        lan_latency = received - start;
    }

    EXPECT_GE(lan_latency, 10 * nectar_latency);
}
