/**
 * @file
 * Workload-library tests: probes and the Section 7 application
 * workloads run to completion with sane measurements.
 */

#include <gtest/gtest.h>

#include "nectarine/nectarine.hh"
#include "workload/halo.hh"
#include "workload/probes.hh"
#include "workload/production.hh"
#include "workload/traffic.hh"
#include "workload/vision.hh"

using namespace nectar;
using namespace nectar::workload;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using sim::ticks::us;

class WorkloadTest : public ::testing::Test
{
  protected:
    void
    build(int cabs)
    {
        sys = NectarSystem::singleHub(eq, cabs);
        api = std::make_unique<Nectarine>(*sys);
    }

    sim::EventQueue eq;
    std::unique_ptr<NectarSystem> sys;
    std::unique_ptr<Nectarine> api;
};

TEST_F(WorkloadTest, PingPongMeasuresRtt)
{
    build(2);
    PingPongConfig cfg;
    cfg.iterations = 50;
    PingPong pp(*api, 0, 1, cfg);
    eq.run();
    EXPECT_TRUE(pp.finished());
    EXPECT_EQ(pp.rtt().count(), 50u);
    // A 64-byte datagram round trip on one HUB: tens of microseconds.
    EXPECT_GT(pp.meanRttUs(), 10.0);
    EXPECT_LT(pp.meanRttUs(), 100.0);
}

TEST_F(WorkloadTest, PingPongReliableSlowerThanDatagram)
{
    build(2);
    PingPongConfig dg;
    dg.iterations = 30;
    PingPong ppd(*api, 0, 1, dg);
    eq.run();

    sim::EventQueue eq2;
    auto sys2 = NectarSystem::singleHub(eq2, 2);
    Nectarine api2(*sys2);
    PingPongConfig rel;
    rel.iterations = 30;
    rel.delivery = nectarine::Delivery::reliable;
    PingPong ppr(api2, 0, 1, rel);
    eq2.run();

    EXPECT_TRUE(ppd.finished());
    EXPECT_TRUE(ppr.finished());
    // The byte-stream protocol acknowledges; datagram does not.
    EXPECT_GT(ppr.meanRttUs(), ppd.meanRttUs() * 0.9);
}

TEST_F(WorkloadTest, StreamMeterReachesFiberScaleGoodput)
{
    build(2);
    StreamMeterConfig cfg;
    cfg.totalBytes = 2 << 20;
    StreamMeter sm(*api, 0, 1, cfg);
    eq.run();
    EXPECT_TRUE(sm.finished());
    EXPECT_EQ(sm.bytesDelivered(), cfg.totalBytes);
    // Fiber peak is 12.5 MB/s; protocol overheads cost some of it.
    EXPECT_GT(sm.megabytesPerSecond(), 4.0);
    EXPECT_LE(sm.megabytesPerSecond(), 12.5);
}

TEST_F(WorkloadTest, RandomTrafficDeliversEverythingUnloaded)
{
    build(4);
    RandomTrafficConfig cfg;
    cfg.messagesPerSite = 20;
    RandomTraffic rt(*api, cfg);
    eq.run();
    EXPECT_EQ(rt.sent(), 80u);
    EXPECT_EQ(rt.deliveryRate(), 1.0);
    EXPECT_EQ(rt.latency().count(), 80u);
}

TEST_F(WorkloadTest, VisionPipelineCompletes)
{
    build(6);
    VisionConfig cfg;
    cfg.frames = 4;
    cfg.frameBytes = 32 * 1024;
    cfg.queriesPerClient = 10;
    VisionWorkload vw(*api, 0, 1, {2, 3}, {4, 5}, cfg);
    eq.run();
    EXPECT_TRUE(vw.finished());
    EXPECT_EQ(vw.framesProcessed(), 4);
    EXPECT_EQ(vw.frameLatency().count(), 4u);
    EXPECT_EQ(vw.queriesAnswered(), 20);
    EXPECT_EQ(vw.queryLatency().count(), 20u);
    // Queries are small RPCs: sub-millisecond round trips.
    EXPECT_LT(vw.queryLatency().mean(), 1e6);
}

TEST_F(WorkloadTest, ProductionSystemProcessesTokens)
{
    build(4);
    ProductionConfig cfg;
    cfg.seedTokens = 16;
    cfg.maxTokens = 300;
    ProductionWorkload pw(*api, {0, 1, 2, 3}, cfg);
    eq.run();
    EXPECT_GE(pw.tokensProcessed(), cfg.seedTokens);
    EXPECT_LE(pw.tokensProcessed(), cfg.maxTokens);
    EXPECT_GT(pw.tokenLatency().count(), 0u);
    EXPECT_GT(pw.tokensPerMs(), 0.0);
}

TEST_F(WorkloadTest, HaloExchangeCompletesAllCells)
{
    build(4);
    HaloConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.iterations = 5;
    HaloExchange he(*api, {0, 1, 2, 3}, cfg);
    eq.run();
    EXPECT_TRUE(he.finished());
    EXPECT_EQ(he.completedCells(), 4);
    EXPECT_EQ(he.iterationTime().count(), 20u);
}
