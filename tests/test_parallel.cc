/**
 * @file
 * The parallel simulation core (DESIGN.md "Parallel engine"):
 * conservative lookahead derived from the topology, SPSC mailbox
 * ordering under real thread stress, drain detection with deliveries
 * in flight, and the two determinism contracts — per-shard traces
 * invariant across thread counts, and cluster fingerprints identical
 * between the parallel engine and the single-queue baseline.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "collectives/group.hh"
#include "nectarine/nectarine.hh"
#include "nectarine/system.hh"
#include "sim/parallel.hh"
#include "topo/description.hh"
#include "topo/topofile.hh"
#include "workload/allreduce.hh"

using namespace nectar;
using nectarine::NectarSystem;
using sim::ParallelEngine;
using sim::SequentialShardSet;
using sim::Tick;

namespace {

std::string
fabricPath()
{
    return std::string(NECTAR_FABRIC_DIR) + "/fabric16.topo";
}

/** 2x2 mesh, one CAB per HUB: the smallest fabric where every
 *  cluster pair exchanges trunk traffic. */
topo::TopologyDescription
smallMesh()
{
    return topo::describeMesh2D(
        2, 2, 1, 0, NectarSystem::defaultHubConfig().numPorts);
}

/** Outcome of one allreduce run on a 4-cluster mesh: everything a
 *  determinism comparison needs. */
struct MeshRun
{
    std::vector<std::uint64_t> clusterTrace; ///< trace().cluster(c)
    std::vector<std::uint64_t> shardFp;      ///< per-shard queue fp
    std::vector<Tick> shardNow;              ///< per-shard end clock
    std::uint64_t combined = 0;              ///< trace().combined()
    std::uint64_t workloadFp = 0;
    std::uint64_t executed = 0;
    std::uint64_t epochs = 0;
};

/** Run the 4-member allreduce over @p shards and read the traces
 *  back through @p engine-specific accessors. */
template <typename RunFn>
MeshRun
meshAllreduce(sim::ShardSet &shards, const RunFn &run)
{
    auto sys = NectarSystem::fromDescription(shards, smallMesh());
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    workload::AllreduceConfig cfg;
    cfg.members = 4;
    cfg.bytes = 512;
    cfg.rounds = 2;
    workload::AllreduceWorkload w(api, groups, {0, 1, 2, 3}, cfg);
    run();

    MeshRun r;
    const auto rep = w.report();
    EXPECT_EQ(rep.okMembers, 4);
    r.workloadFp = rep.fingerprint;
    for (int c = 0; c < shards.clusters(); ++c)
        r.clusterTrace.push_back(shards.trace().cluster(c));
    r.combined = shards.trace().combined();
    return r;
}

MeshRun
meshAllreduceSequential()
{
    sim::EventQueue eq;
    SequentialShardSet shards(eq, 4);
    MeshRun r = meshAllreduce(shards, [&] { eq.run(); });
    r.executed = eq.executedCount();
    return r;
}

MeshRun
meshAllreduceParallel(int threads)
{
    ParallelEngine engine(4, threads);
    MeshRun r = meshAllreduce(engine, [&] { engine.run(); });
    r.executed = engine.executedCount();
    r.epochs = engine.epochs();
    for (int c = 0; c < 4; ++c) {
        r.shardFp.push_back(engine.shardFingerprint(c));
        r.shardNow.push_back(engine.queueFor(c).now());
    }
    return r;
}

} // namespace

// --------------------------------------------------------------------
// Lookahead.
// --------------------------------------------------------------------

TEST(Lookahead, TrackerAccumulatesTheMinimum)
{
    sim::LookaheadTracker t;
    EXPECT_EQ(t.value(), sim::LookaheadTracker::unbounded);
    EXPECT_FALSE(t.boundedWindow());
    t.note(500);
    t.note(80);
    t.note(1200);
    EXPECT_EQ(t.value(), 80);
    EXPECT_TRUE(t.boundedWindow());
}

TEST(Lookahead, EpochEndSaturates)
{
    EXPECT_EQ(sim::epochEnd(100, 80), 180);
    // Unbounded lookahead (no trunks): the epoch covers everything.
    EXPECT_EQ(sim::epochEnd(100, sim::LookaheadTracker::unbounded),
              sim::LookaheadTracker::unbounded);
}

TEST(Lookahead, DerivedFromTopologyTrunks)
{
    // Two HUBs, one trunk with 500 ns of fiber: the earliest
    // cross-cluster influence is one byte time plus the propagation
    // delay, identically accounted by both assemblies.
    topo::TopologyDescription d;
    d.hubs.resize(2);
    d.trunks.push_back(topo::TrunkDecl{0, 15, 1, 15, 500, 1});

    ParallelEngine engine(2, 2);
    auto t = topo::buildTopology(engine, d,
                                 NectarSystem::defaultHubConfig());
    EXPECT_EQ(engine.lookahead(), sim::proto::fiberByteTime + 500);

    sim::EventQueue eq;
    SequentialShardSet seq(eq, 2);
    auto t2 = topo::buildTopology(seq, d,
                                  NectarSystem::defaultHubConfig());
    EXPECT_EQ(seq.lookahead().value(), engine.lookahead());
}

TEST(Lookahead, BondedTrunksShortenTheWindow)
{
    // A width-4 trunk serializes a byte four times faster, so it,
    // not the plain trunk, bounds the lookahead.
    topo::TopologyDescription d;
    d.hubs.resize(3);
    d.trunks.push_back(topo::TrunkDecl{0, 15, 1, 15, 0, 1});
    d.trunks.push_back(topo::TrunkDecl{1, 14, 2, 15, 0, 4});

    ParallelEngine engine(3, 1);
    auto t = topo::buildTopology(engine, d,
                                 NectarSystem::defaultHubConfig());
    EXPECT_EQ(engine.lookahead(), sim::proto::fiberByteTime / 4);
}

// --------------------------------------------------------------------
// SPSC mailboxes.
// --------------------------------------------------------------------

TEST(CrossChannel, FifoOrderUnderThreadStress)
{
    // One real producer thread races one real consumer thread over
    // 200k events; the consumer must observe every sequence number
    // exactly once, in order, with the stamped payload intact.
    constexpr std::uint64_t total = 200'000;
    sim::CrossChannel ch(0, 1);
    std::atomic<bool> start{false};

    std::thread producer([&] {
        while (!start.load(std::memory_order_acquire)) {
        }
        for (std::uint64_t i = 0; i < total; ++i)
            ch.post(static_cast<Tick>(i + 1), [] {});
    });

    std::uint64_t seen = 0;
    bool ordered = true;
    bool stamped = true;
    start.store(true, std::memory_order_release);
    sim::CrossEvent e;
    while (seen < total) {
        if (!ch.pop(e))
            continue;
        // Seqs are 0-based post order; the stamp rode along as seq+1.
        if (e.seq != seen)
            ordered = false;
        if (e.when != static_cast<Tick>(e.seq + 1))
            stamped = false;
        ++seen;
    }
    producer.join();

    EXPECT_TRUE(ordered) << "sequence numbers must arrive FIFO";
    EXPECT_TRUE(stamped) << "payload stamp must travel with its seq";
    EXPECT_EQ(ch.posted(), total);
    EXPECT_EQ(ch.consumed(), total);
    EXPECT_EQ(ch.inFlight(), 0u);
    EXPECT_FALSE(ch.pop(e));
}

// --------------------------------------------------------------------
// Drain detection.
// --------------------------------------------------------------------

TEST(ParallelEngine, DrainSeesInFlightMailboxDeliveries)
{
    // A delivery posted into a mailbox but not yet injected is
    // in-flight work: empty() must say so, and run() must execute it
    // even though every shard queue is drained.
    ParallelEngine engine(2, 2);
    EXPECT_TRUE(engine.empty());

    int fired = 0;
    engine.channelFor(0, 1)->post(100, [&fired] { ++fired; });
    EXPECT_FALSE(engine.empty());

    engine.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(engine.empty());
    EXPECT_EQ(engine.queueFor(1).now(), 100);
    EXPECT_EQ(engine.executedCount(), 1u);
}

TEST(ParallelEngine, RunUntilAlignsShardClocks)
{
    ParallelEngine engine(3, 2);
    int fired = 0;
    // nectar-lint: capture-ok runUntil() drains before fired leaves scope
    engine.queueFor(1).schedule(250 * sim::ticks::ns,
                                [&fired] { ++fired; });
    engine.runUntil(1000);
    EXPECT_EQ(fired, 1);
    for (int c = 0; c < 3; ++c)
        EXPECT_EQ(engine.queueFor(c).now(), 1000) << "cluster " << c;
}

// --------------------------------------------------------------------
// Determinism contracts.
// --------------------------------------------------------------------

TEST(ParallelEngine, ClusterTraceMatchesSequentialAssembly)
{
    // The cross-assembly witness: the single-queue baseline and the
    // parallel engine mix identical trunk-delivery values in
    // identical order, per destination cluster.
    const MeshRun seq = meshAllreduceSequential();
    ASSERT_EQ(seq.clusterTrace.size(), 4u);

    for (int threads : {1, 2, 4}) {
        const MeshRun par = meshAllreduceParallel(threads);
        EXPECT_EQ(par.clusterTrace, seq.clusterTrace)
            << threads << " threads";
        EXPECT_EQ(par.combined, seq.combined) << threads
                                              << " threads";
        EXPECT_EQ(par.workloadFp, seq.workloadFp)
            << threads << " threads";
    }
}

TEST(ParallelEngine, ShardTracesInvariantAcrossThreadCounts)
{
    // Shard decomposition is per cluster, never per thread: the
    // (tick, priority, sequence) trace of every shard — and hence
    // its fingerprint and end clock — must be bit-identical at 1, 2,
    // 4 and 8 threads.
    const MeshRun base = meshAllreduceParallel(1);
    EXPECT_GT(base.epochs, 1u) << "trunk traffic must need epochs";

    for (int threads : {2, 4, 8}) {
        const MeshRun r = meshAllreduceParallel(threads);
        EXPECT_EQ(r.shardFp, base.shardFp) << threads << " threads";
        EXPECT_EQ(r.shardNow, base.shardNow) << threads << " threads";
        EXPECT_EQ(r.executed, base.executed) << threads << " threads";
        EXPECT_EQ(r.epochs, base.epochs) << threads << " threads";
        EXPECT_EQ(r.workloadFp, base.workloadFp)
            << threads << " threads";
    }
}

TEST(ParallelEngine, Fabric16EightThreadsMatchesSequential)
{
    // The acceptance fabric: a 32-member allreduce spanning all 16
    // HUBs, run on the single-queue baseline and on the parallel
    // engine at 8 threads.  Cluster fingerprints must agree exactly.
    const topo::TopologyDescription desc =
        topo::loadTopologyFile(fabricPath());
    workload::AllreduceConfig cfg;
    cfg.members = 32;
    cfg.bytes = 512;
    cfg.rounds = 1;

    const auto runOn = [&](sim::ShardSet &shards,
                           const std::function<void()> &run,
                           std::uint64_t &workloadFp) {
        auto sys = NectarSystem::fromDescription(shards, desc);
        nectarine::Nectarine api(*sys);
        collective::GroupDirectory groups;
        std::vector<std::size_t> sites;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(cfg.members); ++i)
            sites.push_back(i * sys->siteCount() /
                            static_cast<std::size_t>(cfg.members));
        workload::AllreduceWorkload w(api, groups, sites, cfg);
        run();
        EXPECT_EQ(w.report().okMembers, cfg.members);
        workloadFp = w.report().fingerprint;
        std::vector<std::uint64_t> trace;
        for (int c = 0; c < shards.clusters(); ++c)
            trace.push_back(shards.trace().cluster(c));
        return trace;
    };

    sim::EventQueue eq;
    SequentialShardSet seqShards(eq, 16);
    std::uint64_t seqFp = 0;
    const auto seqTrace =
        runOn(seqShards, [&] { eq.run(); }, seqFp);

    ParallelEngine engine(16, 8);
    std::uint64_t parFp = 0;
    const auto parTrace =
        runOn(engine, [&] { engine.run(); }, parFp);

    EXPECT_EQ(parTrace, seqTrace);
    EXPECT_EQ(parFp, seqFp);
    EXPECT_GT(engine.epochs(), 1u);
}
