/**
 * @file
 * Golden event-trace fingerprints: the engine must fire events in
 * exactly the seed engine's (tick, priority, sequence) order.
 *
 * test_determinism.cc proves a scenario is *self*-consistent (two
 * runs agree).  This test pins the *absolute* trace: the golden
 * constants below were recorded from the seed engine (the
 * priority_queue + unordered_set representation of PR 0, preserved in
 * helpers/legacy_event_queue.hh) running the three determinism
 * scenarios.  An engine change that reorders events — even
 * deterministically — fails here.
 *
 * A second layer drives the production engine and the frozen legacy
 * model with an identical randomized schedule/cancel/re-arm workload
 * and asserts the two fingerprints match, which exercises ordering
 * corners (same-tick priorities, cancellations, timer churn, far
 * horizons) no fixed scenario covers.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "helpers/determinism_scenarios.hh"
#include "helpers/legacy_event_queue.hh"
#include "sim/random.hh"

using namespace nectar;
using nectar::testutil::LegacyEventQueue;
using nectar::testutil::Trace;
using sim::EventPriority;
using sim::Tick;

namespace {

// Golden traces recorded from the seed engine (see file comment).
// If a legitimate *workload* change (not an engine change) alters a
// scenario, re-record by running the scenario and updating the
// constants — and say so in the commit message.
constexpr std::uint64_t goldenPipelineFp = 7224527340904190798ULL;
constexpr std::uint64_t goldenPipelineExecuted = 2774;
constexpr Tick goldenPipelineEnd = 3535770;

constexpr std::uint64_t goldenBroadcastFp = 3639186759136957353ULL;
constexpr std::uint64_t goldenBroadcastExecuted = 183;
constexpr Tick goldenBroadcastEnd = 1050510;

constexpr std::uint64_t goldenAllreduceFp = 11152452941777749890ULL;
constexpr std::uint64_t goldenAllreduceExecuted = 1044;
constexpr Tick goldenAllreduceEnd = 220400;

/**
 * Drive @p eq with a seeded workload mixing the shapes the real stack
 * produces: dense near-future hardware events, same-tick priority
 * collisions, immediate software wakeups, retransmission-style timers
 * that are almost always cancelled or re-armed, and the occasional
 * far-future event (beyond the wheel horizon).  Every op draws from
 * @p rng identically for both engines; handles are tracked by
 * position so the op stream never depends on handle *values*.
 */
template <typename Queue>
std::uint64_t
churnFingerprint(Queue &eq, std::uint64_t seed)
{
    // nectar-lint-file: capture-ok eq.run() drains before any
    // captured frame local leaves scope

    sim::Random rng(seed, /*stream=*/7);
    std::vector<typename Queue::EventId> timers;

    int budget = 4000;
    std::function<void()> body;
    body = [&eq, &rng, &timers, &budget, &body] {
        if (--budget <= 0)
            return;
        const std::function<void()> &again = body;
        int shape = rng.range(0, 99);
        if (shape < 40) {
            // Dense hardware tick, HUB-cycle spacing.
            eq.scheduleIn(70 * sim::ticks::ns, again,
                          EventPriority::hardware);
        } else if (shape < 55) {
            // Same-tick priority collision.
            eq.scheduleIn(80 * sim::ticks::ns, again,
                          EventPriority::hardware);
            eq.scheduleIn(80 * sim::ticks::ns, [] {},
                          EventPriority::software);
            eq.scheduleIn(80 * sim::ticks::ns, [] {},
                          EventPriority::stats);
        } else if (shape < 70) {
            // Immediate software wakeup (channel/mutex shape).
            eq.scheduleIn(sim::ticks::immediate, again,
                          EventPriority::software);
        } else if (shape < 85) {
            // RTO-style timer: armed, then usually cancelled before
            // expiry by a later event.
            auto id = eq.scheduleIn(
                (1 + rng.range(0, 3)) * sim::ticks::ms, [] {},
                EventPriority::software);
            timers.push_back(id);
            eq.scheduleIn(rng.range(1, 200) * sim::ticks::us, again,
                          EventPriority::software);
        } else if (shape < 95 && !timers.empty()) {
            // Cancel a previously armed timer (position-addressed).
            std::size_t k = rng.below(
                static_cast<std::uint32_t>(timers.size()));
            eq.cancel(timers[k]);
            timers.erase(timers.begin() +
                         static_cast<std::ptrdiff_t>(k));
            eq.scheduleIn(rng.range(1, 50) * sim::ticks::us, again,
                          EventPriority::normal);
        } else {
            // Far-future event, beyond any wheel horizon.
            eq.scheduleIn(5 * sim::ticks::sec +
                              rng.range(0, 1000) * sim::ticks::ms,
                          [] {}, EventPriority::last);
            eq.scheduleIn(rng.range(1, 10) * sim::ticks::us, again,
                          EventPriority::normal);
        }
    };
    // Several independent "threads" of activity keep the queue deep.
    for (int i = 0; i < 8; ++i)
        eq.scheduleIn(i * sim::ticks::us, body,
                      EventPriority::normal);
    eq.run();
    return eq.fingerprint();
}

} // namespace

TEST(GoldenFingerprint, PacketPipelineMatchesSeedEngine)
{
    Trace t = testutil::packetPipelineOnce(32 * 1024);
    EXPECT_EQ(t.fingerprint, goldenPipelineFp);
    EXPECT_EQ(t.executed, goldenPipelineExecuted);
    EXPECT_EQ(t.end, goldenPipelineEnd);
}

TEST(GoldenFingerprint, BroadcastMatchesSeedEngine)
{
    Trace t = testutil::broadcastOnce(4, 512);
    EXPECT_EQ(t.fingerprint, goldenBroadcastFp);
    EXPECT_EQ(t.executed, goldenBroadcastExecuted);
    EXPECT_EQ(t.end, goldenBroadcastEnd);
}

TEST(GoldenFingerprint, AllreduceMatchesSeedEngine)
{
    Trace t = testutil::allreduceOnce(4, 256, 2);
    EXPECT_EQ(t.fingerprint, goldenAllreduceFp);
    EXPECT_EQ(t.executed, goldenAllreduceExecuted);
    EXPECT_EQ(t.end, goldenAllreduceEnd);
}

// The same golden constants, reproduced by the parallel engine at 8
// threads: the strongest form of the bit-identical contract — not
// merely "parallel equals sequential", but "parallel equals the seed
// engine of PR 0".

TEST(GoldenFingerprint, PacketPipelineEightThreadsMatchesGolden)
{
    Trace t = testutil::packetPipelineThreads(32 * 1024, 8);
    EXPECT_EQ(t.fingerprint, goldenPipelineFp);
    EXPECT_EQ(t.executed, goldenPipelineExecuted);
    EXPECT_EQ(t.end, goldenPipelineEnd);
}

TEST(GoldenFingerprint, BroadcastEightThreadsMatchesGolden)
{
    Trace t = testutil::broadcastThreads(4, 512, 8);
    EXPECT_EQ(t.fingerprint, goldenBroadcastFp);
    EXPECT_EQ(t.executed, goldenBroadcastExecuted);
    EXPECT_EQ(t.end, goldenBroadcastEnd);
}

TEST(GoldenFingerprint, AllreduceEightThreadsMatchesGolden)
{
    Trace t = testutil::allreduceThreads(4, 256, 2, 8);
    EXPECT_EQ(t.fingerprint, goldenAllreduceFp);
    EXPECT_EQ(t.executed, goldenAllreduceExecuted);
    EXPECT_EQ(t.end, goldenAllreduceEnd);
}

TEST(GoldenFingerprint, ChurnWorkloadMatchesLegacyModel)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 20260805ULL}) {
        LegacyEventQueue legacy;
        sim::EventQueue current;
        std::uint64_t want = churnFingerprint(legacy, seed);
        std::uint64_t got = churnFingerprint(current, seed);
        EXPECT_EQ(got, want) << "seed " << seed;
        EXPECT_EQ(current.executedCount(), legacy.executedCount())
            << "seed " << seed;
        EXPECT_EQ(current.now(), legacy.now()) << "seed " << seed;
    }
}
