/**
 * @file
 * Tests for the coroutine synchronization primitives: AsyncMutex
 * (FIFO fairness, handoff semantics) and interactions with the event
 * queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace nectar::sim;

TEST(AsyncMutex, UncontendedLockIsImmediate)
{
    EventQueue eq;
    AsyncMutex m(eq);
    bool inside = false;
    spawn([](AsyncMutex &m, bool &inside) -> Task<void> {
        co_await m.lock();
        inside = true;
        m.unlock();
    }(m, inside));
    // The coroutine ran to completion synchronously (no suspension).
    EXPECT_TRUE(inside);
    EXPECT_FALSE(m.locked());
}

TEST(AsyncMutex, ContendersRunInFifoOrder)
{
    EventQueue eq;
    AsyncMutex m(eq);
    std::vector<int> order;
    auto worker = [](EventQueue &eq, AsyncMutex &m,
                     std::vector<int> &order, int id) -> Task<void> {
        co_await m.lock();
        order.push_back(id);
        co_await Delay{eq, 100}; // hold the lock for a while
        order.push_back(-id);
        m.unlock();
    };
    for (int i = 1; i <= 3; ++i)
        spawn(worker(eq, m, order, i));
    eq.run();
    EXPECT_EQ(order,
              (std::vector<int>{1, -1, 2, -2, 3, -3}));
}

TEST(AsyncMutex, CriticalSectionsNeverOverlap)
{
    EventQueue eq;
    AsyncMutex m(eq);
    int inside = 0;
    bool overlapped = false;
    auto worker = [](EventQueue &eq, AsyncMutex &m, int &inside,
                     bool &overlapped) -> Task<void> {
        for (int k = 0; k < 5; ++k) {
            co_await m.lock();
            if (++inside > 1)
                overlapped = true;
            co_await Delay{eq, 37};
            --inside;
            m.unlock();
        }
    };
    for (int i = 0; i < 4; ++i)
        spawn(worker(eq, m, inside, overlapped));
    eq.run();
    EXPECT_FALSE(overlapped);
    EXPECT_FALSE(m.locked());
}

TEST(AsyncMutex, UnlockWhileUnlockedPanics)
{
    EventQueue eq;
    AsyncMutex m(eq);
    EXPECT_THROW(m.unlock(), PanicError);
}

TEST(AsyncMutex, WaiterCountTracksContention)
{
    EventQueue eq;
    AsyncMutex m(eq);
    auto holder = [](EventQueue &eq, AsyncMutex &m) -> Task<void> {
        co_await m.lock();
        co_await Delay{eq, 1000};
        m.unlock();
    };
    auto waiter = [](AsyncMutex &m) -> Task<void> {
        co_await m.lock();
        m.unlock();
    };
    spawn(holder(eq, m));
    spawn(waiter(m));
    spawn(waiter(m));
    EXPECT_TRUE(m.locked());
    EXPECT_EQ(m.waiters(), 2u);
    eq.run();
    EXPECT_EQ(m.waiters(), 0u);
    EXPECT_FALSE(m.locked());
}

TEST(AsyncMutex, HandoffKeepsLockHeldBetweenOwners)
{
    // unlock() with waiters transfers ownership directly: the mutex
    // never appears unlocked in between.
    EventQueue eq;
    AsyncMutex m(eq);
    bool saw_unlocked_gap = false;
    auto first = [](EventQueue &eq, AsyncMutex &m) -> Task<void> {
        co_await m.lock();
        co_await Delay{eq, 10};
        m.unlock();
    };
    auto second = [](AsyncMutex &m,
                     bool &saw_unlocked_gap) -> Task<void> {
        co_await m.lock();
        // We hold it now; it must have been continuously locked.
        saw_unlocked_gap = !m.locked();
        m.unlock();
    };
    spawn(first(eq, m));
    spawn(second(m, saw_unlocked_gap));
    eq.run();
    EXPECT_FALSE(saw_unlocked_gap);
    EXPECT_FALSE(m.locked());
}
