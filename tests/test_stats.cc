/**
 * @file
 * Unit tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

using namespace nectar::sim;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleStats, SingleSample)
{
    SampleStats s;
    s.record(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.min(), 42.0);
    EXPECT_EQ(s.max(), 42.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleStats, KnownMoments)
{
    SampleStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleStats, NegativeValuesTrackMin)
{
    SampleStats s;
    s.record(-5.0);
    s.record(3.0);
    EXPECT_EQ(s.min(), -5.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(Histogram, PercentilesNearestRank)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(h.median(), 50.0);
}

TEST(Histogram, EmptyReturnsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, OutOfRangePercentilePanics)
{
    Histogram h;
    h.record(1.0);
    EXPECT_THROW(h.percentile(-1.0), PanicError);
    EXPECT_THROW(h.percentile(101.0), PanicError);
}

TEST(Histogram, RecordAfterQueryStillSorts)
{
    Histogram h;
    h.record(10.0);
    EXPECT_EQ(h.median(), 10.0);
    h.record(5.0);
    h.record(1.0);
    EXPECT_EQ(h.median(), 5.0);
}

TEST(Histogram, MeanOfSamples)
{
    Histogram h;
    h.record(1.0);
    h.record(2.0);
    h.record(3.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

// ----- HDR log-bucketed behaviour -----------------------------------

TEST(Histogram, QuantileWithinRelativeErrorOfExactSort)
{
    // Samples spanning six decades, checked against the exact
    // nearest-rank value from a full sort: the histogram's answer
    // must land within its advertised relative error bound.
    Histogram h;
    Random rng(7);
    std::vector<double> exact;
    for (int i = 0; i < 20000; ++i) {
        double x = std::floor(rng.exponential(50'000.0)) +
                   rng.below(1000);
        h.record(x);
        exact.push_back(x);
    }
    std::sort(exact.begin(), exact.end());

    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        auto rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(exact.size())));
        double want = exact[rank - 1];
        double got = h.percentile(p);
        EXPECT_LE(std::abs(got - want),
                  h.relativeError() * want + 0.5)
            << "p" << p;
    }
}

TEST(Histogram, MergeIsAssociativeAndBucketExact)
{
    Histogram a, b, c;
    Random rng(3);
    for (int i = 0; i < 3000; ++i) {
        a.record(rng.below(100'000));
        b.record(std::floor(rng.exponential(1e6)));
        c.record(rng.below(64)); // exact unit buckets
    }

    Histogram ab = a;
    ab.merge(b);
    Histogram abThenC = ab;
    abThenC.merge(c);

    Histogram bc = b;
    bc.merge(c);
    Histogram aThenBc = a;
    aThenBc.merge(bc);

    EXPECT_EQ(abThenC.count(), aThenBc.count());
    EXPECT_DOUBLE_EQ(abThenC.min(), aThenBc.min());
    EXPECT_DOUBLE_EQ(abThenC.max(), aThenBc.max());
    EXPECT_DOUBLE_EQ(abThenC.sum(), aThenBc.sum());
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_DOUBLE_EQ(abThenC.percentile(p), aThenBc.percentile(p))
            << "p" << p;
}

TEST(Histogram, MergeIntoEmptyMatchesOriginal)
{
    Histogram a;
    for (int i = 1; i <= 500; ++i)
        a.record(i * 37);
    Histogram b;
    b.merge(a);
    EXPECT_EQ(b.count(), a.count());
    for (double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(b.percentile(p), a.percentile(p));
}

TEST(Histogram, MergeMismatchedResolutionPanics)
{
    Histogram a(7), b(8);
    b.record(1.0);
    EXPECT_THROW(a.merge(b), PanicError);
}

TEST(Histogram, UnderflowAndOverflowBuckets)
{
    Histogram h;
    h.record(-5.0);
    h.record(10.0);
    h.record(2.0 * Histogram::maxTrackable);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    // Extremes are exact: the out-of-range samples are represented
    // by the tracked min/max in quantile queries.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), -5.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0),
                     2.0 * Histogram::maxTrackable);
    EXPECT_DOUBLE_EQ(h.median(), 10.0);
}

TEST(Histogram, FixedMemoryAcrossMagnitudes)
{
    // A million samples across nine decades must not grow the bucket
    // vector past its structural cap (~(63-sig+1)*2^sig entries).
    Histogram h;
    Random rng(11);
    for (int i = 0; i < 1'000'000; ++i)
        h.record(std::pow(10.0, 1.0 + 8.0 * rng.uniform()));
    EXPECT_EQ(h.count(), 1'000'000u);
    EXPECT_GT(h.percentile(99.0), h.percentile(50.0));
    const std::size_t sub = std::size_t{1} << h.sigBits();
    EXPECT_LE(h.bucketCount(), (63 - h.sigBits() + 1) * sub);
}

TEST(Histogram, BadSigBitsIsFatal)
{
    EXPECT_THROW(Histogram(-1), PanicError);
    EXPECT_THROW(Histogram(17), PanicError);
}

TEST(UtilizationStat, FractionOfWindow)
{
    UtilizationStat u;
    u.addBusy(250);
    u.addBusy(250);
    EXPECT_DOUBLE_EQ(u.utilization(0, 1000), 0.5);
    EXPECT_DOUBLE_EQ(u.utilization(0, 0), 0.0);
}

TEST(StatRegistry, DumpsNamedStats)
{
    StatRegistry reg;
    reg.counter("hub.opens").add(3);
    reg.samples("latency").record(10.0);
    reg.samples("latency").record(20.0);

    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("hub.opens 3"), std::string::npos);
    EXPECT_NE(out.find("latency.count 2"), std::string::npos);
    EXPECT_NE(out.find("latency.mean 15"), std::string::npos);
}

TEST(StatRegistry, ResetClearsValuesButKeepsNames)
{
    StatRegistry reg;
    reg.counter("x").add(5);
    reg.reset();
    EXPECT_EQ(reg.counter("x").value(), 0u);
}
