/**
 * @file
 * Unit tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace nectar::sim;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleStats, SingleSample)
{
    SampleStats s;
    s.record(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.min(), 42.0);
    EXPECT_EQ(s.max(), 42.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleStats, KnownMoments)
{
    SampleStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleStats, NegativeValuesTrackMin)
{
    SampleStats s;
    s.record(-5.0);
    s.record(3.0);
    EXPECT_EQ(s.min(), -5.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(Histogram, PercentilesNearestRank)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(h.median(), 50.0);
}

TEST(Histogram, EmptyReturnsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, OutOfRangePercentilePanics)
{
    Histogram h;
    h.record(1.0);
    EXPECT_THROW(h.percentile(-1.0), PanicError);
    EXPECT_THROW(h.percentile(101.0), PanicError);
}

TEST(Histogram, RecordAfterQueryStillSorts)
{
    Histogram h;
    h.record(10.0);
    EXPECT_EQ(h.median(), 10.0);
    h.record(5.0);
    h.record(1.0);
    EXPECT_EQ(h.median(), 5.0);
}

TEST(Histogram, MeanOfSamples)
{
    Histogram h;
    h.record(1.0);
    h.record(2.0);
    h.record(3.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(UtilizationStat, FractionOfWindow)
{
    UtilizationStat u;
    u.addBusy(250);
    u.addBusy(250);
    EXPECT_DOUBLE_EQ(u.utilization(0, 1000), 0.5);
    EXPECT_DOUBLE_EQ(u.utilization(0, 0), 0.0);
}

TEST(StatRegistry, DumpsNamedStats)
{
    StatRegistry reg;
    reg.counter("hub.opens").add(3);
    reg.samples("latency").record(10.0);
    reg.samples("latency").record(20.0);

    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("hub.opens 3"), std::string::npos);
    EXPECT_NE(out.find("latency.count 2"), std::string::npos);
    EXPECT_NE(out.find("latency.mean 15"), std::string::npos);
}

TEST(StatRegistry, ResetClearsValuesButKeepsNames)
{
    StatRegistry reg;
    reg.counter("x").add(5);
    reg.reset();
    EXPECT_EQ(reg.counter("x").value(), 0u);
}
