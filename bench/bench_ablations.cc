/**
 * @file
 * A1-A4 — ablations of the design choices DESIGN.md calls out.
 *
 * A1: crossbar size scale-up ("128 x 128 crossbars are possible with
 *     custom VLSI", Section 3.1) — aggregate bandwidth vs port count.
 * A2: the byte-stream sliding window (Section 6.2.2) — goodput vs
 *     window size.
 * A3: cut-through forwarding (Section 4, goal 1) — end-to-end latency
 *     with the 5-cycle transfer latency vs an inflated store-and-
 *     forward-like hub.
 * A4: Nectar-native transport vs TCP/IP on the CAB (the Section 6.2.2
 *     follow-on experiment) — what the Nectar-specific protocols buy.
 */

#include <benchmark/benchmark.h>

#include "inet/ip.hh"
#include "inet/tcp.hh"
#include "nectarine/nectarine.hh"
#include "workload/probes.hh"

using namespace nectar;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

/** A1: all-ports neighbour streaming on an N-port crossbar. */
static void
A1_CrossbarSizeSweep(benchmark::State &state)
{
    int ports = static_cast<int>(state.range(0));
    double gbps = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        hub::HubConfig hc;
        hc.numPorts = ports;
        auto sys = NectarSystem::singleHub(eq, ports, {}, hc);
        for (std::size_t i = 0; i < sys->siteCount(); ++i) {
            sys->site(i).datalink->rxHandler =
                [](sim::PacketView &&, bool) {};
        }
        for (int i = 0; i < ports; ++i) {
            auto route = sys->topo().route(
                sys->site(i).at, sys->site((i + 1) % ports).at);
            sim::spawn([](datalink::Datalink &dl, topo::Route r)
                           -> Task<void> {
                for (int k = 0; k < 50; ++k) {
                    co_await dl.sendPacket(
                        r,
                        phys::makePayload(
                            std::vector<std::uint8_t>(960, 1)),
                        datalink::SwitchMode::packet);
                }
            }(*sys->site(i).datalink, route));
        }
        eq.run();
        gbps = static_cast<double>(
                   sys->topo().hubAt(0).stats().dataBytes.value()) *
               8.0 / static_cast<double>(eq.now());
    }
    state.counters["aggregate_Gbps"] = gbps;
    state.counters["ports"] = ports;
}
BENCHMARK(A1_CrossbarSizeSweep)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

/** A2: stream goodput vs sliding-window size. */
static void
A2_WindowSweep(benchmark::State &state)
{
    auto window = static_cast<std::uint32_t>(state.range(0));
    double mbs = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        nectarine::SiteConfig cfg;
        cfg.transport.windowPackets = window;
        auto sys = NectarSystem::singleHub(eq, 2, cfg);
        nectarine::Nectarine api(*sys);
        workload::StreamMeterConfig smc;
        smc.totalBytes = 1 << 20;
        workload::StreamMeter sm(api, 0, 1, smc);
        eq.run();
        mbs = sm.megabytesPerSecond();
    }
    state.counters["goodput_MBs"] = mbs;
    state.counters["window_pkts"] = window;
}
BENCHMARK(A2_WindowSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/** A3: transfer latency with cut-through vs an inflated hub delay. */
static void
A3_CutThroughAblation(benchmark::State &state)
{
    int transfer_cycles = static_cast<int>(state.range(0));
    double us_lat = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        hub::HubConfig hc;
        hc.transferCycles = transfer_cycles;
        auto sys = NectarSystem::mesh2D(eq, 1, 3, 1, {}, hc);
        Tick delivered = -1;
        sys->site(2).datalink->rxHandler =
            [&](sim::PacketView &&, bool) {
                delivered = eq.now();
            };
        auto route =
            sys->topo().route(sys->site(0).at, sys->site(2).at);
        Tick t0 = 1000;
        // nectar-lint: capture-ok the frame below drives eq.run() to
        // completion before any captured locals leave scope
        eq.schedule(t0, [&, route] {
            sim::spawn([](datalink::Datalink &dl,
                          topo::Route r) -> Task<void> {
                co_await dl.sendPacket(
                    r,
                    phys::makePayload(
                        std::vector<std::uint8_t>(512, 1)),
                    datalink::SwitchMode::packet);
            }(*sys->site(0).datalink, route));
        });
        eq.run();
        us_lat = static_cast<double>(delivered - t0) / 1000.0;
    }
    state.counters["latency_us"] = us_lat;
    state.counters["transfer_cycles"] = transfer_cycles;
}
// 5 cycles is the prototype; 180 cycles ~ a 1 KB store-and-forward.
BENCHMARK(A3_CutThroughAblation)->Arg(5)->Arg(20)->Arg(60)->Arg(180);

namespace {

/** TCP-over-Nectar bulk transfer goodput (MB/s). */
double
tcpGoodputMBs(std::uint64_t total)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 2);
    inet::IpLayer ip0(*sys->site(0).kernel, *sys->site(0).datalink,
                      sys->directory(), sys->site(0).address);
    inet::IpLayer ip1(*sys->site(1).kernel, *sys->site(1).datalink,
                      sys->directory(), sys->site(1).address);
    inet::Tcp tcp0(ip0), tcp1(ip1);

    Tick done = -1;
    sim::spawn([](sim::EventQueue &eq, inet::Tcp &tcp,
                  std::uint64_t total, Tick &done) -> Task<void> {
        auto *s = co_await tcp.accept(80);
        std::uint64_t got = 0;
        while (got < total) {
            auto chunk = co_await s->receive(65536);
            if (chunk.empty())
                break;
            got += chunk.size();
        }
        done = eq.now();
    }(eq, tcp1, total, done));
    sim::spawn([](inet::Tcp &tcp, std::uint64_t total) -> Task<void> {
        auto *s = co_await tcp.connect(inet::ipOfCab(2), 80);
        if (!s)
            co_return;
        std::uint64_t sent = 0;
        while (sent < total) {
            std::uint64_t n =
                std::min<std::uint64_t>(65536, total - sent);
            sent += n;
            co_await s->send(std::vector<std::uint8_t>(
                static_cast<std::size_t>(n), 1));
        }
    }(tcp0, total));
    eq.run();
    return static_cast<double>(total) * 1000.0 /
           static_cast<double>(done);
}

/** TCP-over-Nectar small-message RTT (us). */
double
tcpRttUs(int iters)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 2);
    inet::IpLayer ip0(*sys->site(0).kernel, *sys->site(0).datalink,
                      sys->directory(), sys->site(0).address);
    inet::IpLayer ip1(*sys->site(1).kernel, *sys->site(1).datalink,
                      sys->directory(), sys->site(1).address);
    inet::Tcp tcp0(ip0), tcp1(ip1);

    sim::Histogram rtt;
    sim::spawn([](inet::Tcp &tcp, int iters) -> Task<void> {
        auto *s = co_await tcp.accept(7);
        for (int i = 0; i < iters; ++i) {
            auto msg = co_await s->receive(100);
            co_await s->send(std::move(msg));
        }
    }(tcp1, iters));
    sim::spawn([](sim::EventQueue &eq, inet::Tcp &tcp, int iters,
                  sim::Histogram &rtt) -> Task<void> {
        auto *s = co_await tcp.connect(inet::ipOfCab(2), 7);
        if (!s)
            co_return;
        for (int i = 0; i < iters; ++i) {
            Tick t0 = eq.now();
            co_await s->send(std::vector<std::uint8_t>(64, 1));
            co_await s->receive(100);
            rtt.record(static_cast<double>(eq.now() - t0));
        }
    }(eq, tcp0, iters, rtt));
    eq.run();
    return rtt.mean() / 1000.0;
}

} // namespace

/** A4: Nectar-native byte-stream vs TCP/IP on the same hardware. */
static void
A4_NativeVsTcp(benchmark::State &state)
{
    double native_mbs = 0, tcp_mbs = 0, native_rtt = 0, tcp_rtt = 0;
    for (auto _ : state) {
        {
            sim::EventQueue eq;
            auto sys = NectarSystem::singleHub(eq, 2);
            nectarine::Nectarine api(*sys);
            workload::StreamMeterConfig smc;
            smc.totalBytes = 1 << 20;
            workload::StreamMeter sm(api, 0, 1, smc);
            eq.run();
            native_mbs = sm.megabytesPerSecond();
        }
        {
            sim::EventQueue eq;
            auto sys = NectarSystem::singleHub(eq, 2);
            nectarine::Nectarine api(*sys);
            workload::PingPongConfig ppc;
            ppc.iterations = 40;
            ppc.delivery = nectarine::Delivery::reliable;
            workload::PingPong pp(api, 0, 1, ppc);
            eq.run();
            native_rtt = pp.meanRttUs();
        }
        tcp_mbs = tcpGoodputMBs(1 << 20);
        tcp_rtt = tcpRttUs(40);
    }
    state.counters["native_MBs"] = native_mbs;
    state.counters["tcp_MBs"] = tcp_mbs;
    state.counters["native_rtt_us"] = native_rtt;
    state.counters["tcp_rtt_us"] = tcp_rtt;
}
BENCHMARK(A4_NativeVsTcp);

BENCHMARK_MAIN();
