/**
 * @file
 * E20 — parallel simulation core scaling (events/sec vs threads).
 *
 * Like E16 this measures the *simulator*, not the simulated system:
 * the cluster-partitioned ParallelEngine must (a) reproduce the
 * single-queue baseline's cluster fingerprints bit-for-bit at every
 * thread count, and (b) convert worker threads into simulated
 * events/sec.  The workload is the acceptance fabric's hard case — a
 * 32-member allreduce spanning all 16 HUBs of fabric16, whose
 * ring-reduce traffic crosses clusters on every step — so the scaling
 * reported here is the conservative end of what independent
 * per-cluster traffic achieves.
 *
 * Every row lands in BENCH_parallel.json together with the host's
 * core count: scaling is only demonstrable when the host actually has
 * cores, so the speedup acceptance gate arms only on hosts with >= 4,
 * while the fingerprint gate (bit-identical to sequential) always
 * arms — a determinism break fails this bench on any machine.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "collectives/group.hh"
#include "nectarine/nectarine.hh"
#include "nectarine/system.hh"
#include "sim/parallel.hh"
#include "topo/topofile.hh"
#include "workload/allreduce.hh"

// nectar-lint-file: wallclock-ok this harness measures real
// events-per-second throughput; steady_clock never feeds sim state

namespace {

using namespace nectar;
using nectarine::NectarSystem;
using sim::ParallelEngine;
using sim::SequentialShardSet;

std::string
fabricPath()
{
    return std::string(NECTAR_FABRIC_DIR) + "/fabric16.topo";
}

/** One measured run: trace digests plus wall-clock throughput. */
struct Run
{
    std::string engine; ///< "sequential" or "parallel"
    int threads = 0;    ///< 0 for the sequential baseline
    std::uint64_t events = 0;
    std::uint64_t epochs = 0;
    std::uint64_t clusterFp = 0;  ///< trace().combined()
    std::uint64_t workloadFp = 0; ///< allreduce report fingerprint
    double seconds = 0;
    double eventsPerSec = 0;
};

/** Build fabric16, run the 32-member allreduce on @p shards, and
 *  time @p drain (the run call only — assembly is not measured). */
Run
measureOn(sim::ShardSet &shards, const topo::TopologyDescription &desc,
          const std::function<void()> &drain, std::uint64_t &events)
{
    auto sys = NectarSystem::fromDescription(shards, desc);
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    workload::AllreduceConfig cfg;
    cfg.members = 32;
    cfg.bytes = 2048;
    cfg.rounds = 2;
    std::vector<std::size_t> sites;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(cfg.members); ++i)
        sites.push_back(i * sys->siteCount() /
                        static_cast<std::size_t>(cfg.members));
    workload::AllreduceWorkload w(api, groups, sites, cfg);

    const auto t0 = std::chrono::steady_clock::now();
    drain();
    const auto t1 = std::chrono::steady_clock::now();

    Run r;
    const auto rep = w.report();
    if (rep.okMembers != cfg.members) {
        std::fprintf(stderr,
                     "bench_parallel: allreduce incomplete (%d/%d)\n",
                     rep.okMembers, cfg.members);
        std::exit(1);
    }
    r.clusterFp = shards.trace().combined();
    r.workloadFp = rep.fingerprint;
    r.events = events;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.eventsPerSec = static_cast<double>(r.events) / r.seconds;
    return r;
}

Run
measureSequential(const topo::TopologyDescription &desc)
{
    sim::EventQueue eq;
    SequentialShardSet shards(eq, desc.numHubs());
    std::uint64_t events = 0;
    Run r = measureOn(
        shards, desc,
        [&] {
            eq.run();
            events = eq.executedCount();
        },
        events);
    r.engine = "sequential";
    return r;
}

Run
measureParallel(const topo::TopologyDescription &desc, int threads)
{
    ParallelEngine engine(desc.numHubs(), threads);
    std::uint64_t events = 0;
    std::uint64_t epochs = 0;
    Run r = measureOn(
        engine, desc,
        [&] {
            engine.run();
            events = engine.executedCount();
            epochs = engine.epochs();
        },
        events);
    r.engine = "parallel";
    r.threads = threads;
    r.epochs = epochs;
    return r;
}

void
writeJson(const std::string &file, const std::vector<Run> &runs,
          unsigned cores, bool fingerprintsAgree)
{
    std::ofstream out(file);
    out << "{\n  \"bench\": \"parallel\",\n";
    out << "  \"fabric\": \"fabric16\",\n";
    out << "  \"workload\": \"allreduce members=32 bytes=2048 "
           "rounds=2\",\n";
    out << "  \"host_cores\": " << cores << ",\n";
    out << "  \"fingerprints_bit_identical\": "
        << (fingerprintsAgree ? "true" : "false") << ",\n";
    const double base = runs.front().eventsPerSec;
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run &r = runs[i];
        out << "    {\"engine\": \"" << r.engine
            << "\", \"threads\": " << r.threads
            << ", \"events\": " << r.events
            << ", \"epochs\": " << r.epochs
            << ", \"seconds\": " << r.seconds
            << ", \"events_per_sec\": " << r.eventsPerSec
            << ", \"speedup_vs_sequential\": "
            << (r.eventsPerSec / base) << ", \"cluster_fp\": \""
            << r.clusterFp << "\", \"workload_fp\": \""
            << r.workloadFp << "\"}"
            << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const topo::TopologyDescription desc =
        topo::loadTopologyFile(fabricPath());

    // Best of three per configuration (matches bench_engine): the
    // fingerprint comparison uses the last run of each, which is
    // valid because fingerprints are identical across reruns.
    std::vector<Run> runs;
    const auto best = [&](const std::function<Run()> &one) {
        Run b = one();
        for (int rep = 1; rep < 3; ++rep) {
            Run r = one();
            if (r.seconds < b.seconds)
                b = r;
        }
        runs.push_back(b);
    };
    best([&] { return measureSequential(desc); });
    for (int threads : {1, 2, 4, 8})
        best([&, threads] { return measureParallel(desc, threads); });

    bool agree = true;
    for (const Run &r : runs)
        if (r.clusterFp != runs.front().clusterFp ||
            r.workloadFp != runs.front().workloadFp)
            agree = false;

    const unsigned cores = std::thread::hardware_concurrency();
    writeJson("BENCH_parallel.json", runs, cores, agree);

    const double base = runs.front().eventsPerSec;
    for (const Run &r : runs)
        std::printf("%-10s threads=%d  %9.0f events/s  %5.2fx  "
                    "epochs=%llu\n",
                    r.engine.c_str(), r.threads, r.eventsPerSec,
                    r.eventsPerSec / base,
                    static_cast<unsigned long long>(r.epochs));

    if (!agree) {
        std::fprintf(stderr, "bench_parallel: cluster/workload "
                             "fingerprints diverged from the "
                             "sequential baseline\n");
        return 1;
    }
    // The scaling gate needs physical cores to mean anything: on >= 4
    // cores, 4 threads must at least double the 1-thread throughput.
    const double t1 = runs[1].eventsPerSec;
    const double t4 = runs[3].eventsPerSec;
    if (cores >= 4 && t4 < 2.0 * t1) {
        std::fprintf(stderr,
                     "bench_parallel: %u-core host, but 4 threads "
                     "gave only %.2fx over 1 thread\n",
                     cores, t4 / t1);
        return 1;
    }
    return 0;
}
