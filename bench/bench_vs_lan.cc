/**
 * @file
 * E6 — Nectar vs the contemporary LAN (Section 3.1).
 *
 * Paper: "The Nectar-net offers at least an order of magnitude
 * improvement in bandwidth and latency over current LANs."
 *
 * Both sides run the same reliable protocol; the difference is where
 * the processing happens (CAB vs host kernel) and the wire (100 Mb/s
 * switched fiber vs 10 Mb/s shared Ethernet).
 */

#include "bench/common.hh"

#include "baseline/ethernet.hh"

using namespace nectar;
using namespace nectar::bench;

namespace {

/** One-way small-message latency over the LAN baseline (ns). */
double
lanOneWayNs(std::uint32_t bytes = 64, int iterations = 20)
{
    sim::EventQueue eq;
    baseline::EthernetSegment seg(eq, "eth");
    node::Node a(eq, "a"), b(eq, "b");
    baseline::EthernetNic nicA(a, seg, 1), nicB(b, seg, 2);
    node::NodeNetStack stackA(a, nicA), stackB(b, nicB);

    sim::Histogram oneway;
    sim::spawn([](node::NodeNetStack &s, int iterations,
                  std::uint32_t bytes) -> sim::Task<void> {
        for (int i = 0; i < iterations; ++i) {
            co_await s.receive(5);
            std::vector<std::uint8_t> echo(bytes, 2);
            co_await s.sendMessage(1, 5, std::move(echo));
        }
    }(stackB, iterations, bytes));
    sim::spawn([](sim::EventQueue &eq, node::NodeNetStack &s,
                  sim::Histogram &oneway, int iterations,
                  std::uint32_t bytes) -> sim::Task<void> {
        for (int i = 0; i < iterations; ++i) {
            Tick t0 = eq.now();
            std::vector<std::uint8_t> msg(bytes, 1);
            co_await s.sendMessage(2, 5, std::move(msg));
            co_await s.receive(5);
            oneway.record(static_cast<double>(eq.now() - t0) / 2.0);
        }
    }(eq, stackA, oneway, iterations, bytes));
    eq.run();
    return oneway.mean();
}

/** Bulk goodput over the LAN baseline (MB/s). */
double
lanGoodputMBs(std::uint64_t totalBytes = 512 * 1024)
{
    sim::EventQueue eq;
    baseline::EthernetSegment seg(eq, "eth");
    node::Node a(eq, "a"), b(eq, "b");
    baseline::EthernetNic nicA(a, seg, 1), nicB(b, seg, 2);
    node::NodeNetStack stackA(a, nicA), stackB(b, nicB);

    Tick start = -1, end = -1;
    sim::spawn([](sim::EventQueue &eq, node::NodeNetStack &s,
                  std::uint64_t total, Tick &end) -> sim::Task<void> {
        std::uint64_t got = 0;
        while (got < total) {
            auto m = co_await s.receive(5);
            got += m.size();
        }
        end = eq.now();
    }(eq, stackB, totalBytes, end));
    sim::spawn([](sim::EventQueue &eq, node::NodeNetStack &s,
                  std::uint64_t total, Tick &start) -> sim::Task<void> {
        start = eq.now();
        std::uint64_t sent = 0;
        while (sent < total) {
            std::uint64_t n = std::min<std::uint64_t>(32768,
                                                      total - sent);
            sent += n;
            co_await s.sendMessage(
                2, 5, std::vector<std::uint8_t>(n, 1));
        }
    }(eq, stackA, totalBytes, start));
    eq.run();
    return static_cast<double>(totalBytes) * 1000.0 /
           static_cast<double>(end - start);
}

} // namespace

static void
E6_SmallMessageLatency(benchmark::State &state)
{
    double nectar_ns = 0, lan_ns = 0;
    for (auto _ : state) {
        nectar_ns = nodeToNodeOneWayNs();
        lan_ns = lanOneWayNs();
    }
    state.counters["nectar_us"] = nectar_ns / 1000.0;
    state.counters["lan_us"] = lan_ns / 1000.0;
    state.counters["improvement_x"] = lan_ns / nectar_ns;
    state.counters["paper_claim_x"] = 10;
}
BENCHMARK(E6_SmallMessageLatency);

static void
E6_BulkBandwidth(benchmark::State &state)
{
    double nectar_mbs = 0, lan_mbs = 0;
    for (auto _ : state) {
        nectar_mbs = streamGoodputMBs(1 << 20);
        lan_mbs = lanGoodputMBs(512 * 1024);
    }
    state.counters["nectar_MBs"] = nectar_mbs;
    state.counters["lan_MBs"] = lan_mbs;
    state.counters["improvement_x"] = nectar_mbs / lan_mbs;
    state.counters["paper_claim_x"] = 10;
}
BENCHMARK(E6_BulkBandwidth);

BENCHMARK_MAIN();
