/**
 * @file
 * E9 — the packet pipeline for large messages (Section 6.2.2).
 *
 * Paper: "When sending large messages between nodes, it is important
 * to overlap packet transfers over the Nectar-net and over the VME
 * bus at each end, in order to reduce latency and increase
 * throughput.  The CABs at the sender and receiver sides are well
 * suited for setting up this 'packet pipeline'."
 *
 * Method: move a large message node -> CAB -> net -> CAB -> node two
 * ways: (a) store-and-forward (the full message crosses VME before
 * any network send) and (b) pipelined (per-packet overlap of the VME
 * and fiber stages).
 */

#include <benchmark/benchmark.h>

#include "nectarine/system.hh"
#include "node/node.hh"
#include "sim/coro.hh"
#include "sim/stats.hh"

using namespace nectar;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

namespace {

struct TransferResult
{
    double ns = 0;              ///< Total latency.
    std::uint64_t copiedBytes = 0; ///< Payload bytes deep-copied.
    std::uint64_t allocs = 0;   ///< Payload buffer allocations.
    std::uint64_t messages = 0; ///< Messages delivered at the sink.
    double poolHitRate = 0;     ///< Arena hits / (hits + misses).
};

/** Node-to-node large transfer; returns latency + copy accounting. */
TransferResult
transferNs(std::uint32_t totalBytes, bool pipelined)
{
    sim::copyStats().reset();
    sim::BufferArena::instance().resetStats();
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, 2);
    node::Node src(eq, "src"), dst(eq, "dst");
    auto &mb = sys->site(1).kernel->createMailbox("in", 2 << 20, 10);

    const std::uint32_t chunk = 896; // one MTU per pipeline stage
    Tick done = -1;

    // Receiver: drain packets from the mailbox and move them over the
    // destination VME; with pipelining this overlaps the network.
    sim::spawn([](sim::EventQueue &eq, cabos::Mailbox &mb,
                  node::Node &dst, std::uint32_t total,
                  Tick &done) -> Task<void> {
        std::uint32_t got = 0;
        while (got < total) {
            auto m = co_await mb.get();
            got += static_cast<std::uint32_t>(m.size());
            co_await dst.vme().transferAwait(
                static_cast<std::uint32_t>(m.size()));
        }
        done = eq.now();
    }(eq, mb, dst, totalBytes, done));

    sim::spawn([](sim::EventQueue &eq, node::Node &src,
                  transport::Transport &tp, std::uint32_t total,
                  std::uint32_t chunk, bool pipelined) -> Task<void> {
        if (!pipelined) {
            // Store-and-forward: whole message over VME first, then
            // one big reliable send.
            co_await src.vme().transferAwait(total);
            co_await tp.sendReliable(
                2, 10, std::vector<std::uint8_t>(total, 1));
            co_return;
        }
        // Pipelined: VME transfer of chunk k+1 overlaps the network
        // send of chunk k ("select an optimal packet size,
        // synchronize the various DMAs").
        std::uint32_t sent = 0;
        sim::Channel<bool> window(eq);
        int inflight = 0;
        while (sent < total) {
            std::uint32_t n = std::min(chunk, total - sent);
            sent += n;
            co_await src.vme().transferAwait(n);
            // Launch the network send without waiting for its acks.
            ++inflight;
            sim::spawn([](transport::Transport &tp, std::uint32_t n,
                          sim::Channel<bool> &window,
                          int &inflight) -> Task<void> {
                co_await tp.sendReliable(
                    2, 10, std::vector<std::uint8_t>(n, 1));
                --inflight;
                window.push(true);
            }(tp, n, window, inflight));
            // Bound the pipeline depth to the CAB buffer budget.
            while (inflight >= 8)
                co_await window.pop();
        }
        while (inflight > 0)
            co_await window.pop();
    }(eq, src, *sys->site(0).transport, totalBytes, chunk, pipelined));

    eq.run();
    TransferResult r;
    r.ns = static_cast<double>(done);
    r.copiedBytes = sim::copyStats().bytesCopied;
    r.allocs = sim::copyStats().bufferAllocs;
    r.messages =
        sys->site(1).transport->stats().messagesDelivered.value();
    r.poolHitRate = sim::BufferArena::instance().stats().hitRate();
    return r;
}

} // namespace

static void
E9_LargeMessage(benchmark::State &state)
{
    auto bytes = static_cast<std::uint32_t>(state.range(0));
    bool pipelined = state.range(1) != 0;
    TransferResult r;
    for (auto _ : state)
        r = transferNs(bytes, pipelined);
    state.counters["latency_ms"] = r.ns / 1e6;
    state.counters["throughput_MBs"] =
        static_cast<double>(bytes) * 1000.0 / r.ns;
    double msgs = r.messages ? static_cast<double>(r.messages) : 1.0;
    state.counters["copied_bytes_per_msg"] =
        static_cast<double>(r.copiedBytes) / msgs;
    state.counters["allocs_per_msg"] =
        static_cast<double>(r.allocs) / msgs;
    state.counters["pool_hit_rate"] = r.poolHitRate;
}
BENCHMARK(E9_LargeMessage)
    ->ArgsProduct({{64 * 1024, 256 * 1024, 1024 * 1024}, {0, 1}})
    ->ArgNames({"bytes", "pipelined"});

BENCHMARK_MAIN();
