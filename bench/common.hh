/**
 * @file
 * Shared helpers for the experiment benchmarks (DESIGN.md section 3).
 *
 * Conventions: each benchmark is one row of the table or one point of
 * the series the paper reports.  Simulated quantities are attached as
 * google-benchmark counters; where the paper states a number, it is
 * attached as the "paper" counter so the comparison appears in the
 * output.  Wall-clock timings of the simulator itself are incidental.
 */

#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "nectarine/nectarine.hh"
#include "node/interfaces.hh"
#include "node/netstack.hh"
#include "node/rawnet.hh"
#include "workload/probes.hh"

namespace nectar::bench {

using namespace nectar;
using sim::Tick;
using namespace sim::ticks;

/** Mean one-way datagram latency between two CAB tasks (ns). */
inline double
cabToCabOneWayNs(int iterations = 50, std::uint32_t bytes = 64)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, 2);
    nectarine::Nectarine api(*sys);
    workload::PingPongConfig cfg;
    cfg.iterations = iterations;
    cfg.messageBytes = bytes;
    workload::PingPong pp(api, 0, 1, cfg);
    eq.run();
    return pp.rtt().mean() / 2.0;
}

/** Mean one-way latency between two node processes (shared memory). */
inline double
nodeToNodeOneWayNs(std::uint32_t bytes = 64, int iterations = 20)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, 2);
    node::Node a(eq, "a"), b(eq, "b");
    node::SharedMemoryInterface shmA(a, sys->site(0));
    node::SharedMemoryInterface shmB(b, sys->site(1));
    sys->site(0).kernel->createMailbox("inA", 1 << 20, 10);
    sys->site(1).kernel->createMailbox("inB", 1 << 20, 10);

    sim::Histogram oneway;
    // B echoes; A measures RTT/2.
    sim::spawn([](node::SharedMemoryInterface &shm,
                  int iterations,
                  std::uint32_t bytes) -> sim::Task<void> {
        for (int i = 0; i < iterations; ++i) {
            co_await shm.receive(10);
            std::vector<std::uint8_t> echo(bytes, 2);
            co_await shm.send(1, 10, std::move(echo), false);
        }
    }(shmB, iterations, bytes));
    sim::spawn([](sim::EventQueue &eq, node::SharedMemoryInterface &shm,
                  sim::Histogram &oneway, int iterations,
                  std::uint32_t bytes) -> sim::Task<void> {
        for (int i = 0; i < iterations; ++i) {
            Tick t0 = eq.now();
            std::vector<std::uint8_t> msg(bytes, 1);
            co_await shm.send(2, 10, std::move(msg), false);
            co_await shm.receive(10);
            oneway.record(static_cast<double>(eq.now() - t0) / 2.0);
        }
    }(eq, shmA, oneway, iterations, bytes));
    eq.run();
    return oneway.mean();
}

/** Reliable-stream goodput between two CABs, in MB/s. */
inline double
streamGoodputMBs(std::uint64_t totalBytes = 2 << 20)
{
    sim::EventQueue eq;
    auto sys = nectarine::NectarSystem::singleHub(eq, 2);
    nectarine::Nectarine api(*sys);
    workload::StreamMeterConfig cfg;
    cfg.totalBytes = totalBytes;
    workload::StreamMeter sm(api, 0, 1, cfg);
    eq.run();
    return sm.megabytesPerSecond();
}

} // namespace nectar::bench
