/**
 * @file
 * E7 — CAB kernel costs (Section 6.1).
 *
 * Paper: "Thread switching takes between 10 and 15 microseconds;
 * almost all of this time is spent saving and restoring the SPARC
 * register windows."
 */

#include <benchmark/benchmark.h>

#include "cab/cab.hh"
#include "cabos/kernel.hh"
#include "sim/coro.hh"

using namespace nectar;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

/** Direct measurement: sleep wakeup = timer + one context switch. */
static void
E7_ThreadSwitch(benchmark::State &state)
{
    double ns = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        cab::Cab board(eq, "cab");
        cabos::Kernel kernel(board);
        Tick woke = 0;
        kernel.spawnThread("t", [](cabos::Kernel &k,
                                   Tick &woke) -> Task<void> {
            co_await k.sleepFor(100 * us);
            woke = k.now();
        }(kernel, woke));
        eq.run();
        ns = static_cast<double>(woke - 100 * us);
    }
    state.counters["measured_us"] = ns / 1000.0;
    state.counters["paper_min_us"] = 10;
    state.counters["paper_max_us"] = 15;
}
BENCHMARK(E7_ThreadSwitch);

/** Mailbox handoff between two threads: switch + mailbox ops. */
static void
E7_MailboxHandoff(benchmark::State &state)
{
    double ns = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        cab::Cab board(eq, "cab");
        cabos::Kernel kernel(board);
        auto &ping = kernel.createMailbox("ping", 4096);
        auto &pong = kernel.createMailbox("pong", 4096);
        const int rounds = 50;
        Tick t0 = 0, t1 = 0;

        kernel.spawnThread("a", [](cabos::Kernel &k, cabos::Mailbox &tx,
                                   cabos::Mailbox &rx, int rounds,
                                   Tick &t0, Tick &t1) -> Task<void> {
            t0 = k.now();
            for (int i = 0; i < rounds; ++i) {
                tx.tryPut(cabos::Message({1}));
                co_await rx.get();
            }
            t1 = k.now();
        }(kernel, ping, pong, rounds, t0, t1));
        kernel.spawnThread("b", [](cabos::Mailbox &rx,
                                   cabos::Mailbox &tx,
                                   int rounds) -> Task<void> {
            for (int i = 0; i < rounds; ++i) {
                co_await rx.get();
                tx.tryPut(cabos::Message({2}));
            }
        }(ping, pong, rounds));
        eq.run();
        // Each round = two handoffs (two context switches).
        ns = static_cast<double>(t1 - t0) / (2.0 * rounds);
    }
    state.counters["per_handoff_us"] = ns / 1000.0;
    // Dominated by the 12.5 us switch, as the paper says.
    state.counters["paper_switch_us"] = 12.5;
}
BENCHMARK(E7_MailboxHandoff);

/** Thread creation is cheap ("threads have little state"). */
static void
E7_ThreadSpawnScale(benchmark::State &state)
{
    int threads = static_cast<int>(state.range(0));
    double all_done_us = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        cab::Cab board(eq, "cab");
        cabos::Kernel kernel(board);
        for (int i = 0; i < threads; ++i) {
            kernel.spawnThread(
                "w" + std::to_string(i),
                [](cabos::Kernel &k) -> Task<void> {
                    co_await k.sleepFor(10 * us);
                }(kernel));
        }
        eq.run();
        all_done_us = static_cast<double>(eq.now()) / 1000.0;
    }
    state.counters["all_done_us"] = all_done_us;
    state.counters["threads"] = threads;
}
BENCHMARK(E7_ThreadSpawnScale)->Arg(2)->Arg(8)->Arg(32);

BENCHMARK_MAIN();
