/**
 * @file
 * E11 — the three transport protocols (Section 6.2.2).
 *
 * Paper: datagram = "low overhead but does not guarantee packet
 * delivery"; byte-stream = "reliable communication using
 * acknowledgments, retransmissions, and a sliding window";
 * request-response = "client-server interactions such as remote
 * procedure calls".
 */

#include "bench/common.hh"

#include "workload/probes.hh"

using namespace nectar;
using namespace nectar::bench;

/** One-way latency per protocol (datagram vs stream). */
static void
E11_ProtocolLatency(benchmark::State &state)
{
    bool reliable = state.range(0) != 0;
    double us_lat = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = nectarine::NectarSystem::singleHub(eq, 2);
        nectarine::Nectarine api(*sys);
        workload::PingPongConfig cfg;
        cfg.iterations = 40;
        cfg.delivery = reliable ? nectarine::Delivery::reliable
                                : nectarine::Delivery::datagram;
        workload::PingPong pp(api, 0, 1, cfg);
        eq.run();
        us_lat = pp.meanOneWayUs();
    }
    state.counters["one_way_us"] = us_lat;
}
BENCHMARK(E11_ProtocolLatency)
    ->Arg(0)->Arg(1)->ArgNames({"reliable"});

/** RPC round trip (request-response protocol). */
static void
E11_RequestResponse(benchmark::State &state)
{
    double us_rtt = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = nectarine::NectarSystem::singleHub(eq, 2);
        nectarine::Nectarine api(*sys);
        sim::Histogram rtt;
        auto server = api.createTask(
            1, "server", [](nectarine::TaskContext &ctx)
                             -> sim::Task<void> {
                for (int i = 0; i < 40; ++i) {
                    auto req = co_await ctx.receive();
                    std::vector<std::uint8_t> resp(64, 1);
                    ctx.reply(req, std::move(resp));
                }
            });
        api.createTask(
            0, "client",
            [server, &rtt](nectarine::TaskContext &ctx)
                -> sim::Task<void> {
                for (int i = 0; i < 40; ++i) {
                    sim::Tick t0 = ctx.now();
                    std::vector<std::uint8_t> req(64, 2);
                    co_await ctx.call(server, std::move(req));
                    rtt.record(static_cast<double>(ctx.now() - t0));
                }
            });
        eq.run();
        us_rtt = rtt.mean() / 1000.0;
    }
    state.counters["rtt_us"] = us_rtt;
}
BENCHMARK(E11_RequestResponse);

/** Stream goodput vs message size. */
static void
E11_StreamGoodput(benchmark::State &state)
{
    auto msg = static_cast<std::uint32_t>(state.range(0));
    double mbs = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = nectarine::NectarSystem::singleHub(eq, 2);
        nectarine::Nectarine api(*sys);
        workload::StreamMeterConfig cfg;
        cfg.totalBytes = 1 << 20;
        cfg.messageBytes = msg;
        workload::StreamMeter sm(api, 0, 1, cfg);
        eq.run();
        mbs = sm.megabytesPerSecond();
    }
    state.counters["goodput_MBs"] = mbs;
    state.counters["fiber_peak_MBs"] = 12.5;
}
BENCHMARK(E11_StreamGoodput)
    ->Arg(1024)->Arg(8192)->Arg(65536);

/** Reliability under loss: stream delivers, datagram loses. */
static void
E11_LossRecovery(benchmark::State &state)
{
    double stream_rate = 0, datagram_rate = 0, goodput = 0;
    for (auto _ : state) {
        // Byte-stream side.
        {
            sim::EventQueue eq;
            auto sys = nectarine::NectarSystem::singleHub(eq, 2);
            std::uint64_t seed = 3;
            for (auto &link : sys->topo().wiring().allLinks()) {
                phys::FaultModel f;
                f.dropData = 0.05;
                link->setFaults(f, seed++);
            }
            nectarine::Nectarine api(*sys);
            workload::StreamMeterConfig cfg;
            cfg.totalBytes = 256 * 1024;
            workload::StreamMeter sm(api, 0, 1, cfg);
            eq.run();
            stream_rate = sm.bytesDelivered() == cfg.totalBytes
                              ? 1.0 : 0.0;
            goodput = sm.megabytesPerSecond();
        }
        // Datagram side: count delivered messages.
        {
            sim::EventQueue eq;
            auto sys = nectarine::NectarSystem::singleHub(eq, 2);
            std::uint64_t seed = 3;
            for (auto &link : sys->topo().wiring().allLinks()) {
                phys::FaultModel f;
                f.dropData = 0.05;
                link->setFaults(f, seed++);
            }
            nectarine::Nectarine api(*sys);
            auto &mb = sys->site(1).kernel->createMailbox("in",
                                                          1 << 20, 10);
            sim::spawn([](transport::Transport &tp) -> sim::Task<void> {
                for (int i = 0; i < 100; ++i) {
                    co_await tp.sendDatagram(
                        2, 10, std::vector<std::uint8_t>(512, 1));
                }
            }(*sys->site(0).transport));
            eq.run();
            datagram_rate = static_cast<double>(mb.count()) / 100.0;
        }
    }
    state.counters["stream_complete"] = stream_rate;
    state.counters["stream_goodput_MBs"] = goodput;
    state.counters["datagram_delivery"] = datagram_rate;
}
BENCHMARK(E11_LossRecovery);

BENCHMARK_MAIN();
