/**
 * @file
 * E13 — crossbar vs shared medium under contention (Section 3.1).
 *
 * Paper: "the use of crossbar switches substantially reduces network
 * contention."  Disjoint pairs on a crossbar get independent paths,
 * so aggregate throughput scales with the pair count; on a shared
 * 10 Mb/s Ethernet every station competes for one wire.
 */

#include <benchmark/benchmark.h>

#include "baseline/ethernet.hh"
#include "nectarine/nectarine.hh"
#include "node/netstack.hh"
#include "workload/probes.hh"

using namespace nectar;
using nectarine::Nectarine;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

/** K disjoint pairs streaming simultaneously through one HUB. */
static void
E13_NectarPairScaling(benchmark::State &state)
{
    int pairs = static_cast<int>(state.range(0));
    double aggregate = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = NectarSystem::singleHub(eq, 2 * pairs);
        Nectarine api(*sys);
        std::vector<std::unique_ptr<workload::StreamMeter>> meters;
        for (int p = 0; p < pairs; ++p) {
            workload::StreamMeterConfig cfg;
            cfg.totalBytes = 512 * 1024;
            cfg.label = "pair" + std::to_string(p);
            meters.push_back(std::make_unique<workload::StreamMeter>(
                api, 2 * p, 2 * p + 1, cfg));
        }
        eq.run();
        aggregate = 0;
        for (auto &m : meters)
            aggregate += m->megabytesPerSecond();
    }
    state.counters["aggregate_MBs"] = aggregate;
    state.counters["pairs"] = pairs;
}
BENCHMARK(E13_NectarPairScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/** The same pair workload on the shared-medium LAN. */
static void
E13_LanPairScaling(benchmark::State &state)
{
    int pairs = static_cast<int>(state.range(0));
    double aggregate = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        baseline::EthernetSegment seg(eq, "eth");
        std::vector<std::unique_ptr<node::Node>> nodes;
        std::vector<std::unique_ptr<baseline::EthernetNic>> nics;
        std::vector<std::unique_ptr<node::NodeNetStack>> stacks;
        for (int i = 0; i < 2 * pairs; ++i) {
            nodes.push_back(std::make_unique<node::Node>(
                eq, "n" + std::to_string(i)));
            nics.push_back(std::make_unique<baseline::EthernetNic>(
                *nodes[i], seg, static_cast<std::uint16_t>(i + 1)));
            stacks.push_back(std::make_unique<node::NodeNetStack>(
                *nodes[i], *nics[i]));
        }

        const std::uint64_t per_pair = 128 * 1024;
        auto ends = std::make_shared<std::vector<Tick>>(pairs, -1);
        for (int p = 0; p < pairs; ++p) {
            sim::spawn([](sim::EventQueue &eq, node::NodeNetStack &rx,
                          std::uint64_t total, Tick &end)
                           -> Task<void> {
                std::uint64_t got = 0;
                while (got < total)
                    got += (co_await rx.receive(5)).size();
                end = eq.now();
            }(eq, *stacks[2 * p + 1], per_pair, (*ends)[p]));
            sim::spawn([](node::NodeNetStack &tx, std::uint16_t dst,
                          std::uint64_t total) -> Task<void> {
                std::uint64_t sent = 0;
                while (sent < total) {
                    std::uint64_t n =
                        std::min<std::uint64_t>(16384, total - sent);
                    sent += n;
                    co_await tx.sendMessage(
                        dst, 5, std::vector<std::uint8_t>(n, 1));
                }
            }(*stacks[2 * p],
              static_cast<std::uint16_t>(2 * p + 2), per_pair));
        }
        eq.run();
        Tick last = 0;
        for (Tick e : *ends)
            last = std::max(last, e);
        aggregate = static_cast<double>(per_pair) * pairs * 1000.0 /
                    static_cast<double>(last);
    }
    state.counters["aggregate_MBs"] = aggregate;
    state.counters["pairs"] = pairs;
    state.counters["wire_limit_MBs"] = 1.25;
}
BENCHMARK(E13_LanPairScaling)->Arg(1)->Arg(2)->Arg(4);

/** Latency under background load: crossbar isolates flows. */
static void
E13_LatencyUnderLoad(benchmark::State &state)
{
    bool loaded = state.range(0) != 0;
    double rtt_us = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = NectarSystem::singleHub(eq, 6);
        Nectarine api(*sys);
        // Background bulk pairs on other ports.
        std::vector<std::unique_ptr<workload::StreamMeter>> noise;
        if (loaded) {
            for (int p = 1; p <= 2; ++p) {
                workload::StreamMeterConfig cfg;
                cfg.totalBytes = 2 << 20;
                cfg.label = "noise" + std::to_string(p);
                noise.push_back(
                    std::make_unique<workload::StreamMeter>(
                        api, 2 * p, 2 * p + 1, cfg));
            }
        }
        workload::PingPongConfig cfg;
        cfg.iterations = 40;
        workload::PingPong pp(api, 0, 1, cfg);
        eq.run();
        rtt_us = pp.meanRttUs();
    }
    state.counters["rtt_us"] = rtt_us;
}
BENCHMARK(E13_LatencyUnderLoad)
    ->Arg(0)->Arg(1)->ArgNames({"loaded"});

BENCHMARK_MAIN();
