/**
 * @file
 * E5 — circuit vs packet switching on the Figure 7 four-HUB system
 * (Sections 4.2.1-4.2.4), including both multicast variants.
 *
 * Circuit switching pays a route-confirmation round trip before data;
 * packet switching sends test-opens inline with the packet and relies
 * on ready-bit flow control ("the packet is forwarded to the next HUB
 * as soon as the input queue in that HUB becomes available").  The
 * crossover: packet switching wins for small transfers, circuit
 * switching for data larger than the 1 KB input queue.
 */

#include <benchmark/benchmark.h>

#include "nectarine/system.hh"
#include "sim/coro.hh"

using namespace nectar;
using datalink::SwitchMode;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;

namespace {

/** Figure 7: four HUBs; CAB3 on HUB2, CAB1 on HUB1, etc. */
std::unique_ptr<NectarSystem>
figure7System(sim::EventQueue &eq)
{
    auto topo = std::make_unique<topo::Topology>(eq);
    int hub1 = topo->addHub("HUB1");
    int hub2 = topo->addHub("HUB2");
    int hub3 = topo->addHub("HUB3");
    int hub4 = topo->addHub("HUB4");
    topo->linkHubs(hub2, 8, hub1, 3);
    topo->linkHubs(hub1, 6, hub4, 0);
    topo->linkHubs(hub4, 3, hub3, 1);
    auto sys = std::make_unique<NectarSystem>(eq, std::move(topo));
    sys->addCab(hub2, 4, "CAB3"); // site 0: sender of 4.2.1
    sys->addCab(hub1, 8, "CAB1"); // site 1: unicast receiver
    sys->addCab(hub1, 2, "CAB2"); // site 2: multicast sender
    sys->addCab(hub4, 5, "CAB4"); // site 3: multicast receiver A
    sys->addCab(hub3, 4, "CAB5"); // site 4: multicast receiver B
    return sys;
}

/** One-way datalink latency CAB3 -> CAB1 for a given mode/size. */
double
unicastLatencyNs(SwitchMode mode, std::uint32_t bytes)
{
    sim::EventQueue eq;
    auto sys = figure7System(eq);
    Tick delivered = -1;
    sys->site(1).datalink->rxHandler =
        [&](sim::PacketView &&, bool) {
            delivered = eq.now();
        };
    auto route = sys->topo().route(sys->site(0).at, sys->site(1).at);
    Tick t0 = 1000;
    // nectar-lint: capture-ok the frame below drives eq.run() to
    // completion before any captured locals leave scope
    eq.schedule(t0, [&, route] {
        sim::spawn([](datalink::Datalink &dl, topo::Route r,
                      std::uint32_t bytes,
                      SwitchMode mode) -> Task<void> {
            co_await dl.sendPacket(
                r, phys::makePayload(std::vector<std::uint8_t>(bytes,
                                                               1)),
                mode);
        }(*sys->site(0).datalink, route, bytes, mode));
    });
    eq.run();
    return static_cast<double>(delivered - t0);
}

/** Multicast CAB2 -> {CAB4, CAB5}: time until BOTH have the packet. */
double
multicastLatencyNs(SwitchMode mode, std::uint32_t bytes)
{
    sim::EventQueue eq;
    auto sys = figure7System(eq);
    Tick last = -1;
    int arrived = 0;
    for (std::size_t s : {std::size_t(3), std::size_t(4)}) {
        sys->site(s).datalink->rxHandler =
            [&](sim::PacketView &&, bool) {
                if (++arrived == 2)
                    last = eq.now();
            };
    }
    auto route = sys->topo().multicastRoute(
        sys->site(2).at, {sys->site(3).at, sys->site(4).at});
    Tick t0 = 1000;
    // nectar-lint: capture-ok the frame below drives eq.run() to
    // completion before any captured locals leave scope
    eq.schedule(t0, [&, route] {
        sim::spawn([](datalink::Datalink &dl, topo::Route r,
                      std::uint32_t bytes,
                      SwitchMode mode) -> Task<void> {
            co_await dl.sendPacket(
                r, phys::makePayload(std::vector<std::uint8_t>(bytes,
                                                               1)),
                mode);
        }(*sys->site(2).datalink, route, bytes, mode));
    });
    eq.run();
    return static_cast<double>(last - t0);
}

} // namespace

static void
E5_UnicastTwoHubs(benchmark::State &state)
{
    auto mode = state.range(0) ? SwitchMode::circuit
                               : SwitchMode::packet;
    auto bytes = static_cast<std::uint32_t>(state.range(1));
    double ns = 0;
    for (auto _ : state)
        ns = unicastLatencyNs(mode, bytes);
    state.counters["latency_us"] = ns / 1000.0;
    state.counters["bytes"] = bytes;
}
BENCHMARK(E5_UnicastTwoHubs)
    ->ArgsProduct({{0, 1}, {64, 256, 960}})
    ->ArgNames({"circuit", "bytes"});

/** Circuit switching carries what packet switching cannot. */
static void
E5_CircuitLargeTransfer(benchmark::State &state)
{
    auto bytes = static_cast<std::uint32_t>(state.range(0));
    double ns = 0;
    for (auto _ : state)
        ns = unicastLatencyNs(SwitchMode::circuit, bytes);
    state.counters["latency_us"] = ns / 1000.0;
    state.counters["effective_Mbps"] =
        static_cast<double>(bytes) * 8.0 * 1000.0 / ns;
}
BENCHMARK(E5_CircuitLargeTransfer)
    ->Arg(4 * 1024)->Arg(64 * 1024)->Arg(1024 * 1024);

static void
E5_MulticastFourHubs(benchmark::State &state)
{
    auto mode = state.range(0) ? SwitchMode::circuit
                               : SwitchMode::packet;
    double ns = 0;
    for (auto _ : state)
        ns = multicastLatencyNs(mode, 256);
    state.counters["latency_us"] = ns / 1000.0;
}
BENCHMARK(E5_MulticastFourHubs)
    ->Arg(0)->Arg(1)
    ->ArgNames({"circuit"});

BENCHMARK_MAIN();
