/**
 * @file
 * E8 — CAB memory bandwidth sufficiency (Section 5.2).
 *
 * Paper: "the total bandwidth of the data memory is 66
 * megabytes/second, sufficient to support the following concurrent
 * accesses: CPU reads or writes, DMA to the outgoing fiber, DMA from
 * the incoming fiber, and DMA to or from VME memory."
 *
 * Method: drive all four access streams at full rate simultaneously
 * (fiber out 12.5 MB/s, fiber in 12.5 MB/s, VME 10 MB/s, plus a CPU
 * copy workload) and show the aggregate demand stays under 66 MB/s.
 */

#include <benchmark/benchmark.h>

#include "nectarine/system.hh"
#include "node/node.hh"
#include "sim/coro.hh"

using namespace nectar;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

static void
E8_ConcurrentAccessDemand(benchmark::State &state)
{
    double total = 0, fiber_out = 0, fiber_in = 0, vme = 0, cpu = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = NectarSystem::singleHub(eq, 3);
        // Site 0 is the board under test: it streams out to site 1,
        // receives a stream from site 2, serves VME traffic, and runs
        // a CPU copy workload, all concurrently.
        for (int i = 0; i < 3; ++i) {
            sys->site(i).datalink->rxHandler =
                [](sim::PacketView &&, bool) {};
        }
        const Tick duration = 10 * ms;
        auto blaster = [](datalink::Datalink &dl, topo::Route route,
                          Tick until) -> Task<void> {
            while (dl.now() < until) {
                co_await dl.sendPacket(
                    route,
                    phys::makePayload(
                        std::vector<std::uint8_t>(960, 1)),
                    datalink::SwitchMode::packet);
            }
        };
        sim::spawn(blaster(*sys->site(0).datalink,
                           sys->topo().route(sys->site(0).at,
                                             sys->site(1).at),
                           duration));
        sim::spawn(blaster(*sys->site(2).datalink,
                           sys->topo().route(sys->site(2).at,
                                             sys->site(0).at),
                           duration));

        // VME DMA at full bus rate.
        node::Node host(eq, "host");
        sim::spawn([](sim::EventQueue &eq, node::Node &host,
                      cab::CabMemory &mem, Tick until) -> Task<void> {
            while (eq.now() < until) {
                co_await host.vme().transferAwait(4096);
                mem.account(cab::Accessor::vmeDma, 4096);
            }
        }(eq, host, sys->site(0).board->memory(), duration));

        // CPU copies (protocol bookkeeping touching data memory).
        sim::spawn([](sim::EventQueue &eq, cab::Cab &board,
                      Tick until) -> Task<void> {
            std::vector<std::uint8_t> buf(256, 0);
            while (eq.now() < until) {
                board.memory().write(cab::kernelDomain,
                                     cab::addrmap::dataRamBase,
                                     buf.data(), 256);
                co_await sim::Delay{eq, 100 * us};
            }
        }(eq, *sys->site(0).board, duration));

        eq.runUntil(duration);

        auto &mem = sys->site(0).board->memory();
        auto mbs = [&](std::uint64_t bytes) {
            return static_cast<double>(bytes) * 1000.0 /
                   static_cast<double>(duration);
        };
        fiber_out = mbs(mem.bytesBy(cab::Accessor::fiberOutDma));
        fiber_in = mbs(mem.bytesBy(cab::Accessor::fiberInDma));
        vme = mbs(mem.bytesBy(cab::Accessor::vmeDma));
        cpu = mbs(mem.bytesBy(cab::Accessor::cpu));
        total = fiber_out + fiber_in + vme + cpu;
    }
    state.counters["fiber_out_MBs"] = fiber_out;
    state.counters["fiber_in_MBs"] = fiber_in;
    state.counters["vme_MBs"] = vme;
    state.counters["cpu_MBs"] = cpu;
    state.counters["total_MBs"] = total;
    state.counters["paper_budget_MBs"] = 66;
}
BENCHMARK(E8_ConcurrentAccessDemand);

/** VME bandwidth alone (Section 5.2: 10 MB/s). */
static void
E8_VmeBandwidth(benchmark::State &state)
{
    double mbs = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        node::Node host(eq, "host");
        const std::uint64_t total = 1 << 20;
        Tick done = 0;
        for (std::uint64_t off = 0; off < total; off += 4096)
            done = host.vme().transfer(4096);
        eq.runUntil(done);
        mbs = static_cast<double>(total) * 1000.0 /
              static_cast<double>(done);
    }
    state.counters["measured_MBs"] = mbs;
    state.counters["paper_MBs"] = 10;
}
BENCHMARK(E8_VmeBandwidth);

BENCHMARK_MAIN();
