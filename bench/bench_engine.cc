/**
 * @file
 * E16 — discrete-event engine throughput (events/sec, ns/event).
 *
 * Unlike E1-E15, this measures the *simulator*, not the simulated
 * system: the PR-5 engine overhaul (hierarchical timer wheel, pooled
 * event nodes, EventFn small-buffer callbacks, lazy re-arm) is a
 * wall-clock optimisation and must prove itself against the seed
 * engine, which is preserved verbatim in
 * tests/helpers/legacy_event_queue.hh.  Three synthetic workloads
 * bracket the shapes the real stack generates:
 *
 *  - pipeline: schedule-one/fire-one chains at HUB-cycle spacing —
 *    the packet pipeline's steady state (E9's engine-side profile),
 *  - mesh: many concurrent actors with mixed horizons — the
 *    mesh-scaling workloads' deep-queue profile (E10),
 *  - churn: retransmission timers re-armed on every ack and almost
 *    never firing — the transport RTO pattern, the motivating case
 *    for O(1) cancel/re-arm.
 *
 * Every row lands in BENCH_engine.json along with the wheel/seed
 * speedups and a steady-state allocation count: after warm-up, one
 * million schedule/fire cycles on the wheel engine must perform zero
 * heap allocations (global operator new is instrumented below).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "helpers/legacy_event_queue.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

// nectar-lint-file: capture-ok every scenario drives eq.run() to
// completion before any captured frame local leaves scope
// nectar-lint-file: wallclock-ok this harness measures real
// events-per-second throughput; steady_clock never feeds sim state

// ----- global allocation counter ------------------------------------
//
// Counts every operator-new in the process; scenario deltas isolate
// the engine's steady-state behaviour.  Counting is exact, not
// sampled, so "0 allocations per million events" is a hard claim.

namespace {
std::uint64_t g_newCalls = 0;
}

void *
operator new(std::size_t n)
{
    ++g_newCalls;
    if (void *p = std::malloc(n == 0 ? 1 : n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace nectar;
using nectar::testutil::LegacyEventQueue;
using sim::EventPriority;
using sim::Tick;
using namespace sim::ticks;

// ----- scenarios, templated over the engine -------------------------
//
// Each scenario is a stable actor object whose events capture only
// [this] (or [this, smallInt]): 8-16 bytes, inside the inline buffer
// of *both* callback types, so the comparison isolates the engines'
// internals rather than closure allocation strategies.

/** Schedule-one/fire-one chains at HUB-cycle spacing. */
template <typename Queue>
struct PipelineActor
{
    Queue &eq;
    std::uint64_t budget;

    void
    fire()
    {
        if (budget == 0)
            return;
        --budget;
        eq.scheduleIn(70 * ns, [this] { fire(); },
                      EventPriority::hardware);
    }
};

template <typename Queue>
void
pipelineScenario(Queue &eq, std::uint64_t events)
{
    constexpr int chains = 4;
    PipelineActor<Queue> actor{eq, events};
    for (int i = 0; i < chains; ++i)
        eq.scheduleIn((i + 1) * 10 * ns, [&actor] { actor.fire(); },
                      EventPriority::hardware);
    eq.run();
}

/** Many actors, mixed horizons: deep queue, wheel levels exercised. */
template <typename Queue>
struct MeshActor
{
    Queue &eq;
    std::uint64_t budget;
    sim::Random rng{7, /*stream=*/16};

    static constexpr Tick deltas[] = {70 * ns,  110 * ns, 530 * ns,
                                      3 * us,   21 * us,  170 * us,
                                      900 * us, 2 * ms};

    void
    act()
    {
        if (budget == 0)
            return;
        --budget;
        eq.scheduleIn(deltas[rng.below(8)], [this] { act(); },
                      EventPriority::normal);
    }
};

template <typename Queue>
void
meshScenario(Queue &eq, std::uint64_t events)
{
    constexpr int actors = 64;
    MeshActor<Queue> shared{eq, events};
    for (int i = 0; i < actors; ++i)
        eq.scheduleIn((i + 1) * 100 * ns, [&shared] { shared.act(); },
                      EventPriority::normal);
    eq.run();
}

/** RTO churn: per-flow timers re-armed on every ack, rarely firing.
 *  The wheel engine takes its lazy re-arm path; the seed engine can
 *  only cancel+schedule, which is what the stack used to do. */
template <typename Queue>
struct ChurnActor
{
    Queue &eq;
    std::uint64_t budget;
    std::vector<typename Queue::EventId> timers;

    void
    ack(int f)
    {
        if (budget == 0)
            return;
        --budget;
        auto &timer = timers[static_cast<std::size_t>(f)];
        if constexpr (requires { eq.rearmIn(timer, 2 * ms); }) {
            auto fresh = eq.rearmIn(timer, 2 * ms);
            timer = fresh != sim::invalidEventId
                        ? fresh
                        : eq.scheduleIn(2 * ms, [] {},
                                        EventPriority::software);
        } else {
            if (eq.pending(timer))
                eq.cancel(timer);
            timer = eq.scheduleIn(2 * ms, [] {},
                                  EventPriority::software);
        }
        eq.scheduleIn(1 * us, [this, f] { ack(f); },
                      EventPriority::software);
    }
};

template <typename Queue>
void
churnScenario(Queue &eq, std::uint64_t events)
{
    constexpr int flows = 32;
    ChurnActor<Queue> actor{eq, events, {}};
    actor.timers.resize(flows);
    for (int f = 0; f < flows; ++f)
        eq.scheduleIn((f + 1) * 30 * ns,
                      [&actor, f] { actor.ack(f); },
                      EventPriority::software);
    eq.run();
}

// ----- measurement + JSON row collection ----------------------------

struct Row
{
    std::string scenario;
    std::string engine;
    std::uint64_t events = 0;
    double seconds = 0;
    double eventsPerSec = 0;
    double nsPerEvent = 0;
};

std::map<std::string, Row> &
rows()
{
    static std::map<std::string, Row> r;
    return r;
}

template <typename Queue, typename Scenario>
Row
measure(const std::string &scenario, const std::string &engine,
        Scenario &&body, std::uint64_t events)
{
    // Best of three: the comparison gates CI, so shave scheduler
    // noise off both engines the same way.
    Row row;
    for (int rep = 0; rep < 3; ++rep) {
        Queue eq;
        const auto t0 = std::chrono::steady_clock::now();
        body(eq, events);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0 || secs < row.seconds) {
            row.scenario = scenario;
            row.engine = engine;
            row.events = eq.executedCount();
            row.seconds = secs;
            row.eventsPerSec =
                static_cast<double>(row.events) / secs;
            row.nsPerEvent =
                secs * 1e9 / static_cast<double>(row.events);
        }
    }
    rows()[scenario + "/" + engine] = row;
    return row;
}

/** Steady-state allocation probe: warm the pool, then demand zero
 *  operator-new calls across a further @p events schedule/fire
 *  cycles on the wheel engine. */
struct SteadyProbe
{
    sim::EventQueue &eq;
    std::uint64_t budget;
    std::uint64_t half;
    bool measuring = false;
    std::uint64_t baseline = 0;

    void
    fire()
    {
        if (budget == 0)
            return;
        --budget;
        if (!measuring && budget == half) {
            // Pool, wheel and due-heap capacities are warm; every
            // allocation from here on is a regression.
            measuring = true;
            baseline = g_newCalls;
        }
        eq.scheduleIn(70 * ns, [this] { fire(); },
                      EventPriority::hardware);
    }
};

std::uint64_t
steadyStateAllocs(std::uint64_t events)
{
    sim::EventQueue eq;
    constexpr int chains = 4;
    SteadyProbe probe{eq, events, events / 2};
    for (int i = 0; i < chains; ++i)
        eq.scheduleIn((i + 1) * 10 * ns, [&probe] { probe.fire(); },
                      EventPriority::hardware);
    eq.run();
    return g_newCalls - probe.baseline;
}

// ----- google-benchmark wrappers (console exploration) --------------

template <typename Queue, typename Scenario>
void
runBench(benchmark::State &state, Scenario &&body)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        Queue eq;
        body(eq, static_cast<std::uint64_t>(state.range(0)));
        events += eq.executedCount();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}

void
BM_Pipeline_Wheel(benchmark::State &state)
{
    runBench<sim::EventQueue>(state, [](auto &eq, std::uint64_t n) {
        pipelineScenario(eq, n);
    });
}

void
BM_Pipeline_Seed(benchmark::State &state)
{
    runBench<LegacyEventQueue>(state, [](auto &eq, std::uint64_t n) {
        pipelineScenario(eq, n);
    });
}

void
BM_Mesh_Wheel(benchmark::State &state)
{
    runBench<sim::EventQueue>(state, [](auto &eq, std::uint64_t n) {
        meshScenario(eq, n);
    });
}

void
BM_Mesh_Seed(benchmark::State &state)
{
    runBench<LegacyEventQueue>(state, [](auto &eq, std::uint64_t n) {
        meshScenario(eq, n);
    });
}

void
BM_TimerChurn_Wheel(benchmark::State &state)
{
    runBench<sim::EventQueue>(state, [](auto &eq, std::uint64_t n) {
        churnScenario(eq, n);
    });
}

void
BM_TimerChurn_Seed(benchmark::State &state)
{
    runBench<LegacyEventQueue>(state, [](auto &eq, std::uint64_t n) {
        churnScenario(eq, n);
    });
}

BENCHMARK(BM_Pipeline_Wheel)->Arg(200000);
BENCHMARK(BM_Pipeline_Seed)->Arg(200000);
BENCHMARK(BM_Mesh_Wheel)->Arg(200000);
BENCHMARK(BM_Mesh_Seed)->Arg(200000);
BENCHMARK(BM_TimerChurn_Wheel)->Arg(100000);
BENCHMARK(BM_TimerChurn_Seed)->Arg(100000);

// ----- JSON ---------------------------------------------------------

double
speedup(const std::string &scenario)
{
    const Row &wheel = rows().at(scenario + "/wheel");
    const Row &seed = rows().at(scenario + "/seed");
    return wheel.eventsPerSec / seed.eventsPerSec;
}

void
writeJson(const std::string &file, std::uint64_t steadyAllocs,
          std::uint64_t fnHeapAllocs)
{
    std::ofstream out(file);
    out << "{\n  \"bench\": \"engine\",\n";
    out << "  \"steady_state_heap_allocs_per_1M_events\": "
        << steadyAllocs << ",\n";
    out << "  \"eventfn_heap_allocs\": " << fnHeapAllocs << ",\n";
    for (const char *s : {"pipeline", "mesh", "churn"})
        out << "  \"speedup_" << s << "\": " << speedup(s) << ",\n";
    out << "  \"rows\": [\n";
    bool first = true;
    for (const auto &[key, row] : rows()) {
        if (!first)
            out << ",\n";
        first = false;
        out << "    {\"scenario\": \"" << row.scenario
            << "\", \"engine\": \"" << row.engine
            << "\", \"events\": " << row.events
            << ", \"seconds\": " << row.seconds
            << ", \"events_per_sec\": " << row.eventsPerSec
            << ", \"ns_per_event\": " << row.nsPerEvent << "}";
    }
    out << "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // The comparison table is measured directly (independent of any
    // --benchmark_filter) so BENCH_engine.json is always complete.
    constexpr std::uint64_t big = 1'000'000;
    constexpr std::uint64_t churnN = 500'000;
    for (auto [name, fn] :
         {std::pair{"pipeline", &pipelineScenario<sim::EventQueue>},
          std::pair{"mesh", &meshScenario<sim::EventQueue>}})
        measure<sim::EventQueue>(name, "wheel", fn, big);
    for (auto [name, fn] :
         {std::pair{"pipeline", &pipelineScenario<LegacyEventQueue>},
          std::pair{"mesh", &meshScenario<LegacyEventQueue>}})
        measure<LegacyEventQueue>(name, "seed", fn, big);
    measure<sim::EventQueue>("churn", "wheel",
                             &churnScenario<sim::EventQueue>, churnN);
    measure<LegacyEventQueue>("churn", "seed",
                              &churnScenario<LegacyEventQueue>,
                              churnN);

    const std::uint64_t fnHeapBefore = sim::EventFn::heapAllocCount();
    const std::uint64_t steadyAllocs = steadyStateAllocs(2'000'000);
    const std::uint64_t fnHeapAllocs =
        sim::EventFn::heapAllocCount() - fnHeapBefore;
    writeJson("BENCH_engine.json", steadyAllocs, fnHeapAllocs);

    const double pipe = speedup("pipeline");
    const double churn = speedup("churn");
    std::printf("engine speedup: pipeline %.2fx, mesh %.2fx, "
                "churn %.2fx; steady-state allocs/1M events: %llu\n",
                pipe, speedup("mesh"), churn,
                static_cast<unsigned long long>(steadyAllocs));
    // Acceptance (ISSUE 5): pipeline and timer-churn must be >= 2x
    // the seed engine, and the steady-state path allocation-free.
    if (pipe < 2.0 || churn < 2.0 || steadyAllocs != 0) {
        std::fprintf(stderr,
                     "bench_engine: acceptance thresholds not met\n");
        return 1;
    }
    return 0;
}
