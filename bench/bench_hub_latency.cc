/**
 * @file
 * E1 — HUB latency (Section 4, goal 1).
 *
 * Paper: "the latency to set up a connection and transfer the first
 * byte of a packet through a single HUB is ten cycles (700
 * nanoseconds).  Once a connection has been established, the latency
 * to transfer a byte is five cycles (350 nanoseconds), but the
 * transfer of multiple bytes is pipelined to match the 100
 * megabits/second peak bandwidth of the fibers."
 */

#include "bench/common.hh"

#include "helpers/test_endpoint.hh"
#include "topo/topology.hh"

using namespace nectar;
using namespace nectar::bench;
using Endpoint = nectar::test::TestEndpoint;
using hub::Op;
using phys::ItemKind;

namespace {

/** Build 1 hub + 2 endpoints; return via out-params. */
struct SingleHubRig
{
    sim::EventQueue eq;
    hub::RecordingMonitor mon;
    std::unique_ptr<hub::Hub> h;
    topo::Wiring wiring{eq};
    Endpoint a{eq}, b{eq};

    SingleHubRig()
    {
        h = std::make_unique<hub::Hub>(eq, "hub", 0, hub::HubConfig{},
                                       &mon);
        a.attachTx(wiring.connectEndpoint(a, *h, 0, "a"));
        b.attachTx(wiring.connectEndpoint(b, *h, 1, "b"));
    }
};

} // namespace

/** Connection setup: command sent to crossbar connection made. */
static void
E1_ConnectionSetup(benchmark::State &state)
{
    double measured = 0;
    for (auto _ : state) {
        SingleHubRig rig;
        rig.a.sendCommand(Op::open, 0, 1);
        rig.eq.run();
        measured = static_cast<double>(rig.mon.events().back().when);
    }
    state.counters["measured_ns"] = measured;
    state.counters["paper_goal_ns"] = 1000; // < 1 us (Section 2.3)
}
BENCHMARK(E1_ConnectionSetup);

/** Setup + first data byte out of the output register. */
static void
E1_SetupPlusFirstByte(benchmark::State &state)
{
    double measured = 0;
    for (auto _ : state) {
        SingleHubRig rig;
        rig.a.sendCommand(Op::openRetry, 0, 1);
        rig.a.sendPacket(std::vector<std::uint8_t>(16, 1));
        rig.eq.run();
        sim::Tick cmd_last_byte = 240;
        sim::Tick sop_out =
            rig.b.arrivalOf(ItemKind::startOfPacket) - 80;
        measured = static_cast<double>(sop_out - cmd_last_byte);
    }
    state.counters["measured_ns"] = measured;
    state.counters["paper_ns"] = 700; // ten 70 ns cycles
}
BENCHMARK(E1_SetupPlusFirstByte);

/** Per-item transfer latency through an open connection. */
static void
E1_EstablishedTransferLatency(benchmark::State &state)
{
    double measured = 0;
    for (auto _ : state) {
        SingleHubRig rig;
        rig.a.sendCommand(Op::open, 0, 1);
        rig.eq.run();
        sim::Tick t0 = rig.eq.now() + 1000;
        // nectar-lint: capture-ok the frame below drives rig.eq.run()
        // to completion before any captured locals leave scope
        rig.eq.schedule(t0, [&] {
            rig.a.sendPacket(std::vector<std::uint8_t>(1, 1));
        });
        rig.eq.run();
        // Arrival minus serialization in and out (80 ns each way).
        measured = static_cast<double>(
            rig.b.arrivalOf(ItemKind::startOfPacket) - t0 - 160);
    }
    state.counters["measured_ns"] = measured;
    state.counters["paper_ns"] = 350; // five 70 ns cycles
}
BENCHMARK(E1_EstablishedTransferLatency);

/** Pipelined transfer matches the 100 Mb/s fiber rate. */
static void
E1_PipelinedBandwidth(benchmark::State &state)
{
    double mbps = 0;
    for (auto _ : state) {
        SingleHubRig rig;
        rig.a.sendCommand(Op::open, 0, 1);
        rig.eq.run();
        const std::uint32_t bytes = 64 * 1024;
        sim::Tick t0 = rig.eq.now();
        rig.a.sendPacket(std::vector<std::uint8_t>(bytes, 7));
        rig.eq.run();
        sim::Tick last = rig.b.received.back().lastByte;
        mbps = static_cast<double>(bytes) * 8.0 * 1000.0 /
               static_cast<double>(last - t0);
    }
    state.counters["measured_Mbps"] = mbps;
    state.counters["paper_Mbps"] = 100;
}
BENCHMARK(E1_PipelinedBandwidth);

BENCHMARK_MAIN();
