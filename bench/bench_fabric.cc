/**
 * @file
 * E18 — fabric-scale routing: the cost of compiling up*-down* route
 * tables, per-route lookup against the historical BFS-per-call
 * router, and a fabric-spanning allreduce against the single-HUB
 * baseline.
 *
 *  - F1: RouteTable::compile wall time over fabric families and
 *        sizes (the price paid once per linkVersion bump),
 *  - F2: compiled path() lookup vs an equivalent of the BFS the old
 *        router ran on every route() call,
 *  - F3: a 32-member allreduce on the checked-in 16-HUB / 208-CAB
 *        fabric vs the same group on one HUB (simulated latency —
 *        what the fabric's extra trunk hops actually cost).
 *
 * Every row lands in BENCH_fabric.json for downstream tooling.
 */

// nectar-lint-file: wallclock-ok this harness measures real compile
// and lookup wall time; steady_clock never feeds sim state

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nectarine/nectarine.hh"
#include "topo/description.hh"
#include "topo/route_table.hh"
#include "topo/topofile.hh"
#include "workload/allreduce.hh"

using namespace nectar;
using namespace nectar::topo;

#ifndef NECTAR_FABRIC_DIR
#define NECTAR_FABRIC_DIR "examples/fabrics"
#endif

namespace {

// ----- JSON row collection ------------------------------------------

struct Row
{
    std::string op;
    std::string fabric;
    std::map<std::string, double> metrics;
};

std::map<std::string, Row> &
rows()
{
    static std::map<std::string, Row> r;
    return r;
}

void
record(Row row)
{
    rows()[row.op + "/" + row.fabric] = std::move(row);
}

TopologyDescription
fabricFor(const std::string &kind, int n)
{
    if (kind == "mesh")
        return describeMesh2D(n, n, 0);
    if (kind == "torus")
        return describeTorus2D(n, n, 0);
    if (kind == "random")
        return describeRandomRegular(7, n * n, 4, 0, 0, 24);
    return describeFatTree(n, 2 * n, 0, 0, 4 * n);
}

/**
 * The historical router, preserved for comparison: one full BFS over
 * the live links per route() call, path reconstructed dest-first.
 * This is exactly the work every route() used to redo.
 */
bool
legacyBfsPath(const FabricGraph &g, int from, int to,
              std::vector<RouteTable::PathHop> &hops)
{
    hops.clear();
    if (from == to)
        return true;
    std::vector<std::pair<int, hub::PortId>> prev(
        static_cast<std::size_t>(g.numHubs()), {-1, hub::noPort});
    std::vector<bool> seen(static_cast<std::size_t>(g.numHubs()));
    std::vector<int> queue{from};
    seen[static_cast<std::size_t>(from)] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        int h = queue[head];
        if (h == to)
            break;
        for (const auto &a : g.adjacencyOf(h)) {
            if (!g.linkUp(a.linkIndex) ||
                seen[static_cast<std::size_t>(a.neighbor)])
                continue;
            seen[static_cast<std::size_t>(a.neighbor)] = true;
            prev[static_cast<std::size_t>(a.neighbor)] = {h, a.myPort};
            queue.push_back(a.neighbor);
        }
    }
    if (!seen[static_cast<std::size_t>(to)])
        return false;
    for (int at = to; at != from;) {
        auto [p, port] = prev[static_cast<std::size_t>(at)];
        hops.push_back(RouteTable::PathHop{p, port});
        at = p;
    }
    std::reverse(hops.begin(), hops.end());
    return true;
}

// ----- F1: route-table compile time ---------------------------------

/** Wall-clock microseconds per call of @p fn over @p iters calls. */
template <typename Fn>
double
timeUs(int iters, Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0)
               .count() /
           iters;
}

void
F1_RouteCompile(benchmark::State &state, const std::string &kind)
{
    int n = static_cast<int>(state.range(0));
    TopologyDescription d = fabricFor(kind, n);
    FabricGraph g = FabricGraph::ofDescription(d);
    RouteTable t;
    for (auto _ : state)
        t = RouteTable::compile(g);
    double usPerCompile =
        timeUs(50, [&] { benchmark::DoNotOptimize(
                             t = RouteTable::compile(g)); });
    state.counters["hubs"] = g.numHubs();
    state.counters["links"] = g.numLinks();
    state.counters["restricted"] = t.restrictedSources();
    state.counters["compile_us"] = usPerCompile;
    Row row{"route_compile", kind + std::to_string(g.numHubs()), {}};
    row.metrics["hubs"] = g.numHubs();
    row.metrics["links"] = g.numLinks();
    row.metrics["restricted_sources"] = t.restrictedSources();
    row.metrics["compile_us"] = usPerCompile;
    record(std::move(row));
}
BENCHMARK_CAPTURE(F1_RouteCompile, mesh, "mesh")
    ->Arg(2)->Arg(4)->Arg(8)->ArgName("n");
BENCHMARK_CAPTURE(F1_RouteCompile, torus, "torus")
    ->Arg(4)->Arg(8)->ArgName("n");
BENCHMARK_CAPTURE(F1_RouteCompile, random, "random")
    ->Arg(4)->Arg(8)->ArgName("n");

// ----- F2: per-route lookup vs the historical BFS -------------------

void
F2_RouteLookup(benchmark::State &state)
{
    // A 16-HUB torus: big enough that the BFS frontier costs, small
    // enough that lookup overhead isn't lost in cache misses.
    FabricGraph g =
        FabricGraph::ofDescription(describeTorus2D(4, 4, 0));
    RouteTable t = RouteTable::compile(g);
    std::vector<RouteTable::PathHop> hops;
    int pair = 0;
    bool table = state.range(0) == 0;
    for (auto _ : state) {
        int from = pair % 16;
        int to = (pair * 7 + 5) % 16;
        pair = (pair + 1) % 997;
        bool ok = table ? t.path(from, to, hops)
                        : legacyBfsPath(g, from, to, hops);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(hops.data());
    }
    int probe = 0;
    double nsPerRoute =
        1e3 * timeUs(20000, [&] {
            int from = probe % 16;
            int to = (probe * 7 + 5) % 16;
            probe = (probe + 1) % 997;
            benchmark::DoNotOptimize(
                table ? t.path(from, to, hops)
                      : legacyBfsPath(g, from, to, hops));
        });
    state.counters["hubs"] = 16;
    state.counters["ns_per_route"] = nsPerRoute;
    Row row{"route_lookup", table ? "table" : "bfs", {}};
    row.metrics["ns_per_route"] = nsPerRoute;
    record(std::move(row));
}
BENCHMARK(F2_RouteLookup)
    ->Arg(0)->Arg(1)->ArgName("legacy");

// ----- F3: fabric vs single-HUB allreduce ---------------------------

workload::AllreduceReport
allreduceOn(bool fabric, int members)
{
    sim::EventQueue eq;
    std::unique_ptr<nectarine::NectarSystem> sys;
    if (fabric) {
        sys = nectarine::NectarSystem::fromTopoFile(
            eq, std::string(NECTAR_FABRIC_DIR) + "/fabric16.topo");
    } else {
        // A 33-port HUB so the whole group fits on one crossbar
        // (the paper's "128 x 128 crossbars are possible" scale-up).
        hub::HubConfig big = nectarine::NectarSystem::defaultHubConfig();
        big.numPorts = members + 1;
        sys = nectarine::NectarSystem::singleHub(eq, members, {}, big);
    }
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    workload::AllreduceConfig cfg;
    cfg.members = members;
    cfg.bytes = 4096;
    cfg.rounds = 2;
    std::vector<std::size_t> sites;
    for (std::size_t i = 0; i < static_cast<std::size_t>(members);
         ++i)
        sites.push_back(fabric ? i * sys->siteCount() /
                                     static_cast<std::size_t>(members)
                               : i);
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    eq.run();
    return w.report();
}

void
F3_FabricAllreduce(benchmark::State &state)
{
    bool fabric = state.range(0) == 1;
    const int members = 32;
    workload::AllreduceReport rep;
    for (auto _ : state)
        rep = allreduceOn(fabric, members);
    double perOpUs =
        static_cast<double>(rep.lastFinish) / 2 /* rounds */ / 1e3;
    state.counters["latency_us"] = perOpUs;
    state.counters["ok_members"] = rep.okMembers;
    Row row{"allreduce32", fabric ? "fabric16" : "single_hub", {}};
    row.metrics["latency_us"] = perOpUs;
    row.metrics["ok_members"] = rep.okMembers;
    record(std::move(row));
}
BENCHMARK(F3_FabricAllreduce)
    ->Arg(0)->Arg(1)->ArgName("fabric");

// ----- JSON output --------------------------------------------------

void
writeJson(const std::string &file)
{
    // Acceptance summary: the fabric allreduce completes with every
    // member ok whenever both variants ran.
    bool fabricOk = true;
    auto it = rows().find("allreduce32/fabric16");
    if (it != rows().end())
        fabricOk = it->second.metrics.at("ok_members") == 32;
    std::ofstream out(file);
    out << "{\n  \"bench\": \"fabric\",\n";
    out << "  \"fabric_allreduce_all_ok\": "
        << (fabricOk ? "true" : "false") << ",\n";
    out << "  \"rows\": [\n";
    bool first = true;
    for (const auto &[key, row] : rows()) {
        if (!first)
            out << ",\n";
        first = false;
        out << "    {\"op\": \"" << row.op << "\", \"fabric\": \""
            << row.fabric << "\"";
        for (const auto &[k, v] : row.metrics)
            out << ", \"" << k << "\": " << v;
        out << "}";
    }
    out << "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeJson("BENCH_fabric.json");
    return 0;
}
