/**
 * @file
 * E12 — the three CAB-node interfaces (Section 6.2.3).
 *
 * Paper: shared memory ("most efficient ... no system calls,
 * receive by polling"), Berkeley sockets ("system call overhead and
 * data copying ... but the transport protocol overhead is off-loaded
 * onto the CAB"), and the network driver ("Nectar is used as a 'dumb'
 * network and all transport protocol processing is performed on the
 * node" — binary compatibility at the highest cost).
 */

#include <benchmark/benchmark.h>

#include "nectarine/system.hh"
#include "node/interfaces.hh"
#include "node/netstack.hh"
#include "node/rawnet.hh"
#include "sim/coro.hh"

using namespace nectar;
using namespace nectar::node;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

namespace {

enum class If { sharedMemory, socket, driver };

/** One-way latency (ns) and goodput (MB/s) for an interface. */
struct Result
{
    double oneWayNs = 0;
    double goodputMBs = 0;
};

Result
measure(If which, std::uint32_t smallBytes, std::uint32_t bulkBytes)
{
    Result r;

    // ---- Latency: echo round trip / 2.
    {
        sim::EventQueue eq;
        auto sys = NectarSystem::singleHub(eq, 2);
        Node a(eq, "a"), b(eq, "b");
        sys->site(0).kernel->createMailbox("inA", 1 << 20, 10);
        sys->site(1).kernel->createMailbox("inB", 1 << 20, 10);
        sim::Histogram oneway;
        const int iters = 15;

        auto run_pair = [&](auto &&send0, auto &&recv0, auto &&send1,
                            auto &&recv1) {
            sim::spawn([](std::function<Task<void>()> body)
                           -> Task<void> { co_await body(); }([=]()
                           -> Task<void> { co_return; }));
            (void)send0; (void)recv0; (void)send1; (void)recv1;
        };
        (void)run_pair;

        if (which == If::sharedMemory) {
            auto shmA = std::make_shared<SharedMemoryInterface>(
                a, sys->site(0));
            auto shmB = std::make_shared<SharedMemoryInterface>(
                b, sys->site(1));
            sim::spawn([](std::shared_ptr<SharedMemoryInterface> shm,
                          int iters,
                          std::uint32_t bytes) -> Task<void> {
                for (int i = 0; i < iters; ++i) {
                    co_await shm->receive(10);
                    co_await shm->send(
                        1, 10, std::vector<std::uint8_t>(bytes, 2),
                        false);
                }
            }(shmB, iters, smallBytes));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SharedMemoryInterface> shm,
                          sim::Histogram &hist, int iters,
                          std::uint32_t bytes) -> Task<void> {
                for (int i = 0; i < iters; ++i) {
                    Tick t0 = eq.now();
                    co_await shm->send(
                        2, 10, std::vector<std::uint8_t>(bytes, 1),
                        false);
                    co_await shm->receive(10);
                    hist.record(
                        static_cast<double>(eq.now() - t0) / 2.0);
                }
            }(eq, shmA, oneway, iters, smallBytes));
        } else if (which == If::socket) {
            auto sockA = std::make_shared<SocketInterface>(
                a, sys->site(0));
            auto sockB = std::make_shared<SocketInterface>(
                b, sys->site(1));
            sim::spawn([](std::shared_ptr<SocketInterface> sock,
                          int iters,
                          std::uint32_t bytes) -> Task<void> {
                for (int i = 0; i < iters; ++i) {
                    co_await sock->receive(10);
                    co_await sock->send(
                        1, 10, std::vector<std::uint8_t>(bytes, 2),
                        false);
                }
            }(sockB, iters, smallBytes));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SocketInterface> sock,
                          sim::Histogram &hist, int iters,
                          std::uint32_t bytes) -> Task<void> {
                for (int i = 0; i < iters; ++i) {
                    Tick t0 = eq.now();
                    co_await sock->send(
                        2, 10, std::vector<std::uint8_t>(bytes, 1),
                        false);
                    co_await sock->receive(10);
                    hist.record(
                        static_cast<double>(eq.now() - t0) / 2.0);
                }
            }(eq, sockA, oneway, iters, smallBytes));
        } else {
            auto nicA = std::make_shared<NectarRawNet>(
                a, sys->site(0), sys->directory());
            auto nicB = std::make_shared<NectarRawNet>(
                b, sys->site(1), sys->directory());
            auto stackA = std::make_shared<NodeNetStack>(a, *nicA);
            auto stackB = std::make_shared<NodeNetStack>(b, *nicB);
            sim::spawn([](std::shared_ptr<NodeNetStack> s,
                          [[maybe_unused]] std::shared_ptr<NectarRawNet> nic,
                          int iters,
                          std::uint32_t bytes) -> Task<void> {
                for (int i = 0; i < iters; ++i) {
                    co_await s->receive(10);
                    co_await s->sendMessage(
                        1, 10, std::vector<std::uint8_t>(bytes, 2));
                }
            }(stackB, nicB, iters, smallBytes));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<NodeNetStack> s,
                          [[maybe_unused]] std::shared_ptr<NectarRawNet> nic,
                          sim::Histogram &hist, int iters,
                          std::uint32_t bytes) -> Task<void> {
                for (int i = 0; i < iters; ++i) {
                    Tick t0 = eq.now();
                    co_await s->sendMessage(
                        2, 10, std::vector<std::uint8_t>(bytes, 1));
                    co_await s->receive(10);
                    hist.record(
                        static_cast<double>(eq.now() - t0) / 2.0);
                }
            }(eq, stackA, nicA, oneway, iters, smallBytes));
        }
        eq.run();
        r.oneWayNs = oneway.mean();
    }

    // ---- Bulk goodput: one-directional transfer of bulkBytes.
    {
        sim::EventQueue eq;
        auto sys = NectarSystem::singleHub(eq, 2);
        Node a(eq, "a"), b(eq, "b");
        sys->site(1).kernel->createMailbox("inB", 2 << 20, 10);
        Tick done = -1;
        const std::uint32_t msg = 16 * 1024;
        const int msgs =
            static_cast<int>((bulkBytes + msg - 1) / msg);

        if (which == If::sharedMemory) {
            auto shmA = std::make_shared<SharedMemoryInterface>(
                a, sys->site(0));
            auto shmB = std::make_shared<SharedMemoryInterface>(
                b, sys->site(1));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SharedMemoryInterface> shm,
                          int msgs, Tick &done) -> Task<void> {
                for (int i = 0; i < msgs; ++i)
                    co_await shm->receive(10);
                done = eq.now();
            }(eq, shmB, msgs, done));
            sim::spawn([](std::shared_ptr<SharedMemoryInterface> shm,
                          int msgs, std::uint32_t msg) -> Task<void> {
                for (int i = 0; i < msgs; ++i) {
                    co_await shm->send(
                        2, 10, std::vector<std::uint8_t>(msg, 1),
                        true);
                }
            }(shmA, msgs, msg));
        } else if (which == If::socket) {
            auto sockA = std::make_shared<SocketInterface>(
                a, sys->site(0));
            auto sockB = std::make_shared<SocketInterface>(
                b, sys->site(1));
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<SocketInterface> sock,
                          int msgs, Tick &done) -> Task<void> {
                for (int i = 0; i < msgs; ++i)
                    co_await sock->receive(10);
                done = eq.now();
            }(eq, sockB, msgs, done));
            sim::spawn([](std::shared_ptr<SocketInterface> sock,
                          int msgs, std::uint32_t msg) -> Task<void> {
                for (int i = 0; i < msgs; ++i) {
                    co_await sock->send(
                        2, 10, std::vector<std::uint8_t>(msg, 1),
                        true);
                }
            }(sockA, msgs, msg));
        } else {
            auto nicA = std::make_shared<NectarRawNet>(
                a, sys->site(0), sys->directory());
            auto nicB = std::make_shared<NectarRawNet>(
                b, sys->site(1), sys->directory());
            auto stackA = std::make_shared<NodeNetStack>(a, *nicA);
            auto stackB = std::make_shared<NodeNetStack>(b, *nicB);
            sim::spawn([](sim::EventQueue &eq,
                          std::shared_ptr<NodeNetStack> s,
                          [[maybe_unused]] std::shared_ptr<NectarRawNet> nic, int msgs,
                          Tick &done) -> Task<void> {
                for (int i = 0; i < msgs; ++i)
                    co_await s->receive(10);
                done = eq.now();
            }(eq, stackB, nicB, msgs, done));
            sim::spawn([](std::shared_ptr<NodeNetStack> s,
                          [[maybe_unused]] std::shared_ptr<NectarRawNet> nic, int msgs,
                          std::uint32_t msg) -> Task<void> {
                for (int i = 0; i < msgs; ++i) {
                    co_await s->sendMessage(
                        2, 10, std::vector<std::uint8_t>(msg, 1));
                }
            }(stackA, nicA, msgs, msg));
        }
        eq.run();
        r.goodputMBs = static_cast<double>(bulkBytes) * 1000.0 /
                       static_cast<double>(done);
    }
    return r;
}

} // namespace

static void
E12_Interface(benchmark::State &state)
{
    auto which = static_cast<If>(state.range(0));
    Result r;
    for (auto _ : state)
        r = measure(which, 64, 512 * 1024);
    state.counters["one_way_us"] = r.oneWayNs / 1000.0;
    state.counters["bulk_MBs"] = r.goodputMBs;
}
BENCHMARK(E12_Interface)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"if_shm0_sock1_drv2"});

BENCHMARK_MAIN();
