/**
 * @file
 * E2 — HUB switching rate (Section 4, goal 2).
 *
 * Paper: "the HUB central controller can set up a new connection
 * through the crossbar switch every 70 nanosecond cycle."
 *
 * Method: saturate the controller from many ports at once and
 * measure the interval per executed command.
 */

#include <benchmark/benchmark.h>

#include "helpers/test_endpoint.hh"
#include "hub/hub.hh"
#include "topo/wiring.hh"

using namespace nectar;
using Endpoint = nectar::test::TestEndpoint;
using hub::Op;

static void
E2_ControllerCommandRate(benchmark::State &state)
{
    double ns_per_command = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        hub::RecordingMonitor mon;
        hub::Hub h(eq, "hub", 0, {}, &mon);
        topo::Wiring wiring(eq);
        std::vector<std::unique_ptr<Endpoint>> eps;
        // 8 endpoints each issue a burst of serialized (status-table)
        // commands; arrival rate 8 commands / 240 ns >> 1 / 70 ns.
        const int senders = 8, per_sender = 100;
        for (int i = 0; i < senders; ++i) {
            eps.push_back(std::make_unique<Endpoint>(eq));
            eps[i]->attachTx(wiring.connectEndpoint(
                *eps[i], h, i, "ep" + std::to_string(i)));
            for (int k = 0; k < per_sender; ++k)
                eps[i]->sendCommand(Op::queryReady, 0, 15);
        }
        eq.run();

        // Interval between the first and last controller executions.
        sim::Tick first = 0, last = 0;
        std::uint64_t execs = 0;
        for (const auto &e : mon.events()) {
            if (e.event != hub::HubEvent::commandExecuted)
                continue;
            if (execs == 0)
                first = e.when;
            last = e.when;
            ++execs;
        }
        ns_per_command = static_cast<double>(last - first) /
                         static_cast<double>(execs - 1);
    }
    state.counters["measured_ns_per_cmd"] = ns_per_command;
    state.counters["paper_ns_per_cmd"] = 70;
}
BENCHMARK(E2_ControllerCommandRate);

/** Connection churn: open+close pairs from all ports. */
static void
E2_ConnectionChurn(benchmark::State &state)
{
    double opens_per_us = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        hub::RecordingMonitor mon;
        hub::Hub h(eq, "hub", 0, {}, &mon);
        topo::Wiring wiring(eq);
        std::vector<std::unique_ptr<Endpoint>> eps;
        const int senders = 8, rounds = 50;
        for (int i = 0; i < senders; ++i) {
            eps.push_back(std::make_unique<Endpoint>(eq));
            eps[i]->attachTx(wiring.connectEndpoint(
                *eps[i], h, i, "ep" + std::to_string(i)));
            // Each sender repeatedly opens and closes its own
            // dedicated output (8..15), so opens never conflict.
            for (int k = 0; k < rounds; ++k) {
                eps[i]->sendCommand(Op::open, 0,
                                    static_cast<std::uint8_t>(8 + i));
                eps[i]->sendCommand(Op::close, 0,
                                    static_cast<std::uint8_t>(8 + i));
            }
        }
        eq.run();
        std::uint64_t opens = h.stats().opensOk.value();
        opens_per_us =
            static_cast<double>(opens) * 1000.0 /
            static_cast<double>(eq.now());
    }
    state.counters["measured_opens_per_us"] = opens_per_us;
    // The arrival path (3-byte commands at 80 ns/byte per port, 8
    // ports) limits this configuration to ~2 opens/us; the controller
    // itself could do 14.3/us (one per 70 ns cycle).
    state.counters["controller_limit_per_us"] = 1000.0 / 70.0;
}
BENCHMARK(E2_ConnectionChurn);

BENCHMARK_MAIN();
