/**
 * @file
 * E4 — the latency goals of Section 2.3.
 *
 * Paper: "excluding the transmission delays of the optical fibers,
 * the latency for a message sent between processes on two CABs should
 * be under 30 microseconds; the corresponding latency for processes
 * residing in nodes should be under 100 microseconds; and the latency
 * to establish a connection through a single HUB should be under 1
 * microsecond."
 */

#include "bench/common.hh"

#include "helpers/test_endpoint.hh"

using namespace nectar;
using namespace nectar::bench;

static void
E4_CabToCabProcessLatency(benchmark::State &state)
{
    double ns = 0;
    for (auto _ : state)
        ns = cabToCabOneWayNs();
    state.counters["measured_us"] = ns / 1000.0;
    state.counters["paper_goal_us"] = 30;
}
BENCHMARK(E4_CabToCabProcessLatency);

static void
E4_NodeToNodeProcessLatency(benchmark::State &state)
{
    double ns = 0;
    for (auto _ : state)
        ns = nodeToNodeOneWayNs();
    state.counters["measured_us"] = ns / 1000.0;
    state.counters["paper_goal_us"] = 100;
}
BENCHMARK(E4_NodeToNodeProcessLatency);

static void
E4_HubConnectionSetup(benchmark::State &state)
{
    double ns = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        hub::RecordingMonitor mon;
        hub::Hub h(eq, "hub", 0, {}, &mon);
        topo::Wiring wiring(eq);
        test::TestEndpoint a(eq), b(eq);
        a.attachTx(wiring.connectEndpoint(a, h, 0, "a"));
        b.attachTx(wiring.connectEndpoint(b, h, 1, "b"));
        a.sendCommand(hub::Op::open, 0, 1);
        eq.run();
        ns = static_cast<double>(mon.events().back().when);
    }
    state.counters["measured_us"] = ns / 1000.0;
    state.counters["paper_goal_us"] = 1;
}
BENCHMARK(E4_HubConnectionSetup);

/** The goals hold across message sizes up to the MTU. */
static void
E4_CabToCabBySize(benchmark::State &state)
{
    auto bytes = static_cast<std::uint32_t>(state.range(0));
    double ns = 0;
    for (auto _ : state)
        ns = cabToCabOneWayNs(30, bytes);
    state.counters["measured_us"] = ns / 1000.0;
    state.counters["bytes"] = bytes;
}
BENCHMARK(E4_CabToCabBySize)->Arg(16)->Arg(64)->Arg(256)->Arg(896);

BENCHMARK_MAIN();
