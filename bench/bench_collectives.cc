/**
 * @file
 * C1-C3 — collective operations over HUB hardware multicast.
 *
 * The HUB's command set makes one-to-many connections a hardware
 * primitive (Section 4.2.2: "multicast trees can be formed");
 * the collectives subsystem builds broadcast/reduce/allreduce/barrier
 * on top of it.  These benchmarks measure:
 *
 *  - C1: broadcast latency vs group size, hardware multicast tree
 *        against per-member unicast fan-out,
 *  - C2: allreduce latency/bandwidth scaling over group size and
 *        message size on both fabric paths,
 *  - C3: allreduce under a chaos plan that crashes a member
 *        mid-operation — must resolve via timeout + group epoch bump,
 *        never hang.
 *
 * Besides the google-benchmark console output, every row is collected
 * into BENCH_collectives.json (written by main) so downstream tooling
 * can consume the results without scraping.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "collectives/communicator.hh"
#include "collectives/group.hh"
#include "fault/chaos.hh"
#include "fault/plan.hh"
#include "nectarine/nectarine.hh"
#include "workload/allreduce.hh"

using namespace nectar;
using nectarine::NectarSystem;
using nectarine::TaskContext;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

namespace {

// ----- JSON row collection ------------------------------------------

struct Row
{
    std::string op;
    int members = 0;
    int bytes = 0;
    std::string path;
    std::map<std::string, double> metrics;
};

std::map<std::string, Row> &
rows()
{
    static std::map<std::string, Row> r;
    return r;
}

void
record(Row row)
{
    std::string key = row.op + "/" + std::to_string(row.members) +
                      "/" + std::to_string(row.bytes) + "/" +
                      row.path;
    rows()[key] = std::move(row);
}

const char *
pathName(collective::McastPath p)
{
    return p == collective::McastPath::unicast ? "unicast" : "hw";
}

// ----- C1: broadcast latency ----------------------------------------

struct BcastResult
{
    double latencyNs = 0;
    int okMembers = 0;
    double hwPackets = 0;
    double uniPackets = 0;
};

BcastResult
broadcastOnce(int members, std::uint32_t bytes,
              collective::McastPath path)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, members);
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    auto gid = std::make_shared<collective::GroupId>(0);
    struct Shared
    {
        Tick t0 = 0;
        Tick lastDone = 0;
        int okMembers = 0;
    };
    auto sh = std::make_shared<Shared>();
    auto *groupsp = &groups;
    std::vector<nectarine::TaskId> ids;
    for (int r = 0; r < members; ++r) {
        ids.push_back(api.createTask(
            static_cast<std::size_t>(r), "bc" + std::to_string(r),
            [gid, sh, groupsp, bytes,
             path](TaskContext &ctx) -> Task<void> {
                collective::CommunicatorConfig cfg;
                cfg.path = path;
                collective::Communicator comm(ctx, *groupsp, *gid,
                                              cfg);
                std::vector<std::uint8_t> data;
                if (comm.rank() == 0) {
                    data.assign(bytes, 0xAB);
                    sh->t0 = ctx.now();
                }
                auto res = co_await comm.broadcast(0, data);
                if (res.ok && data.size() == bytes &&
                    data.front() == 0xAB)
                    ++sh->okMembers;
                sh->lastDone = std::max(sh->lastDone, ctx.now());
            }));
    }
    *gid = groups.create("bcast", ids);
    eq.run();
    BcastResult r;
    r.latencyNs = static_cast<double>(sh->lastDone - sh->t0);
    r.okMembers = sh->okMembers;
    const auto &st = sys->site(0).transport->stats();
    r.hwPackets = static_cast<double>(st.mcastHwPackets.value());
    r.uniPackets =
        static_cast<double>(st.mcastUnicastPackets.value());
    return r;
}

void
C1_Broadcast(benchmark::State &state)
{
    int members = static_cast<int>(state.range(0));
    auto bytes = static_cast<std::uint32_t>(state.range(1));
    auto path = state.range(2) ? collective::McastPath::unicast
                               : collective::McastPath::automatic;
    BcastResult r;
    for (auto _ : state)
        r = broadcastOnce(members, bytes, path);
    state.counters["latency_us"] = r.latencyNs / 1e3;
    state.counters["ok_members"] = r.okMembers;
    state.counters["hw_packets"] = r.hwPackets;
    state.counters["unicast_packets"] = r.uniPackets;
    Row row{"broadcast", members, static_cast<int>(bytes),
            pathName(path), {}};
    row.metrics["latency_us"] = r.latencyNs / 1e3;
    row.metrics["ok_members"] = r.okMembers;
    row.metrics["hw_packets"] = r.hwPackets;
    row.metrics["unicast_packets"] = r.uniPackets;
    record(std::move(row));
}
BENCHMARK(C1_Broadcast)
    ->ArgsProduct({{2, 4, 8, 16}, {512}, {0, 1}})
    ->ArgNames({"members", "bytes", "path"});

// ----- C2: allreduce scaling ----------------------------------------

struct AllreduceRunResult
{
    workload::AllreduceReport report;
    double hwPackets = 0;
    double uniPackets = 0;
};

AllreduceRunResult
allreduceRun(int members, std::uint32_t bytes, int rounds,
             collective::McastPath path)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, members);
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    workload::AllreduceConfig cfg;
    cfg.members = members;
    cfg.bytes = bytes;
    cfg.rounds = rounds;
    cfg.comm.path = path;
    std::vector<std::size_t> sites(static_cast<std::size_t>(members));
    for (int i = 0; i < members; ++i)
        sites[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(i);
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    eq.run();
    AllreduceRunResult out;
    out.report = w.report();
    for (std::size_t i = 0; i < sys->siteCount(); ++i) {
        const auto &st = sys->site(i).transport->stats();
        out.hwPackets +=
            static_cast<double>(st.mcastHwPackets.value());
        out.uniPackets +=
            static_cast<double>(st.mcastUnicastPackets.value());
    }
    return out;
}

void
C2_Allreduce(benchmark::State &state)
{
    int members = static_cast<int>(state.range(0));
    auto bytes = static_cast<std::uint32_t>(state.range(1));
    auto path = state.range(2) ? collective::McastPath::unicast
                               : collective::McastPath::automatic;
    const int rounds = 4;
    AllreduceRunResult r;
    for (auto _ : state)
        r = allreduceRun(members, bytes, rounds, path);
    double perOpNs =
        static_cast<double>(r.report.lastFinish) / rounds;
    state.counters["latency_us"] = perOpNs / 1e3;
    state.counters["goodput_MBs"] =
        perOpNs > 0 ? static_cast<double>(bytes) * 1000.0 / perOpNs
                    : 0;
    state.counters["ok_members"] = r.report.okMembers;
    state.counters["wrong_members"] = r.report.wrongMembers;
    state.counters["fingerprint_lo"] = static_cast<double>(
        r.report.fingerprint & 0xFFFFFFFFull);
    Row row{"allreduce", members, static_cast<int>(bytes),
            pathName(path), {}};
    row.metrics["latency_us"] = perOpNs / 1e3;
    row.metrics["goodput_MBs"] = state.counters["goodput_MBs"];
    row.metrics["ok_members"] = r.report.okMembers;
    row.metrics["wrong_members"] = r.report.wrongMembers;
    row.metrics["hw_packets"] = r.hwPackets;
    row.metrics["unicast_packets"] = r.uniPackets;
    record(std::move(row));
}
BENCHMARK(C2_Allreduce)
    ->ArgsProduct({{2, 4, 8, 16}, {256, 16384}, {0, 1}})
    ->ArgNames({"members", "bytes", "path"});

// ----- C3: member crash mid-allreduce -------------------------------

struct ChaosResult
{
    workload::AllreduceReport report;
    Tick endOfSim = 0;
    std::uint64_t epochBumps = 0;
};

ChaosResult
chaosRun(int members, collective::McastPath path)
{
    sim::EventQueue eq;
    // Tight recovery clocks so failure detection, not the default
    // conservative timeouts, dominates the benchmark.
    nectarine::SiteConfig site;
    site.transport.maxRetransmits = 4;
    site.transport.maxRto = 4 * ms;
    auto sys = NectarSystem::singleHub(eq, members, site);
    nectarine::Nectarine api(*sys);
    collective::GroupDirectory groups;
    workload::AllreduceConfig cfg;
    cfg.members = members;
    cfg.bytes = 16384;
    cfg.rounds = 3;
    cfg.comm.path = path;
    cfg.comm.opTimeout = 20 * ms;
    std::vector<std::size_t> sites(static_cast<std::size_t>(members));
    for (int i = 0; i < members; ++i)
        sites[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(i);
    workload::AllreduceWorkload w(api, groups, sites, cfg);
    fault::FaultPlan plan;
    plan.name = "member-crash";
    plan.cabCrash(1 * ms, members / 2);
    fault::ChaosController chaos(*sys, plan);
    eq.run();
    return ChaosResult{w.report(), eq.now(), groups.epochBumps()};
}

void
C3_AllreduceMemberCrash(benchmark::State &state)
{
    int members = static_cast<int>(state.range(0));
    auto path = state.range(1) ? collective::McastPath::unicast
                               : collective::McastPath::automatic;
    ChaosResult r;
    for (auto _ : state)
        r = chaosRun(members, path);
    // Resolution means: the run ended (no hang is implicit in getting
    // here), the epoch was bumped exactly once, and every member
    // observed an error rather than completing against a dead peer.
    bool resolved = r.epochBumps >= 1 &&
                    r.report.okMembers == 0 &&
                    r.report.errorMembers >= members - 1;
    state.counters["resolved"] = resolved ? 1 : 0;
    state.counters["resolve_ms"] =
        static_cast<double>(r.endOfSim) / 1e6;
    state.counters["epoch_bumps"] =
        static_cast<double>(r.epochBumps);
    Row row{"allreduce_crash", members, 16384, pathName(path), {}};
    row.metrics["resolved"] = resolved ? 1 : 0;
    row.metrics["resolve_ms"] = state.counters["resolve_ms"];
    row.metrics["epoch_bumps"] = state.counters["epoch_bumps"];
    record(std::move(row));
}
BENCHMARK(C3_AllreduceMemberCrash)
    ->ArgsProduct({{8}, {0, 1}})
    ->ArgNames({"members", "path"});

// ----- JSON output --------------------------------------------------

void
writeJson(const std::string &file)
{
    // Acceptance summary: hardware multicast broadcast must beat the
    // unicast fan-out for every measured group of at least 4.
    bool hwBeats = true, sawPair = false;
    for (const auto &[key, row] : rows()) {
        if (row.op != "broadcast" || row.members < 4 ||
            row.path != "hw")
            continue;
        auto uni = rows().find("broadcast/" +
                               std::to_string(row.members) + "/" +
                               std::to_string(row.bytes) +
                               "/unicast");
        if (uni == rows().end())
            continue;
        sawPair = true;
        if (row.metrics.at("latency_us") >=
            uni->second.metrics.at("latency_us"))
            hwBeats = false;
    }
    std::ofstream out(file);
    out << "{\n  \"bench\": \"collectives\",\n";
    out << "  \"hw_beats_unicast_broadcast_ge4\": "
        << (sawPair && hwBeats ? "true" : "false") << ",\n";
    out << "  \"rows\": [\n";
    bool first = true;
    for (const auto &[key, row] : rows()) {
        if (!first)
            out << ",\n";
        first = false;
        out << "    {\"op\": \"" << row.op
            << "\", \"members\": " << row.members
            << ", \"bytes\": " << row.bytes << ", \"path\": \""
            << row.path << "\"";
        for (const auto &[k, v] : row.metrics)
            out << ", \"" << k << "\": " << v;
        out << "}";
    }
    out << "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeJson("BENCH_collectives.json");
    return 0;
}
