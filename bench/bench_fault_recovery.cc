/**
 * @file
 * E14 — transport recovery under burst loss (fault campaigns).
 *
 * A serialized stream of reliable messages crosses a link carrying a
 * Gilbert-Elliott burst-loss process at 0 / 0.1 / 1 / 5 percent
 * stationary wire-time loss (bursts of ~64 byte times, i.e. ~5 us
 * optical transients), once with the fixed 1 ms retransmission
 * timeout and once with the adaptive Jacobson/Karn estimator.  Every
 * loss stalls the (window-1-like) flow for one RTO, so goodput is a
 * direct readout of how well the timeout tracks the actual ~60 us
 * round-trip time; the recovery histogram gives the tail.
 */

#include "bench/common.hh"

using namespace nectar;
using namespace nectar::bench;

namespace {

struct RunResult
{
    double goodputMBs = 0;
    double p50us = 0;
    double p99us = 0;
    std::uint64_t failures = 0;
    std::uint64_t retransmissions = 0;
};

/** Serialized reliable stream from site 0 to site 1 under burst loss
 *  on site 0's uplink. */
RunResult
runStream(double lossRate, bool adaptive, std::uint64_t seed)
{
    sim::EventQueue eq;
    nectarine::SiteConfig site;
    site.transport.adaptiveRto = adaptive;
    auto sys = nectarine::NectarSystem::singleHub(eq, 2, site);
    sys->site(1).kernel->createMailbox("in", 1 << 20, 20);

    if (lossRate > 0) {
        const auto &at = sys->site(0).at;
        const auto &pair =
            sys->topo().endpointFibers(at.hubIndex, at.port);
        pair.forward->setBurstModel(
            phys::GilbertElliott::forLossRate(lossRate, 64.0), seed);
    }

    const int n = 200;
    const std::size_t size = 512;
    int delivered = 0;
    sim::spawn([](transport::Transport &tp, int n, std::size_t size,
                  int &delivered) -> sim::Task<void> {
        for (int i = 0; i < n; ++i) {
            if (co_await tp.sendReliable(
                    2, 20, std::vector<std::uint8_t>(size, 1)))
                ++delivered;
        }
    }(*sys->site(0).transport, n, size, delivered));
    eq.run();

    const auto &st = sys->site(0).transport->stats();
    RunResult r;
    r.goodputMBs = eq.now() > 0
                       ? static_cast<double>(delivered) * size *
                             1000.0 / static_cast<double>(eq.now())
                       : 0;
    if (st.recoveryNs.count()) {
        r.p50us = st.recoveryNs.percentile(50.0) / 1000.0;
        r.p99us = st.recoveryNs.percentile(99.0) / 1000.0;
    }
    r.failures = st.sendFailures.value();
    r.retransmissions = st.retransmissions.value();
    return r;
}

} // namespace

/** Goodput + recovery tail at each loss rate, fixed vs adaptive. */
static void
E14_BurstLossRecovery(benchmark::State &state)
{
    double lossRate = static_cast<double>(state.range(0)) / 1000.0;
    bool adaptive = state.range(1) != 0;
    RunResult r;
    for (auto _ : state)
        r = runStream(lossRate, adaptive, 42);
    state.counters["goodput_MBs"] = r.goodputMBs;
    state.counters["recover_p50_us"] = r.p50us;
    state.counters["recover_p99_us"] = r.p99us;
    state.counters["send_failures"] = static_cast<double>(r.failures);
    state.counters["retransmits"] =
        static_cast<double>(r.retransmissions);
}
BENCHMARK(E14_BurstLossRecovery)
    ->ArgNames({"loss_permille", "adaptive"})
    ->Args({0, 0})->Args({0, 1})
    ->Args({1, 0})->Args({1, 1})
    ->Args({10, 0})->Args({10, 1})
    ->Args({50, 0})->Args({50, 1});

/** The acceptance ratio: adaptive vs fixed goodput at 1% burst loss,
 *  averaged across seeds so a lucky loss pattern cannot decide it. */
static void
E14_AdaptiveAdvantage(benchmark::State &state)
{
    static const std::uint64_t seeds[] = {1, 7, 42, 99, 1234,
                                          5150, 90125, 2112};
    double ratio = 0, fixedMBs = 0, adaptMBs = 0;
    for (auto _ : state) {
        fixedMBs = adaptMBs = 0;
        for (std::uint64_t seed : seeds) {
            fixedMBs += runStream(0.01, false, seed).goodputMBs;
            adaptMBs += runStream(0.01, true, seed).goodputMBs;
        }
        fixedMBs /= std::size(seeds);
        adaptMBs /= std::size(seeds);
        ratio = fixedMBs > 0 ? adaptMBs / fixedMBs : 0;
    }
    state.counters["fixed_MBs"] = fixedMBs;
    state.counters["adaptive_MBs"] = adaptMBs;
    state.counters["adaptive_x"] = ratio;
}
BENCHMARK(E14_AdaptiveAdvantage);

BENCHMARK_MAIN();
