/**
 * @file
 * E3 — per-fiber and aggregate bandwidth (abstract, Section 3.1).
 *
 * Paper: "a star-shaped fiber-optic network with an aggregate
 * bandwidth of 1.6 gigabits/second" — 16 ports x 100 megabits/second,
 * all switching simultaneously through the crossbar.
 *
 * Method: 16 CABs on one HUB, each streaming packet-switched traffic
 * to its neighbour (i -> i+1 mod 16), so all 16 input and 16 output
 * ports are busy; measure total data switched per unit time.
 */

#include <benchmark/benchmark.h>

#include "nectarine/system.hh"
#include "sim/coro.hh"

using namespace nectar;
using nectarine::NectarSystem;
using sim::Task;
using sim::Tick;
using namespace sim::ticks;

namespace {

/** All-ports neighbour streaming at the datalink layer. */
double
aggregateGbps(int cabs, int packetsEach)
{
    sim::EventQueue eq;
    auto sys = NectarSystem::singleHub(eq, cabs);
    for (std::size_t i = 0; i < sys->siteCount(); ++i) {
        sys->site(i).datalink->rxHandler =
            [](sim::PacketView &&, bool) {};
    }

    const std::uint32_t bytes = 960;
    for (int i = 0; i < cabs; ++i) {
        auto route = sys->topo().route(sys->site(i).at,
                                       sys->site((i + 1) % cabs).at);
        sim::spawn([](datalink::Datalink &dl, topo::Route route,
                      int count,
                      std::uint32_t bytes) -> Task<void> {
            for (int k = 0; k < count; ++k) {
                co_await dl.sendPacket(
                    route,
                    phys::makePayload(
                        std::vector<std::uint8_t>(bytes, 1)),
                    datalink::SwitchMode::packet);
            }
        }(*sys->site(i).datalink, route, packetsEach, bytes));
    }
    eq.run();

    std::uint64_t switched =
        sys->topo().hubAt(0).stats().dataBytes.value();
    return static_cast<double>(switched) * 8.0 /
           static_cast<double>(eq.now()); // Gb/s (bytes*8 / ns)
}

} // namespace

static void
E3_SingleFiber(benchmark::State &state)
{
    double gbps = 0;
    // Two CABs stream to each other: two active fibers; halve for
    // the per-fiber figure.
    for (auto _ : state)
        gbps = aggregateGbps(2, 200) / 2.0;
    state.counters["measured_Gbps"] = gbps;
    state.counters["paper_Gbps"] = 0.1;
}
BENCHMARK(E3_SingleFiber);

static void
E3_AggregateScaling(benchmark::State &state)
{
    int cabs = static_cast<int>(state.range(0));
    double gbps = 0;
    for (auto _ : state)
        gbps = aggregateGbps(cabs, 100);
    state.counters["measured_Gbps"] = gbps;
    // Ideal: one full-rate stream per port.
    state.counters["ideal_Gbps"] = cabs * 0.1;
    if (cabs == 16)
        state.counters["paper_Gbps"] = 1.6;
}
BENCHMARK(E3_AggregateScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

BENCHMARK_MAIN();
