/**
 * @file
 * E19 — serving at scale: open-loop RPC load swept across offered
 * load on the single-HUB star and the 16-HUB fabric, measured like a
 * service (p50/p99/p999, goodput, saturation knee).
 *
 *  - S1: the headline sweep — a geometric offered-load ladder on each
 *        fabric, one million logical client flows, Poisson arrivals;
 *        the knee is located by the latency-slope criterion,
 *  - S2: one point per arrival process (poisson / bursty / hotspot /
 *        closed) at a moderate load, single HUB,
 *  - S3: the bounded-memory check — two million logical flows, with
 *        the peak flow-table size asserted to track outstanding
 *        requests, not population size,
 *  - SMOKE: a tiny two-rung ladder per fabric for the tier-1 gate.
 *
 * Every sweep lands in BENCH_serving.json; main() exits nonzero when
 * a recorded sweep failed to locate its knee (the acceptance gate).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serving/serving.hh"
#include "serving/sweep.hh"

using namespace nectar;
using namespace nectar::serving;

#ifndef NECTAR_FABRIC_DIR
#define NECTAR_FABRIC_DIR "examples/fabrics"
#endif

namespace {

// ----- result collection --------------------------------------------

std::map<std::string, SweepResult> &
sweeps()
{
    static std::map<std::string, SweepResult> s;
    return s;
}

bool &
boundedMemoryOk()
{
    static bool ok = true;
    return ok;
}

SystemBuilder
builderFor(bool fabric)
{
    if (fabric) {
        return [](sim::EventQueue &eq) {
            return nectarine::NectarSystem::fromTopoFile(
                eq,
                std::string(NECTAR_FABRIC_DIR) + "/fabric16.topo");
        };
    }
    return [](sim::EventQueue &eq) {
        return nectarine::NectarSystem::singleHub(eq, 8);
    };
}

/**
 * The sweep ladder for one fabric.  The single-HUB star saturates at
 * the 8-server compute ceiling (~400 k rps at 20 µs); the 16-HUB
 * fabric saturates far below its 208-server compute ceiling because
 * uniform destinations put ~94% of requests across trunk links —
 * trunk contention caps it near 40-90 k rps.  Each ladder brackets
 * its fabric's measured ceiling so the knee lands on an interior
 * rung.
 */
SweepConfig
ladderFor(bool fabric, bool smoke)
{
    SweepConfig cfg;
    cfg.fabric = fabric ? "fabric16" : "single_hub";
    cfg.serving.flows = 1'000'000;
    cfg.serving.seed = 42;
    if (fabric) {
        cfg.serving.serverCompute = 100 * sim::ticks::us;
        cfg.startRps = 8'000;
        cfg.growth = 1.8;
        cfg.steps = 7; // to 272k rps, past the trunk ceiling
    } else {
        cfg.serving.serverCompute = 20 * sim::ticks::us;
        cfg.startRps = 50'000;
        cfg.growth = 1.8;
        cfg.steps = 6; // to 944k rps, past the compute ceiling
    }
    if (smoke) {
        // Tier-1 gate: two rungs straddling the saturation point.
        cfg.serving.duration = 2 * sim::ticks::ms;
        cfg.startRps = fabric ? 20'000 : 150'000;
        cfg.growth = 8.0;
        cfg.steps = 2;
    } else {
        cfg.serving.duration = 10 * sim::ticks::ms;
    }
    return cfg;
}

void
runSweepBench(benchmark::State &state, bool fabric, bool smoke)
{
    SweepConfig cfg = ladderFor(fabric, smoke);
    SweepResult result;
    for (auto _ : state)
        result = runSweep(builderFor(fabric), cfg);
    const SweepStep &last = result.steps.back();
    state.counters["steps"] = static_cast<double>(result.steps.size());
    state.counters["knee_rps"] = result.kneeRps;
    state.counters["p99_us_last"] = last.report.p99Ns / 1e3;
    state.counters["goodput_MBs_last"] = last.report.goodputMBs;
    sweeps()[(smoke ? "smoke/" : "full/") + cfg.fabric] =
        std::move(result);
}

void
S1_Sweep(benchmark::State &state)
{
    runSweepBench(state, state.range(0) == 1, false);
}
BENCHMARK(S1_Sweep)->Arg(0)->Arg(1)->ArgName("fabric")
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void
SMOKE_Sweep(benchmark::State &state)
{
    runSweepBench(state, state.range(0) == 1, true);
}
BENCHMARK(SMOKE_Sweep)->Arg(0)->Arg(1)->ArgName("fabric")
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ----- S2: arrival processes ----------------------------------------

void
S2_Arrivals(benchmark::State &state, Arrival arrival)
{
    ServingReport rep;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = builderFor(false)(eq);
        ServingConfig cfg;
        cfg.arrival = arrival;
        cfg.flows = 1'000'000;
        cfg.offeredRps = 150'000;
        cfg.serverCompute = 20 * sim::ticks::us;
        cfg.duration = 10 * sim::ticks::ms;
        cfg.seed = 42;
        ServingWorkload w(*sys, cfg);
        eq.run();
        rep = w.report();
    }
    state.counters["completed"] = static_cast<double>(rep.completed);
    state.counters["p50_us"] = rep.p50Ns / 1e3;
    state.counters["p99_us"] = rep.p99Ns / 1e3;
    state.counters["p999_us"] = rep.p999Ns / 1e3;
    state.counters["achieved_rps"] = rep.achievedRps;
    state.counters["goodput_MBs"] = rep.goodputMBs;
}
BENCHMARK_CAPTURE(S2_Arrivals, poisson, Arrival::poisson)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(S2_Arrivals, bursty, Arrival::bursty)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(S2_Arrivals, hotspot, Arrival::hotspot)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(S2_Arrivals, closed, Arrival::closed)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ----- S3: bounded memory at two million flows ----------------------

void
S3_MillionFlows(benchmark::State &state)
{
    ServingReport rep;
    std::uint64_t bound = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = builderFor(false)(eq);
        ServingConfig cfg;
        cfg.flows = 2'000'000;
        cfg.offeredRps = 200'000;
        cfg.serverCompute = 20 * sim::ticks::us;
        cfg.duration = 10 * sim::ticks::ms;
        cfg.seed = 7;
        ServingWorkload w(*sys, cfg);
        eq.run();
        rep = w.report();
        bound = cfg.maxOutstandingPerHost;
    }
    state.counters["flows"] = 2'000'000;
    state.counters["completed"] = static_cast<double>(rep.completed);
    state.counters["peak_flow_table"] =
        static_cast<double>(rep.peakFlowTable);
    // The whole point: memory tracks outstanding requests, never the
    // two-million-flow population.
    if (rep.peakFlowTable > bound) {
        std::fprintf(stderr,
                     "S3: flow table exceeded outstanding bound "
                     "(%llu > %llu)\n",
                     static_cast<unsigned long long>(
                         rep.peakFlowTable),
                     static_cast<unsigned long long>(bound));
        boundedMemoryOk() = false;
    }
}
BENCHMARK(S3_MillionFlows)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ----- acceptance + JSON --------------------------------------------

bool
writeJsonAndCheck(const std::string &file)
{
    std::vector<SweepResult> all;
    all.reserve(sweeps().size());
    for (const auto &[key, r] : sweeps())
        all.push_back(r);
    if (!all.empty())
        writeServingJson(file, all);

    bool ok = boundedMemoryOk();
    for (const auto &[key, r] : sweeps()) {
        if (r.kneeIndex < 0) {
            std::fprintf(stderr,
                         "bench_serving: no saturation knee in "
                         "sweep %s\n",
                         key.c_str());
            ok = false;
        }
        for (const SweepStep &st : r.steps) {
            if (st.report.completed == 0) {
                std::fprintf(stderr,
                             "bench_serving: step at %.0f rps "
                             "completed nothing (%s)\n",
                             st.offeredRps, key.c_str());
                ok = false;
            }
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return writeJsonAndCheck("BENCH_serving.json") ? 0 : 1;
}
