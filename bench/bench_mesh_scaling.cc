/**
 * @file
 * E10 — multi-HUB scaling (Section 4, goal 3; Figure 4).
 *
 * Paper: "Because of the low switching and transfer latency of a
 * single HUB, the latency of process to process communication in a
 * multi-HUB system is not significantly higher" — and the same HUB
 * design scales "up to a network of hundreds of supercomputer-class
 * machines" by connecting clusters in a mesh.
 */

#include <benchmark/benchmark.h>

#include "nectarine/nectarine.hh"
#include "workload/probes.hh"
#include "workload/traffic.hh"

using namespace nectar;
using nectarine::Nectarine;
using nectarine::NectarSystem;

/** RTT as a function of HUB hop count across a 4x4 mesh. */
static void
E10_LatencyVsHops(benchmark::State &state)
{
    int manhattan = static_cast<int>(state.range(0));
    double rtt_us = 0, per_hop_ns = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = NectarSystem::mesh2D(eq, 4, 4, 1);
        Nectarine api(*sys);
        // Walk along the top row then down: site index == hub index.
        std::size_t dst = static_cast<std::size_t>(manhattan);
        workload::PingPongConfig cfg;
        cfg.iterations = 40;
        workload::PingPong pp(api, 0, dst, cfg);
        eq.run();
        rtt_us = pp.meanRttUs();

        // Against the 0-extra-hops reference.
        sim::EventQueue eq0;
        auto sys0 = NectarSystem::mesh2D(eq0, 4, 4, 2);
        Nectarine api0(*sys0);
        workload::PingPong base(api0, 0, 1, cfg); // same hub
        eq0.run();
        per_hop_ns = (rtt_us - base.meanRttUs()) * 1000.0 /
                     (2.0 * manhattan);
    }
    state.counters["rtt_us"] = rtt_us;
    state.counters["extra_per_hop_ns"] = per_hop_ns;
    state.counters["hops"] = manhattan;
}
BENCHMARK(E10_LatencyVsHops)->Arg(1)->Arg(2)->Arg(3)->Arg(6);

/** Whole-mesh random traffic: delivery stays complete under load. */
static void
E10_MeshRandomTraffic(benchmark::State &state)
{
    int side = static_cast<int>(state.range(0));
    double rate = 0, mean_lat_us = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        auto sys = NectarSystem::mesh2D(eq, side, side, 2);
        Nectarine api(*sys);
        workload::RandomTrafficConfig cfg;
        cfg.messagesPerSite = 25;
        cfg.meanGap = 300 * sim::ticks::us;
        workload::RandomTraffic rt(api, cfg);
        eq.run();
        rate = rt.deliveryRate();
        mean_lat_us = rt.latency().mean() / 1000.0;
    }
    state.counters["delivery_rate"] = rate;
    state.counters["mean_latency_us"] = mean_lat_us;
    state.counters["hubs"] = side * side;
}
BENCHMARK(E10_MeshRandomTraffic)->Arg(2)->Arg(3)->Arg(4);

BENCHMARK_MAIN();
