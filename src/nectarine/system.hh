/**
 * @file
 * Whole-system assembly: the Nectar-net plus fully stacked CABs.
 *
 * Builds the system of Figure 1: a topology of HUBs with CABs
 * attached, each CAB running its kernel, datalink, and transport.
 * Nodes (src/node) and the Nectarine programming interface layer on
 * top of the sites this class creates.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cab/cab.hh"
#include "cabos/kernel.hh"
#include "datalink/datalink.hh"
#include "topo/topology.hh"
#include "transport/directory.hh"
#include "transport/transport.hh"

namespace nectar::nectarine {

/** Per-site configuration overrides. */
struct SiteConfig
{
    cab::CabConfig cab;
    datalink::DatalinkConfig datalink;
    transport::TransportConfig transport;
};

/**
 * One CAB attachment: the board and its software stack.
 */
struct CabSite
{
    transport::CabAddress address = 0;
    topo::Endpoint at;
    std::unique_ptr<cab::Cab> board;
    std::unique_ptr<cabos::Kernel> kernel;
    std::unique_ptr<datalink::Datalink> datalink;
    std::unique_ptr<transport::Transport> transport;
};

/**
 * A complete Nectar system: topology, directory, and CAB sites.
 */
class NectarSystem
{
  public:
    /**
     * @param eq Event queue.
     * @param topology The HUB interconnect (takes ownership).
     */
    NectarSystem(sim::EventQueue &eq,
                 std::unique_ptr<topo::Topology> topology);

    /**
     * Shard-aware assembly: each CAB stack joins its HUB's cluster
     * queue (shards.queueFor(hubIndex)).  Pass a topology built on
     * the same shard set.  The shard set must outlive the system.
     */
    NectarSystem(sim::ShardSet &shards,
                 std::unique_ptr<topo::Topology> topology);

    /**
     * Attach a CAB to @p hubIndex/@p port with a full software stack.
     *
     * @param name Instance name ("" derives cab<N>).
     * @param config Per-site tuning.
     * @param fiberDelay Propagation delay of the attachment fibers.
     * @return The new site.
     */
    CabSite &addCab(int hubIndex, hub::PortId port,
                    const std::string &name = "",
                    const SiteConfig &config = {},
                    sim::Tick fiberDelay = 0);

    /** Attach a CAB on the first free port of @p hubIndex. */
    CabSite &
    addCabAuto(int hubIndex, const SiteConfig &config = {})
    {
        return addCab(hubIndex, topo().firstFreePort(hubIndex), "",
                      config);
    }

    CabSite &site(std::size_t i);
    std::size_t siteCount() const { return sites.size(); }

    topo::Topology &topo() { return *topology; }
    transport::NetworkDirectory &directory() { return dir; }
    sim::EventQueue &eventq() { return eq; }

    /** The shard set this system was assembled on, or nullptr for
     *  the classic single-queue assembly. */
    sim::ShardSet *shards() { return _shards; }

    /**
     * Attach @p probe to every existing site's transport and to
     * every site added later (nullptr detaches).  The probe must
     * outlive the system or be detached first.
     */
    void attachDeliveryProbe(transport::DeliveryProbe *probe);

    // ----- Convenience builders -------------------------------------

    /**
     * HUB configuration the builders default to: stock hardware plus
     * the idle-circuit watchdog.  A bare HUB leaves it off so circuits
     * persist as the hardware's do; a full transport stack is what
     * gets wedged when a lost close all strands one, so the system
     * builders turn it on.
     */
    static hub::HubConfig defaultHubConfig();

    /**
     * Build a whole system from a declarative fabric: HUBs and
     * trunks via topo::buildTopology, then one CAB site per CabDecl
     * in declared order (so addresses follow the description).  The
     * generator-based builders below are thin wrappers over this.
     */
    static std::unique_ptr<NectarSystem>
    fromDescription(sim::EventQueue &eq,
                    const topo::TopologyDescription &desc,
                    const SiteConfig &config = {},
                    const hub::HubConfig &hubConfig =
                        defaultHubConfig());

    /**
     * Shard-aware fromDescription(): HUB h and its CABs live on
     * @p shards.queueFor(h); trunks cross through the shard set's
     * mailboxes.  The shard set needs one cluster per declared HUB
     * (sim::ParallelEngine(desc.hubs.size(), threads), or a
     * SequentialShardSet for the one-queue baseline).
     */
    static std::unique_ptr<NectarSystem>
    fromDescription(sim::ShardSet &shards,
                    const topo::TopologyDescription &desc,
                    const SiteConfig &config = {},
                    const hub::HubConfig &hubConfig =
                        defaultHubConfig());

    /** fromDescription() of a .topo file (topo::loadTopologyFile). */
    static std::unique_ptr<NectarSystem>
    fromTopoFile(sim::EventQueue &eq, const std::string &path,
                 const SiteConfig &config = {},
                 const hub::HubConfig &hubConfig =
                     defaultHubConfig());

    /** A single-HUB star with @p cabs CABs (Figure 2). */
    static std::unique_ptr<NectarSystem>
    singleHub(sim::EventQueue &eq, int cabs,
              const SiteConfig &config = {},
              const hub::HubConfig &hubConfig = defaultHubConfig());

    /**
     * A rows x cols 2-D mesh of HUB clusters with @p cabsPerHub CABs
     * on each (Figure 4).
     */
    static std::unique_ptr<NectarSystem>
    mesh2D(sim::EventQueue &eq, int rows, int cols, int cabsPerHub,
           const SiteConfig &config = {},
           const hub::HubConfig &hubConfig = defaultHubConfig());

  private:
    sim::EventQueue &eq;
    sim::ShardSet *_shards = nullptr;
    std::unique_ptr<topo::Topology> topology;
    transport::NetworkDirectory dir;
    std::vector<std::unique_ptr<CabSite>> sites;
    transport::DeliveryProbe *deliveryProbe = nullptr;
};

} // namespace nectar::nectarine
