#include "ipsc.hh"

#include "sim/logging.hh"

namespace nectar::nectarine::ipsc {

IpscSystem::IpscSystem(Nectarine &api, int nodes)
    : api(api), nodes(nodes)
{
    if (nodes <= 0)
        sim::fatal("IpscSystem: node count must be positive");
    taskIds.resize(nodes);
}

void
IpscSystem::load(std::function<sim::Task<void>(IpscNode &)> program)
{
    std::size_t site_count = api.system().siteCount();
    if (site_count == 0)
        sim::fatal("IpscSystem: system has no CABs");
    for (int n = 0; n < nodes; ++n) {
        taskIds[n] = api.createTask(
            n % site_count, "ipsc" + std::to_string(n),
            [this, n, program](TaskContext &ctx) -> sim::Task<void> {
                IpscNode self(*this, ctx, n);
                co_await program(self);
            });
    }
}

TaskId
IpscSystem::taskOf(int n) const
{
    if (n < 0 || n >= nodes)
        sim::fatal("IpscSystem: bad node number");
    return taskIds[n];
}

int
IpscNode::numnodes() const
{
    return cube.numnodes();
}

sim::Task<void>
IpscNode::csend(long type, std::vector<std::uint8_t> msg, int to)
{
    // The iPSC type becomes the mailbox tag; prepend it so the
    // receiver can match typed reads.  (The tag travels in-band:
    // Nectar's stream protocol regenerates receiver-side tags from
    // msgId, so the type is carried in the first 8 payload bytes.)
    std::vector<std::uint8_t> framed(8 + msg.size());
    auto t = static_cast<std::uint64_t>(type);
    for (int i = 0; i < 8; ++i)
        framed[i] = static_cast<std::uint8_t>(t >> (56 - 8 * i));
    std::copy(msg.begin(), msg.end(), framed.begin() + 8);
    co_await ctx.send(cube.taskOf(to), std::move(framed));
}

sim::Task<std::vector<std::uint8_t>>
IpscNode::crecv(long type)
{
    // Typed receive: messages of other types seen while waiting are
    // parked in a per-node stash (the out-of-order read pattern of
    // Section 6.1) and handed to their own crecv later.
    auto want = static_cast<std::uint64_t>(type);

    for (auto it = stash.begin(); it != stash.end(); ++it) {
        if (it->tag == want) {
            auto payload = it->view().slice(8).toVector();
            stash.erase(it);
            co_return payload;
        }
    }

    for (;;) {
        cabos::Message m = co_await ctx.receive();
        if (m.size() < 8) {
            sim::warn("ipsc::crecv: runt message discarded");
            continue;
        }
        std::uint64_t got = 0;
        for (int i = 0; i < 8; ++i)
            got = (got << 8) | m.view()[i];
        if (got == want) {
            // App boundary: the typed payload is materialized here.
            co_return m.view().slice(8).toVector();
        }
        m.tag = got;
        stash.push_back(std::move(m));
    }
}

} // namespace nectar::nectarine::ipsc
