#include "nectarine.hh"

#include "sim/logging.hh"

namespace nectar::nectarine {

Buffer::Buffer(cabos::Kernel &kernel, std::uint32_t len)
    : kernel(kernel), bytes(len, 0)
{
    auto a = kernel.allocator().allocate(std::max<std::uint32_t>(len, 1));
    addr = a.value_or(0);
    if (!a)
        sim::warn("Buffer: CAB data memory exhausted");
}

Buffer::~Buffer()
{
    if (addr != 0)
        kernel.allocator().release(addr);
}

TaskId
Nectarine::createTask(std::size_t siteIndex, const std::string &name,
                      TaskBody body)
{
    if (names.count(name))
        sim::fatal("Nectarine: duplicate task name: " + name);
    CabSite &site = sys.site(siteIndex);

    std::uint16_t index = nextIndex[site.address]++;
    TaskId id{site.address, index};
    names.emplace(name, id);
    tasks.push_back(TaskInfo{name, id, siteIndex});

    auto &inbox = site.kernel->createMailbox(
        name + ".inbox", 256 * 1024, inboxId(index));

    // The task runs as a CAB kernel thread with its context owned by
    // the coroutine wrapper.
    site.kernel->spawnThread(
        name,
        [](Nectarine &api, TaskId id, CabSite &site,
           cabos::Mailbox &inbox, TaskBody body) -> sim::Task<void> {
            TaskContext ctx(api, id, site, inbox);
            co_await body(ctx);
            api.completed.fetch_add(1, std::memory_order_relaxed);
        }(*this, id, site, inbox, std::move(body)));
    return id;
}

TaskId
Nectarine::registerExternalTask(std::size_t siteIndex,
                                const std::string &name)
{
    if (names.count(name))
        sim::fatal("Nectarine: duplicate task name: " + name);
    CabSite &site = sys.site(siteIndex);
    std::uint16_t index = nextIndex[site.address]++;
    TaskId id{site.address, index};
    names.emplace(name, id);
    tasks.push_back(TaskInfo{name, id, siteIndex});
    site.kernel->createMailbox(name + ".inbox", 256 * 1024,
                               inboxId(index));
    return id;
}

std::optional<TaskId>
Nectarine::lookup(const std::string &name) const
{
    auto it = names.find(name);
    if (it == names.end())
        return std::nullopt;
    return it->second;
}

CabSite &
Nectarine::siteOf(TaskId id)
{
    for (std::size_t i = 0; i < sys.siteCount(); ++i) {
        if (sys.site(i).address == id.cab)
            return sys.site(i);
    }
    sim::fatal("Nectarine: unknown CAB address in TaskId");
}

sim::Task<bool>
TaskContext::send(TaskId to, sim::PacketView msg,
                  Delivery how, std::uint64_t tag)
{
    (void)tag; // the receiver sees msgId as the tag for streams
    std::uint16_t dst_box = Nectarine::inboxId(to.index);
    if (how == Delivery::reliable) {
        co_return co_await site.transport->sendReliable(
            to.cab, dst_box, std::move(msg));
    }
    co_return co_await site.transport->sendDatagram(to.cab, dst_box,
                                                    std::move(msg));
}

sim::Task<bool>
TaskContext::sendBuffer(TaskId to, const Buffer &buf, Delivery how)
{
    // The DMA controller gathers directly from the buffer's CAB
    // memory (Section 6.2.1); no intermediate copy is charged.
    co_return co_await send(to, buf.data(), how);
}

sim::Task<std::optional<std::vector<std::uint8_t>>>
TaskContext::call(TaskId server, std::vector<std::uint8_t> req)
{
    co_return co_await site.transport->request(
        server.cab, Nectarine::inboxId(server.index), std::move(req));
}

} // namespace nectar::nectarine
