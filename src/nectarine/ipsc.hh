/**
 * @file
 * The Intel iPSC communication library on top of Nectarine.
 *
 * Section 7: "The flexibility of Nectar allows it to run applications
 * originally written for other parallel systems.  For example, to run
 * hypercube applications on Nectar, we have implemented the Intel
 * iPSC communication library on top of Nectarine.  Since Nectarine is
 * functionally a superset of the iPSC primitives, this implementation
 * is relatively simple."
 *
 * The iPSC/2 model: `numnodes` SPMD processes numbered 0..N-1
 * exchange typed messages with csend()/crecv(); the message *type*
 * acts as the match key (mapped onto Nectarine's tagged mailbox
 * reads).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "nectarine/nectarine.hh"

namespace nectar::nectarine::ipsc {

class IpscSystem;

/**
 * The per-node view of the cube: what an iPSC program sees.
 */
class IpscNode
{
  public:
    IpscNode(IpscSystem &cube, TaskContext &ctx, int node)
        : cube(cube), ctx(ctx), node(node)
    {}

    /** This node's number (iPSC mynode()). */
    int mynode() const { return node; }

    /** Number of nodes in the cube (iPSC numnodes()). */
    int numnodes() const;

    /**
     * Typed synchronous send (iPSC csend): completes when the
     * message has been handed to the communication system.
     */
    sim::Task<void> csend(long type, std::vector<std::uint8_t> msg,
                          int to);

    /**
     * Typed blocking receive (iPSC crecv): returns the next message
     * of the given type, regardless of arrival order.
     */
    sim::Task<std::vector<std::uint8_t>> crecv(long type);

    /** Simulated local computation. */
    auto work(sim::Tick cost) { return ctx.compute(cost); }

    /** Underlying Nectarine context (escape hatch). */
    TaskContext &context() { return ctx; }

    /** Neighbor along hypercube dimension @p dim. */
    int
    neighbor(int dim) const
    {
        return node ^ (1 << dim);
    }

  private:
    IpscSystem &cube;
    TaskContext &ctx;
    int node;
    /** Messages of other types seen while waiting in crecv(). */
    std::deque<cabos::Message> stash;
};

/**
 * An iPSC "cube" mapped onto Nectar: node i runs as a Nectarine task
 * on site i % siteCount.
 */
class IpscSystem
{
  public:
    /**
     * @param api The Nectarine runtime.
     * @param nodes Cube size (any positive count; a power of two for
     *        hypercube-dimension helpers to be meaningful).
     */
    IpscSystem(Nectarine &api, int nodes);

    int numnodes() const { return nodes; }

    /**
     * Load an SPMD program: @p program runs once on every node.
     * Tasks start when the event queue runs.
     */
    void
    load(std::function<sim::Task<void>(IpscNode &)> program);

    /** Task id of cube node @p n. */
    TaskId taskOf(int n) const;

    /** Nodes whose program has completed. */
    int completedNodes() const { return api.completedTasks(); }

  private:
    friend class IpscNode;

    Nectarine &api;
    int nodes;
    std::vector<TaskId> taskIds;
};

} // namespace nectar::nectarine::ipsc
