#include "system.hh"

#include "sim/logging.hh"
#include "topo/topofile.hh"

namespace nectar::nectarine {

NectarSystem::NectarSystem(sim::EventQueue &eq,
                           std::unique_ptr<topo::Topology> topology)
    : eq(eq), topology(std::move(topology)), dir(*this->topology)
{
    if (!this->topology)
        sim::fatal("NectarSystem: null topology");
    // Each HUB anchors one thread-partition cluster: tag it (and
    // its ports/controller) with its own index.  CAB stacks join
    // their HUB's cluster in addCab; fiber links stay unowned —
    // they are the sanctioned mediated crossings.
    for (int h = 0; h < this->topology->numHubs(); ++h)
        this->topology->hubAt(h).setOwnerCluster(h);
}

NectarSystem::NectarSystem(sim::ShardSet &shards,
                           std::unique_ptr<topo::Topology> topology)
    : NectarSystem(shards.queueFor(0), std::move(topology))
{
    _shards = &shards;
}

CabSite &
NectarSystem::addCab(int hubIndex, hub::PortId port,
                     const std::string &name, const SiteConfig &config,
                     sim::Tick fiberDelay)
{
    auto site = std::make_unique<CabSite>();
    site->address =
        static_cast<transport::CabAddress>(sites.size() + 1);
    site->at = topo::Endpoint{hubIndex, port};

    std::string cab_name =
        name.empty() ? "cab" + std::to_string(site->address) : name;

    // The whole stack joins its HUB's cluster: the CAB board anchors
    // the cluster's queue and the kernel/datalink/transport layers
    // inherit it through the component chain.
    sim::EventQueue &q =
        _shards != nullptr ? _shards->queueFor(hubIndex) : eq;
    site->board = std::make_unique<cab::Cab>(q, cab_name, config.cab);
    auto &tx = topology->attachEndpoint(*site->board, hubIndex, port,
                                        cab_name, fiberDelay);
    site->board->attachTx(tx);

    site->kernel = std::make_unique<cabos::Kernel>(*site->board);
    site->datalink = std::make_unique<datalink::Datalink>(
        *site->kernel, config.datalink);
    site->transport = std::make_unique<transport::Transport>(
        *site->kernel, *site->datalink, dir, site->address,
        config.transport);

    site->board->setOwnerCluster(hubIndex);
    site->kernel->setOwnerCluster(hubIndex);
    site->datalink->setOwnerCluster(hubIndex);
    site->transport->setOwnerCluster(hubIndex);

    dir.registerCab(site->address, site->at);
    site->transport->setProbe(deliveryProbe);
    sites.push_back(std::move(site));
    return *sites.back();
}

void
NectarSystem::attachDeliveryProbe(transport::DeliveryProbe *probe)
{
    deliveryProbe = probe;
    for (auto &s : sites)
        s->transport->setProbe(probe);
}

CabSite &
NectarSystem::site(std::size_t i)
{
    if (i >= sites.size())
        sim::panic("NectarSystem::site: bad index");
    return *sites[i];
}

hub::HubConfig
NectarSystem::defaultHubConfig()
{
    hub::HubConfig cfg;
    cfg.circuitIdleTimeout = 1 * sim::ticks::ms;
    return cfg;
}

std::unique_ptr<NectarSystem>
NectarSystem::fromDescription(sim::EventQueue &eq,
                              const topo::TopologyDescription &desc,
                              const SiteConfig &config,
                              const hub::HubConfig &hubConfig)
{
    auto sys = std::make_unique<NectarSystem>(
        eq, topo::buildTopology(eq, desc, hubConfig));
    for (const topo::CabDecl &c : desc.cabs)
        sys->addCab(c.hub, c.port, c.name, config, c.latency);
    return sys;
}

std::unique_ptr<NectarSystem>
NectarSystem::fromDescription(sim::ShardSet &shards,
                              const topo::TopologyDescription &desc,
                              const SiteConfig &config,
                              const hub::HubConfig &hubConfig)
{
    auto sys = std::make_unique<NectarSystem>(
        shards, topo::buildTopology(shards, desc, hubConfig));
    for (const topo::CabDecl &c : desc.cabs)
        sys->addCab(c.hub, c.port, c.name, config, c.latency);
    return sys;
}

std::unique_ptr<NectarSystem>
NectarSystem::fromTopoFile(sim::EventQueue &eq,
                           const std::string &path,
                           const SiteConfig &config,
                           const hub::HubConfig &hubConfig)
{
    return fromDescription(eq, topo::loadTopologyFile(path), config,
                           hubConfig);
}

std::unique_ptr<NectarSystem>
NectarSystem::singleHub(sim::EventQueue &eq, int cabs,
                        const SiteConfig &config,
                        const hub::HubConfig &hubConfig)
{
    if (cabs > hubConfig.numPorts)
        sim::fatal("NectarSystem::singleHub: more CABs than ports");
    return fromDescription(
        eq, topo::describeSingleHub(cabs, hubConfig.numPorts), config,
        hubConfig);
}

std::unique_ptr<NectarSystem>
NectarSystem::mesh2D(sim::EventQueue &eq, int rows, int cols,
                     int cabsPerHub, const SiteConfig &config,
                     const hub::HubConfig &hubConfig)
{
    if (cabsPerHub > hubConfig.numPorts - 4)
        sim::fatal("NectarSystem::mesh2D: mesh links need 4 ports "
                   "per HUB");
    return fromDescription(
        eq,
        topo::describeMesh2D(rows, cols, cabsPerHub, 0,
                             hubConfig.numPorts),
        config, hubConfig);
}

} // namespace nectar::nectarine
