/**
 * @file
 * Nectarine: the Nectar programming interface.
 *
 * Section 6.3: "Nectarine presents the programmer with a simple
 * communication abstraction: applications consist of tasks that
 * communicate by transferring messages between user-specified
 * buffers.  Tasks are processes on any CAB or node.  Messages can be
 * located in any memory.  Using Nectarine, the programmer can create
 * tasks, manage buffers, and send and receive messages.  Nectarine
 * minimizes the number of copy operations and uses DMA whenever
 * possible."
 *
 * Tasks here are CAB-resident kernel threads with a private inbox
 * mailbox; a global name/id directory lets any task address any
 * other.  Buffers are allocations in CAB data memory.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "nectarine/system.hh"
#include "sim/coro.hh"

namespace nectar::nectarine {

class Nectarine;

/** Global task identity: (CAB address, per-CAB task index). */
struct TaskId
{
    transport::CabAddress cab = 0;
    std::uint16_t index = 0;

    bool operator==(const TaskId &) const = default;
    auto operator<=>(const TaskId &) const = default;
};

/** Delivery discipline for Nectarine messages. */
enum class Delivery {
    reliable, ///< Byte-stream protocol: acknowledged, retransmitted.
    datagram, ///< Best effort.
};

/**
 * A buffer in CAB data memory, allocated through the kernel.
 * Releases its allocation on destruction (RAII).
 */
class Buffer
{
  public:
    Buffer(cabos::Kernel &kernel, std::uint32_t len);
    ~Buffer();

    Buffer(const Buffer &) = delete;
    Buffer &operator=(const Buffer &) = delete;

    /** CAB data-memory address, 0 if allocation failed. */
    std::uint32_t address() const { return addr; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(bytes.size());
    }
    bool valid() const { return addr != 0; }

    std::vector<std::uint8_t> &data() { return bytes; }
    const std::vector<std::uint8_t> &data() const { return bytes; }

  private:
    cabos::Kernel &kernel;
    std::uint32_t addr = 0;
    std::vector<std::uint8_t> bytes;
};

/**
 * The execution context handed to each task body.
 */
class TaskContext
{
  public:
    TaskContext(Nectarine &api, TaskId id, CabSite &site,
                cabos::Mailbox &inbox)
        : api(api), _id(id), site(site), inbox(inbox)
    {}

    TaskId id() const { return _id; }
    CabSite &home() { return site; }
    cabos::Kernel &kernel() { return *site.kernel; }
    sim::Tick now() const { return site.kernel->now(); }

    /** Simulated compute on this task's CAB. */
    auto
    compute(sim::Tick cost)
    {
        return site.kernel->compute(cost);
    }

    /** Sleep for simulated time. */
    sim::Task<void> sleepFor(sim::Tick d)
    {
        return site.kernel->sleepFor(d);
    }

    // ----- Messaging ------------------------------------------------

    /**
     * Send a message to another task.  Accepts a PacketView (or a
     * vector, converted implicitly); the bytes are never copied on
     * their way down the stack.
     * @param tag Optional tag (retrievable via receiveTagged).
     */
    sim::Task<bool> send(TaskId to, sim::PacketView msg,
                         Delivery how = Delivery::reliable,
                         std::uint64_t tag = 0);

    /** Send a buffer's contents (gathered by DMA, no extra copy). */
    sim::Task<bool> sendBuffer(TaskId to, const Buffer &buf,
                               Delivery how = Delivery::reliable);

    /** Blocking receive from this task's inbox (FIFO). */
    sim::Task<cabos::Message> receive() { return inbox.get(); }

    /** Blocking tag-matched receive (out-of-order). */
    sim::Task<cabos::Message> receiveTagged(std::uint64_t tag)
    {
        return inbox.getTag(tag);
    }

    /** Non-blocking receive. */
    std::optional<cabos::Message> tryReceive()
    {
        return inbox.tryGet();
    }

    /** Number of messages waiting in the inbox. */
    std::size_t pending() const { return inbox.count(); }

    // ----- RPC ------------------------------------------------------

    /** Remote procedure call to another task's service. */
    sim::Task<std::optional<std::vector<std::uint8_t>>>
    call(TaskId server, std::vector<std::uint8_t> req);

    /** Answer a request received in this task's inbox. */
    void
    reply(const cabos::Message &request,
          std::vector<std::uint8_t> response)
    {
        site.transport->respond(request.tag, std::move(response));
    }

    // ----- Buffers ----------------------------------------------------

    /** Allocate a buffer in this task's CAB data memory. */
    std::unique_ptr<Buffer>
    allocBuffer(std::uint32_t len)
    {
        return std::make_unique<Buffer>(*site.kernel, len);
    }

  private:
    Nectarine &api;
    TaskId _id;
    CabSite &site;
    cabos::Mailbox &inbox;
};

/**
 * The Nectarine runtime over one NectarSystem.
 */
class Nectarine
{
  public:
    explicit Nectarine(NectarSystem &sys) : sys(sys) {}

    using TaskBody = std::function<sim::Task<void>(TaskContext &)>;

    /**
     * Create a task on site @p siteIndex.  The body starts when the
     * event queue runs.
     *
     * @param name Unique task name (looked up with lookup()).
     */
    TaskId createTask(std::size_t siteIndex, const std::string &name,
                      TaskBody body);

    /**
     * Register a task whose body runs outside the CAB — e.g. a node
     * process (Section 6.3: "Tasks are processes on any CAB or
     * node").  Creates the inbox mailbox and the directory entry;
     * the caller is responsible for running the body and calling
     * noteExternalTaskDone() when it finishes.
     */
    TaskId registerExternalTask(std::size_t siteIndex,
                                const std::string &name);

    /** Mark an externally run task as completed. */
    void
    noteExternalTaskDone()
    {
        completed.fetch_add(1, std::memory_order_relaxed);
    }

    /** Find a task by name. */
    std::optional<TaskId> lookup(const std::string &name) const;

    /** Number of created tasks. */
    std::size_t taskCount() const { return tasks.size(); }

    /** Tasks that have finished their body. */
    int
    completedTasks() const
    {
        return completed.load(std::memory_order_relaxed);
    }

    NectarSystem &system() { return sys; }

    /** Inbox mailbox id of a task (transport addressing). */
    static std::uint16_t
    inboxId(std::uint16_t taskIndex)
    {
        return static_cast<std::uint16_t>(taskInboxBase + taskIndex);
    }

    /** Mailbox ids below this are reserved for system use. */
    static constexpr std::uint16_t taskInboxBase = 0x1000;

    /** Site hosting @p id. */
    CabSite &siteOf(TaskId id);

  private:
    friend class TaskContext;

    struct TaskInfo
    {
        std::string name;
        TaskId id;
        std::size_t siteIndex;
    };

    NectarSystem &sys;
    std::map<std::string, TaskId> names;
    std::vector<TaskInfo> tasks;
    std::map<transport::CabAddress, std::uint16_t> nextIndex;
    /** Relaxed atomic: task bodies on different cluster workers all
     *  bump this; only the aggregate count is read (after a drain, or
     *  by single-threaded drivers polling progress). */
    std::atomic<int> completed{0};
};

} // namespace nectar::nectarine
