/**
 * @file
 * The HUB instrumentation interface.
 *
 * Section 4.1: "An additional instrumentation board can be plugged
 * into the backplane ... it can monitor and record events related to
 * the crossbar and its controller."  HubMonitor is that board's
 * software analogue; RecordingMonitor stores a bounded event log that
 * tests and benches inspect.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "hub/commands.hh"
#include "hub/crossbar.hh"
#include "sim/types.hh"

namespace nectar::hub {

/** Kinds of event the instrumentation board can observe. */
enum class HubEvent : std::uint8_t {
    commandExecuted, ///< Central controller executed a command.
    commandRetried,  ///< A retrying command failed an attempt.
    connectionOpen,  ///< Crossbar connection established.
    connectionClose, ///< Crossbar connection released.
    packetForwarded, ///< A start-of-packet passed through the crossbar.
    queueOverflow,   ///< An input queue dropped an arriving item.
    replySent,       ///< The HUB inserted a reply into a stream.
    stuckDrop,       ///< The blocked-head watchdog discarded an item.
};

/** Observer interface for crossbar/controller events. */
class HubMonitor
{
  public:
    virtual ~HubMonitor() = default;

    /**
     * @param when Simulated time of the event.
     * @param event What happened.
     * @param a Primary port (input, or command arrival port).
     * @param b Secondary port (output), or noPort.
     */
    virtual void record(sim::Tick when, HubEvent event, PortId a,
                        PortId b) = 0;
};

/** A monitor that keeps the most recent events in memory. */
class RecordingMonitor : public HubMonitor
{
  public:
    struct Entry
    {
        sim::Tick when;
        HubEvent event;
        PortId a;
        PortId b;
    };

    /** @param capacity Maximum retained events (oldest evicted). */
    explicit RecordingMonitor(std::size_t capacity = 65536)
        : capacity(capacity)
    {}

    void
    record(sim::Tick when, HubEvent event, PortId a, PortId b) override
    {
        if (log.size() == capacity)
            log.pop_front();
        log.push_back(Entry{when, event, a, b});
    }

    const std::deque<Entry> &events() const { return log; }

    /** Number of recorded events of the given kind. */
    std::size_t
    count(HubEvent event) const
    {
        std::size_t n = 0;
        for (const auto &e : log)
            if (e.event == event)
                ++n;
        return n;
    }

    void clear() { log.clear(); }

  private:
    std::size_t capacity;
    std::deque<Entry> log;
};

} // namespace nectar::hub
