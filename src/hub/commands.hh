/**
 * @file
 * The HUB datalink command set.
 *
 * Section 4.2 of the paper: "The HUB hardware supports 38 user
 * commands and 14 supervisor commands for various datalink protocols.
 * Supervisor commands are for system testing and reconfiguration
 * purposes, whereas user commands are for operations concerning
 * connections, locks, status, and flow control."
 *
 * The paper names only a handful of commands explicitly (open with
 * retry, open with retry and reply, test open with retry, close,
 * close all).  This implementation provides the named ones with the
 * exact semantics of Sections 4.2.1-4.2.4 plus the natural fail-fast /
 * reply / lock / status variants the text implies; the full inventory
 * is listed in README.md.  Each command is a 3-byte sequence:
 * (opcode, hub id, parameter).
 */

#pragma once

#include <cstdint>

namespace nectar::hub {

/** Datalink command opcodes. Supervisor opcodes have the top bit set. */
enum class Op : std::uint8_t {
    // --- Connection management (serialized by the central controller).
    /** Connect arrival input to output 'param'; fail-fast. */
    open = 0x01,
    /** open, retrying every controller cycle until it succeeds. */
    openRetry = 0x02,
    /** openRetry, then send a success reply back along the route. */
    openRetryReply = 0x03,
    /** open + reply indicating success or failure (no retry). */
    openReply = 0x04,
    /** open gated on the output port's ready bit; fail-fast. */
    testOpen = 0x05,
    /** testOpen, retrying until ready and free (Section 4.2.3). */
    testOpenRetry = 0x06,
    /** testOpenRetry, then send a success reply. */
    testOpenRetryReply = 0x07,

    // --- Closing (localized; executed in the I/O port).
    /** Release output register 'param'. */
    close = 0x08,
    /**
     * Travels along the route like data; each output register it
     * passes through closes behind it (Section 4.2.1).
     */
    closeAll = 0x09,
    /** Release every output connected to the arrival input. */
    closeInput = 0x0A,

    // --- Locks (serialized).
    /** Acquire the lock on port 'param', retrying until owned. */
    lock = 0x10,
    /** Release the lock on port 'param' if held by arrival input. */
    unlock = 0x11,
    /** Try to acquire; reply with success/failure status. */
    testLock = 0x12,

    // --- Status interrogation (serialized; each generates a reply).
    /** Reply with the input port connected to output 'param' (0xFF if none). */
    queryConn = 0x18,
    /** Reply with the ready bit of port 'param'. */
    queryReady = 0x19,
    /** Reply with the lock holder of port 'param' (0xFF if none). */
    queryLock = 0x1A,

    // --- Miscellaneous user commands.
    /** No operation (stream padding / latency probes). */
    noop = 0x1E,
    /** Reply echoing 'param'; datalink liveness probe. */
    echo = 0x1F,

    // --- Supervisor commands (testing and reconfiguration, Section 4).
    /** Clear all connections, locks, errors; ready bits to 1. */
    svReset = 0x80,
    /** Clear connections/locks involving port 'param'; flush its queue. */
    svResetPort = 0x81,
    /** Force the ready bit of port 'param' to 1. */
    svSetReady = 0x82,
    /** Force the ready bit of port 'param' to 0. */
    svClearReady = 0x83,
    /** Re-enable a disabled port. */
    svEnablePort = 0x84,
    /** Disable port 'param': all arriving traffic is dropped. */
    svDisablePort = 0x85,
    /** Reply with the HUB's error counter (saturating at 255). */
    svQueryErrors = 0x86,
    /** Reply; supervisor-level liveness probe. */
    svPing = 0x87,
};

/** True for supervisor (testing/reconfiguration) opcodes. */
constexpr bool
isSupervisor(Op op)
{
    return (static_cast<std::uint8_t>(op) & 0x80u) != 0;
}

/** True if the command retries every cycle until it succeeds. */
constexpr bool
hasRetry(Op op)
{
    return op == Op::openRetry || op == Op::openRetryReply ||
           op == Op::testOpenRetry || op == Op::testOpenRetryReply ||
           op == Op::lock;
}

/** True if successful completion generates a reply. */
constexpr bool
repliesOnSuccess(Op op)
{
    return op == Op::openRetryReply || op == Op::openReply ||
           op == Op::testOpenRetryReply || op == Op::testLock ||
           op == Op::queryConn || op == Op::queryReady ||
           op == Op::queryLock || op == Op::echo ||
           op == Op::svQueryErrors || op == Op::svPing;
}

/**
 * True if the command must be serialized through the central
 * controller (anything that reads or writes the status table).
 * Localized commands execute inside the I/O port (Section 4.1).
 */
constexpr bool
needsController(Op op)
{
    switch (op) {
      case Op::close:
      case Op::closeAll:
      case Op::closeInput:
      case Op::unlock:
      case Op::noop:
      case Op::echo:
        return false;
      default:
        return true;
    }
}

/** True for opcodes that gate on the output's ready bit. */
constexpr bool
isTestOpen(Op op)
{
    return op == Op::testOpen || op == Op::testOpenRetry ||
           op == Op::testOpenRetryReply;
}

/** True for any of the open-family opcodes. */
constexpr bool
isOpen(Op op)
{
    return op == Op::open || op == Op::openRetry ||
           op == Op::openRetryReply || op == Op::openReply ||
           isTestOpen(op);
}

/** Reply status codes. */
namespace status {
constexpr std::uint8_t failure = 0;
constexpr std::uint8_t success = 1;
constexpr std::uint8_t none = 0xFF; ///< "no owner / no holder".
} // namespace status

/** Human-readable opcode name (for traces and tests). */
const char *opName(Op op);

} // namespace nectar::hub
