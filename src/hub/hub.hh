/**
 * @file
 * The Nectar HUB: crossbar switch + central controller + I/O ports.
 *
 * Section 4 of the paper.  The HUB establishes connections and passes
 * messages between its input and output fiber lines.  Its four design
 * goals — low latency, high switching rate, efficient multi-HUB
 * support, and flexibility — map onto this model as:
 *
 *  1. Low latency: connection setup through a single HUB takes
 *     hubSetupCycles (10 cycles, 700 ns) to the first byte; an open
 *     connection forwards each item with hubTransferCycles (5 cycles,
 *     350 ns) of latency, pipelined at the fiber rate.
 *  2. High switching rate: the central controller executes one
 *     status-table command per 70 ns cycle.
 *  3. Multi-HUB support: ready-bit flow control is implemented in
 *     hardware (IoPort); CAB-HUB and HUB-HUB ports are identical, so
 *     clusters connect in any topology (src/topo).
 *  4. Flexibility: point-to-point and multicast connections with
 *     either circuit or packet switching are composed from the simple
 *     command set in hub/commands.hh.
 */

#pragma once

#include <memory>
#include <vector>

#include "hub/controller.hh"
#include "hub/crossbar.hh"
#include "hub/monitor.hh"
#include "hub/port.hh"
#include "sim/component.hh"
#include "sim/stats.hh"

namespace nectar::hub {

/** Aggregate HUB statistics (the instrumentation board's counters). */
struct HubStats
{
    sim::Counter opensOk;        ///< Successful connection opens.
    sim::Counter opensFailed;    ///< Failed fail-fast opens.
    sim::Counter closes;         ///< Connections released.
    sim::Counter repliesSent;    ///< Replies inserted into streams.
    sim::Counter packetsForwarded; ///< Start-of-packet items switched.
    sim::Counter dataBytes;      ///< Data bytes switched.
    sim::Counter queueOverflows; ///< Items dropped: input queue full.
    sim::Counter staleReplies;   ///< Replies with no reverse route.
    sim::Counter disabledDrops;  ///< Items dropped by disabled ports.
    sim::Counter badCommands;    ///< Unknown opcodes / bad parameters.
    sim::Counter retryGiveUps;   ///< Retrying commands past the limit.
    sim::Counter stuckDrops;     ///< Queue heads discarded by the
                                 ///< blocked-head watchdog.
    sim::Counter readyRearms;    ///< Ready bits re-armed after the
                                 ///< restoring signal was presumed lost.
    sim::Counter idleCloses;     ///< Connections reaped by the
                                 ///< idle-circuit watchdog.
    sim::Counter cmdAbandons;    ///< Pending controller commands
                                 ///< withdrawn by the submitting
                                 ///< port's settle watchdog.
};

/** Configuration for a Hub instance. */
struct HubConfig
{
    int numPorts = sim::proto::hubPorts;      ///< 16 in the prototype.
    int queueCapacity = sim::proto::hubInputQueueBytes;
    Tick cycle = sim::proto::hubCycle;        ///< 70 ns.
    /** Cycles from full command arrival to controller submission. */
    int decodeCycles = 2;
    /** Cycles of cut-through latency per forwarded item. */
    int transferCycles = sim::proto::hubTransferCycles;
    /**
     * Watchdog on a queue head blocked with no wakeup in sight (its
     * connection never opens because the open command was lost, or
     * the route died under it).  After this long the head is
     * discarded so the queue keeps draining and the ready handshake
     * stays live; reliability above retransmits the loss.  0 disables
     * the watchdog.
     */
    Tick stuckTimeout = 200 * sim::ticks::us;
    /**
     * Watchdog on an output register's cleared ready bit.  The ready
     * signal restoring it is a single wire item; if it is lost (dark
     * fiber, burst loss, a dead endpoint) the bit would stay false
     * forever and wedge every route through the port.  After this
     * long with no signal the port presumes the downstream queue
     * drained and re-arms.  0 disables the watchdog.
     */
    Tick readyTimeout = 500 * sim::ticks::us;
    /**
     * Watchdog on open connections whose input port has gone silent.
     * A close all that is dropped (queue overflow, dark fiber) leaves
     * its circuit open with nothing left to close it; the held output
     * ports then fail every later open until the command retry limit
     * silently discards the traffic.  A connection whose input has
     * neither forwarded an item nor opened a branch for this long is
     * presumed abandoned and closed; reliability above retransmits
     * anything cut off mid-flight.  0 (the default) disables the
     * watchdog: a bare HUB keeps circuits open indefinitely, as the
     * hardware does.  The nectarine system builders enable it, since
     * a full transport stack is what suffers from wedged circuits.
     */
    Tick circuitIdleTimeout = 0;
};

/**
 * A Nectar HUB.
 *
 * Wiring: for each port, the incoming fiber's sink is port(i) and the
 * outgoing fiber is attached with port(i).attachOutput().  src/topo
 * provides helpers that build fiber pairs between HUBs and CABs.
 */
class Hub : public sim::Component
{
  public:
    /**
     * @param eq Event queue.
     * @param name Instance name.
     * @param id This HUB's address in command words.
     * @param config Structural and timing parameters.
     * @param monitor Optional instrumentation board.
     */
    Hub(sim::EventQueue &eq, std::string name, std::uint8_t id,
        const HubConfig &config = {}, HubMonitor *monitor = nullptr);

    std::uint8_t hubId() const { return _hubId; }
    int numPorts() const { return config.numPorts; }

    IoPort &port(PortId i);
    const IoPort &port(PortId i) const;

    Crossbar &crossbar() { return xbar; }
    const Crossbar &crossbar() const { return xbar; }

    CentralController &controller() { return ctrl; }

    const HubConfig &configuration() const { return config; }

    HubStats &stats() { return _stats; }
    const HubStats &stats() const { return _stats; }

    /** Tag the HUB and the ports/controller it owns (sim/owner.hh). */
    void setOwnerCluster(sim::ClusterId c) override;

    /** Saturating 8-bit error count reported by svQueryErrors. */
    std::uint8_t errorCount() const;

    // ----- Internal API used by IoPort and CentralController -------

    /**
     * Route a fully received command: serialized ops go to the
     * central controller, localized ops execute immediately.
     */
    void dispatchCommand(const phys::CommandWord &cmd, PortId arrival);

    /**
     * Execute a serialized command on behalf of the controller.
     * @return true on success; false means a retrying command should
     *         be attempted again.
     */
    bool executeSerialized(const phys::CommandWord &cmd, PortId arrival);

    /**
     * The controller reached a final disposition (execution or retry
     * give-up) for a command submitted from @p arrival; unblocks that
     * port's input stream.
     */
    void commandSettled(PortId arrival);

    /** Execute a localized command at the arrival port. */
    void executeLocal(const phys::CommandWord &cmd, PortId arrival);

    /** Insert a reply into the stream flowing back toward @p arrival. */
    void sendReply(PortId arrival, std::uint8_t op, std::uint8_t param,
                   std::uint8_t status);

    /**
     * A reply arrived at @p atPort; forward it backward along the
     * route (out the output register of the input that owns this
     * port's output), stealing cycles.
     */
    void forwardReplyReverse(PortId atPort, const phys::ReplyWord &reply);

    /** Record an event on the instrumentation board, if present. */
    void
    monitorRecord(HubEvent event, PortId a, PortId b)
    {
        if (monitor)
            monitor->record(now(), event, a, b);
    }

    /** Count an error toward svQueryErrors. */
    void countError();

    /**
     * An item was forwarded through the crossbar from @p in: the
     * circuit is live.  Feeds the idle-circuit watchdog.
     */
    void noteCircuitActivity(PortId in);

    /**
     * Connections were closed.  If the crossbar is now fully idle the
     * pending idle-circuit watchdog is disarmed, so a quiescent HUB
     * leaves no event behind to stretch the simulation's drain time.
     */
    void noteCircuitClosed();

  private:
    /** Open @p arrival -> param connection; shared by open family. */
    bool doOpen(const phys::CommandWord &cmd, PortId arrival);

    /** (Re)arm the idle-circuit watchdog to fire at @p when. */
    void armIdleReaper(Tick when);

    /** Close connections whose input sat silent past the limit. */
    void reapIdleCircuits();

    std::uint8_t _hubId;
    HubConfig config;
    Crossbar xbar;
    CentralController ctrl;
    std::vector<std::unique_ptr<IoPort>> ports;
    HubMonitor *monitor;
    HubStats _stats;
    std::uint64_t errors = 0;
    /** Per input port: when its circuit last carried an item. */
    std::vector<Tick> lastActivity;
    sim::EventId idleReaper = sim::invalidEventId;
};

} // namespace nectar::hub
