#include "crossbar.hh"

#include <algorithm>

#include "sim/invariant.hh"
#include "sim/logging.hh"

namespace nectar::hub {

void
Crossbar::checkRep() const
{
#ifdef NECTAR_CHECKED
    int owned = 0;
    for (PortId out = 0; out < n; ++out) {
        PortId in = owner[out];
        if (in == noPort)
            continue;
        ++owned;
        const auto &v = outs[in];
        SIM_INVARIANT(std::count(v.begin(), v.end(), out) == 1,
                      "owned output listed exactly once by its input");
    }
    SIM_INVARIANT(owned == openCount,
                  "openCount equals the number of owned outputs");
    int listed = 0;
    for (PortId in = 0; in < n; ++in) {
        for (PortId out : outs[in]) {
            ++listed;
            SIM_INVARIANT(valid(out) && owner[out] == in,
                          "listed output is owned by that input");
        }
    }
    SIM_INVARIANT(listed == openCount,
                  "output lists cover every open circuit");
#endif
}

Crossbar::Crossbar(int nports)
    : n(nports), owner(nports, noPort), outs(nports),
      locks(nports, noPort)
{
    if (nports <= 1)
        sim::fatal("Crossbar: need at least two ports");
}

bool
Crossbar::open(PortId in, PortId out)
{
    if (!valid(in) || !valid(out))
        sim::panic("Crossbar::open: bad port id");
    // Re-opening a connection the input already owns is idempotent.
    // This makes the datalink's route-recovery resends harmless: a
    // duplicate open neither fails nor creates extra state.
    if (owner[out] == in)
        return true;
    if (owner[out] != noPort)
        return false;
    if (locks[out] != noPort && locks[out] != in)
        return false;
    owner[out] = in;
    outs[in].push_back(out);
    ++openCount;
    checkRep();
    return true;
}

PortId
Crossbar::close(PortId out)
{
    if (!valid(out))
        sim::panic("Crossbar::close: bad port id");
    PortId in = owner[out];
    if (in == noPort)
        return noPort;
    owner[out] = noPort;
    auto &v = outs[in];
    v.erase(std::remove(v.begin(), v.end(), out), v.end());
    --openCount;
    checkRep();
    return in;
}

void
Crossbar::closeAllFrom(PortId in)
{
    if (!valid(in))
        sim::panic("Crossbar::closeAllFrom: bad port id");
    for (PortId out : outs[in]) {
        owner[out] = noPort;
        --openCount;
    }
    outs[in].clear();
    checkRep();
}

PortId
Crossbar::ownerOf(PortId out) const
{
    if (!valid(out))
        sim::panic("Crossbar::ownerOf: bad port id");
    return owner[out];
}

const std::vector<PortId> &
Crossbar::outputsOf(PortId in) const
{
    if (!valid(in))
        sim::panic("Crossbar::outputsOf: bad port id");
    return outs[in];
}

bool
Crossbar::acquireLock(PortId port, PortId holder)
{
    if (!valid(port) || !valid(holder))
        sim::panic("Crossbar::acquireLock: bad port id");
    if (locks[port] != noPort && locks[port] != holder)
        return false;
    locks[port] = holder;
    return true;
}

bool
Crossbar::releaseLock(PortId port, PortId holder)
{
    if (!valid(port))
        sim::panic("Crossbar::releaseLock: bad port id");
    if (locks[port] != holder)
        return false;
    locks[port] = noPort;
    return true;
}

PortId
Crossbar::lockHolder(PortId port) const
{
    if (!valid(port))
        sim::panic("Crossbar::lockHolder: bad port id");
    return locks[port];
}

void
Crossbar::releaseLocksOf(PortId holder)
{
    for (auto &l : locks)
        if (l == holder)
            l = noPort;
}

void
Crossbar::reset()
{
    std::fill(owner.begin(), owner.end(), noPort);
    std::fill(locks.begin(), locks.end(), noPort);
    for (auto &v : outs)
        v.clear();
    openCount = 0;
    checkRep();
}

} // namespace nectar::hub
