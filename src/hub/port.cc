#include "port.hh"

#include <algorithm>

#include "hub/commands.hh"
#include "hub/hub.hh"
#include "sim/logging.hh"
#include "sim/owner.hh"

namespace nectar::hub {

using phys::ItemKind;
using phys::WireItem;

IoPort::IoPort(Hub &hub, PortId id, int queueCapacity)
    : sim::Component(hub.eventq(),
                     hub.name() + ".port" + std::to_string(id)),
      hub(hub), _id(id),
      qCapacity(static_cast<std::uint32_t>(queueCapacity))
{
}

void
IoPort::setReady(bool r)
{
    readyBit = r;
    if (r && readyWatchdog != sim::invalidEventId) {
        if (eventq().pending(readyWatchdog))
            eventq().cancel(readyWatchdog);
        readyWatchdog = sim::invalidEventId;
    }
}

void
IoPort::flushQueue()
{
    q.clear();
    qBytes = 0;
    headBlockedSince = 0;
    cmdPending = false;
}

void
IoPort::transmit(const WireItem &item, bool stolen)
{
    if (!out)
        sim::panic(name() + ": transmit with no outgoing fiber");
    // A start-of-packet leaving the output register clears the ready
    // bit until the downstream queue signals that it drained
    // (Section 4.2.3).
    if (item.kind == ItemKind::startOfPacket) {
        readyBit = false;
        armReadyWatchdog();
    }
    if (stolen)
        out->sendStolen(item);
    else
        out->send(item);
}

void
IoPort::fiberDeliver(WireItem item, Tick firstByte, Tick lastByte)
{
    SIM_OWNER_INVARIANT(*this, hub,
                        name() + ": port off its hub's cluster");
    if (!_enabled) {
        hub.stats().disabledDrops.add();
        return;
    }

    switch (item.kind) {
      case ItemKind::readySignal:
        // Hop-by-hop flow control: the downstream queue drained.
        setReady(true);
        return;
      case ItemKind::reply:
        // Replies travel backward along the route, stealing cycles;
        // they never enter the input queue (Section 4.2.1).
        hub.forwardReplyReverse(_id, item.reply);
        return;
      default:
        break;
    }

    if (qBytes + item.byteLength() > qCapacity) {
        hub.stats().queueOverflows.add();
        hub.countError();
        hub.monitorRecord(HubEvent::queueOverflow, _id, noPort);
        return;
    }

    qBytes += item.byteLength();
    q.push_back(Queued{std::move(item), firstByte, lastByte});
    scheduleProcess(now());
}

void
IoPort::connectionOpened()
{
    scheduleProcess(now());
}

void
IoPort::commandSettled()
{
    cmdPending = false;
    scheduleProcess(now());
}

void
IoPort::scheduleProcess(Tick when)
{
    when = std::max(when, now());
    if (wakeup != sim::invalidEventId && eventq().pending(wakeup)) {
        if (wakeupAt <= when)
            return; // an earlier (or equal) wakeup is already set
        eventq().cancel(wakeup);
    }
    wakeupAt = when;
    wakeup = eventq().schedule(
        when, [this] { processQueue(); }, sim::EventPriority::hardware);
}

void
IoPort::processQueue()
{
    while (!q.empty()) {
        Tick retry = tryDisposeHead();
        if (retry == 0) {
            headBlockedSince = 0;
            continue; // head disposed; look at the next item
        }
        if (retry != sim::maxTick) {
            headBlockedSince = 0;
            scheduleProcess(retry);
            return;
        }
        // Blocked with no known wakeup: the connection this head is
        // waiting for may never open (its open command was lost, or
        // the route died under it).  Arm the stuck-head watchdog so
        // the queue — and the ready handshake upstream of it — cannot
        // stall forever; reliability above retransmits the loss.
        const Tick limit = hub.configuration().stuckTimeout;
        if (limit <= 0)
            return; // woken by connectionOpened()
        if (headBlockedSince == 0)
            headBlockedSince = now();
        if (now() - headBlockedSince >= limit) {
            dropHead();
            continue;
        }
        scheduleProcess(headBlockedSince + limit);
        return;
    }
    headBlockedSince = 0;
}

void
IoPort::armReadyWatchdog()
{
    const Tick limit = hub.configuration().readyTimeout;
    if (limit <= 0)
        return;
    if (readyWatchdog != sim::invalidEventId &&
        eventq().pending(readyWatchdog))
        eventq().cancel(readyWatchdog);
    readyWatchdog = eventq().scheduleIn(limit, [this] {
        readyWatchdog = sim::invalidEventId;
        if (!readyBit) {
            readyBit = true;
            hub.stats().readyRearms.add();
        }
    }, sim::EventPriority::hardware);
}

void
IoPort::dropHead()
{
    const Queued &head = q.front();
    // Discarding a start of packet frees the queue slot the upstream
    // transmitter is waiting on, which is exactly what the ready
    // signal reports — send it so the upstream port is not wedged on
    // a packet that will never emerge.
    if (head.item.kind == ItemKind::startOfPacket && out)
        out->sendStolen(WireItem::ready());
    qBytes -= head.item.byteLength();
    q.pop_front();
    headBlockedSince = 0;
    hub.stats().stuckDrops.add();
    hub.countError();
    hub.monitorRecord(HubEvent::stuckDrop, _id, noPort);
}

Tick
IoPort::tryDisposeHead()
{
    // In-order command semantics: a command consumed from this stream
    // and handed to the central controller must settle before any
    // later item moves.  Without this, a frame's data or close all
    // can overtake its own backed-off open; the open then executes
    // after the close all has passed and leaves an orphaned crossbar
    // connection that no close all will ever reach — the held output
    // fails every later open and duplicates passing traffic onto a
    // stale branch.  If the controller cannot settle the command
    // within the stuck-head limit, withdraw it (so it can never
    // execute late) and move on; reliability above retransmits
    // whatever the abandoned branch loses.
    if (cmdPending) {
        const Tick limit = hub.configuration().stuckTimeout;
        if (limit <= 0)
            return sim::maxTick; // woken by commandSettled()
        if (now() - cmdPendingSince < limit)
            return cmdPendingSince + limit;
        hub.controller().abandonFrom(_id);
        cmdPending = false;
        hub.stats().cmdAbandons.add();
        hub.countError();
        hub.monitorRecord(HubEvent::stuckDrop, _id, noPort);
    }

    const Queued &head = q.front();
    const WireItem &item = head.item;
    const Tick cycle = hub.configuration().cycle;

    // closeAll is never consumed on a hub-id match: it travels along
    // the route with the data and is recognized at each output
    // register it passes through (Section 4.2.1).
    if (item.kind == ItemKind::command &&
        item.cmd.hubId == hub.hubId() &&
        static_cast<Op>(item.cmd.op) != Op::closeAll) {
        // Addressed to this HUB: consume once fully received and
        // decoded.
        Tick ready =
            head.lastByte + hub.configuration().decodeCycles * cycle;
        if (now() < ready)
            return ready;
        phys::CommandWord cmd = item.cmd;
        qBytes -= item.byteLength();
        q.pop_front();
        if (needsController(static_cast<Op>(cmd.op))) {
            cmdPending = true;
            cmdPendingSince = now();
        }
        hub.dispatchCommand(cmd, _id);
        return 0;
    }

    // Everything else travels through the crossbar: data, framing
    // markers, closeAll, and commands addressed to other HUBs.
    const auto &outputs = hub.crossbar().outputsOf(_id);

    if (outputs.empty()) {
        // A closeAll with nothing to close is consumed (idempotent);
        // other items wait for a connection.
        if (item.kind == ItemKind::command &&
            static_cast<Op>(item.cmd.op) == Op::closeAll) {
            qBytes -= item.byteLength();
            q.pop_front();
            return 0;
        }
        return sim::maxTick; // woken by connectionOpened()
    }

    return forwardHead(outputs);
}

Tick
IoPort::forwardHead(const std::vector<PortId> &outputs)
{
    const Queued &head = q.front();
    const Tick cycle = hub.configuration().cycle;

    // Cut-through: the item may leave transferCycles after its first
    // byte arrived, once every target output register is free.
    Tick t = head.firstByte + hub.configuration().transferCycles * cycle;
    for (PortId o : outputs) {
        phys::FiberLink *link = hub.port(o).output();
        if (!link)
            sim::panic(name() + ": connected output has no fiber");
        t = std::max(t, link->busyUntil());
    }
    if (t > now())
        return t;

    // Forward now.  Copy the head so the queue can be popped before
    // transmission side effects run.
    Queued head_copy = q.front();
    qBytes -= head_copy.item.byteLength();
    q.pop_front();

    const bool is_sop =
        head_copy.item.kind == ItemKind::startOfPacket;
    const bool is_close_all =
        head_copy.item.kind == ItemKind::command &&
        static_cast<Op>(head_copy.item.cmd.op) == Op::closeAll;

    for (PortId o : outputs)
        hub.port(o).transmit(head_copy.item);
    hub.noteCircuitActivity(_id);

    if (head_copy.item.kind == ItemKind::data)
        hub.stats().dataBytes.add(head_copy.item.dataLen);

    if (is_sop) {
        // The start of packet has emerged from this input queue;
        // signal readiness back upstream (Section 4.2.3).
        if (out)
            out->sendStolen(WireItem::ready());
        hub.stats().packetsForwarded.add();
        hub.monitorRecord(HubEvent::packetForwarded, _id,
                          outputs.empty() ? noPort : outputs.front());
    }

    if (is_close_all) {
        // Detected at each output register it passed through: close
        // the connections behind it (Section 4.2.1).
        for (PortId o : outputs) {
            hub.crossbar().close(o);
            hub.stats().closes.add();
            hub.monitorRecord(HubEvent::connectionClose, _id, o);
        }
        hub.noteCircuitClosed();
    }

    return 0;
}

} // namespace nectar::hub
