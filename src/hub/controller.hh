/**
 * @file
 * The HUB central controller.
 *
 * Section 4, goal 2: "the HUB central controller can set up a new
 * connection through the crossbar switch every 70 nanosecond cycle."
 * Commands that read or write the status table are serialized here;
 * one command executes per cycle.  Commands of the "with retry"
 * family that fail re-enter the queue and are retried on a later
 * cycle, which is how e.g. "open with retry" keeps trying until the
 * output register frees up (Section 4.2.1).
 */

#pragma once

#include <cstdint>
#include <deque>

#include "hub/crossbar.hh"
#include "phys/wire.hh"
#include "sim/component.hh"

namespace nectar::hub {

class Hub;

/** Serializes status-table commands, one per HUB cycle. */
class CentralController : public sim::Component
{
  public:
    /**
     * @param hub Owning HUB.
     * @param cycle Controller cycle time (70 ns in the prototype).
     */
    CentralController(Hub &hub, Tick cycle);

    /**
     * Enqueue a command for serialized execution.
     *
     * @param cmd The command word.
     * @param arrival Port the command arrived on (the connection's
     *        input side, and the reverse path for replies).
     */
    void submit(const phys::CommandWord &cmd, PortId arrival);

    /** Commands currently waiting (including retrying ones). */
    std::size_t backlog() const { return q.size(); }

    /** Total controller cycles consumed. */
    std::uint64_t cyclesUsed() const { return _cyclesUsed; }

    /** Total failed attempts by retrying commands. */
    std::uint64_t retries() const { return _retries; }

    /**
     * Give up on retrying commands after this many attempts (the
     * watchdog that turns livelock into a detectable drop).  The
     * default is large enough that any legitimate flow-control wait
     * completes first.
     */
    void setRetryLimit(std::uint64_t limit) { retryLimit = limit; }

    /**
     * Withdraw every pending command submitted from @p arrival (the
     * port gave up waiting).  A withdrawn open can never execute
     * after its frame's close all has passed, which is what keeps
     * abandoned routes from leaving orphaned connections behind.
     */
    void abandonFrom(PortId arrival);

    /** Drop all pending commands (supervisor reset). */
    void clear() { q.clear(); }

    /** Default retry watchdog (attempts). */
    static constexpr std::uint64_t defaultRetryLimit = 1'000'000;

    /** Cap on the retry backoff, in controller cycles. */
    static constexpr std::uint64_t maxBackoffCycles = 64;

  private:
    struct Pending
    {
        phys::CommandWord cmd;
        PortId arrival;
        std::uint64_t attempts;
        Tick notBefore; ///< Earliest cycle for the next attempt.
    };

    /** Execute one command; reschedule while work remains. */
    void tick();

    Hub &hub;
    Tick cycle;
    std::deque<Pending> q;
    bool running = false;
    std::uint64_t _cyclesUsed = 0;
    std::uint64_t _retries = 0;
    std::uint64_t retryLimit = defaultRetryLimit;
};

} // namespace nectar::hub
