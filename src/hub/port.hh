/**
 * @file
 * A HUB I/O port: input queue, output register, and ready bit.
 *
 * Section 4.1: "From the functional viewpoint, a port consists of an
 * input queue and an output register ... The I/O port extracts
 * commands from the incoming byte stream, and inserts replies to the
 * commands in the outgoing byte stream.  Commands that require
 * serialization, such as establishing a connection, are forwarded to
 * the central controller, while 'localized' commands, such as breaking
 * a connection, are executed inside the I/O port."
 *
 * The input queue is 1 kilobyte (which bounds the packet size for
 * packet switching, Section 4.2.3).  Forwarding through the crossbar
 * is cut-through: an item leaves this queue hubTransferCycles (5
 * cycles = 350 ns) after its first byte arrived, provided the input is
 * connected and the target output registers are free.
 */

#pragma once

#include <deque>

#include "hub/crossbar.hh"
#include "phys/fiber.hh"
#include "sim/component.hh"

namespace nectar::hub {

class Hub;

/**
 * One of the HUB's I/O ports.  Receives wire items from its incoming
 * fiber (as a FiberSink) and transmits on the paired outgoing fiber.
 */
class IoPort : public sim::Component, public phys::FiberSink
{
  public:
    /**
     * @param hub Owning HUB.
     * @param id Port index on that HUB.
     * @param queueCapacity Input queue size in bytes.
     */
    IoPort(Hub &hub, PortId id, int queueCapacity);

    PortId portId() const { return _id; }

    /** Attach the outgoing fiber of this port's fiber pair. */
    void attachOutput(phys::FiberLink &link) { out = &link; }

    /** The outgoing fiber, or nullptr if unattached. */
    phys::FiberLink *output() { return out; }

    /** Ready bit: downstream input queue can accept a new packet. */
    bool ready() const { return readyBit; }

    /** Force the ready bit (supervisor commands, CAB attach). */
    void setReady(bool r);

    /** Disabled ports drop all arriving traffic. */
    bool enabled() const { return _enabled; }
    void setEnabled(bool e) { _enabled = e; }

    /** Current input queue occupancy in bytes. */
    std::uint32_t queueBytes() const { return qBytes; }

    /** Number of queued items. */
    std::size_t queueLength() const { return q.size(); }

    /** Discard all queued items (supervisor port reset). */
    void flushQueue();

    /**
     * Transmit an item from this port's output register.
     *
     * @param item Item to serialize onto the outgoing fiber.
     * @param stolen If true, bypass the output register's queueing
     *        (replies and ready signals steal cycles; Section 4.2.1).
     */
    void transmit(const phys::WireItem &item, bool stolen = false);

    /**
     * The HUB opened a connection from this input; re-examine the
     * queue head (data may have been waiting for the route).
     */
    void connectionOpened();

    /**
     * The central controller reached a final disposition for the
     * command this port submitted; the stream may advance past it.
     */
    void commandSettled();

    // FiberSink interface: the incoming fiber delivers here.
    void fiberDeliver(phys::WireItem item, Tick firstByte,
                      Tick lastByte) override;

  private:
    struct Queued
    {
        phys::WireItem item;
        Tick firstByte;
        Tick lastByte;
    };

    /**
     * Ensure processQueue() runs at (or before) @p when; coalesces
     * with any earlier pending wakeup.
     */
    void scheduleProcess(Tick when);

    /**
     * Drain the queue head while items are disposable: consume
     * commands addressed to this HUB, forward everything else through
     * open connections.
     */
    void processQueue();

    /**
     * Try to dispose of the queue head.
     * @return Tick to retry at, 0 if the head was disposed, or
     *         sim::maxTick if blocked with no known wakeup.
     */
    Tick tryDisposeHead();

    /** Forward the head item through the crossbar to @p outputs. */
    Tick forwardHead(const std::vector<PortId> &outputs);

    /** Watchdog: discard a head that stayed blocked past the limit. */
    void dropHead();

    /** Watchdog: re-arm the ready bit if its signal never arrives. */
    void armReadyWatchdog();

    Hub &hub;
    PortId _id;
    phys::FiberLink *out = nullptr;

    std::deque<Queued> q;
    std::uint32_t qBytes = 0;
    std::uint32_t qCapacity;

    bool readyBit = true;
    bool _enabled = true;

    sim::EventId wakeup = sim::invalidEventId;
    Tick wakeupAt = 0;
    /** When the current head first blocked with no known wakeup. */
    Tick headBlockedSince = 0;
    /** A consumed command is still pending in the controller. */
    bool cmdPending = false;
    /** When that command was submitted (settle-watchdog anchor). */
    Tick cmdPendingSince = 0;
    /** Pending ready-bit watchdog, cancelled when the signal arrives. */
    sim::EventId readyWatchdog = sim::invalidEventId;
};

} // namespace nectar::hub
