#include "hub.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nectar::hub {

using phys::CommandWord;
using phys::ReplyWord;
using phys::WireItem;

Hub::Hub(sim::EventQueue &eq, std::string name, std::uint8_t id,
         const HubConfig &config, HubMonitor *monitor)
    : sim::Component(eq, std::move(name)), _hubId(id), config(config),
      xbar(config.numPorts), ctrl(*this, config.cycle),
      monitor(monitor)
{
    if (config.numPorts < 2 || config.numPorts > 255)
        sim::fatal("Hub: port count must be in [2, 255]");
    lastActivity.assign(static_cast<std::size_t>(config.numPorts), 0);
    ports.reserve(config.numPorts);
    for (int i = 0; i < config.numPorts; ++i) {
        ports.push_back(
            std::make_unique<IoPort>(*this, i, config.queueCapacity));
    }
}

IoPort &
Hub::port(PortId i)
{
    if (!xbar.valid(i))
        sim::panic(name() + ": bad port id " + std::to_string(i));
    return *ports[i];
}

const IoPort &
Hub::port(PortId i) const
{
    if (!xbar.valid(i))
        sim::panic(name() + ": bad port id " + std::to_string(i));
    return *ports[i];
}

void
Hub::setOwnerCluster(sim::ClusterId c)
{
    sim::Component::setOwnerCluster(c);
    ctrl.setOwnerCluster(c);
    for (auto &p : ports)
        p->setOwnerCluster(c);
}

std::uint8_t
Hub::errorCount() const
{
    return static_cast<std::uint8_t>(std::min<std::uint64_t>(errors, 255));
}

void
Hub::countError()
{
    ++errors;
}

void
Hub::dispatchCommand(const CommandWord &cmd, PortId arrival)
{
    Op op = static_cast<Op>(cmd.op);
    if (needsController(op))
        ctrl.submit(cmd, arrival);
    else
        executeLocal(cmd, arrival);
}

void
Hub::commandSettled(PortId arrival)
{
    if (xbar.valid(arrival))
        ports[arrival]->commandSettled();
}

bool
Hub::doOpen(const CommandWord &cmd, PortId arrival)
{
    PortId out = cmd.param;
    if (!xbar.valid(out) || out == arrival) {
        _stats.badCommands.add();
        countError();
        return true; // malformed: do not retry forever
    }

    Op op = static_cast<Op>(cmd.op);
    if (isTestOpen(op) && !ports[out]->ready())
        return false; // downstream queue not ready

    if (!xbar.open(arrival, out)) {
        _stats.opensFailed.add();
        return false;
    }

    _stats.opensOk.add();
    monitorRecord(HubEvent::connectionOpen, arrival, out);
    // Building a route counts as circuit activity (a multi-branch
    // tree may take a while to finish opening before data flows).
    lastActivity[arrival] = now();
    if (config.circuitIdleTimeout > 0)
        armIdleReaper(now() + config.circuitIdleTimeout);
    ports[arrival]->connectionOpened();
    return true;
}

void
Hub::noteCircuitActivity(PortId in)
{
    lastActivity[in] = now();
}

void
Hub::noteCircuitClosed()
{
    if (xbar.connectionCount() > 0)
        return;
    if (idleReaper != sim::invalidEventId &&
        eventq().pending(idleReaper))
        eventq().cancel(idleReaper);
    idleReaper = sim::invalidEventId;
}

void
Hub::armIdleReaper(Tick when)
{
    if (idleReaper != sim::invalidEventId &&
        eventq().pending(idleReaper)) {
        return; // already armed; the scan re-arms as needed
    }
    idleReaper = eventq().schedule(
        when, [this] { reapIdleCircuits(); },
        sim::EventPriority::hardware);
}

void
Hub::reapIdleCircuits()
{
    const Tick limit = config.circuitIdleTimeout;
    Tick next = sim::maxTick;
    for (PortId in = 0; in < config.numPorts; ++in) {
        const auto &outs = xbar.outputsOf(in);
        if (outs.empty())
            continue;
        Tick deadline = lastActivity[in] + limit;
        if (deadline > now()) {
            next = std::min(next, deadline);
            continue;
        }
        // Silent past the limit: the circuit's close all is presumed
        // lost.  Reap every connection so the held outputs can serve
        // live routes again.
        for (PortId out : outs) {
            _stats.idleCloses.add();
            monitorRecord(HubEvent::connectionClose, in, out);
        }
        xbar.closeAllFrom(in);
        countError();
    }
    if (next != sim::maxTick)
        armIdleReaper(next);
    else
        noteCircuitClosed();
}

bool
Hub::executeSerialized(const CommandWord &cmd, PortId arrival)
{
    Op op = static_cast<Op>(cmd.op);

    switch (op) {
      case Op::open:
      case Op::openRetry:
      case Op::testOpen:
      case Op::testOpenRetry: {
        bool ok = doOpen(cmd, arrival);
        return ok;
      }

      case Op::openRetryReply:
      case Op::testOpenRetryReply: {
        bool ok = doOpen(cmd, arrival);
        if (ok)
            sendReply(arrival, cmd.op, cmd.param, status::success);
        return ok;
      }

      case Op::openReply: {
        bool ok = doOpen(cmd, arrival);
        sendReply(arrival, cmd.op, cmd.param,
                  ok ? status::success : status::failure);
        return true; // fail-fast: the reply reports the outcome
      }

      case Op::lock: {
        if (!xbar.valid(cmd.param)) {
            _stats.badCommands.add();
            countError();
            return true;
        }
        return xbar.acquireLock(cmd.param, arrival);
      }

      case Op::testLock: {
        if (!xbar.valid(cmd.param)) {
            _stats.badCommands.add();
            countError();
            return true;
        }
        bool ok = xbar.acquireLock(cmd.param, arrival);
        sendReply(arrival, cmd.op, cmd.param,
                  ok ? status::success : status::failure);
        return true;
      }

      case Op::queryConn: {
        std::uint8_t st = status::none;
        if (xbar.valid(cmd.param)) {
            PortId owner = xbar.ownerOf(cmd.param);
            if (owner != noPort)
                st = static_cast<std::uint8_t>(owner);
        }
        sendReply(arrival, cmd.op, cmd.param, st);
        return true;
      }

      case Op::queryReady: {
        std::uint8_t st = status::failure;
        if (xbar.valid(cmd.param))
            st = ports[cmd.param]->ready() ? 1 : 0;
        sendReply(arrival, cmd.op, cmd.param, st);
        return true;
      }

      case Op::queryLock: {
        std::uint8_t st = status::none;
        if (xbar.valid(cmd.param)) {
            PortId holder = xbar.lockHolder(cmd.param);
            if (holder != noPort)
                st = static_cast<std::uint8_t>(holder);
        }
        sendReply(arrival, cmd.op, cmd.param, st);
        return true;
      }

      // --- Supervisor commands ------------------------------------
      case Op::svReset: {
        xbar.reset();
        noteCircuitClosed();
        ctrl.clear();
        for (auto &p : ports) {
            p->flushQueue();
            p->setReady(true);
        }
        errors = 0;
        return true;
      }

      case Op::svResetPort: {
        if (!xbar.valid(cmd.param)) {
            _stats.badCommands.add();
            countError();
            return true;
        }
        PortId p = cmd.param;
        xbar.close(p);            // as an output
        xbar.closeAllFrom(p);     // as an input
        xbar.releaseLocksOf(p);
        xbar.releaseLock(p, xbar.lockHolder(p));
        noteCircuitClosed();
        ctrl.abandonFrom(p); // a late open must not survive the reset
        ports[p]->flushQueue();
        ports[p]->setReady(true);
        return true;
      }

      case Op::svSetReady:
      case Op::svClearReady: {
        if (!xbar.valid(cmd.param)) {
            _stats.badCommands.add();
            countError();
            return true;
        }
        ports[cmd.param]->setReady(op == Op::svSetReady);
        return true;
      }

      case Op::svEnablePort:
      case Op::svDisablePort: {
        if (!xbar.valid(cmd.param)) {
            _stats.badCommands.add();
            countError();
            return true;
        }
        ports[cmd.param]->setEnabled(op == Op::svEnablePort);
        return true;
      }

      case Op::svQueryErrors: {
        sendReply(arrival, cmd.op, cmd.param, errorCount());
        return true;
      }

      case Op::svPing: {
        sendReply(arrival, cmd.op, cmd.param, status::success);
        return true;
      }

      default:
        _stats.badCommands.add();
        countError();
        return true;
    }
}

void
Hub::executeLocal(const CommandWord &cmd, PortId arrival)
{
    Op op = static_cast<Op>(cmd.op);

    switch (op) {
      case Op::close: {
        if (!xbar.valid(cmd.param)) {
            _stats.badCommands.add();
            countError();
            return;
        }
        PortId in = xbar.close(cmd.param);
        if (in != noPort) {
            _stats.closes.add();
            monitorRecord(HubEvent::connectionClose, in, cmd.param);
            noteCircuitClosed();
        }
        return;
      }

      case Op::closeInput: {
        for (PortId out : xbar.outputsOf(arrival)) {
            _stats.closes.add();
            monitorRecord(HubEvent::connectionClose, arrival, out);
        }
        xbar.closeAllFrom(arrival);
        noteCircuitClosed();
        return;
      }

      case Op::unlock: {
        if (!xbar.valid(cmd.param)) {
            _stats.badCommands.add();
            countError();
            return;
        }
        xbar.releaseLock(cmd.param, arrival);
        return;
      }

      case Op::noop:
        return;

      case Op::echo:
        sendReply(arrival, cmd.op, cmd.param, cmd.param);
        return;

      case Op::closeAll:
        // closeAll is handled in the forwarding path (IoPort); it
        // only reaches here if consumed with no connection, which the
        // port already treats as a no-op.
        return;

      default:
        _stats.badCommands.add();
        countError();
        return;
    }
}

void
Hub::sendReply(PortId arrival, std::uint8_t op, std::uint8_t param,
               std::uint8_t st)
{
    IoPort &p = port(arrival);
    if (!p.output()) {
        _stats.staleReplies.add();
        return;
    }
    p.transmit(WireItem::makeReply(op, _hubId, param, st),
               /*stolen=*/true);
    _stats.repliesSent.add();
    monitorRecord(HubEvent::replySent, arrival, noPort);
}

void
Hub::forwardReplyReverse(PortId atPort, const ReplyWord &reply)
{
    // The reply came in on the reverse fiber of a route that exits
    // through this port's output register; send it back out the
    // output register of the input that owns that connection.
    PortId in = xbar.ownerOf(atPort);
    if (in == noPort) {
        _stats.staleReplies.add();
        return;
    }
    WireItem item;
    item.kind = phys::ItemKind::reply;
    item.reply = reply;
    port(in).transmit(item, /*stolen=*/true);
}

} // namespace nectar::hub
