#include "controller.hh"

#include <algorithm>

#include "hub/commands.hh"
#include "hub/hub.hh"
#include "sim/logging.hh"
#include "sim/owner.hh"

namespace nectar::hub {

CentralController::CentralController(Hub &hub, Tick cycle)
    : sim::Component(hub.eventq(), hub.name() + ".ctrl"), hub(hub),
      cycle(cycle)
{
    if (cycle <= 0)
        sim::fatal("CentralController: cycle must be positive");
}

void
CentralController::submit(const phys::CommandWord &cmd, PortId arrival)
{
    SIM_OWNER_INVARIANT(*this, hub,
                        name() + ": controller off its hub's cluster");
    q.push_back(Pending{cmd, arrival, 0, 0});
    if (!running) {
        running = true;
        // The first command executes on the next controller cycle.
        scheduleIn(cycle, [this] { tick(); },
                   sim::EventPriority::hardware);
    }
}

void
CentralController::abandonFrom(PortId arrival)
{
    q.erase(std::remove_if(q.begin(), q.end(),
                           [arrival](const Pending &p) {
                               return p.arrival == arrival;
                           }),
            q.end());
    // `running` is left alone: any scheduled tick finds the queue
    // empty and stands down on its own.
}

void
CentralController::tick()
{
    if (q.empty()) {
        running = false;
        return;
    }

    // Pick the first command whose retry backoff has elapsed,
    // rotating deferred ones to the back (round-robin fairness).
    bool found = false;
    Tick earliest = sim::maxTick;
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (q.front().notBefore <= now()) {
            found = true;
            break;
        }
        earliest = std::min(earliest, q.front().notBefore);
        q.push_back(q.front());
        q.pop_front();
    }

    if (!found) {
        // Every pending command is backing off; sleep until the
        // soonest one is eligible.
        scheduleIn(std::max(earliest - now(), cycle),
                   [this] { tick(); }, sim::EventPriority::hardware);
        return;
    }

    Pending p = q.front();
    q.pop_front();
    ++_cyclesUsed;

    bool ok = hub.executeSerialized(p.cmd, p.arrival);
    bool settled = true;
    if (!ok && hasRetry(static_cast<Op>(p.cmd.op))) {
        ++_retries;
        ++p.attempts;
        hub.monitorRecord(HubEvent::commandRetried, p.arrival, noPort);
        if (retryLimit != 0 && p.attempts >= retryLimit) {
            hub.stats().retryGiveUps.add();
            hub.countError();
        } else {
            // Exponential backoff up to maxBackoffCycles keeps long
            // flow-control waits from consuming a controller cycle
            // per 70 ns.
            std::uint64_t backoff = std::min<std::uint64_t>(
                maxBackoffCycles,
                std::uint64_t(1) << std::min<std::uint64_t>(
                    p.attempts, 16));
            p.notBefore = now() + static_cast<Tick>(backoff) * cycle;
            q.push_back(p);
            settled = false;
        }
    } else {
        hub.monitorRecord(HubEvent::commandExecuted, p.arrival, noPort);
    }

    // The command reached a final disposition (executed or given up);
    // let the submitting port's stream advance past it.  Requeued
    // retries are not settled: the port keeps holding its head.
    if (settled)
        hub.commandSettled(p.arrival);

    if (q.empty()) {
        running = false;
    } else {
        scheduleIn(cycle, [this] { tick(); },
                   sim::EventPriority::hardware);
    }
}

} // namespace nectar::hub
