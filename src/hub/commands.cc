#include "commands.hh"

namespace nectar::hub {

const char *
opName(Op op)
{
    switch (op) {
      case Op::open: return "open";
      case Op::openRetry: return "openRetry";
      case Op::openRetryReply: return "openRetryReply";
      case Op::openReply: return "openReply";
      case Op::testOpen: return "testOpen";
      case Op::testOpenRetry: return "testOpenRetry";
      case Op::testOpenRetryReply: return "testOpenRetryReply";
      case Op::close: return "close";
      case Op::closeAll: return "closeAll";
      case Op::closeInput: return "closeInput";
      case Op::lock: return "lock";
      case Op::unlock: return "unlock";
      case Op::testLock: return "testLock";
      case Op::queryConn: return "queryConn";
      case Op::queryReady: return "queryReady";
      case Op::queryLock: return "queryLock";
      case Op::noop: return "noop";
      case Op::echo: return "echo";
      case Op::svReset: return "svReset";
      case Op::svResetPort: return "svResetPort";
      case Op::svSetReady: return "svSetReady";
      case Op::svClearReady: return "svClearReady";
      case Op::svEnablePort: return "svEnablePort";
      case Op::svDisablePort: return "svDisablePort";
      case Op::svQueryErrors: return "svQueryErrors";
      case Op::svPing: return "svPing";
    }
    return "unknown";
}

} // namespace nectar::hub
