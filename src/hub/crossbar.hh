/**
 * @file
 * The HUB crossbar switch and status table.
 *
 * Section 4.1: "The HUB has a crossbar switch, which can connect the
 * input queue of a port to the output register of any other port.  An
 * input queue can be connected to multiple output registers (for
 * multicast), but only one input queue can be connected to an output
 * register at a time.  A status table is used to keep track of
 * existing connections and to ensure that no new connections are made
 * to output registers that are already in use."
 *
 * This class is the status table plus the per-port locks; the data
 * movement itself happens in IoPort/Hub.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace nectar::hub {

/** Simulated time (nanoseconds), re-exported for the hub namespace. */
using Tick = sim::Tick;

/** Port index within a HUB. */
using PortId = int;

/** Sentinel meaning "no port". */
constexpr PortId noPort = -1;

/**
 * Connection and lock state of an N-port crossbar.
 */
class Crossbar
{
  public:
    /** @param nports Number of I/O ports (16 in the prototype). */
    explicit Crossbar(int nports);

    int numPorts() const { return n; }

    /**
     * Connect input @p in to output @p out.
     *
     * Fails (returns false) if the output register is already in use
     * or is locked by a port other than @p in.
     */
    bool open(PortId in, PortId out);

    /**
     * Release output @p out.
     * @return The input that owned it, or noPort if it was free.
     */
    PortId close(PortId out);

    /** Release every output owned by input @p in. */
    void closeAllFrom(PortId in);

    /** Input currently connected to output @p out (noPort if free). */
    PortId ownerOf(PortId out) const;

    /** Outputs currently connected to input @p in. */
    const std::vector<PortId> &outputsOf(PortId in) const;

    /** True if input @p in drives at least one output. */
    bool
    connected(PortId in) const
    {
        return !outputsOf(in).empty();
    }

    /** Total number of open connections. */
    int connectionCount() const { return openCount; }

    // --- Locks -----------------------------------------------------

    /**
     * Acquire the lock on port @p port for holder @p holder.
     * Re-acquisition by the current holder succeeds.
     */
    bool acquireLock(PortId port, PortId holder);

    /** Release the lock if held by @p holder. */
    bool releaseLock(PortId port, PortId holder);

    /** Current lock holder of @p port (noPort if unlocked). */
    PortId lockHolder(PortId port) const;

    /** Drop every lock held by @p holder. */
    void releaseLocksOf(PortId holder);

    /** Clear all connections and locks. */
    void reset();

    /** Validate a port index. */
    bool valid(PortId p) const { return p >= 0 && p < n; }

  private:
    /**
     * Circuit-accounting invariant, checked under NECTAR_CHECKED
     * after every connection mutation: openCount equals the number
     * of owned outputs, and the owner table and per-input output
     * lists agree in both directions.  A lost closeAll once wedged
     * circuits forever (see ROADMAP, PR 3); this catches the
     * bookkeeping half of that class of bug at the mutation site.
     */
    void checkRep() const;

    int n;
    std::vector<PortId> owner;               ///< Per output.
    std::vector<std::vector<PortId>> outs;   ///< Per input.
    std::vector<PortId> locks;               ///< Per port.
    int openCount = 0;
};

} // namespace nectar::hub
