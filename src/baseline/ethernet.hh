/**
 * @file
 * The LAN baseline: a 10 Mb/s CSMA/CD Ethernet.
 *
 * Section 3.1: "The Nectar-net offers at least an order of magnitude
 * improvement in bandwidth and latency over current LANs.  Moreover,
 * the use of crossbar switches substantially reduces network
 * contention."  This module provides the "current LAN" side of that
 * comparison: a single shared 10 Mb/s medium with carrier sense and
 * binary exponential backoff, driven by the node-resident protocol
 * stack (node/netstack.hh) — all protocol processing on the hosts.
 *
 * Simplification: medium acquisition is serialized by the simulator,
 * so true simultaneous collisions cannot occur; contention appears as
 * carrier-sense deferrals with the standard binary exponential
 * backoff.  Under load this yields the same qualitative behaviour
 * (throughput collapse and unbounded latency on a shared medium).
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "node/node.hh"
#include "node/rawnet.hh"
#include "sim/component.hh"
#include "sim/random.hh"

namespace nectar::baseline {

using sim::Tick;
using namespace sim::ticks;

/** 10BASE Ethernet parameters. */
struct EthernetConfig
{
    Tick byteTime = 800 * ns;       ///< 10 Mb/s.
    Tick interFrameGap = 9600 * ns; ///< 96 bit times.
    Tick slotTime = 51200 * ns;     ///< 512 bit times.
    std::uint32_t frameOverhead = 26; ///< Preamble + header + CRC.
    std::uint32_t maxPayload = 1500;
    std::uint32_t minPayload = 46;
    int maxAttempts = 16;           ///< Excessive-collision limit.
};

class EthernetNic;

/**
 * The shared medium: one segment all stations contend for.
 */
class EthernetSegment : public sim::Component
{
  public:
    EthernetSegment(sim::EventQueue &eq, std::string name,
                    const EthernetConfig &config = {})
        : sim::Component(eq, std::move(name)), cfg(config)
    {}

    const EthernetConfig &config() const { return cfg; }

    void attach(EthernetNic &nic);

    /** Tick at which the medium goes idle. */
    Tick busyUntil() const { return _busyUntil; }

    /** True if the medium carries a signal now. */
    bool carrier() const { return now() < _busyUntil; }

    /**
     * Seize the medium for a frame of @p wireBytes.
     * @pre !carrier()
     * @return The tick the frame's last byte is on the wire.
     */
    Tick seize(std::uint32_t wireBytes);

    /** Deliver a frame to the addressed station (at @p when). */
    void deliver(std::uint16_t dst, sim::PacketView frame, Tick when);

    std::uint64_t framesCarried() const { return _frames.value(); }
    Tick busyTicks() const { return _busyTicks; }

  private:
    EthernetConfig cfg;
    Tick _busyUntil = 0;
    Tick _busyTicks = 0;
    sim::Counter _frames;
    std::map<std::uint16_t, EthernetNic *> stations;
};

/**
 * A station: CSMA/CD medium access plus the per-packet DMA and host
 * interrupt of a 1989 LAN adapter.
 */
class EthernetNic : public node::RawNet, public sim::Component
{
  public:
    /**
     * @param host The node this NIC interrupts.
     * @param segment The shared medium.
     * @param addr Station address.
     */
    EthernetNic(node::Node &host, EthernetSegment &segment,
                std::uint16_t addr);

    std::uint16_t rawAddress() const override { return addr; }

    /**
     * CSMA/CD transmit: defer while the carrier is present, back off
     * binary-exponentially on contention, give up after maxAttempts.
     */
    sim::Task<bool> rawSend(std::uint16_t dst,
                            sim::PacketView packet) override;

    /** Called by the segment when a frame addressed here arrives. */
    void frameArrived(sim::PacketView &&frame);

    std::uint64_t deferrals() const { return _deferrals.value(); }
    std::uint64_t excessiveCollisions() const { return _drops.value(); }

  private:
    node::Node &host;
    EthernetSegment &segment;
    std::uint16_t addr;
    sim::Random rng;
    sim::Counter _deferrals;
    sim::Counter _drops;
};

} // namespace nectar::baseline
