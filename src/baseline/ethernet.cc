#include "ethernet.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nectar::baseline {

void
EthernetSegment::attach(EthernetNic &nic)
{
    if (!stations.emplace(nic.rawAddress(), &nic).second)
        sim::fatal(name() + ": duplicate station address " +
                   std::to_string(nic.rawAddress()));
}

Tick
EthernetSegment::seize(std::uint32_t wireBytes)
{
    if (carrier())
        sim::panic(name() + ": seize while carrier present");
    Tick duration =
        static_cast<Tick>(wireBytes) * cfg.byteTime;
    Tick last_byte = now() + duration;
    _busyUntil = last_byte + cfg.interFrameGap;
    _busyTicks += duration;
    _frames.add();
    return last_byte;
}

void
EthernetSegment::deliver(std::uint16_t dst, sim::PacketView frame,
                         Tick when)
{
    auto it = stations.find(dst);
    if (it == stations.end())
        return; // no such station: the frame dies on the wire
    EthernetNic *nic = it->second;
    eventq().schedule(when, [nic, frame = std::move(frame)]() mutable {
        nic->frameArrived(std::move(frame));
    }, sim::EventPriority::hardware);
}

EthernetNic::EthernetNic(node::Node &host, EthernetSegment &segment,
                         std::uint16_t addr)
    : sim::Component(host.eventq(), host.name() + ".eth"), host(host),
      segment(segment), addr(addr), rng(0x9e3779b9u + addr)
{
    segment.attach(*this);
}

sim::Task<bool>
EthernetNic::rawSend(std::uint16_t dst, sim::PacketView packet)
{
    const auto &cfg = segment.config();
    if (packet.size() > cfg.maxPayload)
        sim::fatal(name() + ": frame exceeds the Ethernet MTU");

    std::uint32_t payload = std::max<std::uint32_t>(
        static_cast<std::uint32_t>(packet.size()), cfg.minPayload);
    std::uint32_t wire = payload + cfg.frameOverhead;

    for (int attempt = 0; attempt < cfg.maxAttempts; ++attempt) {
        if (segment.carrier()) {
            // Carrier sense: defer until idle, then back off a
            // random number of slot times (binary exponential).
            _deferrals.add();
            int exp = std::min(attempt + 1, 10);
            Tick backoff = static_cast<Tick>(rng.below(1u << exp)) *
                           cfg.slotTime;
            Tick wait = std::max<Tick>(
                segment.busyUntil() - now(), 0) + backoff;
            co_await sim::Delay{eventq(), wait};
            continue;
        }
        Tick last_byte = segment.seize(wire);
        segment.deliver(dst, std::move(packet), last_byte);
        co_return true;
    }
    _drops.add();
    co_return false; // excessive collisions
}

void
EthernetNic::frameArrived(sim::PacketView &&frame)
{
    // Adapter DMA into host memory, then a per-frame interrupt — the
    // cost structure the CAB removes (Section 3.1).
    host.raiseInterrupt([this, frame = std::move(frame)]() mutable {
        if (rxRaw)
            rxRaw(std::move(frame));
    });
}

} // namespace nectar::baseline
