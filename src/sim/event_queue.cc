#include "event_queue.hh"

#include "invariant.hh"
#include "logging.hh"

namespace nectar::sim {

void
EventQueue::mixFingerprint(std::uint64_t v)
{
    // FNV-1a over the value's eight bytes.
    for (int i = 0; i < 8; ++i) {
        _fingerprint ^= (v >> (8 * i)) & 0xffU;
        _fingerprint *= 0x100000001b3ULL;
    }
}

EventId
EventQueue::schedule(Tick when, std::function<void()> fn,
                     EventPriority prio)
{
    if (when < _now)
        panic("EventQueue::schedule: scheduling in the past");
    if (!fn)
        panic("EventQueue::schedule: empty callback");

    EventId id = nextId++;
    heap.push(Entry{when, static_cast<int>(prio), id, std::move(fn)});
    live.insert(id);
    SIM_INVARIANT(live.size() <= heap.size(),
                  "every live event has a heap entry");
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // The heap entry stays behind and is skipped on pop; only the
    // live-set membership decides whether an entry fires.
    return live.erase(id) > 0;
}

bool
EventQueue::pending(EventId id) const
{
    return live.count(id) > 0;
}

std::size_t
EventQueue::pendingCount() const
{
    return live.size();
}

bool
EventQueue::step()
{
    while (!heap.empty()) {
        Entry e = heap.top();
        heap.pop();
        if (!live.erase(e.id))
            continue; // cancelled
        SIM_INVARIANT(e.when >= _now,
                      "event-time monotonicity: popped event lies in "
                      "the past");
        _now = e.when;
        ++_executed;
        mixFingerprint(static_cast<std::uint64_t>(e.when));
        mixFingerprint(static_cast<std::uint64_t>(e.prio));
        mixFingerprint(e.id);
        e.fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && step())
        ++n;
    if (n == limit)
        warn("EventQueue::run: event limit reached");
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until, std::uint64_t limit)
{
    if (until < _now)
        panic("EventQueue::runUntil: target tick in the past");

    std::uint64_t n = 0;
    while (n < limit && !heap.empty()) {
        // Drop cancelled entries so the peek below sees a live event.
        const Entry &top = heap.top();
        if (!live.count(top.id)) {
            heap.pop();
            continue;
        }
        if (top.when > until)
            break;
        step();
        ++n;
    }
    if (n == limit)
        warn("EventQueue::runUntil: event limit reached");
    _now = until;
    return n;
}

} // namespace nectar::sim
