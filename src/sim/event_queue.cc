#include "event_queue.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "invariant.hh"
#include "logging.hh"

namespace nectar::sim {

namespace {

/** "No event anywhere" sentinel tick. */
constexpr Tick noTick = std::numeric_limits<Tick>::max();

constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

/** fnvPow[k] = fnvPrime^k mod 2^64. */
constexpr auto fnvPow = [] {
    std::array<std::uint64_t, 9> a{};
    a[0] = 1;
    for (std::size_t i = 1; i < a.size(); ++i)
        a[i] = a[i - 1] * fnvPrime;
    return a;
}();

} // namespace

EventQueue::~EventQueue()
{
    if (detail::liveEventQueues.fetch_sub(1) == 1) {
        if (auto *reaper = detail::detachedReaper.load())
            reaper();
    }
}

void
EventQueue::mixFingerprint(std::uint64_t v)
{
    // FNV-1a over the value's eight bytes, bit-identical to the seed
    // engine's byte loop (tests/test_golden_fingerprint.cc holds it
    // to that).  The chain of dependent multiplies is the engine's
    // single largest fixed cost per event, so the run of high zero
    // bytes — ticks, priorities and sequence numbers rarely use all
    // eight — collapses into one multiply by a precomputed power of
    // the prime: (fp ^ 0) * P is fp * P, and multiplication mod 2^64
    // is associative.
    std::uint64_t fp = _fingerprint;
    int i = 0;
    do {
        fp = (fp ^ (v & 0xffU)) * fnvPrime;
        v >>= 8;
        ++i;
    } while (v != 0 && i < 8);
    _fingerprint = fp * fnvPow[static_cast<std::size_t>(8 - i)];
}

// ---- node pool -----------------------------------------------------

EventQueue::EventNode *
EventQueue::allocNode()
{
    if (_freelist != nullptr) {
        EventNode *n = _freelist;
        _freelist = n->next;
        n->next = nullptr;
        SIM_INVARIANT(n->state == NodeState::free,
                      "freelist holds only free nodes");
        return n;
    }
    _nodes.push_back(std::make_unique<EventNode>());
    EventNode *n = _nodes.back().get();
    n->idx = static_cast<std::uint32_t>(_nodes.size() - 1);
    return n;
}

void
EventQueue::bumpGen(EventNode *n)
{
    // Generation 0 is reserved so invalidEventId (and any small
    // integer mistaken for a handle) can never match a node.
    if (++n->gen == 0)
        n->gen = 1;
}

void
EventQueue::retire(EventNode *n)
{
    n->fn.reset();
    n->state = NodeState::free;
    n->prev = nullptr;
    n->next = _freelist;
    _freelist = n;
}

EventId
EventQueue::makeId(const EventNode *n)
{
    return (static_cast<EventId>(n->gen) << 32) | n->idx;
}

EventQueue::EventNode *
EventQueue::decode(EventId id) const
{
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    const auto idx = static_cast<std::uint32_t>(id & 0xffffffffU);
    if (gen == 0 || idx >= _nodes.size())
        return nullptr;
    EventNode *n = _nodes[idx].get();
    if (n->gen != gen)
        return nullptr; // fired, cancelled, or re-armed since
    SIM_INVARIANT(n->state != NodeState::free,
                  "a handle can only match a pending node");
    return n;
}

EventQueue::HeapEntry
EventQueue::entryFor(const EventNode *n) const
{
    return HeapEntry{n->when, n->seq, n->prio, n->gen, n->idx};
}

// ---- heaps ---------------------------------------------------------

void
EventQueue::heapPush(MinHeap &h, const HeapEntry &e)
{
    h.push_back(e);
    std::push_heap(h.begin(), h.end(), HeapLater{});
}

void
EventQueue::heapPop(MinHeap &h)
{
    std::pop_heap(h.begin(), h.end(), HeapLater{});
    h.pop_back();
}

void
EventQueue::heapPrune(MinHeap &h)
{
    while (!h.empty()) {
        const HeapEntry &e = h.front();
        if (_nodes[e.node]->gen == e.gen)
            return;
        heapPop(h); // stale: event was cancelled or re-armed
    }
}

// ---- wheel ---------------------------------------------------------

void
EventQueue::wheelLink(EventNode *n, int level)
{
    const int s =
        static_cast<int>((n->when >> (slotBits * level)) & (slots - 1));
    auto &lv = _wheel[static_cast<std::size_t>(level)];
    n->level = static_cast<std::uint8_t>(level);
    n->state = NodeState::wheel;
    n->prev = nullptr;
    n->next = lv.head[static_cast<std::size_t>(s)];
    if (n->next != nullptr)
        n->next->prev = n;
    lv.head[static_cast<std::size_t>(s)] = n;
    lv.bitmap[static_cast<std::size_t>(s >> 6)] |= 1ULL << (s & 63);
    ++_wheelCount;
}

void
EventQueue::wheelUnlink(EventNode *n)
{
    const int s = static_cast<int>((n->filed >> (slotBits * n->level)) &
                                   (slots - 1));
    auto &lv = _wheel[n->level];
    if (n->prev != nullptr)
        n->prev->next = n->next;
    else {
        SIM_INVARIANT(lv.head[static_cast<std::size_t>(s)] == n,
                      "unlinked node must be its slot's list head");
        lv.head[static_cast<std::size_t>(s)] = n->next;
    }
    if (n->next != nullptr)
        n->next->prev = n->prev;
    if (lv.head[static_cast<std::size_t>(s)] == nullptr)
        lv.bitmap[static_cast<std::size_t>(s >> 6)] &=
            ~(1ULL << (s & 63));
    n->prev = n->next = nullptr;
    --_wheelCount;
}

void
EventQueue::place(EventNode *n)
{
    const Tick when = n->when;
    if (when < _cursor) {
        // Behind the scan position (only possible after a runUntil()
        // peek advanced _cursor past _now): park in the early heap.
        n->state = NodeState::early;
        heapPush(_early, entryFor(n));
        return;
    }
    const auto x = static_cast<std::uint64_t>(when) ^
                   static_cast<std::uint64_t>(_cursor);
    if ((x >> wheelHorizonBits) != 0) {
        n->state = NodeState::far;
        heapPush(_far, entryFor(n));
        return;
    }
    // Highest differing bit picks the level (0 when x == 0: due
    // exactly at the cursor tick).
    const int level = x == 0 ? 0 : (std::bit_width(x) - 1) / slotBits;
    n->filed = when;
    wheelLink(n, level);
}

int
EventQueue::scanLevel(int level, int from) const
{
    const auto &bm = _wheel[static_cast<std::size_t>(level)].bitmap;
    int w = from >> 6;
    std::uint64_t word =
        bm[static_cast<std::size_t>(w)] & (~0ULL << (from & 63));
    while (true) {
        if (word != 0)
            return (w << 6) + std::countr_zero(word);
        if (++w >= bitmapWords)
            return -1;
        word = bm[static_cast<std::size_t>(w)];
    }
}

Tick
EventQueue::wheelNextTick()
{
    if (_wheelCount == 0)
        return noTick;
    while (true) {
        bool cascaded = false;
        for (int level = 0; level < levels; ++level) {
            const int c = static_cast<int>(
                (_cursor >> (slotBits * level)) & (slots - 1));
            const int s = scanLevel(level, c);
            if (s < 0)
                continue;
            if (level == 0)
                return (_cursor & ~static_cast<Tick>(slots - 1)) | s;

            // Cascade: advance the cursor to the slot's window start
            // and re-file its events one level (or more) down.  The
            // cursor never rewinds — w >= _cursor because s is the
            // earliest occupied slot at or after the cursor's digit.
            const Tick windowMask =
                (static_cast<Tick>(1) << (slotBits * (level + 1))) - 1;
            const Tick w = (_cursor & ~windowMask) |
                           (static_cast<Tick>(s) << (slotBits * level));
            SIM_INVARIANT(w >= _cursor,
                          "wheel cursor must never rewind");
            _cursor = w;
            auto &lv = _wheel[static_cast<std::size_t>(level)];
            EventNode *n = lv.head[static_cast<std::size_t>(s)];
            lv.head[static_cast<std::size_t>(s)] = nullptr;
            lv.bitmap[static_cast<std::size_t>(s >> 6)] &=
                ~(1ULL << (s & 63));
            while (n != nullptr) {
                EventNode *next = n->next;
                n->prev = n->next = nullptr;
                --_wheelCount;
                // Re-place by the *current* deadline, so a lazily
                // re-armed node lands where it now belongs.
                place(n);
                n = next;
            }
            ++_cascades;
            cascaded = true;
            break; // rescan from level 0
        }
        if (!cascaded) {
            // A cascade can push every resident past the horizon
            // (lazily re-armed nodes re-placed into the far heap).
            SIM_INVARIANT(_wheelCount == 0,
                          "wheel scan must find every resident");
            return noTick;
        }
    }
}

void
EventQueue::pullTick(Tick t, bool fromWheel)
{
    if (fromWheel) {
        SIM_INVARIANT(t >= _cursor, "wheel next tick is >= cursor");
        _cursor = t;
        const int s = static_cast<int>(t & (slots - 1));
        auto &lv = _wheel[0];
        EventNode *n = lv.head[static_cast<std::size_t>(s)];
        lv.head[static_cast<std::size_t>(s)] = nullptr;
        lv.bitmap[static_cast<std::size_t>(s >> 6)] &=
            ~(1ULL << (s & 63));
        while (n != nullptr) {
            EventNode *next = n->next;
            n->prev = n->next = nullptr;
            --_wheelCount;
            if (n->when == t) {
                n->state = NodeState::due;
                heapPush(_due, entryFor(n));
            } else {
                // Lazily re-armed to a later tick: re-file now.
                SIM_INVARIANT(n->when > t,
                              "deferred node must be re-armed later");
                place(n);
            }
            n = next;
        }
    } else if (_wheelCount == 0 && t > _cursor) {
        // Nothing filed: drag the cursor along so future schedules
        // land back in the wheel instead of the far heap.
        _cursor = t;
    }
    const auto drain = [this, t](MinHeap &h) {
        while (!h.empty()) {
            const HeapEntry e = h.front();
            if (_nodes[e.node]->gen != e.gen) {
                heapPop(h); // stale
                continue;
            }
            if (e.when != t)
                break;
            heapPop(h);
            _nodes[e.node]->state = NodeState::due;
            heapPush(_due, e);
        }
    };
    drain(_early);
    drain(_far);
}

// ---- scheduling API ------------------------------------------------

EventId
EventQueue::schedule(Tick when, EventFn fn, EventPriority prio)
{
    if (when < _now)
        panic("EventQueue::schedule: scheduling in the past");
    if (!fn)
        panic("EventQueue::schedule: empty callback");

    EventNode *n = allocNode();
    n->when = when;
    n->seq = _nextSeq++;
    n->prio = static_cast<int>(prio);
    n->fn = std::move(fn);
    ++_pending;
    if (when == _now) {
        n->state = NodeState::due;
        heapPush(_due, entryFor(n));
    } else {
        place(n);
    }
    return makeId(n);
}

bool
EventQueue::cancel(EventId id)
{
    EventNode *n = decode(id);
    if (n == nullptr)
        return false;
    if (n->state == NodeState::wheel)
        wheelUnlink(n);
    // Heap residents leave a stale entry behind; the generation bump
    // below invalidates it and heapPrune()/pullTick() skip it.
    bumpGen(n);
    retire(n);
    --_pending;
    return true;
}

EventId
EventQueue::rearm(EventId id, Tick when)
{
    EventNode *n = decode(id);
    if (n == nullptr)
        return invalidEventId;
    if (when < _now)
        panic("EventQueue::rearm: scheduling in the past");

    // Trace parity with the cancel+schedule idiom this replaces: the
    // re-armed event consumes a fresh sequence number.
    n->seq = _nextSeq++;
    bumpGen(n); // the old handle (and any heap entry) goes stale

    if (n->state == NodeState::wheel && when >= n->filed &&
        when > _now) {
        // Fast path: the node's slot comes due no later than the new
        // deadline, so leave it filed; the slot visit re-places it.
        n->when = when;
        ++_lazyRearms;
        return makeId(n);
    }

    if (n->state == NodeState::wheel)
        wheelUnlink(n);
    n->when = when;
    if (when == _now) {
        n->state = NodeState::due;
        heapPush(_due, entryFor(n));
    } else {
        place(n);
    }
    return makeId(n);
}

bool
EventQueue::pending(EventId id) const
{
    return decode(id) != nullptr;
}

// ---- execution -----------------------------------------------------

Tick
EventQueue::nextTick()
{
    SIM_INVARIANT(_ready == nullptr,
                  "previous ready node must have been consumed");
    while (true) {
        heapPrune(_due);
        const Tick due = _due.empty() ? noTick : _due.front().when;
        if (due == _now)
            return due; // same-tick chain: nothing can precede it
        heapPrune(_early);
        heapPrune(_far);
        const Tick wheel = wheelNextTick();
        const Tick early =
            _early.empty() ? noTick : _early.front().when;
        const Tick far = _far.empty() ? noTick : _far.front().when;
        const Tick t =
            std::min(std::min(due, wheel), std::min(early, far));
        if (t == noTick)
            return noTick;
        if (t == wheel && due == noTick && early != t && far != t) {
            // Direct-fire fast path: the only candidate at t is the
            // wheel's level-0 slot.  If it holds a single node due
            // exactly at t, skip the due-heap round trip entirely.
            const int s = static_cast<int>(t & (slots - 1));
            auto &lv = _wheel[0];
            EventNode *n = lv.head[static_cast<std::size_t>(s)];
            if (n != nullptr && n->next == nullptr && n->when == t) {
                _cursor = t;
                lv.head[static_cast<std::size_t>(s)] = nullptr;
                lv.bitmap[static_cast<std::size_t>(s >> 6)] &=
                    ~(1ULL << (s & 63));
                --_wheelCount;
                n->prev = nullptr;
                n->state = NodeState::due;
                _ready = n;
                return t;
            }
        }
        pullTick(t, wheel == t);
        heapPrune(_due);
        if (!_due.empty() && _due.front().when == t)
            return t;
        // The pulled slot held only deferred re-arms; scan again.
    }
}

void
EventQueue::fireNode(EventNode *n, Tick when, int prio,
                     std::uint64_t seq)
{
    SIM_INVARIANT(when >= _now,
                  "event-time monotonicity: popped event lies in "
                  "the past");
    _now = when;
    ++_executed;
    mixFingerprint(static_cast<std::uint64_t>(when));
    mixFingerprint(static_cast<std::uint64_t>(prio));
    mixFingerprint(seq);
    // Recycle the node before invoking, so a handler scheduling a new
    // event reuses it and cancel-self returns false (as in the seed
    // engine, where the live-set erase preceded the call).
    EventFn fn = std::move(n->fn);
    bumpGen(n);
    retire(n);
    --_pending;
    fn();
}

void
EventQueue::fireTop()
{
    if (_ready != nullptr) {
        EventNode *n = _ready;
        _ready = nullptr;
        fireNode(n, n->when, n->prio, n->seq);
        return;
    }
    const HeapEntry e = _due.front();
    heapPop(_due);
    EventNode *n = _nodes[e.node].get();
    SIM_INVARIANT(n->gen == e.gen, "fired entry must be fresh");
    fireNode(n, e.when, e.prio, e.seq);
}

std::uint64_t
EventQueue::fireTick(Tick t, std::uint64_t budget)
{
    std::uint64_t fired = 0;
    SIM_INVARIANT(_ready == nullptr,
                  "fireTick batch path runs off the due heap");

    // Extract the equal-timestamp run out of the due heap in one
    // linear pass (dropping stale entries as we go), then restore the
    // heap property over the survivors.  The due heap can legitimately
    // hold future-tick entries here — a runUntil() peek that overshot
    // re-files its candidate — so partition by tick, don't assume the
    // heap is homogeneous.
    std::vector<HeapEntry> batch = std::move(_batchScratch);
    batch.clear();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < _due.size(); ++i) {
        const HeapEntry &e = _due[i];
        if (_nodes[e.node]->gen != e.gen)
            continue; // stale: cancelled or re-armed
        if (e.when == t)
            batch.push_back(e);
        else
            _due[keep++] = e;
    }
    _due.resize(keep);
    std::make_heap(_due.begin(), _due.end(), HeapLater{});
    std::sort(batch.begin(), batch.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  if (a.prio != b.prio)
                      return a.prio < b.prio;
                  return a.seq < b.seq;
              });

    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
        const HeapEntry e = batch[bi];
        bool dead = false;
        // Events scheduled at t *during* the batch land in the due
        // heap with fresh (larger) sequence numbers; any of them in a
        // stronger priority class (e.g. a front continuation) must
        // fire before the rest of the batch, exactly as the per-event
        // engine would have ordered them.
        while (true) {
            if (_nodes[e.node]->gen != e.gen) {
                dead = true; // a fired event cancelled/re-armed it
                break;
            }
            heapPrune(_due);
            if (_due.empty() || _due.front().when != t)
                break;
            const HeapEntry &top = _due.front();
            if (top.prio > e.prio ||
                (top.prio == e.prio && top.seq > e.seq))
                break;
            fireTop();
            ++fired;
            if (fired >= budget)
                break;
        }
        if (dead)
            continue;
        if (fired >= budget ||
            _nodes[e.node]->gen != e.gen) {
            // Out of budget (or e died on the final interleave): put
            // the unfired tail back for the next fireTick() round.
            for (std::size_t j = bi; j < batch.size(); ++j) {
                const HeapEntry &r = batch[j];
                if (_nodes[r.node]->gen == r.gen &&
                    (j > bi || fired >= budget))
                    heapPush(_due, r);
            }
            break;
        }
        fireNode(_nodes[e.node].get(), e.when, e.prio, e.seq);
        ++fired;
        if (fired >= budget) {
            for (std::size_t j = bi + 1; j < batch.size(); ++j) {
                const HeapEntry &r = batch[j];
                if (_nodes[r.node]->gen == r.gen)
                    heapPush(_due, r);
            }
            break;
        }
    }
    batch.clear();
    _batchScratch = std::move(batch);
    return fired;
}

bool
EventQueue::step()
{
    if (nextTick() == noTick)
        return false;
    fireTop();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    // Tiny due heaps fire per-event: below this size fireTick()'s
    // extraction pass costs more than the heap pops it saves.  Firing
    // one event and re-entering nextTick() (which early-outs on
    // due == now) is exactly the per-event engine's order, so the
    // small path is always safe to take.
    constexpr std::size_t batchThreshold = 4;
    std::uint64_t n = 0;
    while (n < limit) {
        const Tick t = nextTick();
        if (t == noTick)
            break;
        if (_ready != nullptr || _due.size() < batchThreshold) {
            fireTop();
            ++n;
            continue;
        }
        n += fireTick(t, limit - n);
    }
    if (n == limit)
        warn("EventQueue::run: event limit reached");
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until, std::uint64_t limit)
{
    if (until < _now)
        panic("EventQueue::runUntil: target tick in the past");

    constexpr std::size_t batchThreshold = 4; // see run()
    std::uint64_t n = 0;
    while (n < limit) {
        const Tick t = nextTick();
        if (t == noTick || t > until) {
            if (_ready != nullptr) {
                // The peek overshot: put the direct-fire candidate
                // back (it already counts as due; see nextTick()).
                heapPush(_due, entryFor(_ready));
                _ready = nullptr;
            }
            break;
        }
        if (_ready != nullptr || _due.size() < batchThreshold) {
            fireTop();
            ++n;
            continue;
        }
        n += fireTick(t, limit - n);
    }
    if (n == limit)
        warn("EventQueue::runUntil: event limit reached");
    _now = until;
    return n;
}

Tick
EventQueue::peekNextTick()
{
    const Tick t = nextTick();
    if (_ready != nullptr) {
        // Same overshoot handling as runUntil(): the peek must leave
        // the direct-fire candidate filed as due, not parked.
        heapPush(_due, entryFor(_ready));
        _ready = nullptr;
    }
    return t;
}

} // namespace nectar::sim
