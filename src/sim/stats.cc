#include "stats.hh"

#include <cmath>

#include "logging.hh"

namespace nectar::sim {

CopyStats &
copyStats()
{
    static CopyStats stats;
    return stats;
}

void
SampleStats::record(double x)
{
    ++n;
    _sum += x;
    if (n == 1) {
        _min = _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    double delta = x - _mean;
    _mean += delta / static_cast<double>(n);
    m2 += delta * (x - _mean);
}

double
SampleStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

double
Histogram::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("Histogram::percentile: p out of [0, 100]");
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    if (p <= 0.0)
        return samples.front();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    if (rank == 0)
        rank = 1;
    return samples[std::min(rank - 1, samples.size() - 1)];
}

double
Histogram::mean() const
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    return sum / static_cast<double>(samples.size());
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, s] : stats) {
        os << name << ".count " << s.count() << "\n";
        os << name << ".mean " << s.mean() << "\n";
        os << name << ".min " << s.min() << "\n";
        os << name << ".max " << s.max() << "\n";
    }
}

void
StatRegistry::reset()
{
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, s] : stats)
        s.reset();
}

} // namespace nectar::sim
