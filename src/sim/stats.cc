#include "stats.hh"

#include <bit>
#include <cmath>

#include "logging.hh"

namespace nectar::sim {

CopyStats &
copyStats()
{
    // nectar-lint: global-ok copy-accounting counters; sharded per
    // thread so parallel-engine workers account without contention
    // (reports read the counters from the thread that did the work;
    // sequential runs see the one main-thread instance as before)
    thread_local CopyStats stats;
    return stats;
}

void
SampleStats::record(double x)
{
    ++n;
    _sum += x;
    if (n == 1) {
        _min = _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    double delta = x - _mean;
    _mean += delta / static_cast<double>(n);
    m2 += delta * (x - _mean);
}

double
SampleStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(int sigBits) : sig(sigBits)
{
    if (sigBits < 0 || sigBits > 16)
        panic("Histogram: sigBits out of [0, 16]");
}

std::size_t
Histogram::indexOf(std::uint64_t v) const
{
    const std::uint64_t sub = std::uint64_t{1} << sig;
    if (v < sub)
        return static_cast<std::size_t>(v);
    int octave = std::bit_width(v) - 1; // floor(log2 v) >= sig
    int shift = octave - sig;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(shift + 1) << sig) +
        ((v >> shift) - sub));
}

double
Histogram::representative(std::size_t index) const
{
    const std::uint64_t sub = std::uint64_t{1} << sig;
    if (index < sub)
        return static_cast<double>(index);
    std::size_t block = index >> sig; // >= 1
    std::uint64_t pos = index & (sub - 1);
    int shift = static_cast<int>(block) - 1;
    std::uint64_t lower = (sub + pos) << shift;
    std::uint64_t width = std::uint64_t{1} << shift;
    return static_cast<double>(lower) +
           static_cast<double>(width - 1) / 2.0;
}

void
Histogram::record(double x)
{
    ++n;
    _sum += x;
    if (n == 1) {
        _min = _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    if (x < 0.0) {
        ++nUnder;
        return;
    }
    double rounded = std::floor(x + 0.5);
    if (rounded > maxTrackable) {
        ++nOver;
        return;
    }
    std::size_t i = indexOf(static_cast<std::uint64_t>(rounded));
    if (buckets.size() <= i)
        buckets.resize(i + 1, 0);
    ++buckets[i];
}

double
Histogram::percentile(double p) const
{
    if (n == 0)
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("Histogram::percentile: p out of [0, 100]");
    if (p <= 0.0)
        return _min;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::max<std::uint64_t>(rank, 1);

    std::uint64_t cum = nUnder;
    if (rank <= cum)
        return _min;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (rank <= cum)
            return std::clamp(representative(i), _min, _max);
    }
    return _max; // overflow bucket (or rounding slack)
}

double
Histogram::mean() const
{
    if (n == 0)
        return 0.0;
    return _sum / static_cast<double>(n);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.n == 0)
        return;
    if (other.sig != sig)
        panic("Histogram::merge: resolution (sigBits) mismatch");
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    if (n == 0) {
        _min = other._min;
        _max = other._max;
    } else {
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
    }
    n += other.n;
    nUnder += other.nUnder;
    nOver += other.nOver;
    _sum += other._sum;
}

void
Histogram::reset()
{
    buckets.clear();
    n = nUnder = nOver = 0;
    _min = _max = _sum = 0.0;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, s] : stats) {
        os << name << ".count " << s.count() << "\n";
        os << name << ".mean " << s.mean() << "\n";
        os << name << ".min " << s.min() << "\n";
        os << name << ".max " << s.max() << "\n";
    }
}

void
StatRegistry::reset()
{
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, s] : stats)
        s.reset();
}

} // namespace nectar::sim
