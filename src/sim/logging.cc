#include "logging.hh"

#include <iostream>

#include "invariant.hh"

namespace nectar::sim {

namespace {

LogLevel globalLevel = LogLevel::warn;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
inform(const std::string &msg)
{
    if (globalLevel >= LogLevel::inform)
        std::cerr << "info: " << msg << "\n";
}

void
warn(const std::string &msg)
{
    if (globalLevel >= LogLevel::warn)
        std::cerr << "warn: " << msg << "\n";
}

void
debugLog(const std::string &msg)
{
    if (globalLevel >= LogLevel::debug)
        std::cerr << "debug: " << msg << "\n";
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
invariantFailed(const char *file, int line, const char *expr,
                const std::string &what)
{
    panic("invariant violated: " + what + " [" + expr + "] at " +
          file + ":" + std::to_string(line));
}

} // namespace nectar::sim
