#include "parallel.hh"

#include <algorithm>
#include <barrier>
#include <thread>

#include "invariant.hh"
#include "logging.hh"

namespace nectar::sim {

ParallelEngine::ParallelEngine(int clusters, int threads)
    : _clusters(clusters), _threads(threads), _trace(clusters),
      _next(static_cast<std::size_t>(clusters),
            LookaheadTracker::unbounded)
{
    if (clusters < 1)
        panic("ParallelEngine: need at least one cluster");
    if (threads < 1)
        panic("ParallelEngine: need at least one thread");
    _queues.reserve(static_cast<std::size_t>(clusters));
    for (int c = 0; c < clusters; ++c)
        _queues.push_back(std::make_unique<EventQueue>());
    // One SPSC mailbox per directed cluster pair, created up front so
    // channelFor() is a plain lookup (C <= 16 keeps the grid tiny).
    _channels.resize(static_cast<std::size_t>(clusters) *
                     static_cast<std::size_t>(clusters));
    for (int s = 0; s < clusters; ++s) {
        for (int d = 0; d < clusters; ++d) {
            if (s == d)
                continue;
            _channels[static_cast<std::size_t>(s * clusters + d)] =
                std::make_unique<CrossChannel>(s, d);
        }
    }
}

ParallelEngine::~ParallelEngine() = default;

CrossChannel *
ParallelEngine::channel(ClusterId src, ClusterId dst) const
{
    if (src == dst)
        return nullptr;
    return _channels[static_cast<std::size_t>(src * _clusters + dst)]
        .get();
}

CrossChannel *
ParallelEngine::channelFor(ClusterId src, ClusterId dst)
{
    return channel(src, dst);
}

std::uint64_t
ParallelEngine::executedCount() const
{
    std::uint64_t n = 0;
    for (const auto &q : _queues)
        n += q->executedCount();
    return n;
}

std::uint64_t
ParallelEngine::fingerprint() const
{
    // Fold the shard fingerprints in cluster order with the same
    // FNV-1a byte mix the shards themselves use.  Shard decomposition
    // is per cluster regardless of thread count, so this value is
    // thread-count invariant.
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    std::uint64_t fp = 0xcbf29ce484222325ULL;
    for (const auto &q : _queues) {
        std::uint64_t v = q->fingerprint();
        for (int i = 0; i < 8; ++i) {
            fp = (fp ^ (v & 0xffU)) * prime;
            v >>= 8;
        }
    }
    return fp;
}

bool
ParallelEngine::empty() const
{
    for (const auto &q : _queues)
        if (!q->empty())
            return false;
    for (const auto &ch : _channels)
        if (ch && ch->inFlight() != 0)
            return false;
    return true;
}

void
ParallelEngine::inject(ClusterId c)
{
    // The deterministic merge: ascending source cluster, FIFO within
    // a source.  Same-tick deliveries from different sources cannot
    // tie (their priority bands differ), so this drain order fixes
    // the destination trace regardless of thread interleaving.
    EventQueue &q = queueFor(c);
    CrossEvent e;
    for (ClusterId s = 0; s < _clusters; ++s) {
        CrossChannel *ch = channel(s, c);
        if (ch == nullptr)
            continue;
        while (ch->pop(e)) {
            SIM_INVARIANT(e.when > q.now(),
                          "conservative lookahead: a mailbox "
                          "delivery must land beyond the epoch "
                          "executed when it was posted");
            q.schedule(e.when, std::move(e.fn), crossPriority(s));
        }
    }
}

void
ParallelEngine::decide()
{
    // Runs with every worker parked at the barrier: single-threaded
    // by construction, reads the injects/peeks/executions that
    // happened-before the workers arrived.
    Tick g = LookaheadTracker::unbounded;
    for (Tick t : _next)
        g = std::min(g, t);

    const std::uint64_t fired = executedCount() - _baseExecuted;
    if (fired >= _limit) {
        if (!_warnedLimit) {
            warn("ParallelEngine: event limit reached");
            _warnedLimit = true;
        }
        _done = true;
        return;
    }
    if (g == LookaheadTracker::unbounded ||
        (_bounded && g > _until)) {
        // Every shard drained (mailboxes included: injection precedes
        // the peeks this decision is based on), or nothing remains
        // inside the bounded window.
        _done = true;
        return;
    }

    const Tick end = epochEnd(g, _lookahead.value());
    _runToDrain = !_bounded && end == LookaheadTracker::unbounded;
    if (!_runToDrain)
        _epochTo = _bounded ? std::min(end - 1, _until) : end - 1;
    // Per-shard budget for this epoch, computed here because workers
    // must not read each other's execution counters mid-epoch.
    _epochBudget = _limit - fired;
    ++_epochs;
}

std::uint64_t
ParallelEngine::drive(bool bounded, Tick until, std::uint64_t limit)
{
    _bounded = bounded;
    _until = until;
    _limit = limit == 0 ? 1 : limit;
    _baseExecuted = executedCount();
    _done = false;
    _warnedLimit = false;
    _workers = std::max(1, std::min(_threads, _clusters));

    const auto execShard = [this](ClusterId c) {
        EventQueue &q = queueFor(c);
        if (_runToDrain)
            q.run(_epochBudget);
        else if (_epochTo >= q.now())
            q.runUntil(_epochTo, _epochBudget);
    };

    if (_workers == 1) {
        // Same epoch protocol, no threads, no barriers: the rounds —
        // and every shard trace — are identical to the threaded run.
        while (true) {
            for (ClusterId c = 0; c < _clusters; ++c) {
                inject(c);
                _next[static_cast<std::size_t>(c)] =
                    queueFor(c).peekNextTick();
            }
            decide();
            if (_done)
                break;
            for (ClusterId c = 0; c < _clusters; ++c)
                execShard(c);
        }
    } else {
        struct Decide {
            ParallelEngine *engine;
            void operator()() noexcept { engine->decide(); }
        };
        // Two barriers per round.  The first separates inject+peek
        // from decide (its completion phase).  The second separates
        // one epoch's execution from the next round's inject: without
        // it a fast worker could drain a mailbox while a slow one is
        // still posting this epoch's deliveries into it, and miss one
        // that belongs inside the next window.
        std::barrier<Decide> decideBar(_workers, Decide{this});
        std::barrier<> epochBar(_workers);

        const auto body = [&, this](int w) {
            while (true) {
                for (ClusterId c = w; c < _clusters; c += _workers) {
                    inject(c);
                    _next[static_cast<std::size_t>(c)] =
                        queueFor(c).peekNextTick();
                }
                decideBar.arrive_and_wait();
                if (_done)
                    return;
                for (ClusterId c = w; c < _clusters; c += _workers)
                    execShard(c);
                epochBar.arrive_and_wait();
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(_workers - 1));
        for (int w = 1; w < _workers; ++w)
            pool.emplace_back(body, w);
        body(0);
        for (std::thread &t : pool)
            t.join();
    }

    if (_bounded && !_warnedLimit) {
        // Nothing with tick <= until remains anywhere; align every
        // shard clock to the target, mirroring EventQueue::runUntil.
        for (auto &q : _queues)
            if (q->now() < until)
                q->runUntil(until);
    }
    return executedCount() - _baseExecuted;
}

std::uint64_t
ParallelEngine::run(std::uint64_t limit)
{
    return drive(false, 0, limit);
}

std::uint64_t
ParallelEngine::runUntil(Tick until, std::uint64_t limit)
{
    for (const auto &q : _queues)
        if (until < q->now())
            panic("ParallelEngine::runUntil: target tick in the past");
    return drive(true, until, limit);
}

} // namespace nectar::sim
