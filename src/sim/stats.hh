/**
 * @file
 * Statistics collection: counters, sample statistics, histograms.
 *
 * These mirror what the Nectar prototype's instrumentation board
 * (Section 4.1) records in hardware: event counts and latency
 * distributions for crossbar and controller activity.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "types.hh"

namespace nectar::sim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    /** Increment by @p n. */
    void add(std::uint64_t n = 1) { _value += n; }
    /** Current count. */
    std::uint64_t value() const { return _value; }
    /** Reset to zero. */
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Running sample statistics (count/mean/min/max/stddev) using
 * Welford's online algorithm; O(1) memory.
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void record(double x);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? _mean : 0.0; }
    double min() const { return n ? _min : 0.0; }
    double max() const { return n ? _max : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double sum() const { return _sum; }

    void reset() { *this = SampleStats(); }

  private:
    std::uint64_t n = 0;
    double _mean = 0.0;
    double m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _sum = 0.0;
};

/**
 * An HDR-style log-bucketed histogram: fixed memory regardless of
 * sample count, mergeable, with bounded relative quantile error.
 *
 * Values below 2^sigBits land in exact unit-width buckets; above
 * that, each power-of-two range splits into 2^sigBits linear
 * sub-buckets, so a bucket's width never exceeds 2^-sigBits of its
 * values and a quantile's midpoint representative is within
 * relativeError() = 2^-(sigBits+1) of the true sample.  Exact min,
 * max, and sum are tracked on the side, so mean() is exact and the
 * 0th/100th percentiles return the true extremes.  Negative samples
 * count in an underflow bucket, samples beyond maxTrackable in an
 * overflow bucket; both are represented by the exact min/max in
 * quantile queries.
 *
 * Bucket counts grow lazily toward a hard cap of about
 * (63 - sigBits) * 2^sigBits entries (~56 KB at the default
 * resolution) — recording a million samples costs the same memory
 * as recording ten.
 */
class Histogram
{
  public:
    /** @param sigBits Sub-bucket resolution bits, in [0, 16]. */
    explicit Histogram(int sigBits = 7);

    /** Record one sample (nearest-integer bucketing). */
    void record(double x);

    std::uint64_t count() const { return n; }

    /**
     * Quantile by nearest-rank over the bucket counts; the answer is
     * within relativeError() of the exact nearest-rank sample.
     * @param p In [0, 100].
     */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

    /** Exact mean (sum and count are tracked exactly). */
    double mean() const;

    double min() const { return n ? _min : 0.0; }
    double max() const { return n ? _max : 0.0; }
    double sum() const { return _sum; }

    /** Samples recorded below zero. */
    std::uint64_t underflow() const { return nUnder; }
    /** Samples recorded beyond maxTrackable. */
    std::uint64_t overflow() const { return nOver; }

    /** Largest value stored in a regular bucket. */
    static constexpr double maxTrackable =
        static_cast<double>(std::uint64_t{1} << 62);

    /** Bound on |percentile(p) - exact| / exact for tracked values. */
    double
    relativeError() const
    {
        return 1.0 / static_cast<double>(std::uint64_t{2} << sig);
    }

    /**
     * Fold another histogram's counts into this one.  Bucket-exact:
     * merging is associative and commutative, and any merge order
     * reports identical quantiles.  Both sides must share sigBits.
     */
    void merge(const Histogram &other);

    int sigBits() const { return sig; }

    /** Buckets allocated so far (memory audit; structurally capped). */
    std::size_t bucketCount() const { return buckets.size(); }

    void reset();

  private:
    std::size_t indexOf(std::uint64_t v) const;
    double representative(std::size_t index) const;

    int sig;
    std::vector<std::uint64_t> buckets; ///< Grown lazily, bounded.
    std::uint64_t n = 0;
    std::uint64_t nUnder = 0;
    std::uint64_t nOver = 0;
    double _min = 0.0;
    double _max = 0.0;
    double _sum = 0.0;
};

/**
 * Tracks utilization of a resource: total busy time over a window.
 */
class UtilizationStat
{
  public:
    /** Record that the resource was busy for @p busy ticks. */
    void addBusy(Tick busy) { busyTicks += busy; }

    /** Fraction busy over [start, end]. */
    double
    utilization(Tick start, Tick end) const
    {
        if (end <= start)
            return 0.0;
        return static_cast<double>(busyTicks) /
               static_cast<double>(end - start);
    }

    Tick busy() const { return busyTicks; }
    void reset() { busyTicks = 0; }

  private:
    Tick busyTicks = 0;
};

/**
 * Deterministic accounting of deep copies on the packet path.
 *
 * The Nectar hardware exists to keep payload bytes from being copied
 * between protocol layers (DMA, hardware checksum, mailbox delivery);
 * these counters make the simulator's own copy behaviour measurable.
 * Byte reads of header fields are "register reads" and are not
 * counted; bulk materialization of payload bytes (PacketView::
 * toVector / copyTo, or explicitly instrumented vector copies) is.
 *
 * The counters are global and advance in simulation order, so two
 * same-seed runs produce identical values.
 */
struct CopyStats
{
    std::uint64_t bytesCopied = 0;  ///< Payload bytes deep-copied.
    std::uint64_t copyOps = 0;      ///< Individual copy operations.
    std::uint64_t bufferAllocs = 0; ///< Payload buffer allocations.

    void
    reset()
    {
        *this = CopyStats{};
    }
};

/** The process-wide copy-accounting counters. */
CopyStats &copyStats();

/** Record one deep copy of @p bytes payload bytes. */
inline void
accountCopy(std::size_t bytes)
{
    copyStats().bytesCopied += bytes;
    copyStats().copyOps += 1;
}

/** Record one payload-buffer allocation. */
inline void
accountAlloc()
{
    copyStats().bufferAllocs += 1;
}

/**
 * A named registry of statistics, dumpable as a table; the software
 * analogue of reading out the instrumentation board.
 */
class StatRegistry
{
  public:
    /** Register (or fetch) a named counter. */
    Counter &counter(const std::string &name) { return counters[name]; }
    /** Register (or fetch) named sample statistics. */
    SampleStats &samples(const std::string &name) { return stats[name]; }

    /** Write all statistics as "name value" lines. */
    void dump(std::ostream &os) const;

    void reset();

  private:
    std::map<std::string, Counter> counters;
    std::map<std::string, SampleStats> stats;
};

} // namespace nectar::sim
