/**
 * @file
 * Base class for named simulated hardware/software components.
 */

#pragma once

#include <string>

#include "event_queue.hh"
#include "types.hh"

namespace nectar::sim {

/**
 * Thread-partition owner tag: the cluster (a HUB plus its CABs, per
 * the partition map emitted by nectar-lint --graph-out) a component
 * belongs to.  unownedCluster means "not tagged": shared
 * infrastructure like fiber links, or a system assembled without
 * cluster tagging.  See sim/owner.hh for the checked-build
 * assertions that consume the tag.
 */
using ClusterId = int;
inline constexpr ClusterId unownedCluster = -1;

/**
 * A named participant in the simulation.
 *
 * Components hold a reference to the (single) event queue and provide
 * naming for log and trace messages.  Hierarchical names use '.' as a
 * separator, e.g. "hub1.port3".
 */
class Component
{
  public:
    /**
     * @param eq The simulation's event queue.
     * @param name Hierarchical instance name.
     */
    Component(EventQueue &eq, std::string name)
        : _eventq(eq), _name(std::move(name))
    {}

    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Instance name, e.g. "hub1.port3". */
    const std::string &name() const { return _name; }

    /** The simulation event queue. */
    EventQueue &eventq() { return _eventq; }
    const EventQueue &eventq() const { return _eventq; }

    /** Current simulated time. */
    Tick now() const { return _eventq.now(); }

    /** Owning thread-partition cluster, or unownedCluster. */
    ClusterId ownerCluster() const { return _owner; }

    /**
     * Tag this component (and, in overrides, the sub-components it
     * owns) as belonging to cluster @p c.
     */
    virtual void setOwnerCluster(ClusterId c) { _owner = c; }

  protected:
    /** Schedule a member callback @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, EventFn fn,
               EventPriority prio = EventPriority::normal)
    {
        return _eventq.scheduleIn(delay, std::move(fn), prio);
    }

  private:
    EventQueue &_eventq;
    std::string _name;
    ClusterId _owner = unownedCluster;
};

} // namespace nectar::sim
