/**
 * @file
 * Base class for named simulated hardware/software components.
 */

#pragma once

#include <string>

#include "event_queue.hh"
#include "types.hh"

namespace nectar::sim {

/**
 * A named participant in the simulation.
 *
 * Components hold a reference to the (single) event queue and provide
 * naming for log and trace messages.  Hierarchical names use '.' as a
 * separator, e.g. "hub1.port3".
 */
class Component
{
  public:
    /**
     * @param eq The simulation's event queue.
     * @param name Hierarchical instance name.
     */
    Component(EventQueue &eq, std::string name)
        : _eventq(eq), _name(std::move(name))
    {}

    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Instance name, e.g. "hub1.port3". */
    const std::string &name() const { return _name; }

    /** The simulation event queue. */
    EventQueue &eventq() { return _eventq; }
    const EventQueue &eventq() const { return _eventq; }

    /** Current simulated time. */
    Tick now() const { return _eventq.now(); }

  protected:
    /** Schedule a member callback @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, EventFn fn,
               EventPriority prio = EventPriority::normal)
    {
        return _eventq.scheduleIn(delay, std::move(fn), prio);
    }

  private:
    EventQueue &_eventq;
    std::string _name;
};

} // namespace nectar::sim
