/**
 * @file
 * Fundamental simulation types and time units.
 *
 * All of nectar-sim measures simulated time in integer nanoseconds
 * (Tick).  The Nectar prototype's natural constants are expressible
 * exactly in this unit: the HUB cycle is 70 ns and the effective fiber
 * rate of 100 megabits/second serializes one byte every 80 ns.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace nectar::sim {

/** Simulated time, in nanoseconds. */
using Tick = std::int64_t;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

namespace ticks {

/** One nanosecond. */
constexpr Tick ns = 1;
/** One microsecond. */
constexpr Tick us = 1000 * ns;
/** One millisecond. */
constexpr Tick ms = 1000 * us;
/** One second. */
constexpr Tick sec = 1000 * ms;

/**
 * Zero delay: fire at the current tick, after already-queued
 * same-tick work of the same priority class.  Named so schedule
 * sites never carry bare integer literals (nectar-lint rule D5).
 */
constexpr Tick immediate = 0;

} // namespace ticks

/**
 * Timing constants of the Nectar prototype hardware, from the paper.
 */
namespace proto {

/** HUB central-controller cycle time (Section 4, goal 2). */
constexpr Tick hubCycle = 70 * ticks::ns;

/** Cycles to set up a connection and transfer the first byte. */
constexpr int hubSetupCycles = 10;

/** Cycles of latency to transfer a byte through an open connection. */
constexpr int hubTransferCycles = 5;

/**
 * Effective fiber bandwidth imposed by the TAXI chips:
 * 100 megabits/second, i.e. one byte per 80 ns.
 */
constexpr Tick fiberByteTime = 80 * ticks::ns;

/** HUB input queue capacity; also the maximum packet size (Section 4.2.3). */
constexpr int hubInputQueueBytes = 1024;

/** Number of I/O ports on the prototype HUB. */
constexpr int hubPorts = 16;

/** VME bandwidth between node and CAB (Section 5.2): 10 MB/s. */
constexpr Tick vmeByteTime = 100 * ticks::ns;

/** CAB data-memory bandwidth (Section 5.2): 66 MB/s aggregate. */
constexpr double cabMemoryBytesPerNs = 0.066;

/** CAB CPU clock: 16 MHz SPARC, 62.5 ns per cycle. */
constexpr Tick cabCpuCycle = 62 * ticks::ns;

/** Memory-protection page size on the CAB (Section 5.2). */
constexpr int cabPageBytes = 1024;

/** Number of protection domains supported by the CAB. */
constexpr int cabProtectionDomains = 32;

} // namespace proto

} // namespace nectar::sim
