/**
 * @file
 * EventFn: the engine's small-buffer-optimized callback type.
 *
 * Every scheduled event stores one of these inside its pooled
 * EventNode.  Callables whose captures fit in sboBytes (and are
 * nothrow-move-constructible) live inline in the node — scheduling
 * them performs **zero** heap allocations.  Larger callables fall
 * back to a counted heap allocation (heapAllocCount()), which
 * bench_engine watches and the engine tests assert against.
 *
 * Contract with the linter: the SBO threshold shapes what a
 * schedule-site capture list should look like.  D4 already forbids
 * by-reference captures into schedule()/spawn(); keeping by-value
 * captures under sboBytes (a this-pointer plus a few ids — the
 * dominant pattern in phys/hub/datalink/transport) is what keeps the
 * hot path allocation-free.  D3's no-copy rule composes: captures
 * hold sim::Buffer/PacketView handles (16-24 bytes), never payload.
 *
 * Move-only: an EventFn is scheduled once and fired once; there is
 * no reason to copy a pending event's closure, and forbidding copies
 * keeps captured Buffer refcounts honest.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace nectar::sim {

/** Move-only `void()` callable with small-buffer optimization. */
class EventFn
{
  public:
    /**
     * Captures up to this many bytes are stored inline in the event
     * node; beyond it the callable is heap-allocated (and counted).
     * 48 bytes = a this-pointer plus five 64-bit words — roomy enough
     * for every schedule site in the tree today.
     */
    static constexpr std::size_t sboBytes = 48;

    EventFn() noexcept = default;

    EventFn(std::nullptr_t) noexcept {}

    /** Wrap any `void()` callable.  Bool-testable empties (a default
     *  std::function, a null function pointer) become a null EventFn
     *  so schedule() can reject them, matching the seed engine. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f)
    {
        using Stored = std::decay_t<F>;
        if constexpr (std::is_constructible_v<bool, const Stored &>) {
            if (!static_cast<bool>(f))
                return; // stay null
        }
        constexpr bool fitsInline =
            sizeof(Stored) <= sboBytes &&
            alignof(Stored) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Stored>;
        if constexpr (fitsInline) {
            ::new (static_cast<void *>(_buf))
                Stored(std::forward<F>(f));
            _ops = &inlineOps<Stored>;
        } else {
            _heap = new Stored(std::forward<F>(f));
            heapAllocs.fetch_add(1, std::memory_order_relaxed);
            _ops = &heapOps<Stored>;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    void
    operator()()
    {
        _ops->invoke(target());
    }

    /** Drop the callable (releasing captured resources) early. */
    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(target());
            _ops = nullptr;
        }
    }

    /**
     * Callables constructed past the SBO threshold since process
     * start.  bench_engine samples this around its steady-state loop
     * to demonstrate the zero-allocation schedule/fire path.
     */
    static std::uint64_t
    heapAllocCount() noexcept
    {
        return heapAllocs.load(std::memory_order_relaxed);
    }

  private:
    struct Ops {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool onHeap;
    };

    void *
    target() noexcept
    {
        return _ops->onHeap ? _heap : static_cast<void *>(_buf);
    }

    void
    moveFrom(EventFn &other) noexcept
    {
        _ops = other._ops;
        if (_ops) {
            if (_ops->onHeap)
                _heap = other._heap;
            else
                _ops->relocate(_buf, other._buf);
            other._ops = nullptr;
        }
    }

    template <typename Stored>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<Stored *>(p))(); },
        [](void *dst, void *src) noexcept {
            ::new (dst) Stored(std::move(*static_cast<Stored *>(src)));
            static_cast<Stored *>(src)->~Stored();
        },
        [](void *p) noexcept { static_cast<Stored *>(p)->~Stored(); },
        false,
    };

    template <typename Stored>
    static constexpr Ops heapOps = {
        [](void *p) { (*static_cast<Stored *>(p))(); },
        [](void *, void *) noexcept {}, // heap payload moves by pointer
        [](void *p) noexcept { delete static_cast<Stored *>(p); },
        true,
    };

    // Diagnostics counter shared by every shard's event loop; relaxed
    // atomic because cluster workers construct events concurrently
    // and only the aggregate total is ever read.
    // nectar-lint: global-ok allocation diagnostics counter only
    static inline std::atomic<std::uint64_t> heapAllocs{0};

    union {
        alignas(std::max_align_t) unsigned char _buf[sboBytes];
        void *_heap;
    };
    const Ops *_ops = nullptr;
};

} // namespace nectar::sim
