/**
 * @file
 * Seedable deterministic random number generation (PCG32).
 *
 * All stochastic behaviour in nectar-sim — workload inter-arrival
 * times, fault injection, backoff jitter — draws from Random
 * instances so experiments are exactly reproducible from a seed.
 */

#pragma once

#include <cstdint>

namespace nectar::sim {

/**
 * PCG32: a small, fast, statistically strong PRNG
 * (O'Neill, "PCG: A Family of Simple Fast Space-Efficient
 * Statistically Good Algorithms for Random Number Generation").
 */
class Random
{
  public:
    /**
     * @param seed Initial state seed.
     * @param stream Stream selector; generators with different streams
     *        are independent even with the same seed.
     */
    explicit Random(std::uint64_t seed = 0x853c49e6748fea9bULL,
                    std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next();

    /** Uniform integer in [0, bound), bias-free. @pre bound > 0 */
    std::uint32_t below(std::uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    int range(int lo, int hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Exponentially distributed value with the given mean.
     * Used for Poisson inter-arrival processes in workloads.
     */
    double exponential(double mean);

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace nectar::sim
