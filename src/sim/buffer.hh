/**
 * @file
 * Reference-counted immutable buffers and zero-copy packet views.
 *
 * The paper's central performance argument is that the CAB hardware
 * (DMA engines, hardware checksum, mailbox delivery) removes
 * memory-to-memory copies from the protocol path (Sections 5.1 and
 * 6.2).  These types give the simulator the same property: a payload
 * is written into a Buffer once, and every layer boundary passes a
 * PacketView — an offset/length slice, possibly chained across
 * several buffers — instead of copying bytes.
 *
 * Ownership model (see DESIGN.md, "Packet-path ownership"):
 *  - A Buffer is immutable once constructed and shared by reference
 *    count; nobody mutates payload bytes in place.
 *  - Layers *slice* (fragmentation, header removal) and *chain*
 *    (header prepend, reassembly); both are O(segments), copy nothing,
 *    and are uncounted.
 *  - Header-field reads (read(), operator[]) model the protocol
 *    engine reading a register as the bytes stream past; uncounted.
 *  - Materialization (toVector(), copyTo()) is the single point where
 *    bytes are deep-copied — the application boundary, or the CAB
 *    checksum hardware touching bytes — and is charged to
 *    sim::copyStats().
 *
 * A PacketView also carries the fault-injection corruption flag:
 * slicing or chaining a corrupted view yields corrupted views, so
 * damage discovered on one wire chunk taints the packet it lands in.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "stats.hh"

namespace nectar::sim {

class Buffer;

/** Shared ownership of one immutable byte region. */
using BufferRef = std::shared_ptr<const Buffer>;

/**
 * A freelist-backed arena recycling the byte vectors behind Buffers.
 *
 * The zero-copy packet path eliminated per-message byte copies; the
 * dominant remaining per-message cost is allocating the (usually
 * 32-byte) header buffer for every packet and ack.  The arena keeps
 * exact-size freelists of retired vectors: acquire() reuses a
 * recycled vector when one of the right size is available (a pool
 * hit, no fresh allocation, not counted in copyStats) and falls back
 * to a fresh allocation (a pool miss, counted) otherwise.
 *
 * This is host-level memory management only — it changes no
 * simulated state, so simulated timing is bit-identical with the
 * arena hot or cold.
 */
class BufferArena
{
  public:
    /** Pool-efficiency counters (host-level, not simulated). */
    struct ArenaStats
    {
        std::uint64_t hits = 0;     ///< acquire() served from freelist.
        std::uint64_t misses = 0;   ///< acquire() fell back to fresh.
        std::uint64_t recycled = 0; ///< Vectors returned to freelists.
        std::uint64_t dropped = 0;  ///< Returns refused (list full).

        double
        hitRate() const
        {
            auto total = hits + misses;
            return total ? static_cast<double>(hits) / total : 0.0;
        }
    };

    /** The process-wide arena (never destroyed: Buffers may outlive
     *  static teardown order). */
    static BufferArena &instance();

    /**
     * A vector of exactly @p n bytes (zero-filled): recycled when an
     * exact-size entry is pooled, freshly allocated otherwise.  The
     * accompanying accountAlloc() happens only on a miss — wrap the
     * result with Buffer::adopt(), which does not count again.
     */
    std::vector<std::uint8_t> acquire(std::size_t n);

    /** Return a retired vector's storage to its freelist. */
    void recycle(std::vector<std::uint8_t> &&bytes);

    const ArenaStats &stats() const { return _stats; }
    void resetStats() { _stats = ArenaStats{}; }

    /** Drop every pooled vector (bench isolation). */
    void clear() { free_.clear(); pooled_ = 0; }

  private:
    /** Only common (small) sizes are pooled; bulk payload vectors
     *  are freed normally so the arena stays bounded. */
    static constexpr std::size_t maxPoolableSize = 4096;
    /** Per-size freelist bound: beyond it, returns are dropped. */
    static constexpr std::size_t maxPerSize = 1024;
    /** Total pooled-vector bound across all sizes. */
    static constexpr std::size_t maxPooled = 4096;

    std::map<std::size_t, std::vector<std::vector<std::uint8_t>>>
        free_;
    std::size_t pooled_ = 0;
    ArenaStats _stats;
};

/**
 * An immutable, reference-counted byte region.  Construct via make();
 * the contents never change afterwards, so any number of views may
 * share it without synchronization or defensive copies.
 */
class Buffer
{
  public:
    explicit Buffer(std::vector<std::uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
    }

    /** Retired buffers return their storage to the arena. */
    ~Buffer();

    /** Take ownership of @p bytes (moved, not copied). */
    static BufferRef
    make(std::vector<std::uint8_t> bytes)
    {
        accountAlloc();
        return std::make_shared<const Buffer>(std::move(bytes));
    }

    /**
     * Wrap a vector obtained from BufferArena::acquire().  The
     * allocation was already accounted there (on a pool miss only),
     * so adopt() does not count again.
     */
    static BufferRef
    adopt(std::vector<std::uint8_t> bytes)
    {
        return std::make_shared<const Buffer>(std::move(bytes));
    }

    const std::uint8_t *data() const { return bytes_.data(); }
    std::size_t size() const { return bytes_.size(); }

    /** The backing storage (for zero-copy whole-buffer access). */
    const std::vector<std::uint8_t> &storage() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * A cheap view of packet bytes: an ordered chain of (buffer, offset,
 * length) segments.  Copying a PacketView copies segment descriptors
 * and bumps reference counts — never payload bytes.
 */
class PacketView
{
  public:
    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    PacketView() = default;

    /** Wrap @p bytes (moved into a fresh Buffer).  Implicit on
     *  purpose: every legacy call site handing a std::vector to a
     *  send path converts without churn. */
    PacketView(std::vector<std::uint8_t> bytes)
    {
        if (!bytes.empty()) {
            auto buf = Buffer::make(std::move(bytes));
            std::size_t n = buf->size();
            segs_.push_back(Seg{std::move(buf), 0, n});
            size_ = n;
        }
    }

    /** View the whole of @p buf. */
    explicit PacketView(BufferRef buf)
    {
        if (buf && buf->size() > 0) {
            std::size_t n = buf->size();
            segs_.push_back(Seg{std::move(buf), 0, n});
            size_ = n;
        }
    }

    /** View [off, off+len) of @p buf. */
    PacketView(BufferRef buf, std::size_t off, std::size_t len)
    {
        if (buf && len > 0 && off + len <= buf->size()) {
            segs_.push_back(Seg{std::move(buf), off, len});
            size_ = len;
        }
    }

    /** Deep-copy @p n bytes from raw memory (counted). */
    static PacketView
    copyOf(const std::uint8_t *data, std::size_t n)
    {
        accountCopy(n);
        return PacketView(
            std::vector<std::uint8_t>(data, data + n));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Read one byte (a register read; uncounted). */
    std::uint8_t
    operator[](std::size_t i) const
    {
        for (const auto &s : segs_) {
            if (i < s.len)
                return s.buf->data()[s.off + i];
            i -= s.len;
        }
        return 0;
    }

    // ----- Corruption flag (fault injection) ------------------------

    bool corrupted() const { return corrupted_; }

    /** Taint this view; slices and chains inherit the taint. */
    void markCorrupted(bool c = true) { corrupted_ = corrupted_ || c; }

    // ----- Slicing and chaining (zero-copy, uncounted) --------------

    /**
     * The sub-view [off, off+len); len == npos takes the remainder.
     * Out-of-range requests clamp to the view's end.
     */
    PacketView slice(std::size_t off, std::size_t len = npos) const;

    /** Append @p tail's segments after this view's (reassembly,
     *  payload-after-header).  Adjacent slices of the same buffer
     *  coalesce into one segment. */
    void append(const PacketView &tail);

    /** A new view of @p head followed by @p tail (header prepend). */
    static PacketView
    concat(const PacketView &head, const PacketView &tail)
    {
        PacketView out = head;
        out.append(tail);
        return out;
    }

    // ----- Reads ----------------------------------------------------

    /**
     * Copy @p n bytes at @p off into @p dst.  Models the protocol
     * engine reading header fields as the bytes stream past
     * (uncounted); use for fixed-size headers, not bulk payload.
     */
    void read(std::size_t off, std::uint8_t *dst, std::size_t n) const;

    // ----- Materialization (deep copies, counted) -------------------

    /** Copy every byte out into a fresh vector. */
    std::vector<std::uint8_t> toVector() const;

    /** Copy every byte to @p dst (size() bytes). */
    void copyTo(std::uint8_t *dst) const;

    /**
     * Zero-copy escape hatch: when this view is exactly one whole
     * buffer, its backing storage; nullptr otherwise (the caller must
     * materialize).
     */
    const std::vector<std::uint8_t> *
    wholeBuffer() const
    {
        if (segs_.size() == 1 && segs_[0].off == 0 &&
            segs_[0].len == segs_[0].buf->size())
            return &segs_[0].buf->storage();
        return nullptr;
    }

    // ----- Segment iteration (checksum hardware, wire chunking) -----

    std::size_t segmentCount() const { return segs_.size(); }

    /** Call f(const std::uint8_t *, std::size_t) per segment, in
     *  order.  This is how the checksum hardware streams the packet
     *  without materializing it. */
    template <typename F>
    void
    forEachSegment(F &&f) const
    {
        for (const auto &s : segs_)
            f(s.buf->data() + s.off, s.len);
    }

    /** Byte-wise equality with a plain vector (test convenience). */
    bool equals(const std::vector<std::uint8_t> &bytes) const;

  private:
    struct Seg
    {
        BufferRef buf;
        std::size_t off = 0;
        std::size_t len = 0;
    };

    /**
     * Representation invariant, checked under NECTAR_CHECKED after
     * every structural mutation: each segment references a live
     * buffer (refcount sanity), lies inside it, is non-empty, and
     * size_ equals the sum of segment lengths.
     */
    void checkRep() const;

    std::vector<Seg> segs_;
    std::size_t size_ = 0;
    bool corrupted_ = false;
};

} // namespace nectar::sim
