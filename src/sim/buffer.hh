/**
 * @file
 * Reference-counted immutable buffers and zero-copy packet views.
 *
 * The paper's central performance argument is that the CAB hardware
 * (DMA engines, hardware checksum, mailbox delivery) removes
 * memory-to-memory copies from the protocol path (Sections 5.1 and
 * 6.2).  These types give the simulator the same property: a payload
 * is written into a Buffer once, and every layer boundary passes a
 * PacketView — an offset/length slice, possibly chained across
 * several buffers — instead of copying bytes.
 *
 * Ownership model (see DESIGN.md, "Packet-path ownership"):
 *  - A Buffer is immutable once constructed and shared by reference
 *    count; nobody mutates payload bytes in place.
 *  - Layers *slice* (fragmentation, header removal) and *chain*
 *    (header prepend, reassembly); both are O(segments), copy nothing,
 *    and are uncounted.
 *  - Header-field reads (read(), operator[]) model the protocol
 *    engine reading a register as the bytes stream past; uncounted.
 *  - Materialization (toVector(), copyTo()) is the single point where
 *    bytes are deep-copied — the application boundary, or the CAB
 *    checksum hardware touching bytes — and is charged to
 *    sim::copyStats().
 *
 * A PacketView also carries the fault-injection corruption flag:
 * slicing or chaining a corrupted view yields corrupted views, so
 * damage discovered on one wire chunk taints the packet it lands in.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "stats.hh"

namespace nectar::sim {

class Buffer;

/** Shared ownership of one immutable byte region. */
using BufferRef = std::shared_ptr<const Buffer>;

/**
 * An immutable, reference-counted byte region.  Construct via make();
 * the contents never change afterwards, so any number of views may
 * share it without synchronization or defensive copies.
 */
class Buffer
{
  public:
    explicit Buffer(std::vector<std::uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
    }

    /** Take ownership of @p bytes (moved, not copied). */
    static BufferRef
    make(std::vector<std::uint8_t> bytes)
    {
        accountAlloc();
        return std::make_shared<const Buffer>(std::move(bytes));
    }

    const std::uint8_t *data() const { return bytes_.data(); }
    std::size_t size() const { return bytes_.size(); }

    /** The backing storage (for zero-copy whole-buffer access). */
    const std::vector<std::uint8_t> &storage() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * A cheap view of packet bytes: an ordered chain of (buffer, offset,
 * length) segments.  Copying a PacketView copies segment descriptors
 * and bumps reference counts — never payload bytes.
 */
class PacketView
{
  public:
    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    PacketView() = default;

    /** Wrap @p bytes (moved into a fresh Buffer).  Implicit on
     *  purpose: every legacy call site handing a std::vector to a
     *  send path converts without churn. */
    PacketView(std::vector<std::uint8_t> bytes)
    {
        if (!bytes.empty()) {
            auto buf = Buffer::make(std::move(bytes));
            std::size_t n = buf->size();
            segs_.push_back(Seg{std::move(buf), 0, n});
            size_ = n;
        }
    }

    /** View the whole of @p buf. */
    explicit PacketView(BufferRef buf)
    {
        if (buf && buf->size() > 0) {
            std::size_t n = buf->size();
            segs_.push_back(Seg{std::move(buf), 0, n});
            size_ = n;
        }
    }

    /** View [off, off+len) of @p buf. */
    PacketView(BufferRef buf, std::size_t off, std::size_t len)
    {
        if (buf && len > 0 && off + len <= buf->size()) {
            segs_.push_back(Seg{std::move(buf), off, len});
            size_ = len;
        }
    }

    /** Deep-copy @p n bytes from raw memory (counted). */
    static PacketView
    copyOf(const std::uint8_t *data, std::size_t n)
    {
        accountCopy(n);
        return PacketView(
            std::vector<std::uint8_t>(data, data + n));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Read one byte (a register read; uncounted). */
    std::uint8_t
    operator[](std::size_t i) const
    {
        for (const auto &s : segs_) {
            if (i < s.len)
                return s.buf->data()[s.off + i];
            i -= s.len;
        }
        return 0;
    }

    // ----- Corruption flag (fault injection) ------------------------

    bool corrupted() const { return corrupted_; }

    /** Taint this view; slices and chains inherit the taint. */
    void markCorrupted(bool c = true) { corrupted_ = corrupted_ || c; }

    // ----- Slicing and chaining (zero-copy, uncounted) --------------

    /**
     * The sub-view [off, off+len); len == npos takes the remainder.
     * Out-of-range requests clamp to the view's end.
     */
    PacketView slice(std::size_t off, std::size_t len = npos) const;

    /** Append @p tail's segments after this view's (reassembly,
     *  payload-after-header).  Adjacent slices of the same buffer
     *  coalesce into one segment. */
    void append(const PacketView &tail);

    /** A new view of @p head followed by @p tail (header prepend). */
    static PacketView
    concat(const PacketView &head, const PacketView &tail)
    {
        PacketView out = head;
        out.append(tail);
        return out;
    }

    // ----- Reads ----------------------------------------------------

    /**
     * Copy @p n bytes at @p off into @p dst.  Models the protocol
     * engine reading header fields as the bytes stream past
     * (uncounted); use for fixed-size headers, not bulk payload.
     */
    void read(std::size_t off, std::uint8_t *dst, std::size_t n) const;

    // ----- Materialization (deep copies, counted) -------------------

    /** Copy every byte out into a fresh vector. */
    std::vector<std::uint8_t> toVector() const;

    /** Copy every byte to @p dst (size() bytes). */
    void copyTo(std::uint8_t *dst) const;

    /**
     * Zero-copy escape hatch: when this view is exactly one whole
     * buffer, its backing storage; nullptr otherwise (the caller must
     * materialize).
     */
    const std::vector<std::uint8_t> *
    wholeBuffer() const
    {
        if (segs_.size() == 1 && segs_[0].off == 0 &&
            segs_[0].len == segs_[0].buf->size())
            return &segs_[0].buf->storage();
        return nullptr;
    }

    // ----- Segment iteration (checksum hardware, wire chunking) -----

    std::size_t segmentCount() const { return segs_.size(); }

    /** Call f(const std::uint8_t *, std::size_t) per segment, in
     *  order.  This is how the checksum hardware streams the packet
     *  without materializing it. */
    template <typename F>
    void
    forEachSegment(F &&f) const
    {
        for (const auto &s : segs_)
            f(s.buf->data() + s.off, s.len);
    }

    /** Byte-wise equality with a plain vector (test convenience). */
    bool equals(const std::vector<std::uint8_t> &bytes) const;

  private:
    struct Seg
    {
        BufferRef buf;
        std::size_t off = 0;
        std::size_t len = 0;
    };

    std::vector<Seg> segs_;
    std::size_t size_ = 0;
    bool corrupted_ = false;
};

} // namespace nectar::sim
