#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace nectar::sim {

Random::Random(std::uint64_t seed, std::uint64_t stream)
    : state(0), inc((stream << 1u) | 1u)
{
    next();
    state += seed;
    next();
}

std::uint32_t
Random::next()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint32_t
Random::below(std::uint32_t bound)
{
    if (bound == 0)
        panic("Random::below: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    std::uint32_t threshold = -bound % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int
Random::range(int lo, int hi)
{
    if (lo > hi)
        panic("Random::range: lo > hi");
    return lo + static_cast<int>(
        below(static_cast<std::uint32_t>(hi - lo + 1)));
}

double
Random::uniform()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Random::exponential(double mean)
{
    if (mean <= 0.0)
        panic("Random::exponential: mean must be positive");
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 1e-12;
    return -mean * std::log(u);
}

} // namespace nectar::sim
