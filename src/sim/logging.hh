/**
 * @file
 * Error reporting and logging for the simulator.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration), panic() is for simulator bugs.  Both throw so that
 * library users and tests can recover; inform()/warn() write to a
 * configurable stream.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nectar::sim {

/** Exception thrown by fatal(): a configuration or usage error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error("fatal: " + what)
    {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error("panic: " + what)
    {}
};

/** Verbosity levels for the message log. */
enum class LogLevel { quiet, warn, inform, debug };

/** Set the global log verbosity (default: warn). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Report a condition the user should know about but not worry about. */
void inform(const std::string &msg);

/** Report suspicious but non-fatal behaviour. */
void warn(const std::string &msg);

/** Report fine-grained debugging detail. */
void debugLog(const std::string &msg);

/**
 * Abort the current operation due to a user error.
 *
 * @param msg Description of the configuration problem.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Abort the current operation due to an internal bug.
 *
 * @param msg Description of the violated invariant.
 * @throws PanicError always.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Check an internal invariant, panicking with a message if it fails.
 */
inline void
simAssert(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace nectar::sim
