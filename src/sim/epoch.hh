/**
 * @file
 * Conservative-lookahead epoch arithmetic for the parallel engine.
 *
 * The engine advances all cluster shards in barrier-synced epochs.
 * An epoch's window is [S, S + L) where S is the globally earliest
 * pending event tick and L is the lookahead: the minimum time any
 * cross-cluster influence needs to travel between clusters.  Every
 * cross-cluster edge is a trunk fiber (the PR 9 partition map proves
 * there is no other kind), and a fiber delivery lands no earlier than
 * its send tick plus one byte's serialization time plus the
 * propagation delay — so with L = min over trunk fibers of
 * (byteTime + propDelay), no event executed inside the window can
 * affect another cluster within the same window.  Clusters may
 * therefore execute the window concurrently with no communication,
 * exchanging mailbox deliveries only at the barrier.
 */

#pragma once

#include <algorithm>
#include <limits>

#include "logging.hh"
#include "types.hh"

namespace nectar::sim {

/**
 * Accumulates the minimum cross-cluster latency as the topology is
 * wired.  With no cross-cluster links the lookahead is unbounded and
 * a single epoch runs each shard to completion.
 */
class LookaheadTracker
{
  public:
    /** "No cross-cluster links" sentinel: epochs are unbounded. */
    static constexpr Tick unbounded = std::numeric_limits<Tick>::max();

    /** Record a cross-cluster link whose earliest influence arrives
     *  @p latency ticks after the send. */
    void
    note(Tick latency)
    {
        if (latency <= 0)
            panic("LookaheadTracker: cross-cluster link with no "
                  "latency leaves no conservative window");
        _min = std::min(_min, latency);
    }

    /** The conservative lookahead L (unbounded when no links). */
    Tick value() const { return _min; }

    /** True once any cross-cluster link has been noted. */
    bool boundedWindow() const { return _min != unbounded; }

  private:
    Tick _min = unbounded;
};

/**
 * End (exclusive) of the epoch starting at @p globalNext with
 * lookahead @p l, saturating instead of overflowing.  An unbounded
 * result means "run to the event horizon".
 */
constexpr Tick
epochEnd(Tick globalNext, Tick l)
{
    constexpr Tick maxTick = std::numeric_limits<Tick>::max();
    return l >= maxTick - globalNext ? maxTick : globalNext + l;
}

} // namespace nectar::sim
