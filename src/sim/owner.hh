/**
 * @file
 * SIM_OWNER_INVARIANT: checked-build enforcement of the partition
 * map's co-location claims.
 *
 * nectar-lint's access-graph pass (tools/nectar-lint/graph.hh)
 * proves statically that every mutating inter-component edge is
 * owned, co-located, or mediated through the fiber chokepoints.
 * This header is the runtime cross-check: builders tag each
 * component with its cluster (a HUB plus its CABs) via
 * Component::setOwnerCluster, and the mediated-call chokepoints
 * assert that the caller and callee really share a cluster — so a
 * wiring mistake that the lexical pass cannot see (say, a test
 * harness handing CAB 3's datalink to CAB 7's transport) panics in a
 * checked build instead of silently producing a graph the parallel
 * core would partition wrongly.
 *
 * Untagged components (unownedCluster) pass every check: shared
 * infrastructure such as fiber links is deliberately unowned, and
 * systems assembled without tagging keep working.
 */

#pragma once

#include "component.hh"
#include "invariant.hh"

namespace nectar::sim {

/** True unless both are tagged and tagged differently. */
inline bool
sameOwnerCluster(const Component &a, const Component &b)
{
    return a.ownerCluster() == unownedCluster ||
           b.ownerCluster() == unownedCluster ||
           a.ownerCluster() == b.ownerCluster();
}

} // namespace nectar::sim

/**
 * Assert two components share a thread-partition cluster (or at
 * least one is untagged).  Compiles away unless NECTAR_CHECKED.
 */
#define SIM_OWNER_INVARIANT(a, b, what)                               \
    SIM_INVARIANT(::nectar::sim::sameOwnerCluster((a), (b)), (what))
