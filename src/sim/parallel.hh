/**
 * @file
 * The cluster-partitioned parallel simulation core.
 *
 * sim::ParallelEngine runs one timer-wheel EventQueue shard per fabric
 * cluster (cluster = the HUB plus its CABs, exactly the PR 9 partition
 * map's unit), with N worker threads each owning the shards of one or
 * more clusters.  Shards advance in barrier-synced epochs of length
 * equal to the conservative lookahead (epoch.hh); cross-cluster
 * packets cross only at epoch boundaries through per-pair SPSC
 * mailboxes (mailbox.hh).
 *
 * Determinism argument (DESIGN.md "Parallel engine" for the long
 * form).  Within a shard, the EventQueue's (tick, priority, sequence)
 * order is already deterministic; the only new ordering question is
 * where mailbox deliveries interleave.  Three rules close it:
 *
 *  1. Cross-cluster deliveries are scheduled in a reserved priority
 *     band below every local class — crossPriority(src) =
 *     crossPriorityBase + src — so at a given tick all cross arrivals
 *     precede all local events, ordered by source cluster.
 *  2. A destination drains its incoming mailboxes in ascending source
 *     order, and each mailbox is FIFO, so same-source deliveries keep
 *     their source execution order (the stamp's seq).
 *  3. Same-tick deliveries from *different* sources can never tie:
 *     their priority bands differ (rule 1).
 *
 * Hence each shard's event trace — and its fingerprint — depends only
 * on the simulation, not on the thread count: 1, 2, 4 and 8 threads
 * produce bit-identical shard fingerprints.  To compare a sharded run
 * against the single-queue sequential engine (whose sequence numbers
 * are globally, not per-shard, assigned), both assemblies additionally
 * mix every trunk delivery into a per-cluster ClusterFingerprint at
 * execution time; SequentialShardSet builds the same system on one
 * queue with the same cross-priority bands, and its cluster
 * fingerprints must equal the parallel engine's exactly.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "epoch.hh"
#include "event_queue.hh"
#include "mailbox.hh"

namespace nectar::sim {

/**
 * Priority band for cross-cluster fiber deliveries: far below
 * EventPriority::first so every cross arrival at a tick precedes
 * every local event, and distinct per source cluster so arrivals
 * from different sources can never tie.
 */
constexpr int crossPriorityBase = -1024;

inline EventPriority
crossPriority(ClusterId src)
{
    return static_cast<EventPriority>(crossPriorityBase + src);
}

/**
 * Per-cluster rolling FNV-1a fingerprints of trunk-delivery
 * execution, bucketed by destination cluster (cache-line padded: only
 * the destination's worker writes its bucket).  This is the
 * cross-assembly determinism witness: a sharded run and a one-queue
 * run of the same system mix identical values in identical order.
 */
class ClusterFingerprint
{
  public:
    explicit ClusterFingerprint(int clusters) : _buckets(clusters) {}

    /** Mix @p v into @p dst's bucket (destination worker only). */
    void
    mix(ClusterId dst, std::uint64_t v)
    {
        std::uint64_t fp = _buckets[static_cast<std::size_t>(dst)].fp;
        for (int i = 0; i < 8; ++i) {
            fp = (fp ^ (v & 0xffU)) * prime;
            v >>= 8;
        }
        _buckets[static_cast<std::size_t>(dst)].fp = fp;
    }

    /** One cluster's bucket value. */
    std::uint64_t
    cluster(ClusterId c) const
    {
        return _buckets[static_cast<std::size_t>(c)].fp;
    }

    /** All buckets folded in cluster order. */
    std::uint64_t
    combined() const
    {
        std::uint64_t fp = offset;
        for (const Bucket &b : _buckets) {
            std::uint64_t v = b.fp;
            for (int i = 0; i < 8; ++i) {
                fp = (fp ^ (v & 0xffU)) * prime;
                v >>= 8;
            }
        }
        return fp;
    }

    int
    clusters() const
    {
        return static_cast<int>(_buckets.size());
    }

  private:
    static constexpr std::uint64_t offset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t prime = 0x100000001b3ULL;

    struct alignas(64) Bucket {
        std::uint64_t fp = offset;
    };

    std::vector<Bucket> _buckets;
};

/**
 * What the system builders need from an execution substrate: a queue
 * per cluster, a mailbox per directed cluster pair (or null when the
 * substrate is single-queue), the lookahead ledger, and the
 * cross-assembly trace.  Implementations: SequentialShardSet (one
 * queue, no mailboxes — today's engine with cross-priority bands) and
 * ParallelEngine.
 */
class ShardSet
{
  public:
    virtual ~ShardSet() = default;

    virtual int clusters() const = 0;

    /** The event queue cluster @p c's components live on. */
    virtual EventQueue &queueFor(ClusterId c) = 0;

    /**
     * The mailbox for trunk deliveries src -> dst, or nullptr when
     * deliveries should be scheduled directly on the sender's queue
     * (single-queue assembly).
     */
    virtual CrossChannel *channelFor(ClusterId src, ClusterId dst) = 0;

    /** Record a trunk fiber src -> dst whose earliest influence
     *  arrives @p latency ticks after a send. */
    virtual void noteCrossLink(ClusterId src, ClusterId dst,
                               Tick latency) = 0;

    /** The cross-assembly trunk-delivery trace. */
    virtual ClusterFingerprint &trace() = 0;
};

/**
 * The single-queue assembly: every cluster maps to one shared
 * EventQueue and trunk deliveries schedule directly (at their
 * cross-priority band).  This is the sequential baseline the parallel
 * engine's cluster fingerprints are compared against.
 */
class SequentialShardSet final : public ShardSet
{
  public:
    SequentialShardSet(EventQueue &eq, int clusters)
        : _eq(eq), _trace(clusters), _clusters(clusters)
    {
    }

    int clusters() const override { return _clusters; }
    EventQueue &queueFor(ClusterId) override { return _eq; }

    CrossChannel *
    channelFor(ClusterId, ClusterId) override
    {
        return nullptr;
    }

    void
    noteCrossLink(ClusterId, ClusterId, Tick latency) override
    {
        _lookahead.note(latency);
    }

    ClusterFingerprint &trace() override { return _trace; }

    /** The lookahead the topology implies (tests compare this to the
     *  parallel engine's). */
    const LookaheadTracker &lookahead() const { return _lookahead; }

  private:
    EventQueue &_eq;
    ClusterFingerprint _trace;
    LookaheadTracker _lookahead;
    int _clusters;
};

/**
 * The parallel engine: one EventQueue shard per cluster, advanced in
 * barrier-synced conservative epochs by min(threads, clusters) worker
 * threads.  Shard decomposition is by cluster, never by thread, so
 * every trace is thread-count invariant.
 *
 * Workers are spawned per run()/runUntil() call and joined before it
 * returns: between calls the engine is plain single-threaded state,
 * which is what lets fault injectors and steppers mutate the system
 * in the gaps.
 */
class ParallelEngine final : public ShardSet
{
  public:
    /**
     * @param clusters Number of fabric clusters (one shard each).
     * @param threads Worker threads to execute with (capped at
     *        @p clusters; 1 runs the same epoch protocol inline).
     */
    ParallelEngine(int clusters, int threads);
    ~ParallelEngine() override;

    // ---- ShardSet ---------------------------------------------------

    int clusters() const override { return _clusters; }

    EventQueue &
    queueFor(ClusterId c) override
    {
        return *_queues[static_cast<std::size_t>(c)];
    }

    CrossChannel *channelFor(ClusterId src, ClusterId dst) override;

    void
    noteCrossLink(ClusterId, ClusterId, Tick latency) override
    {
        _lookahead.note(latency);
    }

    ClusterFingerprint &trace() override { return _trace; }

    // ---- execution --------------------------------------------------

    /** Run until every shard drains (and no mailbox delivery is in
     *  flight) or @p limit events have fired across all shards. */
    std::uint64_t run(std::uint64_t limit = EventQueue::defaultEventLimit);

    /** Run events with tick <= @p until, then align every shard's
     *  clock to @p until (the multi-shard runUntil contract). */
    std::uint64_t runUntil(Tick until,
                           std::uint64_t limit =
                               EventQueue::defaultEventLimit);

    // ---- introspection ----------------------------------------------

    int threads() const { return _threads; }

    /** The conservative lookahead L (LookaheadTracker::unbounded when
     *  no cross links were noted). */
    Tick lookahead() const { return _lookahead.value(); }

    /** Sum of shard event counts. */
    std::uint64_t executedCount() const;

    /** Shard fingerprints folded in cluster order: the whole-run
     *  fingerprint, invariant across thread counts. */
    std::uint64_t fingerprint() const;

    /** One shard's own event-trace fingerprint. */
    std::uint64_t
    shardFingerprint(ClusterId c) const
    {
        return _queues[static_cast<std::size_t>(c)]->fingerprint();
    }

    /** True when every shard drained and no delivery is in flight. */
    bool empty() const;

    /** Barrier-synced epochs executed so far (tests, bench). */
    std::uint64_t epochs() const { return _epochs; }

  private:
    CrossChannel *channel(ClusterId src, ClusterId dst) const;

    /** Drain every mailbox into @p c's shard queue (merge rule:
     *  ascending source, FIFO within a source). */
    void inject(ClusterId c);

    /** Epoch decide phase: runs on exactly one thread, all others
     *  parked at the barrier. */
    void decide();

    /** The common run/runUntil driver. */
    std::uint64_t drive(bool bounded, Tick until, std::uint64_t limit);

    int _clusters;
    int _threads;
    int _workers = 1; ///< min(threads, clusters), set per drive()
    std::vector<std::unique_ptr<EventQueue>> _queues;
    std::vector<std::unique_ptr<CrossChannel>> _channels; ///< C*C grid
    LookaheadTracker _lookahead;
    ClusterFingerprint _trace;

    // Per-round shared state (written by workers before the barrier,
    // read by decide() inside it, or written by decide() and read by
    // workers after release).
    std::vector<Tick> _next; ///< per-cluster peeked next event tick
    Tick _epochTo = 0;       ///< inclusive runUntil target this epoch
    bool _runToDrain = false;
    bool _done = false;
    bool _bounded = false;
    Tick _until = 0;
    std::uint64_t _limit = 0;
    std::uint64_t _epochBudget = 0; ///< per-shard limit this epoch
    std::uint64_t _baseExecuted = 0; ///< executedCount() at drive entry
    bool _warnedLimit = false;
    std::uint64_t _epochs = 0;
};

} // namespace nectar::sim
