/**
 * @file
 * Minimal C++20 coroutine support for simulated software.
 *
 * CAB kernel threads and protocol handlers are written as coroutines
 * that suspend on simulated time (Delay) and on inter-thread
 * communication (Channel).  The event queue drives all resumptions, so
 * coroutine execution is deterministic and interleaved with hardware
 * events.
 *
 * Task<T> is lazy: it starts when first awaited, or when handed to
 * spawn().  Coroutine frames own their children via continuation
 * chaining, so a detached top-level task cleans itself up on
 * completion.
 *
 * @warning Toolchain pitfall: GCC 12 double-destroys *aggregate*
 * temporaries appearing inside co_await expressions (their
 * non-trivial members are freed twice).  Structs passed as coroutine
 * arguments should therefore declare explicit constructors (see
 * cabos::Message), or call sites should materialize a named local and
 * std::move it in.
 */

#pragma once

#include <coroutine>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "event_queue.hh"
#include "logging.hh"
#include "types.hh"

namespace nectar::sim {

template <typename T>
class Task;

namespace detail {

/** Resumes the awaiting coroutine when the awaited task finishes. */
struct FinalAwaiter
{
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) noexcept
    {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { error = std::current_exception(); }
};

} // namespace detail

/**
 * A lazily started coroutine returning T.
 *
 * Ownership: the Task owns the coroutine frame; awaiting it transfers
 * execution into the frame and resumes the awaiter on completion.
 */
template <typename T = void>
class Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_value(T v) { value = std::move(v); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}

    Task(Task &&other) noexcept
        : handle(std::exchange(other.handle, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle = std::exchange(other.handle, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle != nullptr; }
    bool done() const { return handle && handle.done(); }

    // Awaiting a Task starts it and suspends until it completes.
    bool await_ready() const { return !handle || handle.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont)
    {
        handle.promise().continuation = cont;
        return handle;
    }

    T
    await_resume()
    {
        auto &p = handle.promise();
        if (p.error)
            std::rethrow_exception(p.error);
        return std::move(*p.value);
    }

  private:
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle;
};

/** Specialization for void-returning tasks. */
template <>
class Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}

    Task(Task &&other) noexcept
        : handle(std::exchange(other.handle, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle = std::exchange(other.handle, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle != nullptr; }
    bool done() const { return handle && handle.done(); }

    bool await_ready() const { return !handle || handle.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont)
    {
        handle.promise().continuation = cont;
        return handle;
    }

    void
    await_resume()
    {
        auto &p = handle.promise();
        if (p.error)
            std::rethrow_exception(p.error);
    }

  private:
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle;
};

namespace detail {

/** Self-destroying eager wrapper used by spawn(). */
struct Detached
{
    struct promise_type
    {
        /** Position in the live-frame registry (swap-erased). */
        std::size_t regIndex = 0;

        promise_type();
        ~promise_type();

        Detached get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            // A detached simulated thread must not throw; surface the
            // error loudly rather than swallowing it.
            try {
                std::rethrow_exception(std::current_exception());
            } catch (const std::exception &e) {
                panic(std::string("uncaught exception in detached "
                                  "coroutine: ") + e.what());
            }
        }
    };
};

/**
 * Registry of live detached (root) coroutine frames.  A frame removes
 * itself when it completes; frames still suspended when the
 * simulation ends — server loops parked on a Channel, senders blocked
 * on a mailbox that will never drain — used to leak.  They are now
 * destroyed by reapDetachedFrames(), triggered by the last
 * EventQueue's destructor (and again at exit as a backstop, when the
 * registry's own destructor runs).  Destroying a root Detached frame
 * destroys its whole awaited Task chain: each frame owns its children
 * through the Task objects held in its locals.
 */
struct DetachedFrameSet
{
    /** Guards frames: detached coroutines are created on the control
     *  thread but complete (and unregister) on whichever parallel-
     *  engine worker owns their cluster. */
    std::mutex mu;
    std::vector<std::coroutine_handle<Detached::promise_type>> frames;

    ~DetachedFrameSet() { reap(); }

    void
    reap()
    {
        while (true) {
            std::coroutine_handle<Detached::promise_type> h;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (frames.empty())
                    return;
                h = frames.back();
            }
            // Destroy outside the lock: ~promise_type re-enters the
            // registry to unregister the frame being destroyed.
            h.destroy();
        }
    }
};

inline DetachedFrameSet &
detachedFrames()
{
    // nectar-lint: global-ok detached-frame registry shared with the
    // reaper hook; internally mutex-guarded (see DetachedFrameSet)
    static DetachedFrameSet set;
    return set;
}

inline void
reapDetachedFrames()
{
    detachedFrames().reap();
}

inline Detached::promise_type::promise_type()
{
    detachedReaper = &reapDetachedFrames;
    auto &set = detachedFrames();
    std::lock_guard<std::mutex> lock(set.mu);
    regIndex = set.frames.size();
    set.frames.push_back(
        std::coroutine_handle<promise_type>::from_promise(*this));
}

inline Detached::promise_type::~promise_type()
{
    auto &set = detachedFrames();
    std::lock_guard<std::mutex> lock(set.mu);
    auto &v = set.frames;
    v[regIndex] = v.back();
    v[regIndex].promise().regIndex = regIndex;
    v.pop_back();
}

inline Detached
runDetached(Task<void> t)
{
    co_await std::move(t);
}

} // namespace detail

/** Number of detached coroutine frames currently alive (tests). */
inline std::size_t
liveDetachedFrames()
{
    auto &set = detail::detachedFrames();
    std::lock_guard<std::mutex> lock(set.mu);
    return set.frames.size();
}

/**
 * Start a task "in the background".  The coroutine frame frees itself
 * when the task completes.  Execution begins immediately (within the
 * caller's stack), up to the task's first suspension point.
 */
inline void
spawn(Task<void> t)
{
    detail::runDetached(std::move(t));
}

/**
 * Awaitable that suspends the coroutine for a simulated duration.
 *
 * @code
 * co_await Delay{eq, 5 * ticks::us};
 * @endcode
 */
struct Delay
{
    EventQueue &eq;
    Tick duration;
    EventPriority prio = EventPriority::software;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        eq.scheduleIn(duration, [h] { h.resume(); }, prio);
    }

    void await_resume() const {}
};

/**
 * An unbounded asynchronous channel of T.
 *
 * pop() suspends the consumer until a value is available; push() wakes
 * one waiting consumer via the event queue (never inline, avoiding
 * reentrancy).  This is the primitive beneath CAB mailboxes and the
 * scheduler's run queue.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(EventQueue &eq) : eq(eq) {}

    /** Number of queued values. */
    std::size_t size() const { return values.size(); }
    bool empty() const { return values.empty(); }
    /** Number of consumers blocked in pop(). */
    std::size_t waiters() const { return waiting.size(); }

    /** Enqueue a value, waking one waiting consumer. */
    void
    push(T v)
    {
        values.push_back(std::move(v));
        wakeOne();
    }

    /** Awaitable consumer interface. */
    auto
    pop()
    {
        struct Awaiter
        {
            Channel &ch;

            bool await_ready() const { return !ch.values.empty(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ch.waiting.push_back(h);
            }

            T
            await_resume()
            {
                simAssert(!ch.values.empty(),
                          "Channel::pop resumed with no value");
                T v = std::move(ch.values.front());
                ch.values.pop_front();
                return v;
            }
        };
        return Awaiter{*this};
    }

    /** Non-blocking pop. */
    std::optional<T>
    tryPop()
    {
        if (values.empty())
            return std::nullopt;
        T v = std::move(values.front());
        values.pop_front();
        return v;
    }

  private:
    void
    wakeOne()
    {
        if (waiting.empty())
            return;
        auto h = waiting.front();
        waiting.pop_front();
        // Resume through the event queue at the current tick so the
        // producer's stack unwinds first.
        eq.scheduleIn(ticks::immediate, [h] { h.resume(); },
                      EventPriority::software);
    }

    EventQueue &eq;
    std::deque<T> values;
    std::deque<std::coroutine_handle<>> waiting;
};

/**
 * A FIFO mutex for coroutines.
 *
 * lock() suspends until the mutex is available; unlock() hands the
 * mutex to the next waiter (resumed through the event queue).  Used
 * e.g. to serialize packet transmissions on a CAB's single outgoing
 * fiber.
 */
class AsyncMutex
{
  public:
    explicit AsyncMutex(EventQueue &eq) : eq(eq) {}

    bool locked() const { return _locked; }
    std::size_t waiters() const { return waiting.size(); }

    /** Awaitable: acquire the mutex (FIFO order among waiters). */
    auto
    lock()
    {
        struct Awaiter
        {
            AsyncMutex &m;

            bool
            await_ready()
            {
                if (!m._locked) {
                    m._locked = true;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                m.waiting.push_back(h);
            }

            void await_resume() const {}
        };
        return Awaiter{*this};
    }

    /** Release; the next waiter (if any) becomes the owner. */
    void
    unlock()
    {
        simAssert(_locked, "AsyncMutex::unlock while unlocked");
        if (waiting.empty()) {
            _locked = false;
            return;
        }
        // Ownership transfers directly to the next waiter, which
        // resumes via the event queue (still at the current tick).
        auto h = waiting.front();
        waiting.pop_front();
        eq.scheduleIn(ticks::immediate, [h] { h.resume(); },
                      EventPriority::software);
    }

  private:
    EventQueue &eq;
    bool _locked = false;
    std::deque<std::coroutine_handle<>> waiting;
};

} // namespace nectar::sim
