/**
 * @file
 * The deterministic discrete-event queue at the heart of nectar-sim.
 *
 * Every hardware and software activity in the simulated Nectar system
 * is an event on a single queue.  Events fire in (tick, priority,
 * sequence) order, so two runs with the same seed produce identical
 * traces.  Events may be cancelled (used heavily by retransmission
 * timers in the transport layer).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "types.hh"

namespace nectar::sim {

/** Opaque handle identifying a scheduled event, usable for cancel(). */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Relative ordering of events scheduled for the same tick.  Lower
 * values fire first.  Hardware uses the default; "end of quantum"
 * bookkeeping can use late priorities.
 */
enum class EventPriority : int {
    first = 0,
    hardware = 10,
    normal = 20,
    software = 30,
    stats = 40,
    last = 50,
};

/**
 * A single-threaded discrete-event scheduler.
 *
 * The queue owns simulated time: now() advances only while run*() pops
 * events.  Scheduling in the past is a panic (it would break
 * causality).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param fn Callback to invoke.
     * @param prio Same-tick ordering class.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, std::function<void()> fn,
                     EventPriority prio = EventPriority::normal);

    /** Schedule a callback @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, std::function<void()> fn,
               EventPriority prio = EventPriority::normal)
    {
        return schedule(_now + delay, std::move(fn), prio);
    }

    /**
     * Cancel a pending event.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already fired, was already cancelled, or the
     *         id is invalid.
     */
    bool cancel(EventId id);

    /** True if @p id refers to an event that has not yet fired. */
    bool pending(EventId id) const;

    /** Number of events still scheduled (excluding cancelled ones). */
    std::size_t pendingCount() const;

    /** True when no live events remain. */
    bool empty() const { return pendingCount() == 0; }

    /**
     * Run until the queue drains or @p limit events have fired.
     *
     * @param limit Safety valve against runaway simulations.
     * @return Number of events executed.
     */
    std::uint64_t run(std::uint64_t limit = defaultEventLimit);

    /**
     * Run events with tick <= @p until (inclusive), then set now() to
     * @p until even if the queue drained earlier.
     *
     * @return Number of events executed.
     */
    std::uint64_t runUntil(Tick until,
                           std::uint64_t limit = defaultEventLimit);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executedCount() const { return _executed; }

    /**
     * Rolling FNV-1a hash of the (tick, priority, id) of every event
     * executed so far — the event-trace fingerprint.  Two runs of the
     * same seeded scenario must report identical fingerprints; the
     * determinism harness (tests/test_determinism.cc) runs each
     * tier-1 scenario twice and diffs them.
     */
    std::uint64_t fingerprint() const { return _fingerprint; }

    /** Default event-count safety limit for run()/runUntil(). */
    static constexpr std::uint64_t defaultEventLimit = 500'000'000;

  private:
    struct Entry {
        Tick when;
        int prio;
        EventId id;
        std::function<void()> fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    /** Pop and execute the next live event, if any. */
    bool step();

    /** Fold @p v into the event-trace fingerprint (FNV-1a). */
    void mixFingerprint(std::uint64_t v);

    Tick _now = 0;
    EventId nextId = 1;
    std::uint64_t _executed = 0;
    std::uint64_t _fingerprint = 0xcbf29ce484222325ULL; // FNV offset
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    /**
     * Ids of scheduled-but-not-yet-fired, not-cancelled events.
     *
     * Determinism audit: this unordered container is safe because it
     * is used for membership only — insert() in schedule(), erase()
     * in cancel()/step(), count()/size() queries.  Nothing iterates
     * it, so its (unspecified) hash order can never reach event
     * ordering; firing order is decided solely by the heap's
     * (tick, priority, id) comparison.  If iteration is ever needed,
     * drain into a sorted vector first or switch to std::set.
     */
    std::unordered_set<EventId> live;
};

} // namespace nectar::sim
