/**
 * @file
 * The deterministic discrete-event queue at the heart of nectar-sim.
 *
 * Every hardware and software activity in the simulated Nectar system
 * is an event on a single queue.  Events fire in (tick, priority,
 * sequence) order, so two runs with the same seed produce identical
 * traces.  Events may be cancelled (used heavily by retransmission
 * timers in the transport layer) or re-armed to a later tick.
 *
 * Representation (the PR-5 engine overhaul; DESIGN.md "Engine"):
 *
 *  - A four-level hierarchical timer wheel (256 slots per level, one
 *    level-0 slot per nanosecond tick, ~4.3 s horizon) holds the
 *    near future.  Slots are intrusive doubly-linked lists of pooled
 *    EventNodes, with one occupancy bitmap word set per 64 slots, so
 *    schedule() and cancel() are O(1) and finding the next event is
 *    a handful of bitmap scans.
 *  - Events beyond the wheel horizon wait in a far-future heap;
 *    events scheduled into a gap the wheel cursor has already passed
 *    (possible only after a runUntil() peek) wait in a tiny "early"
 *    heap.  Both are ordered by (tick, priority, sequence).
 *  - All events due at the current tick sit in a small "due" heap
 *    ordered by (priority, sequence) — same-tick scheduling during
 *    execution interleaves exactly as the seed engine's single heap
 *    did.
 *  - EventIds are generation-tagged handles (generation in the high
 *    32 bits, pool index in the low 32), so cancel()/pending() are
 *    O(1) pointer probes with no side hash set, and a recycled node
 *    can never be confused with a stale handle.
 *  - Callbacks are sim::EventFn (small-buffer optimized): the
 *    steady-state schedule/fire path performs zero heap allocations.
 *
 * The firing order — and therefore the event-trace fingerprint — is
 * bit-identical to the seed engine's (tests/test_golden_fingerprint).
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "event_fn.hh"
#include "types.hh"

namespace nectar::sim {

namespace detail {
/**
 * Installed by coro.hh the first time a detached coroutine frame is
 * created: destroys detached frames still suspended once the last
 * live EventQueue is destroyed, so server loops parked on a Channel
 * (and the messages they own) are reclaimed instead of leaking.
 */
// nectar-lint: global-ok process-wide coroutine-frame reaper hook;
// atomic because parallel-engine workers create/destroy coroutine
// frames concurrently (the queues themselves are made and destroyed
// on the control thread, but the counter races with the hook install)
inline std::atomic<void (*)()> detachedReaper{nullptr};
// nectar-lint: global-ok paired with detachedReaper above
inline std::atomic<int> liveEventQueues{0};
} // namespace detail

/**
 * Opaque handle identifying a scheduled event, usable for cancel(),
 * pending() and rearm().  Internally (generation << 32 | pool index);
 * treat as opaque.
 */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Relative ordering of events scheduled for the same tick.  Lower
 * values fire first.  Hardware uses the default; "end of quantum"
 * bookkeeping can use late priorities.
 */
enum class EventPriority : int {
    first = 0,
    front = 5, ///< zero-delay continuations (scheduleAtFront)
    hardware = 10,
    normal = 20,
    software = 30,
    stats = 40,
    last = 50,
};

/**
 * A single-threaded discrete-event scheduler.
 *
 * The queue owns simulated time: now() advances only while run*() pops
 * events.  Scheduling in the past is a panic (it would break
 * causality).
 */
class EventQueue
{
  public:
    /** Member alias so generic drivers can name the handle type. */
    using EventId = sim::EventId;

    EventQueue() { ++detail::liveEventQueues; }
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param fn Callback to invoke; captures up to EventFn::sboBytes
     *        are stored inline in the pooled event node.
     * @param prio Same-tick ordering class.
     * @return Handle usable with cancel()/rearm().
     */
    EventId schedule(Tick when, EventFn fn,
                     EventPriority prio = EventPriority::normal);

    /** Schedule a callback @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, EventFn fn,
               EventPriority prio = EventPriority::normal)
    {
        return schedule(_now + delay, std::move(fn), prio);
    }

    /**
     * Schedule a zero-delay continuation at the current tick, ahead
     * of every same-tick event in the ordinary priority classes that
     * has not yet fired (EventPriority::front).  This is the
     * "finish what you started" class: an immediate completion posted
     * by the handler that is executing right now runs before any
     * hardware arrival that happens to share the tick.
     */
    EventId
    scheduleAtFront(EventFn fn)
    {
        return schedule(_now, std::move(fn), EventPriority::front);
    }

    /**
     * Cancel a pending event.  O(1): the node is unlinked from its
     * wheel slot (or its heap entry is invalidated by a generation
     * bump) and recycled immediately.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already fired, was already cancelled, or the
     *         id is invalid.
     */
    bool cancel(EventId id);

    /**
     * Re-arm a pending event to fire at absolute tick @p when,
     * keeping its callback and priority.  Trace-equivalent to
     * cancel(id) + schedule(when, <same fn>, <same prio>) — including
     * consuming a fresh sequence number — but without re-filing the
     * node when the new deadline is later than the currently filed
     * one: the node stays in its wheel slot and is lazily moved when
     * that slot comes due.  This is the retransmission-timer fast
     * path: a timer re-armed on every ack touches the wheel only in
     * the rare case its old deadline is actually reached.
     *
     * @return The replacement handle (the old one is dead), or
     *         invalidEventId if @p id was not pending.
     */
    EventId rearm(EventId id, Tick when);

    /** Re-arm @p id to @p delay ticks from now; see rearm(). */
    EventId
    rearmIn(EventId id, Tick delay)
    {
        return rearm(id, _now + delay);
    }

    /** True if @p id refers to an event that has not yet fired. */
    bool pending(EventId id) const;

    /** Number of events still scheduled (excluding cancelled ones). */
    std::size_t pendingCount() const { return _pending; }

    /** True when no live events remain. */
    bool empty() const { return _pending == 0; }

    /**
     * Run until the queue drains or @p limit events have fired.
     *
     * @param limit Safety valve against runaway simulations.
     * @return Number of events executed.
     */
    std::uint64_t run(std::uint64_t limit = defaultEventLimit);

    /**
     * Run events with tick <= @p until (inclusive), then set now() to
     * @p until even if the queue drained earlier.
     *
     * @return Number of events executed.
     */
    std::uint64_t runUntil(Tick until,
                           std::uint64_t limit = defaultEventLimit);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executedCount() const { return _executed; }

    /** Sentinel returned by peekNextTick() when the queue is empty. */
    static constexpr Tick noEventTick =
        std::numeric_limits<Tick>::max();

    /**
     * Tick of the earliest live event without firing it (noEventTick
     * when drained).  Used by the parallel engine's epoch decide
     * phase.  Trace-neutral: repeated peeks, or a peek followed by
     * run()/runUntil(), fire the same events in the same order.
     */
    Tick peekNextTick();

    /**
     * Rolling FNV-1a hash of the (tick, priority, sequence) of every
     * event executed so far — the event-trace fingerprint.  Two runs
     * of the same seeded scenario must report identical fingerprints;
     * the determinism harness (tests/test_determinism.cc) runs each
     * tier-1 scenario twice and diffs them, and the golden harness
     * (tests/test_golden_fingerprint.cc) pins the absolute values.
     */
    std::uint64_t fingerprint() const { return _fingerprint; }

    /** Default event-count safety limit for run()/runUntil(). */
    static constexpr std::uint64_t defaultEventLimit = 500'000'000;

    // ---- engine introspection (bench_engine, tests) ----------------

    /** Event nodes currently allocated to the pool. */
    std::size_t poolSize() const { return _nodes.size(); }

    /** Re-arms that took the lazy no-refile fast path. */
    std::uint64_t lazyRearmCount() const { return _lazyRearms; }

    /** Wheel→wheel cascades performed while locating next events. */
    std::uint64_t cascadeCount() const { return _cascades; }

  private:
    // One level-0 slot per tick; 256 slots per level; four levels
    // cover ticks [cursor, cursor + 2^32) — about 4.3 simulated
    // seconds ahead — before the far-future heap takes over.
    static constexpr int slotBits = 8;
    static constexpr int slots = 1 << slotBits;
    static constexpr int levels = 4;
    static constexpr int bitmapWords = slots / 64;
    static constexpr Tick wheelHorizonBits =
        static_cast<Tick>(slotBits) * levels;

    enum class NodeState : std::uint8_t {
        free,
        wheel, ///< linked into a wheel slot
        due,   ///< in the current-tick due heap
        early, ///< in the early heap (behind the wheel cursor)
        far,   ///< in the far-future heap (beyond the wheel horizon)
    };

    /** A pooled, intrusively linked event. */
    struct EventNode {
        Tick when = 0;  ///< deadline (may differ from filed slot
                        ///< after a lazy re-arm)
        Tick filed = 0; ///< tick this node's wheel slot represents
        std::uint64_t seq = 0; ///< firing-order sequence number
        EventNode *prev = nullptr;
        EventNode *next = nullptr; ///< also the freelist link
        std::uint32_t gen = 1;
        std::uint32_t idx = 0; ///< own position in the node pool
        int prio = 0;
        std::uint8_t level = 0; ///< wheel level when state == wheel
        NodeState state = NodeState::free;
        EventFn fn;
    };

    /** Heap entry; stale when gen no longer matches the node. */
    struct HeapEntry {
        Tick when;
        std::uint64_t seq;
        int prio;
        std::uint32_t gen;
        std::uint32_t node; ///< pool index
    };

    struct HeapLater {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    struct WheelLevel {
        std::array<EventNode *, slots> head{};
        std::array<std::uint64_t, bitmapWords> bitmap{};
    };

    using MinHeap = std::vector<HeapEntry>;

    EventNode *allocNode();
    /** Bump @p n's generation (old handles/heap entries go stale). */
    static void bumpGen(EventNode *n);
    /** Destroy @p n's callback and return it to the freelist. */
    void retire(EventNode *n);
    EventNode *decode(EventId id) const;
    static EventId makeId(const EventNode *n);
    HeapEntry entryFor(const EventNode *n) const;

    /** File a node (when > now) into wheel, early or far storage. */
    void place(EventNode *n);
    void wheelLink(EventNode *n, int level);
    void wheelUnlink(EventNode *n);

    /** Earliest occupied slot index >= from at @p level, or -1. */
    int scanLevel(int level, int from) const;

    /**
     * Tick of the earliest wheel event, cascading higher-level slots
     * down as needed (moves _cursor forward).  maxTick when empty.
     */
    Tick wheelNextTick();

    /** Move every event due at @p t into the due heap.  @p fromWheel
     *  says the wheel's next tick is @p t, so its slot is drained. */
    void pullTick(Tick t, bool fromWheel);

    /**
     * Tick of the next live event anywhere (pulled into the due heap
     * as a side effect), or maxTick.  After a non-maxTick return the
     * due heap's top is the fresh minimal event.
     */
    Tick nextTick();

    /** Execute the due heap's top (which nextTick() made fresh). */
    void fireTop();

    /** Recycle @p n and invoke its callback (the fire hot path). */
    void fireNode(EventNode *n, Tick when, int prio,
                  std::uint64_t seq);

    /**
     * Execute every event due at tick @p t (which nextTick() just
     * returned, leaving the due heap's top fresh at @p t — callers
     * take the direct-fire/_ready path separately), at most @p budget
     * of them, in (priority, sequence) order.  Drains the
     * equal-timestamp run out of the due heap in one pass instead of
     * paying a heap push/pop per event; events scheduled at @p t
     * *during* the batch still interleave exactly as the per-event
     * engine ordered them.
     *
     * @return Events executed (>= 1 when budget > 0).
     */
    std::uint64_t fireTick(Tick t, std::uint64_t budget);

    /** Pop and execute the next live event, if any. */
    bool step();

    /** Fold @p v into the event-trace fingerprint (FNV-1a). */
    void mixFingerprint(std::uint64_t v);

    void heapPush(MinHeap &h, const HeapEntry &e);
    void heapPop(MinHeap &h);
    /** Drop stale (cancelled / re-armed) entries off the top. */
    void heapPrune(MinHeap &h);

    Tick _now = 0;
    /** Wheel scan position; never rewinds, always <= next wheel
     *  event's tick.  May run ahead of _now after a runUntil peek. */
    Tick _cursor = 0;
    std::uint64_t _nextSeq = 1;
    std::uint64_t _executed = 0;
    std::uint64_t _fingerprint = 0xcbf29ce484222325ULL; // FNV offset
    std::size_t _pending = 0;
    std::uint64_t _lazyRearms = 0;
    std::uint64_t _cascades = 0;

    std::array<WheelLevel, levels> _wheel;
    std::size_t _wheelCount = 0;
    /** Direct-fire fast path: when the next tick's sole candidate is
     *  a single wheel node, nextTick() parks it here and fireTop()
     *  fires it without a due-heap round trip.  Consumed by
     *  fireTop(); runUntil() re-files it when its peek overshoots. */
    EventNode *_ready = nullptr;
    MinHeap _due;   ///< events at the tick being executed
    MinHeap _early; ///< events behind _cursor (rare; see _cursor)
    MinHeap _far;   ///< events beyond the wheel horizon
    /** Scratch for fireTick()'s equal-timestamp extraction (swapped
     *  in and out so a reentrant run() gets a fresh vector). */
    std::vector<HeapEntry> _batchScratch;

    std::vector<std::unique_ptr<EventNode>> _nodes;
    EventNode *_freelist = nullptr;
};

} // namespace nectar::sim
