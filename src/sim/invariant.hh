/**
 * @file
 * SIM_INVARIANT: compiled-in runtime invariant checks.
 *
 * The runtime complement to nectar-lint (tools/nectar-lint): where
 * the lint pass rejects code shapes that *could* break determinism
 * or ownership, SIM_INVARIANT checks the properties themselves while
 * a simulation runs — event-time monotonicity in the event queue,
 * PacketView/Buffer representation sanity on the zero-copy path,
 * circuit accounting in the HUB crossbar.
 *
 * The checks compile to nothing unless the tree is configured with
 * -DNECTAR_CHECKED=ON (`cmake --preset checked`); in either mode the
 * condition expression is type-checked, so a checked build cannot
 * rot while the default build stays at full speed.  A failed
 * invariant panics (throws sim::PanicError), the same contract as
 * sim::panic — tests can assert on it and a simulation run dies
 * loudly instead of silently diverging.
 */

#pragma once

#include <string>

#include "logging.hh"

namespace nectar::sim {

/** Report a failed SIM_INVARIANT.  @throws PanicError always. */
[[noreturn]] void invariantFailed(const char *file, int line,
                                  const char *expr,
                                  const std::string &what);

} // namespace nectar::sim

#ifdef NECTAR_CHECKED
#define SIM_INVARIANT(cond, what)                                     \
    do {                                                              \
        if (!(cond))                                                  \
            ::nectar::sim::invariantFailed(__FILE__, __LINE__,        \
                                           #cond, (what));            \
    } while (0)
#else
/** Expansion still type-checks the condition; never evaluates it. */
#define SIM_INVARIANT(cond, what)                                     \
    do {                                                              \
        if (false) {                                                  \
            (void)(cond);                                             \
            (void)(what);                                             \
        }                                                             \
    } while (0)
#endif
