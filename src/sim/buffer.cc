#include "buffer.hh"

#include <algorithm>
#include <mutex>

#include "invariant.hh"

namespace nectar::sim {

// --------------------------------------------------------------------
// BufferArena.
// --------------------------------------------------------------------

namespace {

/**
 * Static root keeping every per-thread arena reachable, so
 * LeakSanitizer does not report the intentionally leaked instances
 * after their owning thread exits.  Leaked for the same destructor-
 * order reason as the arenas themselves.
 */
// nectar-lint: global-ok LSan root for the leaked per-thread arenas
std::vector<BufferArena *> *arenaRegistry =
    new std::vector<BufferArena *>;
// nectar-lint: global-ok paired with arenaRegistry above
std::mutex *arenaRegistryMutex = new std::mutex;

} // namespace

BufferArena &
BufferArena::instance()
{
    // Leaked on purpose: Buffers held by static or thread-local state
    // may be destroyed after any function-local static arena would
    // be, and their destructors recycle into the arena.  One arena
    // per thread: each parallel-engine worker recycles its own
    // cluster's buffers with no sharing and no locks (a Buffer is
    // always released on the thread that owns its cluster — the PR 9
    // partition map proves payloads don't migrate off-chokepoint).
    // nectar-lint: global-ok per-thread recycling arena, registered
    // with a static root so LSan keeps considering it reachable
    thread_local BufferArena *arena = [] {
        auto *a = new BufferArena;
        std::lock_guard<std::mutex> lock(*arenaRegistryMutex);
        arenaRegistry->push_back(a);
        return a;
    }();
    return *arena;
}

std::vector<std::uint8_t>
BufferArena::acquire(std::size_t n)
{
    if (n > 0 && n <= maxPoolableSize) {
        auto it = free_.find(n);
        if (it != free_.end() && !it->second.empty()) {
            auto v = std::move(it->second.back());
            it->second.pop_back();
            SIM_INVARIANT(pooled_ > 0,
                          "arena pooled count matches its freelists");
            --pooled_;
            ++_stats.hits;
            // Same contract as a fresh vector: zero-filled (header
            // encoding checksums bytes it has not yet written).
            std::fill(v.begin(), v.end(), std::uint8_t(0));
            return v;
        }
    }
    ++_stats.misses;
    accountAlloc();
    return std::vector<std::uint8_t>(n, 0);
}

void
BufferArena::recycle(std::vector<std::uint8_t> &&bytes)
{
    std::size_t n = bytes.size();
    if (n == 0 || n > maxPoolableSize || pooled_ >= maxPooled) {
        ++_stats.dropped;
        return;
    }
    auto &list = free_[n];
    if (list.size() >= maxPerSize) {
        ++_stats.dropped;
        return;
    }
    list.push_back(std::move(bytes));
    ++pooled_;
    ++_stats.recycled;
}

Buffer::~Buffer()
{
    BufferArena::instance().recycle(std::move(bytes_));
}

void
PacketView::checkRep() const
{
#ifdef NECTAR_CHECKED
    std::size_t total = 0;
    for (const auto &s : segs_) {
        SIM_INVARIANT(s.buf != nullptr,
                      "PacketView segment references a buffer");
        SIM_INVARIANT(s.buf.use_count() >= 1,
                      "Buffer refcount sanity");
        SIM_INVARIANT(s.len > 0, "PacketView segment is non-empty");
        SIM_INVARIANT(s.off + s.len <= s.buf->size(),
                      "PacketView segment lies inside its buffer");
        total += s.len;
    }
    SIM_INVARIANT(total == size_,
                  "PacketView size equals the sum of its segments");
#endif
}

PacketView
PacketView::slice(std::size_t off, std::size_t len) const
{
    PacketView out;
    out.corrupted_ = corrupted_;
    if (off >= size_)
        return out;
    std::size_t want = std::min(len, size_ - off);

    for (const auto &s : segs_) {
        if (want == 0)
            break;
        if (off >= s.len) {
            off -= s.len;
            continue;
        }
        std::size_t take = std::min(want, s.len - off);
        out.segs_.push_back(Seg{s.buf, s.off + off, take});
        out.size_ += take;
        want -= take;
        off = 0;
    }
    out.checkRep();
    return out;
}

void
PacketView::append(const PacketView &tail)
{
    corrupted_ = corrupted_ || tail.corrupted_;
    for (const auto &s : tail.segs_) {
        if (!segs_.empty()) {
            Seg &last = segs_.back();
            if (last.buf == s.buf && last.off + last.len == s.off) {
                // Adjacent slices of one buffer: coalesce, so
                // chunk-by-chunk reception of a contiguous packet
                // collapses back into a single segment.
                last.len += s.len;
                size_ += s.len;
                continue;
            }
        }
        segs_.push_back(s);
        size_ += s.len;
    }
    checkRep();
}

void
PacketView::read(std::size_t off, std::uint8_t *dst,
                 std::size_t n) const
{
    for (const auto &s : segs_) {
        if (n == 0)
            return;
        if (off >= s.len) {
            off -= s.len;
            continue;
        }
        std::size_t take = std::min(n, s.len - off);
        std::memcpy(dst, s.buf->data() + s.off + off, take);
        dst += take;
        n -= take;
        off = 0;
    }
}

std::vector<std::uint8_t>
PacketView::toVector() const
{
    accountCopy(size_);
    std::vector<std::uint8_t> out;
    out.reserve(size_);
    for (const auto &s : segs_)
        out.insert(out.end(), s.buf->data() + s.off,
                   s.buf->data() + s.off + s.len);
    return out;
}

void
PacketView::copyTo(std::uint8_t *dst) const
{
    accountCopy(size_);
    for (const auto &s : segs_) {
        std::memcpy(dst, s.buf->data() + s.off, s.len);
        dst += s.len;
    }
}

bool
PacketView::equals(const std::vector<std::uint8_t> &bytes) const
{
    if (bytes.size() != size_)
        return false;
    std::size_t i = 0;
    for (const auto &s : segs_) {
        if (std::memcmp(bytes.data() + i, s.buf->data() + s.off,
                        s.len) != 0)
            return false;
        i += s.len;
    }
    return true;
}

} // namespace nectar::sim
