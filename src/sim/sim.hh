/**
 * @file
 * Umbrella header for the nectar-sim core engine.
 */

#pragma once

#include "component.hh"   // IWYU pragma: export
#include "event_queue.hh" // IWYU pragma: export
#include "logging.hh"     // IWYU pragma: export
#include "random.hh"      // IWYU pragma: export
#include "stats.hh"       // IWYU pragma: export
#include "types.hh"       // IWYU pragma: export
