/**
 * @file
 * SPSC cross-cluster mailboxes for the parallel engine.
 *
 * Each directed cluster pair (src, dst) with at least one trunk fiber
 * between its hubs gets one CrossChannel.  The source cluster's worker
 * posts deliveries while executing an epoch; the destination cluster's
 * worker drains them at the next epoch boundary and schedules them
 * onto its own shard queue.  Every delivery is stamped (time,
 * src-cluster, seq) at post time, so the destination's merge order is
 * a pure function of the simulation — never of thread interleaving
 * (see parallel.hh for the priority-band argument).
 *
 * The queue is a classic unbounded single-producer/single-consumer
 * linked list (Vyukov style): push and pop touch disjoint ends through
 * one release/acquire edge, so posting never blocks an epoch and
 * draining never blocks a producer.  In the engine's protocol the two
 * sides are additionally separated by the epoch barrier, but the
 * channel does not rely on that — tests/test_parallel.cc hammers it
 * from two free-running threads.
 */

#pragma once

#include <atomic>
#include <cstdint>

#include "component.hh"
#include "event_fn.hh"
#include "types.hh"

namespace nectar::sim {

/** One cross-cluster delivery: run @p fn at @p when on the
 *  destination shard, merged in (when, src, seq) order. */
struct CrossEvent
{
    Tick when = 0;
    std::uint64_t seq = 0; ///< post order within the channel
    EventFn fn;
};

/**
 * Unbounded SPSC FIFO of CrossEvents.  Exactly one thread may push
 * and exactly one thread may pop (they may do so concurrently).
 */
class SpscQueue
{
  public:
    SpscQueue() : _head(new Node), _tail(_head) {}

    ~SpscQueue()
    {
        Node *n = _head;
        while (n != nullptr) {
            Node *next = n->next.load(std::memory_order_relaxed);
            delete n;
            n = next;
        }
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer side. */
    void
    push(CrossEvent e)
    {
        Node *n = new Node;
        n->event = std::move(e);
        // Publish: the consumer's acquire load of next sees the fully
        // constructed node.
        _tail->next.store(n, std::memory_order_release);
        _tail = n;
    }

    /** Consumer side.  @return false when the queue is empty. */
    bool
    pop(CrossEvent &out)
    {
        Node *next = _head->next.load(std::memory_order_acquire);
        if (next == nullptr)
            return false;
        out = std::move(next->event);
        Node *old = _head;
        _head = next;
        delete old;
        return true;
    }

  private:
    struct Node {
        std::atomic<Node *> next{nullptr};
        CrossEvent event;
    };

    Node *_head; ///< consumer end (a dummy node precedes the data)
    Node *_tail; ///< producer end
};

/**
 * The mailbox for one directed cluster pair.  Wraps the SPSC queue
 * with the (time, src, seq) stamp and the posted/consumed counters the
 * engine's drain detection reads at epoch boundaries.
 */
class CrossChannel
{
  public:
    CrossChannel(ClusterId src, ClusterId dst) : _src(src), _dst(dst) {}

    ClusterId src() const { return _src; }
    ClusterId dst() const { return _dst; }

    /** Producer: stamp and enqueue a delivery for tick @p when. */
    void
    post(Tick when, EventFn fn)
    {
        CrossEvent e;
        e.when = when;
        e.seq = _nextSeq++;
        e.fn = std::move(fn);
        _queue.push(std::move(e));
        _posted.fetch_add(1, std::memory_order_release);
    }

    /** Consumer: dequeue the next delivery in post order. */
    bool
    pop(CrossEvent &out)
    {
        if (!_queue.pop(out))
            return false;
        _consumed.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    /** Deliveries posted over the channel's lifetime. */
    std::uint64_t
    posted() const
    {
        return _posted.load(std::memory_order_acquire);
    }

    /** Deliveries consumed over the channel's lifetime. */
    std::uint64_t
    consumed() const
    {
        return _consumed.load(std::memory_order_relaxed);
    }

    /** Deliveries posted but not yet drained ("in flight"). */
    std::uint64_t inFlight() const { return posted() - consumed(); }

  private:
    ClusterId _src;
    ClusterId _dst;
    SpscQueue _queue;
    std::uint64_t _nextSeq = 0; ///< producer-side only
    std::atomic<std::uint64_t> _posted{0};
    std::atomic<std::uint64_t> _consumed{0};
};

} // namespace nectar::sim
