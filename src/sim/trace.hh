/**
 * @file
 * A lightweight event trace sink.
 *
 * Components emit timestamped, named trace records; sinks either
 * format them to a stream (for debugging simulations) or retain them
 * in memory (for assertions in tests).  This is the software analogue
 * of watching the prototype's instrumentation board scroll by.
 */

#pragma once

#include <deque>
#include <functional>
#include <ostream>
#include <string>

#include "event_queue.hh"
#include "types.hh"

namespace nectar::sim {

/** One trace record. */
struct TraceRecord
{
    Tick when = 0;
    std::string source; ///< Component name.
    std::string event;  ///< Short event tag, e.g. "open".
    std::string detail; ///< Free-form payload.
};

/** Receives trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void trace(const TraceRecord &rec) = 0;
};

/** Formats records as "[tick] source event: detail" lines. */
class StreamTraceSink : public TraceSink
{
  public:
    explicit StreamTraceSink(std::ostream &os) : os(os) {}

    void
    trace(const TraceRecord &rec) override
    {
        os << "[" << rec.when << "] " << rec.source << " "
           << rec.event;
        if (!rec.detail.empty())
            os << ": " << rec.detail;
        os << "\n";
    }

  private:
    std::ostream &os;
};

/** Retains the most recent records in memory (for tests). */
class MemoryTraceSink : public TraceSink
{
  public:
    explicit MemoryTraceSink(std::size_t capacity = 65536)
        : capacity(capacity)
    {}

    void
    trace(const TraceRecord &rec) override
    {
        if (records.size() == capacity)
            records.pop_front();
        records.push_back(rec);
    }

    const std::deque<TraceRecord> &all() const { return records; }

    /** Number of records whose event tag equals @p event. */
    std::size_t
    count(const std::string &event) const
    {
        std::size_t n = 0;
        for (const auto &r : records)
            if (r.event == event)
                ++n;
        return n;
    }

    void clear() { records.clear(); }

  private:
    std::size_t capacity;
    std::deque<TraceRecord> records;
};

/**
 * A tracer bound to one source component; no-op when unattached, so
 * tracing costs one branch when disabled.
 */
class Tracer
{
  public:
    Tracer() = default;

    Tracer(const EventQueue &eq, std::string source)
        : eq(&eq), source(std::move(source))
    {}

    void attach(TraceSink &s) { sink = &s; }
    void detach() { sink = nullptr; }
    bool enabled() const { return sink != nullptr; }

    void
    operator()(const std::string &event,
               const std::string &detail = "") const
    {
        if (!sink)
            return;
        sink->trace(TraceRecord{eq ? eq->now() : 0, source, event,
                                detail});
    }

  private:
    const EventQueue *eq = nullptr;
    std::string source;
    TraceSink *sink = nullptr;
};

} // namespace nectar::sim
