#include "collectives/group.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nectar::collective {

GroupId
GroupDirectory::create(const std::string &name)
{
    GroupId gid = nextId++;
    GroupInfo info;
    info.id = gid;
    info.name = name;
    groups.emplace(gid, std::move(info));
    return gid;
}

GroupId
GroupDirectory::create(const std::string &name,
                       const std::vector<nectarine::TaskId> &members)
{
    GroupId gid = create(name);
    for (const auto &m : members)
        join(gid, m);
    return gid;
}

void
GroupDirectory::join(GroupId gid, nectarine::TaskId member)
{
    GroupInfo &g = mutableInfo(gid);
    if (!g.alive)
        sim::fatal("GroupDirectory: join on destroyed group " +
                   std::to_string(gid));
    for (const auto &m : g.members) {
        if (m == member)
            sim::fatal("GroupDirectory: task joined group " +
                       std::to_string(gid) + " twice");
        if (m.cab == member.cab)
            sim::fatal("GroupDirectory: two members of group " +
                       std::to_string(gid) + " on CAB " +
                       std::to_string(member.cab) +
                       " would share its group mailbox");
    }
    // Rank order is the sorted TaskId order regardless of join order.
    g.members.insert(std::upper_bound(g.members.begin(),
                                      g.members.end(), member),
                     member);
}

void
GroupDirectory::destroy(GroupId gid)
{
    mutableInfo(gid).alive = false;
}

const GroupInfo &
GroupDirectory::info(GroupId gid) const
{
    auto it = groups.find(gid);
    if (it == groups.end())
        sim::fatal("GroupDirectory: unknown group " +
                   std::to_string(gid));
    return it->second;
}

GroupInfo &
GroupDirectory::mutableInfo(GroupId gid)
{
    return const_cast<GroupInfo &>(info(gid));
}

std::optional<GroupId>
GroupDirectory::lookup(const std::string &name) const
{
    for (const auto &[gid, g] : groups)
        if (g.name == name)
            return gid;
    return std::nullopt;
}

int
GroupDirectory::rankOf(GroupId gid, nectarine::TaskId member) const
{
    const auto &ms = info(gid).members;
    auto it = std::find(ms.begin(), ms.end(), member);
    if (it == ms.end())
        return -1;
    return static_cast<int>(it - ms.begin());
}

std::uint32_t
GroupDirectory::epoch(GroupId gid) const
{
    std::lock_guard<std::mutex> lock(_epochMutex);
    return info(gid).epoch;
}

bool
GroupDirectory::reportFailure(GroupId gid, std::uint32_t fromEpoch,
                              std::optional<nectarine::TaskId> suspect)
{
    std::lock_guard<std::mutex> lock(_epochMutex);
    GroupInfo &g = mutableInfo(gid);
    if (g.epoch != fromEpoch)
        return false; // another survivor already bumped it
    ++g.epoch;
    _epochBumps.add();
    if (_probe)
        _probe->onEpochBump(gid, g.epoch);
    if (suspect &&
        std::find(g.suspects.begin(), g.suspects.end(), *suspect) ==
            g.suspects.end())
        g.suspects.push_back(*suspect);
    return true;
}

} // namespace nectar::collective
