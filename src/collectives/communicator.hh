/**
 * @file
 * Tree-based collective operations over Nectar groups.
 *
 * Broadcast, reduce, allreduce, gather and barrier as CAB kernel
 * threads.  One-to-many steps ride the HUB hardware multicast tree
 * (with the transport's unicast fan-out fallback); many-to-one steps
 * climb a binomial tree rooted at the operation's root.  Reduction
 * arithmetic runs on the CAB CPU over fixed-width 32-bit big-endian
 * lanes, charged through the CAB CPU and memory cost models.
 *
 * Allreduce picks its schedule by message size: recursive doubling
 * for small vectors (latency-bound: log2(n) rounds of full-size
 * exchanges), reduce-scatter + slice allgather for large power-of-two
 * groups (bandwidth-bound: each member moves ~2.(n-1)/n of the
 * vector), and binomial reduce + hardware broadcast otherwise.
 *
 * Failure semantics: every operation runs under the group epoch it
 * started in.  A reliable send that exhausts retransmissions or a
 * receive that passes its deadline reports the failure, which bumps
 * the group epoch once; the operation then terminates with an error
 * instead of hanging, and so does every concurrent operation of the
 * surviving members (they observe the epoch change or their own
 * timeout).  Deadlines use a CAB hardware timer that posts a sentinel
 * message into the group mailbox, so a blocked receiver wakes without
 * polling.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "collectives/group.hh"
#include "collectives/multicast.hh"
#include "nectarine/nectarine.hh"
#include "sim/coro.hh"

namespace nectar::collective {

/** Reduction operator over unsigned 32-bit big-endian lanes. */
enum class ReduceOp : std::uint8_t {
    sum, ///< Wraparound addition mod 2^32.
    min, ///< Unsigned minimum.
    max, ///< Unsigned maximum.
};

/** Why a collective operation failed. */
enum class CollectiveError : std::uint8_t {
    none = 0,
    timeout,      ///< A receive deadline passed (peer unidentified).
    memberFailed, ///< A specific peer was observed dead.
    epochChanged, ///< Another survivor bumped the epoch first.
    destroyed,    ///< The group was destroyed.
};

/** Outcome of one collective operation. */
struct Result
{
    bool ok = false;
    CollectiveError error = CollectiveError::none;
    /** Group epoch when the operation finished (a bump past the
     *  start epoch is the failure signal the caller acts on). */
    std::uint32_t epoch = 0;
};

/** Per-communicator tuning. */
struct CommunicatorConfig
{
    /** Allreduce strategy cutoff: vectors up to this size use
     *  recursive doubling; larger ones a bandwidth-optimal plan. */
    std::size_t recursiveDoublingMaxBytes = 2048;

    /** Receive deadline per collective step. */
    sim::Tick opTimeout = 500 * sim::ticks::ms;

    /** Fabric policy for one-to-many steps. */
    McastPath path = McastPath::automatic;

    /** Group mailbox capacity on each member CAB. */
    std::uint32_t mailboxCapacity = 1u << 20;
};

/**
 * A task's handle on one group, created inside the task body.  All
 * members must call the same sequence of collective operations with
 * compatible arguments (the usual MPI-style contract); the internal
 * operation sequence number keeps concurrent traffic of successive
 * operations apart.
 */
class Communicator
{
  public:
    Communicator(nectarine::TaskContext &ctx, GroupDirectory &groups,
                 GroupId gid, CommunicatorConfig config = {});

    int rank() const { return _rank; }
    int size() const { return static_cast<int>(members.size()); }
    GroupId group() const { return gid; }

    /**
     * Broadcast @p data from @p root to every member.  On non-roots
     * @p data is replaced with the received bytes (one counted
     * materialization at the application boundary).
     */
    sim::Task<Result> broadcast(int root,
                                std::vector<std::uint8_t> &data);

    /**
     * Zero-copy broadcast: the root sends @p io; non-roots receive
     * into @p io as a PacketView sharing the delivered buffers.  No
     * byte of payload is materialized anywhere on the path.
     */
    sim::Task<Result> broadcastView(int root, sim::PacketView &io);

    /**
     * Reduce every member's @p data with @p op up a binomial tree.
     * On the root, @p data is replaced by the reduction; elsewhere it
     * is left untouched.  All members must pass equal-sized vectors.
     */
    sim::Task<Result> reduce(int root, ReduceOp op,
                             std::vector<std::uint8_t> &data);

    /**
     * Allreduce: @p data is replaced on every member by the
     * reduction of all members' vectors.
     */
    sim::Task<Result> allreduce(ReduceOp op,
                                std::vector<std::uint8_t> &data);

    /**
     * Gather every member's @p mine at @p root: there, @p out is
     * resized to the group size and slot r receives rank r's bytes.
     * On other members @p out is untouched (may be nullptr).
     */
    sim::Task<Result>
    gather(int root, const std::vector<std::uint8_t> &mine,
           std::vector<std::vector<std::uint8_t>> *out);

    /**
     * Barrier: arrivals climb the binomial tree to rank 0, whose
     * release multicasts back down.  No member returns before every
     * member has entered.
     */
    sim::Task<Result> barrier();

    const CommunicatorConfig &config() const { return cfg; }

  private:
    struct Incoming
    {
        WireHeader hdr;
        sim::PacketView payload;
    };

    // Tree helpers (vrank = rank rotated so the root is 0).
    int vrankOf(int rank, int root) const;
    int rankOf(int vrank, int root) const;
    int parentOf(int vrank) const;
    std::vector<int> childrenOf(int vrank) const;

    cabos::Mailbox &groupBox();

    /** Send one collective message to @p dstRank; false = peer dead. */
    sim::Task<bool> sendTo(int dstRank, MsgKind kind,
                           std::uint8_t param, std::uint32_t opSeq,
                           std::uint16_t epoch, sim::PacketView payload);

    /** Multicast one collective message to every rank but ours. */
    sim::Task<McastOutcome> mcastAll(MsgKind kind, std::uint8_t param,
                                     std::uint32_t opSeq,
                                     std::uint16_t epoch,
                                     sim::PacketView payload);

    /** Multicast to an explicit rank set. */
    sim::Task<McastOutcome> mcastTo(const std::vector<int> &ranks,
                                    MsgKind kind, std::uint8_t param,
                                    std::uint32_t opSeq,
                                    std::uint16_t epoch,
                                    sim::PacketView payload);

    /**
     * Receive the collective message matching (kind, param, src,
     * opSeq) under @p epoch, stashing mismatches for later steps.
     * @p srcRank < 0 matches any sender.  On failure (deadline,
     * epoch change, destroyed group) sets @p err and returns nullopt.
     */
    sim::Task<std::optional<Incoming>>
    recvMatch(MsgKind kind, std::uint8_t param, int srcRank,
              std::uint32_t opSeq, std::uint16_t epoch,
              CollectiveError &err);

    /**
     * Combine @p in into @p acc lane-wise with @p op, streaming the
     * view's segments (no materialization); charges the CAB CPU the
     * per-byte copy cost and the memory model the traffic.
     */
    sim::Task<void> combineInto(std::vector<std::uint8_t> &acc,
                                const sim::PacketView &in,
                                ReduceOp op);

    /** Report a peer failure and translate it into a Result. */
    Result fail(CollectiveError err, std::uint32_t startEpoch,
                std::optional<int> suspectRank);

    Result okResult() const;

    /**
     * Run @p inner bracketed by CollectiveProbe start/end hooks
     * (exactly one pair per application-visible operation; internal
     * delegation — broadcast→broadcastView, the allreduce fallback —
     * uses the Inner variants directly).
     */
    sim::Task<Result> traced(sim::Task<Result> inner);

    sim::Task<Result> broadcastInner(int root,
                                     std::vector<std::uint8_t> &data);
    sim::Task<Result> broadcastViewInner(int root, sim::PacketView &io);
    sim::Task<Result> reduceInner(int root, ReduceOp op,
                                  std::vector<std::uint8_t> &data);
    sim::Task<Result> allreduceInner(ReduceOp op,
                                     std::vector<std::uint8_t> &data);
    sim::Task<Result>
    gatherInner(int root, const std::vector<std::uint8_t> &mine,
                std::vector<std::vector<std::uint8_t>> *out);
    sim::Task<Result> barrierInner();

    sim::Task<Result> allreduceRecursiveDoubling(
        ReduceOp op, std::vector<std::uint8_t> &data,
        std::uint32_t opSeq, std::uint16_t epoch);
    sim::Task<Result> allreduceReduceScatter(
        ReduceOp op, std::vector<std::uint8_t> &data,
        std::uint32_t opSeq, std::uint16_t epoch);

    nectarine::TaskContext &ctx;
    GroupDirectory &groups;
    GroupId gid;
    CommunicatorConfig cfg;

    std::vector<nectarine::TaskId> members; ///< Rank-ordered snapshot.
    int _rank = -1;

    std::uint32_t nextOpSeq = 1;
    std::uint64_t waitNonce = 0;
    std::deque<Incoming> stash;
};

} // namespace nectar::collective
