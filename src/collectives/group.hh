/**
 * @file
 * Process groups for collective communication.
 *
 * The HUB exposes hardware one-to-many connections (Section 4.2.2);
 * this layer gives them an addressable unit: a *group* of Nectarine
 * tasks with a deterministic id, a rank order, and an *epoch*.  The
 * epoch is the group's failure-detection generation: when any member
 * observes another member dead (a reliable send exhausted its
 * retransmissions, or a collective receive timed out), it bumps the
 * epoch exactly once, and every collective operation started under
 * the old epoch terminates with an epoch-bump error instead of
 * hanging on the dead member.
 *
 * Like the NetworkDirectory, the GroupDirectory is the simulation's
 * shared name service: in the prototype it would be replicated
 * CAB-resident state.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cabos/mailbox.hh"
#include "nectarine/nectarine.hh"
#include "sim/stats.hh"

namespace nectar::collective {

/** Deterministic group identity (creation order, starting at 1). */
using GroupId = std::uint32_t;

/**
 * Observation hooks for collective-operation accounting.  The chaos
 * oracle implements this to assert that every collective a member
 * starts terminates (completes, or fails with an error and a clean
 * epoch), and that epoch bumps are monotonic.  Hooks fire on the
 * deterministic event order; a null probe costs one pointer test.
 */
class CollectiveProbe
{
  public:
    virtual ~CollectiveProbe() = default;

    /** Rank @p rank entered a collective operation on @p gid. */
    virtual void onCollectiveStart(GroupId gid, int rank) = 0;

    /**
     * ... and left it.  @p error is the CollectiveError as uint8 (0
     * = none); @p startEpoch / @p endEpoch bracket the group epoch
     * over the operation.
     */
    virtual void onCollectiveEnd(GroupId gid, int rank, bool ok,
                                 std::uint8_t error,
                                 std::uint32_t startEpoch,
                                 std::uint32_t endEpoch) = 0;

    /** The directory bumped @p gid's epoch to @p newEpoch. */
    virtual void onEpochBump(GroupId gid, std::uint32_t newEpoch) = 0;
};

/** One group's membership and failure-detection state. */
struct GroupInfo
{
    GroupId id = 0;
    std::string name;
    /** Members in rank order (sorted by TaskId: deterministic). */
    std::vector<nectarine::TaskId> members;
    /** Failure-detection generation; starts at 1. */
    std::uint32_t epoch = 1;
    /** Members reported dead (one entry per epoch bump at most). */
    std::vector<nectarine::TaskId> suspects;
    bool alive = true; ///< False once destroyed.
};

/**
 * The shared group membership directory, keyed by Nectarine TaskId.
 */
class GroupDirectory
{
  public:
    /** Create an empty group.  Ids are sequential: deterministic. */
    GroupId create(const std::string &name);

    /**
     * Add a member.  Membership must be complete before the first
     * collective operation; ranks are the sorted-TaskId order.
     * Joining twice, joining a destroyed group, or placing two
     * members of one group on the same CAB (they would share the
     * group mailbox) is a programming error.
     */
    void join(GroupId gid, nectarine::TaskId member);

    /** Convenience: create and join every member. */
    GroupId create(const std::string &name,
                   const std::vector<nectarine::TaskId> &members);

    /** Tear a group down; later operations fail with `destroyed`. */
    void destroy(GroupId gid);

    const GroupInfo &info(GroupId gid) const;
    std::optional<GroupId> lookup(const std::string &name) const;

    /** Current epoch of @p gid (safe against a concurrent
     *  reportFailure() from another cluster's worker). */
    std::uint32_t epoch(GroupId gid) const;

    /** Rank of @p member in @p gid, or -1. */
    int rankOf(GroupId gid, nectarine::TaskId member) const;

    /**
     * A member observed a peer dead during an operation started at
     * @p fromEpoch.  The first report per epoch bumps it (recording
     * @p suspect, when known); concurrent reports from other
     * survivors find the epoch already advanced and change nothing.
     *
     * @return true when this call performed the bump.
     */
    bool reportFailure(GroupId gid, std::uint32_t fromEpoch,
                       std::optional<nectarine::TaskId> suspect);

    /** Epoch bumps across all groups (test/bench observability). */
    std::uint64_t epochBumps() const { return _epochBumps.value(); }

    /**
     * Attach an observation probe (nullptr detaches).  Shared by
     * every Communicator using this directory.
     */
    void setProbe(CollectiveProbe *p) { _probe = p; }
    CollectiveProbe *probe() const { return _probe; }

    /**
     * The per-CAB mailbox id a group's member listens on.  One id
     * per group, identical on every member CAB (mailbox namespaces
     * are per CAB) and disjoint from Nectarine task inboxes.
     */
    static cabos::MailboxId
    groupMailboxId(GroupId gid)
    {
        return static_cast<cabos::MailboxId>(groupMailboxBase + gid);
    }

    /** Group mailboxes live above the task-inbox space. */
    static constexpr std::uint16_t groupMailboxBase = 0x8000;

  private:
    GroupInfo &mutableInfo(GroupId gid);

    std::map<GroupId, GroupInfo> groups;
    GroupId nextId = 1;
    sim::Counter _epochBumps;
    CollectiveProbe *_probe = nullptr;
    /** Guards epoch reads against reportFailure() bumps: survivors
     *  on different clusters race only on this one word. */
    mutable std::mutex _epochMutex;
};

} // namespace nectar::collective
