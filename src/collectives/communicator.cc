#include "collectives/communicator.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace nectar::collective {

namespace {

/** Sentinel messages carry the deadline-timer tag space: the top 16
 *  tag bits are a marker no transport-assigned tag can produce
 *  (stream tags are 32-bit message ids; request tags top out at 48
 *  bits), the low bits a per-wait nonce so a stale sentinel from an
 *  earlier wait is recognized and dropped. */
constexpr std::uint64_t sentinelMark = 0xC0DEull;

constexpr std::uint64_t
sentinelTag(std::uint64_t nonce)
{
    return (sentinelMark << 48) | (nonce & 0xFFFF'FFFF'FFFFull);
}

constexpr bool
isSentinel(std::uint64_t tag)
{
    return (tag >> 48) == sentinelMark;
}

std::uint32_t
applyLane(ReduceOp op, std::uint32_t a, std::uint32_t b)
{
    switch (op) {
    case ReduceOp::sum:
        return a + b; // wraparound mod 2^32
    case ReduceOp::min:
        return std::min(a, b);
    case ReduceOp::max:
        return std::max(a, b);
    }
    return a;
}

} // namespace

Communicator::Communicator(nectarine::TaskContext &ctx,
                           GroupDirectory &groups, GroupId gid,
                           CommunicatorConfig config)
    : ctx(ctx), groups(groups), gid(gid), cfg(config)
{
    members = groups.info(gid).members;
    _rank = groups.rankOf(gid, ctx.id());
    if (_rank < 0)
        sim::fatal("Communicator: task is not a member of group " +
                   std::to_string(gid));
    // Materialize the group mailbox now, before any peer's first
    // operation can deliver into it.
    groupBox();
}

cabos::Mailbox &
Communicator::groupBox()
{
    auto id = GroupDirectory::groupMailboxId(gid);
    if (auto *box = ctx.kernel().mailbox(id))
        return *box;
    return ctx.kernel().createMailbox("group" + std::to_string(gid),
                                      cfg.mailboxCapacity, id);
}

// ----- Tree helpers --------------------------------------------------

int
Communicator::vrankOf(int rank, int root) const
{
    return (rank - root + size()) % size();
}

int
Communicator::rankOf(int vrank, int root) const
{
    return (vrank + root) % size();
}

int
Communicator::parentOf(int vrank) const
{
    return vrank == 0 ? -1 : (vrank & (vrank - 1));
}

std::vector<int>
Communicator::childrenOf(int vrank) const
{
    std::vector<int> out;
    for (int m = 1; m < size(); m <<= 1) {
        if (vrank & m)
            break; // m reached vrank's lowest set bit
        if (vrank + m < size())
            out.push_back(vrank + m);
    }
    return out;
}

// ----- Messaging helpers ---------------------------------------------

sim::Task<bool>
Communicator::sendTo(int dstRank, MsgKind kind, std::uint8_t param,
                     std::uint32_t opSeq, std::uint16_t epoch,
                     sim::PacketView payload)
{
    WireHeader h;
    h.gid = gid;
    h.epoch = epoch;
    h.srcRank = static_cast<std::uint16_t>(_rank);
    h.opSeq = opSeq;
    h.kind = kind;
    h.param = param;
    co_return co_await ctx.home().transport->sendReliable(
        members[dstRank].cab, GroupDirectory::groupMailboxId(gid),
        makeCollectiveMessage(h, std::move(payload)));
}

sim::Task<McastOutcome>
Communicator::mcastTo(const std::vector<int> &ranks, MsgKind kind,
                      std::uint8_t param, std::uint32_t opSeq,
                      std::uint16_t epoch, sim::PacketView payload)
{
    std::vector<transport::CabAddress> dsts;
    dsts.reserve(ranks.size());
    for (int r : ranks)
        if (r != _rank)
            dsts.push_back(members[r].cab);
    if (dsts.empty())
        co_return McastOutcome{};
    WireHeader h;
    h.gid = gid;
    h.epoch = epoch;
    h.srcRank = static_cast<std::uint16_t>(_rank);
    h.opSeq = opSeq;
    h.kind = kind;
    h.param = param;
    co_return co_await reliableMulticast(
        *ctx.home().transport, std::move(dsts),
        GroupDirectory::groupMailboxId(gid),
        makeCollectiveMessage(h, std::move(payload)), cfg.path);
}

sim::Task<McastOutcome>
Communicator::mcastAll(MsgKind kind, std::uint8_t param,
                       std::uint32_t opSeq, std::uint16_t epoch,
                       sim::PacketView payload)
{
    std::vector<int> all(size());
    for (int r = 0; r < size(); ++r)
        all[r] = r;
    co_return co_await mcastTo(all, kind, param, opSeq, epoch,
                               std::move(payload));
}

sim::Task<std::optional<Communicator::Incoming>>
Communicator::recvMatch(MsgKind kind, std::uint8_t param, int srcRank,
                        std::uint32_t opSeq, std::uint16_t epoch,
                        CollectiveError &err)
{
    cabos::Mailbox &box = groupBox();
    const sim::Tick deadline = ctx.now() + cfg.opTimeout;
    for (;;) {
        if (!groups.info(gid).alive) {
            err = CollectiveError::destroyed;
            co_return std::nullopt;
        }
        if (groups.epoch(gid) != epoch) {
            err = CollectiveError::epochChanged;
            co_return std::nullopt;
        }
        // Scan the stash (pruning traffic from dead epochs).
        for (auto it = stash.begin(); it != stash.end();) {
            if (it->hdr.epoch < groups.epoch(gid)) {
                it = stash.erase(it);
                continue;
            }
            if (it->hdr.epoch == epoch && it->hdr.opSeq == opSeq &&
                it->hdr.kind == kind && it->hdr.param == param &&
                (srcRank < 0 ||
                 it->hdr.srcRank ==
                     static_cast<std::uint16_t>(srcRank))) {
                Incoming m = std::move(*it);
                stash.erase(it);
                co_return m;
            }
            ++it;
        }
        if (ctx.now() >= deadline) {
            err = CollectiveError::timeout;
            co_return std::nullopt;
        }
        // Block on the mailbox with a hardware-timer sentinel: if the
        // deadline fires first, the timer posts a sentinel message
        // that wakes us (no polling).  If tryPut finds the box full,
        // the box is nonempty, so we were not blocked anyway.
        std::uint64_t nonce = ++waitNonce;
        cabos::Mailbox *boxp = &box;
        ctx.kernel().board().cpu().charge(ctx.kernel().costs().timerOp);
        auto timer = ctx.kernel().board().timers().set(
            deadline - ctx.now(), [boxp, nonce] {
                boxp->tryPut(cabos::Message(sim::PacketView{},
                                            sentinelTag(nonce)));
            });
        auto msg = co_await box.get();
        if (ctx.kernel().board().timers().cancel(timer))
            ctx.kernel().board().cpu().charge(
                ctx.kernel().costs().timerOp);
        if (isSentinel(msg.tag))
            continue; // ours: the loop head sees the deadline; a
                      // stale one from an earlier wait is dropped
        auto view = msg.takeView();
        auto parsed = parseCollectiveMessage(view);
        if (!parsed)
            continue; // not collective traffic; drop
        WireHeader h = parsed->first;
        sim::PacketView payload = std::move(parsed->second);
        if (h.gid != gid)
            continue;
        if (h.epoch < epoch)
            continue; // stale-epoch traffic
        if (h.epoch == epoch && h.opSeq == opSeq && h.kind == kind &&
            h.param == param &&
            (srcRank < 0 ||
             h.srcRank == static_cast<std::uint16_t>(srcRank)))
            co_return Incoming{h, std::move(payload)};
        // A later step's (or later epoch's) message: keep for then.
        stash.push_back(Incoming{h, std::move(payload)});
    }
}

sim::Task<void>
Communicator::combineInto(std::vector<std::uint8_t> &acc,
                          const sim::PacketView &in, ReduceOp op)
{
    if (in.size() != acc.size())
        sim::fatal("Communicator: reduce payload size mismatch (" +
                   std::to_string(in.size()) + " vs " +
                   std::to_string(acc.size()) + ")");
    // Stream the incoming segments; whole 32-bit big-endian lanes
    // combine with op, trailing bytes (size % 4) combine byte-wise.
    std::size_t pos = 0;
    std::uint32_t lane = 0;
    int have = 0;
    in.forEachSegment([&](const std::uint8_t *p, std::size_t n) {
        for (std::size_t k = 0; k < n; ++k) {
            lane = (lane << 8) | p[k];
            ++pos;
            if (++have == 4) {
                std::size_t at = pos - 4;
                std::uint32_t mine =
                    (static_cast<std::uint32_t>(acc[at]) << 24) |
                    (static_cast<std::uint32_t>(acc[at + 1]) << 16) |
                    (static_cast<std::uint32_t>(acc[at + 2]) << 8) |
                    static_cast<std::uint32_t>(acc[at + 3]);
                std::uint32_t v = applyLane(op, mine, lane);
                acc[at] = static_cast<std::uint8_t>(v >> 24);
                acc[at + 1] = static_cast<std::uint8_t>(v >> 16);
                acc[at + 2] = static_cast<std::uint8_t>(v >> 8);
                acc[at + 3] = static_cast<std::uint8_t>(v);
                have = 0;
                lane = 0;
            }
        }
    });
    for (int i = have; i > 0; --i) {
        std::size_t at = pos - static_cast<std::size_t>(i);
        auto inb = static_cast<std::uint8_t>(lane >> ((i - 1) * 8));
        acc[at] = static_cast<std::uint8_t>(
            applyLane(op, acc[at], inb));
    }
    // The SPARC touches both operands and writes the result: charge
    // the CPU the per-byte software cost and the memory system the
    // traffic.
    auto bytes = static_cast<std::uint64_t>(in.size());
    ctx.kernel().board().memory().account(cab::Accessor::cpu,
                                          2 * bytes);
    co_await ctx.compute(static_cast<sim::Tick>(
        static_cast<double>(bytes) *
        ctx.kernel().costs().copyPerByteNs));
}

Result
Communicator::fail(CollectiveError err, std::uint32_t startEpoch,
                   std::optional<int> suspectRank)
{
    if (err == CollectiveError::timeout ||
        err == CollectiveError::memberFailed) {
        std::optional<nectarine::TaskId> suspect;
        if (suspectRank && *suspectRank >= 0 &&
            *suspectRank < size()) {
            suspect = members[static_cast<std::size_t>(*suspectRank)];
            err = CollectiveError::memberFailed;
        }
        groups.reportFailure(gid, startEpoch, suspect);
    }
    return Result{false, err, groups.epoch(gid)};
}

Result
Communicator::okResult() const
{
    return Result{true, CollectiveError::none, groups.epoch(gid)};
}

// ----- Operations ----------------------------------------------------

sim::Task<Result>
Communicator::traced(sim::Task<Result> inner)
{
    std::uint32_t startEpoch = groups.epoch(gid);
    if (auto *p = groups.probe())
        p->onCollectiveStart(gid, _rank);
    Result r = co_await inner;
    if (auto *p = groups.probe())
        p->onCollectiveEnd(gid, _rank, r.ok,
                           static_cast<std::uint8_t>(r.error),
                           startEpoch, r.epoch);
    co_return r;
}

sim::Task<Result>
Communicator::broadcastView(int root, sim::PacketView &io)
{
    return traced(broadcastViewInner(root, io));
}

sim::Task<Result>
Communicator::broadcast(int root, std::vector<std::uint8_t> &data)
{
    return traced(broadcastInner(root, data));
}

sim::Task<Result>
Communicator::reduce(int root, ReduceOp op,
                     std::vector<std::uint8_t> &data)
{
    return traced(reduceInner(root, op, data));
}

sim::Task<Result>
Communicator::allreduce(ReduceOp op, std::vector<std::uint8_t> &data)
{
    return traced(allreduceInner(op, data));
}

sim::Task<Result>
Communicator::gather(int root, const std::vector<std::uint8_t> &mine,
                     std::vector<std::vector<std::uint8_t>> *out)
{
    return traced(gatherInner(root, mine, out));
}

sim::Task<Result>
Communicator::barrier()
{
    return traced(barrierInner());
}

sim::Task<Result>
Communicator::broadcastViewInner(int root, sim::PacketView &io)
{
    std::uint32_t opSeq = nextOpSeq++;
    if (!groups.info(gid).alive)
        co_return Result{false, CollectiveError::destroyed,
                         groups.epoch(gid)};
    auto epoch = static_cast<std::uint16_t>(groups.epoch(gid));
    if (size() == 1)
        co_return okResult();
    if (_rank == root) {
        auto out = co_await mcastAll(MsgKind::bcast, 0, opSeq, epoch,
                                     io);
        if (!out.ok) {
            int suspect = -1;
            if (!out.failed.empty())
                for (int r = 0; r < size(); ++r)
                    if (members[r].cab == out.failed.front())
                        suspect = r;
            co_return fail(CollectiveError::memberFailed, epoch,
                           suspect < 0 ? std::nullopt
                                       : std::optional<int>(suspect));
        }
        co_return okResult();
    }
    CollectiveError err = CollectiveError::none;
    auto in = co_await recvMatch(MsgKind::bcast, 0, root, opSeq,
                                 epoch, err);
    if (!in)
        co_return fail(err, epoch, root);
    io = std::move(in->payload);
    co_return okResult();
}

sim::Task<Result>
Communicator::broadcastInner(int root, std::vector<std::uint8_t> &data)
{
    if (_rank == root) {
        sim::PacketView v{std::vector<std::uint8_t>(data)};
        co_return co_await broadcastViewInner(root, v);
    }
    sim::PacketView v;
    Result r = co_await broadcastViewInner(root, v);
    if (r.ok)
        data = v.toVector(); // the one application-boundary copy
    co_return r;
}

sim::Task<Result>
Communicator::reduceInner(int root, ReduceOp op,
                          std::vector<std::uint8_t> &data)
{
    std::uint32_t opSeq = nextOpSeq++;
    if (!groups.info(gid).alive)
        co_return Result{false, CollectiveError::destroyed,
                         groups.epoch(gid)};
    auto epoch = static_cast<std::uint16_t>(groups.epoch(gid));
    if (size() == 1)
        co_return okResult();
    int vr = vrankOf(_rank, root);
    std::vector<std::uint8_t> acc = data;
    for (int childV : childrenOf(vr)) {
        int child = rankOf(childV, root);
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(MsgKind::reduceUp, 0, child,
                                     opSeq, epoch, err);
        if (!in)
            co_return fail(err, epoch, child);
        co_await combineInto(acc, in->payload, op);
    }
    if (vr != 0) {
        int parent = rankOf(parentOf(vr), root);
        if (!co_await sendTo(parent, MsgKind::reduceUp, 0, opSeq,
                             epoch, sim::PacketView(std::move(acc))))
            co_return fail(CollectiveError::memberFailed, epoch,
                           parent);
    } else {
        data = std::move(acc);
    }
    co_return okResult();
}

sim::Task<Result>
Communicator::allreduceInner(ReduceOp op,
                             std::vector<std::uint8_t> &data)
{
    if (!groups.info(gid).alive)
        co_return Result{false, CollectiveError::destroyed,
                         groups.epoch(gid)};
    const int n = size();
    if (n == 1) {
        ++nextOpSeq;
        co_return okResult();
    }
    // All members see the same n and data size (the collective
    // contract), so they pick the same schedule and stay opSeq-
    // aligned.
    if (data.size() <= cfg.recursiveDoublingMaxBytes) {
        std::uint32_t opSeq = nextOpSeq++;
        auto epoch = static_cast<std::uint16_t>(groups.epoch(gid));
        co_return co_await allreduceRecursiveDoubling(op, data, opSeq,
                                                      epoch);
    }
    bool pow2 = (n & (n - 1)) == 0;
    if (pow2 && n <= 255 && data.size() % 4 == 0 &&
        data.size() / 4 >= static_cast<std::size_t>(n)) {
        std::uint32_t opSeq = nextOpSeq++;
        auto epoch = static_cast<std::uint16_t>(groups.epoch(gid));
        co_return co_await allreduceReduceScatter(op, data, opSeq,
                                                  epoch);
    }
    // Fallback: binomial reduce to rank 0, hardware broadcast back.
    Result r = co_await reduceInner(0, op, data);
    if (!r.ok)
        co_return r;
    co_return co_await broadcastInner(0, data);
}

sim::Task<Result>
Communicator::allreduceRecursiveDoubling(ReduceOp op,
                                         std::vector<std::uint8_t> &data,
                                         std::uint32_t opSeq,
                                         std::uint16_t epoch)
{
    const int n = size();
    int p = 1;
    while (p * 2 <= n)
        p *= 2;
    const int rem = n - p;
    std::vector<std::uint8_t> acc = data;
    // Phase A: the non-power-of-two remainder folds into the core.
    if (_rank >= p) {
        if (!co_await sendTo(_rank - p, MsgKind::rdExchange, 0xFD,
                             opSeq, epoch,
                             sim::PacketView(
                                 std::vector<std::uint8_t>(acc))))
            co_return fail(CollectiveError::memberFailed, epoch,
                           _rank - p);
    } else if (_rank < rem) {
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(MsgKind::rdExchange, 0xFD,
                                     _rank + p, opSeq, epoch, err);
        if (!in)
            co_return fail(err, epoch, _rank + p);
        co_await combineInto(acc, in->payload, op);
    }
    // Phase B: log2(p) pairwise exchange rounds in the core.
    if (_rank < p) {
        std::uint8_t round = 0;
        for (int mask = 1; mask < p; mask <<= 1, ++round) {
            int partner = _rank ^ mask;
            if (!co_await sendTo(partner, MsgKind::rdExchange, round,
                                 opSeq, epoch,
                                 sim::PacketView(
                                     std::vector<std::uint8_t>(acc))))
                co_return fail(CollectiveError::memberFailed, epoch,
                               partner);
            CollectiveError err = CollectiveError::none;
            auto in = co_await recvMatch(MsgKind::rdExchange, round,
                                         partner, opSeq, epoch, err);
            if (!in)
                co_return fail(err, epoch, partner);
            co_await combineInto(acc, in->payload, op);
        }
    }
    // Phase C: results flow back out to the remainder.
    if (_rank < rem) {
        if (!co_await sendTo(_rank + p, MsgKind::rdExchange, 0xFE,
                             opSeq, epoch,
                             sim::PacketView(
                                 std::vector<std::uint8_t>(acc))))
            co_return fail(CollectiveError::memberFailed, epoch,
                           _rank + p);
    } else if (_rank >= p) {
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(MsgKind::rdExchange, 0xFE,
                                     _rank - p, opSeq, epoch, err);
        if (!in)
            co_return fail(err, epoch, _rank - p);
        acc = in->payload.toVector();
    }
    data = std::move(acc);
    co_return okResult();
}

sim::Task<Result>
Communicator::allreduceReduceScatter(ReduceOp op,
                                     std::vector<std::uint8_t> &data,
                                     std::uint32_t opSeq,
                                     std::uint16_t epoch)
{
    const int n = size();
    const std::size_t lanes = data.size() / 4;
    // Slice i covers lanes [lanes*i/n, lanes*(i+1)/n): contiguous,
    // lane-aligned, and exhaustive for any size.
    auto sliceLo = [&](int i) {
        return (lanes * static_cast<std::size_t>(i) /
                static_cast<std::size_t>(n)) *
               4;
    };
    std::vector<std::uint8_t> acc = data;
    // Recursive halving: each round exchanges the half of the
    // current slice range the partner owns, combining the half we
    // keep.  After log2(n) rounds rank r owns slice r, fully reduced.
    int lo = 0, cnt = n;
    std::uint8_t round = 0;
    for (int mask = n >> 1; mask >= 1; mask >>= 1, ++round) {
        int partner = _rank ^ mask;
        int half = cnt / 2;
        bool lower = (_rank & mask) == 0;
        int sendLo = lower ? lo + half : lo;
        int keepLo = lower ? lo : lo + half;
        std::size_t sb = sliceLo(sendLo), se = sliceLo(sendLo + half);
        std::size_t kb = sliceLo(keepLo), ke = sliceLo(keepLo + half);
        std::vector<std::uint8_t> chunk(acc.begin() + sb,
                                        acc.begin() + se);
        if (!co_await sendTo(partner, MsgKind::rdExchange, round,
                             opSeq, epoch,
                             sim::PacketView(std::move(chunk))))
            co_return fail(CollectiveError::memberFailed, epoch,
                           partner);
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(MsgKind::rdExchange, round,
                                     partner, opSeq, epoch, err);
        if (!in)
            co_return fail(err, epoch, partner);
        if (in->payload.size() != ke - kb)
            sim::fatal("Communicator: reduce-scatter chunk size "
                       "mismatch");
        std::vector<std::uint8_t> kept(acc.begin() + kb,
                                       acc.begin() + ke);
        co_await combineInto(kept, in->payload, op);
        std::copy(kept.begin(), kept.end(), acc.begin() + kb);
        lo = keepLo;
        cnt = half;
    }
    // Allgather: every rank multicasts its owned slice; the HUB
    // hardware tree turns each into a single packet when routable.
    for (int owner = 0; owner < n; ++owner) {
        std::size_t ob = sliceLo(owner), oe = sliceLo(owner + 1);
        if (owner == _rank) {
            std::vector<std::uint8_t> mine(acc.begin() + ob,
                                           acc.begin() + oe);
            auto out = co_await mcastAll(
                MsgKind::slice, static_cast<std::uint8_t>(owner),
                opSeq, epoch, sim::PacketView(std::move(mine)));
            if (!out.ok)
                co_return fail(CollectiveError::memberFailed, epoch,
                               std::nullopt);
            continue;
        }
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(
            MsgKind::slice, static_cast<std::uint8_t>(owner), owner,
            opSeq, epoch, err);
        if (!in)
            co_return fail(err, epoch, owner);
        if (in->payload.size() != oe - ob)
            sim::fatal("Communicator: allgather slice size mismatch");
        in->payload.copyTo(acc.data() + ob);
    }
    data = std::move(acc);
    co_return okResult();
}

sim::Task<Result>
Communicator::gatherInner(int root,
                          const std::vector<std::uint8_t> &mine,
                          std::vector<std::vector<std::uint8_t>> *out)
{
    std::uint32_t opSeq = nextOpSeq++;
    if (!groups.info(gid).alive)
        co_return Result{false, CollectiveError::destroyed,
                         groups.epoch(gid)};
    auto epoch = static_cast<std::uint16_t>(groups.epoch(gid));
    if (size() == 1) {
        if (out)
            out->assign(1, mine);
        co_return okResult();
    }
    if (_rank != root) {
        if (!co_await sendTo(root, MsgKind::gatherUp, 0, opSeq, epoch,
                             sim::PacketView(
                                 std::vector<std::uint8_t>(mine))))
            co_return fail(CollectiveError::memberFailed, epoch,
                           root);
        co_return okResult();
    }
    out->resize(static_cast<std::size_t>(size()));
    (*out)[static_cast<std::size_t>(root)] = mine;
    for (int r = 0; r < size(); ++r) {
        if (r == root)
            continue;
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(MsgKind::gatherUp, 0, r, opSeq,
                                     epoch, err);
        if (!in)
            co_return fail(err, epoch, r);
        (*out)[static_cast<std::size_t>(r)] = in->payload.toVector();
    }
    co_return okResult();
}

sim::Task<Result>
Communicator::barrierInner()
{
    std::uint32_t opSeq = nextOpSeq++;
    if (!groups.info(gid).alive)
        co_return Result{false, CollectiveError::destroyed,
                         groups.epoch(gid)};
    auto epoch = static_cast<std::uint16_t>(groups.epoch(gid));
    if (size() == 1)
        co_return okResult();
    // One byte of payload: keeps every path off the zero-length
    // message edge.
    auto token = [] {
        return sim::PacketView(std::vector<std::uint8_t>{1});
    };
    int vr = vrankOf(_rank, 0);
    for (int childV : childrenOf(vr)) {
        int child = rankOf(childV, 0);
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(MsgKind::barrierUp, 0, child,
                                     opSeq, epoch, err);
        if (!in)
            co_return fail(err, epoch, child);
    }
    if (vr != 0) {
        int parent = rankOf(parentOf(vr), 0);
        if (!co_await sendTo(parent, MsgKind::barrierUp, 0, opSeq,
                             epoch, token()))
            co_return fail(CollectiveError::memberFailed, epoch,
                           parent);
        CollectiveError err = CollectiveError::none;
        auto in = co_await recvMatch(MsgKind::release, 0, 0, opSeq,
                                     epoch, err);
        if (!in)
            co_return fail(err, epoch, 0);
    } else {
        auto out = co_await mcastAll(MsgKind::release, 0, opSeq,
                                     epoch, token());
        if (!out.ok)
            co_return fail(CollectiveError::memberFailed, epoch,
                           std::nullopt);
    }
    co_return okResult();
}

} // namespace nectar::collective
