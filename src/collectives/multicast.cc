#include "collectives/multicast.hh"

namespace nectar::collective {

sim::Task<McastOutcome>
reliableMulticast(transport::Transport &tp,
                  std::vector<transport::CabAddress> dsts,
                  std::uint16_t mailbox, sim::PacketView data,
                  McastPath path)
{
    auto r = co_await tp.sendReliableMulticast(
        std::move(dsts), mailbox, std::move(data),
        path != McastPath::unicast);
    co_return McastOutcome{r.ok, r.usedHardware, std::move(r.failed)};
}

namespace {

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

} // namespace

sim::PacketView
makeCollectiveMessage(const WireHeader &h, sim::PacketView payload)
{
    auto hdr = sim::BufferArena::instance().acquire(WireHeader::wireSize);
    put32(&hdr[0], h.gid);
    put16(&hdr[4], h.epoch);
    put16(&hdr[6], h.srcRank);
    put32(&hdr[8], h.opSeq);
    hdr[12] = static_cast<std::uint8_t>(h.kind);
    hdr[13] = h.param;
    put16(&hdr[14], h.reserved);
    return sim::PacketView::concat(
        sim::PacketView(sim::Buffer::adopt(std::move(hdr))), payload);
}

std::optional<std::pair<WireHeader, sim::PacketView>>
parseCollectiveMessage(const sim::PacketView &msg)
{
    if (msg.size() < WireHeader::wireSize)
        return std::nullopt;
    std::uint8_t raw[WireHeader::wireSize];
    msg.read(0, raw, WireHeader::wireSize);
    WireHeader h;
    h.gid = get32(&raw[0]);
    h.epoch = get16(&raw[4]);
    h.srcRank = get16(&raw[6]);
    h.opSeq = get32(&raw[8]);
    h.kind = static_cast<MsgKind>(raw[12]);
    h.param = raw[13];
    h.reserved = get16(&raw[14]);
    return std::make_pair(h, msg.slice(WireHeader::wireSize));
}

} // namespace nectar::collective
