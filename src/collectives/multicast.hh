/**
 * @file
 * Reliable multicast policy and the collective wire format.
 *
 * The transport layer provides sendReliableMulticast(): one packet
 * through a HUB hardware multicast tree when the fabric allows it,
 * per-member unicast fan-out otherwise, NACK/retransmit per receiver
 * either way.  This layer adds the *policy* knob (force hardware
 * off for A/B measurement) and the 16-byte collective message header
 * that rides inside the transport payload — group id, epoch, rank,
 * operation sequence and kind — so receivers can demultiplex and
 * reorder collective traffic arriving FIFO in the group mailbox.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/buffer.hh"
#include "sim/coro.hh"
#include "transport/transport.hh"

namespace nectar::collective {

/** Which fabric path a multicast is allowed to take. */
enum class McastPath : std::uint8_t {
    automatic, ///< Hardware tree when routable; unicast fallback.
    unicast,   ///< Force per-member unicast fan-out (baseline).
};

/** Outcome of one reliable multicast. */
struct McastOutcome
{
    bool ok = true;
    bool usedHardware = false;
    std::vector<transport::CabAddress> failed;
};

/**
 * Reliably multicast @p data from @p tp to @p dsts mailbox
 * @p mailbox under policy @p path.
 */
sim::Task<McastOutcome>
reliableMulticast(transport::Transport &tp,
                  std::vector<transport::CabAddress> dsts,
                  std::uint16_t mailbox, sim::PacketView data,
                  McastPath path = McastPath::automatic);

// ----- Collective message format ------------------------------------

/** Collective message kinds. */
enum class MsgKind : std::uint8_t {
    reduceUp = 1,   ///< Partial result up the binomial tree.
    bcast = 2,      ///< Root broadcast payload.
    rdExchange = 3, ///< Recursive-doubling exchange (param = round).
    slice = 4,      ///< Owned slice allgather (param = owner rank).
    gatherUp = 5,   ///< Contribution direct to the gather root.
    barrierUp = 6,  ///< Barrier arrival up the binomial tree.
    release = 7,    ///< Root barrier release.
};

/**
 * The header prepended to every collective payload.  The transport
 * tag field carries the transport's own message id, so collective
 * demultiplexing state travels in-band, serialized big-endian.
 */
struct WireHeader
{
    std::uint32_t gid = 0;
    std::uint16_t epoch = 0;
    std::uint16_t srcRank = 0;
    std::uint32_t opSeq = 0;
    MsgKind kind = MsgKind::bcast;
    std::uint8_t param = 0;
    std::uint16_t reserved = 0;

    static constexpr std::uint32_t wireSize = 16;
};

/**
 * Serialize @p h into a fresh (pooled) 16-byte buffer and chain
 * @p payload behind it — payload bytes are shared, never copied.
 */
sim::PacketView makeCollectiveMessage(const WireHeader &h,
                                      sim::PacketView payload);

/**
 * Parse a received collective message.  Header fields are read
 * through the view; the payload comes back as a slice of @p msg.
 * Returns nullopt when @p msg is too short to be a collective
 * message.
 */
std::optional<std::pair<WireHeader, sim::PacketView>>
parseCollectiveMessage(const sim::PacketView &msg);

} // namespace nectar::collective
