#include "header.hh"

#include "cab/checksum.hh"

namespace nectar::transport {

namespace {

void
put8(std::vector<std::uint8_t> &v, std::size_t off, std::uint8_t x)
{
    v[off] = x;
}

void
put16(std::vector<std::uint8_t> &v, std::size_t off, std::uint16_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 8);
    v[off + 1] = static_cast<std::uint8_t>(x);
}

void
put32(std::vector<std::uint8_t> &v, std::size_t off, std::uint32_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 24);
    v[off + 1] = static_cast<std::uint8_t>(x >> 16);
    v[off + 2] = static_cast<std::uint8_t>(x >> 8);
    v[off + 3] = static_cast<std::uint8_t>(x);
}

std::uint16_t
get16(const std::vector<std::uint8_t> &v, std::size_t off)
{
    return static_cast<std::uint16_t>((v[off] << 8) | v[off + 1]);
}

std::uint32_t
get32(const std::vector<std::uint8_t> &v, std::size_t off)
{
    return (static_cast<std::uint32_t>(v[off]) << 24) |
           (static_cast<std::uint32_t>(v[off + 1]) << 16) |
           (static_cast<std::uint32_t>(v[off + 2]) << 8) |
           static_cast<std::uint32_t>(v[off + 3]);
}

} // namespace

std::vector<std::uint8_t>
encodePacket(Header h, const std::vector<std::uint8_t> &payload)
{
    h.length = static_cast<std::uint16_t>(payload.size());

    std::vector<std::uint8_t> out(Header::wireSize + payload.size(), 0);
    put8(out, 0, static_cast<std::uint8_t>(h.protocol));
    put8(out, 1, h.flags);
    put16(out, 2, h.srcCab);
    put16(out, 4, h.dstCab);
    put16(out, 6, h.srcMailbox);
    put16(out, 8, h.dstMailbox);
    put32(out, 10, h.seq);
    put32(out, 14, h.ack);
    put16(out, 18, h.window);
    put32(out, 20, h.msgId);
    put16(out, 24, h.fragIndex);
    put16(out, 26, h.fragCount);
    put16(out, 28, h.length);
    // Checksum field (offset 30) stays zero for the computation.
    std::copy(payload.begin(), payload.end(),
              out.begin() + Header::wireSize);

    std::uint16_t sum = cab::checksum16(out.data(), out.size());
    put16(out, 30, sum);
    return out;
}

std::optional<Header>
decodePacket(const std::vector<std::uint8_t> &bytes,
             std::vector<std::uint8_t> &payload)
{
    if (bytes.size() < Header::wireSize)
        return std::nullopt;

    Header h;
    h.protocol = static_cast<Proto>(bytes[0]);
    h.flags = bytes[1];
    h.srcCab = get16(bytes, 2);
    h.dstCab = get16(bytes, 4);
    h.srcMailbox = get16(bytes, 6);
    h.dstMailbox = get16(bytes, 8);
    h.seq = get32(bytes, 10);
    h.ack = get32(bytes, 14);
    h.window = get16(bytes, 18);
    h.msgId = get32(bytes, 20);
    h.fragIndex = get16(bytes, 24);
    h.fragCount = get16(bytes, 26);
    h.length = get16(bytes, 28);
    h.checksum = get16(bytes, 30);

    if (bytes.size() != Header::wireSize + h.length)
        return std::nullopt;

    // Verify the checksum over the packet with the field zeroed.
    std::vector<std::uint8_t> copy = bytes;
    copy[30] = 0;
    copy[31] = 0;
    if (cab::checksum16(copy.data(), copy.size()) != h.checksum)
        return std::nullopt;

    payload.assign(bytes.begin() + Header::wireSize, bytes.end());
    return h;
}

} // namespace nectar::transport
