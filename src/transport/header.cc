#include "header.hh"

#include "cab/checksum.hh"

namespace nectar::transport {

namespace {

void
put8(std::vector<std::uint8_t> &v, std::size_t off, std::uint8_t x)
{
    v[off] = x;
}

void
put16(std::vector<std::uint8_t> &v, std::size_t off, std::uint16_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 8);
    v[off + 1] = static_cast<std::uint8_t>(x);
}

void
put32(std::vector<std::uint8_t> &v, std::size_t off, std::uint32_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 24);
    v[off + 1] = static_cast<std::uint8_t>(x >> 16);
    v[off + 2] = static_cast<std::uint8_t>(x >> 8);
    v[off + 3] = static_cast<std::uint8_t>(x);
}

std::uint16_t
get16(const std::uint8_t *v, std::size_t off)
{
    return static_cast<std::uint16_t>((v[off] << 8) | v[off + 1]);
}

std::uint32_t
get32(const std::uint8_t *v, std::size_t off)
{
    return (static_cast<std::uint32_t>(v[off]) << 24) |
           (static_cast<std::uint32_t>(v[off + 1]) << 16) |
           (static_cast<std::uint32_t>(v[off + 2]) << 8) |
           static_cast<std::uint32_t>(v[off + 3]);
}

/** Checksum @p hdr (32 bytes, checksum field zeroed) + @p payload. */
std::uint16_t
packetChecksum(const std::uint8_t *hdr, const sim::PacketView &payload)
{
    cab::ChecksumAccumulator acc;
    acc.feed(hdr, Header::wireSize);
    payload.forEachSegment([&](const std::uint8_t *p, std::size_t n) {
        acc.feed(p, n);
    });
    return acc.finish();
}

} // namespace

sim::PacketView
encodePacket(Header h, const sim::PacketView &payload)
{
    h.length = static_cast<std::uint16_t>(payload.size());

    // The header is the one fresh allocation per packet; drawing it
    // from the arena turns the steady-state cost into a pool hit.
    auto hdr = sim::BufferArena::instance().acquire(Header::wireSize);
    put8(hdr, 0, static_cast<std::uint8_t>(h.protocol));
    put8(hdr, 1, h.flags);
    put16(hdr, 2, h.srcCab);
    put16(hdr, 4, h.dstCab);
    put16(hdr, 6, h.srcMailbox);
    put16(hdr, 8, h.dstMailbox);
    put32(hdr, 10, h.seq);
    put32(hdr, 14, h.ack);
    put16(hdr, 18, h.window);
    put32(hdr, 20, h.msgId);
    put16(hdr, 24, h.fragIndex);
    put16(hdr, 26, h.fragCount);
    put16(hdr, 28, h.length);
    // Checksum field (offset 30) stays zero for the computation; the
    // payload is streamed segment by segment, never copied.
    put16(hdr, 30, packetChecksum(hdr.data(), payload));

    return sim::PacketView::concat(
        sim::PacketView(sim::Buffer::adopt(std::move(hdr))), payload);
}

std::optional<Header>
decodePacket(const sim::PacketView &packet, sim::PacketView &payload)
{
    if (packet.size() < Header::wireSize)
        return std::nullopt;

    // The protocol engine reads the header fields as the bytes stream
    // past (a register read, not a payload copy).
    std::uint8_t hdr[Header::wireSize];
    packet.read(0, hdr, Header::wireSize);

    Header h;
    h.protocol = static_cast<Proto>(hdr[0]);
    h.flags = hdr[1];
    h.srcCab = get16(hdr, 2);
    h.dstCab = get16(hdr, 4);
    h.srcMailbox = get16(hdr, 6);
    h.dstMailbox = get16(hdr, 8);
    h.seq = get32(hdr, 10);
    h.ack = get32(hdr, 14);
    h.window = get16(hdr, 18);
    h.msgId = get32(hdr, 20);
    h.fragIndex = get16(hdr, 24);
    h.fragCount = get16(hdr, 26);
    h.length = get16(hdr, 28);
    h.checksum = get16(hdr, 30);

    if (packet.size() != Header::wireSize + h.length)
        return std::nullopt;

    // Verify the checksum over the packet with the field zeroed.
    payload = packet.slice(Header::wireSize);
    hdr[30] = 0;
    hdr[31] = 0;
    if (packetChecksum(hdr, payload) != h.checksum) {
        payload = sim::PacketView{};
        return std::nullopt;
    }
    return h;
}

} // namespace nectar::transport
