/**
 * @file
 * The network directory: CAB addresses, attachment points, routes.
 *
 * The Nectar prototype's CABs know the network topology (routes are
 * sequences of HUB commands, Section 4.2); this directory is the
 * shared name service mapping a CAB address to its attachment point
 * and caching the command routes between CAB pairs.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "topo/topology.hh"
#include "transport/header.hh"

namespace nectar::transport {

/** Maps CAB addresses to attachment points; caches routes. */
class NetworkDirectory
{
  public:
    /** @param topo The system topology routes are computed on. */
    explicit NetworkDirectory(topo::Topology &topo) : topo(topo) {}

    /** Register a CAB's attachment point. */
    void
    registerCab(CabAddress cab, const topo::Endpoint &at)
    {
        if (!attachments.emplace(cab, at).second)
            sim::fatal("NetworkDirectory: CAB address already "
                       "registered: " + std::to_string(cab));
    }

    /** Attachment point of @p cab. */
    const topo::Endpoint &
    endpointOf(CabAddress cab) const
    {
        auto it = attachments.find(cab);
        if (it == attachments.end())
            sim::fatal("NetworkDirectory: unknown CAB address " +
                       std::to_string(cab));
        return it->second;
    }

    /** True if @p cab is registered. */
    bool
    known(CabAddress cab) const
    {
        return attachments.count(cab) > 0;
    }

    /**
     * Command route from @p from to @p to (cached).
     *
     * The cache is keyed to the topology's link version: any
     * markLinkDown/markLinkUp invalidates it, and recomputations
     * that produce a different route than before are counted as
     * reroutes (the campaign report's "observed reroutes").
     *
     * May be empty when link failures leave no surviving path.
     */
    const topo::Route &
    route(CabAddress from, CabAddress to)
    {
        // Transports on different clusters resolve routes
        // concurrently under the parallel engine; the cache insert
        // must be serialized.  std::map node references stay valid
        // across inserts, so the returned route outlives the lock;
        // the invalidating clear() only happens while the simulation
        // is single-threaded (link faults run between windows).
        std::lock_guard<std::mutex> lock(_cacheMutex);
        if (version != topo.linkVersion()) {
            staleRoutes = std::move(routes);
            routes.clear();
            version = topo.linkVersion();
        }
        auto key = std::make_pair(from, to);
        auto it = routes.find(key);
        if (it == routes.end()) {
            it = routes
                     .emplace(key, topo.route(endpointOf(from),
                                              endpointOf(to)))
                     .first;
            auto old = staleRoutes.find(key);
            if (old != staleRoutes.end() && old->second != it->second)
                _reroutes.add();
        }
        return it->second;
    }

    /**
     * Multicast tree route from @p from to every CAB in @p members
     * (cached per sorted member set, invalidated by link events like
     * route()).  Empty when link failures leave any member
     * unreachable — callers fall back to per-member unicast fan-out.
     */
    const topo::Route &
    multicastRoute(CabAddress from, std::vector<CabAddress> members)
    {
        std::lock_guard<std::mutex> lock(_cacheMutex); // see route()
        if (mcastVersion != topo.linkVersion()) {
            mcastRoutes.clear();
            mcastVersion = topo.linkVersion();
        }
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
        auto key = std::make_pair(from, members);
        auto it = mcastRoutes.find(key);
        if (it == mcastRoutes.end()) {
            std::vector<topo::Endpoint> to;
            to.reserve(members.size());
            for (CabAddress m : members)
                to.push_back(endpointOf(m));
            it = mcastRoutes
                     .emplace(key,
                              topo.multicastRoute(endpointOf(from),
                                                  to))
                     .first;
        }
        return it->second;
    }

    /** Route recomputations that changed the path after a link event. */
    std::uint64_t reroutes() const { return _reroutes.value(); }

    /** Number of registered CABs. */
    std::size_t size() const { return attachments.size(); }

    topo::Topology &topology() { return topo; }

  private:
    topo::Topology &topo;
    std::map<CabAddress, topo::Endpoint> attachments;
    std::map<std::pair<CabAddress, CabAddress>, topo::Route> routes;
    std::map<std::pair<CabAddress, CabAddress>, topo::Route>
        staleRoutes;
    std::map<std::pair<CabAddress, std::vector<CabAddress>>,
             topo::Route>
        mcastRoutes;
    std::uint64_t version = 0;
    std::uint64_t mcastVersion = 0;
    sim::Counter _reroutes;
    /** Serializes the route-cache lookups/inserts (see route()). */
    std::mutex _cacheMutex;
};

} // namespace nectar::transport
