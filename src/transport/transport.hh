/**
 * @file
 * The Nectar transport protocols.
 *
 * Section 6.2.2: "The transport layer is responsible for message
 * transfer between mailboxes on different CABs.  This involves
 * breaking messages into packets, reassembling messages, flow
 * control, and retransmission of lost and damaged packets.  Three
 * protocols have been implemented:
 *
 *  - The datagram protocol has low overhead but does not guarantee
 *    packet delivery ...
 *  - The byte-stream protocol provides reliable communication using
 *    acknowledgments, retransmissions, and a sliding window for flow
 *    control.
 *  - The request-response protocol supports client-server
 *    interactions such as remote procedure calls."
 *
 * All three are implemented here for real: fragments, sequence
 * numbers, cumulative acks, go-back-N retransmission, request
 * retry with response caching.  Packets travel through the simulated
 * HUB network and can be lost or corrupted by fault injection.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cabos/kernel.hh"
#include "datalink/datalink.hh"
#include "sim/component.hh"
#include "sim/coro.hh"
#include "transport/directory.hh"
#include "transport/header.hh"
#include "transport/probe.hh"

namespace nectar::transport {

using sim::Tick;
using namespace sim::ticks;

/** Transport tuning. */
struct TransportConfig
{
    /** User payload bytes per packet (header adds 32). */
    std::uint32_t mtu = 896;
    /**
     * Initial go-back-N retransmission timeout; also the fixed
     * timeout when adaptiveRto is off.
     */
    Tick retransmitTimeout = 1 * ms;
    /**
     * Adapt the retransmission timeout per flow from measured
     * round-trip times (Jacobson/Karn: SRTT/RTTVAR estimators,
     * exponential backoff on expiry, no samples from retransmitted
     * packets).
     */
    bool adaptiveRto = true;
    /** Lower clamp for the adaptive retransmission timeout. */
    Tick minRto = 200 * us;
    /** Upper clamp for the (backed-off) retransmission timeout. */
    Tick maxRto = 64 * ms;
    /** Consecutive timeouts before a reliable send fails. */
    int maxRetransmits = 10;
    /** Sliding window, in packets (Section 6.2.2). */
    std::uint32_t windowPackets = 8;
    /** RPC: per-attempt response timeout. */
    Tick requestTimeout = 2 * ms;
    /** RPC: attempts before giving up. */
    int maxRequestAttempts = 4;
    /** Responses cached for duplicate-request suppression. */
    std::size_t responseCacheSize = 128;
    /** Switching discipline used for data packets. */
    datalink::SwitchMode mode = datalink::SwitchMode::packet;
};

/** Transport statistics. */
struct TransportStats
{
    sim::Counter messagesSent;      ///< Application messages sent.
    sim::Counter messagesDelivered; ///< Messages placed in mailboxes.
    sim::Counter packetsSent;
    sim::Counter packetsReceived;
    sim::Counter acksSent;
    sim::Counter acksReceived;
    sim::Counter retransmissions;
    sim::Counter checksumDrops;   ///< Packets failing verification.
    sim::Counter duplicates;      ///< Stream packets already seen.
    sim::Counter outOfOrder;      ///< Stream packets ahead of expected.
    sim::Counter deliveryStalls;  ///< Last fragment unacked: mailbox full.
    sim::Counter datagramsDropped; ///< No mailbox / mailbox full.
    sim::Counter sendFailures;    ///< Reliable sends that gave up.
    sim::Counter requestsSent;
    sim::Counter requestRetries;
    sim::Counter responsesServed;
    sim::Counter requestsFailed;
    sim::Counter cachedResponseHits; ///< Duplicate requests answered
                                     ///< from the response cache.

    // Failure-recovery instrumentation (fault campaigns).
    sim::Counter messagesRecovered; ///< Reliable sends that succeeded
                                    ///< after at least one timeout.
    sim::Counter rtoBackoffs;     ///< Timer expiries doubling the RTO.
    sim::Counter karnSuppressed;  ///< RTT samples discarded because the
                                  ///< acked packet was retransmitted.
    sim::Counter unroutable;      ///< Transmissions with no surviving
                                  ///< route (dropped; sender retries).
    sim::Counter crashDrops;      ///< Packets ignored while crashed.
    sim::Counter flowResyncs;     ///< Receiver flows resynchronized
                                  ///< after a peer reset its epoch.
    sim::Counter staleAcks;       ///< Acks from a previous flow epoch.
    sim::Counter flowEpochBumps;  ///< Sender flows reset to a fresh
                                  ///< epoch (send failure or crash).

    // Reliable-multicast instrumentation.
    sim::Counter mcastSends;        ///< sendReliableMulticast calls.
    sim::Counter mcastHwPackets;    ///< Packets sent once down a
                                    ///< hardware multicast tree.
    sim::Counter mcastUnicastPackets; ///< Per-member fan-out copies.
    sim::Counter mcastFallbacks;    ///< Hardware path unavailable
                                    ///< (no tree / frame too large).
    sim::Counter mcastRealigns;     ///< Member flows reset to a
                                    ///< common sequence origin.
    sim::Counter mcastMemberFailures; ///< Members a multicast send
                                      ///< gave up on.
    sim::SampleStats rttSampleNs; ///< Accepted RTT samples (ticks).
    sim::Histogram recoveryNs;    ///< First-timeout-to-recovery times
                                  ///< of stalled flows (ticks).
    double lastSrtt = 0;          ///< Most recent flow SRTT (ticks).
    double lastRttvar = 0;        ///< Most recent flow RTTVAR (ticks).
    Tick lastRto = 0;             ///< Most recent computed RTO.
};

/**
 * Per-CAB transport instance, running on the CAB ("protocol
 * processing is off-loaded to the CAB", Section 3.1).
 */
class Transport : public sim::Component
{
  public:
    /**
     * @param kernel CAB kernel (mailboxes, threads, costs).
     * @param dl This CAB's datalink.
     * @param directory Shared address/route directory.
     * @param self This CAB's network address.
     * @param config Tuning.
     */
    Transport(cabos::Kernel &kernel, datalink::Datalink &dl,
              NetworkDirectory &directory, CabAddress self,
              const TransportConfig &config = {});

    CabAddress address() const { return self; }
    TransportStats &stats() { return _stats; }
    const TransportConfig &config() const { return cfg; }
    cabos::Kernel &kernel() { return _kernel; }

    /**
     * Attach a delivery probe (send/deliver ledger hooks; see
     * transport/probe.hh).  Pass nullptr to detach.  The probe must
     * outlive the transport or be detached first.
     */
    void setProbe(DeliveryProbe *p) { probe = p; }

    // ----- Datagram protocol ----------------------------------------

    /**
     * Best-effort message send.  Large messages are fragmented; the
     * receiver reassembles and delivers only complete messages.  No
     * retransmission: any lost or damaged fragment loses the message.
     *
     * @return true when the message was transmitted (not delivered).
     */
    sim::Task<bool> sendDatagram(CabAddress dst,
                                 std::uint16_t dstMailbox,
                                 sim::PacketView data);

    // ----- Byte-stream protocol ---------------------------------------

    /**
     * Reliable message send: fragments stream under a sliding window
     * with cumulative acks and go-back-N retransmission; completes
     * when every fragment is acknowledged.
     *
     * Sends to the same (CAB, mailbox) flow are serialized; distinct
     * flows proceed concurrently.
     *
     * @return true once acknowledged; false if the flow failed
     *         (maxRetransmits consecutive timeouts).
     */
    sim::Task<bool> sendReliable(CabAddress dst,
                                 std::uint16_t dstMailbox,
                                 sim::PacketView data);

    // ----- Reliable multicast ------------------------------------------

    /** Outcome of one reliable multicast send. */
    struct MulticastResult
    {
        bool ok = true;          ///< Every member acknowledged.
        bool usedHardware = false; ///< At least one packet travelled
                                   ///< a hardware multicast tree.
        std::vector<CabAddress> failed; ///< Members that never
                                        ///< acknowledged (RTO gave up).
    };

    /**
     * Reliable one-to-many send: @p data goes to @p dstMailbox on
     * every CAB in @p dsts.
     *
     * The members' sender flows are driven in lockstep through a
     * shared sequence space, so each fragment is encoded once and —
     * when the fabric allows and @p allowHardware is set — transmitted
     * once down a hardware multicast tree (Topology::multicastRoute).
     * When no tree survives (partition, or the command list would
     * overflow a packet-switched frame), the same encoded packet fans
     * out as per-member unicasts.  Loss recovery is per member: each
     * member's flow keeps its own RTO/Karn estimator and go-back-N
     * retransmission, and retransmits travel unicast to the lagging
     * member only.
     *
     * Self-addressed members are a programming error (collectives
     * keep the root's contribution local).
     *
     * @return Per-member outcome; failed members' flows are reset to
     *         a fresh epoch (like a failed sendReliable).
     */
    sim::Task<MulticastResult>
    sendReliableMulticast(std::vector<CabAddress> dsts,
                          std::uint16_t dstMailbox,
                          sim::PacketView data,
                          bool allowHardware = true);

    // ----- Request-response protocol -----------------------------------

    /**
     * RPC: send @p req to @p serviceMailbox on @p dst and await the
     * response.  Requests are retried (at-least-once; duplicate
     * requests are answered from the server's response cache, so
     * effectively at-most-once execution for cached responses).
     * Requests and responses must fit one MTU.
     *
     * @return The response payload, or nullopt after
     *         maxRequestAttempts timeouts.
     */
    sim::Task<std::optional<std::vector<std::uint8_t>>>
    request(CabAddress dst, std::uint16_t serviceMailbox,
            sim::PacketView req);

    /**
     * Server side: answer the request whose mailbox Message carried
     * @p requestTag.
     */
    void respond(std::uint64_t requestTag, sim::PacketView response);

    // ----- Fault injection ---------------------------------------------

    /**
     * Crash this CAB's transport: all protocol state is lost, every
     * pending reliable send fails, and arriving packets are ignored
     * until restart().  Mirrors pulling a CAB from its slot.
     */
    void crash();

    /**
     * Restart after crash().  Protocol state starts fresh; the
     * message-id space jumps past everything used before the crash
     * (a boot counter), so peers can distinguish new messages from
     * stale pre-crash duplicates.
     */
    void restart();

    bool alive() const { return _alive; }

  private:
    // ----- Sender-side stream state -----------------------------------

    /** One outstanding (sent, unacknowledged) packet.  Holds a
     *  view of the encoded packet; retransmission re-sends the same
     *  shared bytes. */
    struct Unacked
    {
        sim::PacketView pkt;
        Tick sentAt = 0;           ///< First transmission time.
        bool retransmitted = false; ///< Karn: no RTT sample if set.
    };

    struct SenderFlow
    {
        explicit SenderFlow(sim::EventQueue &eq) : mutex(eq) {}

        std::uint32_t nextSeq = 0; ///< Next fresh sequence number.
        std::uint32_t base = 0;    ///< Oldest unacknowledged seq.
        std::map<std::uint32_t, Unacked> unacked;
        cab::TimerId timer = sim::invalidEventId;
        int timeouts = 0;
        bool failed = false;
        sim::AsyncMutex mutex; ///< One message in flight per flow.
        std::vector<std::coroutine_handle<>> waiters;
        /** Multicast sends watching several flows at once register a
         *  channel here; wakeFlow() signals and clears it. */
        std::vector<sim::Channel<bool> *> watchers;

        // Jacobson/Karn retransmission-timeout estimator.
        double srtt = 0;   ///< Smoothed RTT (ticks).
        double rttvar = 0; ///< RTT variation (ticks).
        bool haveSrtt = false;
        Tick rto = 0; ///< Current timeout; 0 = use the config initial.

        std::uint32_t currentMsgId = 0; ///< Message in flight; acks
                                        ///< from earlier epochs are
                                        ///< stale and ignored.
        bool hadTimeout = false; ///< This message saw >= 1 timeout.
        bool stalled = false;    ///< In a timeout-recovery episode.
        Tick stallStart = 0;     ///< When the episode began.
    };

    struct ReceiverFlow
    {
        std::uint32_t expected = 0;
        bool assembling = false;
        std::uint32_t msgId = 0;
        sim::PacketView assembly; ///< Chained fragment views.
        std::uint32_t highestMsgId = 0; ///< Highest message started;
                                        ///< gates epoch resync.
    };

    /** Partially reassembled datagram. */
    struct DatagramAssembly
    {
        std::map<std::uint16_t, sim::PacketView> frags;
        std::uint16_t fragCount = 0;
        Tick started = 0;
    };

    static std::uint64_t
    flowKey(CabAddress peer, std::uint16_t mb)
    {
        return (static_cast<std::uint64_t>(peer) << 16) | mb;
    }

    SenderFlow &senderFlow(CabAddress peer, std::uint16_t mb);

    /** Charge send-path CPU and hand one packet to the datalink. */
    sim::Task<void> transmitPacket(CabAddress dst,
                                   sim::PacketView packet);

    /**
     * Transmit one packet to several members: once down the hardware
     * multicast tree when possible, per-member unicast otherwise.
     * Sets @p usedHardware when the tree path was taken.
     */
    sim::Task<void>
    transmitMulticastPacket(const std::vector<CabAddress> &dsts,
                            sim::PacketView packet, bool allowHardware,
                            bool &usedHardware);

    /** True when @p route + @p packet fit the switching discipline's
     *  wire-frame limit (packet mode only constrains it). */
    bool frameFits(const topo::Route &route,
                   const sim::PacketView &packet) const;

    /** Park until any of @p flows makes progress (ack, failure). */
    sim::Task<void> multicastWait(
        const std::vector<SenderFlow *> &flows);

    /** Fire-and-forget transmit (acks, retransmissions). */
    void transmitAsync(CabAddress dst, sim::PacketView pkt);

    // Receive path.  Payloads are zero-copy slices of the received
    // packet; reassembly chains them without materializing.
    void handlePacket(sim::PacketView &&packet, bool corrupted);
    void processPacket(const Header &h, sim::PacketView &&payload);
    void handleStreamData(const Header &h, sim::PacketView &&payload);
    void handleAck(const Header &h);
    void handleDatagram(const Header &h, sim::PacketView &&payload);
    void handleRequest(const Header &h, sim::PacketView &&payload);
    void handleResponse(const Header &h, sim::PacketView &&payload);

    /** Deliver a complete message into its destination mailbox. */
    bool deliver(std::uint16_t dstMailbox, sim::PacketView &&msg,
                 std::uint64_t tag);

    /**
     * Acknowledge up to @p nextExpected.  @p epoch is the receiver
     * flow's highest accepted message id; the sender discards acks
     * from an earlier epoch (they describe a flow state that a reset
     * or crash has since discarded).
     */
    void sendAck(const Header &h, std::uint32_t nextExpected,
                 std::uint32_t epoch);

    /** Arm/refresh the flow's retransmission timer. */
    void armTimer(CabAddress peer, std::uint16_t mb, SenderFlow &flow);

    /** Timer expiry: go-back-N retransmission. */
    void onTimeout(CabAddress peer, std::uint16_t mb);

    void wakeFlow(SenderFlow &flow);

    /** Feed one RTT measurement into the flow's Jacobson estimator. */
    void rttSample(SenderFlow &flow, Tick sample);

    /**
     * Fail the pending send and reset the flow to a fresh epoch
     * (sequence numbers restart at zero; the next message id starts
     * the new epoch on the receiver).
     */
    void resetFlow(SenderFlow &flow);

    cabos::Kernel &_kernel;
    datalink::Datalink &dl;
    NetworkDirectory &directory;
    CabAddress self;
    TransportConfig cfg;
    TransportStats _stats;
    DeliveryProbe *probe = nullptr;

    std::map<std::uint64_t, std::unique_ptr<SenderFlow>> senders;
    std::map<std::uint64_t, ReceiverFlow> receivers;
    std::map<std::uint64_t, DatagramAssembly> datagramAsm;

    std::uint32_t nextMsgId = 1;
    bool _alive = true;

    /** Message-id jump applied on restart (the boot counter). */
    static constexpr std::uint32_t msgIdRestartJump = 1u << 16;

    // RPC client state.  A timeout pushes nullopt; a response pushes
    // its (possibly empty) payload.
    std::uint32_t nextRequestSeq = 1;
    std::map<std::uint32_t,
             sim::Channel<std::optional<std::vector<std::uint8_t>>> *>
        pendingRequests;

    // RPC server state.
    struct ServerRequest
    {
        CabAddress client;
        std::uint16_t replyMailbox;
        std::uint32_t seq;
    };
    std::map<std::uint64_t, ServerRequest> pendingServer;
    std::map<std::uint64_t, sim::PacketView> responseCache;
    std::deque<std::uint64_t> responseCacheOrder;
};

} // namespace nectar::transport
