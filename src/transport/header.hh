/**
 * @file
 * The Nectar transport packet header.
 *
 * Section 6.2.2: "The current transport protocols are simple and
 * Nectar-specific."  All three protocols (datagram, byte-stream,
 * request-response) share one 32-byte header carrying addressing
 * (CAB + mailbox), sequencing, acknowledgment and window fields,
 * message reassembly coordinates, and a 16-bit checksum computed by
 * the CAB's hardware checksum unit.
 *
 * Fields are serialized big-endian into real bytes: receivers parse
 * what actually travelled through the simulated network.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/buffer.hh"

namespace nectar::transport {

/** Network-wide CAB address. */
using CabAddress = std::uint16_t;

/**
 * Destination address of multicast packets.  A hardware multicast
 * tree delivers one packet to several CABs at once, so no single
 * unicast address fits; receivers accept on the multicast flag
 * instead (their own HUB port received the bytes, which is exactly
 * the membership test the fabric performs).
 */
constexpr CabAddress broadcastAddress = 0xFFFF;

/** Protocol discriminator. */
enum class Proto : std::uint8_t {
    datagram = 1, ///< Best-effort, no delivery guarantee.
    stream = 2,   ///< Reliable byte-stream (windowed, retransmitted).
    request = 3,  ///< RPC request.
    response = 4, ///< RPC response.
    ack = 5,      ///< Cumulative acknowledgment for stream flows.
};

/** Header flags. */
namespace flags {
constexpr std::uint8_t none = 0;
constexpr std::uint8_t lastFragment = 1; ///< Final fragment of a message.
constexpr std::uint8_t multicast = 2;    ///< One-to-many delivery; the
                                         ///< dstCab field holds
                                         ///< broadcastAddress.
} // namespace flags

/** The on-wire transport header. */
struct Header
{
    Proto protocol = Proto::datagram;
    std::uint8_t flags = 0;
    CabAddress srcCab = 0;
    CabAddress dstCab = 0;
    std::uint16_t srcMailbox = 0;
    std::uint16_t dstMailbox = 0;
    std::uint32_t seq = 0;    ///< Packet sequence / request id.
    std::uint32_t ack = 0;    ///< Cumulative ack (next expected seq).
    std::uint16_t window = 0; ///< Receiver window, in packets.
    std::uint32_t msgId = 0;  ///< Message id for reassembly.
    std::uint16_t fragIndex = 0;
    std::uint16_t fragCount = 1;
    std::uint16_t length = 0; ///< Payload bytes following the header.
    std::uint16_t checksum = 0;

    /** Serialized header size in bytes. */
    static constexpr std::uint32_t wireSize = 32;
};

/**
 * Serialize @p h into a fresh 32-byte buffer and chain @p payload
 * behind it — the payload bytes are shared, not copied.  The checksum
 * covers the whole packet (with the checksum field zeroed), computed
 * by streaming the segments as the CAB's checksum hardware does
 * during DMA.
 */
sim::PacketView encodePacket(Header h, const sim::PacketView &payload);

/**
 * Parse and verify a received packet.
 *
 * Header fields are read through the view (register reads); the
 * checksum streams the segments; the payload comes back as a slice of
 * @p packet, so nothing is materialized.  A corruption taint on
 * @p packet propagates into @p payload.
 *
 * @param packet The raw packet view (header + payload).
 * @param[out] payload The payload slice on success.
 * @return The header, or nullopt if the packet is malformed or fails
 *         its checksum.
 */
std::optional<Header> decodePacket(const sim::PacketView &packet,
                                   sim::PacketView &payload);

/** Vector-based convenience wrapper (tests). */
// nectar-lint: copy-ok test convenience; materialization is
// counted by toVector()
inline std::vector<std::uint8_t>
encodePacket(Header h, const std::vector<std::uint8_t> &payload)
{
    return encodePacket(h, sim::PacketView(payload)).toVector();
}

/** Vector-based convenience wrapper (tests). */
inline std::optional<Header>
decodePacket(const std::vector<std::uint8_t> &bytes,
             std::vector<std::uint8_t> &payload)
{
    // nectar-lint: copy-ok test convenience; deliberate deep
    // copy of the caller's bytes into a fresh Buffer
    sim::PacketView view{std::vector<std::uint8_t>(bytes)};
    sim::PacketView out;
    auto h = decodePacket(view, out);
    if (h)
        payload = out.toVector();
    return h;
}

} // namespace nectar::transport
