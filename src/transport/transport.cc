#include "transport.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/owner.hh"
#include "sim/stats.hh"

namespace nectar::transport {

Transport::Transport(cabos::Kernel &kernel, datalink::Datalink &dl,
                     NetworkDirectory &directory, CabAddress self,
                     const TransportConfig &config)
    : sim::Component(kernel.eventq(),
                     kernel.board().name() + ".transport"),
      _kernel(kernel), dl(dl), directory(directory), self(self),
      cfg(config)
{
    dl.rxHandler = [this](sim::PacketView &&packet, bool corrupted) {
        handlePacket(std::move(packet), corrupted);
    };
}

// --------------------------------------------------------------------
// Transmit helpers.
// --------------------------------------------------------------------

sim::Task<void>
Transport::transmitPacket(CabAddress dst, sim::PacketView packet)
{
    if (!_alive)
        co_return;
    co_await _kernel.board().cpu().compute(
        _kernel.costs().transportSendPerPacket);
    if (!_alive)
        co_return;
    _stats.packetsSent.add();
    if (dst == self) {
        // Local loopback: tasks on the same CAB communicate through
        // the mailboxes directly, without touching the Nectar-net.
        handlePacket(std::move(packet), false);
        co_return;
    }
    const topo::Route &route = directory.route(self, dst);
    if (route.empty()) {
        // Link failures partitioned us from the destination.  Drop;
        // the retransmission machinery retries, and succeeds once a
        // link heals or the directory finds a surviving path.
        _stats.unroutable.add();
        co_return;
    }
    bool ok = co_await dl.sendPacket(route, std::move(packet),
                                     cfg.mode);
    if (!ok) {
        // Route establishment failed after datalink retries; for the
        // stream protocol the retransmission machinery covers this,
        // for datagrams it is a loss.
        ;
    }
}

void
Transport::transmitAsync(CabAddress dst, sim::PacketView pkt)
{
    sim::spawn(transmitPacket(dst, std::move(pkt)));
}

// --------------------------------------------------------------------
// Datagram protocol.
// --------------------------------------------------------------------

sim::Task<bool>
Transport::sendDatagram(CabAddress dst, std::uint16_t dstMailbox,
                        sim::PacketView data)
{
    SIM_OWNER_INVARIANT(*this, dl,
                        name() + ": transport off its datalink's cluster");
    _stats.messagesSent.add();
    std::uint32_t msg_id = nextMsgId++;
    if (probe)
        probe->onDatagramSend(self, dst, dstMailbox, msg_id);
    auto frag_count = static_cast<std::uint16_t>(
        std::max<std::size_t>(1, (data.size() + cfg.mtu - 1) / cfg.mtu));

    for (std::uint16_t i = 0; i < frag_count; ++i) {
        std::size_t off = static_cast<std::size_t>(i) * cfg.mtu;
        std::size_t len = std::min<std::size_t>(cfg.mtu,
                                                data.size() - off);
        Header h;
        h.protocol = Proto::datagram;
        h.srcCab = self;
        h.dstCab = dst;
        h.dstMailbox = dstMailbox;
        h.msgId = msg_id;
        h.fragIndex = i;
        h.fragCount = frag_count;
        if (i + 1 == frag_count)
            h.flags |= flags::lastFragment;
        co_await transmitPacket(dst,
                                encodePacket(h, data.slice(off, len)));
    }
    co_return true;
}

// --------------------------------------------------------------------
// Byte-stream protocol (sender side).
// --------------------------------------------------------------------

Transport::SenderFlow &
Transport::senderFlow(CabAddress peer, std::uint16_t mb)
{
    auto key = flowKey(peer, mb);
    auto it = senders.find(key);
    if (it == senders.end()) {
        it = senders
                 .emplace(key,
                          std::make_unique<SenderFlow>(eventq()))
                 .first;
    }
    return *it->second;
}

namespace {

/** Parks the coroutine on a flow's waiter list. */
struct FlowWait
{
    std::vector<std::coroutine_handle<>> &list;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) { list.push_back(h); }
    void await_resume() const {}
};

} // namespace

void
Transport::wakeFlow(SenderFlow &flow)
{
    auto waiters = std::move(flow.waiters);
    flow.waiters.clear();
    for (auto h : waiters) {
        // Zero-delay continuation: the sender parked on this flow
        // resumes ahead of any same-tick arrivals still queued.
        eventq().scheduleAtFront([h] { h.resume(); });
    }
    // Multicast senders watch several flows at once through a
    // channel; signal and clear (they re-register per wait).
    auto watchers = std::move(flow.watchers);
    flow.watchers.clear();
    for (auto *w : watchers)
        w->push(true);
}

void
Transport::armTimer(CabAddress peer, std::uint16_t mb, SenderFlow &flow)
{
    auto &timers = _kernel.board().timers();
    _kernel.board().cpu().charge(_kernel.costs().timerOp);
    if (flow.rto == 0)
        flow.rto = cfg.retransmitTimeout;
    Tick rto = cfg.adaptiveRto ? flow.rto : cfg.retransmitTimeout;
    // Re-arm in place: on the ack-advances-window path the engine
    // just slides the deadline (no unlink/refile) instead of the
    // cancel+set churn this code used to do.
    flow.timer = timers.rearm(flow.timer, rto,
                              [this, peer, mb] { onTimeout(peer, mb); });
}

void
Transport::rttSample(SenderFlow &flow, Tick sample)
{
    _stats.rttSampleNs.record(static_cast<double>(sample));
    if (!flow.haveSrtt) {
        // First measurement (RFC 6298): SRTT = R, RTTVAR = R/2.
        flow.srtt = static_cast<double>(sample);
        flow.rttvar = flow.srtt / 2.0;
        flow.haveSrtt = true;
    } else {
        double err = static_cast<double>(sample) - flow.srtt;
        flow.rttvar = 0.75 * flow.rttvar + 0.25 * std::abs(err);
        flow.srtt += err / 8.0;
    }
    auto rto = static_cast<Tick>(flow.srtt + 4.0 * flow.rttvar);
    flow.rto = std::clamp(rto, cfg.minRto, cfg.maxRto);
    _stats.lastSrtt = flow.srtt;
    _stats.lastRttvar = flow.rttvar;
    _stats.lastRto = flow.rto;
}

void
Transport::resetFlow(SenderFlow &flow)
{
    flow.failed = true;
    flow.unacked.clear();
    // Fresh epoch: the next message restarts the sequence space, and
    // its (strictly larger) message id resynchronizes the receiver.
    flow.base = 0;
    flow.nextSeq = 0;
    flow.stalled = false;
    flow.haveSrtt = false;
    flow.srtt = flow.rttvar = 0;
    flow.rto = cfg.retransmitTimeout;
    _stats.flowEpochBumps.add();
    wakeFlow(flow);
}

void
Transport::onTimeout(CabAddress peer, std::uint16_t mb)
{
    SenderFlow &flow = senderFlow(peer, mb);
    if (flow.unacked.empty())
        return;

    flow.hadTimeout = true;
    if (!flow.stalled) {
        flow.stalled = true;
        flow.stallStart = now();
    }

    if (++flow.timeouts > cfg.maxRetransmits) {
        // The flow is broken: fail the pending send.
        _stats.sendFailures.add();
        resetFlow(flow);
        return;
    }

    if (cfg.adaptiveRto) {
        // Exponential backoff (Karn): double the timeout until an
        // unambiguous sample re-seeds the estimator.
        flow.rto = std::min(flow.rto * 2, cfg.maxRto);
        _stats.rtoBackoffs.add();
    }

    // Go-back-N: retransmit everything outstanding, in order.
    for (auto &[seq, u] : flow.unacked) {
        u.retransmitted = true;
        _stats.retransmissions.add();
        transmitAsync(peer, u.pkt);
    }
    armTimer(peer, mb, flow);
}

sim::Task<bool>
Transport::sendReliable(CabAddress dst, std::uint16_t dstMailbox,
                        sim::PacketView data)
{
    SIM_OWNER_INVARIANT(*this, dl,
                        name() + ": transport off its datalink's cluster");
    _stats.messagesSent.add();
    if (!_alive) {
        _stats.sendFailures.add();
        co_return false;
    }
    SenderFlow &flow = senderFlow(dst, dstMailbox);

    // One message at a time per flow keeps receiver reassembly
    // state simple (fragments of one message are contiguous in
    // sequence space).
    co_await flow.mutex.lock();
    if (!_alive) {
        _stats.sendFailures.add();
        flow.mutex.unlock();
        co_return false;
    }
    flow.failed = false;
    flow.timeouts = 0;
    flow.hadTimeout = false;

    std::uint32_t msg_id = nextMsgId++;
    flow.currentMsgId = msg_id;
    if (probe)
        probe->onReliableSend(self, dst, dstMailbox, msg_id,
                              data.size());
    auto frag_count = static_cast<std::uint16_t>(
        std::max<std::size_t>(1, (data.size() + cfg.mtu - 1) / cfg.mtu));

    for (std::uint16_t i = 0; i < frag_count && !flow.failed; ++i) {
        // Sliding window: at most windowPackets outstanding.
        while (!flow.failed &&
               flow.nextSeq - flow.base >= cfg.windowPackets)
            co_await FlowWait{flow.waiters};
        if (flow.failed)
            break;

        std::size_t off = static_cast<std::size_t>(i) * cfg.mtu;
        std::size_t len = std::min<std::size_t>(cfg.mtu,
                                                data.size() - off);
        Header h;
        h.protocol = Proto::stream;
        h.srcCab = self;
        h.dstCab = dst;
        h.dstMailbox = dstMailbox;
        h.seq = flow.nextSeq++;
        h.window = static_cast<std::uint16_t>(cfg.windowPackets);
        h.msgId = msg_id;
        h.fragIndex = i;
        h.fragCount = frag_count;
        if (i + 1 == frag_count)
            h.flags |= flags::lastFragment;

        auto pkt = encodePacket(h, data.slice(off, len));
        // The retransmit queue holds a view of the same packet bytes,
        // not a copy.
        flow.unacked.emplace(h.seq, Unacked{pkt, now(), false});
        armTimer(dst, dstMailbox, flow);
        co_await transmitPacket(dst, std::move(pkt));
    }

    // Wait until everything is acknowledged (or the flow failed).
    while (!flow.failed && flow.base != flow.nextSeq)
        co_await FlowWait{flow.waiters};

    bool ok = !flow.failed;
    if (ok && flow.hadTimeout)
        _stats.messagesRecovered.add();
    if (probe)
        probe->onReliableOutcome(self, dst, dstMailbox, msg_id, ok);
    flow.mutex.unlock();
    co_return ok;
}

// --------------------------------------------------------------------
// Reliable multicast (sender side).
// --------------------------------------------------------------------

bool
Transport::frameFits(const topo::Route &route,
                     const sim::PacketView &packet) const
{
    if (cfg.mode != datalink::SwitchMode::packet)
        return true; // circuit switching streams; no frame limit
    // Mirror the datalink's packet-mode frame check: SOP + EOP +
    // data + per-hop command + closeAll must fit the input queues.
    std::uint32_t wire = 2 +
        static_cast<std::uint32_t>(packet.size()) +
        3 * (static_cast<std::uint32_t>(route.size()) + 1);
    return wire <= dl.config().maxWirePacketBytes;
}

sim::Task<void>
Transport::transmitMulticastPacket(
    const std::vector<CabAddress> &dsts, sim::PacketView packet,
    bool allowHardware, bool &usedHardware)
{
    if (!_alive)
        co_return;
    co_await _kernel.board().cpu().compute(
        _kernel.costs().transportSendPerPacket);
    if (!_alive)
        co_return;

    if (allowHardware && dsts.size() > 1) {
        const topo::Route &tree = directory.multicastRoute(self, dsts);
        if (!tree.empty() && frameFits(tree, packet)) {
            // One transmission covers every member: the HUB crossbar
            // fans the bytes out along the tree (Section 4.2.2).
            _stats.packetsSent.add();
            _stats.mcastHwPackets.add();
            usedHardware = true;
            co_await dl.sendPacket(tree, std::move(packet), cfg.mode);
            co_return;
        }
        // No surviving tree, or the open list would overflow a
        // packet-switched frame: spill to unicast fan-out.
        _stats.mcastFallbacks.add();
    }
    for (CabAddress dst : dsts) {
        const topo::Route &route = directory.route(self, dst);
        if (route.empty()) {
            _stats.unroutable.add();
            continue; // member's RTO machinery keeps retrying
        }
        _stats.packetsSent.add();
        _stats.mcastUnicastPackets.add();
        co_await dl.sendPacket(route, packet, cfg.mode);
    }
}

sim::Task<void>
Transport::multicastWait(const std::vector<SenderFlow *> &flows)
{
    sim::Channel<bool> progress(eventq());
    for (auto *f : flows)
        f->watchers.push_back(&progress);
    co_await progress.pop();
    for (auto *f : flows)
        std::erase(f->watchers, &progress);
}

sim::Task<Transport::MulticastResult>
Transport::sendReliableMulticast(std::vector<CabAddress> dsts,
                                 std::uint16_t dstMailbox,
                                 sim::PacketView data,
                                 bool allowHardware)
{
    std::sort(dsts.begin(), dsts.end());
    dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
    if (dsts.empty())
        sim::fatal(name() + ": multicast needs destinations");
    for (CabAddress d : dsts) {
        if (d == self)
            sim::fatal(name() + ": multicast to self (keep the local "
                       "contribution local)");
    }

    _stats.messagesSent.add();
    _stats.mcastSends.add();
    MulticastResult result;
    if (!_alive) {
        _stats.sendFailures.add();
        result.ok = false;
        result.failed = dsts;
        co_return result;
    }

    std::vector<SenderFlow *> flows;
    flows.reserve(dsts.size());
    for (CabAddress d : dsts)
        flows.push_back(&senderFlow(d, dstMailbox));
    // dsts is sorted, so nested multicasts acquire in one global
    // order; unicast senders hold at most one flow mutex.
    for (auto *f : flows)
        co_await f->mutex.lock();

    if (!_alive) {
        _stats.sendFailures.add();
        result.ok = false;
        result.failed = dsts;
        for (auto *f : flows)
            f->mutex.unlock();
        co_return result;
    }

    // Fragments share one sequence space across every member, so
    // each fragment is encoded exactly once.  Flows idle at
    // different sequence origins (earlier unicast traffic on the
    // same mailbox) are realigned to zero; receivers resynchronize
    // on the fresh message id, exactly as after a flow reset.
    bool aligned = true;
    for (auto *f : flows)
        if (f->nextSeq != flows.front()->nextSeq)
            aligned = false;
    if (!aligned) {
        for (auto *f : flows)
            f->base = f->nextSeq = 0;
        _stats.mcastRealigns.add();
    }

    std::uint32_t msg_id = nextMsgId++;
    for (auto *f : flows) {
        f->failed = false;
        f->timeouts = 0;
        f->hadTimeout = false;
        f->currentMsgId = msg_id;
    }
    if (probe) {
        for (CabAddress d : dsts)
            probe->onReliableSend(self, d, dstMailbox, msg_id,
                                  data.size());
    }

    auto anyActive = [&flows] {
        for (auto *f : flows)
            if (!f->failed)
                return true;
        return false;
    };
    auto windowFull = [&flows, this] {
        for (auto *f : flows)
            if (!f->failed &&
                f->nextSeq - f->base >= cfg.windowPackets)
                return true;
        return false;
    };

    std::uint32_t seq0 = flows.front()->nextSeq;
    auto frag_count = static_cast<std::uint16_t>(
        std::max<std::size_t>(1, (data.size() + cfg.mtu - 1) / cfg.mtu));

    for (std::uint16_t i = 0; i < frag_count; ++i) {
        // The window advances at the pace of the slowest member.
        while (anyActive() && windowFull())
            co_await multicastWait(flows);
        if (!anyActive())
            break;

        std::size_t off = static_cast<std::size_t>(i) * cfg.mtu;
        std::size_t len = std::min<std::size_t>(cfg.mtu,
                                                data.size() - off);
        Header h;
        h.protocol = Proto::stream;
        h.flags = flags::multicast;
        h.srcCab = self;
        h.dstCab = broadcastAddress;
        h.dstMailbox = dstMailbox;
        h.seq = seq0 + i;
        h.window = static_cast<std::uint16_t>(cfg.windowPackets);
        h.msgId = msg_id;
        h.fragIndex = i;
        h.fragCount = frag_count;
        if (i + 1 == frag_count)
            h.flags |= flags::lastFragment;

        auto pkt = encodePacket(h, data.slice(off, len));
        // Every member's retransmit queue holds a view of the same
        // packet bytes; per-member timers retransmit unicast.
        std::vector<CabAddress> active;
        for (std::size_t j = 0; j < flows.size(); ++j) {
            SenderFlow &f = *flows[j];
            if (f.failed)
                continue;
            f.nextSeq = h.seq + 1;
            f.unacked.emplace(h.seq, Unacked{pkt, now(), false});
            armTimer(dsts[j], dstMailbox, f);
            active.push_back(dsts[j]);
        }
        co_await transmitMulticastPacket(active, std::move(pkt),
                                         allowHardware,
                                         result.usedHardware);
    }

    // Wait until every surviving member acknowledged everything.
    for (;;) {
        bool pending = false;
        for (auto *f : flows)
            if (!f->failed && f->base != f->nextSeq)
                pending = true;
        if (!pending)
            break;
        co_await multicastWait(flows);
    }

    bool recovered = false;
    for (std::size_t j = 0; j < flows.size(); ++j) {
        if (flows[j]->failed) {
            result.failed.push_back(dsts[j]);
            _stats.mcastMemberFailures.add();
        } else if (flows[j]->hadTimeout) {
            recovered = true;
        }
    }
    result.ok = result.failed.empty();
    if (recovered)
        _stats.messagesRecovered.add();
    if (probe) {
        for (std::size_t j = 0; j < flows.size(); ++j)
            probe->onReliableOutcome(self, dsts[j], dstMailbox, msg_id,
                                     !flows[j]->failed);
    }
    for (auto *f : flows)
        f->mutex.unlock();
    co_return result;
}

void
Transport::handleAck(const Header &h)
{
    _stats.acksReceived.add();
    // The ack's srcMailbox echoes the flow's destination mailbox.
    SenderFlow &flow = senderFlow(h.srcCab, h.srcMailbox);
    if (h.msgId < flow.currentMsgId) {
        // The ack describes a flow epoch discarded by a reset or
        // crash; acting on its cumulative ack would skip unsent
        // sequence numbers of the new epoch (silent loss).
        _stats.staleAcks.add();
        return;
    }
    if (h.ack <= flow.base)
        return; // stale or duplicate ack
    flow.base = std::min(h.ack, flow.nextSeq);
    flow.timeouts = 0;

    // RTT from the highest packet this ack newly covers.  Karn's
    // rule: retransmitted packets give ambiguous samples, skip them.
    auto newest = flow.unacked.find(flow.base - 1);
    if (newest != flow.unacked.end()) {
        if (newest->second.retransmitted)
            _stats.karnSuppressed.add();
        else
            rttSample(flow, now() - newest->second.sentAt);
    }

    while (!flow.unacked.empty() &&
           flow.unacked.begin()->first < flow.base)
        flow.unacked.erase(flow.unacked.begin());

    if (flow.stalled) {
        // Forward progress after a timeout episode: recovered.
        _stats.recoveryNs.record(
            static_cast<double>(now() - flow.stallStart));
        flow.stalled = false;
    }

    auto &timers = _kernel.board().timers();
    if (flow.unacked.empty()) {
        if (timers.armed(flow.timer))
            timers.cancel(flow.timer);
    } else {
        armTimer(h.srcCab, h.srcMailbox, flow);
    }
    wakeFlow(flow);
}

// --------------------------------------------------------------------
// Receive path.
// --------------------------------------------------------------------

void
Transport::handlePacket(sim::PacketView &&packet, bool corrupted)
{
    if (!_alive) {
        // A crashed CAB's board is dark: arriving packets vanish.
        _stats.crashDrops.add();
        return;
    }
    _stats.packetsReceived.add();

    sim::PacketView payload;
    auto header = decodePacket(packet, payload);
    if (!header || corrupted || packet.corrupted()) {
        // Damaged packets are dropped; the byte-stream protocol's
        // retransmission recovers them (Section 6.2.2).
        _stats.checksumDrops.add();
        return;
    }
    if (header->dstCab != self &&
        !(header->flags & flags::multicast)) {
        _stats.checksumDrops.add(); // misrouted; treat as damage
        return;
    }

    // Charge the receive-path CPU cost, then process.  The payload
    // view is captured by value: segment descriptors and refcounts,
    // no payload bytes.
    Header h = *header;
    _kernel.board().cpu().chargeThen(
        _kernel.costs().transportRecvPerPacket,
        [this, h, payload = std::move(payload)]() mutable {
            processPacket(h, std::move(payload));
        });
}

void
Transport::processPacket(const Header &h, sim::PacketView &&payload)
{
    switch (h.protocol) {
      case Proto::stream:
        handleStreamData(h, std::move(payload));
        break;
      case Proto::ack:
        handleAck(h);
        break;
      case Proto::datagram:
        handleDatagram(h, std::move(payload));
        break;
      case Proto::request:
        handleRequest(h, std::move(payload));
        break;
      case Proto::response:
        handleResponse(h, std::move(payload));
        break;
      default:
        _stats.checksumDrops.add();
        break;
    }
}

bool
Transport::deliver(std::uint16_t dstMailbox, sim::PacketView &&msg,
                   std::uint64_t tag)
{
    cabos::Mailbox *box = _kernel.mailbox(dstMailbox);
    if (!box)
        return false;
    cabos::Message m(std::move(msg), tag);
    if (!box->tryPut(std::move(m)))
        return false;
    _stats.messagesDelivered.add();
    return true;
}

void
Transport::sendAck(const Header &h, std::uint32_t nextExpected,
                   std::uint32_t epoch)
{
    Header ack;
    ack.protocol = Proto::ack;
    ack.srcCab = self;
    ack.dstCab = h.srcCab;
    // Echo the flow's destination mailbox so the sender can find its
    // flow state.
    ack.srcMailbox = h.dstMailbox;
    ack.ack = nextExpected;
    ack.msgId = epoch;
    _stats.acksSent.add();
    transmitAsync(h.srcCab, encodePacket(ack, sim::PacketView{}));
}

void
Transport::handleStreamData(const Header &h, sim::PacketView &&payload)
{
    auto key = flowKey(h.srcCab, h.dstMailbox);
    ReceiverFlow &flow = receivers[key];

    if (flow.expected != 0 && h.seq == 0 && h.fragIndex == 0 &&
        h.msgId > flow.highestMsgId) {
        // The peer reset its flow epoch (send failure or CAB
        // restart) and is starting over from sequence zero with a
        // message id beyond anything seen: resynchronize.  Stale
        // retransmits of old messages fail the msgId test and fall
        // through to the duplicate path instead.
        flow.expected = 0;
        flow.assembling = false;
        flow.assembly = sim::PacketView{};
        _stats.flowResyncs.add();
    }

    if (h.seq < flow.expected) {
        _stats.duplicates.add();
        sendAck(h, flow.expected, flow.highestMsgId);
        return;
    }
    if (h.seq > flow.expected) {
        // Go-back-N receiver: out-of-order packets are discarded and
        // the sender learns the next needed seq from the dup-ack.
        _stats.outOfOrder.add();
        sendAck(h, flow.expected, flow.highestMsgId);
        return;
    }

    // In-order packet: reassemble.
    if (h.fragIndex == 0) {
        flow.assembling = true;
        flow.msgId = h.msgId;
        flow.assembly = sim::PacketView{};
        flow.highestMsgId = std::max(flow.highestMsgId, h.msgId);
    }
    if (!flow.assembling || flow.msgId != h.msgId) {
        // Mid-message fragment without a start: protocol confusion
        // (e.g. after a failed flow); resynchronize by dropping.
        flow.assembling = false;
        sendAck(h, flow.expected, flow.highestMsgId);
        return;
    }

    if (h.flags & flags::lastFragment) {
        // Deliver before acknowledging: a full mailbox stalls the
        // flow (backpressure) rather than losing the message.  The
        // delivered message chains the fragment views; nothing is
        // copied (delivery stalls keep the chain for the retry).
        sim::PacketView whole =
            sim::PacketView::concat(flow.assembly, payload);
        std::size_t bytes = whole.size();
        if (!deliver(h.dstMailbox, std::move(whole), h.msgId)) {
            _stats.deliveryStalls.add();
            sendAck(h, flow.expected, flow.highestMsgId);
            return;
        }
        if (probe)
            probe->onDeliver(h.srcCab, self, h.dstMailbox, h.msgId,
                             true, bytes);
        flow.assembling = false;
        flow.assembly = sim::PacketView{};
    } else {
        flow.assembly.append(payload);
    }

    ++flow.expected;
    sendAck(h, flow.expected, flow.highestMsgId);
}

void
Transport::handleDatagram(const Header &h, sim::PacketView &&payload)
{
    if (h.fragCount <= 1) {
        std::size_t bytes = payload.size();
        if (!deliver(h.dstMailbox, std::move(payload), h.msgId)) {
            _stats.datagramsDropped.add();
        } else if (probe) {
            probe->onDeliver(h.srcCab, self, h.dstMailbox, h.msgId,
                             false, bytes);
        }
        return;
    }

    // Multi-fragment datagram: reassemble per (source, message).
    auto key = (static_cast<std::uint64_t>(h.srcCab) << 32) | h.msgId;
    DatagramAssembly &as = datagramAsm[key];
    if (as.frags.empty()) {
        as.fragCount = h.fragCount;
        as.started = now();
    }
    as.frags[h.fragIndex] = std::move(payload);
    if (as.frags.size() < as.fragCount)
        return;

    sim::PacketView whole;
    for (auto &[idx, frag] : as.frags)
        whole.append(frag);
    datagramAsm.erase(key);
    std::size_t bytes = whole.size();
    if (!deliver(h.dstMailbox, std::move(whole), h.msgId)) {
        _stats.datagramsDropped.add();
    } else if (probe) {
        probe->onDeliver(h.srcCab, self, h.dstMailbox, h.msgId, false,
                         bytes);
    }

    // Opportunistically discard stale partial datagrams (a fragment
    // was lost and will never arrive).
    for (auto it = datagramAsm.begin(); it != datagramAsm.end();) {
        if (now() - it->second.started > 100 * ms)
            it = datagramAsm.erase(it);
        else
            ++it;
    }
}

// --------------------------------------------------------------------
// Request-response protocol.
// --------------------------------------------------------------------

sim::Task<std::optional<std::vector<std::uint8_t>>>
Transport::request(CabAddress dst, std::uint16_t serviceMailbox,
                   sim::PacketView req)
{
    if (req.size() > cfg.mtu)
        sim::fatal(name() + ": request exceeds one MTU; use the "
                   "byte-stream protocol for bulk data");

    _stats.requestsSent.add();
    std::uint32_t seq = nextRequestSeq++;

    Header h;
    h.protocol = Proto::request;
    h.srcCab = self;
    h.dstCab = dst;
    h.dstMailbox = serviceMailbox;
    h.seq = seq;
    auto pkt = encodePacket(h, req);

    sim::Channel<std::optional<std::vector<std::uint8_t>>> responses(
        eventq());
    pendingRequests[seq] = &responses;

    std::optional<std::vector<std::uint8_t>> result;
    for (int attempt = 0; attempt < cfg.maxRequestAttempts; ++attempt) {
        if (attempt > 0)
            _stats.requestRetries.add();
        co_await transmitPacket(dst, pkt);

        // A timeout pushes nullopt; a real (possibly empty) response
        // pushes a value.
        // nectar-lint: capture-ok timer fires only while this frame
        // is suspended on pop() below, and is cancelled on resume
        sim::EventId timer = eventq().scheduleIn(
            cfg.requestTimeout,
            [&responses] { responses.push(std::nullopt); },
            sim::EventPriority::software);
        auto r = co_await responses.pop();
        eventq().cancel(timer);
        if (r.has_value()) {
            result = std::move(r);
            break;
        }
    }
    pendingRequests.erase(seq);
    if (!result)
        _stats.requestsFailed.add();
    co_return result;
}

void
Transport::handleRequest(const Header &h, sim::PacketView &&payload)
{
    std::uint64_t tag =
        (static_cast<std::uint64_t>(h.srcCab) << 32) | h.seq;

    // Duplicate suppression: answer repeats from the response cache.
    auto cached = responseCache.find(tag);
    if (cached != responseCache.end()) {
        _stats.cachedResponseHits.add();
        Header rh;
        rh.protocol = Proto::response;
        rh.srcCab = self;
        rh.dstCab = h.srcCab;
        rh.seq = h.seq;
        transmitAsync(h.srcCab, encodePacket(rh, cached->second));
        return;
    }
    if (pendingServer.count(tag))
        return; // already queued for the server thread

    pendingServer[tag] = ServerRequest{h.srcCab, h.srcMailbox, h.seq};
    if (!deliver(h.dstMailbox, std::move(payload), tag)) {
        // Service mailbox missing or full: drop; the client retries.
        pendingServer.erase(tag);
        _stats.datagramsDropped.add();
    }
}

void
Transport::respond(std::uint64_t requestTag, sim::PacketView response)
{
    if (response.size() > cfg.mtu)
        sim::fatal(name() + ": response exceeds one MTU");

    auto it = pendingServer.find(requestTag);
    if (it == pendingServer.end())
        return; // duplicate respond or unknown tag
    ServerRequest sr = it->second;
    pendingServer.erase(it);

    Header h;
    h.protocol = Proto::response;
    h.srcCab = self;
    h.dstCab = sr.client;
    h.dstMailbox = sr.replyMailbox;
    h.seq = sr.seq;
    _stats.responsesServed.add();
    transmitAsync(sr.client, encodePacket(h, response));

    // Cache for duplicate-request suppression (bounded FIFO).
    responseCache[requestTag] = std::move(response);
    responseCacheOrder.push_back(requestTag);
    while (responseCacheOrder.size() > cfg.responseCacheSize) {
        responseCache.erase(responseCacheOrder.front());
        responseCacheOrder.pop_front();
    }
}

void
Transport::handleResponse(const Header &h, sim::PacketView &&payload)
{
    auto it = pendingRequests.find(h.seq);
    if (it == pendingRequests.end())
        return; // late duplicate response
    // The response crosses back into the caller as owned bytes (the
    // application boundary): one materialization, at most one MTU.
    it->second->push(payload.toVector());
}

// --------------------------------------------------------------------
// Fault injection: CAB crash and restart.
// --------------------------------------------------------------------

void
Transport::crash()
{
    if (!_alive)
        return;
    _alive = false;

    auto &timers = _kernel.board().timers();
    for (auto &[key, flowPtr] : senders) {
        SenderFlow &flow = *flowPtr;
        if (timers.armed(flow.timer))
            timers.cancel(flow.timer);
        bool active = !flow.unacked.empty() ||
                      flow.base != flow.nextSeq;
        if (active)
            _stats.sendFailures.add();
        resetFlow(flow);
    }

    // Receiver-side and RPC state is gone with the board's memory.
    // Sender flow objects stay (coroutines may hold references);
    // their contents were reset above.
    receivers.clear();
    datagramAsm.clear();
    pendingServer.clear();
    responseCache.clear();
    responseCacheOrder.clear();

    // Fail pending RPCs promptly: the attempt loop retries against a
    // dead board and gives up after maxRequestAttempts.
    for (auto &[seq, chan] : pendingRequests)
        chan->push(std::nullopt);

    if (probe)
        probe->onCrash(self);
}

void
Transport::restart()
{
    if (_alive)
        return;
    _alive = true;
    // The message-id space jumps past everything used before the
    // crash (a boot counter in stable storage), so receivers treat
    // post-restart messages as fresh epochs and stale pre-crash
    // retransmits as duplicates.
    nextMsgId += msgIdRestartJump;
    if (probe)
        probe->onRestart(self);
}

} // namespace nectar::transport
