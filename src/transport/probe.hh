/**
 * @file
 * Delivery probe: transport-layer observation hooks.
 *
 * A DeliveryProbe sees every end-to-end transport event the
 * correctness argument rests on: reliable (byte-stream and multicast
 * member) sends and their final outcomes, datagram sends, completed
 * message deliveries into mailboxes, and CAB crash/restart boundaries.
 * The chaos-fuzzing oracle (fault::DeliveryOracle) implements this
 * interface to maintain a global send/deliver ledger and check the
 * exactly-once / no-silent-loss properties under fault campaigns.
 *
 * Hooks fire synchronously on the simulation's deterministic event
 * order, so a probe sees the same sequence on every run of a seeded
 * campaign.  A null probe costs one pointer test per hook site.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "transport/header.hh"

namespace nectar::transport {

/** Observation hooks for end-to-end delivery accounting. */
class DeliveryProbe
{
  public:
    virtual ~DeliveryProbe() = default;

    /**
     * A reliable (byte-stream) message entered the send path.  Fired
     * once per unicast send and once per member of a reliable
     * multicast; (src, msgId) identifies the message, (src, msgId,
     * dst) the expected delivery.
     */
    virtual void onReliableSend(CabAddress src, CabAddress dst,
                                std::uint16_t dstMailbox,
                                std::uint32_t msgId,
                                std::size_t bytes) = 0;

    /**
     * A reliable send completed: @p ok mirrors what the application
     * was told.  Every onReliableSend is eventually paired with
     * exactly one outcome (liveness; the oracle's wedge check).
     */
    virtual void onReliableOutcome(CabAddress src, CabAddress dst,
                                   std::uint16_t dstMailbox,
                                   std::uint32_t msgId, bool ok) = 0;

    /** A best-effort datagram entered the send path. */
    virtual void onDatagramSend(CabAddress src, CabAddress dst,
                                std::uint16_t dstMailbox,
                                std::uint32_t msgId) = 0;

    /**
     * A complete message was placed in a destination mailbox.
     * @p reliable distinguishes byte-stream from datagram traffic.
     * RPC traffic is not reported: request retry is at-least-once by
     * design, so delivery counts carry no invariant.
     */
    virtual void onDeliver(CabAddress src, CabAddress dst,
                           std::uint16_t dstMailbox,
                           std::uint32_t msgId, bool reliable,
                           std::size_t bytes) = 0;

    /**
     * The CAB at @p addr crashed: its board memory — mailboxes,
     * protocol state, everything — is gone.  Deliveries made into it
     * before the crash no longer exist for duplicate accounting.
     */
    virtual void onCrash(CabAddress addr) = 0;

    /** ... and booted fresh. */
    virtual void onRestart(CabAddress addr) = 0;
};

} // namespace nectar::transport
