/**
 * @file
 * System topologies: HUB clusters connected by inter-HUB fibers.
 *
 * Sections 3.1 and 4.2: a single-HUB system connects all CABs to one
 * HUB (Figure 2); larger systems connect HUB clusters "in any topology
 * appropriate to the application environment", e.g. a 2-D mesh
 * (Figure 4).  Because HUB-HUB and CAB-HUB ports are identical, the
 * same attachment primitive serves both.
 *
 * Topology also computes routes: the ordered (hub, output port) hops a
 * command packet must open to reach a destination, including multicast
 * trees with the command ordering of Section 4.2.2.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <mutex>
#include <vector>

#include "hub/hub.hh"
#include "topo/description.hh"
#include "topo/route_table.hh"
#include "topo/wiring.hh"

namespace nectar::topo {

/** An endpoint attachment point: which HUB and which port. */
struct Endpoint
{
    int hubIndex = -1;
    hub::PortId port = hub::noPort;

    bool operator==(const Endpoint &) const = default;
};

/** One hop of a route: a connection to open on a specific HUB. */
struct Hop
{
    std::uint8_t hubId = 0;      ///< HUB addressed by the command.
    hub::PortId outPort = hub::noPort; ///< Output port to open.
    bool reply = false;          ///< Request a reply on this open.

    bool operator==(const Hop &) const = default;
};

/** A route: the hops in command-packet order. */
using Route = std::vector<Hop>;

/**
 * A set of HUBs, their interconnections, and attached endpoints.
 */
class Topology
{
  public:
    /**
     * @param eq Event queue.
     * @param config Configuration applied to every HUB.
     */
    explicit Topology(sim::EventQueue &eq,
                      const hub::HubConfig &config = {});

    /**
     * Shard-aware construction: HUB @p h (and everything attached to
     * it) lives on @p shards.queueFor(h); each trunk fiber lives on
     * its transmitting HUB's queue and is routeCross()-marked so
     * deliveries cross clusters through the shard set's mailboxes
     * (or, for a single-queue shard set, in the cross-priority band).
     * The shard set must outlive the topology and offer at least as
     * many clusters as HUBs get added.
     */
    explicit Topology(sim::ShardSet &shards,
                      const hub::HubConfig &config = {});

    /**
     * Create a HUB.  Its datalink hub id is its index (so ids stay
     * unique and 8-bit addressable).
     * @return The new HUB's index.
     */
    int addHub(const std::string &name = "");

    int numHubs() const { return static_cast<int>(hubs.size()); }

    hub::Hub &hubAt(int i);
    const hub::Hub &hubAt(int i) const;

    /**
     * Connect two HUBs with a fiber pair.
     * Both ports must be unused.  Parallel links between the same
     * HUB pair are allowed (and give the mesh redundancy to reroute
     * around a failed link).
     *
     * @param width Bonded fiber lanes: the trunk serializes bytes
     *        @p width times faster than a single TAXI pair.
     * @return Index of the new link in hubLinks().
     */
    int linkHubs(int a, hub::PortId pa, int b, hub::PortId pb,
                 sim::Tick propDelay = 0, int width = 1);

    /**
     * Attach an endpoint (CAB or test harness) to a HUB port.
     *
     * @return The fiber link the endpoint transmits on.
     */
    phys::FiberLink &attachEndpoint(phys::FiberSink &rx, int hubIndex,
                                    hub::PortId port,
                                    const std::string &name,
                                    sim::Tick propDelay = 0);

    /** True if the port on the given HUB is not yet wired. */
    bool portFree(int hubIndex, hub::PortId port) const;

    /** First free port on a HUB, or noPort. */
    hub::PortId firstFreePort(int hubIndex) const;

    // ----- Link health ----------------------------------------------

    /**
     * Declare the inter-HUB link attached at (@p hub, @p port) down:
     * both of its fibers stop delivering and route() stops using it.
     * Bumps linkVersion() so route caches invalidate.
     */
    void markLinkDown(int hub, hub::PortId port);

    /** Reverse of markLinkDown(). */
    void markLinkUp(int hub, hub::PortId port);

    /**
     * Convenience: mark the first currently-up link between hubs
     * @p a and @p b down (markLinkUpBetween: the first down one up).
     */
    void markLinkDownBetween(int a, int b);
    void markLinkUpBetween(int a, int b);

    /** True if the link attached at (@p hub, @p port) is up. */
    bool linkIsUp(int hub, hub::PortId port) const;

    /**
     * Monotonic counter bumped by every markLinkDown/markLinkUp;
     * route caches compare it to decide whether to recompute.
     */
    std::uint64_t linkVersion() const { return _linkVersion; }

    /** True if a surviving path connects the two hubs. */
    bool reachable(int fromHub, int toHub) const;

    /** One inter-HUB link and its fibers. */
    struct HubLink
    {
        int a = -1;
        hub::PortId pa = hub::noPort;
        int b = -1;
        hub::PortId pb = hub::noPort;
        phys::FiberLink *ab = nullptr; ///< Fiber a -> b.
        phys::FiberLink *ba = nullptr; ///< Fiber b -> a.
        bool up = true;
    };

    const std::vector<HubLink> &hubLinks() const { return _hubLinks; }

    /**
     * The fiber pair attaching the endpoint at (@p hub, @p port);
     * forward is endpoint -> HUB.  Fatal if nothing is attached
     * there.
     */
    const FiberPair &endpointFibers(int hub, hub::PortId port) const;

    /**
     * Compute the shortest route from @p from to @p to over the
     * links currently up.
     *
     * The final hop opens the destination CAB's port and carries the
     * reply request; intermediate hops open inter-HUB connections.
     *
     * @return The best surviving route, or an empty route when the
     *         destination hub is unreachable (link failures can
     *         partition the mesh; callers treat an empty route as a
     *         transient transmission failure and retry, so the
     *         system heals when the link comes back).
     * @throws sim::FatalError only for invalid endpoints.
     */
    Route route(const Endpoint &from, const Endpoint &to) const;

    /**
     * Compute a multicast tree from @p from to several destinations,
     * in the command order of Section 4.2.2: depth-first, with a
     * reply requested on each terminal (CAB-port) open.
     *
     * Duplicate destinations are opened once.  May be empty when
     * link failures leave any member unreachable (mirroring route():
     * callers fall back to per-member unicast fan-out).
     */
    Route multicastRoute(const Endpoint &from,
                         const std::vector<Endpoint> &to) const;

    /** Number of HUB-to-HUB hops on the route between two endpoints. */
    int hopCount(const Endpoint &from, const Endpoint &to) const;

    /**
     * The compiled route table for the current link state.  Compiled
     * lazily on first use and recompiled after any linkVersion()
     * bump; route() and multicastRoute() read it instead of running
     * a BFS per call.
     */
    const RouteTable &routeTable() const;

    /** How many times the table has been (re)compiled (for tests
     *  and the fabric benchmark). */
    std::uint64_t tableCompiles() const { return _compiles; }

    Wiring &wiring() { return _wiring; }

    /** The shard set this topology was built on, or nullptr for the
     *  classic single-queue construction. */
    sim::ShardSet *shards() { return _shards; }

    /** The queue HUB @p hubIndex's cluster executes on (the default
     *  queue when no shard set is attached). */
    sim::EventQueue &queueOf(int hubIndex);

  private:
    /** Per-hub adjacency: (neighbor hub, my port toward it). */
    struct Adj
    {
        int neighbor;
        hub::PortId myPort;
        int linkIndex; ///< Into _hubLinks, for health lookups.
    };

    /** Index into _hubLinks of the link at (hub, port), or -1. */
    int findHubLink(int hub, hub::PortId port) const;

    void setLinkState(int linkIndex, bool up);

    sim::EventQueue &eq;
    sim::ShardSet *_shards = nullptr;
    hub::HubConfig config;
    Wiring _wiring;
    std::vector<std::unique_ptr<hub::Hub>> hubs;
    std::vector<std::vector<Adj>> adjacency;
    std::vector<std::vector<bool>> portUsed;
    std::vector<HubLink> _hubLinks;
    std::map<std::pair<int, int>, FiberPair> endpointLinks;
    std::uint64_t _linkVersion = 0;

    // Lazily compiled route table (see routeTable()).  route() is
    // const, so the cache is mutable; _tableVersion records the
    // linkVersion() the table was compiled against.  The mutex makes
    // the first-use compile safe when parallel-engine workers route
    // concurrently.
    mutable std::mutex _tableMutex;
    mutable std::unique_ptr<RouteTable> _table;
    mutable std::uint64_t _tableVersion = 0;
    mutable std::uint64_t _compiles = 0;
};

/**
 * Build the HUBs and trunks of @p d into a live Topology.  CAB
 * attachment is left to the caller (the CAB layer / nectarine), as
 * with the historical builders.  A non-zero d.hubPorts overrides
 * config.numPorts; everything else in @p config applies unchanged.
 */
std::unique_ptr<Topology>
buildTopology(sim::EventQueue &eq, const TopologyDescription &d,
              const hub::HubConfig &config = {});

/**
 * Shard-aware buildTopology(): same declared-order construction on
 * @p shards (one cluster per HUB).  Fatal when the shard set has
 * fewer clusters than the description has HUBs.
 */
std::unique_ptr<Topology>
buildTopology(sim::ShardSet &shards, const TopologyDescription &d,
              const hub::HubConfig &config = {});

/**
 * Build a single-HUB star (Figure 2): one HUB, @p cabs endpoints
 * expected on ports [0, cabs).  Endpoint attachment is left to the
 * caller (the CAB layer).
 */
std::unique_ptr<Topology>
makeSingleHub(sim::EventQueue &eq, const hub::HubConfig &config = {});

/**
 * Build a 2-D mesh of HUB clusters (Figure 4).
 *
 * Inter-HUB links use the four highest port numbers (east, west,
 * south, north), leaving numPorts-4 ports per HUB for CABs.
 *
 * @param rows Mesh rows.
 * @param cols Mesh columns.
 */
std::unique_ptr<Topology>
makeMesh2D(sim::EventQueue &eq, int rows, int cols,
           const hub::HubConfig &config = {},
           sim::Tick interHubDelay = 0);

/** Mesh helper: index of the HUB at (row, col). */
inline int
meshHubIndex(int row, int col, int cols)
{
    return row * cols + col;
}

} // namespace nectar::topo
