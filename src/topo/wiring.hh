/**
 * @file
 * Fiber wiring between HUB ports, CABs, and test endpoints.
 *
 * "Every CAB is connected to a HUB via a pair of fiber lines carrying
 * signals in opposite directions" (Section 3.1), and "the I/O ports
 * used for HUB-HUB and for CAB-HUB connections are identical", so the
 * same wiring primitive serves every topology.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hub/hub.hh"
#include "phys/fiber.hh"
#include "sim/event_queue.hh"

namespace nectar::topo {

/** The two directed fibers of one bidirectional connection. */
struct FiberPair
{
    phys::FiberLink *forward = nullptr; ///< a -> b (or endpoint -> HUB).
    phys::FiberLink *reverse = nullptr; ///< b -> a (or HUB -> endpoint).
};

/**
 * Owns the fiber links of a system and provides pairing helpers.
 */
class Wiring
{
  public:
    explicit Wiring(sim::EventQueue &eq) : eq(eq) {}

    /**
     * Create one unidirectional link on an explicit event queue,
     * delivering into @p sink.  Shard-aware assemblies place each
     * fiber on its *transmitter's* cluster queue (the send path runs
     * on the sender's worker; deliveries cross via routeCross()).
     */
    phys::FiberLink &
    makeLinkOn(sim::EventQueue &q, const std::string &name,
               phys::FiberSink &sink, sim::Tick propDelay = 0,
               sim::Tick byteTime = sim::proto::fiberByteTime)
    {
        links.push_back(std::make_unique<phys::FiberLink>(
            q, name, propDelay, byteTime));
        links.back()->connectTo(sink);
        return *links.back();
    }

    /**
     * Create one unidirectional link delivering into @p sink.
     * The caller attaches the returned link to its transmitter.
     * @param byteTime Serialization time per byte; bonded (wide)
     *        trunks divide the single-TAXI byte time by their width.
     */
    phys::FiberLink &
    makeLink(const std::string &name, phys::FiberSink &sink,
             sim::Tick propDelay = 0,
             sim::Tick byteTime = sim::proto::fiberByteTime)
    {
        return makeLinkOn(eq, name, sink, propDelay, byteTime);
    }

    /**
     * Connect two HUB ports with a fiber pair, each directed fiber on
     * its transmitting HUB's queue (@p qa owns a's transmitter, @p qb
     * b's).  Single-queue assemblies pass the same queue twice.
     *
     * @return The two directed fibers (forward = a toward b), so
     *         callers (Topology, the fault campaign engine) can
     *         manipulate link state.
     */
    FiberPair
    connectHubPortsOn(sim::EventQueue &qa, sim::EventQueue &qb,
                      hub::Hub &a, hub::PortId pa, hub::Hub &b,
                      hub::PortId pb, sim::Tick propDelay = 0,
                      sim::Tick byteTime = sim::proto::fiberByteTime)
    {
        auto &ab = makeLinkOn(qa,
                              a.name() + ".p" + std::to_string(pa) +
                                  "->" + b.name() + ".p" +
                                  std::to_string(pb),
                              b.port(pb), propDelay, byteTime);
        auto &ba = makeLinkOn(qb,
                              b.name() + ".p" + std::to_string(pb) +
                                  "->" + a.name() + ".p" +
                                  std::to_string(pa),
                              a.port(pa), propDelay, byteTime);
        a.port(pa).attachOutput(ab);
        b.port(pb).attachOutput(ba);
        return FiberPair{&ab, &ba};
    }

    /** connectHubPortsOn() with both transmitters on the default
     *  queue. */
    FiberPair
    connectHubPorts(hub::Hub &a, hub::PortId pa, hub::Hub &b,
                    hub::PortId pb, sim::Tick propDelay = 0,
                    sim::Tick byteTime = sim::proto::fiberByteTime)
    {
        return connectHubPortsOn(eq, eq, a, pa, b, pb, propDelay,
                                 byteTime);
    }

    /**
     * Connect an endpoint (CAB or test harness) to a HUB port.
     *
     * @param endpointRx Where the HUB's outgoing fiber delivers.
     * @param hub The HUB.
     * @param port Port index on the HUB.
     * @param name Name prefix for the two links.
     * @return The link the endpoint transmits on (toward the HUB).
     */
    phys::FiberLink &
    connectEndpoint(phys::FiberSink &endpointRx, hub::Hub &hub,
                    hub::PortId port, const std::string &name,
                    sim::Tick propDelay = 0)
    {
        return *connectEndpointPair(endpointRx, hub, port, name,
                                    propDelay)
                    .forward;
    }

    /** As connectEndpoint(), but returns both directed fibers
     *  (forward = endpoint toward HUB). */
    FiberPair
    connectEndpointPair(phys::FiberSink &endpointRx, hub::Hub &hub,
                        hub::PortId port, const std::string &name,
                        sim::Tick propDelay = 0)
    {
        return connectEndpointPairOn(eq, endpointRx, hub, port, name,
                                     propDelay);
    }

    /** connectEndpointPair() with both fibers on @p q — endpoint and
     *  HUB share a cluster, so both directions stay cluster-local. */
    FiberPair
    connectEndpointPairOn(sim::EventQueue &q,
                          phys::FiberSink &endpointRx, hub::Hub &hub,
                          hub::PortId port, const std::string &name,
                          sim::Tick propDelay = 0)
    {
        auto &toHub = makeLinkOn(q,
                                 name + "->" + hub.name() + ".p" +
                                     std::to_string(port),
                                 hub.port(port), propDelay);
        auto &fromHub = makeLinkOn(q,
                                   hub.name() + ".p" +
                                       std::to_string(port) + "->" +
                                       name,
                                   endpointRx, propDelay);
        hub.port(port).attachOutput(fromHub);
        return FiberPair{&toHub, &fromHub};
    }

    /** All links created so far (for stats inspection). */
    const std::vector<std::unique_ptr<phys::FiberLink>> &
    allLinks() const
    {
        return links;
    }

  private:
    sim::EventQueue &eq;
    std::vector<std::unique_ptr<phys::FiberLink>> links;
};

} // namespace nectar::topo
