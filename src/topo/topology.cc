#include "topology.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "sim/logging.hh"

namespace nectar::topo {

Topology::Topology(sim::EventQueue &eq, const hub::HubConfig &config)
    : eq(eq), config(config), _wiring(eq)
{
}

Topology::Topology(sim::ShardSet &shards, const hub::HubConfig &config)
    : eq(shards.queueFor(0)), _shards(&shards), config(config),
      _wiring(shards.queueFor(0))
{
}

sim::EventQueue &
Topology::queueOf(int hubIndex)
{
    if (_shards == nullptr)
        return eq;
    if (hubIndex < 0 || hubIndex >= _shards->clusters())
        sim::fatal("Topology::queueOf: hub " +
                   std::to_string(hubIndex) +
                   " has no cluster in the shard set");
    return _shards->queueFor(hubIndex);
}

int
Topology::addHub(const std::string &name)
{
    int index = numHubs();
    if (index > 255)
        sim::fatal("Topology: more than 256 HUBs");
    std::string hub_name =
        name.empty() ? "hub" + std::to_string(index) : name;
    hubs.push_back(std::make_unique<hub::Hub>(
        queueOf(index), hub_name, static_cast<std::uint8_t>(index),
        config));
    adjacency.emplace_back();
    portUsed.emplace_back(config.numPorts, false);
    _table.reset(); // the graph grew: stale table, recompile lazily
    return index;
}

hub::Hub &
Topology::hubAt(int i)
{
    if (i < 0 || i >= numHubs())
        sim::panic("Topology::hubAt: bad index");
    return *hubs[i];
}

const hub::Hub &
Topology::hubAt(int i) const
{
    if (i < 0 || i >= numHubs())
        sim::panic("Topology::hubAt: bad index");
    return *hubs[i];
}

bool
Topology::portFree(int hubIndex, hub::PortId port) const
{
    if (hubIndex < 0 || hubIndex >= numHubs())
        sim::panic("Topology::portFree: bad hub index");
    if (port < 0 || port >= config.numPorts)
        return false;
    return !portUsed[hubIndex][port];
}

hub::PortId
Topology::firstFreePort(int hubIndex) const
{
    for (int p = 0; p < config.numPorts; ++p)
        if (portFree(hubIndex, p))
            return p;
    return hub::noPort;
}

int
Topology::linkHubs(int a, hub::PortId pa, int b, hub::PortId pb,
                   sim::Tick propDelay, int width)
{
    if (!portFree(a, pa) || !portFree(b, pb))
        sim::fatal("Topology::linkHubs: port already wired");
    if (a == b)
        sim::fatal("Topology::linkHubs: self-link");
    if (width < 1)
        sim::fatal("Topology::linkHubs: width < 1");
    FiberPair fibers = _wiring.connectHubPortsOn(
        queueOf(a), queueOf(b), *hubs[a], pa, *hubs[b], pb, propDelay,
        sim::proto::fiberByteTime / width);
    if (_shards != nullptr) {
        // Trunks are the only cluster crossings: route each directed
        // fiber through the shard set's mailbox for its pair and
        // account its first-byte latency toward the conservative
        // lookahead.
        fibers.forward->routeCross(a, b, _shards->channelFor(a, b),
                                   &_shards->trace());
        _shards->noteCrossLink(a, b, fibers.forward->minLatency());
        fibers.reverse->routeCross(b, a, _shards->channelFor(b, a),
                                   &_shards->trace());
        _shards->noteCrossLink(b, a, fibers.reverse->minLatency());
    }
    portUsed[a][pa] = true;
    portUsed[b][pb] = true;
    int index = static_cast<int>(_hubLinks.size());
    _hubLinks.push_back(HubLink{a, pa, b, pb, fibers.forward,
                                fibers.reverse, true});
    adjacency[a].push_back(Adj{b, pa, index});
    adjacency[b].push_back(Adj{a, pb, index});
    _table.reset(); // the graph grew: stale table, recompile lazily
    return index;
}

phys::FiberLink &
Topology::attachEndpoint(phys::FiberSink &rx, int hubIndex,
                         hub::PortId port, const std::string &name,
                         sim::Tick propDelay)
{
    if (!portFree(hubIndex, port))
        sim::fatal("Topology::attachEndpoint: port already wired");
    portUsed[hubIndex][port] = true;
    FiberPair fibers = _wiring.connectEndpointPairOn(
        queueOf(hubIndex), rx, *hubs[hubIndex], port, name, propDelay);
    endpointLinks[{hubIndex, port}] = fibers;
    return *fibers.forward;
}

// --------------------------------------------------------------------
// Link health.
// --------------------------------------------------------------------

int
Topology::findHubLink(int hub, hub::PortId port) const
{
    for (std::size_t i = 0; i < _hubLinks.size(); ++i) {
        const HubLink &l = _hubLinks[i];
        if ((l.a == hub && l.pa == port) ||
            (l.b == hub && l.pb == port))
            return static_cast<int>(i);
    }
    return -1;
}

void
Topology::setLinkState(int linkIndex, bool up)
{
    HubLink &l = _hubLinks[linkIndex];
    if (l.up == up)
        return;
    l.up = up;
    l.ab->setLinkUp(up);
    l.ba->setLinkUp(up);
    if (up) {
        // Link reinitialization re-arms hop-by-hop flow control: a
        // ready signal in flight when the light went out is gone for
        // good, and everything queued downstream was dropped with it,
        // so both output registers may treat the far queue as drained.
        hubAt(l.a).port(l.pa).setReady(true);
        hubAt(l.b).port(l.pb).setReady(true);
    }
    ++_linkVersion;
}

void
Topology::markLinkDown(int hub, hub::PortId port)
{
    int i = findHubLink(hub, port);
    if (i < 0)
        sim::fatal("Topology::markLinkDown: no inter-HUB link at "
                   "hub " + std::to_string(hub) + " port " +
                   std::to_string(port));
    setLinkState(i, false);
}

void
Topology::markLinkUp(int hub, hub::PortId port)
{
    int i = findHubLink(hub, port);
    if (i < 0)
        sim::fatal("Topology::markLinkUp: no inter-HUB link at "
                   "hub " + std::to_string(hub) + " port " +
                   std::to_string(port));
    setLinkState(i, true);
}

void
Topology::markLinkDownBetween(int a, int b)
{
    for (std::size_t i = 0; i < _hubLinks.size(); ++i) {
        const HubLink &l = _hubLinks[i];
        if (l.up && ((l.a == a && l.b == b) || (l.a == b && l.b == a))) {
            setLinkState(static_cast<int>(i), false);
            return;
        }
    }
    sim::fatal("Topology::markLinkDownBetween: no up link between "
               "hubs " + std::to_string(a) + " and " +
               std::to_string(b));
}

void
Topology::markLinkUpBetween(int a, int b)
{
    for (std::size_t i = 0; i < _hubLinks.size(); ++i) {
        const HubLink &l = _hubLinks[i];
        if (!l.up &&
            ((l.a == a && l.b == b) || (l.a == b && l.b == a))) {
            setLinkState(static_cast<int>(i), true);
            return;
        }
    }
    sim::fatal("Topology::markLinkUpBetween: no down link between "
               "hubs " + std::to_string(a) + " and " +
               std::to_string(b));
}

bool
Topology::linkIsUp(int hub, hub::PortId port) const
{
    int i = findHubLink(hub, port);
    if (i < 0)
        sim::fatal("Topology::linkIsUp: no inter-HUB link there");
    return _hubLinks[i].up;
}

bool
Topology::reachable(int fromHub, int toHub) const
{
    if (fromHub < 0 || fromHub >= numHubs() || toHub < 0 ||
        toHub >= numHubs())
        sim::fatal("Topology::reachable: bad hub index");
    return routeTable().reachable(fromHub, toHub);
}

const FiberPair &
Topology::endpointFibers(int hub, hub::PortId port) const
{
    auto it = endpointLinks.find({hub, port});
    if (it == endpointLinks.end())
        sim::fatal("Topology::endpointFibers: no endpoint at hub " +
                   std::to_string(hub) + " port " +
                   std::to_string(port));
    return it->second;
}

const RouteTable &
Topology::routeTable() const
{
    // Workers on different clusters route concurrently; the compile
    // itself must happen once.  Link-state changes (and hence
    // recompiles) only occur while the simulation is single-threaded
    // (fault injection runs in the gaps between parallel windows), so
    // a returned reference never sees the table swapped under it.
    std::lock_guard<std::mutex> lock(_tableMutex);
    if (!_table || _tableVersion != _linkVersion) {
        FabricGraph g(numHubs());
        for (const HubLink &l : _hubLinks)
            g.addLink(l.a, l.pa, l.b, l.pb, l.up);
        _table = std::make_unique<RouteTable>(RouteTable::compile(g));
        _tableVersion = _linkVersion;
        ++_compiles;
    }
    return *_table;
}

Route
Topology::route(const Endpoint &from, const Endpoint &to) const
{
    if (from.hubIndex < 0 || from.hubIndex >= numHubs() ||
        to.hubIndex < 0 || to.hubIndex >= numHubs())
        sim::fatal("Topology::route: bad endpoint");

    // Hub path from the compiled table.  An unreachable destination
    // yields an empty route: link failures are an operational
    // condition, not a programming error, and the transport's
    // retransmission machinery turns it into a retried (and
    // eventually healed) transmission failure.
    const RouteTable &table = routeTable();
    std::vector<RouteTable::PathHop> hops;
    if (!table.path(from.hubIndex, to.hubIndex, hops))
        return {};

    Route r;
    for (const RouteTable::PathHop &h : hops)
        r.push_back(Hop{hubs[h.hub]->hubId(), h.outPort, false});
    // Final hop: open the destination CAB's port, with reply.
    r.push_back(Hop{hubs[to.hubIndex]->hubId(), to.port, true});
    return r;
}

Route
Topology::multicastRoute(const Endpoint &from,
                         const std::vector<Endpoint> &to) const
{
    if (to.empty())
        sim::fatal("Topology::multicastRoute: no destinations");

    const RouteTable &table = routeTable();

    // Terminal opens (CAB ports) are collected per hub; the spanning
    // tree over transit hubs comes from the compiled table.
    std::map<int, std::vector<hub::PortId>> terminals;
    std::vector<int> destHubs;
    for (const Endpoint &dst : to) {
        if (dst.hubIndex < 0 || dst.hubIndex >= numHubs())
            sim::fatal("Topology::multicastRoute: bad endpoint");
        if (dst.hubIndex != from.hubIndex &&
            !table.reachable(from.hubIndex, dst.hubIndex)) {
            // Like route(): an unreachable member is an operational
            // condition (link failures), not a programming error.
            // An empty route tells the caller the tree cannot be
            // built; transports fall back to per-member unicast.
            return {};
        }
        auto &opens = terminals[dst.hubIndex];
        if (std::find(opens.begin(), opens.end(), dst.port) !=
            opens.end())
            continue; // duplicate destination: open each port once
        opens.push_back(dst.port);
        destHubs.push_back(dst.hubIndex);
    }

    RouteTable::McTree tree =
        table.multicastTree(from.hubIndex, destHubs);
    if (!tree.ok)
        return {};

    // Depth-first emission, matching the Section 4.2.2 example:
    // at each hub, first open terminal (CAB) ports with reply, then
    // recurse into child hubs.
    Route r;
    std::function<void(int)> visit = [&](int h) {
        auto t = terminals.find(h);
        if (t != terminals.end()) {
            for (hub::PortId p : t->second)
                r.push_back(Hop{hubs[h]->hubId(), p, true});
        }
        auto c = tree.children.find(h);
        if (c != tree.children.end()) {
            for (auto [port, child] : c->second) {
                r.push_back(Hop{hubs[h]->hubId(), port, false});
                visit(child);
            }
        }
    };
    visit(from.hubIndex);
    return r;
}

int
Topology::hopCount(const Endpoint &from, const Endpoint &to) const
{
    return static_cast<int>(route(from, to).size());
}

std::unique_ptr<Topology>
buildTopology(sim::EventQueue &eq, const TopologyDescription &d,
              const hub::HubConfig &config)
{
    d.validate();
    hub::HubConfig cfg = config;
    if (d.hubPorts > 0)
        cfg.numPorts = d.hubPorts;

    // HUBs then trunks, in declared order: the builder performs
    // exactly the imperative calls a hand-assembled system would, so
    // event traces are identical.
    auto t = std::make_unique<Topology>(eq, cfg);
    for (const HubDecl &h : d.hubs)
        t->addHub(h.name);
    for (const TrunkDecl &tr : d.trunks)
        t->linkHubs(tr.a, tr.pa, tr.b, tr.pb, tr.latency, tr.width);
    return t;
}

std::unique_ptr<Topology>
buildTopology(sim::ShardSet &shards, const TopologyDescription &d,
              const hub::HubConfig &config)
{
    d.validate();
    if (static_cast<int>(d.hubs.size()) > shards.clusters())
        sim::fatal("buildTopology: shard set has " +
                   std::to_string(shards.clusters()) +
                   " clusters for " + std::to_string(d.hubs.size()) +
                   " HUBs");
    hub::HubConfig cfg = config;
    if (d.hubPorts > 0)
        cfg.numPorts = d.hubPorts;

    // Same declared-order construction as the single-queue builder,
    // so per-cluster event traces line up between the assemblies.
    auto t = std::make_unique<Topology>(shards, cfg);
    for (const HubDecl &h : d.hubs)
        t->addHub(h.name);
    for (const TrunkDecl &tr : d.trunks)
        t->linkHubs(tr.a, tr.pa, tr.b, tr.pb, tr.latency, tr.width);
    return t;
}

std::unique_ptr<Topology>
makeSingleHub(sim::EventQueue &eq, const hub::HubConfig &config)
{
    return buildTopology(eq, describeSingleHub(0, config.numPorts),
                         config);
}

std::unique_ptr<Topology>
makeMesh2D(sim::EventQueue &eq, int rows, int cols,
           const hub::HubConfig &config, sim::Tick interHubDelay)
{
    return buildTopology(
        eq, describeMesh2D(rows, cols, 0, interHubDelay,
                           config.numPorts),
        config);
}

} // namespace nectar::topo
