#include "topo/route_table.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"
#include "topo/description.hh"

namespace nectar::topo {

// --------------------------------------------------------------------
// FabricGraph.
// --------------------------------------------------------------------

FabricGraph::FabricGraph(int numHubs)
{
    if (numHubs < 0)
        sim::fatal("FabricGraph: negative hub count");
    _adj.resize(static_cast<std::size_t>(numHubs));
}

int
FabricGraph::addLink(int a, hub::PortId pa, int b, hub::PortId pb,
                     bool up)
{
    if (a < 0 || a >= numHubs() || b < 0 || b >= numHubs())
        sim::fatal("FabricGraph::addLink: bad hub index");
    if (a == b)
        sim::fatal("FabricGraph::addLink: self-link");
    int index = numLinks();
    _links.push_back(Link{a, pa, b, pb, up});
    _adj[static_cast<std::size_t>(a)].push_back(Adj{b, pa, index});
    _adj[static_cast<std::size_t>(b)].push_back(Adj{a, pb, index});
    return index;
}

void
FabricGraph::setLinkUp(int linkIndex, bool up)
{
    if (linkIndex < 0 || linkIndex >= numLinks())
        sim::fatal("FabricGraph::setLinkUp: bad link index");
    _links[static_cast<std::size_t>(linkIndex)].up = up;
}

const std::vector<FabricGraph::Adj> &
FabricGraph::adjacencyOf(int hub) const
{
    if (hub < 0 || hub >= numHubs())
        sim::fatal("FabricGraph::adjacencyOf: bad hub index");
    return _adj[static_cast<std::size_t>(hub)];
}

const FabricGraph::Link &
FabricGraph::linkAt(int i) const
{
    if (i < 0 || i >= numLinks())
        sim::fatal("FabricGraph::linkAt: bad link index");
    return _links[static_cast<std::size_t>(i)];
}

int
FabricGraph::linkAtPort(int hub, hub::PortId port) const
{
    for (int i = 0; i < numLinks(); ++i) {
        const Link &l = _links[static_cast<std::size_t>(i)];
        if ((l.a == hub && l.pa == port) ||
            (l.b == hub && l.pb == port))
            return i;
    }
    return -1;
}

FabricGraph
FabricGraph::ofDescription(const TopologyDescription &d)
{
    FabricGraph g(d.numHubs());
    for (const TrunkDecl &t : d.trunks)
        g.addLink(t.a, t.pa, t.b, t.pb);
    return g;
}

// --------------------------------------------------------------------
// Orientation: BFS spanning forest over the links currently up.
// --------------------------------------------------------------------

void
RouteTable::orient()
{
    const int n = _graph.numHubs();
    std::vector<int> depth(static_cast<std::size_t>(n), -1);
    for (int root = 0; root < n; ++root) {
        if (depth[static_cast<std::size_t>(root)] != -1)
            continue;
        depth[static_cast<std::size_t>(root)] = 0;
        std::deque<int> frontier{root};
        while (!frontier.empty()) {
            int h = frontier.front();
            frontier.pop_front();
            for (const FabricGraph::Adj &a : _graph.adjacencyOf(h)) {
                if (!_graph.linkUp(a.linkIndex))
                    continue;
                auto un = static_cast<std::size_t>(a.neighbor);
                if (depth[un] == -1) {
                    depth[un] =
                        depth[static_cast<std::size_t>(h)] + 1;
                    frontier.push_back(a.neighbor);
                }
            }
        }
    }

    _upEnd.assign(static_cast<std::size_t>(_graph.numLinks()), -1);
    for (int i = 0; i < _graph.numLinks(); ++i) {
        const FabricGraph::Link &l = _graph.linkAt(i);
        auto keyA = std::make_pair(
            depth[static_cast<std::size_t>(l.a)], l.a);
        auto keyB = std::make_pair(
            depth[static_cast<std::size_t>(l.b)], l.b);
        _upEnd[static_cast<std::size_t>(i)] =
            keyA < keyB ? l.a : l.b;
    }
}

// --------------------------------------------------------------------
// Per-source compilation.
// --------------------------------------------------------------------

RouteTable::Source
RouteTable::compileSource(int s) const
{
    const int n = _graph.numHubs();
    Source src;
    src.dist.assign(static_cast<std::size_t>(n), -1);
    src.winner.assign(static_cast<std::size_t>(n), phaseNone);

    // Pass 1: the historical plain BFS (FIFO queue, insertion-order
    // adjacency, first discovery wins).  This is the exact algorithm
    // route() used for every release so far; keeping it byte-for-byte
    // is what pins the mesh2D routes and golden fingerprints.
    src.prev.assign(static_cast<std::size_t>(n),
                    {-1, hub::noPort});
    {
        std::vector<bool> seen(static_cast<std::size_t>(n), false);
        std::deque<int> frontier{s};
        seen[static_cast<std::size_t>(s)] = true;
        src.dist[static_cast<std::size_t>(s)] = 0;
        while (!frontier.empty()) {
            int h = frontier.front();
            frontier.pop_front();
            for (const FabricGraph::Adj &a : _graph.adjacencyOf(h)) {
                if (!_graph.linkUp(a.linkIndex))
                    continue;
                auto un = static_cast<std::size_t>(a.neighbor);
                if (!seen[un]) {
                    seen[un] = true;
                    src.prev[un] = {h, a.myPort};
                    src.dist[un] =
                        src.dist[static_cast<std::size_t>(h)] + 1;
                    frontier.push_back(a.neighbor);
                }
            }
        }
    }

    // Legality scan: phase of each hub along its tree path.  A tree
    // edge taken in phase down that moves root-ward (up) would be a
    // down->up turn — then this source needs the restricted search.
    {
        bool legal = true;
        std::vector<std::uint8_t> phase(static_cast<std::size_t>(n),
                                        phaseNone);
        phase[static_cast<std::size_t>(s)] = phaseUp;
        // prev[] parents always precede children in dist order; a
        // simple dist-ordered sweep assigns phases parent-first.
        std::vector<int> order;
        order.reserve(static_cast<std::size_t>(n));
        for (int h = 0; h < n; ++h)
            if (h != s && src.dist[static_cast<std::size_t>(h)] >= 0)
                order.push_back(h);
        std::sort(order.begin(), order.end(), [&](int x, int y) {
            return src.dist[static_cast<std::size_t>(x)] <
                   src.dist[static_cast<std::size_t>(y)];
        });
        for (int h : order) {
            auto [p, port] = src.prev[static_cast<std::size_t>(h)];
            int link = _graph.linkAtPort(p, port);
            bool movesUp = upMove(link, h);
            std::uint8_t pp = phase[static_cast<std::size_t>(p)];
            if (pp == phaseDown && movesUp) {
                legal = false;
                break;
            }
            phase[static_cast<std::size_t>(h)] =
                (pp == phaseUp && movesUp) ? phaseUp : phaseDown;
        }
        if (legal) {
            for (int h = 0; h < n; ++h)
                src.winner[static_cast<std::size_t>(h)] =
                    phase[static_cast<std::size_t>(h)];
            src.winner[static_cast<std::size_t>(s)] = phaseUp;
            return src;
        }
    }

    // Pass 2: restricted BFS over (hub, phase) states.  From an up
    // state every live edge is traversable (up moves keep phase up);
    // from a down state only down moves are.  First state discovered
    // per hub is that hub's winner; routes replay the state preds.
    src.restricted = true;
    src.prev.clear();
    src.spred.assign(static_cast<std::size_t>(n) * 2, StatePred{});
    std::fill(src.dist.begin(), src.dist.end(), -1);
    std::vector<int> sdist(static_cast<std::size_t>(n) * 2, -1);

    auto stateOf = [](int hub, std::uint8_t ph) {
        return static_cast<std::size_t>(hub) * 2 + ph;
    };

    std::deque<std::pair<int, std::uint8_t>> frontier;
    src.spred[stateOf(s, phaseUp)].seen = true;
    sdist[stateOf(s, phaseUp)] = 0;
    src.winner[static_cast<std::size_t>(s)] = phaseUp;
    src.dist[static_cast<std::size_t>(s)] = 0;
    frontier.emplace_back(s, phaseUp);
    while (!frontier.empty()) {
        auto [h, ph] = frontier.front();
        frontier.pop_front();
        for (const FabricGraph::Adj &a : _graph.adjacencyOf(h)) {
            if (!_graph.linkUp(a.linkIndex))
                continue;
            bool movesUp = upMove(a.linkIndex, a.neighbor);
            if (ph == phaseDown && movesUp)
                continue; // the forbidden down->up turn
            std::uint8_t nph =
                (ph == phaseUp && movesUp) ? phaseUp : phaseDown;
            std::size_t ns = stateOf(a.neighbor, nph);
            if (src.spred[ns].seen)
                continue;
            src.spred[ns] = StatePred{h, ph, a.myPort, true};
            sdist[ns] = sdist[stateOf(h, ph)] + 1;
            auto un = static_cast<std::size_t>(a.neighbor);
            if (src.winner[un] == phaseNone) {
                src.winner[un] = nph;
                src.dist[un] = sdist[ns];
            }
            frontier.emplace_back(a.neighbor, nph);
        }
    }
    return src;
}

RouteTable
RouteTable::compile(const FabricGraph &g)
{
    RouteTable t;
    t._graph = g;
    t.orient();
    t._sources.reserve(static_cast<std::size_t>(g.numHubs()));
    for (int s = 0; s < g.numHubs(); ++s)
        t._sources.push_back(t.compileSource(s));
    return t;
}

// --------------------------------------------------------------------
// Queries.
// --------------------------------------------------------------------

bool
RouteTable::reachable(int from, int to) const
{
    return dist(from, to) >= 0;
}

int
RouteTable::dist(int from, int to) const
{
    if (from < 0 || from >= numHubs() || to < 0 || to >= numHubs())
        sim::fatal("RouteTable::dist: bad hub index");
    return _sources[static_cast<std::size_t>(from)]
        .dist[static_cast<std::size_t>(to)];
}

bool
RouteTable::path(int from, int to, std::vector<PathHop> &hops) const
{
    hops.clear();
    if (dist(from, to) < 0)
        return false;
    const Source &src = _sources[static_cast<std::size_t>(from)];
    if (!src.restricted) {
        // Walk the legacy prev tree destination-first, then reverse —
        // the same reconstruction route() always did.
        std::vector<PathHop> rev;
        for (int h = to; h != from;) {
            auto [p, port] = src.prev[static_cast<std::size_t>(h)];
            rev.push_back(PathHop{p, port});
            h = p;
        }
        hops.assign(rev.rbegin(), rev.rend());
        return true;
    }
    std::vector<PathHop> rev;
    int h = to;
    std::uint8_t ph = src.winner[static_cast<std::size_t>(to)];
    while (h != from || ph != phaseUp) {
        const StatePred &sp =
            src.spred[static_cast<std::size_t>(h) * 2 + ph];
        rev.push_back(PathHop{sp.prevHub, sp.port});
        h = sp.prevHub;
        ph = sp.prevPhase;
    }
    hops.assign(rev.rbegin(), rev.rend());
    return true;
}

int
RouteTable::upEndOf(int linkIndex) const
{
    if (linkIndex < 0 ||
        linkIndex >= static_cast<int>(_upEnd.size()))
        sim::fatal("RouteTable::upEndOf: bad link index");
    return _upEnd[static_cast<std::size_t>(linkIndex)];
}

bool
RouteTable::restrictedSource(int s) const
{
    if (s < 0 || s >= numHubs())
        sim::fatal("RouteTable::restrictedSource: bad hub index");
    return _sources[static_cast<std::size_t>(s)].restricted;
}

int
RouteTable::restrictedSources() const
{
    int n = 0;
    for (const Source &s : _sources)
        n += s.restricted ? 1 : 0;
    return n;
}

// --------------------------------------------------------------------
// Multicast trees.
// --------------------------------------------------------------------

RouteTable::McTree
RouteTable::legacyTree(const Source &src, int from,
                       const std::vector<int> &destHubs) const
{
    // The historical union-of-BFS-paths graft, verbatim: walk each
    // destination toward the source until the walk meets the tree.
    McTree t;
    std::vector<bool> inTree(static_cast<std::size_t>(numHubs()),
                             false);
    inTree[static_cast<std::size_t>(from)] = true;
    for (int d : destHubs) {
        if (d != from &&
            src.prev[static_cast<std::size_t>(d)].first == -1)
            return t; // unreachable member: ok stays false
        for (int h = d; !inTree[static_cast<std::size_t>(h)];) {
            inTree[static_cast<std::size_t>(h)] = true;
            auto [parent, port] =
                src.prev[static_cast<std::size_t>(h)];
            auto &kids = t.children[parent];
            if (std::find(kids.begin(), kids.end(),
                          std::make_pair(port, h)) == kids.end())
                kids.emplace_back(port, h);
            h = parent;
        }
    }
    t.ok = true;
    return t;
}

RouteTable::McTree
RouteTable::restrictedTree(const Source &src, int from,
                           const std::vector<int> &destHubs) const
{
    // Grow the tree one member at a time with a multi-source
    // restricted BFS from every state already in the tree.  New paths
    // may not pass through hubs the tree already covers (each hub
    // keeps exactly one parent, so the depth-first emission opens it
    // once), which can make an otherwise-reachable member unbuildable
    // — then ok stays false and the transport falls back to unicast
    // fan-out, exactly as for a partitioned fabric.
    McTree t;
    const int n = numHubs();
    auto stateOf = [](int hub, std::uint8_t ph) {
        return static_cast<std::size_t>(hub) * 2 + ph;
    };
    std::vector<bool> inTreeHub(static_cast<std::size_t>(n), false);
    std::vector<std::pair<int, std::uint8_t>> treeStates;
    inTreeHub[static_cast<std::size_t>(from)] = true;
    treeStates.emplace_back(from, phaseUp);

    for (int d : destHubs) {
        if (src.dist[static_cast<std::size_t>(d)] < 0)
            return t;
        if (inTreeHub[static_cast<std::size_t>(d)])
            continue;

        std::vector<StatePred> pred(static_cast<std::size_t>(n) * 2);
        std::deque<std::pair<int, std::uint8_t>> frontier;
        for (auto [h, ph] : treeStates) {
            pred[stateOf(h, ph)].seen = true;
            frontier.emplace_back(h, ph);
        }
        int foundHub = -1;
        std::uint8_t foundPhase = phaseNone;
        while (!frontier.empty() && foundHub < 0) {
            auto [h, ph] = frontier.front();
            frontier.pop_front();
            for (const FabricGraph::Adj &a :
                 _graph.adjacencyOf(h)) {
                if (!_graph.linkUp(a.linkIndex))
                    continue;
                if (inTreeHub[static_cast<std::size_t>(a.neighbor)])
                    continue; // one parent per hub
                bool movesUp = upMove(a.linkIndex, a.neighbor);
                if (ph == phaseDown && movesUp)
                    continue;
                std::uint8_t nph =
                    (ph == phaseUp && movesUp) ? phaseUp
                                               : phaseDown;
                std::size_t ns = stateOf(a.neighbor, nph);
                if (pred[ns].seen)
                    continue;
                pred[ns] = StatePred{h, ph, a.myPort, true};
                if (a.neighbor == d) {
                    foundHub = a.neighbor;
                    foundPhase = nph;
                    break;
                }
                frontier.emplace_back(a.neighbor, nph);
            }
        }
        if (foundHub < 0)
            return t; // no legal graft: caller unicasts

        // Walk back to the tree (seed states carry prevHub == -1),
        // then attach the chain outward.
        std::vector<std::pair<int, std::uint8_t>> chain;
        int h = foundHub;
        std::uint8_t ph = foundPhase;
        while (pred[stateOf(h, ph)].prevHub != -1) {
            chain.emplace_back(h, ph);
            const StatePred &sp = pred[stateOf(h, ph)];
            h = sp.prevHub;
            ph = sp.prevPhase;
        }
        std::reverse(chain.begin(), chain.end());
        for (auto [ch, cph] : chain) {
            const StatePred &sp = pred[stateOf(ch, cph)];
            t.children[sp.prevHub].emplace_back(sp.port, ch);
            inTreeHub[static_cast<std::size_t>(ch)] = true;
            treeStates.emplace_back(ch, cph);
        }
    }
    t.ok = true;
    return t;
}

RouteTable::McTree
RouteTable::multicastTree(int from,
                          const std::vector<int> &destHubs) const
{
    if (from < 0 || from >= numHubs())
        sim::fatal("RouteTable::multicastTree: bad hub index");
    for (int d : destHubs)
        if (d < 0 || d >= numHubs())
            sim::fatal("RouteTable::multicastTree: bad hub index");
    const Source &src = _sources[static_cast<std::size_t>(from)];
    return src.restricted ? restrictedTree(src, from, destHubs)
                          : legacyTree(src, from, destHubs);
}

} // namespace nectar::topo
