/**
 * @file
 * Declarative fabric descriptions: HUBs, trunk links, CAB attachments.
 *
 * Section 2 of the paper: HUB clusters connect "in any topology
 * appropriate to the application environment".  A TopologyDescription
 * is that topology as *data* — a list of HUB declarations, inter-HUB
 * trunk links with per-link latency and width, and CAB attachment
 * points — so a fabric can be loaded from a file (topofile.hh),
 * emitted by a generator (mesh, torus, fat tree, random regular), or
 * written by hand, and then built into a live Topology and
 * nectarine::System without any topology-specific code.
 *
 * Builders create HUBs, trunks, and CABs in exactly the declared
 * order, so a description-built system is event-for-event identical
 * to one assembled by the equivalent imperative calls.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hub/hub.hh"
#include "sim/types.hh"

namespace nectar::topo {

/** One declared HUB.  Its index in the hub list is its address. */
struct HubDecl
{
    std::string name; ///< "" derives hub<index> at build time.

    bool operator==(const HubDecl &) const = default;
};

/** One inter-HUB trunk: a bidirectional fiber pair. */
struct TrunkDecl
{
    int a = -1;                   ///< HUB index of the first end.
    hub::PortId pa = hub::noPort; ///< ... and its port.
    int b = -1;                   ///< HUB index of the second end.
    hub::PortId pb = hub::noPort; ///< ... and its port.
    sim::Tick latency = 0;        ///< One-way propagation delay (ns).
    int width = 1;                ///< Bonded fiber lanes (>= 1): the
                                  ///< trunk serializes bytes width
                                  ///< times faster than a single TAXI.

    bool operator==(const TrunkDecl &) const = default;
};

/** One CAB attachment point. */
struct CabDecl
{
    std::string name;             ///< "" derives cab<N> at build time.
    int hub = -1;                 ///< HUB index it attaches to.
    hub::PortId port = hub::noPort;
    sim::Tick latency = 0;        ///< Attachment fiber delay (ns).

    bool operator==(const CabDecl &) const = default;
};

/**
 * A complete declarative fabric.
 *
 * validate() enforces the structural rules a builder relies on; a
 * valid description always builds.  Connectivity is *not* required
 * here (partitioned fabrics are legal and route() returns empty
 * across partitions, as with failed links) — generators always emit
 * connected fabrics, and tests assert it where it matters.
 */
struct TopologyDescription
{
    std::string name = "fabric";
    /** Ports per HUB; 0 uses the HubConfig default (16). */
    int hubPorts = 0;
    std::vector<HubDecl> hubs;
    std::vector<TrunkDecl> trunks;
    std::vector<CabDecl> cabs;

    bool operator==(const TopologyDescription &) const = default;

    int numHubs() const { return static_cast<int>(hubs.size()); }

    /** Effective ports per HUB after defaulting. */
    int effectivePorts() const;

    /** Index of the HUB named @p n, or -1. */
    int hubIndexByName(const std::string &n) const;

    /** The name HUB @p i builds with ("" declared derives hub<i>). */
    std::string hubNameAt(int i) const;

    /**
     * Fatal on any structural error: bad indices, port collisions
     * (trunk-trunk, trunk-cab, cab-cab), ports out of range,
     * self-trunks, duplicate non-empty names, more than 256 HUBs,
     * width < 1, or negative latency.
     */
    void validate() const;

    /** True if the trunk graph connects every HUB (ignores CABs). */
    bool connected() const;
};

// ----- Generators ---------------------------------------------------
//
// Each generator returns a plain TopologyDescription — the same data
// a .topo file parses to — so generated and hand-written fabrics are
// interchangeable and a generator's output can be written to a file
// and read back identically (topofile.hh round-trips them).

/** A single-HUB star (Figure 2) with @p cabs CABs on ports [0,cabs). */
TopologyDescription describeSingleHub(int cabs, int hubPorts = 0);

/**
 * A rows x cols 2-D mesh (Figure 4).  Inter-HUB trunks use the four
 * highest ports (east, west, south, north); CABs fill ports
 * [0, cabsPerHub) on every HUB.  Matches the historical makeMesh2D
 * port convention and construction order exactly.
 */
TopologyDescription describeMesh2D(int rows, int cols, int cabsPerHub,
                                   sim::Tick interHubDelay = 0,
                                   int hubPorts = 0);

/**
 * A rows x cols 2-D torus: the mesh plus row/column wrap trunks on
 * the same east/west/south/north ports.  A dimension of length < 2
 * gets no wrap (it would be a self-trunk).
 */
TopologyDescription describeTorus2D(int rows, int cols, int cabsPerHub,
                                    sim::Tick interHubDelay = 0,
                                    int hubPorts = 0);

/**
 * A two-level fat tree: @p spines spine HUBs, @p leaves leaf HUBs,
 * every leaf trunked to every spine.  Leaf uplink s rides port
 * numPorts-1-s; spine port l faces leaf l; CABs fill leaf ports
 * [0, cabsPerLeaf).  Spines carry no CABs.
 */
TopologyDescription describeFatTree(int spines, int leaves,
                                    int cabsPerLeaf,
                                    sim::Tick interHubDelay = 0,
                                    int hubPorts = 0);

/**
 * A seeded random @p degree-regular connected graph of @p hubs HUBs
 * (pairing model with rejection; deterministic in @p seed).  Trunks
 * occupy the highest ports, CABs the lowest @p cabsPerHub.
 * hubs * degree must be even; degree >= 2 keeps connectivity
 * reachable.
 */
TopologyDescription describeRandomRegular(std::uint64_t seed, int hubs,
                                          int degree, int cabsPerHub,
                                          sim::Tick interHubDelay = 0,
                                          int hubPorts = 0);

} // namespace nectar::topo
