/**
 * @file
 * Compiled up*-down* route tables for arbitrary connected fabrics.
 *
 * The HUB forwards whatever the command packet tells it to (Section
 * 4.2): routing policy lives entirely in the hosts, so the simulator
 * is free to precompute it.  A RouteTable is that precomputation — a
 * per-source forwarding tree over the inter-HUB graph, rebuilt only
 * when link health changes (Topology::linkVersion()), replacing the
 * historical BFS-per-route() on the forwarding path.
 *
 * Deadlock freedom.  Cut-through worm routing deadlocks when the
 * channel-dependency graph (directed fiber -> directed fiber held
 * while waiting) has a cycle.  The compiler orients every trunk by a
 * BFS spanning forest (root = lowest-index HUB of each component; the
 * "up" end of a link is the endpoint with lexicographically smaller
 * (depth, index)) and only emits up*-down* paths: some up moves, then
 * some down moves, never down->up.  Every dependency then goes
 * up-channel -> up-channel, up -> down, or down -> down, so any CDG
 * cycle would have to climb strictly in the (depth, index) order on
 * its up arcs and fall strictly on its down arcs — impossible.
 * tests/test_route_table.cc builds the CDG explicitly and checks.
 *
 * Compatibility.  Per source, the compiler first runs the historical
 * plain BFS (same FIFO, same insertion-order adjacency).  If every
 * path of that tree is already up*-down*-legal — true on single HUBs
 * and on the 2-D meshes all existing scenarios use, where adjacency
 * order makes BFS take north/west (up) moves before east/south — the
 * legacy tree is kept verbatim, byte-identical routes and all.  Only
 * sources whose legacy tree would take an illegal down->up turn fall
 * back to a restricted search over (hub, phase) states, trading a few
 * extra hops for provable freedom from deadlock.
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hub/hub.hh"

namespace nectar::topo {

struct TopologyDescription;

/**
 * A plain snapshot of the inter-HUB graph: just indices, ports, and
 * link health — no live HUBs, so tests and benchmarks can compile
 * tables straight from a TopologyDescription.  Adjacency lists keep
 * link-insertion order, exactly as Topology builds them.
 */
class FabricGraph
{
  public:
    struct Adj
    {
        int neighbor = -1;
        hub::PortId myPort = hub::noPort;
        int linkIndex = -1;
    };

    struct Link
    {
        int a = -1;
        hub::PortId pa = hub::noPort;
        int b = -1;
        hub::PortId pb = hub::noPort;
        bool up = true;
    };

    explicit FabricGraph(int numHubs);

    /** Add a bidirectional link; parallel links are fine. */
    int addLink(int a, hub::PortId pa, int b, hub::PortId pb,
                bool up = true);

    void setLinkUp(int linkIndex, bool up);

    int numHubs() const { return static_cast<int>(_adj.size()); }
    int numLinks() const { return static_cast<int>(_links.size()); }
    const std::vector<Adj> &adjacencyOf(int hub) const;
    const Link &linkAt(int i) const;
    bool linkUp(int i) const { return linkAt(i).up; }

    /** Link attached at (hub, port), or -1. */
    int linkAtPort(int hub, hub::PortId port) const;

    /** The trunk graph of @p d, all links up, trunk order. */
    static FabricGraph ofDescription(const TopologyDescription &d);

  private:
    std::vector<std::vector<Adj>> _adj;
    std::vector<Link> _links;
};

/**
 * Compiled per-(source, destination) routes over one FabricGraph
 * snapshot.  Immutable once compiled; the owner (Topology) recompiles
 * on linkVersion() bumps.
 */
class RouteTable
{
  public:
    /** One forwarding step: the port to open on a transit HUB. */
    struct PathHop
    {
        int hub = -1;
        hub::PortId outPort = hub::noPort;

        bool operator==(const PathHop &) const = default;
    };

    /** A multicast spanning tree rooted at the source HUB. */
    struct McTree
    {
        bool ok = false;
        /** children[parent] in attach order: (port on parent, child). */
        std::map<int, std::vector<std::pair<hub::PortId, int>>>
            children;
    };

    static RouteTable compile(const FabricGraph &g);

    int numHubs() const { return static_cast<int>(_sources.size()); }

    bool reachable(int from, int to) const;

    /** Hub-hop distance, or -1 when unreachable. */
    int dist(int from, int to) const;

    /**
     * The transit hops from @p from to @p to (empty when from == to;
     * excludes the destination CAB-port open, which the caller owns).
     * @return false when unreachable.
     */
    bool path(int from, int to, std::vector<PathHop> &hops) const;

    /**
     * A spanning tree covering @p destHubs, attachment order matching
     * the historical union-of-BFS-paths graft on legacy-compatible
     * sources.  ok == false when a member is unreachable or (on a
     * restricted source) no legal tree exists; callers fall back to
     * unicast fan-out.
     */
    McTree multicastTree(int from,
                         const std::vector<int> &destHubs) const;

    /** HUB index of the up (root-ward) end of link @p linkIndex. */
    int upEndOf(int linkIndex) const;

    /** True if the legacy BFS tree from @p s took an illegal
     *  down->up turn and the restricted search is in force. */
    bool restrictedSource(int s) const;

    /** Sources falling back to the restricted search (for stats). */
    int restrictedSources() const;

  private:
    static constexpr std::uint8_t phaseUp = 0;
    static constexpr std::uint8_t phaseDown = 1;
    static constexpr std::uint8_t phaseNone = 2;

    struct StatePred
    {
        int prevHub = -1;
        std::uint8_t prevPhase = phaseUp;
        hub::PortId port = hub::noPort;
        bool seen = false;
    };

    struct Source
    {
        bool restricted = false;
        /** Legacy tree: (prevHub, portOnPrev toward me), -1 root or
         *  unreachable.  Empty when restricted. */
        std::vector<std::pair<int, hub::PortId>> prev;
        /** Restricted tree over states [hub * 2 + phase].  Empty when
         *  legacy-compatible. */
        std::vector<StatePred> spred;
        std::vector<std::uint8_t> winner; ///< Phase per hub reached.
        std::vector<int> dist;            ///< Hub-hops, -1 unreachable.
    };

    /** True if moving across @p linkIndex and arriving at
     *  @p arriveHub is an up (root-ward) move. */
    bool upMove(int linkIndex, int arriveHub) const
    {
        return _upEnd[static_cast<std::size_t>(linkIndex)] ==
               arriveHub;
    }

    void orient();
    Source compileSource(int s) const;
    McTree legacyTree(const Source &src, int from,
                      const std::vector<int> &destHubs) const;
    McTree restrictedTree(const Source &src, int from,
                          const std::vector<int> &destHubs) const;

    FabricGraph _graph{0};
    std::vector<int> _upEnd; ///< Per link: hub index of the up end.
    std::vector<Source> _sources;
};

} // namespace nectar::topo
