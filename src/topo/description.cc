#include "topo/description.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace nectar::topo {

int
TopologyDescription::effectivePorts() const
{
    return hubPorts > 0 ? hubPorts : sim::proto::hubPorts;
}

int
TopologyDescription::hubIndexByName(const std::string &n) const
{
    for (int i = 0; i < numHubs(); ++i)
        if (hubNameAt(i) == n)
            return i;
    return -1;
}

std::string
TopologyDescription::hubNameAt(int i) const
{
    const std::string &n = hubs[static_cast<std::size_t>(i)].name;
    return n.empty() ? "hub" + std::to_string(i) : n;
}

void
TopologyDescription::validate() const
{
    auto bad = [this](const std::string &what) {
        sim::fatal("TopologyDescription '" + name + "': " + what);
    };

    if (numHubs() > 256)
        bad("more than 256 HUBs (addresses are 8-bit)");
    const int ports = effectivePorts();
    if (hubPorts < 0)
        bad("negative hub port count");

    std::set<std::string> names;
    for (int i = 0; i < numHubs(); ++i) {
        if (!names.insert(hubNameAt(i)).second)
            bad("duplicate HUB name '" + hubNameAt(i) + "'");
    }

    // One owner per (hub, port): trunks and CABs share the port space
    // because HUB-HUB and CAB-HUB ports are identical hardware.
    std::set<std::pair<int, hub::PortId>> used;
    auto claim = [&](int h, hub::PortId p, const std::string &who) {
        if (h < 0 || h >= numHubs())
            bad(who + " names HUB index " + std::to_string(h) +
                " out of range");
        if (p < 0 || p >= ports)
            bad(who + " names port " + std::to_string(p) +
                " out of range on " + hubNameAt(h));
        if (!used.insert({h, p}).second)
            bad(who + " reuses port " + std::to_string(p) + " on " +
                hubNameAt(h));
    };

    for (std::size_t t = 0; t < trunks.size(); ++t) {
        const TrunkDecl &tr = trunks[t];
        std::string who = "trunk " + std::to_string(t);
        if (tr.a == tr.b)
            bad(who + " is a self-trunk");
        if (tr.latency < 0)
            bad(who + " has negative latency");
        if (tr.width < 1)
            bad(who + " has width < 1");
        claim(tr.a, tr.pa, who);
        claim(tr.b, tr.pb, who);
    }
    std::set<std::string> cabNames;
    for (std::size_t c = 0; c < cabs.size(); ++c) {
        const CabDecl &cd = cabs[c];
        std::string who = "cab " + std::to_string(c);
        if (cd.latency < 0)
            bad(who + " has negative latency");
        if (!cd.name.empty() && !cabNames.insert(cd.name).second)
            bad("duplicate CAB name '" + cd.name + "'");
        claim(cd.hub, cd.port, who);
    }
}

bool
TopologyDescription::connected() const
{
    if (numHubs() <= 1)
        return true;
    std::vector<std::vector<int>> adj(
        static_cast<std::size_t>(numHubs()));
    for (const TrunkDecl &t : trunks) {
        adj[static_cast<std::size_t>(t.a)].push_back(t.b);
        adj[static_cast<std::size_t>(t.b)].push_back(t.a);
    }
    std::vector<bool> seen(static_cast<std::size_t>(numHubs()), false);
    std::vector<int> stack{0};
    seen[0] = true;
    int visited = 1;
    while (!stack.empty()) {
        int h = stack.back();
        stack.pop_back();
        for (int n : adj[static_cast<std::size_t>(h)]) {
            if (!seen[static_cast<std::size_t>(n)]) {
                seen[static_cast<std::size_t>(n)] = true;
                ++visited;
                stack.push_back(n);
            }
        }
    }
    return visited == numHubs();
}

// ----- Generators ---------------------------------------------------

TopologyDescription
describeSingleHub(int cabs, int hubPorts)
{
    TopologyDescription d;
    d.name = "single";
    d.hubPorts = hubPorts;
    d.hubs.push_back(HubDecl{});
    if (cabs > d.effectivePorts())
        sim::fatal("describeSingleHub: more CABs than ports");
    for (int c = 0; c < cabs; ++c)
        d.cabs.push_back(CabDecl{"", 0, c, 0});
    return d;
}

namespace {

/** Grid index helper, kept local so this layer stays below
 *  topology.hh (which exposes the same formula as meshHubIndex). */
int
gridIndex(int row, int col, int cols)
{
    return row * cols + col;
}

/**
 * The shared mesh/torus skeleton: hubs named hub_r<r>c<c>, east/south
 * trunks in row-major order (the makeMesh2D order, which fingerprint
 * tests pin), then the torus wraps, then the CABs.
 */
TopologyDescription
describeGrid(const std::string &name, int rows, int cols,
             int cabsPerHub, sim::Tick delay, int hubPorts, bool wrap)
{
    if (rows < 1 || cols < 1)
        sim::fatal(name + " generator: dimensions must be positive");

    TopologyDescription d;
    d.name = name + std::to_string(rows) + "x" + std::to_string(cols);
    d.hubPorts = hubPorts;
    const int ports = d.effectivePorts();
    if (ports < 5 && rows * cols > 1)
        sim::fatal(name + " generator: need at least 5 ports per HUB");
    if (cabsPerHub > ports - 4 && rows * cols > 1)
        sim::fatal(name + " generator: mesh trunks need 4 ports "
                          "per HUB");

    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            d.hubs.push_back(HubDecl{"hub_r" + std::to_string(r) +
                                     "c" + std::to_string(c)});

    const int east = ports - 4;
    const int west = ports - 3;
    const int south = ports - 2;
    const int north = ports - 1;

    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            int here = gridIndex(r, c, cols);
            if (c + 1 < cols)
                d.trunks.push_back(
                    TrunkDecl{here, east,
                              gridIndex(r, c + 1, cols), west,
                              delay, 1});
            if (r + 1 < rows)
                d.trunks.push_back(
                    TrunkDecl{here, south,
                              gridIndex(r + 1, c, cols), north,
                              delay, 1});
        }
    }
    if (wrap) {
        // Row wraps: last column's east back to column 0's west.
        if (cols >= 2)
            for (int r = 0; r < rows; ++r)
                d.trunks.push_back(
                    TrunkDecl{gridIndex(r, cols - 1, cols), east,
                              gridIndex(r, 0, cols), west, delay,
                              1});
        // Column wraps: last row's south back to row 0's north.
        if (rows >= 2)
            for (int c = 0; c < cols; ++c)
                d.trunks.push_back(
                    TrunkDecl{gridIndex(rows - 1, c, cols), south,
                              gridIndex(0, c, cols), north, delay,
                              1});
    }
    for (int h = 0; h < rows * cols; ++h)
        for (int c = 0; c < cabsPerHub; ++c)
            d.cabs.push_back(CabDecl{"", h, c, 0});
    return d;
}

} // namespace

TopologyDescription
describeMesh2D(int rows, int cols, int cabsPerHub,
               sim::Tick interHubDelay, int hubPorts)
{
    return describeGrid("mesh", rows, cols, cabsPerHub, interHubDelay,
                        hubPorts, /*wrap=*/false);
}

TopologyDescription
describeTorus2D(int rows, int cols, int cabsPerHub,
                sim::Tick interHubDelay, int hubPorts)
{
    return describeGrid("torus", rows, cols, cabsPerHub, interHubDelay,
                        hubPorts, /*wrap=*/true);
}

TopologyDescription
describeFatTree(int spines, int leaves, int cabsPerLeaf,
                sim::Tick interHubDelay, int hubPorts)
{
    if (spines < 1 || leaves < 1)
        sim::fatal("describeFatTree: need at least one spine and "
                   "one leaf");

    TopologyDescription d;
    d.name = "fattree" + std::to_string(spines) + "x" +
             std::to_string(leaves);
    d.hubPorts = hubPorts;
    const int ports = d.effectivePorts();
    if (leaves > ports)
        sim::fatal("describeFatTree: more leaves than spine ports");
    if (cabsPerLeaf + spines > ports)
        sim::fatal("describeFatTree: leaf needs cabsPerLeaf + spines "
                   "ports");

    // Spines first so leaf l is hub spines + l.
    for (int s = 0; s < spines; ++s)
        d.hubs.push_back(HubDecl{"spine" + std::to_string(s)});
    for (int l = 0; l < leaves; ++l)
        d.hubs.push_back(HubDecl{"leaf" + std::to_string(l)});

    for (int l = 0; l < leaves; ++l)
        for (int s = 0; s < spines; ++s)
            d.trunks.push_back(TrunkDecl{spines + l, ports - 1 - s, s,
                                         l, interHubDelay, 1});

    for (int l = 0; l < leaves; ++l)
        for (int c = 0; c < cabsPerLeaf; ++c)
            d.cabs.push_back(CabDecl{"", spines + l, c, 0});
    return d;
}

TopologyDescription
describeRandomRegular(std::uint64_t seed, int hubs, int degree,
                      int cabsPerHub, sim::Tick interHubDelay,
                      int hubPorts)
{
    if (hubs < 2 || degree < 2)
        sim::fatal("describeRandomRegular: need hubs >= 2 and "
                   "degree >= 2");
    if ((hubs * degree) % 2 != 0)
        sim::fatal("describeRandomRegular: hubs * degree must be "
                   "even");
    if (degree >= hubs)
        sim::fatal("describeRandomRegular: degree must be < hubs");

    TopologyDescription d;
    d.name = "rr" + std::to_string(hubs) + "d" +
             std::to_string(degree) + "s" + std::to_string(seed);
    d.hubPorts = hubPorts;
    const int ports = d.effectivePorts();
    if (cabsPerHub + degree > ports)
        sim::fatal("describeRandomRegular: cabsPerHub + degree "
                   "exceeds ports");

    for (int h = 0; h < hubs; ++h)
        d.hubs.push_back(HubDecl{"rr" + std::to_string(h)});

    // Pairing (configuration) model with whole-shuffle rejection:
    // deterministic in the seed, retried on self-loops, parallel
    // edges, or a disconnected result.  Regular graphs of degree >= 2
    // are almost surely connected, so a handful of attempts suffices.
    sim::Random rng(seed, /*stream=*/0x726567756c6172ull);
    std::vector<std::pair<int, int>> edges;
    for (int attempt = 0; attempt < 256; ++attempt) {
        std::vector<int> stubs;
        stubs.reserve(static_cast<std::size_t>(hubs * degree));
        for (int h = 0; h < hubs; ++h)
            for (int k = 0; k < degree; ++k)
                stubs.push_back(h);
        // Fisher-Yates with the seeded generator.
        for (std::size_t i = stubs.size(); i > 1; --i)
            std::swap(stubs[i - 1],
                      stubs[rng.below(static_cast<std::uint32_t>(i))]);

        edges.clear();
        std::set<std::pair<int, int>> seen;
        bool ok = true;
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
            int a = stubs[i], b = stubs[i + 1];
            if (a == b) {
                ok = false;
                break;
            }
            auto key = std::minmax(a, b);
            if (!seen.insert({key.first, key.second}).second) {
                ok = false;
                break;
            }
            edges.emplace_back(a, b);
        }
        if (!ok)
            continue;

        // Connectivity check on the candidate edge set.
        std::vector<std::vector<int>> adj(
            static_cast<std::size_t>(hubs));
        for (auto [a, b] : edges) {
            adj[static_cast<std::size_t>(a)].push_back(b);
            adj[static_cast<std::size_t>(b)].push_back(a);
        }
        std::vector<bool> vis(static_cast<std::size_t>(hubs), false);
        std::vector<int> stack{0};
        vis[0] = true;
        int count = 1;
        while (!stack.empty()) {
            int h = stack.back();
            stack.pop_back();
            for (int n : adj[static_cast<std::size_t>(h)])
                if (!vis[static_cast<std::size_t>(n)]) {
                    vis[static_cast<std::size_t>(n)] = true;
                    ++count;
                    stack.push_back(n);
                }
        }
        if (count == hubs)
            break;
        edges.clear();
    }
    if (edges.empty())
        sim::fatal("describeRandomRegular: could not build a "
                   "connected pairing (seed " + std::to_string(seed) +
                   ")");

    // Trunks occupy the highest ports, handed down per hub in edge
    // order; CABs take the lowest ports.
    std::vector<int> nextPort(static_cast<std::size_t>(hubs),
                              ports - 1);
    for (auto [a, b] : edges) {
        int pa = nextPort[static_cast<std::size_t>(a)]--;
        int pb = nextPort[static_cast<std::size_t>(b)]--;
        d.trunks.push_back(TrunkDecl{a, pa, b, pb, interHubDelay, 1});
    }
    for (int h = 0; h < hubs; ++h)
        for (int c = 0; c < cabsPerHub; ++c)
            d.cabs.push_back(CabDecl{"", h, c, 0});
    return d;
}

} // namespace nectar::topo
