/**
 * @file
 * The versioned `.topo` fabric description text format.
 *
 * A fabric is declared line by line; `#` starts a comment and blank
 * lines are ignored:
 *
 *     nectar-topo v1
 *     fabric mesh4x4
 *     ports 20
 *     hub hub_r0c0
 *     hub hub_r0c1
 *     trunk hub_r0c0.16 hub_r0c1.17 latency=500 width=2
 *     cab cab1 hub_r0c0.0
 *     cab - hub_r0c1.0 latency=80
 *     end
 *
 * Rules: the version line comes first and `end` last (a truncation
 * tripwire, like the fault-plan repro format); HUBs must be declared
 * before trunks or cabs reference them; `<hub>.<port>` names an
 * attachment point; `latency=` is in ticks (ns) and `width=` in
 * bonded fiber lanes, both optional; a cab named `-` derives cab<N>
 * at build time.  Alternatively a single
 *
 *     generate mesh2d rows=4 cols=4 cabs=2 [latency=N]
 *
 * line (kinds: mesh2d, torus2d, fattree [spines= leaves= cabs=],
 * random [seed= hubs= degree= cabs=]) replaces the hub/trunk/cab
 * body, expanding through the generators of description.hh — the
 * same fabric either spelled out or generated.
 *
 * Malformed input is fatal (sim::FatalError) with the line number,
 * mirroring fault/planio.hh: a repro or checked-in fabric that no
 * longer parses should fail loudly, not half-build.
 */

#pragma once

#include <string>

#include "topo/description.hh"

namespace nectar::topo {

/** Parse a description from text.  Fatal on malformed input. */
TopologyDescription parseTopology(const std::string &text);

/** Canonical text form; parseTopology(formatTopology(d)) == d. */
std::string formatTopology(const TopologyDescription &d);

/** parseTopology from @p path.  Fatal on I/O or parse failure. */
TopologyDescription loadTopologyFile(const std::string &path);

/** formatTopology to @p path.  Fatal on I/O failure. */
void saveTopologyFile(const TopologyDescription &d,
                      const std::string &path);

} // namespace nectar::topo
