#include "topo/topofile.hh"

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace nectar::topo {

namespace {

[[noreturn]] void
parseFatal(int line, const std::string &what)
{
    sim::fatal("parseTopology: line " + std::to_string(line) + ": " +
               what);
}

/** Split a line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

/** Parse a non-negative integer; fatal with the line number. */
std::int64_t
parseInt(const std::string &s, int line, const std::string &what)
{
    if (s.empty())
        parseFatal(line, "empty " + what);
    std::int64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            parseFatal(line, "bad " + what + " '" + s + "'");
        v = v * 10 + (c - '0');
        if (v > (std::int64_t{1} << 60))
            parseFatal(line, what + " out of range: '" + s + "'");
    }
    return v;
}

/** Parse "<hub>.<port>" against the declared hubs. */
std::pair<int, hub::PortId>
parseAttach(const TopologyDescription &d, const std::string &s,
            int line)
{
    auto dot = s.rfind('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == s.size())
        parseFatal(line, "expected <hub>.<port>, got '" + s + "'");
    std::string hubName = s.substr(0, dot);
    int h = d.hubIndexByName(hubName);
    if (h < 0)
        parseFatal(line, "unknown HUB '" + hubName + "'");
    int p = static_cast<int>(
        parseInt(s.substr(dot + 1), line, "port"));
    return {h, p};
}

/** Parse trailing key=value options into a map; fatal on others. */
std::map<std::string, std::string>
parseOptions(const std::vector<std::string> &toks, std::size_t from,
             int line, const std::string &allowed)
{
    std::map<std::string, std::string> out;
    for (std::size_t i = from; i < toks.size(); ++i) {
        auto eq = toks[i].find('=');
        if (eq == std::string::npos || eq == 0)
            parseFatal(line, "expected key=value, got '" + toks[i] +
                                 "'");
        std::string key = toks[i].substr(0, eq);
        if (allowed.find(" " + key + " ") == std::string::npos)
            parseFatal(line, "unknown option '" + key + "'");
        if (!out.emplace(key, toks[i].substr(eq + 1)).second)
            parseFatal(line, "duplicate option '" + key + "'");
    }
    return out;
}

std::int64_t
optInt(const std::map<std::string, std::string> &opts,
       const std::string &key, std::int64_t dflt, int line)
{
    auto it = opts.find(key);
    if (it == opts.end())
        return dflt;
    return parseInt(it->second, line, key);
}

/** Expand a `generate <kind> k=v...` line via the generators. */
TopologyDescription
expandGenerate(const std::vector<std::string> &toks, int line,
               const std::string &fabricName, int hubPorts)
{
    if (toks.size() < 2)
        parseFatal(line, "generate needs a kind");
    const std::string &kind = toks[1];
    TopologyDescription d;
    if (kind == "mesh2d" || kind == "torus2d") {
        auto opts = parseOptions(toks, 2, line,
                                 " rows cols cabs latency ");
        int rows = static_cast<int>(optInt(opts, "rows", 0, line));
        int cols = static_cast<int>(optInt(opts, "cols", 0, line));
        int cabs = static_cast<int>(optInt(opts, "cabs", 0, line));
        sim::Tick lat = optInt(opts, "latency", 0, line);
        if (rows < 1 || cols < 1)
            parseFatal(line, "generate " + kind +
                                 " needs rows= and cols=");
        d = kind == "mesh2d"
                ? describeMesh2D(rows, cols, cabs, lat, hubPorts)
                : describeTorus2D(rows, cols, cabs, lat, hubPorts);
    } else if (kind == "fattree") {
        auto opts = parseOptions(toks, 2, line,
                                 " spines leaves cabs latency ");
        int spines =
            static_cast<int>(optInt(opts, "spines", 0, line));
        int leaves =
            static_cast<int>(optInt(opts, "leaves", 0, line));
        int cabs = static_cast<int>(optInt(opts, "cabs", 0, line));
        sim::Tick lat = optInt(opts, "latency", 0, line);
        if (spines < 1 || leaves < 1)
            parseFatal(line, "generate fattree needs spines= and "
                             "leaves=");
        d = describeFatTree(spines, leaves, cabs, lat, hubPorts);
    } else if (kind == "random") {
        auto opts = parseOptions(toks, 2, line,
                                 " seed hubs degree cabs latency ");
        std::uint64_t seed = static_cast<std::uint64_t>(
            optInt(opts, "seed", 1, line));
        int hubs = static_cast<int>(optInt(opts, "hubs", 0, line));
        int degree =
            static_cast<int>(optInt(opts, "degree", 0, line));
        int cabs = static_cast<int>(optInt(opts, "cabs", 0, line));
        sim::Tick lat = optInt(opts, "latency", 0, line);
        if (hubs < 2 || degree < 2)
            parseFatal(line, "generate random needs hubs= and "
                             "degree=");
        d = describeRandomRegular(seed, hubs, degree, cabs, lat,
                                  hubPorts);
    } else {
        parseFatal(line, "unknown generate kind '" + kind + "'");
    }
    if (!fabricName.empty())
        d.name = fabricName;
    return d;
}

} // namespace

TopologyDescription
parseTopology(const std::string &text)
{
    std::istringstream in(text);
    std::string raw;
    int lineNo = 0;

    TopologyDescription d;
    d.name.clear();
    bool sawVersion = false, sawEnd = false, sawGenerate = false;
    bool generated = false;

    while (std::getline(in, raw)) {
        ++lineNo;
        auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        auto toks = tokenize(raw);
        if (toks.empty())
            continue;
        if (sawEnd)
            parseFatal(lineNo, "content after end");

        if (!sawVersion) {
            if (toks.size() != 2 || toks[0] != "nectar-topo")
                parseFatal(lineNo,
                           "expected 'nectar-topo v1' header");
            if (toks[1] != "v1")
                parseFatal(lineNo, "unsupported version '" + toks[1] +
                                       "'");
            sawVersion = true;
            continue;
        }

        const std::string &kw = toks[0];
        if (kw == "end") {
            if (toks.size() != 1)
                parseFatal(lineNo, "end takes no arguments");
            sawEnd = true;
            continue;
        }
        if (sawGenerate)
            parseFatal(lineNo, "generate must be the only body line");

        if (kw == "fabric") {
            if (toks.size() != 2)
                parseFatal(lineNo, "fabric takes one name");
            if (!d.name.empty())
                parseFatal(lineNo, "duplicate fabric line");
            d.name = toks[1];
        } else if (kw == "ports") {
            if (toks.size() != 2)
                parseFatal(lineNo, "ports takes one count");
            if (d.hubPorts != 0)
                parseFatal(lineNo, "duplicate ports line");
            d.hubPorts = static_cast<int>(
                parseInt(toks[1], lineNo, "port count"));
            if (d.hubPorts < 1 || d.hubPorts > 256)
                parseFatal(lineNo, "ports must be in [1, 256]");
        } else if (kw == "generate") {
            if (!d.hubs.empty() || !d.trunks.empty() ||
                !d.cabs.empty())
                parseFatal(lineNo,
                           "generate cannot mix with hub/trunk/cab");
            d = expandGenerate(toks, lineNo, d.name, d.hubPorts);
            sawGenerate = true;
            generated = true;
        } else if (kw == "hub") {
            if (toks.size() != 2)
                parseFatal(lineNo, "hub takes one name");
            if (d.hubIndexByName(toks[1]) >= 0)
                parseFatal(lineNo, "duplicate HUB '" + toks[1] + "'");
            d.hubs.push_back(HubDecl{toks[1]});
        } else if (kw == "trunk") {
            if (toks.size() < 3)
                parseFatal(lineNo,
                           "trunk takes two attachment points");
            auto [a, pa] = parseAttach(d, toks[1], lineNo);
            auto [b, pb] = parseAttach(d, toks[2], lineNo);
            auto opts =
                parseOptions(toks, 3, lineNo, " latency width ");
            d.trunks.push_back(
                TrunkDecl{a, pa, b, pb,
                          optInt(opts, "latency", 0, lineNo),
                          static_cast<int>(
                              optInt(opts, "width", 1, lineNo))});
        } else if (kw == "cab") {
            if (toks.size() < 3)
                parseFatal(lineNo,
                           "cab takes a name and an attachment");
            auto [h, p] = parseAttach(d, toks[2], lineNo);
            auto opts = parseOptions(toks, 3, lineNo, " latency ");
            std::string name = toks[1] == "-" ? "" : toks[1];
            d.cabs.push_back(CabDecl{
                name, h, p, optInt(opts, "latency", 0, lineNo)});
        } else {
            parseFatal(lineNo, "unknown keyword '" + kw + "'");
        }
    }

    if (!sawVersion)
        parseFatal(lineNo, "missing 'nectar-topo v1' header");
    if (!sawEnd)
        parseFatal(lineNo, "missing end line (truncated file?)");
    if (d.name.empty())
        d.name = generated ? d.name : "fabric";
    if (d.name.empty())
        d.name = "fabric";
    d.validate();
    return d;
}

std::string
formatTopology(const TopologyDescription &d)
{
    d.validate();
    std::ostringstream out;
    out << "# Nectar fabric description.\n";
    out << "nectar-topo v1\n";
    out << "fabric " << d.name << "\n";
    if (d.hubPorts != 0)
        out << "ports " << d.hubPorts << "\n";
    for (int i = 0; i < d.numHubs(); ++i)
        out << "hub " << d.hubNameAt(i) << "\n";
    for (const TrunkDecl &t : d.trunks) {
        out << "trunk " << d.hubNameAt(t.a) << "." << t.pa << " "
            << d.hubNameAt(t.b) << "." << t.pb;
        if (t.latency != 0)
            out << " latency=" << t.latency;
        if (t.width != 1)
            out << " width=" << t.width;
        out << "\n";
    }
    for (const CabDecl &c : d.cabs) {
        out << "cab " << (c.name.empty() ? "-" : c.name) << " "
            << d.hubNameAt(c.hub) << "." << c.port;
        if (c.latency != 0)
            out << " latency=" << c.latency;
        out << "\n";
    }
    out << "end\n";
    return out.str();
}

TopologyDescription
loadTopologyFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("loadTopologyFile: cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseTopology(text.str());
}

void
saveTopologyFile(const TopologyDescription &d, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("saveTopologyFile: cannot open " + path);
    out << formatTopology(d);
    if (!out)
        sim::fatal("saveTopologyFile: write failed for " + path);
}

} // namespace nectar::topo
