#include "fiber.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace nectar::phys {

FiberLink::FiberLink(sim::EventQueue &eq, std::string name,
                     Tick propDelay, Tick byteTime)
    : sim::Component(eq, std::move(name)), propDelay(propDelay),
      byteTime(byteTime), rng(0)
{
    if (byteTime <= 0)
        sim::fatal("FiberLink: byteTime must be positive");
    if (propDelay < 0)
        sim::fatal("FiberLink: negative propagation delay");
}

void
FiberLink::setFaults(const FaultModel &model, std::uint64_t seed)
{
    faults = model;
    rng = sim::Random(seed);
    faultsEnabled = model.any();
    // Re-seeding restarts the experiment: the decision sequence and
    // the counters must both reproduce.
    _itemsDropped = 0;
    _itemsCorrupted = 0;
}

void
FiberLink::setBurstModel(const GilbertElliott &model,
                         std::uint64_t seed)
{
    burst = model;
    burstRng = sim::Random(seed);
    burstEnabled = true;
    burstBadState = false;
    // The channel starts evolving (in the good state) the moment the
    // model is installed.
    burstSlot = static_cast<std::int64_t>(now() / byteTime);
    burstDwell = burstDwellSample();
    _burstDropped = 0;
}

void
FiberLink::clearBurstModel()
{
    burstEnabled = false;
    burstBadState = false;
    burstSlot = -1;
    burstDwell = 0;
}

std::int64_t
FiberLink::burstDwellSample()
{
    const double p =
        burstBadState ? burst.pBadGood : burst.pGoodBad;
    if (p <= 0.0)
        return std::numeric_limits<std::int64_t>::max() / 2;
    if (p >= 1.0)
        return 1;
    // Inverse-CDF geometric sample: mean 1/p slots.
    const double u = burstRng.uniform();
    return static_cast<std::int64_t>(
               std::floor(std::log1p(-u) / std::log1p(-p))) +
           1;
}

bool
FiberLink::burstAdvance(std::int64_t slots)
{
    bool sawBad = burstBadState && slots > 0;
    while (burstDwell <= slots) {
        slots -= burstDwell;
        burstBadState = !burstBadState;
        burstDwell = burstDwellSample();
        if (burstBadState && slots > 0)
            sawBad = true;
    }
    burstDwell -= slots;
    return sawBad;
}

bool
FiberLink::applyBurst(const WireItem &item, Tick start)
{
    if (!burstEnabled)
        return true;
    // Framing markers are exempt (see GilbertElliott doc).
    if (item.kind == ItemKind::startOfPacket ||
        item.kind == ItemKind::endOfPacket)
        return true;

    // Advance the chain to the item's first byte slot.  Stolen items
    // can nominally start before queued traffic the chain has already
    // been advanced through; they sample the current state instead of
    // rewinding it.
    auto slot = static_cast<std::int64_t>(start / byteTime);
    slot = std::max(slot, burstSlot);
    burstAdvance(slot - burstSlot);

    // The item is lost if any byte slot of its serialization lands in
    // the bad state.
    const auto span =
        std::max<std::int64_t>(1, item.byteLength());
    bool hit = burstBadState;
    hit = burstAdvance(span) || hit;
    burstSlot = slot + span;

    const double loss = hit ? burst.lossBad : burst.lossGood;
    if (burstRng.chance(loss)) {
        ++_burstDropped;
        return false;
    }
    return true;
}

bool
FiberLink::applyFaults(WireItem &item, Tick start)
{
    if (!applyBurst(item, start))
        return false;
    if (!faultsEnabled)
        return true;
    switch (item.kind) {
      case ItemKind::command:
        if (rng.chance(faults.dropCommand)) {
            ++_itemsDropped;
            return false;
        }
        break;
      case ItemKind::reply:
      case ItemKind::readySignal:
        if (rng.chance(faults.dropReply)) {
            ++_itemsDropped;
            return false;
        }
        break;
      case ItemKind::data:
        if (rng.chance(faults.dropData)) {
            ++_itemsDropped;
            return false;
        }
        if (rng.chance(faults.corruptData)) {
            item.corrupted = true;
            ++_itemsCorrupted;
        }
        break;
      default:
        break;
    }
    return true;
}

void
FiberLink::send(WireItem item)
{
    if (!sink)
        sim::panic("FiberLink::send on unconnected link " + name());

    if (!_up) {
        // A dark fiber: the transmitter clocks the bytes into the
        // void.  No wire time is modelled; the item simply vanishes.
        ++_downDropped;
        return;
    }

    const Tick start = std::max(now(), _busyUntil);
    const Tick duration =
        static_cast<Tick>(item.byteLength()) * byteTime;
    _busyUntil = start + duration;
    _busyTicks += duration;
    _bytesSent += item.byteLength();

    if (!applyFaults(item, start))
        return; // transmitter still consumed the wire time

    // The first byte is on the remote end one byte-time after
    // transmission starts; the last after the full serialization.
    const Tick firstByte = start + byteTime + propDelay;
    const Tick lastByte = _busyUntil + propDelay;
    deliver(std::move(item), firstByte, lastByte);
}

void
FiberLink::sendStolen(WireItem item)
{
    if (!sink)
        sim::panic("FiberLink::sendStolen on unconnected link " +
                   name());

    if (!_up) {
        ++_downDropped;
        return;
    }

    if (!applyFaults(item, now()))
        return;

    const Tick duration =
        static_cast<Tick>(item.byteLength()) * byteTime;
    const Tick firstByte = now() + byteTime + propDelay;
    const Tick lastByte = now() + duration + propDelay;
    deliver(std::move(item), firstByte, lastByte);
}

void
FiberLink::deliver(WireItem item, Tick firstByte, Tick lastByte)
{
    if (_crossActive) {
        // Trunk delivery.  The closure runs on the destination
        // cluster's worker: it captures everything it needs by value
        // (plus the set-once sink/trace pointers) so it never reads
        // this link's mutable transmit state.  The trace mix is the
        // cross-assembly determinism witness — identical values in
        // identical order whether the closure was scheduled directly
        // (single-queue assembly) or travelled through the mailbox.
        const std::uint64_t seq = ++_crossSeq;
        FiberSink *dstSink = sink;
        sim::ClusterFingerprint *trace = _crossTrace;
        const sim::ClusterId dst = _crossDst;
        sim::EventFn fn = [dstSink, trace, dst, seq,
                           item = std::move(item), firstByte,
                           lastByte]() mutable {
            trace->mix(dst, firstByte);
            trace->mix(dst, seq);
            dstSink->fiberDeliver(std::move(item), firstByte,
                                  lastByte);
        };
        if (_crossChannel != nullptr)
            _crossChannel->post(firstByte, std::move(fn));
        else
            eventq().schedule(firstByte, std::move(fn),
                              sim::crossPriority(_crossSrc));
        return;
    }
    eventq().schedule(
        firstByte,
        [this, item = std::move(item), firstByte, lastByte]() mutable {
            sink->fiberDeliver(std::move(item), firstByte, lastByte);
        },
        sim::EventPriority::hardware);
}

} // namespace nectar::phys
